# Development entry points. `make check` is the gate CI (and humans)
# should run before merging.

GO ?= go

.PHONY: all build vet test race check bench bench-sim forensics-demo clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build race

# Figure-level benchmarks (one per paper figure) plus the simulator's
# raw events/sec self-report.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler-only microbenchmarks: BenchmarkEventChurn reports events/sec.
bench-sim:
	$(GO) test -bench . -benchtime 2s -run '^$$' ./internal/sim/

# Observation-only flow forensics on an incast run: records hop-by-hop
# packet events, runs the invariant auditors (credit conservation,
# shared-buffer accounting, starvation — a healthy run reports zero
# violations), and renders the worst-slowdown flow timelines.
forensics-demo:
	$(GO) run ./cmd/flexsim -incast 0.1 -duration 2 -forensics-out forensics.jsonl
	$(GO) run ./cmd/flexplot timeline forensics.jsonl

clean:
	rm -f cpu.prof mem.prof run.jsonl forensics.jsonl
