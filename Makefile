# Development entry points. `make check` is the gate CI (and humans)
# should run before merging.

GO ?= go

.PHONY: all build vet test race race-core race-shard check bench bench-sim bench-hot bench-shards bench-baseline bench-compare lake-baseline lake-regression chaos-smoke sweep-demo workload-demo forensics-demo faults-demo clean clean-results

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Focused race pass over the packages with shared mutable hot paths (the
# engine, the network, the transport stack incl. the scheme registry, and
# the fault-plan scheduler that mutates ports mid-run); faster than the
# full -race sweep, used as a dedicated CI job.
race-core:
	$(GO) test -race ./internal/sim/... ./internal/netem/... ./internal/transport/... ./internal/faults/...

# Parallel-engine race pass: the shard barrier/horizon/handoff protocol
# (internal/sim/shard) plus the harness's sharded determinism suite,
# which exercises cross-shard flow starts, fault injection, and the
# live-status publisher goroutine under -race.
race-shard:
	$(GO) test -race ./internal/sim/shard/
	$(GO) test -race -run 'Sharded' ./internal/harness/

check: vet build race

# Figure-level benchmarks (one per paper figure) plus the simulator's
# raw events/sec self-report.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler-only microbenchmarks: BenchmarkEventChurn reports events/sec.
bench-sim:
	$(GO) test -bench . -benchtime 2s -run '^$$' ./internal/sim/

# Hot-path benchmark set: scheduler dispatch/churn/cancellation plus the
# netem per-hop costs. These feed the bench-baseline/bench-compare
# regression flow; keep the set stable so artifacts stay comparable.
HOT_SIM   = BenchmarkEngineDispatch|BenchmarkEventChurn|BenchmarkTimerStopPending
HOT_NETEM = BenchmarkPortForward|BenchmarkHostHop

bench-hot:
	@$(GO) test -bench '$(HOT_SIM)' -benchmem -benchtime 1s -run '^$$' ./internal/sim/
	@$(GO) test -bench '$(HOT_NETEM)' -benchmem -benchtime 1s -run '^$$' ./internal/netem/

# Parallel-engine scaling series: events/sec at 1/2/4/8 shards on the
# small, paper, and big (768-host) fabrics, web-search at load 0.8,
# recorded as BENCH_PR8.json. The "cpus" metric records how many cores
# the run had — on a single-core machine the series measures
# synchronization overhead, not speedup (DESIGN.md §8).
bench-shards:
	@$(GO) test -bench 'BenchmarkShardScaling' -benchtime 1x -run '^$$' . \
	 | $(GO) run ./cmd/benchjson parse > BENCH_PR8.json
	@echo wrote BENCH_PR8.json

# bench-baseline records the hot-path numbers of the current tree into
# bench-baseline.json; run it on the pre-change commit. bench-compare
# re-runs the set and writes BENCH_PR6.json with per-metric deltas
# (negative ns/op, allocs/op, B/op deltas are improvements).
bench-baseline:
	@{ $(GO) test -bench '$(HOT_SIM)' -benchmem -benchtime 1s -run '^$$' ./internal/sim/ ; \
	   $(GO) test -bench '$(HOT_NETEM)' -benchmem -benchtime 1s -run '^$$' ./internal/netem/ ; } \
	 | $(GO) run ./cmd/benchjson parse > bench-baseline.json
	@echo wrote bench-baseline.json

bench-compare:
	@{ $(GO) test -bench '$(HOT_SIM)' -benchmem -benchtime 1s -run '^$$' ./internal/sim/ ; \
	   $(GO) test -bench '$(HOT_NETEM)' -benchmem -benchtime 1s -run '^$$' ./internal/netem/ ; } \
	 | $(GO) run ./cmd/benchjson parse > bench-current.json
	@$(GO) run ./cmd/benchjson compare bench-baseline.json bench-current.json > BENCH_PR6.json
	@echo wrote BENCH_PR6.json

# Cross-run regression gate over the result lake. lake-regression runs
# the fixed-seed CI micro-sweep into lake-ci/ and diffs its index
# against the checked-in baseline: the simulator is deterministic, so
# the diff runs at zero tolerance and any drift in goodput, FCT
# quantiles, drops, or event counts fails the target (perf self-reports
# are informational only). Re-baseline with lake-baseline after an
# intentional behavior change and commit ci/lake-baseline.json.
lake-regression:
	rm -rf lake-ci
	$(GO) run ./cmd/flexfarm run -spec ci/microsweep.json -out lake-ci
	$(GO) run ./cmd/flexfarm diff ci/lake-baseline.json lake-ci

lake-baseline:
	rm -rf lake-ci
	$(GO) run ./cmd/flexfarm run -spec ci/microsweep.json -out lake-ci
	cp lake-ci/index.json ci/lake-baseline.json
	@echo wrote ci/lake-baseline.json

# Fixed-seed chaos soak: 150 randomized fault/scenario trials on the
# tiny fabric with the forensics auditors promoted to hard oracles
# (invariant violations, non-completing flows, and stray-packet surges
# all fail the trial). The seed is pinned, so the job is deterministic;
# a failing trial leaves chaos-ci/repro-<N>.json, which CI uploads and
# `flexfarm chaos replay` (or `flexsim -fault-plan`) reproduces exactly.
chaos-smoke:
	rm -rf chaos-ci
	$(GO) run ./cmd/flexfarm chaos run -spec ci/chaos-smoke.json -out chaos-ci -shrink

# End-to-end smoke of the runtime introspection plane: the micro-sweep
# served live (/status polled to completion, /metrics format-checked)
# plus an engine self-profile written as folded stacks.
introspection-smoke:
	bash ci/introspection-smoke.sh

# 64-scenario example sweep on the tiny fabric: resumable (re-run the
# target after an interrupt and it picks up where it left off), then a
# paper-figure style query over the lake it built.
sweep-demo:
	$(GO) run ./cmd/flexfarm run -spec examples/sweeps/scaling.json -out results_sweep
	$(GO) run ./cmd/flexfarm query -lake results_sweep \
	  -where fault_sig= -group-by scheme,load -agg fct_p99_us:mean,goodput_gbps:mean,count

# Plan-driven workload demo: runs the flash-crowd example plan (Poisson
# background with a 2.5x flash window plus ON/OFF bursts) and then the
# multi-tenant RPC mix, whose artifact lands per-tenant and coflow
# counters (workload/tenant/*, workload/coflow cct_us) in run.jsonl.
workload-demo:
	$(GO) run ./cmd/flexsim -workload-plan examples/workloads/flash-crowd.json -duration 5
	$(GO) run ./cmd/flexsim -workload-plan examples/workloads/tenant-classes.json -duration 5 -telemetry-out run.jsonl
	@echo "per-tenant and coflow counters:" && grep -h '"workload/' run.jsonl | head -12

# Observation-only flow forensics on an incast run: records hop-by-hop
# packet events, runs the invariant auditors (credit conservation,
# shared-buffer accounting, starvation — a healthy run reports zero
# violations), and renders the worst-slowdown flow timelines.
forensics-demo:
	$(GO) run ./cmd/flexsim -incast 0.1 -duration 2 -forensics-out forensics.jsonl
	$(GO) run ./cmd/flexplot timeline forensics.jsonl

# Scripted fault injection: runs the sample flap+burst plan as a
# clean-vs-faulted pair and writes the per-scheme degradation report
# (goodput/tail-FCT deltas, injected drops by cause, recovery time) to
# degradation.jsonl + degradation.csv.
faults-demo:
	$(GO) run ./cmd/flexsim -fault-plan examples/faultplans/flap.json -duration 12 -degradation-out degradation

clean:
	rm -f cpu.prof mem.prof run.jsonl forensics.jsonl bench-current.json degradation.jsonl degradation.csv

# Remove regenerated sweep/lake outputs. The checked-in results/,
# results_full/, and results_pooled/ CSVs are figure inputs and stay.
clean-results:
	rm -rf lake-ci results_sweep chaos-ci
