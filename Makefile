# Development entry points. `make check` is the gate CI (and humans)
# should run before merging.

GO ?= go

.PHONY: all build vet test race check bench bench-sim clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build race

# Figure-level benchmarks (one per paper figure) plus the simulator's
# raw events/sec self-report.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Scheduler-only microbenchmarks: BenchmarkEventChurn reports events/sec.
bench-sim:
	$(GO) test -bench . -benchtime 2s -run '^$$' ./internal/sim/

clean:
	rm -f cpu.prof mem.prof run.jsonl
