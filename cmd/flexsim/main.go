// Command flexsim runs one large-scale FlexPass deployment simulation and
// prints a metrics summary.
//
// Example:
//
//	flexsim -scheme flexpass -deployment 0.5 -load 0.5 -workload websearch
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flexpass/internal/chaos"
	"flexpass/internal/faults"
	"flexpass/internal/forensics"
	"flexpass/internal/harness"
	"flexpass/internal/live"
	"flexpass/internal/metrics"
	"flexpass/internal/obs"
	"flexpass/internal/prof"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

func main() {
	var (
		scheme = flag.String("scheme", transport.SchemeFlexPass,
			"deployment scheme, one of: "+strings.Join(transport.SchemeNames(), ", "))
		schemeOpts = flag.String("scheme-opt", "", "per-scheme options as comma-separated key=value pairs (e.g. reactive=reno,disable_proretx=1)")
		deployment = flag.Float64("deployment", 0.5, "fraction of FlexPass/ExpressPass-enabled racks")
		load       = flag.Float64("load", 0.5, "target core (ToR uplink) utilization")
		wl         = flag.String("workload", "websearch", "flow size distribution: websearch, cachefollower, datamining, hadoop")
		seed       = flag.Int64("seed", 1, "random seed")
		durMS      = flag.Float64("duration", 15, "flow arrival window, milliseconds")
		incast     = flag.Float64("incast", 0, "foreground incast volume fraction (0 disables)")
		wq         = flag.Float64("wq", 0.5, "FlexPass queue weight")
		full       = flag.Bool("full", false, "use the paper's 192-host Clos instead of the scaled fabric")
		topoName   = flag.String("topo", "", "fabric by name: small (48 hosts), paper (192), big (768); overrides -full")
		queues     = flag.Bool("queues", false, "sample Q1 occupancy at ToR uplinks")
		shards     = flag.Int("shards", 1, "partition the fabric into this many per-pod-block shards, one engine goroutine each (1 = single engine; clamped to the pod count)")
		traceIn    = flag.String("trace", "", "replay a CSV flow trace instead of generating traffic")
		wlPlan     = flag.String("workload-plan", "", "JSON workload-plan file (see internal/workload): composable sources (poisson/onoff/lognormal/incast/rpc/trace) with rate modulators; replaces -workload/-incast")
		traceOut   = flag.String("dump-trace", "", "write the generated workload as a CSV trace and exit")
		telOut     = flag.String("telemetry-out", "", "write the run artifact (manifest, series, counters, trace) as JSONL — or CSV if the path ends in .csv")
		traceRing  = flag.Int("trace-ring", 0, "capacity of the transport event trace ring (0 disables; dumped to stderr unless -telemetry-out captures it)")
		forOut     = flag.String("forensics-out", "", "enable the forensic plane (hop recording, invariant auditors, worst-flow timelines) and write the run artifact as JSONL here")
		traceFlow  = flag.String("trace-flow", "", "comma-separated flow IDs whose timelines are always exported (implies forensics)")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the simulation to this file")
		memOut     = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
		profOut    = flag.String("profile-out", "", "enable the engine self-profiler and write folded stacks (flamegraph input) here; '-' prints a table to stderr")
		serveAddr  = flag.String("serve", "", "serve live /status, /metrics, and pprof on this address while the run executes (e.g. :8080)")
		linger     = flag.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the run finishes")
		poolPkts   = flag.Bool("pool-packets", false, "recycle consumed frames through a per-network free list (results identical; lower GC pressure)")
		faultPlan  = flag.String("fault-plan", "", "JSON fault-plan file (see internal/faults); runs the scheme clean and faulted and prints a degradation report")
		faultSpec  = flag.String("fault", "", "inline fault shorthand, e.g. 'down@sw0->h1@2ms-3ms,burst@tor*@1ms-5ms'; same behavior as -fault-plan")
		faultOne   = flag.Bool("fault-single", false, "with a fault plan: run once faulted instead of the clean-vs-faulted pair (composes with -telemetry-out/-forensics-out)")
		degradeOut = flag.String("degradation-out", "", "stem for the degradation report artifact; writes <stem>.jsonl and <stem>.csv")
		deadline   = flag.Duration("deadline", 0, "wall-clock deadline; a run still going after this is killed with a clean error (0 = off)")
		stallTO    = flag.Duration("stall-timeout", 0, "kill the run when the engine horizon stops advancing for this long (livelock/wedge guard; 0 = off)")
	)
	flag.Parse()

	names := transport.SchemeNames()
	known := false
	for _, n := range names {
		known = known || n == *scheme
	}
	if !known {
		fmt.Fprintf(os.Stderr, "unknown scheme %q (registered: %s)\n", *scheme, strings.Join(names, ", "))
		os.Exit(1)
	}

	sc := harness.BaseScenario(*full)
	switch *topoName {
	case "":
	case "small":
		sc.Clos = topo.SmallClos
	case "paper":
		sc.Clos = topo.PaperClos
	case "big":
		sc.Clos = topo.BigClos
	default:
		fmt.Fprintf(os.Stderr, "unknown -topo %q (want small, paper, big)\n", *topoName)
		os.Exit(1)
	}
	sc.Scheme = harness.Scheme(*scheme)
	sc.Deployment = *deployment
	sc.Load = *load
	sc.Seed = *seed
	sc.WQ = *wq
	sc.Duration = sim.Time(*durMS * float64(sim.Millisecond))
	sc.IncastFraction = *incast
	sc.SampleQueues = *queues
	sc.PoolPackets = *poolPkts
	if *shards < 1 {
		fmt.Fprintf(os.Stderr, "-shards must be >= 1 (got %d)\n", *shards)
		os.Exit(1)
	}
	sc.Shards = *shards
	if *schemeOpts != "" {
		sc.SchemeOptions = make(map[string]string)
		for _, kv := range strings.Split(*schemeOpts, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				fmt.Fprintf(os.Stderr, "bad -scheme-opt entry %q (want key=value)\n", kv)
				os.Exit(1)
			}
			sc.SchemeOptions[k] = v
		}
	}
	sc.Workload = workload.ByName(*wl)
	if sc.Workload == nil {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(1)
	}
	if *wlPlan != "" {
		if *traceIn != "" {
			fmt.Fprintln(os.Stderr, "-workload-plan and -trace are mutually exclusive (a plan can embed a trace source instead)")
			os.Exit(1)
		}
		p, err := workload.ParsePlanFile(*wlPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc.WorkloadPlan = p
	}

	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		flows, err := workload.ReadTrace(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sc.TraceFlows = flows
	}
	if *traceOut != "" {
		rackOf := make([]int, sc.Clos.Hosts())
		for i := range rackOf {
			rackOf[i] = i / sc.Clos.HostsPerTor
		}
		// Reuse the harness's capacity computation by a direct formula:
		uplinks := sc.Clos.Hosts() / sc.Clos.HostsPerTor * sc.Clos.AggPerPod
		env := workload.Env{
			Hosts:          sc.Clos.Hosts(),
			RackOf:         rackOf,
			UplinkCapacity: sc.LinkRate * units.Rate(uplinks),
			Load:           sc.Load,
			Duration:       sc.Duration,
		}
		plan := sc.WorkloadPlan
		if plan == nil {
			plan = workload.LegacyPlan(sc.Workload, sc.IncastFraction, sc.IncastFlowSize)
		}
		flows, err := plan.Generate(env, harness.WorkloadRand(sc.Seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := workload.WriteTrace(f, flows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %d flows to %s\n", len(flows), *traceOut)
		return
	}

	if *telOut != "" || *traceRing > 0 {
		sc.Telemetry = &obs.Options{TraceCap: *traceRing}
	}
	if *forOut != "" || *traceFlow != "" {
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "forensics (-forensics-out / -trace-flow) requires the single-engine path; drop -shards or set it to 1")
			os.Exit(1)
		}
		fo := &forensics.Options{}
		for _, s := range strings.Split(*traceFlow, ",") {
			if s = strings.TrimSpace(s); s == "" {
				continue
			}
			id, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bad -trace-flow id %q: %v\n", s, err)
				os.Exit(1)
			}
			fo.Flows = append(fo.Flows, id)
		}
		sc.Forensics = fo
	}
	var plan *faults.Plan
	var repro *chaos.Repro
	if *faultPlan != "" && *faultSpec != "" {
		fmt.Fprintln(os.Stderr, "-fault-plan and -fault are mutually exclusive")
		os.Exit(1)
	}
	if *faultPlan != "" {
		data, err := os.ReadFile(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if chaos.IsRepro(data) {
			// A chaos repro document carries the whole failing scenario —
			// coordinates, oracle thresholds, fault plan, and the pinned
			// flow list — so the replay is bit-identical to the failing
			// trial. It replaces every scenario flag.
			repro, err = chaos.ParseRepro(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			sc = repro.Scenario()
			fmt.Fprintf(os.Stderr, "chaos repro %s: trial %d of spec %q, recorded outcome %q, %d pinned flows\n",
				*faultPlan, repro.Trial, repro.Spec, repro.Outcome, len(repro.Flows))
		} else {
			plan, err = faults.ParsePlan(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if plan.Name == "" {
				plan.Name = *faultPlan
			}
		}
	} else if *faultSpec != "" {
		var err error
		if plan, err = faults.ParseSpec(*faultSpec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// The watchdog limits guard every run mode, including each leg of
	// the degradation pair.
	sc.Deadline = *deadline
	sc.StallTimeout = *stallTO
	if plan != nil && !*faultOne {
		// Degradation mode: run the selected scheme clean and faulted on
		// the same seed and report the deltas.
		d := harness.RunDegradation(sc, plan, []harness.Scheme{sc.Scheme})
		fmt.Print(d.String())
		if *degradeOut != "" {
			if err := d.WriteFiles(*degradeOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "degradation report written to %s.jsonl and %s.csv\n", *degradeOut, *degradeOut)
		}
		return
	}
	if repro == nil {
		sc.FaultPlan = plan
	}
	sc.Profile = *profOut != ""

	var srv *live.Server
	if *serveAddr != "" {
		board := &live.RunBoard{}
		sc.Live = board
		s, bound, err := board.Serve(*serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		srv = s
		fmt.Fprintf(os.Stderr, "introspection: http://%s/status  /metrics  /debug/pprof/\n", bound)
	}

	var stopCPU func() error
	if *pprofOut != "" {
		stop, err := obs.StartCPUProfile(*pprofOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopCPU = stop
	}

	res := runGuarded(sc)

	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *pprofOut)
	}
	if *memOut != "" {
		if err := obs.WriteHeapProfile(*memOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memOut)
	}
	if *profOut != "" && res.Profile != nil {
		// Sharded runs merge per-shard profiler exports into res.Profile and
		// leave res.Profiler nil, so render from the export either way.
		if *profOut == "-" {
			_ = prof.WriteTableProfile(os.Stderr, res.Profile)
		} else {
			f, err := os.Create(*profOut)
			if err == nil {
				err = prof.WriteFoldedProfile(f, res.Profile)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "engine profile (folded stacks) written to %s\n", *profOut)
			_ = prof.WriteTableProfile(os.Stderr, res.Profile)
		}
	}
	if srv != nil {
		if *linger > 0 {
			fmt.Fprintf(os.Stderr, "run done; keeping introspection endpoint up for %s\n", *linger)
			time.Sleep(*linger)
		}
		srv.Close()
	}
	if res.Telemetry != nil && *telOut != "" {
		var err error
		if strings.HasSuffix(*telOut, ".csv") {
			var f *os.File
			if f, err = os.Create(*telOut); err == nil {
				err = res.Telemetry.WriteCSV(f)
				f.Close()
			}
		} else {
			err = res.Telemetry.WriteJSONLFile(*telOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "telemetry written to %s (%d series, %d counters, %d trace events)\n",
			*telOut, len(res.Telemetry.Series), len(res.Telemetry.Counters), len(res.Telemetry.Trace))
	} else if *traceRing > 0 && res.Trace != nil && res.Trace.Len() > 0 {
		fmt.Fprintf(os.Stderr, "-- trace ring (%d events, %d overwritten) --\n",
			res.Trace.Len(), res.Trace.Overwritten())
		_ = res.Trace.Dump(os.Stderr)
	}
	if rep := res.Forensics; rep != nil {
		if *forOut != "" {
			if err := res.Telemetry.WriteJSONLFile(*forOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "forensics written to %s (%d violations, %d timelines)\n",
				*forOut, len(rep.Violations), len(rep.Timelines))
		}
		for _, v := range rep.Violations {
			fmt.Fprintln(os.Stderr, "VIOLATION", v)
		}
		if rep.ViolationsDropped > 0 {
			fmt.Fprintf(os.Stderr, "(%d further violations dropped over the retention cap)\n", rep.ViolationsDropped)
		}
		fmt.Fprintln(os.Stderr, "-- worst-slowdown flow timelines --")
		for _, tl := range rep.Timelines {
			_ = tl.Dump(os.Stderr)
		}
	}

	c := &res.Flows
	small := metrics.Small()
	legacy, upgraded := small, small
	legacy.Legacy = metrics.Bool(true)
	upgraded.Legacy = metrics.Bool(false)

	fmt.Printf("scheme=%s deployment=%.0f%% load=%.0f%% workload=%s seed=%d\n",
		sc.Scheme, sc.Deployment*100, sc.Load*100, sc.Workload.Name, sc.Seed)
	fmt.Printf("flows: %d total, %d incomplete, %d small (<100kB)\n",
		len(c.Records), c.Incomplete(), c.Count(small))
	fmt.Printf("overall avg FCT:          %v\n", metrics.Mean(c.FCTs(metrics.Filter{})))
	fmt.Printf("99%%-ile FCT (<100kB):     %v\n", metrics.Percentile(c.FCTs(small), 0.99))
	fmt.Printf("  legacy traffic:         %v\n", metrics.Percentile(c.FCTs(legacy), 0.99))
	fmt.Printf("  upgraded traffic:       %v\n", metrics.Percentile(c.FCTs(upgraded), 0.99))
	fmt.Printf("FCT stddev (<100kB):      legacy %v / upgraded %v\n",
		metrics.StdDev(c.FCTs(legacy)), metrics.StdDev(c.FCTs(upgraded)))
	to := c.SumInt(metrics.Filter{}, func(r metrics.FlowRecord) int { return r.Timeouts })
	fmt.Printf("timeouts: %d, selective drops: %d, credit drops: %d, data drops: %d\n",
		to, res.DropsRed, res.DropsCredit, res.DropsOther)
	if res.Faults != nil {
		fs := res.FaultDrops
		fmt.Printf("faults: %d actions applied, %d packets destroyed (link-down %d, burst %d, credit %d)\n",
			res.Faults.Len(), fs.Injected, fs.LinkDown, fs.BurstLoss, fs.CreditLoss)
	}
	if sc.SampleQueues {
		fmt.Printf("Q1 occupancy: avg %dB (red %dB), p90 %dB (red %dB)\n",
			res.QueueAvg, res.QueueRedAvg, res.QueueP90, res.QueueRedP90)
	}
	if sc.Scheme == harness.SchemeOWF {
		fmt.Printf("oracle queue weight: %.3f\n", res.OracleWQ)
	}
	fmt.Printf("events processed: %d\n", res.Events)

	if repro != nil {
		v := chaos.Evaluate(res, repro.Oracles)
		fmt.Printf("chaos verdict: %s", v.Outcome)
		if v.Detail != "" {
			fmt.Printf(" (%s)", v.Detail)
		}
		fmt.Println()
		if repro.Outcome != "" && v.Outcome != repro.Outcome {
			fmt.Fprintf(os.Stderr, "replay outcome %q differs from the recorded %q\n", v.Outcome, repro.Outcome)
			os.Exit(1)
		}
		if v.Failed() {
			os.Exit(1) // reproduced
		}
	}
}

// runGuarded runs the scenario, turning a watchdog kill into a clean
// CLI error instead of a panic trace.
func runGuarded(sc harness.Scenario) *harness.Result {
	defer func() {
		if r := recover(); r != nil {
			ke, ok := r.(*harness.KilledError)
			if !ok {
				panic(r)
			}
			fmt.Fprintln(os.Stderr, "flexsim:", ke)
			os.Exit(1)
		}
	}()
	return harness.Run(sc)
}
