// Command experiments regenerates every table and figure of the paper's
// evaluation (§2, §4.3, §6, Appendix A), printing readable tables and
// writing CSV series under -out.
//
// By default it runs at a reduced scale (smaller Clos, shorter traces)
// that finishes on a laptop; -full uses the paper's 192-host fabric and
// durations (hours of CPU).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/forensics"
	"flexpass/internal/harness"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

var (
	outDir    = flag.String("out", "results", "output directory for CSV files")
	full      = flag.Bool("full", false, "paper-scale fabric and durations")
	figs      = flag.String("figs", "all", "comma-separated figure list (1,5,7,8,9,10,11,14,15,17,18,queue,robustness) or 'all'")
	seed      = flag.Int64("seed", 1, "random seed")
	seedsN    = flag.Int("seeds", 1, "pool each deployment point over this many seeds")
	durMS     = flag.Float64("dur", 0, "override flow arrival window (milliseconds)")
	scheme    = flag.String("scheme", "", "override the scheme for -telemetry-out/-forensics-out runs (any registered name, e.g. flexpass, naive, owf)")
	schemeOpt = flag.String("scheme-opt", "", "per-scheme options for -telemetry-out/-forensics-out runs, comma-separated key=value pairs")
	telOut    = flag.String("telemetry-out", "", "run the base scenario instrumented and write its JSONL run artifact here (skips the figure sweeps)")
	traceRing = flag.Int("trace-ring", 0, "transport trace ring capacity for -telemetry-out runs")
	forOut    = flag.String("forensics-out", "", "run the base scenario with the forensic plane and write its artifact here (skips the figure sweeps)")
	traceFlow = flag.String("trace-flow", "", "comma-separated flow IDs whose timelines are always exported on -forensics-out runs")
	pprofOut  = flag.String("pprof", "", "write a CPU profile of the experiment run to this file")
	memOut    = flag.String("memprofile", "", "write a heap profile (post-run, after GC) to this file")
	wlPlan    = flag.String("workload-plan", "", "JSON workload-plan file driving the base scenario's traffic (composable sources; see internal/workload)")
	faultFile = flag.String("fault-plan", "", "JSON fault plan for the robustness run (default: a built-in ToR-uplink flap + burst-loss plan)")
	faultSpec = flag.String("fault", "", "inline fault shorthand for the robustness run (see flexsim -fault)")
)

func main() {
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figs, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	base := harness.BaseScenario(*full)
	base.Seed = *seed
	if *seedsN > 1 {
		for i := 0; i < *seedsN; i++ {
			base.PoolSeeds = append(base.PoolSeeds, *seed+int64(i))
		}
	}
	if *durMS > 0 {
		base.Duration = sim.Time(*durMS * float64(sim.Millisecond))
	}
	if *wlPlan != "" {
		p, err := workload.ParsePlanFile(*wlPlan)
		if err != nil {
			fatal(err)
		}
		base.WorkloadPlan = p
	}
	microDur := 80 * sim.Millisecond

	if *pprofOut != "" {
		stop, err := obs.StartCPUProfile(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := stop(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "cpu profile written to %s\n", *pprofOut)
		}()
	}
	if *memOut != "" {
		defer func() {
			if err := obs.WriteHeapProfile(*memOut); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "heap profile written to %s\n", *memOut)
		}()
	}

	if *telOut != "" || *forOut != "" {
		// One instrumented base-scenario run instead of the figure sweeps:
		// the artifact is for inspecting a single simulation in depth.
		sc := base
		sc.SampleQueues = true
		sc.Telemetry = &obs.Options{TraceCap: *traceRing}
		if *scheme != "" {
			sc.Scheme = harness.Scheme(*scheme)
		}
		if *schemeOpt != "" {
			sc.SchemeOptions = make(map[string]string)
			for _, kv := range strings.Split(*schemeOpt, ",") {
				k, v, ok := strings.Cut(kv, "=")
				if !ok || k == "" {
					fatal(fmt.Errorf("bad -scheme-opt entry %q (want key=value)", kv))
				}
				sc.SchemeOptions[k] = v
			}
		}
		if *forOut != "" {
			fo := &forensics.Options{}
			for _, s := range strings.Split(*traceFlow, ",") {
				if s = strings.TrimSpace(s); s == "" {
					continue
				}
				id, err := strconv.ParseUint(s, 10, 64)
				if err != nil {
					fatal(fmt.Errorf("bad -trace-flow id %q: %v", s, err))
				}
				fo.Flows = append(fo.Flows, id)
			}
			sc.Forensics = fo
		}
		res := harness.Run(sc)
		if res.Telemetry == nil {
			fatal(fmt.Errorf("telemetry run produced no artifact"))
		}
		out := *telOut
		if out == "" {
			out = *forOut
		}
		if err := res.Telemetry.WriteJSONLFile(out); err != nil {
			fatal(err)
		}
		if *forOut != "" && *forOut != out {
			if err := res.Telemetry.WriteJSONLFile(*forOut); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("telemetry artifact written to %s (%d series, %d counters, %d trace events, %.0f events/sec)\n",
			out, len(res.Telemetry.Series), len(res.Telemetry.Counters),
			len(res.Telemetry.Trace), res.Telemetry.Manifest.EventsPerSec)
		if rep := res.Forensics; rep != nil {
			fmt.Printf("forensics: %d violations, %d timelines\n", len(rep.Violations), len(rep.Timelines))
			for _, v := range rep.Violations {
				fmt.Println("VIOLATION", v)
			}
		}
		return
	}

	start := time.Now()
	if sel("1") {
		fig1(microDur)
	}
	if sel("9") {
		fig9(microDur)
	}
	if sel("7") {
		fig7(microDur)
	}
	if sel("8") {
		fig8()
	}
	if sel("10") {
		fig10(base)
	}
	if sel("11") {
		fig11(base)
	}
	if sel("5") {
		fig5(base)
	}
	if sel("14") {
		fig14(base)
	}
	if sel("15") {
		fig15(base)
	}
	if sel("17") {
		fig17(base)
	}
	if sel("18") {
		fig18(base)
	}
	if sel("ablations") || all {
		ablations(base)
	}
	if sel("robustness") {
		robustness(base)
	}
	fmt.Printf("\nall requested experiments done in %v; CSVs in %s/\n",
		time.Since(start).Round(time.Second), *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func writeCSV(name string, header []string, rows [][]string) {
	path := filepath.Join(*outDir, name)
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for _, r := range rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		fatal(err)
	}
}

func seriesCSV(name string, s *harness.ThroughputSeries) {
	header := []string{"time_ms"}
	header = append(header, s.Names...)
	var rows [][]string
	n := 0
	for _, nm := range s.Names {
		if len(s.Series[nm]) > n {
			n = len(s.Series[nm])
		}
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%.1f", (sim.Time(i+1) * s.Interval).Millis())}
		for _, nm := range s.Names {
			v := units.Rate(0)
			if i < len(s.Series[nm]) {
				v = s.Series[nm][i]
			}
			row = append(row, fmt.Sprintf("%.3f", v.Gbits()))
		}
		rows = append(rows, row)
	}
	writeCSV(name, header, rows)
}

func meanTail(rs []units.Rate) units.Rate {
	if len(rs) < 6 {
		return 0
	}
	var sum int64
	for _, r := range rs[5:] {
		sum += int64(r)
	}
	return units.Rate(sum / int64(len(rs)-5))
}

func fig1(dur sim.Time) {
	fmt.Println("== Figure 1: proactive transports starve DCTCP (10G dumbbell) ==")
	a := harness.Fig1a(*seed, dur)
	seriesCSV("fig1a.csv", a)
	fmt.Printf("  (a) ExpressPass %.2fGbps vs DCTCP %.2fGbps (steady state)\n",
		meanTail(a.Series["ExpressPass"]).Gbits(), meanTail(a.Series["DCTCP"]).Gbits())
	b := harness.Fig1b(*seed, dur)
	seriesCSV("fig1b.csv", b)
	fmt.Printf("  (b) HOMA %.2fGbps vs DCTCP %.2fGbps (16+16 flows)\n",
		meanTail(b.Series["HOMA"]).Gbits(), meanTail(b.Series["DCTCP"]).Gbits())
}

func fig9(dur sim.Time) {
	fmt.Println("== Figure 9: starvation time (2-to-1 testbed) ==")
	r := harness.Fig9(*seed, dur)
	seriesCSV("fig9a.csv", r.ExpressPass)
	seriesCSV("fig9b.csv", r.FlexPass)
	writeCSV("fig9c.csv", []string{"scheme", "dctcp_starved_frac"}, [][]string{
		{"expresspass", fmt.Sprintf("%.4f", r.StarvedExpressPassSide)},
		{"flexpass", fmt.Sprintf("%.4f", r.StarvedFlexPassSide)},
	})
	fmt.Printf("  DCTCP starvation time: %.1f%% under naive ExpressPass, %.1f%% under FlexPass\n",
		r.StarvedExpressPassSide*100, r.StarvedFlexPassSide*100)
}

func fig7(dur sim.Time) {
	fmt.Println("== Figure 7: sub-flow throughput shares (testbed) ==")
	for _, v := range []string{"a", "b", "c"} {
		s := harness.Fig7(v, *seed, dur)
		seriesCSV("fig7"+v+".csv", s)
		var parts []string
		for _, nm := range s.Names {
			parts = append(parts, fmt.Sprintf("%s %.2fG", nm, meanTail(s.Series[nm]).Gbits()))
		}
		fmt.Printf("  (%s) %s\n", v, strings.Join(parts, ", "))
	}
}

func fig8() {
	fmt.Println("== Figure 8: incast tail FCT (8-to-1, 64kB responses) ==")
	counts := []int{8, 16, 24, 32, 40, 48, 56, 64, 72, 80, 88, 96}
	rows := harness.Fig8(counts, []int64{*seed, *seed + 1})
	var csv [][]string
	for _, r := range rows {
		csv = append(csv, []string{
			fmt.Sprint(r.Flows), r.Transport,
			fmt.Sprintf("%.3f", r.MaxFCT.Millis()), fmt.Sprint(r.Timeouts),
		})
	}
	writeCSV("fig8.csv", []string{"flows", "transport", "max_fct_ms", "timeouts"}, csv)
	fmt.Printf("  %-6s %-12s %-12s %s\n", "flows", "transport", "maxFCT", "timeouts")
	for _, r := range rows {
		fmt.Printf("  %-6d %-12s %-12v %d\n", r.Flows, r.Transport, r.MaxFCT, r.Timeouts)
	}
}

func pointsCSV(name string, pts []harness.DeploymentPoint) {
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			string(p.Scheme), fmt.Sprintf("%.2f", p.Deployment),
			fmt.Sprintf("%.2f", p.Load), p.Workload, fmt.Sprintf("%.2f", p.WQ),
			fmt.Sprintf("%.1f", p.P99Small.Micros()),
			fmt.Sprintf("%.1f", p.AvgAll.Micros()),
			fmt.Sprintf("%.1f", p.P99SmallLegacy.Micros()),
			fmt.Sprintf("%.1f", p.P99SmallNew.Micros()),
			fmt.Sprintf("%.1f", p.StdSmallLegacy.Micros()),
			fmt.Sprintf("%.1f", p.StdSmallNew.Micros()),
			fmt.Sprintf("%.2f", p.AvgReorderKB),
			fmt.Sprintf("%.5f", p.RedundantFrac),
			fmt.Sprint(p.QueueAvg), fmt.Sprint(p.QueueP90),
			fmt.Sprint(p.QueueRedAvg), fmt.Sprint(p.QueueRedP90),
			fmt.Sprint(p.Timeouts), fmt.Sprint(p.Incomplete),
		})
	}
	writeCSV(name, []string{
		"scheme", "deployment", "load", "workload", "wq",
		"p99_small_us", "avg_all_us", "p99_small_legacy_us", "p99_small_new_us",
		"std_small_legacy_us", "std_small_new_us", "avg_reorder_kb",
		"redundant_frac", "q1_avg_b", "q1_p90_b", "q1_red_avg_b", "q1_red_p90_b",
		"timeouts", "incomplete",
	}, rows)
}

func printPoints(pts []harness.DeploymentPoint) {
	fmt.Printf("  %-14s %-5s %-10s %-10s %-10s %-10s\n",
		"scheme", "dep", "p99small", "avgAll", "p99sLegacy", "p99sNew")
	for _, p := range pts {
		fmt.Printf("  %-14s %-5.2f %-10v %-10v %-10v %-10v\n",
			p.Scheme, p.Deployment, p.P99Small, p.AvgAll, p.P99SmallLegacy, p.P99SmallNew)
	}
}

func fig10(base harness.Scenario) {
	fmt.Println("== Figures 10/12/13 + queue occupancy: deployment sweep (web search) ==")
	pts := harness.Fig10(base)
	pointsCSV("fig10_12_13.csv", pts)
	printPoints(pts)
	for _, p := range pts {
		if p.Scheme == harness.SchemeFlexPass && (p.Deployment == 0.5 || p.Deployment == 1.0) {
			fmt.Printf("  [queue] flexpass dep=%.0f%%: Q1 avg %dB (red %dB), p90 %dB (red %dB); redundancy %.2f%%\n",
				p.Deployment*100, p.QueueAvg, p.QueueRedAvg, p.QueueP90, p.QueueRedP90, p.RedundantFrac*100)
		}
	}
}

func fig11(base harness.Scenario) {
	fmt.Println("== Figure 11: deployment sweep with 10% foreground incast ==")
	pts := harness.Fig11(base)
	pointsCSV("fig11.csv", pts)
	printPoints(pts)
}

func fig5(base harness.Scenario) {
	fmt.Println("== Figure 5: flow-splitting and queueing ablations ==")
	a := harness.Fig5a(base)
	pointsCSV("fig5a.csv", a)
	for _, p := range a {
		fmt.Printf("  (a) %-14s dep=%.2f p99small=%v reorder=%.1fkB\n",
			p.Scheme, p.Deployment, p.P99Small, p.AvgReorderKB)
	}
	b := harness.Fig5b(base)
	pointsCSV("fig5b.csv", b)
	for _, p := range b {
		fmt.Printf("  (b) %-14s dep=%.2f p99small=%v\n", p.Scheme, p.Deployment, p.P99Small)
	}
}

func fig14(base harness.Scenario) {
	fmt.Println("== Figure 14: load sensitivity (10/40/70%) ==")
	pts := harness.Fig14(base, []float64{0.1, 0.4, 0.7})
	pointsCSV("fig14.csv", pts)
	fmt.Printf("  %-14s %-5s %-5s %-10s\n", "scheme", "load", "dep", "p99small")
	for _, p := range pts {
		fmt.Printf("  %-14s %-5.1f %-5.2f %-10v\n", p.Scheme, p.Load, p.Deployment, p.P99Small)
	}
}

func fig15(base harness.Scenario) {
	fmt.Println("== Figures 15/16: workload sweep ==")
	pts := harness.Fig15and16(base, []string{"cachefollower", "websearch", "datamining", "hadoop"})
	pointsCSV("fig15_16.csv", pts)
	fmt.Printf("  %-14s %-14s %-5s %-10s %-10s\n", "workload", "scheme", "dep", "p99small", "avgAll")
	for _, p := range pts {
		fmt.Printf("  %-14s %-14s %-5.2f %-10v %-10v\n", p.Workload, p.Scheme, p.Deployment, p.P99Small, p.AvgAll)
	}
}

func fig17(base harness.Scenario) {
	fmt.Println("== Figure 17: selective-dropping threshold trade-off (full deployment) ==")
	pts := harness.Fig17(base, []units.ByteSize{
		50 * units.KB, 100 * units.KB, 150 * units.KB, 200 * units.KB,
	})
	var rows [][]string
	thresholds := []int{50, 100, 150, 200}
	fmt.Printf("  %-12s %-10s %-10s\n", "threshold", "p99small", "avgAll")
	for i, p := range pts {
		fmt.Printf("  %-12s %-10v %-10v\n", fmt.Sprintf("%dkB", thresholds[i]), p.P99Small, p.AvgAll)
		rows = append(rows, []string{
			fmt.Sprint(thresholds[i]),
			fmt.Sprintf("%.1f", p.P99Small.Micros()),
			fmt.Sprintf("%.1f", p.AvgAll.Micros()),
			fmt.Sprint(p.QueueAvg), fmt.Sprint(p.QueueP90),
		})
	}
	writeCSV("fig17.csv", []string{"threshold_kb", "p99_small_us", "avg_all_us", "q1_avg_b", "q1_p90_b"}, rows)
}

func ablations(base harness.Scenario) {
	fmt.Println("== Design-choice ablations (50% deployment) ==")
	rows := harness.Ablations(base)
	var csv [][]string
	fmt.Printf("  %-20s %-10s %-10s %-10s %-8s %s\n",
		"variant", "p99small", "avgAll", "reorderKB", "RTOs", "redundant")
	for _, r := range rows {
		p := r.Point
		fmt.Printf("  %-20s %-10v %-10v %-10.1f %-8d %.4f\n",
			r.Name, p.P99Small, p.AvgAll, p.AvgReorderKB, p.Timeouts, p.RedundantFrac)
		csv = append(csv, []string{
			r.Name,
			fmt.Sprintf("%.1f", p.P99Small.Micros()),
			fmt.Sprintf("%.1f", p.AvgAll.Micros()),
			fmt.Sprintf("%.2f", p.AvgReorderKB),
			fmt.Sprint(p.Timeouts),
			fmt.Sprintf("%.5f", p.RedundantFrac),
		})
	}
	writeCSV("ablations.csv", []string{"variant", "p99_small_us", "avg_all_us", "reorder_kb", "timeouts", "redundant_frac"}, csv)
}

// defaultFaultPlan is the built-in robustness scenario: flap one ToR
// downlink for 1ms, then 4ms of bursty loss on a ToR uplink. Both port
// names exist in the small and paper Clos alike.
func defaultFaultPlan() *faults.Plan {
	p, err := faults.ParseSpec(
		"down@tor0.0->h0.0.0@2ms-3ms,burst@tor0.0<->agg0.0:fwd@4ms-8ms")
	if err != nil {
		panic(err) // static spec; cannot fail
	}
	p.Name = "builtin-flap-burst"
	return p
}

func robustness(base harness.Scenario) {
	plan := defaultFaultPlan()
	var err error
	if *faultFile != "" {
		var data []byte
		if data, err = os.ReadFile(*faultFile); err == nil {
			plan, err = faults.ParsePlan(data)
		}
	} else if *faultSpec != "" {
		plan, err = faults.ParseSpec(*faultSpec)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Robustness: graceful degradation under scripted faults ==")
	d := harness.RunDegradation(base, plan, nil)
	fmt.Print(d.String())
	stem := filepath.Join(*outDir, "robustness")
	if err := d.WriteFiles(stem); err != nil {
		fatal(err)
	}
	fmt.Printf("  degradation report in %s.csv and %s.jsonl\n", stem, stem)
}

func fig18(base harness.Scenario) {
	fmt.Println("== Figure 18: queue-weight (w_q) trade-off ==")
	rows := harness.Fig18(base, []float64{0.4, 0.45, 0.5, 0.55, 0.6})
	var csv [][]string
	fmt.Printf("  %-6s %-22s %-12s\n", "wq", "maxLegacyDegradation", "p99smallFull")
	for _, r := range rows {
		fmt.Printf("  %-6.2f %-22.1f%% %-12v\n", r.WQ, r.MaxLegacyDegradation*100, r.P99SmallFull)
		csv = append(csv, []string{
			fmt.Sprintf("%.2f", r.WQ),
			fmt.Sprintf("%.4f", r.MaxLegacyDegradation),
			fmt.Sprintf("%.1f", r.P99SmallFull.Micros()),
		})
	}
	writeCSV("fig18.csv", []string{"wq", "max_legacy_degradation", "p99_small_full_us"}, csv)
}
