// Command flexplot renders the CSV files cmd/experiments writes as ASCII
// charts in the terminal.
//
//	flexplot results/fig1a.csv              # time series (Gbps over ms)
//	flexplot -x deployment -y p99_small_us -group scheme results/fig10_12_13.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"flexpass/internal/plot"
)

var (
	xCol   = flag.String("x", "", "x column (default: first column)")
	yCol   = flag.String("y", "", "y column (default: all remaining numeric columns)")
	group  = flag.String("group", "", "split series by this column's values")
	title  = flag.String("title", "", "chart title (default: file name)")
	width  = flag.Int("w", 72, "chart width")
	height = flag.Int("h", 20, "chart height")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flexplot [flags] <file.csv>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(rows) < 2 {
		fatal(fmt.Errorf("%s: no data rows", path))
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		fatal(fmt.Errorf("column %q not in %v", name, header))
		return -1
	}

	xi := 0
	if *xCol != "" {
		xi = col(*xCol)
	}
	chartTitle := *title
	if chartTitle == "" {
		chartTitle = path
	}
	ch := &plot.Chart{Title: chartTitle, XLabel: header[xi], Width: *width, Height: *height}

	if *group != "" {
		gi := col(*group)
		yi := col(*yCol)
		series := map[string]*plot.Series{}
		var order []string
		for _, row := range rows[1:] {
			x, errX := strconv.ParseFloat(row[xi], 64)
			y, errY := strconv.ParseFloat(row[yi], 64)
			if errX != nil || errY != nil {
				continue
			}
			key := row[gi]
			s, ok := series[key]
			if !ok {
				s = &plot.Series{Name: key}
				series[key] = s
				order = append(order, key)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		for _, k := range order {
			ch.Series = append(ch.Series, *series[k])
		}
		ch.YLabel = *yCol
	} else {
		// One series per numeric column (or just -y).
		for yi, name := range header {
			if yi == xi {
				continue
			}
			if *yCol != "" && name != *yCol {
				continue
			}
			s := plot.Series{Name: name}
			for _, row := range rows[1:] {
				x, errX := strconv.ParseFloat(row[xi], 64)
				y, errY := strconv.ParseFloat(row[yi], 64)
				if errX != nil || errY != nil {
					continue
				}
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
			if len(s.X) > 0 {
				ch.Series = append(ch.Series, s)
			}
		}
	}
	if err := ch.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexplot:", err)
	os.Exit(1)
}
