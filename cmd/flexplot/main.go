// Command flexplot renders the CSV files cmd/experiments writes — and the
// JSONL run artifacts cmd/flexsim -telemetry-out writes — as ASCII charts
// in the terminal.
//
//	flexplot results/fig1a.csv              # time series (Gbps over ms)
//	flexplot -x deployment -y p99_small_us -group scheme results/fig10_12_13.csv
//	flexplot run.jsonl                      # list available telemetry series
//	flexplot -y bytes -entity 'port/tor0:up0/q1' run.jsonl
//	flexplot -y tx_bytes -rate run.jsonl    # delta series as bytes/sec
//	flexplot timeline run.jsonl             # list forensic timelines + violations
//	flexplot timeline -flow 42 run.jsonl    # one flow's hop-by-hop journey
//	flexplot perfetto -out trace.json run.jsonl  # Chrome trace-event JSON for ui.perfetto.dev
package main

import (
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"flexpass/internal/obs"
	"flexpass/internal/perfetto"
	"flexpass/internal/plot"
	"flexpass/internal/sim"
)

var (
	xCol   = flag.String("x", "", "x column (default: first column)")
	yCol   = flag.String("y", "", "y column (default: all remaining numeric columns); for .jsonl artifacts, the series metric to plot")
	group  = flag.String("group", "", "split series by this column's values")
	entity = flag.String("entity", "", "for .jsonl artifacts: only plot series whose entity contains this substring")
	rate   = flag.Bool("rate", false, "for .jsonl artifacts: convert delta series to a per-second rate")
	title  = flag.String("title", "", "chart title (default: file name)")
	width  = flag.Int("w", 72, "chart width")
	height = flag.Int("h", 20, "chart height")
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "timeline" {
		timelineCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "perfetto" {
		perfettoCmd(os.Args[2:])
		return
	}
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flexplot [flags] <file.csv|run.jsonl>")
		fmt.Fprintln(os.Stderr, "       flexplot timeline [-flow <id>] <run.jsonl>")
		fmt.Fprintln(os.Stderr, "       flexplot perfetto [-out trace.json] <run.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if strings.HasSuffix(path, ".jsonl") {
		plotArtifact(path)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(rows) < 2 {
		fatal(fmt.Errorf("%s: no data rows", path))
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		fatal(fmt.Errorf("column %q not in %v", name, header))
		return -1
	}

	xi := 0
	if *xCol != "" {
		xi = col(*xCol)
	}
	chartTitle := *title
	if chartTitle == "" {
		chartTitle = path
	}
	ch := &plot.Chart{Title: chartTitle, XLabel: header[xi], Width: *width, Height: *height}

	if *group != "" {
		gi := col(*group)
		yi := col(*yCol)
		series := map[string]*plot.Series{}
		var order []string
		for _, row := range rows[1:] {
			x, errX := strconv.ParseFloat(row[xi], 64)
			y, errY := strconv.ParseFloat(row[yi], 64)
			if errX != nil || errY != nil {
				continue
			}
			key := row[gi]
			s, ok := series[key]
			if !ok {
				s = &plot.Series{Name: key}
				series[key] = s
				order = append(order, key)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		for _, k := range order {
			ch.Series = append(ch.Series, *series[k])
		}
		ch.YLabel = *yCol
	} else {
		// One series per numeric column (or just -y).
		for yi, name := range header {
			if yi == xi {
				continue
			}
			if *yCol != "" && name != *yCol {
				continue
			}
			s := plot.Series{Name: name}
			for _, row := range rows[1:] {
				x, errX := strconv.ParseFloat(row[xi], 64)
				y, errY := strconv.ParseFloat(row[yi], 64)
				if errX != nil || errY != nil {
					continue
				}
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
			if len(s.X) > 0 {
				ch.Series = append(ch.Series, s)
			}
		}
	}
	if err := ch.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// plotArtifact renders series from a flexsim/experiments telemetry run
// artifact. Without -y it lists what the artifact contains.
func plotArtifact(path string) {
	run, err := obs.ReadJSONLFile(path)
	if err != nil {
		fatal(err)
	}
	m := run.Manifest
	if *yCol == "" {
		fmt.Printf("%s: scheme=%s workload=%s seed=%d load=%.2f deployment=%.2f\n",
			path, m.Scheme, m.Workload, m.Seed, m.Load, m.Deployment)
		fmt.Printf("%d series, %d counters, %d histograms, %d trace events; %.0f events/sec\n\n",
			len(run.Series), len(run.Counters), len(run.Hists), len(run.Trace), m.EventsPerSec)
		fmt.Println("series (pick one with -y <metric> [-entity <substr>]):")
		seen := map[string]int{}
		var order []string
		for _, s := range run.Series {
			key := s.Metric + " (" + s.Kind + ")"
			if _, ok := seen[key]; !ok {
				order = append(order, key)
			}
			seen[key]++
		}
		for _, k := range order {
			fmt.Printf("  %-28s ×%d entities\n", k, seen[k])
		}
		return
	}

	chartTitle := *title
	if chartTitle == "" {
		chartTitle = fmt.Sprintf("%s: %s", path, *yCol)
	}
	ch := &plot.Chart{Title: chartTitle, XLabel: "time_ms", YLabel: *yCol,
		Width: *width, Height: *height}
	for _, s := range run.SeriesMatching(*yCol) {
		if *entity != "" && !strings.Contains(s.Entity, *entity) {
			continue
		}
		ps := plot.Series{Name: s.Entity}
		intervalSec := float64(s.IntervalPs) * 1e-12
		for i, v := range s.Values {
			// Sample i covers (start+(i-1)·interval, start+i·interval];
			// plot it at the window's closing edge.
			t := float64(s.StartPs+int64(i)*s.IntervalPs) * 1e-9 // ms
			y := float64(v)
			if *rate && s.Kind == "delta" && intervalSec > 0 {
				y /= intervalSec
			}
			ps.X = append(ps.X, t)
			ps.Y = append(ps.Y, y)
		}
		if len(ps.X) > 0 {
			ch.Series = append(ch.Series, ps)
		}
	}
	if len(ch.Series) == 0 {
		fatal(fmt.Errorf("no series match -y %q -entity %q (run without -y to list)", *yCol, *entity))
	}
	if *rate {
		ch.YLabel = *yCol + "/sec"
	}
	if err := ch.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// timelineCmd renders the forensics lines of a run artifact (written by
// flexsim -forensics-out): without -flow it lists violations and the
// exported timelines; with -flow it prints that flow's hop-by-hop
// journey merged chronologically with its transport lifecycle events.
// perfettoCmd converts a run artifact into Chrome trace-event JSON for
// ui.perfetto.dev: per-flow tracks from the trace ring, per-port tracks
// from forensic hop records, and a fault-action track.
func perfettoCmd(args []string) {
	fs := flag.NewFlagSet("perfetto", flag.ExitOnError)
	out := fs.String("out", "", "output file (default stdout)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flexplot perfetto [-out trace.json] <run.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	run, err := obs.ReadJSONLFile(fs.Arg(0))
	if err != nil {
		var corrupt *obs.CorruptArtifactError
		if run == nil || !errors.As(err, &corrupt) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flexplot: warning: %v — converting the salvaged prefix\n", err)
	}
	if len(run.Trace) == 0 && len(run.Forensics) == 0 && len(run.Faults) == 0 {
		fatal(fmt.Errorf("%s has no trace, forensics, or fault lines (produce them with flexsim -telemetry-out -trace-ring N, or -forensics-out)", fs.Arg(0)))
	}
	tr := perfetto.Convert(run)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tr.Write(w); err != nil {
		fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (open in ui.perfetto.dev)\n", len(tr.TraceEvents), *out)
	}
}

func timelineCmd(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	flow := fs.Uint64("flow", 0, "flow ID to render (0 lists available timelines)")
	maxHops := fs.Int("hops", 48, "cap on printed hop records (0 = all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: flexplot timeline [-flow <id>] [-hops <n>] <run.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		os.Exit(2)
	}
	run, err := obs.ReadJSONLFile(fs.Arg(0))
	if err != nil {
		var corrupt *obs.CorruptArtifactError
		if run == nil || !errors.As(err, &corrupt) {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "flexplot: warning: %v — rendering the salvaged prefix\n", err)
	}
	if len(run.Forensics) == 0 {
		fatal(fmt.Errorf("%s has no forensics lines (produce one with flexsim -forensics-out)", fs.Arg(0)))
	}

	if vs := run.Violations(); len(vs) > 0 {
		fmt.Printf("%d invariant violations:\n", len(vs))
		for _, v := range vs {
			line := fmt.Sprintf("  %12v [%s]", sim.Time(v.AtPs), v.Auditor)
			if v.Entity != "" {
				line += " " + v.Entity
			}
			if v.Flow != 0 {
				line += fmt.Sprintf(" flow=%d", v.Flow)
			}
			fmt.Println(line + ": " + v.Detail)
		}
		fmt.Println()
	}

	if len(run.Faults) > 0 {
		fmt.Printf("%d fault-plan actions:\n", len(run.Faults))
		for _, f := range run.Faults {
			line := fmt.Sprintf("  %12v  ⚡ %-12s %s", sim.Time(f.AtPs), f.Kind, f.Link)
			if f.Value != 0 {
				line += fmt.Sprintf(" (%g)", f.Value)
			}
			fmt.Println(line)
		}
		fmt.Println()
	}

	if *flow == 0 {
		tls := run.Timelines()
		fmt.Printf("%d flow timelines (render one with -flow <id>):\n", len(tls))
		fmt.Printf("  %-10s %-10s %10s %12s %9s %6s %7s\n",
			"flow", "transport", "size", "fct", "slowdown", "hops", "events")
		for _, t := range tls {
			fct := "incomplete"
			if t.FctPs >= 0 {
				fct = sim.Time(t.FctPs).String()
			}
			fmt.Printf("  %-10d %-10s %9dB %12s %9.2f %6d %7d\n",
				t.Flow, t.Transport, t.Size, fct, t.Slowdown, len(t.Hops), len(t.Events))
		}
		return
	}

	t := run.FindTimeline(*flow)
	if t == nil {
		fatal(fmt.Errorf("flow %d has no timeline in this artifact (flexsim -trace-flow %d forces one)", *flow, *flow))
	}
	fct := "incomplete"
	if t.FctPs >= 0 {
		fct = sim.Time(t.FctPs).String()
	}
	fmt.Printf("flow %d %s size=%dB start=%v fct=%s slowdown=%.2f\n",
		t.Flow, t.Transport, t.Size, sim.Time(t.StartPs), fct, t.Slowdown)
	if len(t.Delays) > 0 {
		fmt.Println("per-hop queueing delay:")
		for _, d := range t.Delays {
			avg := int64(0)
			if d.Dequeues > 0 {
				avg = d.TotalWaitPs / d.Dequeues
			}
			fmt.Printf("  %-28s %5d pkts  avg %-10v max %-10v drops %d\n",
				d.Port, d.Dequeues, sim.Time(avg), sim.Time(d.MaxWaitPs), d.Drops)
		}
	}

	// Merge hop records and lifecycle events into one chronology.
	type row struct {
		at   int64
		text string
	}
	var rows []row
	for _, h := range t.Hops {
		detail := ""
		switch h.Event {
		case "deq":
			detail = fmt.Sprintf("waited %v, tx %v", sim.Time(h.WaitPs), sim.Time(h.TxPs))
		case "enq":
			detail = fmt.Sprintf("queue %dB", h.QueueBytes)
		case "drop":
			detail = "reason " + h.Reason
		}
		color := ""
		if h.Color != "" && h.Color != "green" {
			color = " " + h.Color
		}
		rows = append(rows, row{h.AtPs, fmt.Sprintf("%-4s %-24s q%-2d %-12s seq=%-6d%s %s",
			h.Event, h.Port, h.Queue, h.Kind, h.Seq, color, detail)})
	}
	for _, ev := range t.Events {
		rows = append(rows, row{ev.AtPs, fmt.Sprintf("◆    %-12s seq=%d %s", ev.Kind, ev.Seq, ev.Note)})
	}
	// Fault actions interleave so the reader sees the flow's hops against
	// the fault window that explains them.
	for _, f := range run.Faults {
		val := ""
		if f.Value != 0 {
			val = fmt.Sprintf(" (%g)", f.Value)
		}
		rows = append(rows, row{f.AtPs, fmt.Sprintf("⚡    %-12s %s%s", f.Kind, f.Link, val)})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].at < rows[j].at })
	skipped := 0
	if *maxHops > 0 && len(rows) > *maxHops {
		skipped = len(rows) - *maxHops
		rows = rows[len(rows)-*maxHops:]
	}
	if t.HopsDropped > 0 || skipped > 0 {
		fmt.Printf("timeline (%d older records elided; raise -hops or the HopCap):\n",
			int64(skipped)+t.HopsDropped)
	} else {
		fmt.Println("timeline:")
	}
	for _, r := range rows {
		fmt.Printf("  %12v  %s\n", sim.Time(r.at), r.text)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexplot:", err)
	os.Exit(1)
}
