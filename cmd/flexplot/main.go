// Command flexplot renders the CSV files cmd/experiments writes — and the
// JSONL run artifacts cmd/flexsim -telemetry-out writes — as ASCII charts
// in the terminal.
//
//	flexplot results/fig1a.csv              # time series (Gbps over ms)
//	flexplot -x deployment -y p99_small_us -group scheme results/fig10_12_13.csv
//	flexplot run.jsonl                      # list available telemetry series
//	flexplot -y bytes -entity 'port/tor0:up0/q1' run.jsonl
//	flexplot -y tx_bytes -rate run.jsonl    # delta series as bytes/sec
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"flexpass/internal/obs"
	"flexpass/internal/plot"
)

var (
	xCol   = flag.String("x", "", "x column (default: first column)")
	yCol   = flag.String("y", "", "y column (default: all remaining numeric columns); for .jsonl artifacts, the series metric to plot")
	group  = flag.String("group", "", "split series by this column's values")
	entity = flag.String("entity", "", "for .jsonl artifacts: only plot series whose entity contains this substring")
	rate   = flag.Bool("rate", false, "for .jsonl artifacts: convert delta series to a per-second rate")
	title  = flag.String("title", "", "chart title (default: file name)")
	width  = flag.Int("w", 72, "chart width")
	height = flag.Int("h", 20, "chart height")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: flexplot [flags] <file.csv|run.jsonl>")
		os.Exit(2)
	}
	path := flag.Arg(0)
	if strings.HasSuffix(path, ".jsonl") {
		plotArtifact(path)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		fatal(err)
	}
	if len(rows) < 2 {
		fatal(fmt.Errorf("%s: no data rows", path))
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		fatal(fmt.Errorf("column %q not in %v", name, header))
		return -1
	}

	xi := 0
	if *xCol != "" {
		xi = col(*xCol)
	}
	chartTitle := *title
	if chartTitle == "" {
		chartTitle = path
	}
	ch := &plot.Chart{Title: chartTitle, XLabel: header[xi], Width: *width, Height: *height}

	if *group != "" {
		gi := col(*group)
		yi := col(*yCol)
		series := map[string]*plot.Series{}
		var order []string
		for _, row := range rows[1:] {
			x, errX := strconv.ParseFloat(row[xi], 64)
			y, errY := strconv.ParseFloat(row[yi], 64)
			if errX != nil || errY != nil {
				continue
			}
			key := row[gi]
			s, ok := series[key]
			if !ok {
				s = &plot.Series{Name: key}
				series[key] = s
				order = append(order, key)
			}
			s.X = append(s.X, x)
			s.Y = append(s.Y, y)
		}
		for _, k := range order {
			ch.Series = append(ch.Series, *series[k])
		}
		ch.YLabel = *yCol
	} else {
		// One series per numeric column (or just -y).
		for yi, name := range header {
			if yi == xi {
				continue
			}
			if *yCol != "" && name != *yCol {
				continue
			}
			s := plot.Series{Name: name}
			for _, row := range rows[1:] {
				x, errX := strconv.ParseFloat(row[xi], 64)
				y, errY := strconv.ParseFloat(row[yi], 64)
				if errX != nil || errY != nil {
					continue
				}
				s.X = append(s.X, x)
				s.Y = append(s.Y, y)
			}
			if len(s.X) > 0 {
				ch.Series = append(ch.Series, s)
			}
		}
	}
	if err := ch.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// plotArtifact renders series from a flexsim/experiments telemetry run
// artifact. Without -y it lists what the artifact contains.
func plotArtifact(path string) {
	run, err := obs.ReadJSONLFile(path)
	if err != nil {
		fatal(err)
	}
	m := run.Manifest
	if *yCol == "" {
		fmt.Printf("%s: scheme=%s workload=%s seed=%d load=%.2f deployment=%.2f\n",
			path, m.Scheme, m.Workload, m.Seed, m.Load, m.Deployment)
		fmt.Printf("%d series, %d counters, %d histograms, %d trace events; %.0f events/sec\n\n",
			len(run.Series), len(run.Counters), len(run.Hists), len(run.Trace), m.EventsPerSec)
		fmt.Println("series (pick one with -y <metric> [-entity <substr>]):")
		seen := map[string]int{}
		var order []string
		for _, s := range run.Series {
			key := s.Metric + " (" + s.Kind + ")"
			if _, ok := seen[key]; !ok {
				order = append(order, key)
			}
			seen[key]++
		}
		for _, k := range order {
			fmt.Printf("  %-28s ×%d entities\n", k, seen[k])
		}
		return
	}

	chartTitle := *title
	if chartTitle == "" {
		chartTitle = fmt.Sprintf("%s: %s", path, *yCol)
	}
	ch := &plot.Chart{Title: chartTitle, XLabel: "time_ms", YLabel: *yCol,
		Width: *width, Height: *height}
	for _, s := range run.SeriesMatching(*yCol) {
		if *entity != "" && !strings.Contains(s.Entity, *entity) {
			continue
		}
		ps := plot.Series{Name: s.Entity}
		intervalSec := float64(s.IntervalPs) * 1e-12
		for i, v := range s.Values {
			// Sample i covers (start+(i-1)·interval, start+i·interval];
			// plot it at the window's closing edge.
			t := float64(s.StartPs+int64(i)*s.IntervalPs) * 1e-9 // ms
			y := float64(v)
			if *rate && s.Kind == "delta" && intervalSec > 0 {
				y /= intervalSec
			}
			ps.X = append(ps.X, t)
			ps.Y = append(ps.Y, y)
		}
		if len(ps.X) > 0 {
			ch.Series = append(ch.Series, ps)
		}
	}
	if len(ch.Series) == 0 {
		fatal(fmt.Errorf("no series match -y %q -entity %q (run without -y to list)", *yCol, *entity))
	}
	if *rate {
		ch.YLabel = *yCol + "/sec"
	}
	if err := ch.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexplot:", err)
	os.Exit(1)
}
