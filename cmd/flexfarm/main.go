// Command flexfarm orchestrates experiment sweeps and queries the
// result lake they produce.
//
//	flexfarm run    -spec sweep.json -out results_sweep [-workers N] [-force] [-v]
//	                [-serve :8080] [-serve-linger 60s] [-summary-every 2s]
//	flexfarm ingest -lake results_sweep [artifact-dir...]
//	flexfarm query  -lake results_sweep [-where k=v,...] [-group-by a,b] [-agg m:fn,...] [-csv]
//	flexfarm bench  -lake results_sweep [-ingest FILE.json...] [-bench NAME] [-metric UNIT]
//	flexfarm diff   BASELINE CANDIDATE [-tolerance PCT] [-abs X] [-metrics m,...]
//
// run expands the sweep spec's cross-product, executes it on all cores
// with content-addressed, resumable artifacts, and indexes the lake.
// The spec's workload axis accepts distribution names ("websearch") and
// workload-plan files (*.json, see internal/workload); plan entries are
// identified by content hash, queryable as workload_plan_sig.
// While it runs, progress is a rate-limited summary line (done/total,
// running, failed, ETA); -v restores one line per point. With -serve the
// process exposes live /status (JSON progress), /metrics (Prometheus),
// and /debug/pprof/ endpoints for the duration of the sweep.
// query answers filter/group-by/aggregate questions — a paper figure
// like p99 FCT by scheme and load is:
//
//	flexfarm query -lake results_sweep -group-by scheme,load -agg fct_p99_us:mean
//
// diff compares two lakes (directories or index files) scenario by
// scenario and exits 1 when any deterministic metric drifts beyond
// tolerance — the cross-run regression gate CI runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"flexpass/internal/farm"
	"flexpass/internal/lake"
	"flexpass/internal/live"
	"flexpass/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "ingest":
		ingestCmd(os.Args[2:])
	case "query":
		queryCmd(os.Args[2:])
	case "bench":
		benchCmd(os.Args[2:])
	case "diff":
		diffCmd(os.Args[2:])
	case "chaos":
		chaosCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: flexfarm run|ingest|query|bench|diff|chaos [flags]  (see `go doc ./cmd/flexfarm`)")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flexfarm:", err)
	os.Exit(1)
}

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	spec := fs.String("spec", "", "sweep spec JSON file (required)")
	out := fs.String("out", "", "lake directory to land artifacts and the index in (required)")
	workers := fs.Int("workers", 0, "worker pool size (0 = all cores)")
	force := fs.Bool("force", false, "re-run scenarios even when a valid artifact exists")
	verbose := fs.Bool("v", false, "log one line per scenario outcome")
	shards := fs.Int("shards", -1, "override the spec's shards axis with one parallel-engine shard count (0 = single engine, -1 = use the spec)")
	serve := fs.String("serve", "", "serve live /status, /metrics, and pprof on this address (e.g. :8080)")
	linger := fs.Duration("serve-linger", 0, "keep the -serve endpoint up this long after the sweep finishes")
	summaryEvery := fs.Duration("summary-every", 2*time.Second, "periodic progress summary interval (0 disables)")
	pointTimeout := fs.Duration("point-timeout", 0, "wall-clock deadline per scenario; exceeded points are killed and recorded as failures (0 = off)")
	retries := fs.Int("retries", 0, "re-run a failed point up to this many extra times")
	backoff := fs.Duration("backoff", 0, "base delay before a retry, doubling per attempt (default 250ms when retries > 0)")
	fs.Parse(args)
	if *spec == "" || *out == "" {
		fatal(fmt.Errorf("run needs -spec and -out"))
	}
	s, err := farm.ParseSpecFile(*spec)
	if err != nil {
		fatal(err)
	}
	if *shards >= 0 {
		s.Shards = []int{*shards}
	}
	points, err := s.Points()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep %q: %d scenarios -> %s\n", s.Name, len(points), *out)

	// Progress plumbing: every event feeds the tracker; the log gets
	// either the legacy per-point lines (-v) or immediate failures plus
	// the rate-limited summary ticker below.
	tracker := farm.NewTracker(s.Name, len(points))
	logLine := func(ev farm.ProgressEvent) {
		if ev.Kind == farm.EventFailed {
			fmt.Fprintf(os.Stderr, "FAIL %s %s: %s\n", ev.Hash, ev.Label, ev.Err)
		} else if *verbose && ev.Kind != farm.EventStarted {
			fmt.Fprintf(os.Stderr, "%-4s %s %s\n", ev.Kind, ev.Hash, ev.Label)
		}
	}
	// SIGINT/SIGTERM stop dispatching new points; in-flight points
	// finish, failures.jsonl and the index are still written, and the
	// sweep resumes from its artifacts on the next invocation.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opt := farm.Options{
		Workers: *workers, Force: *force,
		Progress:     farm.Fanout(tracker.Observe, logLine),
		PointTimeout: *pointTimeout,
		Retries:      *retries,
		Backoff:      *backoff,
		Ctx:          ctx,
	}

	var srv *live.Server
	if *serve != "" {
		reg := obs.NewRegistry()
		tracker.Register(reg)
		srv = live.NewServer(func() any { return tracker.Status() }, reg.Final)
		bound, err := srv.Start(*serve)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "introspection: http://%s/status  /metrics  /debug/pprof/\n", bound)
	}

	stopSummary := make(chan struct{})
	if !*verbose && *summaryEvery > 0 {
		go func() {
			tick := time.NewTicker(*summaryEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					fmt.Fprintln(os.Stderr, tracker.Summary())
				case <-stopSummary:
					return
				}
			}
		}()
	}

	rep, err := farm.Execute(points, *out, opt)
	close(stopSummary)
	if err != nil {
		fatal(err)
	}
	interrupted := ""
	if rep.Canceled {
		interrupted = " — interrupted, resume with the same command"
	}
	fmt.Fprintf(os.Stderr, "sweep %q: %d ran, %d resumed, %d failed (of %d)%s\n",
		s.Name, rep.Ran, rep.Skipped, len(rep.Failures), rep.Total, interrupted)
	for _, f := range rep.Failures {
		fmt.Fprintf(os.Stderr, "  FAIL %s %s: %s\n", f.Hash, f.Label, f.Error)
	}
	if srv != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "sweep done; keeping introspection endpoint up for %s\n", *linger)
		time.Sleep(*linger)
	}
	srv.Close()
	if len(rep.Failures) > 0 || rep.Canceled {
		os.Exit(1)
	}
}

func ingestCmd(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "lake directory to (re)build the index in (required)")
	fs.Parse(args)
	if *lakeDir == "" {
		fatal(fmt.Errorf("ingest needs -lake"))
	}
	dirs := fs.Args()
	if len(dirs) == 0 {
		dirs = []string{*lakeDir + "/" + lake.RunsDir}
	}
	ix := &lake.Index{}
	total := 0
	for _, d := range dirs {
		n, errs := ix.IngestDir(d)
		total += n
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, "flexfarm: warning:", err)
		}
	}
	ix.Sort()
	if err := ix.WriteTo(*lakeDir); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "indexed %d runs into %s/%s\n", total, *lakeDir, lake.IndexFile)
}

func queryCmd(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "lake directory or index file (required)")
	where := fs.String("where", "", "comma-separated filter conditions (k=v, k!=v, k<v, k<=v, k>v, k>=v; globs for strings)")
	groupBy := fs.String("group-by", "", "comma-separated dimension columns")
	agg := fs.String("agg", "", "comma-separated aggregates col:fn (fn: mean,sum,min,max,count,p50,p90,p99); default count")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	cols := fs.Bool("columns", false, "list queryable columns and exit")
	fs.Parse(args)
	if *cols {
		fmt.Println(strings.Join(lake.ColumnNames(), "\n"))
		return
	}
	if *lakeDir == "" {
		fatal(fmt.Errorf("query needs -lake"))
	}
	ix, err := lake.Load(*lakeDir)
	if err != nil {
		fatal(err)
	}
	q := lake.Query{}
	for _, c := range splitList(*where) {
		cond, err := lake.ParseCond(c)
		if err != nil {
			fatal(err)
		}
		q.Where = append(q.Where, cond)
	}
	q.GroupBy = splitList(*groupBy)
	if *agg != "" {
		if q.Aggs, err = lake.ParseAggs(*agg); err != nil {
			fatal(err)
		}
	}
	t, err := ix.Run(q)
	if err != nil {
		fatal(err)
	}
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func benchCmd(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	lakeDir := fs.String("lake", "", "lake directory or index file (required)")
	bench := fs.String("bench", "", "filter by benchmark name")
	metric := fs.String("metric", "", "filter by metric unit (e.g. ns/op)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	fs.Parse(args)
	if *lakeDir == "" {
		fatal(fmt.Errorf("bench needs -lake"))
	}
	ix, err := lake.Load(*lakeDir)
	if err != nil {
		fatal(err)
	}
	// Positional args are benchjson artifacts to ingest before querying.
	ingested := 0
	for _, p := range fs.Args() {
		n, err := ix.IngestBenchFile(p)
		if err != nil {
			fatal(err)
		}
		ingested += n
	}
	if ingested > 0 {
		ix.Sort()
		target := *lakeDir
		if fi, err := os.Stat(target); err == nil && fi.IsDir() {
			if err := ix.WriteTo(target); err != nil {
				fatal(err)
			}
		} else if err := ix.WriteFile(target); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ingested %d bench metrics\n", ingested)
	}
	t := ix.BenchTable(*bench, *metric)
	if *csv {
		err = t.WriteCSV(os.Stdout)
	} else {
		err = t.WriteText(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
}

func diffCmd(args []string) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	tolPct := fs.Float64("tolerance", 0, "relative drift tolerance in percent")
	tolAbs := fs.Float64("abs", 0, "absolute drift tolerance")
	metrics := fs.String("metrics", "", "comma-separated metric columns to gate on (default: the deterministic set)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fatal(fmt.Errorf("diff needs exactly two lakes: flexfarm diff BASELINE CANDIDATE"))
	}
	base, err := lake.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	cand, err := lake.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	var gate []string
	if *metrics != "" {
		gate = splitList(*metrics)
	}
	rep, err := lake.Diff(base, cand, lake.Tolerance{Pct: *tolPct, Abs: *tolAbs}, gate)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
