package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flexpass/internal/chaos"
)

// chaosCmd dispatches the chaos-search verbs:
//
//	flexfarm chaos run    -spec chaos.json -out DIR [-trials N] [-seed S] [-workers N] [-shrink] [-v]
//	flexfarm chaos shrink REPRO.json [-out FILE] [-deadline D] [-stall D] [-v]
//	flexfarm chaos replay REPRO.json [-deadline D] [-stall D]
func chaosCmd(args []string) {
	if len(args) < 1 {
		fatal(fmt.Errorf("chaos needs a verb: run, shrink, or replay"))
	}
	switch args[0] {
	case "run":
		chaosRunCmd(args[1:])
	case "shrink":
		chaosShrinkCmd(args[1:])
	case "replay":
		chaosReplayCmd(args[1:])
	default:
		fatal(fmt.Errorf("unknown chaos verb %q (want run, shrink, or replay)", args[0]))
	}
}

func chaosRunCmd(args []string) {
	fs := flag.NewFlagSet("chaos run", flag.ExitOnError)
	specPath := fs.String("spec", "", "chaos spec JSON file (required)")
	out := fs.String("out", "", "output directory for trials.jsonl and repro-*.json (required)")
	trials := fs.Int("trials", 0, "override the spec's trial count")
	seed := fs.Int64("seed", -1, "override the spec's seed")
	workers := fs.Int("workers", 0, "concurrent trials (0 = all cores)")
	shrink := fs.Bool("shrink", false, "delta-debug each failing trial to a minimal repro in place")
	verbose := fs.Bool("v", false, "log one line per trial")
	fs.Parse(args)
	if *specPath == "" || *out == "" {
		fatal(fmt.Errorf("chaos run needs -spec and -out"))
	}
	spec, err := chaos.ParseSpecFile(*specPath)
	if err != nil {
		fatal(err)
	}
	if *trials > 0 {
		spec.Trials = *trials
	}
	if *seed >= 0 {
		spec.Seed = *seed
	}
	ts, err := chaos.Generate(spec)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "chaos %q: %d trials (seed %d, digest %s) -> %s\n",
		spec.Name, len(ts), spec.Seed, chaos.Digest(ts), *out)

	// SIGINT stops dispatching new trials; in-flight trials finish and
	// everything completed so far still lands in trials.jsonl.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := chaos.SoakOptions{
		Workers: *workers,
		Ctx:     ctx,
		OutDir:  *out,
	}
	if *verbose {
		opt.Progress = func(tr chaos.TrialResult) {
			fmt.Fprintf(os.Stderr, "trial %3d  %-10s %6.0fms  %s\n",
				tr.Trial.Index, tr.Verdict.Outcome, tr.ElapsedMS, tr.Verdict.Detail)
		}
	} else {
		opt.Progress = func(tr chaos.TrialResult) {
			if tr.Verdict.Failed() {
				fmt.Fprintf(os.Stderr, "FAIL trial %d (%s): %s\n",
					tr.Trial.Index, tr.Verdict.Outcome, tr.Verdict.Detail)
			}
		}
	}
	rep, err := chaos.Soak(spec, ts, opt)
	if err != nil {
		fatal(err)
	}
	if *shrink && rep.Failed > 0 {
		for _, tr := range rep.Results {
			if !tr.Verdict.Failed() || tr.ReproPath == "" {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			shrinkInPlace(tr.ReproPath, spec, *verbose)
		}
	}
	fmt.Fprintf(os.Stderr, "chaos %q: %d passed, %d failed of %d", spec.Name, rep.Passed, rep.Failed, rep.Trials)
	if rep.Canceled {
		fmt.Fprint(os.Stderr, " (interrupted)")
	}
	fmt.Fprintln(os.Stderr)
	for o, n := range rep.ByOutcome {
		if o != chaos.OutcomePass {
			fmt.Fprintf(os.Stderr, "  %-10s %d\n", o, n)
		}
	}
	if rep.Failed > 0 || rep.Canceled {
		os.Exit(1)
	}
}

// shrinkInPlace minimizes one repro file, overwriting it on success.
func shrinkInPlace(path string, spec *chaos.Spec, verbose bool) {
	r, err := chaos.ParseReproFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shrink %s: %v\n", path, err)
		return
	}
	opt := chaos.ShrinkOptions{
		Deadline: time.Duration(spec.DeadlineMS * float64(time.Millisecond)),
		Stall:    time.Duration(spec.StallMS * float64(time.Millisecond)),
	}
	res, err := chaos.Shrink(r, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shrink %s: %v\n", path, err)
		return
	}
	if err := res.Repro.WriteFile(path); err != nil {
		fmt.Fprintf(os.Stderr, "shrink %s: %v\n", path, err)
		return
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "shrunk %s: %d->%d fault events, %d->%d flows (%d probes)\n",
			path, res.EventsBefore, res.EventsAfter, res.FlowsBefore, res.FlowsAfter, res.Probes)
	}
}

func chaosShrinkCmd(args []string) {
	fs := flag.NewFlagSet("chaos shrink", flag.ExitOnError)
	out := fs.String("out", "", "write the shrunk repro here (default: overwrite the input)")
	deadline := fs.Duration("deadline", 0, "wall-clock kill per probe replay (0 = off)")
	stall := fs.Duration("stall", 0, "engine-horizon stall kill per probe replay (0 = off)")
	verbose := fs.Bool("v", false, "log every probe")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("chaos shrink needs exactly one repro file"))
	}
	path := fs.Arg(0)
	r, err := chaos.ParseReproFile(path)
	if err != nil {
		fatal(err)
	}
	opt := chaos.ShrinkOptions{Deadline: *deadline, Stall: *stall}
	if *verbose {
		opt.Progress = func(probe, events, flows int, v chaos.Verdict) {
			fmt.Fprintf(os.Stderr, "probe %3d: %d events, %d flows -> %s\n", probe, events, flows, v.Outcome)
		}
	}
	res, err := chaos.Shrink(r, opt)
	if err != nil {
		fatal(err)
	}
	target := *out
	if target == "" {
		target = path
	}
	if err := res.Repro.WriteFile(target); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "shrunk %s: %d->%d fault events, %d->%d flows (%d probes) -> %s\n",
		path, res.EventsBefore, res.EventsAfter, res.FlowsBefore, res.FlowsAfter, res.Probes, target)
}

func chaosReplayCmd(args []string) {
	fs := flag.NewFlagSet("chaos replay", flag.ExitOnError)
	deadline := fs.Duration("deadline", 0, "wall-clock kill for the replay (0 = off)")
	stall := fs.Duration("stall", 0, "engine-horizon stall kill for the replay (0 = off)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("chaos replay needs exactly one repro file"))
	}
	r, err := chaos.ParseReproFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	v := r.Replay(*deadline, *stall)
	fmt.Printf("outcome: %s\n", v.Outcome)
	if v.Detail != "" {
		fmt.Printf("detail:  %s\n", v.Detail)
	}
	fmt.Printf("violations=%d dropped=%d incomplete=%d strays=%d\n",
		v.Violations, v.ViolationsDropped, v.Incomplete, v.Strays)
	if r.Outcome != "" && v.Outcome != r.Outcome {
		fmt.Fprintf(os.Stderr, "replay outcome %q differs from the recorded %q\n", v.Outcome, r.Outcome)
		os.Exit(1)
	}
	if v.Failed() {
		os.Exit(1) // reproduced: the failure is still there
	}
}
