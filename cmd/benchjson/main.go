// Command benchjson turns `go test -bench` output into a machine-readable
// JSON artifact and compares two such artifacts into a regression report.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/sim/ | benchjson parse > baseline.json
//	benchjson compare baseline.json current.json > BENCH_PR3.json
//
// The parse mode extracts every metric a benchmark line reports (ns/op,
// B/op, allocs/op, plus custom metrics such as events/sec), keyed by the
// benchmark name with the -GOMAXPROCS suffix stripped. The compare mode
// emits baseline, current, and per-metric percentage deltas; for
// cost-like metrics (ns/op, allocs/op, B/op) negative deltas are
// improvements.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics maps a metric unit ("ns/op", "allocs/op", "events/sec", ...)
// to its value for one benchmark.
type Metrics map[string]float64

// Artifact is the parse-mode output: benchmark name → metrics.
type Artifact struct {
	GeneratedAt string             `json:"generated_at"`
	GoOS        string             `json:"goos,omitempty"`
	GoArch      string             `json:"goarch,omitempty"`
	Benchmarks  map[string]Metrics `json:"benchmarks"`
}

// Report is the compare-mode output.
type Report struct {
	GeneratedAt string             `json:"generated_at"`
	Baseline    map[string]Metrics `json:"baseline"`
	Current     map[string]Metrics `json:"current"`
	// DeltaPct is (current-baseline)/baseline × 100 per shared metric.
	// For ns/op, allocs/op, and B/op a negative value is an improvement.
	DeltaPct map[string]Metrics `json:"delta_pct"`
}

func main() {
	if len(os.Args) < 2 {
		fatal("usage: benchjson parse|compare [args]")
	}
	switch os.Args[1] {
	case "parse":
		parseCmd()
	case "compare":
		if len(os.Args) != 4 {
			fatal("usage: benchjson compare baseline.json current.json")
		}
		compareCmd(os.Args[2], os.Args[3])
	default:
		fatal("unknown mode %q", os.Args[1])
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

func parseCmd() {
	art := Artifact{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Benchmarks:  map[string]Metrics{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		// Pass the raw output through so the artifact pipeline stays
		// observable in CI logs.
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			art.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			art.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		}
		name, m, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, dup := art.Benchmarks[name]; dup {
			// Multiple -count runs: keep the minimum of cost metrics and
			// the maximum of rate metrics (best observed performance).
			for k, v := range m {
				if old, ok := prev[k]; ok {
					if isRate(k) {
						if v > old {
							prev[k] = v
						}
					} else if v < old {
						prev[k] = v
					}
				} else {
					prev[k] = v
				}
			}
		} else {
			art.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading stdin: %v", err)
	}
	if len(art.Benchmarks) == 0 {
		fatal("no benchmark lines found on stdin")
	}
	emit(art)
}

// isRate reports whether higher values of the metric are better.
func isRate(unit string) bool {
	return strings.Contains(unit, "/sec") || strings.Contains(unit, "/s")
}

// parseBenchLine parses one `Benchmark...` result line. The format is
// "BenchmarkName-P  N  v1 unit1  v2 unit2 ...".
func parseBenchLine(line string) (string, Metrics, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return "", nil, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
		return "", nil, false
	}
	m := Metrics{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return "", nil, false
	}
	return name, m, true
}

func compareCmd(basePath, curPath string) {
	base := readArtifact(basePath)
	cur := readArtifact(curPath)
	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Baseline:    base.Benchmarks,
		Current:     cur.Benchmarks,
		DeltaPct:    map[string]Metrics{},
	}
	var names []string
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bm, ok := base.Benchmarks[name]
		if !ok {
			continue
		}
		cm := cur.Benchmarks[name]
		d := Metrics{}
		for unit, cv := range cm {
			bv, ok := bm[unit]
			if !ok || bv == 0 {
				continue
			}
			d[unit] = round2((cv - bv) / bv * 100)
		}
		if len(d) > 0 {
			rep.DeltaPct[name] = d
		}
	}
	emit(rep)

	// Human-readable summary on stderr for CI logs.
	for _, name := range names {
		d, ok := rep.DeltaPct[name]
		if !ok {
			continue
		}
		var parts []string
		for _, unit := range []string{"ns/op", "allocs/op", "B/op", "events/sec"} {
			if v, ok := d[unit]; ok {
				parts = append(parts, fmt.Sprintf("%s %+0.1f%%", unit, v))
			}
		}
		fmt.Fprintf(os.Stderr, "%-40s %s\n", name, strings.Join(parts, "  "))
	}
}

func round2(v float64) float64 {
	if v < 0 {
		return float64(int64(v*100-0.5)) / 100
	}
	return float64(int64(v*100+0.5)) / 100
}

func readArtifact(path string) Artifact {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal("%v", err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		fatal("parsing %s: %v", path, err)
	}
	return art
}

func emit(v any) {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal("encoding: %v", err)
	}
	os.Stdout.Write(append(out, '\n'))
}
