package flexpass

// One benchmark per paper figure/table. Each bench runs the corresponding
// harness driver at reduced scale and reports the figure's headline
// numbers as custom metrics (microseconds, Gbps, fractions), so
// `go test -bench=.` regenerates the shape of the whole evaluation.
//
// The full-scale, full-duration reproduction lives in cmd/experiments.

import (
	"testing"

	"flexpass/internal/harness"
	"flexpass/internal/metrics"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// benchBase is the scaled §6.2 scenario all deployment benches share.
func benchBase() harness.Scenario {
	sc := harness.BaseScenario(false)
	sc.Duration = 5 * sim.Millisecond
	sc.Drain = 50 * sim.Millisecond
	return sc
}

func reportTail(b *testing.B, pts []harness.DeploymentPoint) {
	for _, p := range pts {
		if p.Scheme == harness.SchemeFlexPass && p.Deployment == 1.0 {
			b.ReportMetric(p.P99Small.Micros(), "p99small-us")
			b.ReportMetric(p.AvgAll.Micros(), "avgFCT-us")
		}
	}
}

func BenchmarkFig01ExpressPassVsDCTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.Fig1a(1, 40*sim.Millisecond)
		xp := mean(s.Series["ExpressPass"])
		dc := mean(s.Series["DCTCP"])
		b.ReportMetric(xp.Gbits(), "xpass-gbps")
		b.ReportMetric(dc.Gbits(), "dctcp-gbps")
	}
}

func BenchmarkFig01HomaVsDCTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.Fig1b(1, 30*sim.Millisecond)
		b.ReportMetric(mean(s.Series["HOMA"]).Gbits(), "homa-gbps")
		b.ReportMetric(mean(s.Series["DCTCP"]).Gbits(), "dctcp-gbps")
	}
}

func BenchmarkFig05SplittingAblation(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, []harness.Scheme{harness.SchemeFlexPass, harness.SchemeFlexPassRC3}, []float64{0.5})
		for _, p := range pts {
			if p.Scheme == harness.SchemeFlexPassRC3 {
				b.ReportMetric(p.AvgReorderKB, "rc3-reorder-kb")
			} else {
				b.ReportMetric(p.AvgReorderKB, "flexpass-reorder-kb")
			}
		}
	}
}

func BenchmarkFig05AltQueueing(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, []harness.Scheme{harness.SchemeFlexPass, harness.SchemeFlexPassAltQ}, []float64{0.5})
		for _, p := range pts {
			if p.Scheme == harness.SchemeFlexPassAltQ {
				b.ReportMetric(p.P99Small.Micros(), "altq-p99small-us")
			} else {
				b.ReportMetric(p.P99Small.Micros(), "flexpass-p99small-us")
			}
		}
	}
}

func BenchmarkFig07SubflowShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := harness.Fig7("a", 1, 30*sim.Millisecond)
		b.ReportMetric(mean(s.Series["Proactive"]).Gbits(), "proactive-gbps")
		b.ReportMetric(mean(s.Series["Reactive"]).Gbits(), "reactive-gbps")
	}
}

func BenchmarkFig08Incast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Fig8([]int{64}, []int64{1})
		for _, r := range rows {
			switch r.Transport {
			case "dctcp":
				b.ReportMetric(r.MaxFCT.Millis(), "dctcp-maxfct-ms")
				b.ReportMetric(float64(r.Timeouts), "dctcp-timeouts")
			case "flexpass":
				b.ReportMetric(r.MaxFCT.Millis(), "flexpass-maxfct-ms")
				b.ReportMetric(float64(r.Timeouts), "flexpass-timeouts")
			}
		}
	}
}

func BenchmarkFig09Starvation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig9(1, 50*sim.Millisecond)
		b.ReportMetric(r.StarvedExpressPassSide, "xpass-starved-frac")
		b.ReportMetric(r.StarvedFlexPassSide, "flexpass-starved-frac")
	}
}

func BenchmarkFig10Deployment(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, harness.Schemes, []float64{0, 0.5, 1.0})
		reportTail(b, pts)
	}
}

func BenchmarkFig11MixedTraffic(b *testing.B) {
	base := benchBase()
	base.IncastFraction = 0.1
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, []harness.Scheme{harness.SchemeNaive, harness.SchemeFlexPass}, []float64{0.5})
		for _, p := range pts {
			b.ReportMetric(p.P99Small.Micros(), string(p.Scheme)+"-p99small-us")
		}
	}
}

func BenchmarkFig12PerTypeTail(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, []harness.Scheme{harness.SchemeFlexPass}, []float64{0.5})
		b.ReportMetric(pts[0].P99SmallLegacy.Micros(), "legacy-p99-us")
		b.ReportMetric(pts[0].P99SmallNew.Micros(), "new-p99-us")
	}
}

func BenchmarkFig13PerTypeStddev(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Sweep(base, []harness.Scheme{harness.SchemeFlexPass}, []float64{0.5})
		b.ReportMetric(pts[0].StdSmallLegacy.Micros(), "legacy-std-us")
		b.ReportMetric(pts[0].StdSmallNew.Micros(), "new-std-us")
	}
}

func BenchmarkFig14LoadSensitivity(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Fig14(base, []float64{0.4})
		for _, p := range pts {
			if p.Scheme == harness.SchemeFlexPass && p.Deployment == 0.5 {
				b.ReportMetric(p.P99Small.Micros(), "p99small-us")
			}
		}
	}
}

func BenchmarkFig15Workloads(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Fig15and16(base, []string{"hadoop"})
		for _, p := range pts {
			if p.Scheme == harness.SchemeFlexPass && p.Deployment == 1.0 {
				b.ReportMetric(p.P99Small.Micros(), "hadoop-p99small-us")
			}
		}
	}
}

func BenchmarkFig16WorkloadsAvg(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Fig15and16(base, []string{"cachefollower"})
		for _, p := range pts {
			if p.Scheme == harness.SchemeFlexPass && p.Deployment == 1.0 {
				b.ReportMetric(p.AvgAll.Micros(), "cache-avgFCT-us")
			}
		}
	}
}

func BenchmarkFig17DropThreshold(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		pts := harness.Fig17(base, []units.ByteSize{50 * units.KB, 150 * units.KB})
		b.ReportMetric(pts[0].P99Small.Micros(), "thr50k-p99-us")
		b.ReportMetric(pts[1].P99Small.Micros(), "thr150k-p99-us")
	}
}

func BenchmarkFig18QueueWeight(b *testing.B) {
	base := benchBase()
	base.Duration = 4 * sim.Millisecond
	for i := 0; i < b.N; i++ {
		rows := harness.Fig18(base, []float64{0.5})
		b.ReportMetric(rows[0].P99SmallFull.Micros(), "wq50-p99full-us")
	}
}

func BenchmarkQueueOccupancy(b *testing.B) {
	base := benchBase()
	base.SampleQueues = true
	base.Deployment = 0.5
	for i := 0; i < b.N; i++ {
		pt := harness.RunPoint(base)
		b.ReportMetric(float64(pt.QueueAvg)/1000, "q1-avg-kb")
		b.ReportMetric(float64(pt.QueueP90)/1000, "q1-p90-kb")
		b.ReportMetric(pt.RedundantFrac, "redundant-frac")
	}
}

// BenchmarkAblations runs the design-choice ablations DESIGN.md calls
// out (proactive retransmission off, Reno reactive, RC3 splitting,
// alternative queueing) and reports each variant's small-flow tail.
func BenchmarkAblations(b *testing.B) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		rows := harness.Ablations(base)
		for _, r := range rows {
			b.ReportMetric(r.Point.P99Small.Micros(), r.Name+"-p99-us")
		}
	}
}

// BenchmarkEngineThroughput measures raw simulator speed (events/sec) on
// a saturated fabric — the substrate's own performance number. The rate
// comes straight from the run's telemetry-grade self-report (wall-clock
// and event count measured inside harness.Run).
func BenchmarkEngineThroughput(b *testing.B) {
	var events, perSec float64
	for i := 0; i < b.N; i++ {
		sc := benchBase()
		sc.Duration = 3 * sim.Millisecond
		sc.Drain = 20 * sim.Millisecond
		res := harness.Run(sc)
		events += float64(res.Events)
		if secs := res.WallClock.Seconds(); secs > 0 {
			perSec += float64(res.Events) / secs
		}
	}
	b.ReportMetric(events/float64(b.N), "events")
	b.ReportMetric(perSec/float64(b.N), "events/sec")
}

func mean(rs []units.Rate) units.Rate {
	if len(rs) == 0 {
		return 0
	}
	var sum int64
	for _, r := range rs {
		sum += int64(r)
	}
	return units.Rate(sum / int64(len(rs)))
}

// TestPublicAPITestbed exercises the façade end to end.
func TestPublicAPITestbed(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Hosts: 3, LinkRate: 10 * Gbps})
	fp := tb.StartFlow("flexpass", 0, 2, 10_000_000)
	dc := tb.StartFlow("dctcp", 1, 2, 10_000_000)
	tb.Run(100 * Millisecond)
	if !fp.Completed || !dc.Completed {
		t.Fatalf("completion: flexpass=%v dctcp=%v", fp.Completed, dc.Completed)
	}
	if fp.Timeouts+dc.Timeouts != 0 {
		t.Fatalf("timeouts: %d", fp.Timeouts+dc.Timeouts)
	}
	if len(tb.Flows()) != 2 {
		t.Fatalf("flow registry: %d", len(tb.Flows()))
	}
}

func TestPublicAPIScheduledStart(t *testing.T) {
	tb := NewTestbed(TestbedConfig{Hosts: 2})
	fl := tb.StartFlowAt(5*Millisecond, "expresspass", 0, 1, 1_000_000)
	tb.Run(50 * Millisecond)
	if !fl.Completed {
		t.Fatal("scheduled flow did not complete")
	}
	if fl.Start != 5*Millisecond {
		t.Fatalf("start = %v", fl.Start)
	}
	if fl.FCT() > 10*Millisecond {
		t.Fatalf("fct = %v", fl.FCT())
	}
}

func TestPublicAPIScenario(t *testing.T) {
	sc := NewScenario(false)
	sc.Duration = 2 * Millisecond
	res := Run(sc)
	if len(res.Flows.Records) == 0 {
		t.Fatal("no flows")
	}
	if res.Flows.Incomplete() != 0 {
		t.Fatalf("%d incomplete", res.Flows.Incomplete())
	}
}

func TestPublicAPIAllTransports(t *testing.T) {
	for _, tp := range []string{"flexpass", "dctcp", "expresspass", "layering", "homa", "phost"} {
		tb := NewTestbed(TestbedConfig{Hosts: 2})
		fl := tb.StartFlow(tp, 0, 1, 500_000)
		tb.Run(100 * Millisecond)
		if !fl.Completed {
			t.Fatalf("%s flow did not complete", tp)
		}
	}
}

var _ = metrics.FlowRecord{} // keep the façade's metrics re-export honest
