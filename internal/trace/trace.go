// Package trace provides a lightweight, allocation-bounded event recorder
// for debugging transport behaviour: flow lifecycle events, retransmission
// decisions, drops, and timeouts can be logged into a fixed-size ring and
// dumped as text.
//
// Tracing is opt-in and designed to be cheap when enabled and free when
// disabled (a nil *Ring no-ops every method), so instrumented code can
// keep unconditional trace calls.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"flexpass/internal/sim"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	FlowStart Kind = iota
	FlowDone
	Drop
	Mark
	Retransmit
	Timeout
	CreditWaste
	CreditIssue
	CreditUse
	WindowCut
	Custom
)

var kindNames = [...]string{
	"flow-start", "flow-done", "drop", "mark", "retx", "timeout",
	"credit-waste", "credit-issue", "credit-use", "window-cut", "custom",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded occurrence.
type Event struct {
	At   sim.Time
	Kind Kind
	Flow uint64
	Seq  int64
	Note string
}

// Ring is a fixed-capacity event recorder. The zero value and nil are
// both valid (nil records nothing).
type Ring struct {
	eng     *sim.Engine
	events  []Event
	next    int
	wrapped bool
	dropped int64
}

// NewRing builds a recorder holding the last cap events.
func NewRing(eng *sim.Engine, capacity int) *Ring {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Ring{eng: eng, events: make([]Event, 0, capacity)}
}

// Add records an event.
func (r *Ring) Add(kind Kind, flow uint64, seq int64, note string) {
	if r == nil {
		return
	}
	ev := Event{Kind: kind, Flow: flow, Seq: seq, Note: note}
	if r.eng != nil {
		ev.At = r.eng.Now()
	}
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, ev)
		return
	}
	r.events[r.next] = ev
	r.next = (r.next + 1) % cap(r.events)
	r.wrapped = true
	r.dropped++
}

// Addf records a formatted event. Prefer Add on hot paths.
func (r *Ring) Addf(kind Kind, flow uint64, seq int64, format string, args ...any) {
	if r == nil {
		return
	}
	r.Add(kind, flow, seq, fmt.Sprintf(format, args...))
}

// Len reports how many events are held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Overwritten reports how many old events were displaced.
func (r *Ring) Overwritten() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Events returns the held events in chronological order.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	if !r.wrapped {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns held events matching the predicate, in order.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, ev := range r.Events() {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Dump writes the events as text, one per line.
func (r *Ring) Dump(w io.Writer) error {
	for _, ev := range r.Events() {
		if _, err := fmt.Fprintf(w, "%12v %-12s flow=%d seq=%d %s\n",
			ev.At, ev.Kind, ev.Flow, ev.Seq, ev.Note); err != nil {
			return err
		}
	}
	return nil
}

// String renders the whole ring (tests, small rings only).
func (r *Ring) String() string {
	var b strings.Builder
	_ = r.Dump(&b)
	return b.String()
}

// Merge combines several rings into one read-only ring: events are
// concatenated and stably sorted by time (ties keep ring order, so pass
// rings in shard order for a deterministic result), and the displaced
// counts are summed. Sharded runs merge their per-shard rings with this
// after the fabric drains; nil rings are skipped.
func Merge(rings ...*Ring) *Ring {
	var events []Event
	var dropped int64
	for _, r := range rings {
		if r == nil {
			continue
		}
		events = append(events, r.Events()...)
		dropped += r.Overwritten()
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return &Ring{events: events, dropped: dropped}
}
