package trace

import (
	"strings"
	"testing"

	"flexpass/internal/sim"
)

func TestNilRingNoOps(t *testing.T) {
	var r *Ring
	r.Add(Drop, 1, 2, "x") // must not panic
	r.Addf(Mark, 1, 2, "y %d", 3)
	if r.Len() != 0 || r.Events() != nil || r.Overwritten() != 0 {
		t.Fatal("nil ring must be empty")
	}
}

func TestRingRecordsInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRing(eng, 10)
	for i := 0; i < 5; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Microsecond, func() {
			r.Add(Retransmit, uint64(i), int64(i), "")
		})
	}
	eng.Run(sim.Second)
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Flow != uint64(i) || ev.At != sim.Time(i)*sim.Microsecond {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(nil, 4)
	for i := 0; i < 10; i++ {
		r.Add(Drop, uint64(i), 0, "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if evs[0].Flow != 6 || evs[3].Flow != 9 {
		t.Fatalf("wrapped order wrong: %d..%d", evs[0].Flow, evs[3].Flow)
	}
	if r.Overwritten() != 6 {
		t.Fatalf("overwritten = %d", r.Overwritten())
	}
}

func TestFilterAndDump(t *testing.T) {
	r := NewRing(nil, 16)
	r.Add(Drop, 1, 10, "red")
	r.Add(Mark, 2, 11, "ce")
	r.Add(Drop, 3, 12, "buffer")
	drops := r.Filter(func(e Event) bool { return e.Kind == Drop })
	if len(drops) != 2 {
		t.Fatalf("drops = %d", len(drops))
	}
	s := r.String()
	if !strings.Contains(s, "drop") || !strings.Contains(s, "mark") {
		t.Fatalf("dump missing kinds:\n%s", s)
	}
}

func TestFilterAfterWrap(t *testing.T) {
	r := NewRing(nil, 4)
	// 10 alternating events; the ring keeps flows 6..9 (drop, mark, drop,
	// mark). Filter must see only surviving events, in chronological order.
	for i := 0; i < 10; i++ {
		kind := Drop
		if i%2 == 1 {
			kind = Mark
		}
		r.Add(kind, uint64(i), 0, "")
	}
	drops := r.Filter(func(e Event) bool { return e.Kind == Drop })
	if len(drops) != 2 || drops[0].Flow != 6 || drops[1].Flow != 8 {
		t.Fatalf("post-wrap drops wrong: %+v", drops)
	}
	marks := r.Filter(func(e Event) bool { return e.Kind == Mark })
	if len(marks) != 2 || marks[0].Flow != 7 || marks[1].Flow != 9 {
		t.Fatalf("post-wrap marks wrong: %+v", marks)
	}
}

func TestOverwrittenCounts(t *testing.T) {
	r := NewRing(nil, 3)
	for i := 0; i < 3; i++ {
		r.Add(Drop, uint64(i), 0, "")
	}
	if r.Overwritten() != 0 {
		t.Fatalf("overwritten before wrap = %d, want 0", r.Overwritten())
	}
	r.Add(Drop, 3, 0, "")
	if r.Overwritten() != 1 {
		t.Fatalf("overwritten after one displacement = %d, want 1", r.Overwritten())
	}
	for i := 4; i < 10; i++ {
		r.Add(Drop, uint64(i), 0, "")
	}
	if r.Overwritten() != 7 {
		t.Fatalf("overwritten = %d, want 7", r.Overwritten())
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", r.Len())
	}
	evs := r.Events()
	if evs[0].Flow != 7 || evs[2].Flow != 9 {
		t.Fatalf("survivors wrong: %d..%d", evs[0].Flow, evs[2].Flow)
	}
}

// TestWrapExactMultiple pins overwrite accounting at capacity boundaries:
// after writing an exact multiple of the capacity the cursor is back at
// the start, the survivors are the last full window, and Overwritten
// equals writes minus capacity — no off-by-one at the seam.
func TestWrapExactMultiple(t *testing.T) {
	eng := sim.NewEngine(1)
	const capacity = 4
	r := NewRing(eng, capacity)
	for round := 1; round <= 3; round++ {
		for i := 0; i < capacity; i++ {
			i, round := i, round
			eng.At(sim.Time(round*100+i)*sim.Microsecond, func() {
				r.Add(Drop, uint64(round*100+i), 0, "")
			})
		}
		eng.Run(sim.Time(round+1) * 100 * sim.Microsecond)
		evs := r.Events()
		if len(evs) != capacity {
			t.Fatalf("round %d: len = %d, want %d", round, len(evs), capacity)
		}
		// The survivors are exactly this round's window, in time order.
		for i, ev := range evs {
			if ev.Flow != uint64(round*100+i) {
				t.Fatalf("round %d survivor %d = flow %d, want %d", round, i, ev.Flow, round*100+i)
			}
			if ev.At != sim.Time(round*100+i)*sim.Microsecond {
				t.Fatalf("round %d survivor %d timestamp wrong: %v", round, i, ev.At)
			}
		}
		if want := int64((round - 1) * capacity); r.Overwritten() != want {
			t.Fatalf("round %d: overwritten = %d, want %d", round, r.Overwritten(), want)
		}
	}
}

func TestKindNames(t *testing.T) {
	if FlowStart.String() != "flow-start" || Custom.String() != "custom" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("unknown kind should be labelled")
	}
}
