package trace

import (
	"strings"
	"testing"

	"flexpass/internal/sim"
)

func TestNilRingNoOps(t *testing.T) {
	var r *Ring
	r.Add(Drop, 1, 2, "x") // must not panic
	r.Addf(Mark, 1, 2, "y %d", 3)
	if r.Len() != 0 || r.Events() != nil || r.Overwritten() != 0 {
		t.Fatal("nil ring must be empty")
	}
}

func TestRingRecordsInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRing(eng, 10)
	for i := 0; i < 5; i++ {
		i := i
		eng.At(sim.Time(i)*sim.Microsecond, func() {
			r.Add(Retransmit, uint64(i), int64(i), "")
		})
	}
	eng.Run(sim.Second)
	evs := r.Events()
	if len(evs) != 5 {
		t.Fatalf("len = %d", len(evs))
	}
	for i, ev := range evs {
		if ev.Flow != uint64(i) || ev.At != sim.Time(i)*sim.Microsecond {
			t.Fatalf("event %d out of order: %+v", i, ev)
		}
	}
}

func TestRingWraps(t *testing.T) {
	r := NewRing(nil, 4)
	for i := 0; i < 10; i++ {
		r.Add(Drop, uint64(i), 0, "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len = %d, want 4", len(evs))
	}
	if evs[0].Flow != 6 || evs[3].Flow != 9 {
		t.Fatalf("wrapped order wrong: %d..%d", evs[0].Flow, evs[3].Flow)
	}
	if r.Overwritten() != 6 {
		t.Fatalf("overwritten = %d", r.Overwritten())
	}
}

func TestFilterAndDump(t *testing.T) {
	r := NewRing(nil, 16)
	r.Add(Drop, 1, 10, "red")
	r.Add(Mark, 2, 11, "ce")
	r.Add(Drop, 3, 12, "buffer")
	drops := r.Filter(func(e Event) bool { return e.Kind == Drop })
	if len(drops) != 2 {
		t.Fatalf("drops = %d", len(drops))
	}
	s := r.String()
	if !strings.Contains(s, "drop") || !strings.Contains(s, "mark") {
		t.Fatalf("dump missing kinds:\n%s", s)
	}
}

func TestKindNames(t *testing.T) {
	if FlowStart.String() != "flow-start" || Custom.String() != "custom" {
		t.Fatal("kind names wrong")
	}
	if Kind(200).String() != "unknown" {
		t.Fatal("unknown kind should be labelled")
	}
}
