// Package lake is the repo's queryable result store: it ingests the obs
// JSONL run artifacts a sweep produces into a flat, columnar index
// persisted on disk, and answers filter/group-by/aggregate queries and
// cross-run regression diffs over it. One row per run; every manifest
// dimension (scheme, options, topology, workload, load, deployment, wq,
// seed, fault plan, revision) is a queryable column, and the headline
// metrics (goodput, FCT quantiles, drops by cause, events/sec) are
// derived from the artifact's counters and histograms at ingest time —
// so every paper figure is one query and every regression one diff.
//
// Damaged artifacts are not lost: ingestion rides obs.ReadJSONL's
// salvage path, keeping whatever prefix parses and marking the row
// Salvaged so queries can include or exclude crashed runs explicitly.
package lake

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
)

// Row is one run flattened into the lake's schema. Dimension columns
// come from the manifest; metric columns are derived from the
// artifact's counters, histograms, and fault lines.
type Row struct {
	// Identity dimensions.
	ID        string // scenario content hash (config "scenario_hash") or artifact stem
	File      string // artifact basename the row was ingested from
	Schema    int    // artifact schema version (1, 2, 3, ...)
	Salvaged  bool   // artifact was damaged; row built from the salvaged prefix
	Sweep     string // sweep name (config "sweep"), if farmed
	Scheme    string
	Topo      string // short topology label (config "topo") or manifest topology
	Workload  string
	Options   string // canonical "k=v k2=v2" rendering of the scheme options
	Fault     string // fault-plan name ("" = clean run)
	FaultSig  string // fault-plan content hash
	WlPlan    string // workload-plan name ("" = parameter workload)
	WlPlanSig string // workload-plan content hash (rename-invariant)
	Revision  string
	Seed      int64
	Shards    int64 // parallel-engine shard count (0 = single engine)
	Load      float64
	Deploy    float64
	WQ        float64

	// Metrics.
	DurationPs   int64
	Flows        int64 // flows started, summed over transports
	Completed    int64
	GoodputGbps  float64 // delivered payload bytes over the run window
	FCTP50Us     float64 // log-bucket upper bound, merged over transports
	FCTP99Us     float64
	Timeouts     int64
	Retransmits  int64
	CreditsIss   int64   // credits issued by receivers
	CreditsWaste int64   // credits that arrived with nothing to send
	DropsRed     int64   // selective (red-threshold) drops
	DropsTotal   int64   // all queue drops
	FaultActions int64   // applied fault-plan actions (artifact "fault" lines)
	FaultDrops   int64   // packets destroyed by fault injection
	Tenants      int64   // distinct tenant load classes the workload tagged
	Coflows      int64   // coflow groups generated (RPC jobs, tagged incasts)
	CoflowsDone  int64   // coflows whose every member flow completed
	CCTP99Us     float64 // coflow completion time p99 (log-bucket bound)
	Violations   int64   // auditor violations kept in the artifact ("forensics" violation lines)
	VioDropped   int64   // violations discarded over the auditor retention cap (manifest violations_dropped)
	Attempts     int64   // farm execution attempts that produced this artifact (config "attempts"; 0 = unfarmed or pre-retry)
	Events       int64
	WallMS       float64 // perf self-report; machine-dependent
	EventsPerSec float64
}

// OptionsString canonicalizes a scheme-option map as space-separated
// sorted "k=v" pairs — the form the Options column stores and queries
// match against.
func OptionsString(opts map[string]string) string {
	if len(opts) == 0 {
		return ""
	}
	keys := make([]string, 0, len(opts))
	for k := range opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + opts[k]
	}
	return strings.Join(parts, " ")
}

// FromRun flattens one parsed artifact into a row. salvaged records
// whether the artifact was damaged (obs.CorruptArtifactError); the row
// is still built from whatever was recovered.
func FromRun(r *obs.Run, file string, salvaged bool) Row {
	m := r.Manifest
	row := Row{
		File:      filepath.Base(file),
		Schema:    m.Schema,
		Salvaged:  salvaged,
		Scheme:    m.Scheme,
		Topo:      m.Topology,
		Workload:  m.Workload,
		Options:   OptionsString(m.SchemeOptions),
		Fault:     m.FaultPlan,
		FaultSig:  m.FaultPlanHash,
		WlPlan:    m.WorkloadPlan,
		WlPlanSig: m.WorkloadPlanHash,
		Revision:  m.Revision,
		Seed:      m.Seed,
		Shards:    int64(m.Shards),
		Load:      m.Load,
		Deploy:    m.Deployment,
		WQ:        m.WQ,

		DurationPs:   m.DurationPs,
		Events:       int64(m.Events),
		WallMS:       m.WallMS,
		EventsPerSec: m.EventsPerSec,
	}
	row.ID = strings.TrimSuffix(row.File, filepath.Ext(row.File))
	if h := m.Config["scenario_hash"]; h != "" {
		row.ID = h
	}
	if t := m.Config["topo"]; t != "" {
		row.Topo = t
	}
	if s := m.Config["sweep"]; s != "" {
		row.Sweep = s
	}

	var rxBytes int64
	tenants := map[string]bool{}
	for _, c := range r.Counters {
		isTransport := strings.HasPrefix(c.Entity, "transport/")
		isQueue := strings.HasPrefix(c.Entity, "port/") && strings.Contains(c.Entity, "/q")
		isPort := strings.HasPrefix(c.Entity, "port/") && !isQueue
		if strings.HasPrefix(c.Entity, "workload/tenant/") {
			tenants[c.Entity] = true
		}
		switch {
		case isTransport && c.Metric == "flows_started":
			row.Flows += c.Value
		case isTransport && c.Metric == "flows_completed":
			row.Completed += c.Value
		case isTransport && c.Metric == "rx_bytes":
			rxBytes += c.Value
		case isTransport && c.Metric == "timeouts":
			row.Timeouts += c.Value
		case isTransport && c.Metric == "retransmits":
			row.Retransmits += c.Value
		case isTransport && c.Metric == "credits_issued":
			row.CreditsIss += c.Value
		case isTransport && c.Metric == "credits_wasted":
			row.CreditsWaste += c.Value
		case isQueue && c.Metric == "dropped":
			row.DropsTotal += c.Value
		case isQueue && c.Metric == "dropped_red":
			row.DropsRed += c.Value
		case isPort && c.Metric == "faults_injected":
			row.FaultDrops += c.Value
		case c.Entity == "workload/coflow" && c.Metric == "coflows":
			row.Coflows += c.Value
		case c.Entity == "workload/coflow" && c.Metric == "coflows_done":
			row.CoflowsDone += c.Value
		}
	}
	row.Tenants = int64(len(tenants))
	if m.DurationPs > 0 {
		secs := float64(m.DurationPs) / float64(sim.Second)
		row.GoodputGbps = float64(rxBytes) * 8 / secs / 1e9
	}
	var fcts, ccts []obs.HistData
	for _, h := range r.Hists {
		if strings.HasPrefix(h.Entity, "transport/") && h.Metric == "fct_us" {
			fcts = append(fcts, h)
		}
		if h.Entity == "workload/coflow" && h.Metric == "cct_us" {
			ccts = append(ccts, h)
		}
	}
	row.FCTP50Us = float64(mergedQuantile(fcts, 0.5))
	row.FCTP99Us = float64(mergedQuantile(fcts, 0.99))
	row.CCTP99Us = float64(mergedQuantile(ccts, 0.99))
	row.FaultActions = int64(len(r.Faults))
	for i := range r.Forensics {
		if r.Forensics[i].Violation != nil {
			row.Violations++
		}
	}
	// A nonzero violations_dropped marks the kept violations as a
	// truncated sample: the true count is at least Violations+VioDropped.
	row.VioDropped = m.ViolationsDropped
	if a := m.Config["attempts"]; a != "" {
		if n, err := strconv.ParseInt(a, 10, 64); err == nil {
			row.Attempts = n
		}
	}
	return row
}

// mergedQuantile computes the p-quantile upper bound over the union of
// several log-bucket histograms (the per-transport FCT histograms are
// merged into one fabric-wide distribution).
func mergedQuantile(hists []obs.HistData, p float64) int64 {
	merged := map[int64]int64{}
	var n int64
	for _, h := range hists {
		for i, le := range h.Le {
			merged[le] += h.Counts[i]
			n += h.Counts[i]
		}
	}
	if n == 0 {
		return 0
	}
	les := make([]int64, 0, len(merged))
	for le := range merged {
		les = append(les, le)
	}
	sort.Slice(les, func(i, j int) bool { return les[i] < les[j] })
	rank := int64(p * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for _, le := range les {
		seen += merged[le]
		if seen > rank {
			return le
		}
	}
	return les[len(les)-1]
}

// Index is the lake: every ingested run row plus the bench table.
type Index struct {
	Rows  []Row
	Bench []BenchRow
}

// IngestFile reads one artifact and appends its row. Damaged artifacts
// are salvaged (Row.Salvaged set); only artifacts whose manifest itself
// was unrecoverable fail.
func (ix *Index) IngestFile(path string) error {
	run, err := obs.ReadJSONLFile(path)
	salvaged := false
	if err != nil {
		var cerr *obs.CorruptArtifactError
		if run == nil || !errors.As(err, &cerr) {
			return fmt.Errorf("lake: ingest %s: %w", path, err)
		}
		if run.Manifest.Schema == 0 {
			return fmt.Errorf("lake: ingest %s: damage precedes the manifest: %w", path, err)
		}
		salvaged = true
	}
	ix.Rows = append(ix.Rows, FromRun(run, path, salvaged))
	return nil
}

// IngestDir ingests every *.jsonl artifact under dir (sorted, so row
// order is stable) and reports per-file errors without aborting the
// scan. It returns how many rows were added.
func (ix *Index) IngestDir(dir string) (int, []error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return 0, []error{err}
	}
	sort.Strings(paths)
	added := 0
	var errs []error
	for _, p := range paths {
		if err := ix.IngestFile(p); err != nil {
			errs = append(errs, err)
			continue
		}
		added++
	}
	return added, errs
}

// Sort orders rows by (sweep, scheme, topo, workload, load, deploy,
// wq, options, fault sig, seed) so indexes built from the same runs
// compare byte-identically regardless of ingest order.
func (ix *Index) Sort() {
	sort.Slice(ix.Rows, func(i, j int) bool {
		a, b := &ix.Rows[i], &ix.Rows[j]
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.File < b.File
	})
	sort.Slice(ix.Bench, func(i, j int) bool {
		a, b := &ix.Bench[i], &ix.Bench[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Bench != b.Bench {
			return a.Bench < b.Bench
		}
		return a.Metric < b.Metric
	})
}

// Load reads a lake from path: either an index file written by
// WriteFile, or a directory containing one (index.json), falling back
// to ingesting the runs/ artifacts when no index exists yet.
func Load(path string) (*Index, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !fi.IsDir() {
		return ReadFile(path)
	}
	idx := filepath.Join(path, IndexFile)
	if _, err := os.Stat(idx); err == nil {
		return ReadFile(idx)
	}
	ix := &Index{}
	if _, errs := ix.IngestDir(filepath.Join(path, RunsDir)); len(errs) > 0 {
		return nil, errs[0]
	}
	ix.Sort()
	return ix, nil
}

// Canonical lake layout names: <lake>/runs/*.jsonl artifacts indexed
// into <lake>/index.json.
const (
	IndexFile = "index.json"
	RunsDir   = "runs"
)
