package lake

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flexpass/internal/obs"
)

// sampleRun builds a synthetic v3 artifact covering every metric the
// lake derives: transport counters on two labels, queue drop counters,
// port fault counters, FCT histograms, and applied fault lines.
func sampleRun() *obs.Run {
	return &obs.Run{
		Manifest: obs.Manifest{
			Schema: obs.SchemaVersion, Seed: 7,
			Topology: "clos pods=2 ...", Scheme: "flexpass", Workload: "websearch",
			Load: 0.6, Deployment: 0.5, WQ: 0.5,
			DurationPs:    2_000_000_000, // 2ms
			SchemeOptions: map[string]string{"reactive": "reno", "a": "1"},
			FaultPlan:     "flap", FaultPlanHash: "cafe0123",
			Revision: "abc123",
			Config:   map[string]string{"scenario_hash": "deadbeef", "topo": "tiny", "sweep": "t"},
			WallMS:   12.5, Events: 1000, EventsPerSec: 80000,
		},
		Counters: []obs.CounterData{
			{Entity: "transport/flexpass", Metric: "flows_started", Value: 10},
			{Entity: "transport/flexpass", Metric: "flows_completed", Value: 9},
			{Entity: "transport/flexpass", Metric: "rx_bytes", Value: 150_000},
			{Entity: "transport/flexpass", Metric: "timeouts", Value: 2},
			{Entity: "transport/flexpass", Metric: "retransmits", Value: 3},
			{Entity: "transport/flexpass", Metric: "credits_issued", Value: 40},
			{Entity: "transport/flexpass", Metric: "credits_wasted", Value: 4},
			{Entity: "transport/dctcp", Metric: "flows_started", Value: 5},
			{Entity: "transport/dctcp", Metric: "flows_completed", Value: 5},
			{Entity: "transport/dctcp", Metric: "rx_bytes", Value: 100_000},
			{Entity: "port/tor0->h0", Metric: "tx_bytes", Value: 999}, // not a lake metric
			{Entity: "port/tor0->h0", Metric: "faults_injected", Value: 6},
			{Entity: "port/tor0->h0/q1", Metric: "dropped", Value: 11},
			{Entity: "port/tor0->h0/q1", Metric: "dropped_red", Value: 7},
		},
		Hists: []obs.HistData{
			// 10 flows at <=64us, 1 at <=4096us.
			{Entity: "transport/flexpass", Metric: "fct_us", Count: 11, Sum: 0,
				Le: []int64{64, 4096}, Counts: []int64{10, 1}},
			{Entity: "transport/dctcp", Metric: "fct_us", Count: 5, Sum: 0,
				Le: []int64{64}, Counts: []int64{5}},
		},
		Faults: []obs.FaultData{
			{AtPs: 1, Kind: "link-down", Link: "tor0->h0"},
			{AtPs: 2, Kind: "link-up", Link: "tor0->h0"},
		},
	}
}

func writeArtifact(t *testing.T, dir, name string, r *obs.Run) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := r.WriteJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFromRunDerivesMetrics(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "a.jsonl", sampleRun())
	ix := &Index{}
	if err := ix.IngestFile(path); err != nil {
		t.Fatal(err)
	}
	if len(ix.Rows) != 1 {
		t.Fatalf("got %d rows", len(ix.Rows))
	}
	r := ix.Rows[0]
	if r.ID != "deadbeef" || r.Topo != "tiny" || r.Sweep != "t" {
		t.Errorf("farm config keys not honored: %+v", r)
	}
	if r.Schema != obs.SchemaVersion || r.Salvaged {
		t.Errorf("schema/salvage wrong: %+v", r)
	}
	if r.Scheme != "flexpass" || r.Workload != "websearch" || r.Seed != 7 {
		t.Errorf("dims wrong: %+v", r)
	}
	if r.Options != "a=1 reactive=reno" {
		t.Errorf("options canonicalization: %q", r.Options)
	}
	if r.Fault != "flap" || r.FaultSig != "cafe0123" || r.Revision != "abc123" {
		t.Errorf("fault/revision dims wrong: %+v", r)
	}
	if r.Flows != 15 || r.Completed != 14 || r.Timeouts != 2 || r.Retransmits != 3 {
		t.Errorf("transport sums wrong: %+v", r)
	}
	if r.CreditsIss != 40 || r.CreditsWaste != 4 {
		t.Errorf("credit sums wrong: %+v", r)
	}
	if r.DropsTotal != 11 || r.DropsRed != 7 || r.FaultDrops != 6 {
		t.Errorf("drop sums wrong: %+v", r)
	}
	if r.FaultActions != 2 {
		t.Errorf("fault lines not counted: %d", r.FaultActions)
	}
	// goodput: 250000 B * 8 bits over 2ms = 1e9 bit/s = 1 Gbps.
	if r.GoodputGbps < 0.999 || r.GoodputGbps > 1.001 {
		t.Errorf("goodput = %g, want 1", r.GoodputGbps)
	}
	// Merged FCT: 15 of 16 at <=64us; p50 = 64, p99 = 4096.
	if r.FCTP50Us != 64 || r.FCTP99Us != 4096 {
		t.Errorf("merged FCT quantiles = %g/%g, want 64/4096", r.FCTP50Us, r.FCTP99Us)
	}
}

// TestIngestOldSchemas checks v1/v2 manifests (no scheme options, no
// fault hash, no revision) still ingest, with the new columns empty.
func TestIngestOldSchemas(t *testing.T) {
	for schema, extra := range map[int]string{
		1: ``,
		2: `{"type":"fault","fault":{"at_ps":5,"kind":"burst-loss","link":"tor0->h0","value":0.5}}`,
	} {
		lines := []string{
			`{"type":"manifest","manifest":{"schema":` + itoa(schema) + `,"seed":3,"topology":"clos","scheme":"dctcp","workload":"hadoop","load":0.4,"duration_ps":1000000000,"wall_ms":1,"events":10,"events_per_sec":10}}`,
			`{"type":"counter","counter":{"entity":"transport/dctcp","metric":"rx_bytes","kind":"delta","value":50000}}`,
			`{"type":"hist","hist":{"entity":"transport/dctcp","metric":"fct_us","count":2,"sum":60,"le":[32],"counts":[2]}}`,
		}
		if extra != "" {
			lines = append(lines, extra)
		}
		dir := t.TempDir()
		path := filepath.Join(dir, "old.jsonl")
		if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		ix := &Index{}
		if err := ix.IngestFile(path); err != nil {
			t.Fatalf("schema %d: %v", schema, err)
		}
		r := ix.Rows[0]
		if r.Schema != schema || r.Scheme != "dctcp" || r.Workload != "hadoop" {
			t.Errorf("schema %d: dims wrong: %+v", schema, r)
		}
		if r.Options != "" || r.FaultSig != "" || r.Revision != "" {
			t.Errorf("schema %d: v3 columns should be empty: %+v", schema, r)
		}
		if r.GoodputGbps != 0.4 { // 50000*8/1ms = 0.4 Gbps
			t.Errorf("schema %d: goodput = %g", schema, r.GoodputGbps)
		}
		wantActions := int64(0)
		if schema == 2 {
			wantActions = 1
		}
		if r.FaultActions != wantActions {
			t.Errorf("schema %d: fault actions = %d, want %d", schema, r.FaultActions, wantActions)
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// TestIngestSalvagesCorruptArtifact truncates an artifact mid-line and
// checks the typed-error salvage path: the row is built from the
// recovered prefix and marked Salvaged.
func TestIngestSalvagesCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "c.jsonl", sampleRun())
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the manifest and first counter line, then tear the file
	// mid-way through the next line.
	lines := strings.SplitAfter(string(data), "\n")
	torn := lines[0] + lines[1] + lines[2][:len(lines[2])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}
	// Direct read must report the typed corruption error.
	if _, err := obs.ReadJSONLFile(path); err == nil {
		t.Fatal("torn artifact read cleanly")
	} else {
		var cerr *obs.CorruptArtifactError
		if !errors.As(err, &cerr) {
			t.Fatalf("want CorruptArtifactError, got %v", err)
		}
	}
	ix := &Index{}
	if err := ix.IngestFile(path); err != nil {
		t.Fatalf("salvage ingest failed: %v", err)
	}
	r := ix.Rows[0]
	if !r.Salvaged {
		t.Error("row not marked salvaged")
	}
	if r.Scheme != "flexpass" || r.Seed != 7 {
		t.Errorf("manifest dims lost in salvage: %+v", r)
	}
	if r.Flows != 10 {
		t.Errorf("salvaged prefix should hold one counter line: flows=%d", r.Flows)
	}
}

// TestIngestRejectsPreManifestDamage: damage on line one leaves nothing
// to salvage.
func TestIngestRejectsPreManifestDamage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.jsonl")
	if err := os.WriteFile(path, []byte(`{"type":"manif`), 0o644); err != nil {
		t.Fatal(err)
	}
	ix := &Index{}
	if err := ix.IngestFile(path); err == nil {
		t.Fatal("expected error for damage before the manifest")
	}
	if len(ix.Rows) != 0 {
		t.Fatalf("no row should be added, got %d", len(ix.Rows))
	}
}

// TestIndexRoundTrip persists and reloads the columnar index and
// requires exact equality, bench table included.
func TestIndexRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeArtifact(t, dir, "a.jsonl", sampleRun())
	ix := &Index{}
	if n, errs := ix.IngestDir(dir); n != 1 || len(errs) != 0 {
		t.Fatalf("ingest: n=%d errs=%v", n, errs)
	}
	ix.Bench = []BenchRow{{Source: "B.json", Bench: "EngineDispatch", Metric: "ns/op", Value: 123.5}}
	ix.Sort()
	path := filepath.Join(dir, IndexFile)
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ix.Rows, got.Rows) {
		t.Errorf("rows did not round-trip:\nwant %+v\ngot  %+v", ix.Rows, got.Rows)
	}
	if !reflect.DeepEqual(ix.Bench, got.Bench) {
		t.Errorf("bench did not round-trip:\nwant %+v\ngot  %+v", ix.Bench, got.Bench)
	}
}

func TestLoadDirFallsBackToRuns(t *testing.T) {
	dir := t.TempDir()
	runs := filepath.Join(dir, RunsDir)
	if err := os.MkdirAll(runs, 0o755); err != nil {
		t.Fatal(err)
	}
	writeArtifact(t, runs, "a.jsonl", sampleRun())
	ix, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Rows) != 1 {
		t.Fatalf("fallback ingest found %d rows", len(ix.Rows))
	}
}

func TestMergedQuantileEmpty(t *testing.T) {
	if q := mergedQuantile(nil, 0.99); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
}
