package lake

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// The bench table makes the perf trajectory queryable alongside the
// run table: every cmd/benchjson artifact (a parse-mode Artifact or a
// compare-mode Report) flattens to (source, bench, metric, value)
// rows, so "how did EngineDispatch ns/op move across BENCH_PR*.json"
// is one query.

// BenchRow is one benchmark metric observation.
type BenchRow struct {
	Source      string  `json:"source"` // artifact basename, e.g. "BENCH_PR6.json"
	Bench       string  `json:"bench"`  // benchmark name, e.g. "EngineDispatch"
	Metric      string  `json:"metric"` // "ns/op", "allocs/op", "events/sec", ...
	Value       float64 `json:"value"`
	GeneratedAt string  `json:"generated_at,omitempty"`
}

// benchArtifact matches both cmd/benchjson output shapes: parse mode
// has Benchmarks; compare mode has Current (and Baseline, which is
// some older artifact's data and is skipped — ingest that artifact
// directly instead).
type benchArtifact struct {
	GeneratedAt string                        `json:"generated_at"`
	Benchmarks  map[string]map[string]float64 `json:"benchmarks"`
	Current     map[string]map[string]float64 `json:"current"`
}

// IngestBenchFile flattens one benchjson artifact into the bench
// table.
func (ix *Index) IngestBenchFile(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var art benchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return 0, fmt.Errorf("lake: parsing bench artifact %s: %w", path, err)
	}
	benches := art.Benchmarks
	if benches == nil {
		benches = art.Current
	}
	if len(benches) == 0 {
		return 0, fmt.Errorf("lake: %s has no benchmarks (want benchjson parse or compare output)", path)
	}
	src := filepath.Base(path)
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	added := 0
	for _, name := range names {
		metrics := make([]string, 0, len(benches[name]))
		for m := range benches[name] {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			ix.Bench = append(ix.Bench, BenchRow{
				Source: src, Bench: name, Metric: m,
				Value: benches[name][m], GeneratedAt: art.GeneratedAt,
			})
			added++
		}
	}
	return added, nil
}

// BenchTable renders the bench table, optionally filtered by glob-free
// equality on bench and metric ("" matches all).
func (ix *Index) BenchTable(bench, metric string) *Table {
	t := &Table{Header: []string{"source", "bench", "metric", "value"}}
	for _, r := range ix.Bench {
		if bench != "" && r.Bench != bench {
			continue
		}
		if metric != "" && r.Metric != metric {
			continue
		}
		t.Rows = append(t.Rows, []string{r.Source, r.Bench, r.Metric, trimFloat(r.Value)})
	}
	return t
}
