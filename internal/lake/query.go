package lake

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"path"
	"sort"
	"strconv"
	"strings"
)

// The query layer answers filter / group-by / aggregate questions over
// the run table — `flexfarm query` is a thin shell around it. A paper
// figure like "p99 slowdown by scheme × load" is
//
//	Query{GroupBy: []string{"scheme", "load"},
//	      Aggs:    []Agg{{Col: "fct_p99_us", Fn: "mean"}}}

// Op is a filter comparison operator.
type Op string

// Filter operators. String columns support Eq/Ne with path.Match
// globs; numeric columns compare numerically.
const (
	OpEq Op = "="
	OpNe Op = "!="
	OpLt Op = "<"
	OpLe Op = "<="
	OpGt Op = ">"
	OpGe Op = ">="
)

// Cond is one filter condition on a column.
type Cond struct {
	Col string
	Op  Op
	Arg string
}

// ParseCond parses "col=value", "col!=value", "col>=value", ... The
// two-character operators are tried first so "!=" never parses as "=".
func ParseCond(s string) (Cond, error) {
	for _, op := range []Op{OpNe, OpLe, OpGe, OpEq, OpLt, OpGt} {
		if i := strings.Index(s, string(op)); i > 0 {
			return Cond{Col: strings.TrimSpace(s[:i]), Op: op,
				Arg: strings.TrimSpace(s[i+len(op):])}, nil
		}
	}
	return Cond{}, fmt.Errorf("lake: bad condition %q (want col=value, col!=value, col<value, ...)", s)
}

// Match evaluates the condition against a row. Unknown columns match
// nothing (the query layer surfaces them via Query.validate).
func (c Cond) Match(r *Row) bool {
	s, f, numeric, ok := value(r, c.Col)
	if !ok {
		return false
	}
	if numeric {
		arg, err := strconv.ParseFloat(c.Arg, 64)
		if err == nil {
			switch c.Op {
			case OpEq:
				return f == arg
			case OpNe:
				return f != arg
			case OpLt:
				return f < arg
			case OpLe:
				return f <= arg
			case OpGt:
				return f > arg
			case OpGe:
				return f >= arg
			}
		}
		// Fall through to string comparison for non-numeric args
		// (e.g. salvaged=true).
	}
	eq := s == c.Arg
	if !eq && (c.Op == OpEq || c.Op == OpNe) {
		if m, err := path.Match(c.Arg, s); err == nil && m {
			eq = true
		}
	}
	switch c.Op {
	case OpEq:
		return eq
	case OpNe:
		return !eq
	case OpLt:
		return s < c.Arg
	case OpLe:
		return s <= c.Arg
	case OpGt:
		return s > c.Arg
	case OpGe:
		return s >= c.Arg
	}
	return false
}

// Agg is one aggregate: a function over a numeric column per group.
type Agg struct {
	Col string
	Fn  string // mean, sum, min, max, count, p50, p90, p99
}

// ParseAggs parses a comma-separated "col:fn,col:fn" list. A bare
// column defaults to mean; the pseudo-aggregate "count" needs no
// column.
func ParseAggs(s string) ([]Agg, error) {
	var out []Agg
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		col, fn, ok := strings.Cut(part, ":")
		if !ok {
			fn = "mean"
		}
		if col == "count" {
			col, fn = "", "count"
		}
		switch fn {
		case "mean", "sum", "min", "max", "count", "p50", "p90", "p99":
		default:
			return nil, fmt.Errorf("lake: unknown aggregate %q (want mean,sum,min,max,count,p50,p90,p99)", fn)
		}
		out = append(out, Agg{Col: col, Fn: fn})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lake: empty aggregate list")
	}
	return out, nil
}

func (a Agg) label() string {
	if a.Fn == "count" {
		return "count"
	}
	return a.Fn + "(" + a.Col + ")"
}

// apply reduces the group's values.
func (a Agg) apply(vals []float64) float64 {
	if a.Fn == "count" {
		return float64(len(vals))
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	switch a.Fn {
	case "sum", "mean":
		var s float64
		for _, v := range vals {
			s += v
		}
		if a.Fn == "sum" {
			return s
		}
		return s / float64(len(vals))
	case "min":
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m
	case "max":
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m
	case "p50", "p90", "p99":
		p := map[string]float64{"p50": 0.50, "p90": 0.90, "p99": 0.99}[a.Fn]
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		rank := int(p * float64(len(sorted)))
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	return math.NaN()
}

// Query is one filter/group-by/aggregate request over the run table.
type Query struct {
	Where   []Cond
	GroupBy []string
	Aggs    []Agg
}

// Table is a query result: a header row plus data rows, group keys
// first, one aggregate column each after.
type Table struct {
	Header []string
	Rows   [][]string
}

// validate rejects unknown column names up front, so a typo'd query
// errors instead of silently matching nothing.
func (q Query) validate() error {
	known := map[string]bool{}
	for _, n := range ColumnNames() {
		known[n] = true
	}
	for _, c := range q.Where {
		if !known[c.Col] {
			return fmt.Errorf("lake: unknown filter column %q", c.Col)
		}
	}
	for _, g := range q.GroupBy {
		if !known[g] {
			return fmt.Errorf("lake: unknown group-by column %q", g)
		}
	}
	for _, a := range q.Aggs {
		if a.Fn == "count" {
			continue
		}
		if !known[a.Col] {
			return fmt.Errorf("lake: unknown aggregate column %q", a.Col)
		}
	}
	return nil
}

// Run executes the query against the index's run table.
func (ix *Index) Run(q Query) (*Table, error) {
	if len(q.Aggs) == 0 {
		q.Aggs = []Agg{{Fn: "count"}}
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	type group struct {
		keys []string
		vals [][]float64 // one slice per aggregate
	}
	groups := map[string]*group{}
	var order []string
	for i := range ix.Rows {
		r := &ix.Rows[i]
		match := true
		for _, c := range q.Where {
			if !c.Match(r) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		keys := make([]string, len(q.GroupBy))
		for j, col := range q.GroupBy {
			s, _, _, _ := value(r, col)
			keys[j] = s
		}
		gk := strings.Join(keys, "\x00")
		g, ok := groups[gk]
		if !ok {
			g = &group{keys: keys, vals: make([][]float64, len(q.Aggs))}
			groups[gk] = g
			order = append(order, gk)
		}
		for j, a := range q.Aggs {
			if a.Fn == "count" {
				g.vals[j] = append(g.vals[j], 0)
				continue
			}
			_, f, numeric, _ := value(r, a.Col)
			if numeric {
				g.vals[j] = append(g.vals[j], f)
			}
		}
	}
	sort.Strings(order)
	t := &Table{}
	t.Header = append(t.Header, q.GroupBy...)
	for _, a := range q.Aggs {
		t.Header = append(t.Header, a.label())
	}
	for _, gk := range order {
		g := groups[gk]
		row := append([]string(nil), g.keys...)
		for j, a := range q.Aggs {
			row = append(row, trimFloat(a.apply(g.vals[j])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WriteText renders the table column-aligned for terminals.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	bw := bufio.NewWriter(w)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], cell)
		}
		fmt.Fprintln(bw)
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return bw.Flush()
}

// WriteCSV renders the table as CSV (cells never contain commas: group
// keys are column values and aggregates are numbers).
func (t *Table) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(bw, strings.Join(row, ","))
	}
	return bw.Flush()
}
