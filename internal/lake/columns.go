package lake

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The on-disk index is genuinely columnar: one JSON object holding a
// vector per column, in three typed families. Readers that predate a
// column see it as absent and decode zeros; readers that postdate one
// ignore it — so the lake index evolves the same way the JSONL artifact
// schema does.

// LakeSchema versions the index file layout.
const LakeSchema = 1

// column describes one Row column: its wire name plus typed accessors.
// Exactly one get/set pair is non-nil, choosing the column family.
type column struct {
	name string
	gs   func(*Row) *string
	gi   func(*Row) *int64
	gf   func(*Row) *float64
	gb   func(*Row) *bool
}

// runColumns is the full Row schema, in export order. Query strings
// address columns by these names. Row.Schema (a plain int) is the one
// column handled out-of-band, as indexFile.Schema.
var runColumns = []column{
	{name: "id", gs: func(r *Row) *string { return &r.ID }},
	{name: "file", gs: func(r *Row) *string { return &r.File }},
	{name: "sweep", gs: func(r *Row) *string { return &r.Sweep }},
	{name: "scheme", gs: func(r *Row) *string { return &r.Scheme }},
	{name: "topo", gs: func(r *Row) *string { return &r.Topo }},
	{name: "workload", gs: func(r *Row) *string { return &r.Workload }},
	{name: "options", gs: func(r *Row) *string { return &r.Options }},
	{name: "fault", gs: func(r *Row) *string { return &r.Fault }},
	{name: "fault_sig", gs: func(r *Row) *string { return &r.FaultSig }},
	{name: "workload_plan", gs: func(r *Row) *string { return &r.WlPlan }},
	{name: "workload_plan_sig", gs: func(r *Row) *string { return &r.WlPlanSig }},
	{name: "revision", gs: func(r *Row) *string { return &r.Revision }},
	{name: "salvaged", gb: func(r *Row) *bool { return &r.Salvaged }},
	{name: "seed", gi: func(r *Row) *int64 { return &r.Seed }},
	{name: "shards", gi: func(r *Row) *int64 { return &r.Shards }},
	{name: "load", gf: func(r *Row) *float64 { return &r.Load }},
	{name: "deployment", gf: func(r *Row) *float64 { return &r.Deploy }},
	{name: "wq", gf: func(r *Row) *float64 { return &r.WQ }},
	{name: "duration_ps", gi: func(r *Row) *int64 { return &r.DurationPs }},
	{name: "flows", gi: func(r *Row) *int64 { return &r.Flows }},
	{name: "completed", gi: func(r *Row) *int64 { return &r.Completed }},
	{name: "goodput_gbps", gf: func(r *Row) *float64 { return &r.GoodputGbps }},
	{name: "fct_p50_us", gf: func(r *Row) *float64 { return &r.FCTP50Us }},
	{name: "fct_p99_us", gf: func(r *Row) *float64 { return &r.FCTP99Us }},
	{name: "timeouts", gi: func(r *Row) *int64 { return &r.Timeouts }},
	{name: "retransmits", gi: func(r *Row) *int64 { return &r.Retransmits }},
	{name: "credits_issued", gi: func(r *Row) *int64 { return &r.CreditsIss }},
	{name: "credits_wasted", gi: func(r *Row) *int64 { return &r.CreditsWaste }},
	{name: "drops_red", gi: func(r *Row) *int64 { return &r.DropsRed }},
	{name: "drops_total", gi: func(r *Row) *int64 { return &r.DropsTotal }},
	{name: "fault_actions", gi: func(r *Row) *int64 { return &r.FaultActions }},
	{name: "fault_drops", gi: func(r *Row) *int64 { return &r.FaultDrops }},
	{name: "tenants", gi: func(r *Row) *int64 { return &r.Tenants }},
	{name: "coflows", gi: func(r *Row) *int64 { return &r.Coflows }},
	{name: "coflows_done", gi: func(r *Row) *int64 { return &r.CoflowsDone }},
	{name: "cct_p99_us", gf: func(r *Row) *float64 { return &r.CCTP99Us }},
	{name: "violations", gi: func(r *Row) *int64 { return &r.Violations }},
	{name: "violations_dropped", gi: func(r *Row) *int64 { return &r.VioDropped }},
	{name: "attempts", gi: func(r *Row) *int64 { return &r.Attempts }},
	{name: "events", gi: func(r *Row) *int64 { return &r.Events }},
	{name: "wall_ms", gf: func(r *Row) *float64 { return &r.WallMS }},
	{name: "events_per_sec", gf: func(r *Row) *float64 { return &r.EventsPerSec }},
}

// indexFile is the on-disk columnar envelope.
type indexFile struct {
	LakeSchema int                  `json:"lake_schema"`
	Rows       int                  `json:"rows"`
	Schema     []int                `json:"schema_col,omitempty"` // Row.Schema per row
	Strings    map[string][]string  `json:"strings,omitempty"`
	Ints       map[string][]int64   `json:"ints,omitempty"`
	Floats     map[string][]float64 `json:"floats,omitempty"`
	Bools      map[string][]bool    `json:"bools,omitempty"`
	Bench      []BenchRow           `json:"bench,omitempty"`
}

// WriteFile persists the index at path in columnar form, atomically
// (tmp + rename) so a crashed writer never leaves a torn index.
func (ix *Index) WriteFile(path string) error {
	out := indexFile{
		LakeSchema: LakeSchema,
		Rows:       len(ix.Rows),
		Strings:    map[string][]string{},
		Ints:       map[string][]int64{},
		Floats:     map[string][]float64{},
		Bools:      map[string][]bool{},
		Bench:      ix.Bench,
	}
	out.Schema = make([]int, len(ix.Rows))
	for i := range ix.Rows {
		out.Schema[i] = ix.Rows[i].Schema
	}
	for _, c := range runColumns {
		switch {
		case c.gs != nil:
			col := make([]string, len(ix.Rows))
			for i := range ix.Rows {
				col[i] = *c.gs(&ix.Rows[i])
			}
			out.Strings[c.name] = col
		case c.gi != nil:
			col := make([]int64, len(ix.Rows))
			for i := range ix.Rows {
				col[i] = *c.gi(&ix.Rows[i])
			}
			out.Ints[c.name] = col
		case c.gf != nil:
			col := make([]float64, len(ix.Rows))
			for i := range ix.Rows {
				col[i] = *c.gf(&ix.Rows[i])
			}
			out.Floats[c.name] = col
		case c.gb != nil:
			col := make([]bool, len(ix.Rows))
			for i := range ix.Rows {
				col[i] = *c.gb(&ix.Rows[i])
			}
			out.Bools[c.name] = col
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadFile loads a columnar index written by WriteFile. Columns the
// file lacks decode as zeros; columns this build does not know are
// ignored.
func ReadFile(path string) (*Index, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var in indexFile
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("lake: parsing %s: %w", path, err)
	}
	if in.LakeSchema > LakeSchema {
		return nil, fmt.Errorf("lake: %s has lake schema %d, this build reads <= %d", path, in.LakeSchema, LakeSchema)
	}
	ix := &Index{Rows: make([]Row, in.Rows), Bench: in.Bench}
	for i := range ix.Rows {
		if i < len(in.Schema) {
			ix.Rows[i].Schema = in.Schema[i]
		}
	}
	for _, c := range runColumns {
		switch {
		case c.gs != nil:
			for i, v := range clampCol(in.Strings[c.name], in.Rows) {
				*c.gs(&ix.Rows[i]) = v
			}
		case c.gi != nil:
			for i, v := range clampCol(in.Ints[c.name], in.Rows) {
				*c.gi(&ix.Rows[i]) = v
			}
		case c.gf != nil:
			for i, v := range clampCol(in.Floats[c.name], in.Rows) {
				*c.gf(&ix.Rows[i]) = v
			}
		case c.gb != nil:
			for i, v := range clampCol(in.Bools[c.name], in.Rows) {
				*c.gb(&ix.Rows[i]) = v
			}
		}
	}
	return ix, nil
}

// clampCol truncates a column to the row count so a hand-edited index
// with a long column cannot index out of range.
func clampCol[T any](col []T, n int) []T {
	if len(col) > n {
		return col[:n]
	}
	return col
}

// WriteTo persists the index inside a lake directory.
func (ix *Index) WriteTo(dir string) error {
	return ix.WriteFile(filepath.Join(dir, IndexFile))
}

// value returns the named column of a row as a display string and,
// when numeric, its float value. ok is false for unknown columns.
func value(r *Row, name string) (s string, f float64, numeric, ok bool) {
	if name == "schema" {
		return fmt.Sprintf("%d", r.Schema), float64(r.Schema), true, true
	}
	for _, c := range runColumns {
		if c.name != name {
			continue
		}
		switch {
		case c.gs != nil:
			return *c.gs(r), 0, false, true
		case c.gi != nil:
			v := *c.gi(r)
			return fmt.Sprintf("%d", v), float64(v), true, true
		case c.gf != nil:
			v := *c.gf(r)
			return trimFloat(v), v, true, true
		case c.gb != nil:
			v := *c.gb(r)
			if v {
				return "true", 1, true, true
			}
			return "false", 0, true, true
		}
	}
	return "", 0, false, false
}

// ColumnNames lists every queryable run column.
func ColumnNames() []string {
	names := make([]string, 0, len(runColumns)+1)
	for _, c := range runColumns {
		names = append(names, c.name)
	}
	names = append(names, "schema")
	return names
}

// trimFloat renders a float compactly ("0.5", not "0.500000").
func trimFloat(v float64) string {
	return trimZeros(fmt.Sprintf("%.6f", v))
}

func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}
