package lake

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Cross-run regression reports: match every candidate row to its
// baseline row by scenario identity and compare the deterministic
// result metrics under a tolerance. Perf self-reports (wall_ms,
// events_per_sec) are machine-dependent, so they are always reported
// but never count as drift.

// DiffMetrics is the deterministic metric set a diff gates on, in
// report order.
var DiffMetrics = []string{
	"goodput_gbps", "fct_p50_us", "fct_p99_us",
	"flows", "completed", "timeouts", "retransmits",
	"drops_red", "drops_total", "fault_drops",
	"coflows", "coflows_done", "cct_p99_us", "events",
}

// PerfMetrics are reported for context but never drift.
var PerfMetrics = []string{"events_per_sec", "wall_ms"}

// Tolerance bounds acceptable drift: a metric drifts when
// |cur-base| > Abs + Pct/100·|base|. The zero value tolerates nothing
// — right for a deterministic simulator, where any delta is a real
// behavior change.
type Tolerance struct {
	Pct float64
	Abs float64
}

// Within reports whether the delta is inside tolerance.
func (t Tolerance) Within(base, cur float64) bool {
	return math.Abs(cur-base) <= t.Abs+t.Pct/100*math.Abs(base)
}

// MetricDelta is one metric's baseline/candidate pair.
type MetricDelta struct {
	Metric   string  `json:"metric"`
	Base     float64 `json:"base"`
	Cur      float64 `json:"cur"`
	DeltaPct float64 `json:"delta_pct"` // 0 when base is 0
	Drifted  bool    `json:"drifted"`
}

// RowDiff is one matched scenario's comparison.
type RowDiff struct {
	ID      string        `json:"id"`
	Label   string        `json:"label"` // human summary: scheme/topo/workload/load/seed
	Drifted bool          `json:"drifted"`
	Deltas  []MetricDelta `json:"deltas"`
}

// DiffReport is the full cross-run comparison.
type DiffReport struct {
	Matched          int       `json:"matched"`
	Drifted          int       `json:"drifted"`
	MissingBaseline  []string  `json:"missing_baseline,omitempty"`  // candidate rows with no baseline
	MissingCandidate []string  `json:"missing_candidate,omitempty"` // baseline rows with no candidate
	Rows             []RowDiff `json:"rows"`
}

// Clean reports whether nothing drifted and every baseline scenario
// has a candidate (new candidate-only scenarios are additions, not
// regressions, and do not dirty the report).
func (d *DiffReport) Clean() bool {
	return d.Drifted == 0 && len(d.MissingCandidate) == 0
}

// rowKey is the identity a diff matches rows on: the full dimension
// tuple. Deliberately not the farm's content hash, so lakes produced
// by different orchestrator versions (or hand-run artifacts) still
// match on what the scenario actually was.
func rowKey(r *Row) string {
	return strings.Join([]string{
		r.Scheme, r.Topo, r.Workload, r.Options, r.FaultSig, r.WlPlanSig,
		trimFloat(r.Load), trimFloat(r.Deploy), trimFloat(r.WQ),
		fmt.Sprintf("%d", r.Seed), fmt.Sprintf("%d", r.DurationPs),
	}, "|")
}

func rowLabel(r *Row) string {
	parts := []string{r.Scheme, r.Topo, r.Workload, "load=" + trimFloat(r.Load), fmt.Sprintf("seed=%d", r.Seed)}
	if r.Fault != "" {
		parts = append(parts, "fault="+r.Fault)
	} else if r.FaultSig != "" {
		parts = append(parts, "fault="+r.FaultSig)
	}
	if r.Options != "" {
		parts = append(parts, r.Options)
	}
	return strings.Join(parts, " ")
}

// Diff compares candidate against baseline under tol. metrics selects
// the gated set (nil = DiffMetrics); perf metrics ride along
// informationally either way.
func Diff(baseline, candidate *Index, tol Tolerance, metrics []string) (*DiffReport, error) {
	if metrics == nil {
		metrics = DiffMetrics
	}
	known := map[string]bool{}
	for _, n := range ColumnNames() {
		known[n] = true
	}
	for _, m := range metrics {
		if !known[m] {
			return nil, fmt.Errorf("lake: unknown diff metric %q", m)
		}
	}
	base := map[string]*Row{}
	for i := range baseline.Rows {
		base[rowKey(&baseline.Rows[i])] = &baseline.Rows[i]
	}
	rep := &DiffReport{}
	seen := map[string]bool{}
	for i := range candidate.Rows {
		cur := &candidate.Rows[i]
		key := rowKey(cur)
		seen[key] = true
		b, ok := base[key]
		if !ok {
			rep.MissingBaseline = append(rep.MissingBaseline, rowLabel(cur))
			continue
		}
		rd := RowDiff{ID: key, Label: rowLabel(cur)}
		compare := func(m string, gated bool) {
			_, bv, _, _ := value(b, m)
			_, cv, _, _ := value(cur, m)
			md := MetricDelta{Metric: m, Base: bv, Cur: cv}
			if bv != 0 {
				md.DeltaPct = (cv - bv) / bv * 100
			}
			md.Drifted = gated && !tol.Within(bv, cv)
			if md.Drifted {
				rd.Drifted = true
			}
			if md.Drifted || bv != cv {
				rd.Deltas = append(rd.Deltas, md)
			}
		}
		for _, m := range metrics {
			compare(m, true)
		}
		for _, m := range PerfMetrics {
			compare(m, false)
		}
		rep.Matched++
		if rd.Drifted {
			rep.Drifted++
		}
		if rd.Drifted || len(rd.Deltas) > 0 {
			rep.Rows = append(rep.Rows, rd)
		}
	}
	for i := range baseline.Rows {
		if key := rowKey(&baseline.Rows[i]); !seen[key] {
			rep.MissingCandidate = append(rep.MissingCandidate, rowLabel(&baseline.Rows[i]))
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Drifted != rep.Rows[j].Drifted {
			return rep.Rows[i].Drifted
		}
		return rep.Rows[i].Label < rep.Rows[j].Label
	})
	sort.Strings(rep.MissingBaseline)
	sort.Strings(rep.MissingCandidate)
	return rep, nil
}

// WriteText renders the report for terminals: the verdict, every
// drifted scenario with its offending metrics, then informational
// deltas.
func (d *DiffReport) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	verdict := "CLEAN"
	if !d.Clean() {
		verdict = "DRIFT"
	}
	fmt.Fprintf(bw, "%s: %d scenarios matched, %d drifted, %d only in baseline, %d only in candidate\n",
		verdict, d.Matched, d.Drifted, len(d.MissingCandidate), len(d.MissingBaseline))
	for _, rd := range d.Rows {
		tag := "info "
		if rd.Drifted {
			tag = "DRIFT"
		}
		fmt.Fprintf(bw, "%s %s\n", tag, rd.Label)
		for _, md := range rd.Deltas {
			mark := ""
			if md.Drifted {
				mark = "  <-- drift"
			}
			fmt.Fprintf(bw, "      %-16s %14s -> %-14s %+7.2f%%%s\n",
				md.Metric, trimFloat(md.Base), trimFloat(md.Cur), md.DeltaPct, mark)
		}
	}
	for _, l := range d.MissingCandidate {
		fmt.Fprintf(bw, "MISSING in candidate: %s\n", l)
	}
	for _, l := range d.MissingBaseline {
		fmt.Fprintf(bw, "new in candidate: %s\n", l)
	}
	return bw.Flush()
}
