package lake

import (
	"strings"
	"testing"
)

func testIndex() *Index {
	return &Index{Rows: []Row{
		{ID: "a1", Scheme: "flexpass", Topo: "small", Workload: "websearch", Load: 0.4, Seed: 1, GoodputGbps: 2.0, FCTP99Us: 100, DropsTotal: 5},
		{ID: "a2", Scheme: "flexpass", Topo: "small", Workload: "websearch", Load: 0.8, Seed: 1, GoodputGbps: 4.0, FCTP99Us: 300, DropsTotal: 9},
		{ID: "b1", Scheme: "dctcp", Topo: "small", Workload: "websearch", Load: 0.4, Seed: 1, GoodputGbps: 1.0, FCTP99Us: 200, DropsTotal: 1},
		{ID: "b2", Scheme: "dctcp", Topo: "small", Workload: "websearch", Load: 0.8, Seed: 1, GoodputGbps: 3.0, FCTP99Us: 600, DropsTotal: 3, Salvaged: true},
	}}
}

func TestParseCond(t *testing.T) {
	for in, want := range map[string]Cond{
		"scheme=flexpass": {Col: "scheme", Op: OpEq, Arg: "flexpass"},
		"scheme!=dctcp":   {Col: "scheme", Op: OpNe, Arg: "dctcp"},
		"load<=0.5":       {Col: "load", Op: OpLe, Arg: "0.5"},
		"load >= 0.5":     {Col: "load", Op: OpGe, Arg: "0.5"},
		"seed<3":          {Col: "seed", Op: OpLt, Arg: "3"},
	} {
		got, err := ParseCond(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got != want {
			t.Errorf("%q: got %+v, want %+v", in, got, want)
		}
	}
	if _, err := ParseCond("noseparator"); err == nil {
		t.Error("bad condition parsed")
	}
}

func TestCondGlobAndNumeric(t *testing.T) {
	r := &Row{Scheme: "flexpass", Load: 0.8, Salvaged: true}
	cases := []struct {
		cond string
		want bool
	}{
		{"scheme=flex*", true},
		{"scheme=dc*", false},
		{"scheme!=dc*", true},
		{"load>0.5", true},
		{"load<=0.5", false},
		{"salvaged=true", true},
		{"salvaged=false", false},
	}
	for _, c := range cases {
		cond, err := ParseCond(c.cond)
		if err != nil {
			t.Fatal(err)
		}
		if got := cond.Match(r); got != c.want {
			t.Errorf("%q matched %v, want %v", c.cond, got, c.want)
		}
	}
}

// TestQueryGroupAggregate exercises the paper-figure shape: p99 FCT and
// goodput by scheme × load.
func TestQueryGroupAggregate(t *testing.T) {
	ix := testIndex()
	aggs, err := ParseAggs("fct_p99_us:mean,goodput_gbps:sum,count")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := ix.Run(Query{GroupBy: []string{"scheme", "load"}, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	wantHeader := []string{"scheme", "load", "mean(fct_p99_us)", "sum(goodput_gbps)", "count"}
	if strings.Join(tab.Header, ",") != strings.Join(wantHeader, ",") {
		t.Fatalf("header %v", tab.Header)
	}
	want := map[string]string{
		"dctcp|0.4":    "200|1|1",
		"dctcp|0.8":    "600|3|1",
		"flexpass|0.4": "100|2|1",
		"flexpass|0.8": "300|4|1",
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("got %d groups: %v", len(tab.Rows), tab.Rows)
	}
	for _, row := range tab.Rows {
		key := row[0] + "|" + row[1]
		if got := strings.Join(row[2:], "|"); got != want[key] {
			t.Errorf("group %s: got %s, want %s", key, got, want[key])
		}
	}
}

func TestQueryWhereFilters(t *testing.T) {
	ix := testIndex()
	tab, err := ix.Run(Query{
		Where: []Cond{{Col: "salvaged", Op: OpEq, Arg: "false"}, {Col: "scheme", Op: OpEq, Arg: "dctcp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One dctcp row survives the salvaged filter; default agg is count.
	if len(tab.Rows) != 1 || tab.Rows[0][0] != "1" {
		t.Fatalf("rows: %v", tab.Rows)
	}
}

func TestQueryRejectsUnknownColumns(t *testing.T) {
	ix := testIndex()
	if _, err := ix.Run(Query{GroupBy: []string{"nope"}}); err == nil {
		t.Error("unknown group-by accepted")
	}
	if _, err := ix.Run(Query{Where: []Cond{{Col: "nope", Op: OpEq, Arg: "x"}}}); err == nil {
		t.Error("unknown filter column accepted")
	}
	if _, err := ix.Run(Query{Aggs: []Agg{{Col: "nope", Fn: "mean"}}}); err == nil {
		t.Error("unknown aggregate column accepted")
	}
	if _, err := ParseAggs("goodput_gbps:median"); err == nil {
		t.Error("unknown aggregate function accepted")
	}
}

func TestQueryPercentileAgg(t *testing.T) {
	ix := &Index{}
	for i := 1; i <= 100; i++ {
		ix.Rows = append(ix.Rows, Row{Scheme: "s", FCTP99Us: float64(i)})
	}
	tab, err := ix.Run(Query{Aggs: []Agg{{Col: "fct_p99_us", Fn: "p50"}, {Col: "fct_p99_us", Fn: "p99"}}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows[0][0] != "51" || tab.Rows[0][1] != "100" {
		t.Errorf("percentiles: %v", tab.Rows[0])
	}
}

func TestDiffCleanOnIdenticalLakes(t *testing.T) {
	rep, err := Diff(testIndex(), testIndex(), Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || rep.Matched != 4 || rep.Drifted != 0 {
		t.Fatalf("identical lakes not clean: %+v", rep)
	}
}

// TestDiffFlagsInjectedRegression: a goodput drop beyond tolerance must
// drift; within tolerance it must not.
func TestDiffFlagsInjectedRegression(t *testing.T) {
	base := testIndex()
	cand := testIndex()
	cand.Rows[0].GoodputGbps *= 0.8 // -20%

	rep, err := Diff(base, cand, Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || rep.Drifted != 1 {
		t.Fatalf("zero-tolerance diff missed the regression: %+v", rep)
	}
	var found bool
	for _, rd := range rep.Rows {
		if !rd.Drifted {
			continue
		}
		for _, md := range rd.Deltas {
			if md.Metric == "goodput_gbps" && md.Drifted {
				found = true
				if md.DeltaPct > -19.9 || md.DeltaPct < -20.1 {
					t.Errorf("delta pct = %g, want -20", md.DeltaPct)
				}
			}
		}
	}
	if !found {
		t.Error("goodput_gbps not reported as the drifting metric")
	}

	// The same regression inside a generous tolerance is clean.
	rep, err = Diff(base, cand, Tolerance{Pct: 25}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("25%% tolerance still drifted: %+v", rep)
	}
}

func TestDiffPerfMetricsNeverGate(t *testing.T) {
	base := testIndex()
	cand := testIndex()
	cand.Rows[0].WallMS = 999
	cand.Rows[0].EventsPerSec = 1
	rep, err := Diff(base, cand, Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("perf-only delta gated the diff: %+v", rep)
	}
	// But the delta is still reported for context.
	if len(rep.Rows) != 1 || len(rep.Rows[0].Deltas) == 0 {
		t.Fatalf("perf delta not reported: %+v", rep.Rows)
	}
}

func TestDiffMissingRows(t *testing.T) {
	base := testIndex()
	cand := testIndex()
	cand.Rows = cand.Rows[:3] // drop one baseline scenario

	rep, err := Diff(base, cand, Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() || len(rep.MissingCandidate) != 1 {
		t.Fatalf("missing candidate scenario not flagged: %+v", rep)
	}

	// Candidate-only scenarios are additions, not regressions.
	cand = testIndex()
	cand.Rows = append(cand.Rows, Row{ID: "new", Scheme: "swift", Topo: "small", Workload: "websearch", Load: 0.4, Seed: 9})
	rep, err = Diff(base, cand, Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || len(rep.MissingBaseline) != 1 {
		t.Fatalf("candidate-only scenario handling: %+v", rep)
	}
}

func TestDiffRejectsUnknownMetric(t *testing.T) {
	if _, err := Diff(testIndex(), testIndex(), Tolerance{}, []string{"nope"}); err == nil {
		t.Error("unknown diff metric accepted")
	}
}

func TestBenchTableFilters(t *testing.T) {
	ix := &Index{Bench: []BenchRow{
		{Source: "a.json", Bench: "EngineDispatch", Metric: "ns/op", Value: 100},
		{Source: "a.json", Bench: "EngineDispatch", Metric: "allocs/op", Value: 0},
		{Source: "a.json", Bench: "PacketPool", Metric: "ns/op", Value: 50},
	}}
	tab := ix.BenchTable("EngineDispatch", "ns/op")
	if len(tab.Rows) != 1 {
		t.Fatalf("filter returned %d rows", len(tab.Rows))
	}
	tab = ix.BenchTable("", "")
	if len(tab.Rows) != 3 {
		t.Fatalf("unfiltered returned %d rows", len(tab.Rows))
	}
}
