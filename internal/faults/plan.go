// Package faults implements deterministic, scripted fault injection for
// the simulated fabric: a Plan is an ordered timeline of typed events —
// link flaps, rate degradation, Gilbert–Elliott burst loss, and
// credit-targeted loss — applied to named ports through sim.Engine
// timers. Plans are data (JSON files or a compact CLI shorthand), so a
// failure scenario is part of the experiment's reproducible inputs:
// same seed + same plan ⇒ bit-identical packet fates, because every
// random loss decision draws from the engine's seeded stream and every
// state change happens at a scripted simulation instant.
package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path"
	"sort"
	"strconv"
	"strings"

	"flexpass/internal/planspec"
	"flexpass/internal/sim"
)

// Kind names a fault event type.
type Kind string

// Fault event kinds. Interval kinds (LinkDown, RateDegrade, BurstLoss,
// CreditLoss) may carry an End time that schedules the matching clear
// action automatically; the explicit clear kinds (LinkUp, RateRestore)
// exist for plans that script asymmetric or open-ended failures.
const (
	LinkDown    Kind = "link-down"    // port blackholes all traffic
	LinkUp      Kind = "link-up"      // port resumes service
	RateDegrade Kind = "rate-degrade" // port serializes at Fraction of line rate
	RateRestore Kind = "rate-restore" // port returns to full line rate
	BurstLoss   Kind = "burst-loss"   // Gilbert–Elliott loss model on the port
	CreditLoss  Kind = "credit-loss"  // Bernoulli loss on credit packets only
)

// knownKinds gates validation; keep in sync with the constants above.
var knownKinds = map[Kind]bool{
	LinkDown: true, LinkUp: true, RateDegrade: true, RateRestore: true,
	BurstLoss: true, CreditLoss: true,
}

// interval reports whether the kind accepts an End time.
func (k Kind) interval() bool {
	return k == LinkDown || k == RateDegrade || k == BurstLoss || k == CreditLoss
}

// TimeSpec is the shared plan time codec (see internal/planspec): a
// bare JSON number is picoseconds, a string accepts a unit suffix
// ("250us", "2ms", "1.5s"), and marshaling always emits exact
// picoseconds so a plan round-trips losslessly.
type TimeSpec = planspec.TimeSpec

// parseTime parses "2ms", "250us", "1.5s", "40ns", "7ps". A bare number
// string is picoseconds.
func parseTime(s string) (sim.Time, error) { return planspec.ParseTime(s) }

// Event is one scripted fault. Link is a path.Match glob over port names
// (see topo: "sw0->h1", "tor0.0->h0.0.0", "h3:nic"); a pattern may hit
// several ports, and "*" hits everything. Kind-specific fields:
//
//   - RateDegrade: Fraction ∈ (0,1), the share of line rate retained.
//   - CreditLoss: Rate ∈ (0,1], the per-credit drop probability.
//   - BurstLoss: either Rate alone (flat Bernoulli loss) or the
//     Gilbert–Elliott shape — LossBad (default 1), LossGood (default 0),
//     BadLen / GoodLen, the mean burst and gap lengths in packets
//     (defaults 8 and 200; transition probabilities are their inverses).
type Event struct {
	Kind Kind     `json:"kind"`
	Link string   `json:"link"`
	At   TimeSpec `json:"at"`
	// End, when nonzero, schedules the paired clear action (LinkUp,
	// RateRestore, loss model removed) for interval kinds.
	End      TimeSpec `json:"end,omitempty"`
	Fraction float64  `json:"fraction,omitempty"`
	Rate     float64  `json:"rate,omitempty"`
	LossBad  float64  `json:"loss_bad,omitempty"`
	LossGood float64  `json:"loss_good,omitempty"`
	BadLen   float64  `json:"bad_len,omitempty"`
	GoodLen  float64  `json:"good_len,omitempty"`
}

// Plan is an ordered fault timeline. The zero value is an empty plan.
type Plan struct {
	// Name labels the plan in reports and artifacts.
	Name   string  `json:"name,omitempty"`
	Events []Event `json:"events"`
}

// PlanError reports an invalid event in a plan: which event, which
// field, and why. It is the only error class plan validation produces
// for structural problems, so callers can test errors.As against it.
type PlanError struct {
	Index int    // position in Plan.Events
	Field string // offending field name ("kind", "at", ...)
	Msg   string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("faults: event %d: field %s: %s", e.Index, e.Field, e.Msg)
}

// UnknownLinkError reports a link pattern that matched no port in the
// network the plan was applied to.
type UnknownLinkError struct {
	Pattern string
}

func (e *UnknownLinkError) Error() string {
	return fmt.Sprintf("faults: link pattern %q matches no port", e.Pattern)
}

// Validate checks every event for structural soundness — known kind,
// syntactically valid link glob, sane times and probabilities — and
// checks that LinkDown/LinkUp (and RateDegrade/RateRestore) intervals
// on the same link pattern do not overlap or clear a state that was
// never set. It returns a *PlanError describing the first problem, or
// nil. Validate does not need a network; pattern resolution against
// real ports happens in Apply.
func (p *Plan) Validate() error {
	type toggle struct {
		at   sim.Time
		idx  int
		down bool // engage (true) or clear (false)
	}
	// Per (link, mechanism) timelines for the two stateful toggles.
	downs := map[string][]toggle{}
	rates := map[string][]toggle{}
	for i := range p.Events {
		ev := &p.Events[i]
		if !knownKinds[ev.Kind] {
			return &PlanError{Index: i, Field: "kind", Msg: fmt.Sprintf("unknown kind %q", ev.Kind)}
		}
		if ev.Link == "" {
			return &PlanError{Index: i, Field: "link", Msg: "empty link pattern"}
		}
		if _, err := path.Match(ev.Link, ""); err != nil {
			return &PlanError{Index: i, Field: "link", Msg: fmt.Sprintf("bad pattern: %v", err)}
		}
		if ev.At < 0 {
			return &PlanError{Index: i, Field: "at", Msg: "negative time"}
		}
		if ev.End != 0 {
			if !ev.Kind.interval() {
				return &PlanError{Index: i, Field: "end", Msg: fmt.Sprintf("%s takes no end time", ev.Kind)}
			}
			if ev.End <= ev.At {
				return &PlanError{Index: i, Field: "end", Msg: "end not after at"}
			}
		}
		switch ev.Kind {
		case RateDegrade:
			if ev.Fraction <= 0 || ev.Fraction >= 1 {
				return &PlanError{Index: i, Field: "fraction", Msg: "must be in (0,1)"}
			}
		case CreditLoss:
			if ev.Rate <= 0 || ev.Rate > 1 {
				return &PlanError{Index: i, Field: "rate", Msg: "must be in (0,1]"}
			}
		case BurstLoss:
			for _, f := range []struct {
				name string
				v    float64
			}{{"rate", ev.Rate}, {"loss_bad", ev.LossBad}, {"loss_good", ev.LossGood}} {
				if f.v < 0 || f.v > 1 {
					return &PlanError{Index: i, Field: f.name, Msg: "probability outside [0,1]"}
				}
			}
			if ev.BadLen < 0 || ev.GoodLen < 0 {
				return &PlanError{Index: i, Field: "bad_len", Msg: "burst lengths must be >= 0"}
			}
			if ev.BadLen >= 0 && ev.BadLen != 0 && ev.BadLen < 1 {
				return &PlanError{Index: i, Field: "bad_len", Msg: "mean burst length below one packet"}
			}
			if ev.GoodLen != 0 && ev.GoodLen < 1 {
				return &PlanError{Index: i, Field: "good_len", Msg: "mean gap length below one packet"}
			}
		}
		// Record state toggles for the overlap check.
		switch ev.Kind {
		case LinkDown:
			downs[ev.Link] = append(downs[ev.Link], toggle{ev.At.Time(), i, true})
			if ev.End != 0 {
				downs[ev.Link] = append(downs[ev.Link], toggle{ev.End.Time(), i, false})
			}
		case LinkUp:
			downs[ev.Link] = append(downs[ev.Link], toggle{ev.At.Time(), i, false})
		case RateDegrade:
			rates[ev.Link] = append(rates[ev.Link], toggle{ev.At.Time(), i, true})
			if ev.End != 0 {
				rates[ev.Link] = append(rates[ev.Link], toggle{ev.End.Time(), i, false})
			}
		case RateRestore:
			rates[ev.Link] = append(rates[ev.Link], toggle{ev.At.Time(), i, false})
		}
	}
	check := func(m map[string][]toggle, what string) error {
		for _, ts := range m {
			sort.SliceStable(ts, func(a, b int) bool {
				if ts[a].at != ts[b].at {
					return ts[a].at < ts[b].at
				}
				// Clear before engage at the same instant: back-to-back
				// intervals like [1,2) then [2,3) are legal.
				return !ts[a].down && ts[b].down
			})
			engaged := false
			for _, t := range ts {
				if t.down == engaged {
					field := "at"
					msg := fmt.Sprintf("overlapping %s intervals on link %q", what, p.Events[t.idx].Link)
					if !t.down {
						msg = fmt.Sprintf("%s clears a link that is not %s", what, what)
					}
					return &PlanError{Index: t.idx, Field: field, Msg: msg}
				}
				engaged = t.down
			}
		}
		return nil
	}
	if err := check(downs, "down"); err != nil {
		return err
	}
	return check(rates, "degrade")
}

// End returns the instant the last scripted fault clears: the maximum
// over events of End (for intervals) or At (for point actions and
// open-ended intervals). Recovery-time analysis measures from here.
func (p *Plan) End() sim.Time {
	var end sim.Time
	for i := range p.Events {
		t := p.Events[i].At.Time()
		if e := p.Events[i].End.Time(); e > t {
			t = e
		}
		if t > end {
			end = t
		}
	}
	return end
}

// Hash returns a short, stable content hash of the plan's fault
// timeline — the identity the result lake keys faulted runs on. The
// plan Name is deliberately excluded (renaming a plan file must not
// change the scenario identity), and TimeSpec marshals as exact
// picoseconds, so two plans hash equal iff they script the same
// timeline. A nil or empty plan hashes to "".
func (p *Plan) Hash() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	b, err := json.Marshal(p.Events)
	if err != nil {
		// Events hold only plain values; marshal cannot fail in practice.
		panic(fmt.Sprintf("faults: hashing plan: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ParsePlan decodes and validates a JSON plan. Unknown fields are
// rejected so typos in plan files fail loudly instead of silently
// producing a clean run.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: bad plan JSON: %w", err)
	}
	// Trailing garbage after the plan object is damage, not data.
	if dec.More() {
		return nil, errors.New("faults: trailing data after plan JSON")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseSpec parses the CLI shorthand: comma-separated specs of
// '@'-separated fields ('@' because port names use ':', '-', '.'):
//
//	down@LINK@WINDOW            link down for the window
//	rate@LINK@WINDOW@FRACTION   degraded to FRACTION of line rate
//	burst@LINK@WINDOW[@LOSSBAD[@BADLEN[@GOODLEN]]]
//	credit@LINK@WINDOW@RATE     credit-only Bernoulli loss
//
// WINDOW is START-END or a bare START (open-ended), each side a
// unit-suffixed time ("2ms", "500us"). Example:
//
//	down@sw0->h1@2ms-3ms,burst@tor*@1ms-5ms@1.0@8@200
func ParseSpec(spec string) (*Plan, error) {
	p := &Plan{Name: "spec"}
	for i, raw := range strings.Split(spec, ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		f := strings.Split(raw, "@")
		if len(f) < 3 {
			return nil, &PlanError{Index: i, Field: "spec", Msg: fmt.Sprintf("%q needs at least op@link@window", raw)}
		}
		op, link, window := f[0], f[1], f[2]
		at, end, err := parseWindow(window)
		if err != nil {
			return nil, &PlanError{Index: i, Field: "window", Msg: err.Error()}
		}
		ev := Event{Link: link, At: TimeSpec(at), End: TimeSpec(end)}
		args := f[3:]
		num := func(j int, def float64) (float64, error) {
			if j >= len(args) {
				return def, nil
			}
			return strconv.ParseFloat(args[j], 64)
		}
		switch op {
		case "down":
			ev.Kind = LinkDown
		case "rate":
			ev.Kind = RateDegrade
			if ev.Fraction, err = num(0, 0); err != nil || len(args) == 0 {
				return nil, &PlanError{Index: i, Field: "fraction", Msg: "rate@ needs a fraction"}
			}
		case "burst":
			ev.Kind = BurstLoss
			if ev.LossBad, err = num(0, 1); err != nil {
				return nil, &PlanError{Index: i, Field: "loss_bad", Msg: err.Error()}
			}
			if ev.BadLen, err = num(1, 0); err != nil {
				return nil, &PlanError{Index: i, Field: "bad_len", Msg: err.Error()}
			}
			if ev.GoodLen, err = num(2, 0); err != nil {
				return nil, &PlanError{Index: i, Field: "good_len", Msg: err.Error()}
			}
		case "credit":
			ev.Kind = CreditLoss
			if ev.Rate, err = num(0, 0); err != nil || len(args) == 0 {
				return nil, &PlanError{Index: i, Field: "rate", Msg: "credit@ needs a loss rate"}
			}
		default:
			return nil, &PlanError{Index: i, Field: "spec", Msg: fmt.Sprintf("unknown op %q", op)}
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseWindow parses "START-END" or "START" (end 0 = open).
func parseWindow(w string) (at, end sim.Time, err error) {
	return planspec.ParseWindow(w)
}
