package faults

import (
	"fmt"
	"path"
	"sort"
	"sync"

	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
)

// Action is one fault-plan action as it actually fired: the resolved
// port, the instant, and the kind-specific magnitude. Engage and clear
// actions are logged separately (an Event with End yields two Actions
// per matched port).
type Action struct {
	At    sim.Time
	Kind  Kind
	Link  string  // resolved port name, not the pattern
	Value float64 // fraction / loss probability; 0 for up/restore/down
}

// Applied is the execution log of a plan: every action in simulation
// order, appended as the scheduled timers fire. It doubles as the
// telemetry bridge — Register exposes the running action count, and
// Export converts the log to obs artifact lines. Sharded runs fire
// timers from several shard goroutines, so the log is mutex-guarded.
type Applied struct {
	Plan *Plan

	mu      sync.Mutex
	actions []Action
}

// Len returns the number of actions fired so far.
func (a *Applied) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.actions)
}

// Snapshot returns a copy of the fired-action log.
func (a *Applied) Snapshot() []Action {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Action(nil), a.actions...)
}

// Apply resolves every event's link pattern against the network's port
// names and schedules the engage (and, for intervals with an End, the
// clear) on the engine. It must be called before eng.Run, at time zero.
// A pattern matching no port returns *UnknownLinkError; an invalid plan
// returns *PlanError. The returned log fills in as the run executes.
//
// Determinism: ports are resolved in Network.EachPort order and events
// in plan order, so the timer creation sequence — and therefore the
// engine's event tie-break order — is a pure function of (plan, topo).
func Apply(p *Plan, eng *sim.Engine, net *netem.Network) (*Applied, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	a := &Applied{Plan: p}
	// All fault timers — and anything their engage/clear closures
	// schedule — attribute to the "faults" component. A port always
	// schedules on its own engine so sharded runs flip port state from
	// the goroutine that owns it; single-engine runs resolve every port
	// to eng and behave exactly as before.
	restore := map[*sim.Engine]sim.Component{}
	faultsComp := func(e *sim.Engine) *sim.Engine {
		if _, ok := restore[e]; !ok {
			restore[e] = e.SetComponent(e.Component("faults"))
		}
		return e
	}
	defer func() {
		for e, prev := range restore {
			e.SetComponent(prev)
		}
	}()
	faultsComp(eng)
	for i := range p.Events {
		ev := &p.Events[i]
		ports := matchPorts(net, ev.Link)
		if len(ports) == 0 {
			return nil, &UnknownLinkError{Pattern: ev.Link}
		}
		for _, port := range ports {
			port := port
			pe := eng
			if e := port.Engine(); e != nil {
				pe = e
			}
			faultsComp(pe)
			engage, clear, val := actions(ev, port)
			at := ev.At.Time()
			pe.At(at, func() {
				engage()
				a.record(at, ev.Kind, port, val)
			})
			if ev.End != 0 && clear != nil {
				end := ev.End.Time()
				kind := clearKind(ev.Kind)
				pe.At(end, func() {
					clear()
					a.record(end, kind, port, 0)
				})
			}
		}
	}
	return a, nil
}

// matchPorts resolves a glob (or exact name) against every port.
func matchPorts(net *netem.Network, pattern string) []*netem.Port {
	var out []*netem.Port
	net.EachPort(func(p *netem.Port) {
		if ok, _ := path.Match(pattern, p.Name()); ok {
			out = append(out, p)
		}
	})
	return out
}

// actions builds the engage/clear closures for one event on one port.
// val is the magnitude recorded with the engage action.
func actions(ev *Event, p *netem.Port) (engage, clear func(), val float64) {
	switch ev.Kind {
	case LinkDown:
		return func() { p.SetDown(true) }, func() { p.SetDown(false) }, 0
	case LinkUp:
		return func() { p.SetDown(false) }, nil, 0
	case RateDegrade:
		return func() { p.SetRateFraction(ev.Fraction) },
			func() { p.SetRateFraction(1) }, ev.Fraction
	case RateRestore:
		return func() { p.SetRateFraction(1) }, nil, 0
	case CreditLoss:
		return func() { p.SetCreditLossRate(ev.Rate) },
			func() { p.SetCreditLossRate(0) }, ev.Rate
	case BurstLoss:
		g := ev.Model()
		return func() { p.SetGilbertElliott(g) },
			func() { p.SetGilbertElliott(netem.GilbertElliott{}) }, g.LossBad
	}
	panic(fmt.Sprintf("faults: unreachable kind %q", ev.Kind)) // Validate gates kinds
}

// Model returns the Gilbert–Elliott parameters a BurstLoss event
// installs: Rate alone means flat Bernoulli loss; otherwise LossBad
// (default 1), LossGood (default 0), and mean burst/gap lengths BadLen
// (default 8) and GoodLen (default 200) whose inverses become the
// per-packet transition probabilities.
func (ev *Event) Model() netem.GilbertElliott {
	if ev.Rate > 0 && ev.LossBad == 0 && ev.BadLen == 0 && ev.GoodLen == 0 {
		return netem.Bernoulli(ev.Rate)
	}
	lossBad, badLen, goodLen := ev.LossBad, ev.BadLen, ev.GoodLen
	if lossBad == 0 {
		lossBad = 1
	}
	if badLen == 0 {
		badLen = 8
	}
	if goodLen == 0 {
		goodLen = 200
	}
	return netem.GilbertElliott{
		PGoodBad: 1 / goodLen,
		PBadGood: 1 / badLen,
		LossGood: ev.LossGood,
		LossBad:  lossBad,
	}
}

// clearKind maps an interval kind to the kind logged for its clear.
func clearKind(k Kind) Kind {
	switch k {
	case LinkDown:
		return LinkUp
	case RateDegrade:
		return RateRestore
	default:
		// Loss intervals clear back to "no model"; log under the same
		// kind with value 0 so the pair is self-describing.
		return k
	}
}

// record appends one fired action to the log.
func (a *Applied) record(at sim.Time, kind Kind, p *netem.Port, val float64) {
	a.mu.Lock()
	a.actions = append(a.actions, Action{At: at, Kind: kind, Link: p.Name(), Value: val})
	a.mu.Unlock()
}

// Register exposes the plan's execution progress in the stats registry
// under entity "faults": the number of actions fired so far.
func (a *Applied) Register(reg *obs.Registry) {
	if reg == nil || a == nil {
		return
	}
	reg.CounterFunc("faults", "actions_applied", func() int64 {
		return int64(a.Len())
	})
}

// Export converts the fired-action log into artifact lines, in
// simulation order. Sharded runs append from several goroutines in
// nondeterministic interleave, so the sort key covers the whole line —
// (time, kind, link, value) — making the artifact a pure function of
// what fired, not of goroutine scheduling.
func (a *Applied) Export() []obs.FaultData {
	if a == nil {
		return nil
	}
	acts := a.Snapshot()
	out := make([]obs.FaultData, 0, len(acts))
	for _, ac := range acts {
		out = append(out, obs.FaultData{
			AtPs: int64(ac.At), Kind: string(ac.Kind), Link: ac.Link, Value: ac.Value,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AtPs != out[j].AtPs {
			return out[i].AtPs < out[j].AtPs
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Link != out[j].Link {
			return out[i].Link < out[j].Link
		}
		return out[i].Value < out[j].Value
	})
	return out
}
