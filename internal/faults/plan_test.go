package faults

import (
	"encoding/json"
	"errors"
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// testFabric builds a 2-sender/1-receiver single switch, the same shape
// as netem's fault tests.
func testFabric(eng *sim.Engine) (*netem.Network, []*netem.Host) {
	net := netem.NewNetwork(eng)
	sw := netem.NewSwitch(eng, net.AllocID(), "sw0", nil)
	qcfg := netem.PortConfig{Queues: []netem.QueueConfig{{Name: "Q0"}}}
	for _, name := range []string{"h0", "h1", "h2"} {
		id := net.AllocID()
		nic := netem.NewPort(eng, name+":nic", 10*units.Gbps, sim.Microsecond, qcfg, nil)
		h := netem.NewHost(eng, id, name, nic, 0)
		nic.Connect(sw)
		net.AddHost(h)
		p := netem.NewPort(eng, "sw0->"+name, 10*units.Gbps, sim.Microsecond, qcfg, nil)
		p.Connect(h)
		sw.AddPort(p)
		sw.AddRoute(id, p)
	}
	net.AddSwitch(sw)
	return net, net.Hosts
}

func TestTimeSpecJSON(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Time
	}{
		{`1500000`, 1500 * sim.Nanosecond},
		{`"2ms"`, 2 * sim.Millisecond},
		{`"250us"`, 250 * sim.Microsecond},
		{`"1.5s"`, 1500 * sim.Millisecond},
		{`"40ns"`, 40 * sim.Nanosecond},
		{`"7ps"`, 7 * sim.Picosecond},
		{`"12"`, 12 * sim.Picosecond},
	}
	for _, c := range cases {
		var ts TimeSpec
		if err := json.Unmarshal([]byte(c.in), &ts); err != nil {
			t.Fatalf("unmarshal %s: %v", c.in, err)
		}
		if ts.Time() != c.want {
			t.Fatalf("%s parsed to %v, want %v", c.in, ts.Time(), c.want)
		}
		// Round trip: marshals as exact picoseconds.
		out, err := json.Marshal(ts)
		if err != nil {
			t.Fatal(err)
		}
		var back TimeSpec
		if err := json.Unmarshal(out, &back); err != nil || back != ts {
			t.Fatalf("round trip %s -> %s -> %v (err %v)", c.in, out, back, err)
		}
	}
	var ts TimeSpec
	if err := json.Unmarshal([]byte(`"2 fortnights"`), &ts); err == nil {
		t.Fatal("nonsense unit accepted")
	}
	if err := json.Unmarshal([]byte(`{"no":1}`), &ts); err == nil {
		t.Fatal("object accepted as time")
	}
}

func TestPlanValidateErrors(t *testing.T) {
	ev := func(e Event) *Plan { return &Plan{Events: []Event{e}} }
	ms := func(n int64) TimeSpec { return TimeSpec(sim.Time(n) * sim.Millisecond) }
	cases := []struct {
		name  string
		plan  *Plan
		field string
	}{
		{"unknown kind", ev(Event{Kind: "meteor-strike", Link: "x", At: ms(1)}), "kind"},
		{"empty link", ev(Event{Kind: LinkDown, At: ms(1)}), "link"},
		{"bad glob", ev(Event{Kind: LinkDown, Link: "[", At: ms(1)}), "link"},
		{"negative at", ev(Event{Kind: LinkDown, Link: "x", At: -1}), "at"},
		{"end before at", ev(Event{Kind: LinkDown, Link: "x", At: ms(2), End: ms(1)}), "end"},
		{"end on point kind", ev(Event{Kind: LinkUp, Link: "x", At: ms(1), End: ms(2)}), "end"},
		{"fraction too big", ev(Event{Kind: RateDegrade, Link: "x", At: ms(1), Fraction: 1.5}), "fraction"},
		{"fraction zero", ev(Event{Kind: RateDegrade, Link: "x", At: ms(1)}), "fraction"},
		{"credit rate zero", ev(Event{Kind: CreditLoss, Link: "x", At: ms(1)}), "rate"},
		{"loss out of range", ev(Event{Kind: BurstLoss, Link: "x", At: ms(1), LossBad: 1.2}), "loss_bad"},
		{"sub-packet burst", ev(Event{Kind: BurstLoss, Link: "x", At: ms(1), BadLen: 0.5}), "bad_len"},
		{"overlapping downs", &Plan{Events: []Event{
			{Kind: LinkDown, Link: "x", At: ms(1), End: ms(5)},
			{Kind: LinkDown, Link: "x", At: ms(3), End: ms(6)},
		}}, "at"},
		{"up without down", ev(Event{Kind: LinkUp, Link: "x", At: ms(1)}), "at"},
		{"restore without degrade", ev(Event{Kind: RateRestore, Link: "x", At: ms(1)}), "at"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: got %v, want *PlanError", c.name, err)
		}
		if pe.Field != c.field {
			t.Fatalf("%s: error field %q, want %q (%v)", c.name, pe.Field, c.field, err)
		}
	}
}

func TestPlanValidateAccepts(t *testing.T) {
	ms := func(n int64) TimeSpec { return TimeSpec(sim.Time(n) * sim.Millisecond) }
	p := &Plan{Events: []Event{
		// Back-to-back intervals sharing a boundary are legal.
		{Kind: LinkDown, Link: "a", At: ms(1), End: ms(2)},
		{Kind: LinkDown, Link: "a", At: ms(2), End: ms(3)},
		// Explicit down/up pairing.
		{Kind: LinkDown, Link: "b", At: ms(1)},
		{Kind: LinkUp, Link: "b", At: ms(4)},
		// Same-window faults on different links don't interact.
		{Kind: RateDegrade, Link: "c", At: ms(1), End: ms(9), Fraction: 0.25},
		{Kind: BurstLoss, Link: "c", At: ms(1), End: ms(9)},
		{Kind: CreditLoss, Link: "c", At: ms(1), End: ms(9), Rate: 0.5},
	}}
	if err := p.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if got, want := p.End(), 9*sim.Millisecond; got != want {
		t.Fatalf("End() = %v, want %v", got, want)
	}
}

func TestParsePlanJSON(t *testing.T) {
	src := `{
		"name": "flap",
		"events": [
			{"kind": "link-down", "link": "sw0->h2", "at": "1ms", "end": "2ms"},
			{"kind": "burst-loss", "link": "sw0->*", "at": 3000000000, "end": "4ms", "bad_len": 4, "good_len": 50}
		]
	}`
	p, err := ParsePlan([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "flap" || len(p.Events) != 2 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Events[1].At.Time() != 3*sim.Millisecond {
		t.Fatalf("numeric time parsed to %v", p.Events[1].At.Time())
	}
	// Round trip through json.Marshal preserves the plan exactly.
	out, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Events) != 2 || p2.Events[0] != p.Events[0] || p2.Events[1] != p.Events[1] {
		t.Fatalf("round trip mismatch: %+v vs %+v", p, p2)
	}

	if _, err := ParsePlan([]byte(`{"events": [{"kind": "link-down", "link": "x", "at": "1ms", "typo_field": 3}]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParsePlan([]byte(`{"events": []} trailing`)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	if _, err := ParsePlan([]byte(`{`)); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("down@sw0->h2@1ms-2ms,rate@sw0->h1@3ms-4ms@0.25,burst@sw0->*@5ms-6ms@0.9@4@50,credit@*@7ms-8ms@0.3")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 4 {
		t.Fatalf("parsed %d events", len(p.Events))
	}
	if p.Events[0].Kind != LinkDown || p.Events[0].At.Time() != sim.Millisecond || p.Events[0].End.Time() != 2*sim.Millisecond {
		t.Fatalf("down event: %+v", p.Events[0])
	}
	if p.Events[1].Fraction != 0.25 || p.Events[2].LossBad != 0.9 || p.Events[2].BadLen != 4 || p.Events[3].Rate != 0.3 {
		t.Fatalf("parameters lost: %+v", p.Events)
	}
	g := p.Events[2].Model()
	if g.PBadGood != 0.25 || g.PGoodBad != 0.02 || g.LossBad != 0.9 {
		t.Fatalf("burst model: %+v", g)
	}

	for _, bad := range []string{
		"down@x",                // missing window
		"explode@x@1ms",         // unknown op
		"rate@x@1ms-2ms",        // missing fraction
		"credit@x@1ms-2ms",      // missing rate
		"down@x@2ms-1ms",        // inverted window
		"down@x@eleven",         // unparseable time
		"burst@x@1ms-2ms@nope",  // unparseable probability
		"rate@x@1ms-2ms@1.5",    // fraction out of range
		"credit@x@1ms-2ms@-0.1", // rate out of range
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestApplyFlap schedules a down/up pair through a real engine and
// checks the port state machine and the fired-action log.
func TestApplyFlap(t *testing.T) {
	eng := sim.NewEngine(5)
	net, hosts := testFabric(eng)
	plan, err := ParseSpec("down@sw0->h2@1ms-2ms")
	if err != nil {
		t.Fatal(err)
	}
	applied, err := Apply(plan, eng, net)
	if err != nil {
		t.Fatal(err)
	}
	bottleneck := net.FindPort("sw0->h2")
	if bottleneck == nil {
		t.Fatal("FindPort failed")
	}
	dst := hosts[2].NodeID()
	send := func() { hosts[0].Send(&netem.Packet{Dst: dst, Flow: 1, Size: 1500}) }
	eng.At(500*sim.Microsecond, send)  // before the fault: delivers
	eng.At(1500*sim.Microsecond, send) // during: blackholed
	eng.At(2500*sim.Microsecond, send) // after: delivers
	eng.At(1500*sim.Microsecond, func() {
		if !bottleneck.Down() {
			t.Error("port not down inside the fault window")
		}
	})
	eng.Run(3 * sim.Millisecond)

	if hosts[2].RxPackets != 2 {
		t.Fatalf("delivered %d, want 2 (one blackholed)", hosts[2].RxPackets)
	}
	if st := bottleneck.FaultStats(); st.LinkDown != 1 {
		t.Fatalf("FaultStats = %+v, want 1 link-down drop", st)
	}
	acts := applied.Snapshot()
	if len(acts) != 2 ||
		acts[0].Kind != LinkDown || acts[0].At != sim.Millisecond ||
		acts[1].Kind != LinkUp || acts[1].At != 2*sim.Millisecond {
		t.Fatalf("action log: %+v", acts)
	}
	exp := applied.Export()
	if len(exp) != 2 || exp[0].Kind != "link-down" || exp[0].Link != "sw0->h2" {
		t.Fatalf("export: %+v", exp)
	}
}

// TestApplyGlobAndUnknown: a glob hits every matching port; a pattern
// hitting nothing is a typed error.
func TestApplyGlobAndUnknown(t *testing.T) {
	eng := sim.NewEngine(5)
	net, _ := testFabric(eng)
	plan, err := ParseSpec("rate@sw0->*@1ms-2ms@0.5")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(plan, eng, net); err != nil {
		t.Fatal(err)
	}
	eng.Run(1500 * sim.Microsecond)
	for _, name := range []string{"sw0->h0", "sw0->h1", "sw0->h2"} {
		p := net.FindPort(name)
		if p.EffectiveRate() != 5*units.Gbps {
			t.Fatalf("%s at %v inside degrade window, want 5Gbps", name, p.EffectiveRate())
		}
	}
	// NICs don't match the glob.
	if p := net.FindPort("h0:nic"); p.EffectiveRate() != 10*units.Gbps {
		t.Fatalf("glob leaked onto %s", p.Name())
	}

	missing, err := ParseSpec("down@tor9->nowhere@1ms-2ms")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(missing, sim.NewEngine(1), net)
	var ule *UnknownLinkError
	if !errors.As(err, &ule) || ule.Pattern != "tor9->nowhere" {
		t.Fatalf("got %v, want *UnknownLinkError", err)
	}
}
