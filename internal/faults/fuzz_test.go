package faults

import (
	"errors"
	"testing"
)

// The fault-plan parsers take user input (plan files, CLI specs). The
// contract under fuzzing: never panic, and every rejection is one of
// the typed error classes (*PlanError, *UnknownLinkError via Apply, or
// a wrapped JSON error from the decoder) — malformed times, overlapping
// intervals, and unknown fields all fail loudly but cleanly. An
// accepted plan must also re-validate, so ParsePlan can never hand out
// a plan that Apply would refuse structurally.

func FuzzParsePlan(f *testing.F) {
	f.Add([]byte(`{"events":[{"kind":"link-down","link":"sw0->h2","at":"1ms","end":"2ms"}]}`))
	f.Add([]byte(`{"name":"x","events":[{"kind":"burst-loss","link":"*","at":0,"end":1,"bad_len":4}]}`))
	f.Add([]byte(`{"events":[{"kind":"rate-degrade","link":"a","at":"1ms","fraction":0.5}]}`))
	f.Add([]byte(`{"events":[{"kind":"link-down","link":"a","at":"1ms","end":"5ms"},` +
		`{"kind":"link-down","link":"a","at":"3ms"}]}`)) // overlapping
	f.Add([]byte(`{"events":[{"kind":"credit-loss","link":"[","at":"-1ms","rate":9}]}`))
	f.Add([]byte(`{"events":[{"kind":"link-down","link":"a","at":"2 fortnights"}]}`))
	f.Add([]byte(`{"events":`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			if p != nil {
				t.Fatalf("error %v returned alongside a plan", err)
			}
			return
		}
		// Whatever parses must be internally consistent.
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan accepted a plan Validate rejects: %v", err)
		}
		_ = p.End()
	})
}

func FuzzParseSpec(f *testing.F) {
	f.Add("down@sw0->h2@1ms-2ms")
	f.Add("down@sw0->h2@1ms-2ms,burst@tor*@1ms-5ms@1.0@8@200")
	f.Add("rate@tor0.0<->agg0.0:fwd@2ms-4ms@0.25")
	f.Add("credit@*@1ms-2ms@0.3")
	f.Add("down@a@2ms-1ms")
	f.Add("down@@@@@")
	f.Add("@@@")
	f.Add(",,,")
	f.Add("down@a@1ms-2ms,down@a@1500us-3ms") // overlapping
	f.Add("burst@[@1ms@NaN@-Inf@1e309")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseSpec(spec)
		if err != nil {
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("ParseSpec(%q) returned untyped error %T: %v", spec, err, err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseSpec accepted a plan Validate rejects: %v", err)
		}
	})
}
