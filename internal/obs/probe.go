package obs

import "flexpass/internal/sim"

// Options configures the telemetry plane for one run. The zero value
// gets sensible defaults from each accessor.
type Options struct {
	// ProbeInterval is the sampling period (default 100us, the cadence
	// the paper's queue-occupancy timelines use).
	ProbeInterval sim.Time
	// SeriesCap bounds each time series to the most recent N samples
	// (default 8192); older samples are overwritten, ring-style, and
	// counted so exported series still carry their true start time.
	SeriesCap int
	// TraceCap, when positive, sizes the shared transport trace ring
	// that the harness attaches to every transport config.
	TraceCap int
}

// Interval returns the probe interval, defaulted.
func (o *Options) Interval() sim.Time {
	if o == nil || o.ProbeInterval <= 0 {
		return 100 * sim.Microsecond
	}
	return o.ProbeInterval
}

// Cap returns the per-series sample capacity, defaulted.
func (o *Options) Cap() int {
	if o == nil || o.SeriesCap <= 0 {
		return 8192
	}
	return o.SeriesCap
}

// Series is one probed metric's ring-buffered samples. Cumulative
// sources yield per-interval deltas; instant sources yield raw readings.
type Series struct {
	Entity, Metric string
	Kind           SampleKind
	Interval       sim.Time
	start          sim.Time // engine time of the first sample ever taken
	values         []int64
	next           int
	wrapped        bool
	dropped        int64
}

// Values returns the held samples in chronological order.
func (s *Series) Values() []int64 {
	if !s.wrapped {
		out := make([]int64, len(s.values))
		copy(out, s.values)
		return out
	}
	out := make([]int64, 0, len(s.values))
	out = append(out, s.values[s.next:]...)
	out = append(out, s.values[:s.next]...)
	return out
}

// Dropped reports how many old samples were displaced by the ring.
func (s *Series) Dropped() int64 { return s.dropped }

// Start returns the engine time of the oldest retained sample.
func (s *Series) Start() sim.Time {
	return s.start + sim.Time(s.dropped)*s.Interval
}

func (s *Series) add(v int64, capacity int) {
	if len(s.values) < capacity {
		s.values = append(s.values, v)
		return
	}
	s.values[s.next] = v
	s.next = (s.next + 1) % capacity
	s.wrapped = true
	s.dropped++
}

// Prober samples every registry source on a fixed engine-driven cadence.
// Its tick only reads state, so enabling it never changes simulation
// results — it just adds observer events to the heap.
type Prober struct {
	eng      *sim.Engine
	reg      *Registry
	interval sim.Time
	capacity int
	series   []*Series // parallel to reg.sources at tick time
	last     []int64   // previous reading of each cumulative source
	ticker   *sim.Ticker
	ticks    int64
}

// NewProber builds a prober over reg. Nil reg (or eng) yields a nil
// prober whose methods no-op.
func NewProber(eng *sim.Engine, reg *Registry, opts *Options) *Prober {
	if eng == nil || reg == nil {
		return nil
	}
	return &Prober{eng: eng, reg: reg, interval: opts.Interval(), capacity: opts.Cap()}
}

// Start begins sampling; the first sample lands one interval from now.
func (p *Prober) Start() {
	if p == nil || p.ticker != nil {
		return
	}
	prev := p.eng.SetComponent(p.eng.Component("obs/prober"))
	p.ticker = p.eng.Every(p.interval, p.tick)
	p.eng.SetComponent(prev)
}

// Stop halts sampling.
func (p *Prober) Stop() {
	if p != nil {
		p.ticker.Stop()
	}
}

// tick reads every source. Sources registered after Start are picked up
// on their first subsequent tick (their series simply begins later).
func (p *Prober) tick() {
	now := p.eng.Now()
	for i, src := range p.reg.sources {
		if i == len(p.series) {
			s := &Series{
				Entity: src.entity, Metric: src.metric, Kind: src.kind,
				Interval: p.interval, start: now,
			}
			p.series = append(p.series, s)
			p.last = append(p.last, 0)
		}
		v := src.read()
		switch src.kind {
		case Cumulative:
			p.series[i].add(v-p.last[i], p.capacity)
			p.last[i] = v
		default:
			p.series[i].add(v, p.capacity)
		}
	}
	p.ticks++
}

// Ticks reports how many sampling rounds have run.
func (p *Prober) Ticks() int64 {
	if p == nil {
		return 0
	}
	return p.ticks
}

// Interval returns the sampling period.
func (p *Prober) Interval() sim.Time {
	if p == nil {
		return 0
	}
	return p.interval
}

// Series returns all collected series.
func (p *Prober) Series() []*Series {
	if p == nil {
		return nil
	}
	return p.series
}

// Find returns the series for entity/metric, or nil.
func (p *Prober) Find(entity, metric string) *Series {
	if p == nil {
		return nil
	}
	for _, s := range p.series {
		if s.Entity == entity && s.Metric == metric {
			return s
		}
	}
	return nil
}
