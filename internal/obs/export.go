package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"flexpass/internal/sim"
	"flexpass/internal/trace"
)

// SchemaVersion identifies the JSONL artifact layout. Bump on any
// incompatible change to the line structs below.
//
// v2 added the "fault" line type (applied fault-plan actions).
// v3 stamped the manifest with the full scenario identity the result
// lake keys on: the per-scheme options map, the fault-plan name and
// content hash, and the producing repo revision. v1/v2 artifacts stay
// readable — the new fields simply decode empty.
// v4 added the workload-plan identity (name + content hash) for runs
// driven by composable workload plans; older artifacts again decode
// with the fields empty.
const SchemaVersion = 4

// Manifest is the run's self-description: everything needed to
// re-run or interpret the artifact without the producing binary.
type Manifest struct {
	Schema     int     `json:"schema"`
	Seed       int64   `json:"seed"`
	Topology   string  `json:"topology"`
	Scheme     string  `json:"scheme"`
	Workload   string  `json:"workload,omitempty"`
	Load       float64 `json:"load,omitempty"`
	Deployment float64 `json:"deployment,omitempty"`
	WQ         float64 `json:"wq,omitempty"`
	DurationPs int64   `json:"duration_ps"`
	// Shards is the parallel-engine partition count the run executed
	// with; omitted (reads back 0) for single-engine runs and for v1–v3
	// artifacts written before sharding existed, both of which mean one
	// engine.
	Shards int `json:"shards,omitempty"`
	// SchemeOptions is the resolved per-scheme option map the run used
	// (typed scenario knobs already folded in) — part of the scenario
	// identity, unlike the free-form Config below.
	SchemeOptions map[string]string `json:"scheme_options,omitempty"`
	// FaultPlan / FaultPlanHash identify the scripted fault timeline, if
	// any: the plan's display name and faults.Plan.Hash() content hash.
	FaultPlan     string `json:"fault_plan,omitempty"`
	FaultPlanHash string `json:"fault_plan_hash,omitempty"`
	// WorkloadPlan / WorkloadPlanHash identify the composable workload
	// plan, if the run was driven by one: the plan's display name and
	// workload.Plan.Hash() content hash (rename-invariant, trace sources
	// hashed by content). Runs on the parameter workload leave both
	// empty and keep identifying themselves via Workload alone.
	WorkloadPlan     string `json:"workload_plan,omitempty"`
	WorkloadPlanHash string `json:"workload_plan_hash,omitempty"`
	// Revision is the producing repo revision (best-effort VCS stamp).
	Revision string `json:"revision,omitempty"`
	// Config holds free-form knob values not covered by the typed fields.
	Config map[string]string `json:"config,omitempty"`
	// Perf self-report: wall-clock runtime, events dispatched, rate.
	WallMS       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Profile is the engine self-profiler's per-component attribution
	// (when the run enabled it). Absent on unprofiled runs, so v3
	// artifacts stay byte-compatible.
	Profile []ComponentProfile `json:"profile,omitempty"`
	// ViolationsDropped counts auditor violations discarded over the
	// forensics retention cap. The artifact's forensics lines are the
	// kept violations; a nonzero value here marks them as a truncated
	// sample, which downstream consumers (the lake's violations_dropped
	// column, chaos oracles) must treat as "at least". Absent (0) on
	// clean or non-forensic runs, so older artifacts decode unchanged.
	ViolationsDropped int64 `json:"violations_dropped,omitempty"`
}

// ComponentProfile is one engine component's dispatch accounting: how
// many events it dispatched, how much wall time they took, the single
// worst dispatch, and a power-of-two latency histogram in nanoseconds.
type ComponentProfile struct {
	Component string  `json:"component"`
	Events    uint64  `json:"events"`
	WallNs    int64   `json:"wall_ns"`
	MaxNs     int64   `json:"max_ns"`
	Le        []int64 `json:"le,omitempty"`     // exclusive ns upper bound per bucket
	Counts    []int64 `json:"counts,omitempty"` // dispatches per bucket
}

// SeriesData is one exported time series.
type SeriesData struct {
	Entity     string  `json:"entity"`
	Metric     string  `json:"metric"`
	Kind       string  `json:"kind"` // "delta" or "instant"
	IntervalPs int64   `json:"interval_ps"`
	StartPs    int64   `json:"start_ps"` // time of the first retained sample
	Dropped    int64   `json:"dropped,omitempty"`
	Values     []int64 `json:"values"`
}

// CounterData is one source's closing value.
type CounterData struct {
	Entity string `json:"entity"`
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Value  int64  `json:"value"`
}

// HistData is one histogram's final bucket counts. Buckets are
// power-of-two upper bounds; zero-count buckets are elided.
type HistData struct {
	Entity string  `json:"entity"`
	Metric string  `json:"metric"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Le     []int64 `json:"le"`     // exclusive upper bound per bucket
	Counts []int64 `json:"counts"` // observations per bucket
}

// TraceData is one transport trace event.
type TraceData struct {
	AtPs int64  `json:"at_ps"`
	Kind string `json:"kind"`
	Flow uint64 `json:"flow"`
	Seq  int64  `json:"seq"`
	Note string `json:"note,omitempty"`
}

// FaultData is one applied fault-plan action: what the plan did to which
// link, and when. Recovery analysis reads these back to locate the fault
// window without re-parsing the plan.
type FaultData struct {
	AtPs int64  `json:"at_ps"`
	Kind string `json:"kind"` // fault event kind, e.g. "link-down", "burst-loss"
	Link string `json:"link"` // resolved port name the action was applied to
	// Value is the kind-specific magnitude: rate fraction for
	// "rate-degrade", loss probability for "burst-loss"/"credit-loss",
	// 0 for up/down/restore actions.
	Value float64 `json:"value,omitempty"`
}

// Run is a complete run artifact: one manifest plus every collected
// series, closing counter, histogram, trace event, forensics line
// (auditor violations and flow timelines), and applied fault action.
type Run struct {
	Manifest  Manifest
	Series    []SeriesData
	Counters  []CounterData
	Hists     []HistData
	Trace     []TraceData
	Forensics []ForensicsData
	Faults    []FaultData
}

// Collect assembles a run artifact from the registry's closing values
// and the prober's series (either may be nil).
func Collect(reg *Registry, p *Prober, m Manifest) *Run {
	m.Schema = SchemaVersion
	r := &Run{Manifest: m}
	for _, s := range p.Series() {
		r.Series = append(r.Series, SeriesData{
			Entity: s.Entity, Metric: s.Metric, Kind: s.Kind.String(),
			IntervalPs: int64(s.Interval), StartPs: int64(s.Start()),
			Dropped: s.Dropped(), Values: s.Values(),
		})
	}
	for _, c := range reg.Final() {
		r.Counters = append(r.Counters, CounterData{
			Entity: c.Entity, Metric: c.Metric, Kind: c.Kind.String(), Value: c.Value,
		})
	}
	if reg != nil {
		for _, h := range reg.hists {
			hd := HistData{Entity: h.entity, Metric: h.metric, Count: h.n, Sum: h.sum}
			for i, c := range h.counts {
				if c == 0 {
					continue
				}
				hd.Le = append(hd.Le, bucketLe(i))
				hd.Counts = append(hd.Counts, c)
			}
			r.Hists = append(r.Hists, hd)
		}
	}
	return r
}

// AttachTrace appends the ring's events to the artifact.
func (r *Run) AttachTrace(ring *trace.Ring) {
	for _, ev := range ring.Events() {
		r.Trace = append(r.Trace, TraceData{
			AtPs: int64(ev.At), Kind: ev.Kind.String(),
			Flow: ev.Flow, Seq: ev.Seq, Note: ev.Note,
		})
	}
}

// FindSeries returns the series for entity/metric, or nil.
func (r *Run) FindSeries(entity, metric string) *SeriesData {
	for i := range r.Series {
		if r.Series[i].Entity == entity && r.Series[i].Metric == metric {
			return &r.Series[i]
		}
	}
	return nil
}

// SeriesMatching returns every series whose metric equals metric.
func (r *Run) SeriesMatching(metric string) []SeriesData {
	var out []SeriesData
	for _, s := range r.Series {
		if s.Metric == metric {
			out = append(out, s)
		}
	}
	return out
}

// jsonlLine is the on-disk envelope: a type tag plus exactly one of the
// payload pointers. Emitting a shared envelope keeps readers trivial —
// they switch on "type" and unmarshal once.
type jsonlLine struct {
	Type      string         `json:"type"`
	Manifest  *Manifest      `json:"manifest,omitempty"`
	Series    *SeriesData    `json:"series,omitempty"`
	Counter   *CounterData   `json:"counter,omitempty"`
	Hist      *HistData      `json:"hist,omitempty"`
	Trace     *TraceData     `json:"trace,omitempty"`
	Forensics *ForensicsData `json:"forensics,omitempty"`
	Fault     *FaultData     `json:"fault,omitempty"`
}

// WriteJSONL streams the artifact: first the manifest line, then one
// line per series, counter, histogram, and trace event.
func (r *Run) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlLine{Type: "manifest", Manifest: &r.Manifest}); err != nil {
		return err
	}
	for i := range r.Series {
		if err := enc.Encode(jsonlLine{Type: "series", Series: &r.Series[i]}); err != nil {
			return err
		}
	}
	for i := range r.Counters {
		if err := enc.Encode(jsonlLine{Type: "counter", Counter: &r.Counters[i]}); err != nil {
			return err
		}
	}
	for i := range r.Hists {
		if err := enc.Encode(jsonlLine{Type: "hist", Hist: &r.Hists[i]}); err != nil {
			return err
		}
	}
	for i := range r.Trace {
		if err := enc.Encode(jsonlLine{Type: "trace", Trace: &r.Trace[i]}); err != nil {
			return err
		}
	}
	for i := range r.Forensics {
		if err := enc.Encode(jsonlLine{Type: "forensics", Forensics: &r.Forensics[i]}); err != nil {
			return err
		}
	}
	for i := range r.Faults {
		if err := enc.Encode(jsonlLine{Type: "fault", Fault: &r.Faults[i]}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteJSONLFile writes the artifact to path.
func (r *Run) WriteJSONLFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CorruptArtifactError reports a damaged JSONL artifact — a truncated
// tail, a garbled line, or an unknown line type. ReadJSONL returns it
// alongside whatever it could salvage, so callers can distinguish "the
// run crashed mid-write but the prefix is usable" from a clean read.
type CorruptArtifactError struct {
	Line int   // 1-based line number of the first damage
	Err  error // underlying parse / scan failure
}

func (e *CorruptArtifactError) Error() string {
	return fmt.Sprintf("obs: corrupt artifact at line %d: %v", e.Line, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *CorruptArtifactError) Unwrap() error { return e.Err }

// ReadJSONL parses an artifact written by WriteJSONL. Damaged input —
// truncated mid-line, a corrupt line, or a line of unknown type — does
// not fail the whole read: parsing stops at the first bad line and the
// salvaged prefix is returned together with a *CorruptArtifactError. A
// nil error means the artifact was read cleanly and completely.
func ReadJSONL(rd io.Reader) (*Run, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	r := &Run{}
	sawManifest := false
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var l jsonlLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return r, &CorruptArtifactError{Line: line, Err: err}
		}
		switch l.Type {
		case "manifest":
			if l.Manifest == nil {
				return r, &CorruptArtifactError{Line: line, Err: fmt.Errorf("manifest line without payload")}
			}
			r.Manifest = *l.Manifest
			sawManifest = true
		case "series":
			if l.Series != nil {
				r.Series = append(r.Series, *l.Series)
			}
		case "counter":
			if l.Counter != nil {
				r.Counters = append(r.Counters, *l.Counter)
			}
		case "hist":
			if l.Hist != nil {
				r.Hists = append(r.Hists, *l.Hist)
			}
		case "trace":
			if l.Trace != nil {
				r.Trace = append(r.Trace, *l.Trace)
			}
		case "forensics":
			if l.Forensics != nil {
				r.Forensics = append(r.Forensics, *l.Forensics)
			}
		case "fault":
			if l.Fault != nil {
				r.Faults = append(r.Faults, *l.Fault)
			}
		default:
			return r, &CorruptArtifactError{Line: line, Err: fmt.Errorf("unknown line type %q", l.Type)}
		}
	}
	if err := sc.Err(); err != nil {
		return r, &CorruptArtifactError{Line: line + 1, Err: err}
	}
	if !sawManifest {
		return nil, fmt.Errorf("obs: artifact has no manifest line")
	}
	return r, nil
}

// ReadJSONLFile parses the artifact at path.
func ReadJSONLFile(path string) (*Run, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// WriteCSV emits the series in long form (entity,metric,kind,time_us,
// value), the flat-file cousin of the JSONL artifact for spreadsheet or
// flexplot consumption.
func (r *Run) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "entity,metric,kind,time_us,value"); err != nil {
		return err
	}
	for _, s := range r.Series {
		for i, v := range s.Values {
			t := sim.Time(s.StartPs + int64(i)*s.IntervalPs)
			if _, err := fmt.Fprintf(bw, "%s,%s,%s,%.3f,%d\n",
				s.Entity, s.Metric, s.Kind, t.Micros(), v); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
