package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// function that stops profiling and closes the file. It deduplicates the
// create/start/stop/close dance every binary used to hand-roll; call the
// returned stop exactly once (a deferred call is the usual shape).
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		return f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path, forcing a GC first so
// the profile reflects live objects rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
