package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/trace"
)

func TestNilRegistryNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("e", "m")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter must stay zero")
	}
	r.CounterFunc("e", "m2", func() int64 { return 1 })
	r.Gauge("e", "m3", func() int64 { return 2 })
	h := r.Histogram("e", "m4")
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	if r.Len() != 0 || r.Final() != nil {
		t.Fatal("nil registry must be empty")
	}
	if p := NewProber(sim.NewEngine(1), r, nil); p != nil {
		t.Fatal("prober over nil registry must be nil")
	}
	var p *Prober
	p.Start()
	p.Stop()
	if p.Ticks() != 0 || p.Series() != nil || p.Find("e", "m") != nil {
		t.Fatal("nil prober must no-op")
	}
}

func TestRegistryDedup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("port/x", "drops")
	b := r.Counter("port/x", "drops")
	if a != b {
		t.Fatal("Counter must be idempotent per entity/metric")
	}
	a.Add(3)
	if r.Len() != 1 {
		t.Fatalf("sources = %d, want 1", r.Len())
	}
	// Re-registering a func source replaces it in place.
	r.Gauge("q", "bytes", func() int64 { return 1 })
	r.Gauge("q", "bytes", func() int64 { return 2 })
	if r.Len() != 2 {
		t.Fatalf("sources = %d, want 2", r.Len())
	}
	fin := r.Final()
	if len(fin) != 2 {
		t.Fatalf("final = %d", len(fin))
	}
	// Final is sorted by entity then metric.
	if fin[0].Entity != "port/x" || fin[0].Value != 3 {
		t.Fatalf("final[0] = %+v", fin[0])
	}
	if fin[1].Entity != "q" || fin[1].Value != 2 {
		t.Fatalf("final[1] = %+v (gauge re-registration should replace)", fin[1])
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", "fct_us")
	if h2 := r.Histogram("t", "fct_us"); h2 != h {
		t.Fatal("Histogram must be idempotent")
	}
	for _, v := range []int64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.0); q != 0 {
		t.Fatalf("q0 = %d, want bucket 0", q)
	}
	if q := h.Quantile(1.0); q != 1024 {
		t.Fatalf("q1 = %d, want 1024 (1000 < 2^10)", q)
	}
	if q := h.Quantile(0.5); q != 4 {
		t.Fatalf("q50 = %d, want 4 (values 2,3 in bucket le=4)", q)
	}
}

func TestProberDeltasAndInstants(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	c := reg.Counter("port/a", "tx_bytes")
	var depth int64
	reg.Gauge("port/a/q0", "bytes", func() int64 { return depth })

	// Grow the counter by 100 per 10us, offset from the probe instants so
	// every 20us window holds exactly two adds regardless of tie-breaks.
	for i := 0; i < 10; i++ {
		eng.At(sim.Time(5+10*i)*sim.Microsecond, func() { c.Add(100); depth += 7 })
	}

	p := NewProber(eng, reg, &Options{ProbeInterval: 20 * sim.Microsecond})
	p.Start()
	eng.Run(100 * sim.Microsecond)

	if p.Ticks() != 5 {
		t.Fatalf("ticks = %d, want 5", p.Ticks())
	}
	d := p.Find("port/a", "tx_bytes")
	if d == nil || d.Kind != Cumulative {
		t.Fatalf("missing delta series: %+v", d)
	}
	for i, v := range d.Values() {
		if v != 200 {
			t.Fatalf("delta[%d] = %d, want 200", i, v)
		}
	}
	g := p.Find("port/a/q0", "bytes")
	if g == nil || g.Kind != Instant {
		t.Fatalf("missing instant series: %+v", g)
	}
	if got := g.Values(); got[0] != 14 || got[4] != 70 {
		t.Fatalf("instants = %v", got)
	}
	if g.Start() != 20*sim.Microsecond {
		t.Fatalf("start = %v", g.Start())
	}
}

func TestSeriesRingWrap(t *testing.T) {
	eng := sim.NewEngine(1)
	reg := NewRegistry()
	var v int64
	reg.Gauge("g", "v", func() int64 { v++; return v })
	p := NewProber(eng, reg, &Options{ProbeInterval: sim.Microsecond, SeriesCap: 4})
	p.Start()
	eng.Run(10 * sim.Microsecond)

	s := p.Find("g", "v")
	if got := s.Values(); !reflect.DeepEqual(got, []int64{7, 8, 9, 10}) {
		t.Fatalf("values = %v", got)
	}
	if s.Dropped() != 6 {
		t.Fatalf("dropped = %d", s.Dropped())
	}
	// First retained sample was taken at tick 7 (7us).
	if s.Start() != 7*sim.Microsecond {
		t.Fatalf("start = %v", s.Start())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	eng := sim.NewEngine(42)
	reg := NewRegistry()
	c := reg.Counter("transport/flexpass", "credits_wasted")
	reg.Gauge("switch/s0", "shared_buffer_bytes", func() int64 { return 123 })
	h := reg.Histogram("transport/flexpass", "fct_us")
	h.Observe(50)
	h.Observe(900)
	ring := trace.NewRing(eng, 16)
	eng.Every(10*sim.Microsecond, func() { c.Add(3) })
	eng.At(25*sim.Microsecond, func() { ring.Add(trace.CreditWaste, 7, 2, "no data") })
	p := NewProber(eng, reg, &Options{ProbeInterval: 10 * sim.Microsecond})
	p.Start()
	eng.Run(50 * sim.Microsecond)

	run := Collect(reg, p, Manifest{
		Seed: 42, Topology: "single-switch hosts=3", Scheme: "flexpass",
		Workload: "websearch", Load: 0.6, Deployment: 0.5, WQ: 0.25,
		DurationPs: int64(50 * sim.Microsecond),
		Config:     map[string]string{"link_rate": "40Gbps"},
		WallMS:     1.5, Events: eng.Processed, EventsPerSec: 1e6,
	})
	run.AttachTrace(ring)

	if run.Manifest.Schema != SchemaVersion {
		t.Fatalf("schema = %d", run.Manifest.Schema)
	}
	if len(run.Series) != 2 || len(run.Counters) != 2 || len(run.Hists) != 1 || len(run.Trace) != 1 {
		t.Fatalf("shape: %d series %d counters %d hists %d trace",
			len(run.Series), len(run.Counters), len(run.Hists), len(run.Trace))
	}

	var buf bytes.Buffer
	if err := run.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"type":"manifest"`) {
		t.Fatalf("first line must be the manifest: %q", buf.String()[:40])
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, run) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, run)
	}

	// Spot-check semantic content survived.
	s := got.FindSeries("transport/flexpass", "credits_wasted")
	if s == nil || s.Kind != "delta" || len(s.Values) != 5 || s.Values[0] != 3 {
		t.Fatalf("credit series: %+v", s)
	}
	if got.Trace[0].Kind != "credit-waste" || got.Trace[0].AtPs != int64(25*sim.Microsecond) {
		t.Fatalf("trace: %+v", got.Trace[0])
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Fatal("empty artifact must fail (no manifest)")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"type":"wat"}`)); err == nil {
		t.Fatal("unknown line type must fail")
	}
	if _, err := ReadJSONL(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must fail")
	}
}

func TestWriteCSV(t *testing.T) {
	run := &Run{
		Series: []SeriesData{{
			Entity: "port/a", Metric: "tx_bytes", Kind: "delta",
			IntervalPs: int64(10 * sim.Microsecond),
			StartPs:    int64(10 * sim.Microsecond),
			Values:     []int64{100, 200},
		}},
	}
	var buf bytes.Buffer
	if err := run.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "entity,metric,kind,time_us,value\nport/a,tx_bytes,delta,10.000,100\nport/a,tx_bytes,delta,20.000,200\n"
	if buf.String() != want {
		t.Fatalf("csv:\n%s\nwant:\n%s", buf.String(), want)
	}
}
