package obs

// MergeRuns folds several per-shard run artifacts into one, under a
// caller-provided manifest. Sharded runs give each shard its own
// Registry and Prober (counters are plain int64s owned by one
// goroutine), collect each shard with Collect after the fabric drains,
// and merge here:
//
//   - Counters with the same (entity, metric, kind) are summed, keeping
//     first-seen order — so pass the shards in shard order and the merged
//     artifact is deterministic.
//   - Histograms with the same (entity, metric) sum their counts and
//     observation sums and merge their sparse bucket lists by bound.
//   - Series with the same (entity, metric, kind, interval, start) and
//     equal length are summed pointwise; any other series is appended
//     as-is (per-port series have disjoint entities across shards and
//     take this path).
//
// Trace, forensics, and fault lines are not merged here — callers attach
// those from their own merged sources (trace.Merge, the fault log).
func MergeRuns(m Manifest, runs ...*Run) *Run {
	m.Schema = SchemaVersion
	out := &Run{Manifest: m}
	type seriesKey struct {
		entity, metric, kind string
		intervalPs, startPs  int64
	}
	cIdx := map[CounterData]int{}
	hIdx := map[[2]string]int{}
	sIdx := map[seriesKey]int{}
	for _, r := range runs {
		if r == nil {
			continue
		}
		for _, c := range r.Counters {
			key := c
			key.Value = 0
			if j, ok := cIdx[key]; ok {
				out.Counters[j].Value += c.Value
				continue
			}
			cIdx[key] = len(out.Counters)
			out.Counters = append(out.Counters, c)
		}
		for _, h := range r.Hists {
			key := [2]string{h.Entity, h.Metric}
			if j, ok := hIdx[key]; ok {
				dst := &out.Hists[j]
				dst.Count += h.Count
				dst.Sum += h.Sum
				dst.Le, dst.Counts = mergeSparse(dst.Le, dst.Counts, h.Le, h.Counts)
				continue
			}
			hIdx[key] = len(out.Hists)
			h.Le = append([]int64(nil), h.Le...)
			h.Counts = append([]int64(nil), h.Counts...)
			out.Hists = append(out.Hists, h)
		}
		for _, s := range r.Series {
			key := seriesKey{s.Entity, s.Metric, s.Kind, s.IntervalPs, s.StartPs}
			if j, ok := sIdx[key]; ok && len(out.Series[j].Values) == len(s.Values) {
				dst := &out.Series[j]
				dst.Dropped += s.Dropped
				for i, v := range s.Values {
					dst.Values[i] += v
				}
				continue
			}
			if _, ok := sIdx[key]; !ok {
				sIdx[key] = len(out.Series)
			}
			s.Values = append([]int64(nil), s.Values...)
			out.Series = append(out.Series, s)
		}
	}
	return out
}

// mergeSparse merges two sparse (bound, count) lists sorted by ascending
// bound, summing counts on shared bounds.
func mergeSparse(le, counts, le2, counts2 []int64) ([]int64, []int64) {
	var mle, mcounts []int64
	i, j := 0, 0
	for i < len(le) || j < len(le2) {
		switch {
		case j >= len(le2) || (i < len(le) && le[i] < le2[j]):
			mle, mcounts = append(mle, le[i]), append(mcounts, counts[i])
			i++
		case i >= len(le) || le2[j] < le[i]:
			mle, mcounts = append(mle, le2[j]), append(mcounts, counts2[j])
			j++
		default:
			mle, mcounts = append(mle, le[i]), append(mcounts, counts[i]+counts2[j])
			i, j = i+1, j+1
		}
	}
	return mle, mcounts
}
