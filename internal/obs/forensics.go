package obs

// Forensics line payloads for the JSONL run artifact. The forensics
// package (which owns the live recorder and auditors) converts its
// in-memory records into these plain structs; obs deliberately knows
// nothing about netem or transport types, so enums arrive as strings.

// ForensicsData is one "forensics" artifact line: exactly one of the
// payload pointers is set.
type ForensicsData struct {
	Violation *ViolationData `json:"violation,omitempty"`
	Timeline  *TimelineData  `json:"timeline,omitempty"`
}

// ViolationData is one invariant-auditor finding.
type ViolationData struct {
	AtPs    int64  `json:"at_ps"`
	Auditor string `json:"auditor"`
	Entity  string `json:"entity,omitempty"`
	Flow    uint64 `json:"flow,omitempty"`
	Detail  string `json:"detail"`
}

// TimelineData is one flow's assembled forensic timeline: hop-by-hop
// packet events plus transport lifecycle events and a per-port
// queueing-delay breakdown.
type TimelineData struct {
	Flow        uint64         `json:"flow"`
	Transport   string         `json:"transport"`
	Size        int64          `json:"size"`
	StartPs     int64          `json:"start_ps"`
	FctPs       int64          `json:"fct_ps"` // -1 when the flow never completed
	Slowdown    float64        `json:"slowdown,omitempty"`
	Hops        []HopData      `json:"hops,omitempty"`
	HopsDropped int64          `json:"hops_dropped,omitempty"` // records lost to the per-flow cap
	Delays      []HopDelayData `json:"delays,omitempty"`
	Events      []TraceData    `json:"events,omitempty"`
}

// HopData is one packet event at one port.
type HopData struct {
	AtPs       int64  `json:"at_ps"`
	Port       string `json:"port"`
	Queue      int    `json:"queue"` // -1 for fault drops (pre-classification)
	Event      string `json:"event"` // "enq", "deq", "drop"
	Kind       string `json:"kind"`  // packet kind ("pro-data", "credit", ...)
	Seq        uint32 `json:"seq"`
	Color      string `json:"color,omitempty"`
	WaitPs     int64  `json:"wait_ps,omitempty"` // dequeue: time spent queued here
	TxPs       int64  `json:"tx_ps,omitempty"`   // dequeue: serialization time
	QueueBytes int64  `json:"queue_bytes,omitempty"`
	Reason     string `json:"reason,omitempty"` // drop reason
}

// HopDelayData aggregates a flow's queueing behaviour at one port.
type HopDelayData struct {
	Port        string `json:"port"`
	Dequeues    int64  `json:"dequeues"`
	Drops       int64  `json:"drops"`
	TotalWaitPs int64  `json:"total_wait_ps"`
	MaxWaitPs   int64  `json:"max_wait_ps"`
}

// Violations returns the artifact's auditor findings.
func (r *Run) Violations() []ViolationData {
	var out []ViolationData
	for _, f := range r.Forensics {
		if f.Violation != nil {
			out = append(out, *f.Violation)
		}
	}
	return out
}

// Timelines returns the artifact's flow timelines.
func (r *Run) Timelines() []TimelineData {
	var out []TimelineData
	for _, f := range r.Forensics {
		if f.Timeline != nil {
			out = append(out, *f.Timeline)
		}
	}
	return out
}

// FindTimeline returns the timeline for a flow, or nil.
func (r *Run) FindTimeline(flow uint64) *TimelineData {
	for _, f := range r.Forensics {
		if f.Timeline != nil && f.Timeline.Flow == flow {
			return f.Timeline
		}
	}
	return nil
}
