// Package obs is the simulator's unified telemetry plane: a central
// registry of named counters, gauges, and histograms keyed by entity
// (switch/port/queue/flow/transport), a periodic prober that turns them
// into ring-buffered time series, and a JSONL/CSV exporter that makes
// every run a self-describing artifact.
//
// The whole package follows the nil-no-op convention used by trace.Ring:
// a nil *Registry (and the nil *Counter / *Histogram it hands out)
// disables every method, so instrumented code keeps unconditional calls
// on hot paths and pays nothing when telemetry is off.
package obs

import (
	"math/bits"
	"sort"
)

// SampleKind says how the prober interprets a source's readings.
type SampleKind uint8

const (
	// Cumulative sources are monotonically increasing totals; the prober
	// records per-interval deltas (e.g. tx bytes -> throughput).
	Cumulative SampleKind = iota
	// Instant sources are point-in-time values recorded as-is
	// (e.g. queue occupancy, shared-buffer usage).
	Instant
)

// String names the kind using the wire vocabulary of the JSONL schema.
func (k SampleKind) String() string {
	if k == Cumulative {
		return "delta"
	}
	return "instant"
}

// source is one sampleable metric: an entity/metric name pair plus a
// lazy reader of its current value.
type source struct {
	entity, metric string
	kind           SampleKind
	read           func() int64
}

// Registry holds every registered metric for one run. A nil Registry is
// valid and registers nothing: Counter returns a nil *Counter whose
// methods no-op, and CounterFunc/Gauge simply drop the closure.
type Registry struct {
	sources  []source
	hists    []*Histogram
	byKey    map[string]int      // entity+"\x00"+metric -> index in sources
	counters map[string]*Counter // owned counters, for idempotent re-registration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]int), counters: make(map[string]*Counter)}
}

// Counter registers (or returns the existing) owned counter for
// entity/metric. Owned counters are incremented by instrumented code via
// Add/Inc and sampled by the prober as per-interval deltas.
func (r *Registry) Counter(entity, metric string) *Counter {
	if r == nil {
		return nil
	}
	key := entity + "\x00" + metric
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{entity: entity, metric: metric}
	r.counters[key] = c
	r.register(entity, metric, Cumulative, c.Value)
	return c
}

// CounterFunc registers a cumulative metric read lazily from fn — the
// bridge for pre-existing *Stats structs that already keep totals
// (e.g. PortStats.TxBytes). The prober records per-interval deltas.
func (r *Registry) CounterFunc(entity, metric string, fn func() int64) {
	r.register(entity, metric, Cumulative, fn)
}

// Gauge registers an instantaneous metric read lazily from fn
// (e.g. current queue bytes). The prober records raw readings.
func (r *Registry) Gauge(entity, metric string, fn func() int64) {
	r.register(entity, metric, Instant, fn)
}

func (r *Registry) register(entity, metric string, kind SampleKind, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	key := entity + "\x00" + metric
	if i, ok := r.byKey[key]; ok {
		r.sources[i] = source{entity, metric, kind, fn}
		return
	}
	r.byKey[key] = len(r.sources)
	r.sources = append(r.sources, source{entity, metric, kind, fn})
}

// Histogram registers (or returns the existing) histogram for
// entity/metric. Histograms are exported with final counts only; the
// prober does not sample them.
func (r *Registry) Histogram(entity, metric string) *Histogram {
	if r == nil {
		return nil
	}
	for _, h := range r.hists {
		if h.entity == entity && h.metric == metric {
			return h
		}
	}
	h := &Histogram{entity: entity, metric: metric}
	r.hists = append(r.hists, h)
	return h
}

// Len reports how many counter/gauge sources are registered.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	return len(r.sources)
}

// Final reads every source once and returns the closing values, sorted
// by entity then metric for stable export.
func (r *Registry) Final() []Reading {
	if r == nil {
		return nil
	}
	out := make([]Reading, 0, len(r.sources))
	for _, s := range r.sources {
		out = append(out, Reading{s.entity, s.metric, s.kind, s.read()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entity != out[j].Entity {
			return out[i].Entity < out[j].Entity
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Reading is one source's closing value.
type Reading struct {
	Entity, Metric string
	Kind           SampleKind
	Value          int64
}

// Counter is a monotonically increasing count owned by instrumented
// code. A nil *Counter no-ops, so hot paths increment unconditionally.
type Counter struct {
	entity, metric string
	v              int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram records a value distribution in power-of-two buckets:
// bucket i counts observations v with 2^(i-1) <= v < 2^i (bucket 0
// holds v <= 0 and v == 1 lands in bucket 1). Good enough for
// order-of-magnitude latency/size profiles at near-zero cost.
type Histogram struct {
	entity, metric string
	counts         [64]int64
	n, sum         int64
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	if b >= len(h.counts) {
		b = len(h.counts) - 1
	}
	h.counts[b]++
	h.n++
	h.sum += v
}

// Count reports how many values were observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum reports the total of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns an upper bound (the bucket's exclusive limit 2^i)
// for the p-quantile of the observed values, or 0 if empty.
func (h *Histogram) Quantile(p float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := int64(p * float64(h.n))
	if rank >= h.n {
		rank = h.n - 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			if i == 0 {
				return 0
			}
			return bucketLe(i)
		}
	}
	return bucketLe(len(h.counts) - 1)
}

// bucketLe is bucket i's exclusive upper bound, saturating at MaxInt64
// for the overflow bucket.
func bucketLe(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}
