package obs

import (
	"runtime/debug"
	"sync"
)

// RepoRevision returns the VCS revision the running binary was built
// from, with a "+dirty" suffix when the working tree had local edits,
// or "" when no build info is stamped (e.g. under `go test`). Computed
// once; the manifest records it so every lake row names its producer.
func RepoRevision() string {
	revOnce.Do(func() {
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "+dirty"
				}
			}
		}
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev != "" {
			revCached = rev + dirty
		}
	})
	return revCached
}

var (
	revOnce   sync.Once
	revCached string
)
