package obs_test

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flexpass/internal/lake"
	"flexpass/internal/obs"
)

// FuzzReadJSONL drives arbitrary bytes through the artifact reader and
// the lake's ingest path. The contract under fuzz: neither may panic,
// and every read failure is typed — a *CorruptArtifactError carrying
// the salvaged prefix, or the no-manifest error with a nil run. The
// lake must either ingest a row or return an error wrapping the same
// typed failure, never a mangled row from unrecovered damage.
func FuzzReadJSONL(f *testing.F) {
	// Corpus: a valid two-line artifact, truncation, mid-line damage,
	// a bare manifest, binary garbage, and pathological JSON shapes.
	valid := `{"type":"manifest","manifest":{"schema":4,"scheme":"flexpass","seed":1}}` + "\n" +
		`{"type":"counter","counter":{"entity":"transport/agent","metric":"stray_packets","value":3}}` + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(valid[:len(valid)/2]))
	f.Add([]byte(`{"type":"manifest","manifest":{"schema":4}}` + "\n" + `{"type":"counter","counter":` + "\n"))
	f.Add([]byte(`{"type":"manifest","manifest":{"schema":4}}`))
	f.Add([]byte("\x00\x01\x02garbage\xff"))
	f.Add([]byte(`{"type":"series","series":{}}` + "\n"))
	f.Add([]byte(`{"type":123}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"type":"manifest","manifest":{"schema":4}}` + "\n" + strings.Repeat("x", 4096) + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		run, err := obs.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			var cerr *obs.CorruptArtifactError
			switch {
			case errors.As(err, &cerr):
				if run == nil {
					t.Fatalf("CorruptArtifactError without a salvaged run: %v", err)
				}
			case run == nil:
				// The no-manifest (or scanner) failure: nothing salvaged.
			default:
				t.Fatalf("untyped read error with a non-nil run: %v", err)
			}
		}

		p := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if werr := os.WriteFile(p, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		ix := &lake.Index{}
		before := len(ix.Rows)
		ingestErr := ix.IngestFile(p)
		if ingestErr == nil && len(ix.Rows) != before+1 {
			t.Fatalf("ingest reported success but added %d rows", len(ix.Rows)-before)
		}
		// An artifact the reader fully accepts must ingest; one whose
		// damage precedes the manifest must not.
		if err == nil && ingestErr != nil {
			t.Fatalf("reader accepted the artifact but ingest failed: %v", ingestErr)
		}
		if run == nil && ingestErr == nil {
			t.Fatalf("reader salvaged nothing but ingest produced a row")
		}
	})
}
