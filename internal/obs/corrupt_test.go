package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func sampleRun() *Run {
	return &Run{
		Manifest: Manifest{Schema: SchemaVersion, Seed: 7, Scheme: "flexpass"},
		Series: []SeriesData{
			{Entity: "port/tor0/q1", Metric: "bytes", Kind: "instant", IntervalPs: 1000, Values: []int64{1, 2, 3}},
		},
		Counters: []CounterData{
			{Entity: "transport/flexpass", Metric: "flows_started", Kind: "counter", Value: 9},
		},
		Forensics: []ForensicsData{
			{Violation: &ViolationData{AtPs: 5, Auditor: "credit-conservation", Detail: "test"}},
		},
	}
}

// TestReadJSONLTruncatedMidLine models a run killed mid-write: the file
// ends in the middle of a JSON line. The reader must salvage every
// complete line before the damage and report it as a
// *CorruptArtifactError rather than failing the whole read.
func TestReadJSONLTruncatedMidLine(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	lines := strings.Split(strings.TrimRight(full, "\n"), "\n")
	// Cut the last line (the forensics record) in half.
	trunc := strings.Join(lines[:len(lines)-1], "\n") + "\n" + lines[len(lines)-1][:len(lines[len(lines)-1])/2]

	run, err := ReadJSONL(strings.NewReader(trunc))
	if err == nil {
		t.Fatal("truncated artifact read without error")
	}
	var corrupt *CorruptArtifactError
	if !errors.As(err, &corrupt) {
		t.Fatalf("error is %T, want *CorruptArtifactError", err)
	}
	if corrupt.Line != len(lines) {
		t.Fatalf("damage reported at line %d, want %d", corrupt.Line, len(lines))
	}
	if corrupt.Unwrap() == nil {
		t.Fatal("CorruptArtifactError has no underlying cause")
	}
	if run == nil {
		t.Fatal("no partial artifact salvaged")
	}
	if run.Manifest.Seed != 7 || len(run.Series) != 1 || len(run.Counters) != 1 {
		t.Fatalf("salvaged prefix incomplete: %+v", run)
	}
	if len(run.Forensics) != 0 {
		t.Fatal("the truncated line itself leaked into the artifact")
	}
}

// TestReadJSONLGarbledLine: a corrupt line mid-file stops the parse
// there but keeps everything before it.
func TestReadJSONLGarbledLine(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	lines[1] = `{"type":"series","series":` // garbled: unterminated JSON
	run, err := ReadJSONL(strings.NewReader(strings.Join(lines, "\n")))
	var corrupt *CorruptArtifactError
	if !errors.As(err, &corrupt) || corrupt.Line != 2 {
		t.Fatalf("err = %v, want corrupt-artifact at line 2", err)
	}
	if run == nil || run.Manifest.Seed != 7 {
		t.Fatal("manifest before the damage not salvaged")
	}
	if len(run.Series) != 0 || len(run.Counters) != 0 {
		t.Fatal("lines after the damage were parsed")
	}
}

// TestReadJSONLUnknownType: a line of unknown type (e.g. from a newer
// schema) is damage, not silently droppable data.
func TestReadJSONLUnknownType(t *testing.T) {
	in := `{"type":"manifest","manifest":{"schema":1,"seed":3}}
{"type":"hologram","entity":"x"}
`
	run, err := ReadJSONL(strings.NewReader(in))
	var corrupt *CorruptArtifactError
	if !errors.As(err, &corrupt) || corrupt.Line != 2 {
		t.Fatalf("err = %v, want corrupt-artifact at line 2", err)
	}
	if run == nil || run.Manifest.Seed != 3 {
		t.Fatal("prefix not salvaged")
	}
}

// TestReadJSONLNoManifest: an empty or manifest-less stream is not an
// artifact at all — no salvage, plain error.
func TestReadJSONLNoManifest(t *testing.T) {
	run, err := ReadJSONL(strings.NewReader(""))
	if err == nil || run != nil {
		t.Fatalf("empty input: run=%v err=%v, want nil+error", run, err)
	}
	var corrupt *CorruptArtifactError
	if errors.As(err, &corrupt) {
		t.Fatal("missing manifest mis-reported as corruption")
	}
}

// TestReadJSONLCleanRoundTripWithForensics: the forensics line type
// survives a clean write/read cycle.
func TestReadJSONLCleanRoundTripWithForensics(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRun().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	run, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Forensics) != 1 || run.Violations()[0].Auditor != "credit-conservation" {
		t.Fatalf("forensics line did not round-trip: %+v", run.Forensics)
	}
}
