package transport

import (
	"fmt"
	"sort"
	"sync"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/trace"
	"flexpass/internal/units"
)

// SchemeEnv carries everything a scheme factory may need to compose a
// transport for one run: the engine, the fabric-wide knobs, and the
// observability planes. One env is shared by every scheme built for the
// same run, so counter sets are memoized per label (naive and oWF both
// bill to "expresspass"; the forensics credit audit sums over all sets).
type SchemeEnv struct {
	Eng *sim.Engine
	// LinkRate is the fabric line rate; credit/grant pacing derives its
	// ceiling from it.
	LinkRate units.Rate
	// WQ is w_q, the FlexPass queue weight (legacy-share knob).
	WQ float64
	// OracleWQ is the measured upgraded-traffic byte share, used by the
	// oWF scheme's queue weights and credit rate. Zero means unknown
	// (factories fall back to 0.5).
	OracleWQ float64
	// Spec carries the queue-threshold overrides the run's port profiles
	// are built from (WQ already folded in by the caller).
	Spec topo.Spec

	// Registry is the run's stats registry (nil = telemetry off; counter
	// sets become zero values whose increments no-op). Trace is the
	// shared transport event ring (nil = no tracing).
	Registry *obs.Registry
	Trace    *trace.Ring

	// Options carries per-scheme parameters as data ("reactive",
	// "disable_proretx", ...). See the Opt* keys in names.go.
	Options map[string]string

	mu       sync.Mutex
	counters map[string]Counters
	labels   []string
}

// Option returns the named scheme option, or "" when unset.
func (e *SchemeEnv) Option(key string) string { return e.Options[key] }

// BoolOption reports whether the named option is set to a truthy value.
func (e *SchemeEnv) BoolOption(key string) bool {
	switch e.Options[key] {
	case "", "0", "false", "no":
		return false
	}
	return true
}

// Counters returns the memoized counter set for a transport label,
// creating it in the registry on first use. With a nil Registry the set
// is the zero value and every increment no-ops.
func (e *SchemeEnv) Counters(label string) Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.counters[label]; ok {
		return c
	}
	c := NewCounters(e.Registry, label)
	if e.counters == nil {
		e.counters = make(map[string]Counters)
	}
	e.counters[label] = c
	e.labels = append(e.labels, label)
	return c
}

// EachCounters visits every counter set created through this env in
// creation order (the forensics credit-conservation audit sums issued and
// consumed credits across all of them).
func (e *SchemeEnv) EachCounters(f func(label string, c Counters)) {
	e.mu.Lock()
	labels := append([]string(nil), e.labels...)
	e.mu.Unlock()
	for _, l := range labels {
		e.mu.Lock()
		c := e.counters[l]
		e.mu.Unlock()
		f(l, c)
	}
}

// Scheme is one composed transport configuration, built by a registered
// factory for a single run: it names the queue profile the fabric must be
// built with and starts flows on its transport.
type Scheme interface {
	// Profile returns the switch queue layout this scheme deploys.
	Profile() topo.PortProfile
	// Start labels fl (Transport, Legacy) and begins it on this scheme's
	// transport. The flow's agents must belong to the env's run.
	Start(fl *Flow)
}

// SplitScheme is a scheme that can start a flow's two endpoints
// separately, for sharded runs where source and destination host live on
// different engines. The sender half runs on the source shard's scheme
// instance (whose env holds that shard's engine, registry, and trace
// ring) and is the only half that labels the flow; the receiver half
// runs on the destination shard's instance. For flows that stay inside
// one shard the harness keeps calling Start, which must behave exactly
// like StartSender followed by StartReceiver on one engine.
type SplitScheme interface {
	Scheme
	// StartSender labels fl and begins its send side.
	StartSender(fl *Flow)
	// StartReceiver wires fl's receive side only.
	StartReceiver(fl *Flow)
}

// SchemeFactory builds a scheme instance for one run.
type SchemeFactory func(env *SchemeEnv) Scheme

var schemeRegistry = struct {
	sync.Mutex
	factories map[string]SchemeFactory
}{factories: make(map[string]SchemeFactory)}

// RegisterScheme adds a scheme factory under name. Transports register
// themselves at wiring time (see internal/transport/schemes); registering
// the same name twice or an empty name panics — both are wiring bugs.
func RegisterScheme(name string, f SchemeFactory) {
	if name == "" || f == nil {
		panic("transport: RegisterScheme with empty name or nil factory")
	}
	schemeRegistry.Lock()
	defer schemeRegistry.Unlock()
	if _, dup := schemeRegistry.factories[name]; dup {
		panic(fmt.Sprintf("transport: scheme %q registered twice", name))
	}
	schemeRegistry.factories[name] = f
}

// NewScheme builds the named scheme for env. Unknown names return an
// error listing what is registered (mind blank-importing
// internal/transport/schemes to link the built-ins in).
func NewScheme(name string, env *SchemeEnv) (Scheme, error) {
	schemeRegistry.Lock()
	f, ok := schemeRegistry.factories[name]
	schemeRegistry.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown scheme %q (registered: %v)", name, SchemeNames())
	}
	return f(env), nil
}

// SchemeNames lists every registered scheme name, sorted.
func SchemeNames() []string {
	schemeRegistry.Lock()
	defer schemeRegistry.Unlock()
	names := make([]string, 0, len(schemeRegistry.factories))
	for n := range schemeRegistry.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
