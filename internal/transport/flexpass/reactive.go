package flexpass

import (
	"fmt"

	"flexpass/internal/transport/dctcp"
)

// The paper's §4.3 leaves "applying other reactive congestion control
// algorithms for the reactive sub-flow" as future work. This file
// provides that extension point: the reactive sub-flow's window logic is
// behind a small interface, with DCTCP (the paper's choice) and a
// Reno-style loss-based variant implemented. The loss-based variant is a
// natural fit for FlexPass because selective dropping already converts
// "no spare bandwidth" into reactive packet loss — no ECN needed.

// ReactiveCC names a reactive-sub-flow congestion control algorithm.
type ReactiveCC string

// Available reactive algorithms.
const (
	// ReactiveDCTCP is the paper's choice: ECN-driven window scaling.
	ReactiveDCTCP ReactiveCC = "dctcp"
	// ReactiveReno is loss-based AIMD: additive increase, halve on loss,
	// ECN marks ignored (the reactive packets are sent not-ECN-capable).
	ReactiveReno ReactiveCC = "reno"
)

// reactiveWindow abstracts the reactive sub-flow's congestion window.
type reactiveWindow interface {
	OnAck(cumAck, sndNxt int, ce bool)
	OnLoss(cumAck, sndNxt int)
	OnTimeout()
	Cwnd() float64
}

// newReactiveWindow builds the configured algorithm.
func newReactiveWindow(algo ReactiveCC, initCwnd float64) reactiveWindow {
	switch algo {
	case "", ReactiveDCTCP:
		return &dctcpWindow{dctcp.NewWindow(initCwnd)}
	case ReactiveReno:
		return &renoWindow{cwnd: initCwnd, ssthresh: 1 << 30}
	default:
		panic(fmt.Sprintf("flexpass: unknown reactive algorithm %q", algo))
	}
}

// ecnCapableFor reports whether reactive data should be ECT for the
// algorithm (loss-based Reno ignores marks, so its packets are non-ECT
// and simply ride the red-drop signal).
func ecnCapableFor(algo ReactiveCC) bool {
	return algo == "" || algo == ReactiveDCTCP
}

// dctcpWindow adapts dctcp.Window to the interface.
type dctcpWindow struct{ *dctcp.Window }

func (w *dctcpWindow) Cwnd() float64 { return w.Window.Cwnd }

// renoWindow is plain AIMD at packet granularity.
type renoWindow struct {
	cwnd       float64
	ssthresh   float64
	reduceEdge int
}

func (w *renoWindow) Cwnd() float64 { return w.cwnd }

func (w *renoWindow) OnAck(cumAck, sndNxt int, ce bool) {
	// Loss-based: CE is ignored by design.
	if w.cwnd < w.ssthresh {
		w.cwnd++
	} else {
		w.cwnd += 1 / w.cwnd
	}
}

func (w *renoWindow) OnLoss(cumAck, sndNxt int) {
	if cumAck < w.reduceEdge {
		return
	}
	w.ssthresh = w.cwnd / 2
	if w.ssthresh < 1 {
		w.ssthresh = 1
	}
	w.cwnd = w.ssthresh
	w.reduceEdge = sndNxt
}

func (w *renoWindow) OnTimeout() {
	w.ssthresh = w.cwnd / 2
	if w.ssthresh < 2 {
		w.ssthresh = 2
	}
	w.cwnd = 1
}
