// Package flexpass implements the paper's transport: a FlexPass flow is
// split into a credit-scheduled proactive sub-flow (ExpressPass credits at
// the w_q-scaled rate) and an opportunistic reactive sub-flow (DCTCP on
// red-colored, ECN-capable unscheduled packets), co-scheduled at the host
// by the per-packet state machine of Fig 4:
//
//	Pending → SentReactive → {ACKed, Lost, SentProactive}
//	Pending → SentProactive → {ACKed, Lost}
//	Lost → SentProactive (loss recovery uses only the proactive sub-flow)
//
// On each credit the sender transmits, in priority order: a Lost segment,
// a Pending segment, or — "proactive retransmission" — the oldest unacked
// segment sent reactively. The receiver reassembles by per-flow sequence
// number and discards duplicates.
package flexpass

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
)

// CreditSource abstracts the receiver-side credit allocator that drives
// the proactive sub-flow. The default is the ExpressPass pacer; §4.3
// names pHost-style token arbitration as an alternative for non-blocking
// fabrics (see phost.NewFlexSource). Any allocator's credits are still
// disciplined by the network's Q0 rate limiters.
type CreditSource interface {
	// Start begins issuing credits toward the sender.
	Start()
	// Stop halts credit issue (flow complete).
	Stop()
	// OnData reports a credit-scheduled data arrival and the credit
	// sequence number it echoes (for loss feedback).
	OnData(echo uint32)
}

// Config parameterizes a FlexPass connection.
type Config struct {
	ProClass netem.Class // queue class of proactive data (Q1)
	ReClass  netem.Class // queue class of reactive data (Q1; Q2 in the AltQ ablation)
	AckClass netem.Class // queue class of ACKs (Q1, FlexPass control)
	Pacer    core.PacerConfig

	// NewCreditSource, when non-nil, replaces the default ExpressPass
	// pacer with a custom allocator (§4.3 extensibility).
	NewCreditSource func(eng *sim.Engine, flow *transport.Flow) CreditSource

	InitCwnd float64  // reactive sub-flow initial window (segments)
	MinRTO   sim.Time // recovery timer (credit re-request)

	// RC3Split enables the §4.3 ablation: instead of one shared Pending
	// pool, the reactive sub-flow transmits from the end of the flow
	// backwards (RC3-style), overlapping with the proactive sub-flow in
	// the middle.
	RC3Split bool

	// DisableProRetx turns off "proactive retransmission" (§4.2) — the
	// third transmission priority that re-sends unacknowledged reactive
	// segments on spare credits. Ablation only: tail losses then wait
	// for the recovery timer, exactly the failure mode the paper's
	// design avoids.
	DisableProRetx bool

	// PreCreditOnly restricts the reactive sub-flow to the first window
	// (Aeolus-style, Hu et al. SIGCOMM 2020): unscheduled packets are
	// sent only in the pre-credit RTT, and the flow is credit-scheduled
	// afterwards. §7 contrasts FlexPass with exactly this design — the
	// reactive sub-flow working for the flow's whole lifetime is what
	// lets FlexPass soak up bandwidth legacy traffic leaves over.
	PreCreditOnly bool

	// Trace, when non-nil, records retransmission and timeout decisions.
	Trace *trace.Ring

	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters

	// Reactive selects the reactive sub-flow's congestion control
	// (default DCTCP; see reactive.go for the §4.3 extension point).
	Reactive ReactiveCC
}

// DefaultConfig returns the paper's FlexPass setup given the per-flow
// credit pacer configuration.
func DefaultConfig(p core.PacerConfig) Config {
	return Config{
		ProClass: netem.ClassFlex,
		ReClass:  netem.ClassFlex,
		AckClass: netem.ClassFlex,
		Pacer:    p,
		InitCwnd: 10,
		MinRTO:   4 * sim.Millisecond,
	}
}

// Flow-segment states (Fig 4).
const (
	stPending uint8 = iota
	stSentRe
	stSentPro
	stLost
	stAcked
)

// Sub-flow per-transmission states.
const (
	subSent uint8 = iota
	subAcked
	subLost
)

// Sender is the FlexPass send side.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	st          []uint8 // per flow segment
	segReSub    []int32 // flow segment → its reactive transmission (-1 none)
	lostQ       []int
	nextPending int // forward scan for Pending
	tailPending int // backward scan (RC3 mode)
	ackedCount  int

	// Reactive sub-flow (no retransmissions of its own).
	win           reactiveWindow
	reECT         bool    // reactive packets ECN-capable?
	reMap         []int32 // reactive subseq → flow seq
	reState       []uint8
	reTime        []sim.Time // send time per reactive transmission
	reOutstanding int
	reCum         int
	reSackHigh    int
	reDupAcks     int

	// Proactive sub-flow (credit-clocked).
	proMap      []int32
	proState    []uint8
	proTime     []sim.Time // send time per proactive transmission
	srtt        sim.Time   // smoothed RTT from ACK timestamp echoes
	proCum      int
	proSackHigh int
	proDupAcks  int
	reRetxScan  int // oldest unacked reactive transmission (for proactive retx)
	proTailScan int // oldest unacked proactive transmission (tail robustness)
	rackScan    int // time-ordered reactive loss-detection scan

	pumped   bool // first reactive window sent (PreCreditOnly)
	rec      *core.RecoveryTimer
	finished bool
}

// NewSender builds the send side; Begin starts both sub-flows.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	segs := flow.Segs()
	s := &Sender{
		cfg:         cfg,
		eng:         eng,
		flow:        flow,
		st:          make([]uint8, segs),
		segReSub:    make([]int32, segs),
		tailPending: segs - 1,
		win:         newReactiveWindow(cfg.Reactive, cfg.InitCwnd),
		reECT:       ecnCapableFor(cfg.Reactive),
	}
	for i := range s.segReSub {
		s.segReSub[i] = -1
	}
	s.rec = core.NewRecoveryTimer(eng, core.RecoveryConfig{
		BaseRTO:  func() sim.Time { return cfg.MinRTO },
		Expire:   s.onRecoveryTimeout,
		Idle:     func() bool { return s.finished },
		MaxShift: 4,
	})
	return s
}

// Begin issues the credit request and fires the reactive first window —
// the reactive sub-flow uses the first RTT that credits need to arrive.
func (s *Sender) Begin() {
	s.sendCreditRequest()
	s.pumpReactive()
	s.rec.Touch()
}

// Finished reports whether every segment is acknowledged.
func (s *Sender) Finished() bool { return s.finished }

// Cwnd exposes the reactive window for tests.
func (s *Sender) Cwnd() float64 { return s.win.Cwnd() }

// sendCreditRequest issues the flow-start request. Requests are FlexPass
// control packets (their own DSCP in §5) and travel in the control/data
// queue as green packets, not in the rate-limited credit queue, so an
// incast of flow starts cannot wipe them out.
func (s *Sender) sendCreditRequest() {
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindCreditReq,
		Class:  s.cfg.AckClass,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Size:   netem.CtrlSize,
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
}

// onRecoveryTimeout fires only when credits and ACKs both stopped for a
// full RTO (e.g. the credit request was lost before any data got through).
// It re-requests credits and requeues every unacked transmission for
// proactive recovery.
func (s *Sender) onRecoveryTimeout() {
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.rec.Bump()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.ackedCount), "recovery timer fired")
	s.sendCreditRequest()
	for sub := s.reCum; sub < len(s.reState); sub++ {
		if s.reState[sub] == subSent {
			s.reState[sub] = subLost
			s.reOutstanding--
			s.markSegLost(int(s.reMap[sub]))
		}
	}
	for sub := s.proCum; sub < len(s.proState); sub++ {
		if s.proState[sub] == subSent {
			s.proState[sub] = subLost
			seg := int(s.proMap[sub])
			if s.st[seg] == stSentPro {
				s.st[seg] = stLost
				s.lostQ = append(s.lostQ, seg)
			}
		}
	}
	s.win.OnTimeout()
	s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.reCum), "timeout cwnd=%.1f", s.win.Cwnd())
	s.pumpReactive()
	s.rec.Touch()
}

// rackDetect is time-based loss detection for the reactive sub-flow
// (RACK-style): a reactive transmission unacknowledged for ~2 RTTs is
// declared lost. Duplicate-ACK detection alone deadlocks when an entire
// burst drops (an incast first window leaves no survivors to generate
// dupACKs), which would leave the reactive window pinned shut until the
// proactive sub-flow drains the whole flow.
func (s *Sender) rackDetect() {
	if s.srtt == 0 {
		return
	}
	cutoff := s.eng.Now() - 2*s.srtt
	newLoss := false
	for s.rackScan < len(s.reState) && s.reTime[s.rackScan] <= cutoff {
		if s.reState[s.rackScan] == subSent {
			s.reState[s.rackScan] = subLost
			s.reOutstanding--
			s.markSegLost(int(s.reMap[s.rackScan]))
			newLoss = true
		}
		s.rackScan++
	}
	if newLoss {
		s.win.OnLoss(s.reCum, len(s.reMap))
		s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.reCum), "rack cwnd=%.1f", s.win.Cwnd())
	}
}

// markSegLost moves a flow segment to Lost unless it is already recovered
// or being recovered proactively.
func (s *Sender) markSegLost(seg int) {
	if s.st[seg] == stSentRe {
		s.st[seg] = stLost
		s.lostQ = append(s.lostQ, seg)
	}
}

// segAcked marks a flow segment delivered (from either sub-flow's ACK).
// A segment acknowledged through the proactive path releases its pending
// reactive transmission too: otherwise a reactive window whose packets
// all dropped (e.g. an incast first-RTT burst) would stay pinned shut for
// the rest of the flow even though recovery already happened.
func (s *Sender) segAcked(seg int) {
	if s.st[seg] == stAcked {
		return
	}
	s.st[seg] = stAcked
	s.ackedCount++
	if sub := s.segReSub[seg]; sub >= 0 && s.reState[sub] == subSent {
		s.reState[sub] = subAcked
		s.reOutstanding--
	}
	if s.ackedCount >= len(s.st) {
		s.finished = true
	}
}

// nextPendingSeg hands out the next never-transmitted segment for the
// reactive sub-flow (from the tail in RC3 mode).
func (s *Sender) nextPendingSeg() int {
	if s.cfg.RC3Split {
		for s.tailPending >= 0 && s.st[s.tailPending] != stPending {
			s.tailPending--
		}
		if s.tailPending < 0 {
			return -1
		}
		seg := s.tailPending
		s.tailPending--
		return seg
	}
	for s.nextPending < len(s.st) && s.st[s.nextPending] != stPending {
		s.nextPending++
	}
	if s.nextPending >= len(s.st) {
		return -1
	}
	seg := s.nextPending
	s.nextPending++
	return seg
}

// pumpReactive fills the reactive window with Pending segments.
func (s *Sender) pumpReactive() {
	if s.finished {
		return
	}
	if s.cfg.PreCreditOnly && s.pumped {
		return // Aeolus mode: unscheduled packets only in the first RTT
	}
	s.pumped = true
	for s.reOutstanding < int(s.win.Cwnd()) {
		seg := s.nextPendingSeg()
		if seg < 0 {
			return
		}
		sub := len(s.reMap)
		s.reMap = append(s.reMap, int32(seg))
		s.reState = append(s.reState, subSent)
		s.reTime = append(s.reTime, s.eng.Now())
		s.segReSub[seg] = int32(sub)
		s.reOutstanding++
		s.st[seg] = stSentRe
		host := s.flow.Src.Host
		pkt := host.NewPacket()
		*pkt = netem.Packet{
			Kind:       netem.KindReData,
			Class:      s.cfg.ReClass,
			Color:      netem.Red,
			ECNCapable: s.reECT,
			Dst:        s.flow.Dst.Host.NodeID(),
			Flow:       s.flow.ID,
			Seq:        uint32(seg),
			SubSeq:     uint32(sub),
			Size:       s.flow.SegWire(seg),
			SentAt:     s.eng.Now(),
		}
		host.Send(pkt)
	}
}

// pickProactive chooses what a fresh credit carries (§4.2 priority order).
func (s *Sender) pickProactive() (seg int, proRetx, retx bool) {
	// 1. Lost segments: loss recovery rides only the proactive sub-flow.
	for len(s.lostQ) > 0 {
		cand := s.lostQ[0]
		s.lostQ = s.lostQ[1:]
		if s.st[cand] == stLost {
			return cand, false, true
		}
	}
	// 2. Pending: new data.
	if !s.cfg.RC3Split {
		if seg := s.nextPendingSeg(); seg >= 0 {
			return seg, false, false
		}
	} else {
		// RC3 mode: proactive takes from the head.
		for s.nextPending < len(s.st) && s.st[s.nextPending] != stPending {
			s.nextPending++
		}
		if s.nextPending < len(s.st) {
			seg := s.nextPending
			s.nextPending++
			return seg, false, false
		}
	}
	// 3. Proactive retransmission: oldest unacked reactive transmission.
	// The scan pointer advances past each candidate it hands out, so every
	// transmission is proactively retransmitted at most once — the
	// retransmission itself is a new proactive transmission that later
	// scans cover, bounding redundancy instead of blasting the same
	// segment on every credit for a full RTT.
	// Transmissions are time-ordered, so the scan stops (without
	// advancing) at the first one whose ACK could still be in flight:
	// only transmissions older than ~1 RTT are eligible.
	if s.cfg.DisableProRetx {
		return -1, false, false
	}
	if s.srtt == 0 {
		return -1, false, false // no RTT estimate yet; recovery timer covers us
	}
	age := s.eng.Now() - s.srtt*5/4
	for s.reRetxScan < len(s.reMap) {
		sub := s.reRetxScan
		if s.reTime[sub] > age {
			break
		}
		s.reRetxScan++
		seg := int(s.reMap[sub])
		if s.reState[sub] == subSent && s.st[seg] == stSentRe {
			return seg, true, true
		}
	}
	// 4. Tail robustness beyond the paper's list: re-send the oldest
	// unacked proactive transmission so a lost final proactive packet
	// does not have to wait for the recovery timer.
	for s.proTailScan < len(s.proMap) {
		sub := s.proTailScan
		if s.proTime[sub] > age {
			break
		}
		s.proTailScan++
		seg := int(s.proMap[sub])
		if s.proState[sub] == subSent && s.st[seg] == stSentPro {
			return seg, false, true
		}
	}
	return -1, false, false
}

func (s *Sender) sendProactive(seg int, echo uint32, proRetx, retx bool) {
	sub := len(s.proMap)
	s.proMap = append(s.proMap, int32(seg))
	s.proState = append(s.proState, subSent)
	s.proTime = append(s.proTime, s.eng.Now())
	s.st[seg] = stSentPro
	if proRetx {
		s.flow.ProRetx++
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seg), "proactive retransmission")
	}
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindProData,
		Class:  s.cfg.ProClass,
		Color:  netem.Green,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Seq:    uint32(seg),
		SubSeq: uint32(sub),
		Echo:   echo,
		Size:   s.flow.SegWire(seg),
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
}

// Handle processes credits and per-sub-flow ACKs.
func (s *Sender) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCredit:
		if s.finished {
			return
		}
		s.flow.CreditsGranted++
		s.cfg.Stats.CreditsGranted.Inc()
		s.rackDetect()
		seg, proRetx, retx := s.pickProactive()
		if seg < 0 {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.ackedCount), "no data")
			return
		}
		s.sendProactive(seg, pkt.SubSeq, proRetx, retx)
		s.cfg.Trace.Add(trace.CreditUse, s.flow.ID, int64(seg), "")
		s.rec.Touch()
	case netem.KindAckRe:
		s.onReactiveAck(pkt)
	case netem.KindAckPro:
		s.onProactiveAck(pkt)
	}
}

func (s *Sender) updateRTT(pkt *netem.Packet) {
	s.rec.Reset()
	sample := s.eng.Now() - pkt.SentAt
	if s.srtt == 0 {
		s.srtt = sample
	} else {
		s.srtt = (7*s.srtt + sample) / 8
	}
}

func (s *Sender) onReactiveAck(pkt *netem.Packet) {
	if s.finished {
		return
	}
	s.updateRTT(pkt)
	s.rackDetect()
	cum := int(pkt.SubSeq)
	sack := int(pkt.Seq)
	if sack < len(s.reState) {
		if s.reState[sack] == subSent {
			s.reState[sack] = subAcked
			s.reOutstanding--
			s.segAcked(int(s.reMap[sack]))
		} else if s.reState[sack] == subLost {
			s.reState[sack] = subAcked
			s.segAcked(int(s.reMap[sack]))
		}
	}
	if sack > s.reSackHigh {
		s.reSackHigh = sack
	}
	if cum > s.reCum {
		for sub := s.reCum; sub < cum && sub < len(s.reState); sub++ {
			if s.reState[sub] == subSent {
				s.reState[sub] = subAcked
				s.reOutstanding--
				s.segAcked(int(s.reMap[sub]))
			}
		}
		s.reCum = cum
		s.reDupAcks = 0
	} else if sack >= s.reCum {
		s.reDupAcks++
	}
	s.win.OnAck(cum, len(s.reMap), pkt.CE)
	// Loss: mark Lost, update the window, slide the left edge (the
	// reactive sub-flow never retransmits; recovery is proactive).
	if s.reDupAcks >= 3 {
		edge := s.reSackHigh - 2
		newLoss := false
		for sub := s.reCum; sub < edge && sub < len(s.reState); sub++ {
			if s.reState[sub] == subSent {
				s.reState[sub] = subLost
				s.reOutstanding--
				s.markSegLost(int(s.reMap[sub]))
				newLoss = true
			}
		}
		if newLoss {
			s.win.OnLoss(cum, len(s.reMap))
			s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(cum), "dupack cwnd=%.1f", s.win.Cwnd())
		}
		// Slide the left edge past lost transmissions.
		for s.reCum < len(s.reState) && s.reState[s.reCum] != subSent {
			s.reCum++
		}
	}
	if s.finished {
		return
	}
	s.pumpReactive()
	s.rec.Touch()
}

func (s *Sender) onProactiveAck(pkt *netem.Packet) {
	if s.finished {
		return
	}
	s.updateRTT(pkt)
	s.rackDetect()
	cum := int(pkt.SubSeq)
	sack := int(pkt.Seq)
	if sack < len(s.proState) {
		if s.proState[sack] != subAcked {
			s.proState[sack] = subAcked
			s.segAcked(int(s.proMap[sack]))
		}
	}
	if sack > s.proSackHigh {
		s.proSackHigh = sack
	}
	if cum > s.proCum {
		for sub := s.proCum; sub < cum && sub < len(s.proState); sub++ {
			if s.proState[sub] != subAcked {
				s.proState[sub] = subAcked
				s.segAcked(int(s.proMap[sub]))
			}
		}
		s.proCum = cum
		s.proDupAcks = 0
	} else if sack >= s.proCum {
		s.proDupAcks++
	}
	// Non-congestion proactive losses (§4.3): detect via duplicate ACKs
	// and give the lost segment top priority on the next credit.
	if s.proDupAcks >= 3 {
		edge := s.proSackHigh - 2
		for sub := s.proCum; sub < edge && sub < len(s.proState); sub++ {
			if s.proState[sub] == subSent {
				s.proState[sub] = subLost
				seg := int(s.proMap[sub])
				if s.st[seg] == stSentPro {
					s.st[seg] = stLost
					s.lostQ = append(s.lostQ, seg)
				}
			}
		}
		for s.proCum < len(s.proState) && s.proState[s.proCum] != subSent {
			s.proCum++
		}
	}
	if s.finished {
		return
	}
	// Releasing cross-acked reactive transmissions may have opened the
	// reactive window.
	s.pumpReactive()
	s.rec.Touch()
}

// Receiver is the FlexPass receive side: per-sub-flow ACKs, reassembly by
// flow sequence number, duplicate discard, and the credit pacer.
type Receiver struct {
	cfg   Config
	eng   *sim.Engine
	flow  *transport.Flow
	pacer CreditSource

	got      []bool
	cum      int
	received int

	receivedB  int64 // distinct payload bytes received
	deliveredB int64 // in-order bytes delivered to the app

	reGot  []bool
	reCum  int
	proGot []bool
	proCum int

	started bool
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	var src CreditSource
	if cfg.NewCreditSource != nil {
		src = cfg.NewCreditSource(eng, flow)
	} else {
		src = core.NewPacer(eng, flow.Dst.Host, flow.Src.Host.NodeID(), flow.ID, cfg.Pacer)
	}
	return &Receiver{
		cfg:   cfg,
		eng:   eng,
		flow:  flow,
		pacer: src,
		got:   make([]bool, flow.Segs()),
	}
}

// Pacer exposes the credit source (the ExpressPass pacer by default).
func (r *Receiver) Pacer() CreditSource { return r.pacer }

// Handle processes packets of the flow.
func (r *Receiver) Handle(pkt *netem.Packet) {
	if !r.started && !r.flow.Completed {
		// Any first packet (request or reactive data) starts crediting.
		r.started = true
		r.pacer.Start()
	}
	switch pkt.Kind {
	case netem.KindCreditReq:
		// Crediting already started above.
	case netem.KindReData:
		r.reGot = core.Grow(r.reGot, int(pkt.SubSeq))
		if !r.reGot[pkt.SubSeq] {
			r.reGot[pkt.SubSeq] = true
			for r.reCum < len(r.reGot) && r.reGot[r.reCum] {
				r.reCum++
			}
		}
		r.absorb(pkt, false)
		core.SendAck(r.flow, netem.KindAckRe, r.cfg.AckClass, pkt, uint32(r.reCum), true)
		r.checkComplete()
	case netem.KindProData:
		r.pacer.OnData(pkt.Echo)
		r.proGot = core.Grow(r.proGot, int(pkt.SubSeq))
		if !r.proGot[pkt.SubSeq] {
			r.proGot[pkt.SubSeq] = true
			for r.proCum < len(r.proGot) && r.proGot[r.proCum] {
				r.proCum++
			}
		}
		r.absorb(pkt, true)
		core.SendAck(r.flow, netem.KindAckPro, r.cfg.AckClass, pkt, uint32(r.proCum), true)
		r.checkComplete()
	}
}

// absorb records a data packet in the flow-level reassembly buffer and
// tracks the reordering-buffer high-water mark.
func (r *Receiver) absorb(pkt *netem.Packet, proactive bool) {
	seq := int(pkt.Seq)
	if seq >= len(r.got) || r.got[seq] {
		r.flow.RedundantSegs++
		return
	}
	r.got[seq] = true
	r.received++
	payload := int64(r.flow.SegPayload(seq))
	r.receivedB += payload
	r.flow.RxBytes += payload
	r.cfg.Stats.RxBytes.Add(payload)
	if proactive {
		r.flow.RxBytesPro += payload
	} else {
		r.flow.RxBytesRe += payload
	}
	for r.cum < len(r.got) && r.got[r.cum] {
		r.deliveredB += int64(r.flow.SegPayload(r.cum))
		r.cum++
	}
	if buf := r.receivedB - r.deliveredB; buf > r.flow.MaxReorderB {
		r.flow.MaxReorderB = buf
	}
}

func (r *Receiver) checkComplete() {
	if r.received >= r.flow.Segs() && !r.flow.Completed {
		r.pacer.Stop()
		core.Complete(r.eng, r.flow, r.cfg.Stats, r.cfg.Trace)
	}
}

// Start wires a FlexPass sender/receiver pair and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	core.StartPair(flow, s, r, cfg.Stats, cfg.Trace, transport.SchemeFlexPass)
	s.Begin()
	return s, r
}

// StartSender wires only the send side (sharded runs start the two
// endpoints on their own shard engines) and begins the flow.
func StartSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := NewSender(eng, flow, cfg)
	core.StartSenderSide(flow, s, cfg.Stats, cfg.Trace, transport.SchemeFlexPass)
	s.Begin()
	return s
}

// StartReceiver wires only the receive side: the proactive credit source
// it owns lives on the destination shard with the pacer's RNG stream.
func StartReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	r := NewReceiver(eng, flow, cfg)
	core.StartReceiverSide(flow, r)
	return r
}
