package flexpass

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/transport/expresspass"
	"flexpass/internal/units"
)

const gig = units.Gbps

// flexFabric builds a single-switch fabric with the FlexPass queue layout.
func flexFabric(hosts int, rate units.Rate, spec topo.Spec) (*sim.Engine, *topo.Fabric, []*transport.Agent) {
	eng := sim.NewEngine(1)
	f := topo.SingleSwitch(eng, hosts, topo.Params{
		LinkRate:  rate,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.FlexPassProfile(spec),
	})
	agents := make([]*transport.Agent, hosts)
	for i := range agents {
		agents[i] = transport.NewAgent(eng, f.Net.Host(i))
	}
	return eng, f, agents
}

func flexCfg(rate units.Rate, wq float64) Config {
	return DefaultConfig(expresspass.DefaultPacerConfig(netem.CreditRateFor(rate, wq)))
}

func fpFlow(id uint64, src, dst *transport.Agent, size int64) *transport.Flow {
	return &transport.Flow{ID: id, Src: src, Dst: dst, Size: size, Transport: "flexpass"}
}

func TestSingleFlowFillsLinkWithBothSubflows(t *testing.T) {
	// Fig 7(a): alone on the link, the proactive sub-flow takes ~w_q of
	// capacity and the reactive sub-flow grabs the rest.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 1<<30)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(40 * sim.Millisecond)
	total := units.RateOf(fl.RxBytes, 40*sim.Millisecond)
	if total < 8*gig {
		t.Fatalf("total goodput %v, want >8Gbps", total)
	}
	proShare := float64(fl.RxBytesPro) / float64(fl.RxBytes)
	if proShare < 0.3 || proShare > 0.7 {
		t.Fatalf("proactive share %.3f, want ~0.5", proShare)
	}
	if fl.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", fl.Timeouts)
	}
}

func TestFlexPassSharesFairlyWithDCTCP(t *testing.T) {
	// Fig 9(b): FlexPass vs DCTCP ≈ 50/50, no starvation.
	eng, _, ag := flexFabric(3, 10*gig, topo.Spec{})
	fp := fpFlow(1, ag[0], ag[2], 1<<30)
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 30, Transport: "dctcp", Legacy: true}
	Start(eng, fp, flexCfg(10*gig, 0.5))
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	eng.Run(60 * sim.Millisecond)
	tot := fp.RxBytes + dc.RxBytes
	dcShare := float64(dc.RxBytes) / float64(tot)
	if dcShare < 0.35 || dcShare > 0.65 {
		t.Fatalf("DCTCP share %.3f, want ~0.5 (no starvation)", dcShare)
	}
	if units.RateOf(tot, 60*sim.Millisecond) < 7*gig {
		t.Fatalf("link underutilized: %v", units.RateOf(tot, 60*sim.Millisecond))
	}
	// With a competitor, FlexPass should ride mostly on its proactive
	// sub-flow (reactive finds little spare bandwidth).
	proShare := float64(fp.RxBytesPro) / float64(fp.RxBytes)
	if proShare < 0.5 {
		t.Fatalf("proactive share %.3f under competition, want >0.5", proShare)
	}
}

func TestTwoFlexPassFlowsShareFairly(t *testing.T) {
	// Fig 7(b): two FlexPass flows split the link evenly, mostly
	// proactively.
	eng, _, ag := flexFabric(3, 10*gig, topo.Spec{})
	f1 := fpFlow(1, ag[0], ag[2], 1<<30)
	f2 := fpFlow(2, ag[1], ag[2], 1<<30)
	Start(eng, f1, flexCfg(10*gig, 0.5))
	Start(eng, f2, flexCfg(10*gig, 0.5))
	eng.Run(60 * sim.Millisecond)
	tot := f1.RxBytes + f2.RxBytes
	share := float64(f1.RxBytes) / float64(tot)
	if share < 0.35 || share > 0.65 {
		t.Fatalf("flow 1 share %.3f, want ~0.5", share)
	}
	if units.RateOf(tot, 60*sim.Millisecond) < 7*gig {
		t.Fatalf("aggregate %v, want >7Gbps", units.RateOf(tot, 60*sim.Millisecond))
	}
}

func TestShortFlowUsesFirstRTT(t *testing.T) {
	// A 1-segment FlexPass flow completes in about one one-way delay via
	// the reactive sub-flow, where ExpressPass needs the credit-request
	// round trip first.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 1460)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(5 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	// One-way: host delay 1us + 2 links × 2us + 2 serializations (~2.5us).
	if fl.FCT() > 12*sim.Microsecond {
		t.Fatalf("FCT %v, want first-RTT completion (<12us)", fl.FCT())
	}
}

func TestSelectiveDroppingBoundsFlexQueue(t *testing.T) {
	// Many FlexPass flows incast: the red threshold must bound Q1.
	eng, fab, ag := flexFabric(10, 10*gig, topo.Spec{})
	var flows []*transport.Flow
	id := uint64(1)
	for round := 0; round < 4; round++ {
		for s := 0; s < 9; s++ {
			fl := fpFlow(id, ag[s], ag[9], 256_000)
			flows = append(flows, fl)
			Start(eng, fl, flexCfg(10*gig, 0.5))
			id++
		}
	}
	eng.Run(300 * sim.Millisecond)
	for _, fl := range flows {
		if !fl.Completed {
			t.Fatal("incast flow did not complete")
		}
		if fl.Timeouts != 0 {
			t.Fatalf("flow %d hit %d recovery timeouts, want 0", fl.ID, fl.Timeouts)
		}
	}
	// The bottleneck is the switch egress to host 9 (port index 9). Red
	// occupancy is hard-capped at the 150kB threshold (+1 MTU of slack);
	// green (credit-paced proactive data + control) adds a transient on
	// top, keeping the total far below the 1.125MB dynamic-buffer bound.
	q1 := fab.Net.Switches[0].Ports()[9].QueueStats(1)
	if q1.MaxRed > 150_000+1538 {
		t.Fatalf("red occupancy peaked at %dB, above the 150kB threshold", q1.MaxRed)
	}
	if q1.MaxOccupancy > 500_000 {
		t.Fatalf("Q1 max occupancy %dB; selective dropping failed to bound the queue", q1.MaxOccupancy)
	}
	if q1.DroppedRed == 0 {
		t.Fatal("expected selective drops in a 36-way incast")
	}
}

func TestProactiveRetransmissionRecoversTailLoss(t *testing.T) {
	// Squeeze the reactive sub-flow hard (tiny red threshold) so its
	// packets drop; the proactive sub-flow must recover everything
	// without any recovery timeout.
	eng, _, ag := flexFabric(3, 10*gig, topo.Spec{FlexRed: 3 * units.KB})
	f1 := fpFlow(1, ag[0], ag[2], 2_000_000)
	f2 := fpFlow(2, ag[1], ag[2], 2_000_000)
	Start(eng, f1, flexCfg(10*gig, 0.5))
	Start(eng, f2, flexCfg(10*gig, 0.5))
	eng.Run(200 * sim.Millisecond)
	if !f1.Completed || !f2.Completed {
		t.Fatalf("completion: %v %v", f1.Completed, f2.Completed)
	}
	if f1.Timeouts+f2.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (credit loop recovers losses)", f1.Timeouts+f2.Timeouts)
	}
	if f1.ProRetx+f2.ProRetx+f1.Retransmits+f2.Retransmits == 0 {
		t.Fatal("expected proactive recoveries with a 3kB red threshold")
	}
}

func TestReorderBufferZeroOnCleanPath(t *testing.T) {
	// §4.3: because both sub-flows share one switch queue and one path,
	// a loss-free FlexPass flow arrives in order — no reordering buffer.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 5_000_000)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(50 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	if fl.MaxReorderB != 0 {
		t.Fatalf("reorder buffer %dB on a clean single-queue path, want 0", fl.MaxReorderB)
	}
}

func TestReorderBufferBoundedUnderLoss(t *testing.T) {
	// With reactive drops (reduced red threshold) holes appear and the
	// reorder buffer is used, but while the reactive window stays
	// functional the holes are repaired within a few RTTs and the buffer
	// stays far below the flow size.
	eng, _, ag := flexFabric(3, 10*gig, topo.Spec{FlexRed: 30 * units.KB})
	f1 := fpFlow(1, ag[0], ag[2], 5_000_000)
	f2 := fpFlow(2, ag[1], ag[2], 5_000_000)
	Start(eng, f1, flexCfg(10*gig, 0.5))
	Start(eng, f2, flexCfg(10*gig, 0.5))
	eng.Run(200 * sim.Millisecond)
	if !f1.Completed || !f2.Completed {
		t.Fatal("flows did not complete")
	}
	if f1.MaxReorderB == 0 && f2.MaxReorderB == 0 {
		t.Fatal("no reordering despite forced reactive losses")
	}
	for _, fl := range []*transport.Flow{f1, f2} {
		if fl.MaxReorderB > fl.Size/2 {
			t.Fatalf("reorder buffer %dB > half the flow", fl.MaxReorderB)
		}
	}
}

func TestRC3SplitCompletesAndReordersMore(t *testing.T) {
	run := func(rc3 bool) *transport.Flow {
		eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
		fl := fpFlow(1, ag[0], ag[1], 5_000_000)
		cfg := flexCfg(10*gig, 0.5)
		cfg.RC3Split = rc3
		Start(eng, fl, cfg)
		eng.Run(100 * sim.Millisecond)
		return fl
	}
	norm := run(false)
	rc3 := run(true)
	if !norm.Completed || !rc3.Completed {
		t.Fatalf("completion: norm=%v rc3=%v", norm.Completed, rc3.Completed)
	}
	// Fig 5(a): RC3-style splitting needs a much larger reordering buffer.
	if rc3.MaxReorderB <= norm.MaxReorderB {
		t.Fatalf("RC3 reorder buffer %d <= FlexPass %d; expected far larger",
			rc3.MaxReorderB, norm.MaxReorderB)
	}
}

func TestDuplicateDiscardKeepsCompletionExact(t *testing.T) {
	// Force heavy proactive retransmission by delaying reactive ACKs
	// (tiny red threshold drops reactive data); duplicates must be
	// discarded and the flow completed exactly once.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{FlexRed: 2 * units.KB})
	fl := fpFlow(1, ag[0], ag[1], 1_000_000)
	completions := 0
	fl.OnComplete = func(*transport.Flow) { completions++ }
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(100 * sim.Millisecond)
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	if fl.RxBytes != fl.Size {
		t.Fatalf("RxBytes %d != size %d (duplicates double counted?)", fl.RxBytes, fl.Size)
	}
}

func TestCreditWasteUsedByReactive(t *testing.T) {
	// §4.3 credit waste mitigation: even when the pacer over-credits near
	// the tail, wasted credits are counted and the flow still completes
	// promptly.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 100_000)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(20 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	if fl.CreditsGranted == 0 {
		t.Fatal("no credits granted; proactive sub-flow inactive")
	}
}

func TestRecoveryTimerRestartsAfterDeadStart(t *testing.T) {
	// The receiver is registered late: the first reactive window and the
	// credit request all vanish. The recovery timer must restart the flow.
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 100_000)
	cfg := flexCfg(10*gig, 0.5)
	cfg.MinRTO = 1 * sim.Millisecond
	s := NewSender(eng, fl, cfg)
	r := NewReceiver(eng, fl, cfg)
	ag[0].Register(fl.ID, s)
	eng.After(2500*sim.Microsecond, func() { ag[1].Register(fl.ID, r) })
	s.Begin()
	eng.Run(100 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not recover from total first-window loss")
	}
	if fl.Timeouts == 0 {
		t.Fatal("recovery timer should have fired")
	}
}
