package flexpass

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/units"
)

func TestAeolusModeStopsReactiveAfterFirstRTT(t *testing.T) {
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	cfg := flexCfg(10*gig, 0.5)
	cfg.PreCreditOnly = true
	fl := fpFlow(1, ag[0], ag[1], 10_000_000)
	Start(eng, fl, cfg)
	eng.Run(100 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	// Reactive contribution is capped at the initial window (10 segs).
	if fl.RxBytesRe > 10*1460 {
		t.Fatalf("reactive delivered %dB in Aeolus mode, want ≤ one window", fl.RxBytesRe)
	}
	if fl.RxBytesPro < fl.Size-10*1460 {
		t.Fatalf("proactive delivered only %dB of %d", fl.RxBytesPro, fl.Size)
	}
}

func TestAeolusModeLeavesSpareBandwidthUnused(t *testing.T) {
	// The §7 contrast: alone on the link, Aeolus-style pre-credit-only
	// tops out at the credit-scheduled w_q share, while full FlexPass
	// fills the link with its reactive sub-flow.
	run := func(preCreditOnly bool) units.Rate {
		eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
		cfg := flexCfg(10*gig, 0.5)
		cfg.PreCreditOnly = preCreditOnly
		fl := fpFlow(1, ag[0], ag[1], 1<<30)
		Start(eng, fl, cfg)
		eng.Run(30 * sim.Millisecond)
		return units.RateOf(fl.RxBytes, 30*sim.Millisecond)
	}
	aeolus := run(true)
	full := run(false)
	if aeolus > 6*gig {
		t.Fatalf("Aeolus mode reached %v; should be capped near w_q (5G)", aeolus)
	}
	if full < 8*gig {
		t.Fatalf("full FlexPass reached only %v; reactive should fill the link", full)
	}
}

func TestAeolusModeStillRecoversTailLoss(t *testing.T) {
	// Unscheduled first-window losses must be recovered via the credit
	// loop (proactive retransmission), exactly as in Aeolus.
	eng, fab, ag := lossyPair(0.05, topo.Spec{})
	_ = fab
	cfg := flexCfg(10*gig, 0.5)
	cfg.PreCreditOnly = true
	fl := fpFlow(1, ag[0], ag[1], 500_000)
	Start(eng, fl, cfg)
	eng.Run(2 * sim.Second)
	if !fl.Completed {
		t.Fatal("Aeolus-mode flow did not recover from loss")
	}
}
