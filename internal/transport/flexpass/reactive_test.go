package flexpass

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/units"
)

func TestRenoReactiveFillsLinkAlone(t *testing.T) {
	eng, _, ag := flexFabric(2, 10*gig, topo.Spec{})
	cfg := flexCfg(10*gig, 0.5)
	cfg.Reactive = ReactiveReno
	fl := fpFlow(1, ag[0], ag[1], 1<<30)
	Start(eng, fl, cfg)
	eng.Run(40 * sim.Millisecond)
	total := units.RateOf(fl.RxBytes, 40*sim.Millisecond)
	if total < 8*gig {
		t.Fatalf("goodput %v with Reno reactive, want >8Gbps", total)
	}
	// Loss-based reactive rides the red-drop signal: with the whole
	// spare half available, it must still contribute substantially.
	if float64(fl.RxBytesRe)/float64(fl.RxBytes) < 0.3 {
		t.Fatalf("reactive share %.2f with Reno, want >0.3",
			float64(fl.RxBytesRe)/float64(fl.RxBytes))
	}
}

func TestRenoReactiveStillYieldsToLegacy(t *testing.T) {
	// The co-existence property must not depend on the reactive
	// algorithm: with Reno, selective dropping is the only brake, and it
	// must suffice.
	eng, _, ag := flexFabric(3, 10*gig, topo.Spec{})
	cfg := flexCfg(10*gig, 0.5)
	cfg.Reactive = ReactiveReno
	fp := fpFlow(1, ag[0], ag[2], 1<<30)
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 30, Transport: "dctcp", Legacy: true}
	Start(eng, fp, cfg)
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	eng.Run(60 * sim.Millisecond)
	tot := fp.RxBytes + dc.RxBytes
	dcShare := float64(dc.RxBytes) / float64(tot)
	if dcShare < 0.35 || dcShare > 0.65 {
		t.Fatalf("DCTCP share %.3f with Reno reactive, want ~0.5", dcShare)
	}
}

func TestRenoWindowUnit(t *testing.T) {
	w := &renoWindow{cwnd: 10, ssthresh: 1 << 30}
	// Slow start: +1 per ack.
	w.OnAck(0, 10, false)
	if w.Cwnd() != 11 {
		t.Fatalf("cwnd = %v", w.Cwnd())
	}
	// CE marks must be ignored.
	w.OnAck(1, 12, true)
	if w.Cwnd() != 12 {
		t.Fatalf("cwnd after CE = %v; Reno must ignore marks", w.Cwnd())
	}
	// Loss halves once per window.
	w.OnLoss(2, 20)
	if w.Cwnd() != 6 {
		t.Fatalf("cwnd after loss = %v, want 6", w.Cwnd())
	}
	w.OnLoss(3, 25) // same window: no second cut
	if w.Cwnd() != 6 {
		t.Fatalf("cwnd after same-window loss = %v, want 6", w.Cwnd())
	}
	w.OnTimeout()
	if w.Cwnd() != 1 || w.ssthresh != 3 {
		t.Fatalf("after timeout cwnd=%v ssthresh=%v", w.Cwnd(), w.ssthresh)
	}
}

func TestUnknownReactiveAlgoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown algorithm")
		}
	}()
	newReactiveWindow("cubic-xyz", 10)
}
