package flexpass

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/units"
)

// lossyPair builds a 2-host fabric and injects random loss on the switch
// egress toward the receiver (data direction) — non-congestion losses per
// §4.3 (switch failures), hitting proactive data, reactive data, and
// requests alike.
func lossyPair(rate float64, spec topo.Spec) (*sim.Engine, *topo.Fabric, []*transport.Agent) {
	eng := sim.NewEngine(3)
	f := topo.SingleSwitch(eng, 2, topo.Params{
		LinkRate:  10 * gig,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.FlexPassProfile(spec),
	})
	f.Net.Switches[0].Ports()[1].SetLossRate(rate)
	ag := []*transport.Agent{
		transport.NewAgent(eng, f.Net.Host(0)),
		transport.NewAgent(eng, f.Net.Host(1)),
	}
	return eng, f, ag
}

func TestFlexPassSurvivesRandomLoss(t *testing.T) {
	eng, fab, ag := lossyPair(0.01, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 5_000_000)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(500 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete under 1% random loss")
	}
	if fab.Net.Switches[0].Ports()[1].FaultStats().Injected == 0 {
		t.Fatal("no faults injected; test misconfigured")
	}
	if fl.Retransmits == 0 {
		t.Fatal("losses must force retransmissions")
	}
	// The credit loop recovers without RTO-scale stalls: a 5MB flow at
	// ~9.5Gbps is ~4.2ms; allow generous slack but nowhere near RTO
	// pile-ups.
	if fl.FCT() > 40*sim.Millisecond {
		t.Fatalf("FCT %v under 1%% loss; recovery too slow", fl.FCT())
	}
}

func TestFlexPassSurvivesHeavyLossBothDirections(t *testing.T) {
	eng, fab, ag := lossyPair(0.05, topo.Spec{})
	// Also lose ACKs and credits on the reverse direction (the receiver's
	// NIC egress).
	fab.Net.Hosts[1].NIC().SetLossRate(0.05)
	fl := fpFlow(1, ag[0], ag[1], 1_000_000)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(2 * sim.Second)
	if !fl.Completed {
		t.Fatal("flow did not complete under 5% bidirectional loss")
	}
}

func TestDCTCPSurvivesRandomLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	f := topo.SingleSwitch(eng, 2, topo.Params{
		LinkRate:  10 * gig,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.PlainProfile(100 * units.KB),
	})
	f.Net.Switches[0].Ports()[1].SetLossRate(0.02)
	ag := []*transport.Agent{
		transport.NewAgent(eng, f.Net.Host(0)),
		transport.NewAgent(eng, f.Net.Host(1)),
	}
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 2_000_000, Transport: "dctcp", Legacy: true}
	dctcp.Start(eng, fl, dctcp.LegacyConfig())
	eng.Run(2 * sim.Second)
	if !fl.Completed {
		t.Fatal("DCTCP did not complete under 2% loss")
	}
}

func TestProactiveRetransmissionAblation(t *testing.T) {
	// With proactive retransmission disabled, tail losses must wait for
	// the recovery timer; enabled, the credit loop repairs them silently.
	run := func(disable bool) (*transport.Flow, sim.Time) {
		eng, _, ag := lossyPair(0.02, topo.Spec{})
		cfg := flexCfg(10*gig, 0.5)
		cfg.DisableProRetx = disable
		var worst sim.Time
		var flows []*transport.Flow
		// Many small flows: each tail is exposed to loss.
		for i := 0; i < 40; i++ {
			fl := fpFlow(uint64(i+1), ag[0], ag[1], 30_000)
			flows = append(flows, fl)
			at := sim.Time(i) * 300 * sim.Microsecond
			fl.Start = at
			eng.At(at, func() { Start(eng, fl, cfg) })
		}
		eng.Run(3 * sim.Second)
		timeouts := 0
		for _, fl := range flows {
			if !fl.Completed {
				t.Fatal("flow incomplete")
			}
			if fl.FCT() > worst {
				worst = fl.FCT()
			}
			timeouts += fl.Timeouts
		}
		return flows[0], worst
	}
	_, worstOn := run(false)
	_, worstOff := run(true)
	if worstOff <= worstOn {
		t.Fatalf("ablation: worst FCT with proRetx %v, without %v — expected proRetx to help",
			worstOn, worstOff)
	}
	// Without proactive retransmission the tail is RTO-scale.
	if worstOff < 4*sim.Millisecond {
		t.Fatalf("worst FCT without proRetx = %v; expected RTO-scale stalls", worstOff)
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (sim.Time, int64) {
		eng, fab, ag := lossyPair(0.03, topo.Spec{})
		fl := fpFlow(1, ag[0], ag[1], 500_000)
		Start(eng, fl, flexCfg(10*gig, 0.5))
		eng.Run(sim.Second)
		return fl.FCT(), fab.Net.Switches[0].Ports()[1].FaultStats().Injected
	}
	fct1, inj1 := run()
	fct2, inj2 := run()
	if fct1 != fct2 || inj1 != inj2 {
		t.Fatalf("fault injection not deterministic: (%v,%d) vs (%v,%d)", fct1, inj1, fct2, inj2)
	}
}
