package flexpass

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/trace"
	"flexpass/internal/units"
)

func TestTraceRecordsProactiveRetransmissions(t *testing.T) {
	eng, _, ag := lossyPair(0.03, topo.Spec{})
	ring := trace.NewRing(eng, 1024)
	cfg := flexCfg(10*gig, 0.5)
	cfg.Trace = ring
	fl := fpFlow(1, ag[0], ag[1], 2_000_000)
	Start(eng, fl, cfg)
	eng.Run(sim.Second)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	retx := ring.Filter(func(e trace.Event) bool { return e.Kind == trace.Retransmit })
	if fl.ProRetx > 0 && len(retx) == 0 {
		t.Fatal("proactive retransmissions happened but were not traced")
	}
	if len(retx) != fl.ProRetx {
		t.Fatalf("traced %d retx events, counter says %d", len(retx), fl.ProRetx)
	}
	for _, e := range retx {
		if e.Flow != 1 {
			t.Fatalf("trace event for wrong flow: %+v", e)
		}
	}
}

func TestTraceNilIsFree(t *testing.T) {
	// Default config has no ring; the flow must behave identically.
	eng, _, ag := lossyPair(0.03, topo.Spec{})
	fl := fpFlow(1, ag[0], ag[1], 500_000)
	Start(eng, fl, flexCfg(10*gig, 0.5))
	eng.Run(sim.Second)
	if !fl.Completed {
		t.Fatal("flow did not complete without a trace ring")
	}
	_ = units.KB
}
