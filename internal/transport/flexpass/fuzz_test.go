package flexpass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
)

// TestSenderRobustAgainstAdversarialPackets feeds a FlexPass sender
// random (possibly nonsensical) credits and ACKs and checks it neither
// panics nor corrupts its invariants. A real network reorders, drops,
// duplicates, and delays — the endpoint must tolerate any packet
// sequence.
func TestSenderRobustAgainstAdversarialPackets(t *testing.T) {
	f := func(script []uint32) bool {
		eng := sim.NewEngine(99)
		fb := topo.SingleSwitch(eng, 2, topo.Params{
			LinkRate:  10 * gig,
			LinkDelay: sim.Microsecond,
			HostDelay: 0,
			SwitchBuf: 1000 * units.KB,
			BufAlpha:  0.5,
			Profile:   topo.FlexPassProfile(topo.Spec{}),
		})
		ag := []*transport.Agent{
			transport.NewAgent(eng, fb.Net.Host(0)),
			transport.NewAgent(eng, fb.Net.Host(1)),
		}
		fl := fpFlow(1, ag[0], ag[1], 50_000)
		s := NewSender(eng, fl, flexCfg(10*gig, 0.5))
		ag[0].Register(fl.ID, s)
		// No receiver: every packet the fuzzer crafts goes straight into
		// the sender's Handle.
		s.Begin()
		kinds := []netem.Kind{netem.KindCredit, netem.KindAckRe, netem.KindAckPro, netem.KindLegacyData}
		for i, w := range script {
			pkt := &netem.Packet{
				Kind:   kinds[int(w)%len(kinds)],
				Flow:   fl.ID,
				Seq:    w % 97, // sometimes far out of range
				SubSeq: (w / 7) % 89,
				CE:     w%3 == 0,
				SentAt: eng.Now(),
			}
			s.Handle(pkt)
			if i%5 == 0 {
				eng.Run(eng.Now() + 10*sim.Microsecond)
			}
			// Invariants after every packet.
			if s.reOutstanding < 0 {
				t.Errorf("reOutstanding went negative: %d", s.reOutstanding)
				return false
			}
			if s.ackedCount > fl.Segs() {
				t.Errorf("ackedCount %d > segs %d", s.ackedCount, fl.Segs())
				return false
			}
			if s.win.Cwnd() < 1 {
				t.Errorf("cwnd below 1: %v", s.win.Cwnd())
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestReceiverRobustAgainstAdversarialPackets mirrors the sender fuzz on
// the receive side: arbitrary data packets with wild sequence numbers
// must never panic or over-complete the flow.
func TestReceiverRobustAgainstAdversarialPackets(t *testing.T) {
	f := func(script []uint32) bool {
		eng := sim.NewEngine(7)
		fb := topo.SingleSwitch(eng, 2, topo.Params{
			LinkRate:  10 * gig,
			LinkDelay: sim.Microsecond,
			HostDelay: 0,
			SwitchBuf: 1000 * units.KB,
			BufAlpha:  0.5,
			Profile:   topo.FlexPassProfile(topo.Spec{}),
		})
		ag := []*transport.Agent{
			transport.NewAgent(eng, fb.Net.Host(0)),
			transport.NewAgent(eng, fb.Net.Host(1)),
		}
		fl := fpFlow(1, ag[0], ag[1], 20_000)
		r := NewReceiver(eng, fl, flexCfg(10*gig, 0.5))
		ag[1].Register(fl.ID, r)
		completions := 0
		fl.OnComplete = func(*transport.Flow) { completions++ }
		kinds := []netem.Kind{netem.KindProData, netem.KindReData, netem.KindCreditReq, netem.KindAckPro}
		for _, w := range script {
			r.Handle(&netem.Packet{
				Kind:   kinds[int(w)%len(kinds)],
				Flow:   fl.ID,
				Seq:    w % 53,
				SubSeq: (w / 3) % 61,
				Echo:   w % 13,
				Size:   1538,
				SentAt: eng.Now(),
			})
			if completions > 1 {
				t.Error("flow completed more than once")
				return false
			}
			if fl.RxBytes > fl.Size {
				t.Errorf("RxBytes %d exceeds flow size %d", fl.RxBytes, fl.Size)
				return false
			}
		}
		eng.Run(eng.Now() + sim.Millisecond)
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(13))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Random loss sweep: at every loss rate the flow completes and is
// delivered exactly once.
func TestLossRateSweepConservation(t *testing.T) {
	for _, loss := range []float64{0.001, 0.01, 0.03, 0.08} {
		eng, _, ag := lossyPair(loss, topo.Spec{})
		fl := fpFlow(1, ag[0], ag[1], 300_000)
		Start(eng, fl, flexCfg(10*gig, 0.5))
		eng.Run(3 * sim.Second)
		if !fl.Completed {
			t.Fatalf("loss %.3f: flow incomplete", loss)
		}
		if fl.RxBytes != fl.Size {
			t.Fatalf("loss %.3f: delivered %d of %d bytes", loss, fl.RxBytes, fl.Size)
		}
	}
}
