package core

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
)

// Reassembly is the receive-side segment ledger shared by the transports:
// arrival dedup, cumulative edge tracking, and delivery accounting.
type Reassembly struct {
	got      []bool
	Cum      int
	Received int
}

// NewReassembly builds a ledger for segs segments.
func NewReassembly(segs int) Reassembly {
	return Reassembly{got: make([]bool, segs)}
}

// Deliver absorbs segment seq for fl: a new segment is credited to the
// flow's and the transport's receive accounting and advances the
// cumulative edge (returning true); duplicates and out-of-range arrivals
// count as redundant (returning false).
func (r *Reassembly) Deliver(fl *transport.Flow, stats transport.Counters, seq int) bool {
	if seq >= len(r.got) || r.got[seq] {
		fl.RedundantSegs++
		return false
	}
	r.got[seq] = true
	r.Received++
	payload := int64(fl.SegPayload(seq))
	fl.RxBytes += payload
	stats.RxBytes.Add(payload)
	for r.Cum < len(r.got) && r.got[r.Cum] {
		r.Cum++
	}
	return true
}

// Full reports whether every segment has arrived.
func (r *Reassembly) Full() bool { return r.Received >= len(r.got) }

// Grow extends a per-subflow arrival bitmap so index n is addressable.
func Grow(b []bool, n int) []bool {
	for len(b) <= n {
		b = append(b, false)
	}
	return b
}

// SendAck emits the standard ACK for a data packet: Seq echoes the data's
// sub-flow sequence, SubSeq carries the receiver's cumulative count, CE
// echoes the data's congestion mark when echoCE is set, and SentAt
// preserves the data timestamp for sender-side RTT sampling.
func SendAck(fl *transport.Flow, kind netem.Kind, class netem.Class, data *netem.Packet, cum uint32, echoCE bool) {
	host := fl.Dst.Host
	ack := host.NewPacket()
	*ack = netem.Packet{
		Kind:   kind,
		Class:  class,
		Dst:    fl.Src.Host.NodeID(),
		Flow:   fl.ID,
		Seq:    data.SubSeq,
		SubSeq: cum,
		CE:     echoCE && data.CE,
		Size:   netem.AckSize,
		SentAt: data.SentAt,
	}
	host.Send(ack)
}

// Complete finishes fl at the engine's current time and records the
// completion in the stats/trace plane. Callers check fl.Completed and
// stop their pacers first; Flow.Complete itself stays idempotent.
func Complete(eng *sim.Engine, fl *transport.Flow, stats transport.Counters, ring *trace.Ring) {
	fl.Complete(eng.Now())
	stats.Completed.Inc()
	stats.FCT.Observe(int64(fl.FCT() / sim.Microsecond))
	ring.Add(trace.FlowDone, fl.ID, int64(fl.FCT()/sim.Microsecond), "fct_us")
}

// StartPair registers a sender/receiver pair on the flow's agents and
// stamps the flow-start stats/trace events — the shared prologue of every
// transport's Start. The caller still invokes its sender's Begin.
func StartPair(fl *transport.Flow, snd, rcv transport.Endpoint, stats transport.Counters, ring *trace.Ring, label string) {
	fl.Src.Register(fl.ID, snd)
	fl.Dst.Register(fl.ID, rcv)
	stats.Started.Inc()
	ring.Add(trace.FlowStart, fl.ID, fl.Size, label)
}

// StartSenderSide is StartPair's send half, for sharded runs where the
// flow's two endpoints start on different engines: it registers only the
// sender and bills the flow-start stats/trace to the sender's shard.
// Only this half labels the flow — the Flow's send-side fields belong to
// the source shard's goroutine.
func StartSenderSide(fl *transport.Flow, snd transport.Endpoint, stats transport.Counters, ring *trace.Ring, label string) {
	fl.Src.Register(fl.ID, snd)
	stats.Started.Inc()
	ring.Add(trace.FlowStart, fl.ID, fl.Size, label)
}

// StartReceiverSide is StartPair's receive half: it registers only the
// receiver on the destination agent, mutating nothing the sender's shard
// touches.
func StartReceiverSide(fl *transport.Flow, rcv transport.Endpoint) {
	fl.Dst.Register(fl.ID, rcv)
}
