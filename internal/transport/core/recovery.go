// Package core hosts the sender/receiver machinery shared by the
// transport implementations: the lazy recovery-timer state machine, the
// SACK-style segment tracker, receive-side reassembly and completion
// accounting, and the ExpressPass credit pacer (reused by FlexPass's
// proactive sub-flow).
//
// Everything here is timing-exact: the extraction out of the individual
// transports is gated by golden flow digests, so the helpers reproduce
// each transport's event sequence bit for bit (see the RecoveryConfig
// knobs for the deliberate asymmetries between DCTCP and the
// credit-clocked transports).
package core

import "flexpass/internal/sim"

// RecoveryConfig parameterizes a RecoveryTimer.
type RecoveryConfig struct {
	// BaseRTO returns the un-backed-off timeout (a constant MinRTO for
	// the credit transports; srtt+4·rttvar floored at MinRTO for DCTCP).
	BaseRTO func() sim.Time
	// Expire fires when the deadline truly passed. It runs with the timer
	// idle; re-arm with Touch when retransmission was scheduled.
	Expire func()
	// Idle reports that no timeout should be outstanding (flow finished,
	// or nothing in flight). A pending check dissolves silently when it
	// wakes idle.
	Idle func() bool
	// MaxShift caps the exponential-backoff shift applied to BaseRTO when
	// computing the deadline (4 for the credit transports, 6 for DCTCP).
	MaxShift uint
	// ShiftOnArm arms the hardware timer with the backoff-shifted RTO
	// (DCTCP) instead of the plain base (credit transports). Either way
	// the deadline re-checked at wakeup uses the shifted value.
	ShiftOnArm bool
}

// RecoveryTimer is the lazy retransmission-timeout state machine every
// sender shares: rather than cancelling and recreating an engine timer
// per ACK (which floods the event heap), at most one check is pending and
// it re-derives the true deadline from the last progress stamp when it
// fires.
type RecoveryTimer struct {
	cfg     RecoveryConfig
	eng     *sim.Engine
	backoff uint
	pending bool
	last    sim.Time
	checkFn func() // pre-bound check: one closure per flow, not per arm
}

// NewRecoveryTimer builds an idle timer; Touch arms it.
func NewRecoveryTimer(eng *sim.Engine, cfg RecoveryConfig) *RecoveryTimer {
	t := &RecoveryTimer{cfg: cfg, eng: eng}
	t.checkFn = t.check
	return t
}

// Touch stamps progress now and makes sure a check is pending (unless
// the flow is idle). Call it after every send and every ACK.
func (t *RecoveryTimer) Touch() {
	t.last = t.eng.Now()
	if t.pending || t.cfg.Idle() {
		return
	}
	t.pending = true
	delay := t.cfg.BaseRTO()
	if t.cfg.ShiftOnArm {
		delay = t.rto()
	}
	t.eng.After(delay, t.checkFn)
}

// Bump increases the exponential backoff (call on each timeout).
func (t *RecoveryTimer) Bump() { t.backoff++ }

// Reset clears the backoff (call when the flow makes progress).
func (t *RecoveryTimer) Reset() { t.backoff = 0 }

// Backoff exposes the consecutive-timeout count.
func (t *RecoveryTimer) Backoff() uint { return t.backoff }

// rto is the backoff-shifted timeout used for the deadline.
func (t *RecoveryTimer) rto() sim.Time {
	bo := t.backoff
	if bo > t.cfg.MaxShift {
		bo = t.cfg.MaxShift
	}
	return t.cfg.BaseRTO() << bo
}

func (t *RecoveryTimer) check() {
	t.pending = false
	if t.cfg.Idle() {
		return
	}
	deadline := t.last + t.rto()
	if t.eng.Now() < deadline {
		t.pending = true
		t.eng.At(deadline, t.checkFn)
		return
	}
	t.cfg.Expire()
}
