package core

import "testing"

func sendAll(t *SegTracker, n int) {
	for i := 0; i < n; i++ {
		seq := t.PickNew()
		if seq != i {
			panic("PickNew out of order")
		}
		t.MarkSent(seq)
	}
}

func TestSegTrackerCumAdvance(t *testing.T) {
	trk := NewSegTracker(4)
	sendAll(&trk, 4)
	if trk.Inflight != 4 {
		t.Fatalf("Inflight = %d, want 4", trk.Inflight)
	}
	adv, loss := trk.OnAck(2, 1, 3)
	if !adv || loss {
		t.Fatalf("OnAck(2,1) = (%v, %v), want (true, false)", adv, loss)
	}
	if trk.CumAck != 2 || trk.Inflight != 2 {
		t.Fatalf("CumAck=%d Inflight=%d, want 2 2", trk.CumAck, trk.Inflight)
	}
	if trk.Done() {
		t.Fatal("Done before full ack")
	}
	trk.OnAck(4, 3, 3)
	if !trk.Done() || trk.Inflight != 0 {
		t.Fatalf("Done=%v Inflight=%d after full ack", trk.Done(), trk.Inflight)
	}
}

func TestSegTrackerDupAckLoss(t *testing.T) {
	trk := NewSegTracker(6)
	sendAll(&trk, 6)
	// Segment 0 lost: sacks for 1..4 are duplicates at cum 0.
	var newLoss bool
	for sack := 1; sack <= 4; sack++ {
		_, loss := trk.OnAck(0, sack, 3)
		newLoss = newLoss || loss
	}
	if !newLoss {
		t.Fatal("no loss declared after dup threshold")
	}
	seq := trk.PopLost()
	if seq != 0 {
		t.Fatalf("PopLost = %d, want 0", seq)
	}
	if trk.PopLost() != -1 {
		t.Fatal("second PopLost should be empty")
	}
	// A late arrival of the lost segment flips it to Acked; a queued
	// lost entry for it must then be skipped.
	trk2 := NewSegTracker(6)
	sendAll(&trk2, 6)
	for sack := 1; sack <= 4; sack++ {
		trk2.OnAck(0, sack, 3)
	}
	trk2.OnAck(1, 0, 3) // the "lost" segment arrives after all
	if got := trk2.PopLost(); got != -1 {
		t.Fatalf("PopLost after late ack = %d, want -1", got)
	}
}

func TestSegTrackerPickOrderAndTailRescan(t *testing.T) {
	trk := NewSegTracker(3)
	sendAll(&trk, 3)
	// All sent, nothing lost: Pick falls through to the tail rescan,
	// which hands out each unacked segment once per round.
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seq, retx := trk.Pick()
		if seq < 0 || !retx {
			t.Fatalf("Pick %d = (%d, %v), want tail retx", i, seq, retx)
		}
		seen[seq] = true
	}
	if len(seen) != 3 {
		t.Fatalf("tail round covered %d segments, want 3", len(seen))
	}
	if seq, _ := trk.Pick(); seq != -1 {
		t.Fatalf("Pick after exhausted round = %d, want -1 (no duplicate storm)", seq)
	}
	// A fresh ACK reopens the round from the cumulative edge.
	trk.OnAck(1, 0, 3)
	seq, retx := trk.Pick()
	if seq != 1 || !retx {
		t.Fatalf("Pick after fresh ack = (%d, %v), want (1, true)", seq, retx)
	}
}

func TestSegTrackerLoseOutstanding(t *testing.T) {
	trk := NewSegTracker(5)
	sendAll(&trk, 4) // one segment never sent
	trk.OnAck(1, 0, 3)
	trk.LoseOutstanding()
	if trk.Inflight != 0 {
		t.Fatalf("Inflight = %d after LoseOutstanding, want 0", trk.Inflight)
	}
	for want := 1; want <= 3; want++ {
		if got := trk.PopLost(); got != want {
			t.Fatalf("PopLost = %d, want %d", got, want)
		}
	}
	if trk.PopLost() != -1 {
		t.Fatal("pending segment must not be marked lost")
	}
	if seq := trk.PickNew(); seq != 4 {
		t.Fatalf("PickNew after recovery = %d, want 4", seq)
	}
}
