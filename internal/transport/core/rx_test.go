package core

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/transport"
)

func TestReassemblyDeliver(t *testing.T) {
	fl := &transport.Flow{Size: 2*netem.DataPayload + 100}
	segs := fl.Segs()
	if segs != 3 {
		t.Fatalf("Segs = %d, want 3", segs)
	}
	asm := NewReassembly(segs)
	var stats transport.Counters // zero value: increments no-op

	if !asm.Deliver(fl, stats, 1) {
		t.Fatal("first delivery rejected")
	}
	if asm.Cum != 0 {
		t.Fatalf("Cum = %d with a hole at 0, want 0", asm.Cum)
	}
	if asm.Deliver(fl, stats, 1) {
		t.Fatal("duplicate accepted")
	}
	if fl.RedundantSegs != 1 {
		t.Fatalf("RedundantSegs = %d, want 1", fl.RedundantSegs)
	}
	asm.Deliver(fl, stats, 0)
	if asm.Cum != 2 {
		t.Fatalf("Cum = %d after filling the hole, want 2", asm.Cum)
	}
	if asm.Full() {
		t.Fatal("Full with one segment missing")
	}
	asm.Deliver(fl, stats, 2)
	if !asm.Full() || asm.Cum != 3 {
		t.Fatalf("Full=%v Cum=%d after all segments", asm.Full(), asm.Cum)
	}
	if fl.RxBytes != fl.Size {
		t.Fatalf("RxBytes = %d, want %d", fl.RxBytes, fl.Size)
	}
	// Out of range counts as redundant, not a panic.
	if asm.Deliver(fl, stats, 99) {
		t.Fatal("out-of-range delivery accepted")
	}
}

func TestGrow(t *testing.T) {
	var b []bool
	b = Grow(b, 3)
	if len(b) != 4 {
		t.Fatalf("len = %d, want 4", len(b))
	}
	b[3] = true
	if got := Grow(b, 2); len(got) != 4 || !got[3] {
		t.Fatal("Grow shrank or clobbered the bitmap")
	}
}
