package core

import (
	"testing"

	"flexpass/internal/sim"
)

const testRTO = sim.Millisecond

func newTestTimer(eng *sim.Engine, fired *int, idle *bool, shiftOnArm bool) *RecoveryTimer {
	return NewRecoveryTimer(eng, RecoveryConfig{
		BaseRTO:    func() sim.Time { return testRTO },
		Expire:     func() { *fired++ },
		Idle:       func() bool { return *idle },
		MaxShift:   4,
		ShiftOnArm: shiftOnArm,
	})
}

func TestRecoveryTimerFiresAfterSilence(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	idle := false
	rt := newTestTimer(eng, &fired, &idle, false)
	rt.Touch()
	eng.Run(testRTO - 1)
	if fired != 0 {
		t.Fatal("fired before the deadline")
	}
	eng.Run(testRTO + 1)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestRecoveryTimerLazyReschedule(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	idle := false
	rt := newTestTimer(eng, &fired, &idle, false)
	rt.Touch()
	// Progress keeps arriving: each Touch restamps, and the single pending
	// check re-derives the live deadline instead of firing stale.
	for i := 1; i <= 5; i++ {
		eng.At(sim.Time(i)*testRTO/2, rt.Touch)
	}
	eng.Run(3 * testRTO)
	if fired != 0 {
		t.Fatalf("fired = %d despite continuous progress", fired)
	}
	eng.Run(5 * testRTO)
	if fired != 1 {
		t.Fatalf("fired = %d once progress stopped, want 1", fired)
	}
}

func TestRecoveryTimerBackoffShift(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	idle := false
	var rt *RecoveryTimer
	rt = NewRecoveryTimer(eng, RecoveryConfig{
		BaseRTO: func() sim.Time { return testRTO },
		Expire: func() {
			fired++
			rt.Bump()
			rt.Touch()
		},
		Idle:     func() bool { return idle },
		MaxShift: 2,
	})
	rt.Touch()
	// Deadlines at 1, then +2, then +4, then capped at +4: fire times
	// 1ms, 3ms, 7ms, 11ms, 15ms...
	eng.Run(11*testRTO + 1)
	if fired != 4 {
		t.Fatalf("fired = %d by 11ms with capped backoff, want 4", fired)
	}
	if rt.Backoff() != 4 {
		t.Fatalf("Backoff = %d, want 4", rt.Backoff())
	}
	rt.Reset()
	if rt.Backoff() != 0 {
		t.Fatal("Reset did not clear backoff")
	}
}

func TestRecoveryTimerIdleSuppression(t *testing.T) {
	eng := sim.NewEngine(1)
	fired := 0
	idle := false
	rt := newTestTimer(eng, &fired, &idle, true)
	rt.Touch()
	idle = true // flow finishes before the check wakes
	eng.Run(10 * testRTO)
	if fired != 0 {
		t.Fatalf("fired = %d on an idle flow, want 0", fired)
	}
	// Touch while idle must not arm at all.
	rt.Touch()
	eng.Run(20 * testRTO)
	if fired != 0 {
		t.Fatalf("fired = %d after idle Touch, want 0", fired)
	}
}
