// The ExpressPass credit pacer (Cho et al., SIGCOMM 2017): receiver-driven
// credit generation with per-flow feedback control — aggressiveness
// factor, minimum and maximum rate change (§6.2 settings). It lives in
// core because both the expresspass transport and FlexPass's proactive
// sub-flow drive it unchanged; per-link credit-queue rate limiting is done
// by the netem profiles.
package core

import (
	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/units"
)

// PacerConfig parameterizes credit generation and feedback control.
type PacerConfig struct {
	CreditClass netem.Class
	// MaxRate is the ceiling credit rate (the per-link credit limit, i.e.
	// w_q-scaled line rate times the credit/data ratio).
	MaxRate units.Rate
	// InitRate is the starting credit rate; zero means MaxRate (ExpressPass
	// starts at full speed and backs off on credit loss).
	InitRate units.Rate
	// Period is the feedback update period (≈ one RTT).
	Period sim.Time
	// TargetLoss is the credit loss the feedback aims for (0.125).
	TargetLoss float64
	// Aggressiveness multiplies/divides the increase weight w (α = 2.0).
	Aggressiveness float64
	// WInit/WMin/WMax bound the increase weight.
	WInit, WMin, WMax float64
	// SMax optionally caps the per-period rate change. §6.2 quotes
	// S_max = 50Mbps of credits; we leave the cap disabled by default
	// because the weighted jump toward MaxRate on loss-free periods is
	// what equalizes competing flows (binary-search probing), and a tight
	// absolute cap would freeze unfair allocations in place. Zero
	// disables the cap.
	SMax units.Rate
	// Jitter is the relative credit-interval jitter (ExpressPass jitters
	// credit sends to avoid synchronization). Default 0.1 when zero.
	Jitter float64

	// Trace, when non-nil, records a credit-issue event per credit sent
	// (forensics timelines). Nil no-ops.
	Trace *trace.Ring
	// Issued, when non-nil, counts credits sent (credit-conservation
	// auditing). Nil no-ops.
	Issued *obs.Counter
}

// DefaultPacerConfig returns the §6.2 parameters for a given per-flow
// credit ceiling.
func DefaultPacerConfig(maxRate units.Rate) PacerConfig {
	return PacerConfig{
		CreditClass:    netem.ClassCredit,
		MaxRate:        maxRate,
		Period:         40 * sim.Microsecond,
		TargetLoss:     0.125,
		Aggressiveness: 2.0,
		// WMin 0.05 (ExpressPass uses 0.01): with only a handful of
		// competing flows, a 1% floor lets a starved flow's increase be
		// dwarfed by the leader's, freezing unfair allocations; a 5%
		// floor keeps the multiplicative-decrease equalization working.
		WInit:  0.5,
		WMin:   0.05,
		WMax:   0.5,
		Jitter: 0.1,
	}
}

// Pacer is the receiver-side credit generator of one flow.
type Pacer struct {
	cfg  PacerConfig
	eng  *sim.Engine
	host *netem.Host // the receiver host credits egress from
	dst  netem.NodeID
	flow uint64

	rate       units.Rate
	w          float64
	increasing bool

	sent int // credits sent this period

	// Credit-loss accounting from sequence echoes: every credit carries a
	// sequence number which the triggered data packet echoes back, so the
	// receiver measures credit loss exactly (as in ExpressPass), without
	// pipeline-fill bias.
	creditSeq  uint32
	echoCount  int    // echoes received this period
	echoHi     uint32 // highest echo seen + 1
	lastEchoHi uint32 // echoHi at the previous feedback update

	active      bool
	creditTimer sim.Timer
	fbTimer     sim.Timer
	creditFn    func() // pre-bound creditTick: one closure per pacer, not per credit
	feedbackFn  func() // pre-bound feedback, same reason

	// TotalCredits counts all credits ever sent (stats).
	TotalCredits int
}

// NewPacer builds a pacer sending credits from host toward dst for flow.
func NewPacer(eng *sim.Engine, host *netem.Host, dst netem.NodeID, flow uint64, cfg PacerConfig) *Pacer {
	if cfg.InitRate == 0 {
		cfg.InitRate = cfg.MaxRate
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.1
	}
	if cfg.WInit == 0 {
		cfg.WInit = 0.5
	}
	p := &Pacer{
		cfg:  cfg,
		eng:  eng,
		host: host,
		dst:  dst,
		flow: flow,
		rate: cfg.InitRate,
		w:    cfg.WInit,
	}
	p.creditFn = p.creditTick
	p.feedbackFn = p.feedback
	return p
}

// Rate returns the current credit rate (for tests and stats).
func (p *Pacer) Rate() units.Rate { return p.rate }

// Active reports whether the pacer is emitting credits.
func (p *Pacer) Active() bool { return p.active }

// Start begins credit pacing and the feedback loop.
func (p *Pacer) Start() {
	if p.active {
		return
	}
	p.active = true
	p.scheduleCredit()
	p.fbTimer = p.eng.After(p.cfg.Period, p.feedbackFn)
}

// Stop halts credit generation (flow complete).
func (p *Pacer) Stop() {
	p.active = false
	p.creditTimer.Stop()
	p.fbTimer.Stop()
}

// OnData is called by the receiver for every credit-scheduled data
// arrival, with the credit sequence number the data echoes. It feeds the
// exact credit-loss estimator.
func (p *Pacer) OnData(echo uint32) {
	p.echoCount++
	if echo+1 > p.echoHi {
		p.echoHi = echo + 1
	}
}

func (p *Pacer) interval() sim.Time {
	iv := p.rate.TxTime(netem.CreditSize)
	j := p.cfg.Jitter
	f := 1 - j + 2*j*p.eng.Rand().Float64()
	return sim.Time(float64(iv) * f)
}

func (p *Pacer) scheduleCredit() {
	p.creditTimer = p.eng.After(p.interval(), p.creditFn)
}

func (p *Pacer) creditTick() {
	if !p.active {
		return
	}
	p.sendCredit()
	p.scheduleCredit()
}

func (p *Pacer) sendCredit() {
	p.sent++
	p.TotalCredits++
	p.cfg.Issued.Inc()
	p.cfg.Trace.Add(trace.CreditIssue, p.flow, int64(p.creditSeq), "")
	pkt := p.host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindCredit,
		Class:  p.cfg.CreditClass,
		Dst:    p.dst,
		Flow:   p.flow,
		SubSeq: p.creditSeq,
		Size:   netem.CreditSize,
		SentAt: p.eng.Now(),
	}
	p.host.Send(pkt)
	p.creditSeq++
}

// feedback runs the ExpressPass credit feedback control once per period.
func (p *Pacer) feedback() {
	if !p.active {
		return
	}
	defer func() {
		p.fbTimer = p.eng.After(p.cfg.Period, p.feedbackFn)
	}()
	sent := p.sent
	got := p.echoCount
	expected := int(p.echoHi - p.lastEchoHi)
	p.sent, p.echoCount, p.lastEchoHi = 0, 0, p.echoHi
	var loss float64
	switch {
	case expected > 0:
		loss = 1 - float64(got)/float64(expected)
	case sent > 0 && got == 0:
		// Credits were sent but nothing came back at all: treat as full
		// loss so the rate backs off instead of blasting a dead path.
		loss = 1
	default:
		return
	}
	if loss < 0 {
		loss = 0
	}
	old := p.rate
	var next units.Rate
	if loss <= p.cfg.TargetLoss {
		if p.increasing {
			p.w = p.w * p.cfg.Aggressiveness
			if p.w > p.cfg.WMax {
				p.w = p.cfg.WMax
			}
		}
		p.increasing = true
		next = units.Rate((1-p.w)*float64(p.rate) + p.w*float64(p.cfg.MaxRate)*(1+p.cfg.TargetLoss))
	} else {
		p.increasing = false
		next = units.Rate(float64(p.rate) * (1 - loss) * (1 + p.cfg.TargetLoss))
		p.w = p.w / p.cfg.Aggressiveness
		if p.w < p.cfg.WMin {
			p.w = p.cfg.WMin
		}
	}
	// Bound the per-period change (S_max) and the absolute rate.
	if p.cfg.SMax > 0 {
		if next > old+p.cfg.SMax {
			next = old + p.cfg.SMax
		}
		if next < old-p.cfg.SMax {
			next = old - p.cfg.SMax
		}
	}
	// Minimum: one credit per period (S_min).
	minRate := units.Rate(int64(netem.CreditSize) * 8 * int64(sim.Second) / int64(p.cfg.Period))
	if next < minRate {
		next = minRate
	}
	if next > p.cfg.MaxRate {
		next = p.cfg.MaxRate
	}
	p.rate = next
}
