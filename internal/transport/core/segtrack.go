package core

// Segment states at a sender (shared shape across dctcp, expresspass and
// phost).
const (
	StPending uint8 = iota
	StSent
	StAcked
	StLost
)

// SegTracker is the send-side SACK bookkeeping shared by the
// single-sub-flow transports: per-segment state, the lost-segment FIFO,
// cumulative/selective ACK folding with duplicate-ACK loss inference,
// and the tail-rescan pointer used by credit-clocked senders.
//
// Inflight counts Sent segments for window-gated senders; credit-clocked
// senders that do not use a window may ignore it.
type SegTracker struct {
	State    []uint8
	NextNew  int
	CumAck   int
	SackHigh int
	DupAcks  int
	Inflight int

	lostQ    []int
	oldest   int  // scan pointer for tail retransmission
	rescanOK bool // a fresh ACK arrived since the last full tail rescan
}

// NewSegTracker builds a tracker for segs segments, all Pending.
func NewSegTracker(segs int) SegTracker {
	return SegTracker{State: make([]uint8, segs)}
}

// Done reports whether every segment has been cumulatively acked.
func (t *SegTracker) Done() bool { return t.CumAck >= len(t.State) }

// MarkSent transitions seq to Sent (call when handing it to the wire).
func (t *SegTracker) MarkSent(seq int) {
	t.State[seq] = StSent
	t.Inflight++
}

// PopLost pops the next segment still marked Lost, or -1.
func (t *SegTracker) PopLost() int {
	for len(t.lostQ) > 0 {
		cand := t.lostQ[0]
		t.lostQ = t.lostQ[1:]
		if t.State[cand] == StLost {
			return cand
		}
	}
	return -1
}

// PickNew hands out the next never-transmitted segment, or -1.
func (t *SegTracker) PickNew() int {
	if t.NextNew < len(t.State) {
		seq := t.NextNew
		t.NextNew++
		return seq
	}
	return -1
}

// OldestUnacked advances the tail-rescan pointer past acked segments and
// returns the first unacked one without consuming it, or -1.
func (t *SegTracker) OldestUnacked() int {
	for t.oldest < len(t.State) && t.State[t.oldest] == StAcked {
		t.oldest++
	}
	if t.oldest < len(t.State) {
		return t.oldest
	}
	return -1
}

// PickTail re-sends the oldest unacked segment, each at most once per
// rescan round; a new round opens only when a fresh ACK arrives (OnAck),
// so a slow ACK path cannot trigger a duplicate storm. Returns -1 when
// the round is exhausted.
func (t *SegTracker) PickTail() int {
	for {
		if seq := t.OldestUnacked(); seq >= 0 {
			t.oldest++
			return seq
		}
		if !t.rescanOK {
			return -1
		}
		t.rescanOK = false
		t.oldest = t.CumAck
	}
}

// Pick selects the segment a fresh credit should carry: Lost first, then
// new data, then the oldest unacked (tail robustness). The second return
// reports a retransmission; (-1, false) means the credit is wasted.
func (t *SegTracker) Pick() (seq int, retx bool) {
	if seq := t.PopLost(); seq >= 0 {
		return seq, true
	}
	if seq := t.PickNew(); seq >= 0 {
		return seq, false
	}
	if seq := t.PickTail(); seq >= 0 {
		return seq, true
	}
	return -1, false
}

// OnAck folds one (cum, sack) ACK pair in: the sacked segment is marked
// delivered, the cumulative edge advances, duplicate ACKs accumulate, and
// once dupThresh duplicates are seen everything sent but unacked more
// than dupThresh below the highest SACK is marked Lost (queued for
// retransmission). Returns whether the cumulative edge advanced and
// whether fresh segments were declared lost.
func (t *SegTracker) OnAck(cum, sack, dupThresh int) (advanced, newLoss bool) {
	t.rescanOK = true
	if sack < len(t.State) {
		switch t.State[sack] {
		case StSent:
			t.State[sack] = StAcked
			t.Inflight--
		case StLost:
			// Arrived after being declared lost: count it acked; the
			// retransmit, if it happens, will be acked as a duplicate.
			t.State[sack] = StAcked
		}
	}
	if sack > t.SackHigh {
		t.SackHigh = sack
	}
	if cum > t.CumAck {
		for seq := t.CumAck; seq < cum && seq < len(t.State); seq++ {
			if t.State[seq] == StSent {
				t.Inflight--
			}
			t.State[seq] = StAcked
		}
		t.CumAck = cum
		t.DupAcks = 0
		advanced = true
	} else if sack >= t.CumAck {
		t.DupAcks++
	}
	if t.DupAcks >= dupThresh {
		edge := t.SackHigh - dupThresh + 1
		for seq := t.CumAck; seq < edge && seq < len(t.State); seq++ {
			if t.State[seq] == StSent {
				t.State[seq] = StLost
				t.Inflight--
				t.lostQ = append(t.lostQ, seq)
				newLoss = true
			}
		}
	}
	return advanced, newLoss
}

// LoseOutstanding marks every Sent segment in [CumAck, NextNew) Lost
// (RTO recovery: everything outstanding is presumed gone).
func (t *SegTracker) LoseOutstanding() {
	for seq := t.CumAck; seq < t.NextNew; seq++ {
		if t.State[seq] == StSent {
			t.State[seq] = StLost
			t.Inflight--
			t.lostQ = append(t.lostQ, seq)
		}
	}
}
