// Package schemes wires the built-in transports into the scheme registry
// (transport.RegisterScheme). It is the one place that couples a transport
// implementation to its switch queue profile, telemetry label, and
// per-scheme parameters; the transports themselves stay profile-agnostic
// and the harness/testbed/cmd layers compose by name only.
//
// Blank-import this package to make the built-ins available:
//
//	import _ "flexpass/internal/transport/schemes"
//
// Adding a transport is a one-package change: implement it, write a
// factory here (or in your own wiring package) and register it — no
// harness edits.
package schemes

import (
	"flexpass/internal/topo"
	"flexpass/internal/transport"
)

func init() {
	// Plain transports.
	transport.RegisterScheme(transport.SchemeDCTCP, newDCTCP)
	transport.RegisterScheme(transport.SchemeExpressPass, newExpressPass)
	transport.RegisterScheme(transport.SchemeLayering, newLayering)
	transport.RegisterScheme(transport.SchemeFlexPass, newFlexPass)
	transport.RegisterScheme(transport.SchemeHoma, newHoma)
	transport.RegisterScheme(transport.SchemePHost, newPHost)

	// §6.2 deployment schemes and §4.3 ablations. "naive" is plain
	// ExpressPass under the legacy-shared queue layout.
	transport.RegisterScheme(transport.SchemeNaive, newExpressPass)
	transport.RegisterScheme(transport.SchemeOWF, newOWF)
	transport.RegisterScheme(transport.SchemeFlexPassAltQ, newFlexPassAltQ)
	transport.RegisterScheme(transport.SchemeFlexPassRC3, newFlexPassRC3)
}

// scheme is the generic composed transport every factory returns: a queue
// profile and start hooks, all closed over the run's env and configs.
// startSender/startReceiver are the split halves sharded runs use
// (transport.SplitScheme); every built-in fills them.
type scheme struct {
	profile       func() topo.PortProfile
	start         func(fl *transport.Flow)
	startSender   func(fl *transport.Flow)
	startReceiver func(fl *transport.Flow)
}

func (s *scheme) Profile() topo.PortProfile        { return s.profile() }
func (s *scheme) Start(fl *transport.Flow)         { s.start(fl) }
func (s *scheme) StartSender(fl *transport.Flow)   { s.startSender(fl) }
func (s *scheme) StartReceiver(fl *transport.Flow) { s.startReceiver(fl) }

// legacyWQ falls back to the paper's default weight when the env leaves
// w_q unset (hand-built testbeds).
func legacyWQ(wq float64) float64 {
	if wq == 0 {
		return 0.5
	}
	return wq
}
