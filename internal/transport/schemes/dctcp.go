package schemes

import (
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
)

// newDCTCP composes plain legacy DCTCP: data and ACKs in the legacy
// queue, the plain two-queue switch profile.
func newDCTCP(env *transport.SchemeEnv) transport.Scheme {
	cfg := dctcp.LegacyConfig()
	cfg.Stats = env.Counters(transport.SchemeDCTCP)
	cfg.Trace = env.Trace
	return &scheme{
		profile: func() topo.PortProfile {
			return topo.PlainProfile(env.Spec.Defaults().LegacyECN)
		},
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeDCTCP
			fl.Legacy = true
			dctcp.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeDCTCP
			fl.Legacy = true
			dctcp.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			dctcp.StartReceiver(env.Eng, fl, cfg)
		},
	}
}
