package schemes

import (
	"flexpass/internal/netem"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/homa"
)

// newHoma composes the Homa-lite receiver-driven baseline on the FlexPass
// queue layout, remapped away from the tiny rate-limited credit queue:
// data and grants in Q1, nothing in Q0. (Homa-lite has no loss recovery;
// it is a throughput baseline.)
func newHoma(env *transport.SchemeEnv) transport.Scheme {
	cfg := homa.DefaultConfig(env.LinkRate)
	cfg.UnschedClass = netem.ClassFlex
	cfg.SchedClass = netem.ClassLegacy
	cfg.GrantClass = netem.ClassFlex
	cfg.Stats = env.Counters(transport.SchemeHoma)
	cfg.Trace = env.Trace
	return &scheme{
		profile: func() topo.PortProfile { return topo.FlexPassProfile(env.Spec) },
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeHoma
			homa.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeHoma
			homa.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			homa.StartReceiver(env.Eng, fl, cfg)
		},
	}
}
