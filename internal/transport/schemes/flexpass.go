package schemes

import (
	"flexpass/internal/netem"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
	"flexpass/internal/transport/flexpass"
)

// flexCfg builds the FlexPass connection config from the env's w_q and
// scheme options, billing to the shared "flexpass" counter set (the AltQ
// and RC3 ablations are the same transport under different knobs).
func flexCfg(env *transport.SchemeEnv) flexpass.Config {
	cfg := flexpass.DefaultConfig(
		core.DefaultPacerConfig(netem.CreditRateFor(env.LinkRate, legacyWQ(env.WQ))))
	cfg.DisableProRetx = env.BoolOption(transport.OptDisableProRetx)
	cfg.Reactive = flexpass.ReactiveCC(env.Option(transport.OptReactive))
	cfg.PreCreditOnly = env.BoolOption(transport.OptPreCreditOnly)
	st := env.Counters(transport.SchemeFlexPass)
	cfg.Stats = st
	cfg.Trace = env.Trace
	cfg.Pacer.Trace, cfg.Pacer.Issued = env.Trace, st.CreditsIssued
	return cfg
}

func flexScheme(env *transport.SchemeEnv, cfg flexpass.Config, profile func() topo.PortProfile) transport.Scheme {
	return &scheme{
		profile: profile,
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeFlexPass
			flexpass.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeFlexPass
			flexpass.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			flexpass.StartReceiver(env.Eng, fl, cfg)
		},
	}
}

// newFlexPass composes the paper's design: three-queue layout, dual
// sub-flow transport.
func newFlexPass(env *transport.SchemeEnv) transport.Scheme {
	return flexScheme(env, flexCfg(env), func() topo.PortProfile {
		return topo.FlexPassProfile(env.Spec)
	})
}

// newFlexPassAltQ composes the §4.3 queueing ablation: the reactive
// sub-flow rides the legacy queue instead of Q1.
func newFlexPassAltQ(env *transport.SchemeEnv) transport.Scheme {
	cfg := flexCfg(env)
	cfg.ReClass = netem.ClassLegacy
	return flexScheme(env, cfg, func() topo.PortProfile {
		return topo.AltQueueProfile(env.Spec)
	})
}

// newFlexPassRC3 composes the §4.3 flow-splitting ablation: RC3-style
// tail-first reactive transmission.
func newFlexPassRC3(env *transport.SchemeEnv) transport.Scheme {
	cfg := flexCfg(env)
	cfg.RC3Split = true
	return flexScheme(env, cfg, func() topo.PortProfile {
		return topo.FlexPassProfile(env.Spec)
	})
}
