package schemes

import (
	"flexpass/internal/netem"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/phost"
)

// phostScheme carries per-destination token arbiters: pHost serialises
// grants per receiver downlink, so each destination host gets one arbiter
// shared by every flow that lands on it.
type phostScheme struct {
	env      *transport.SchemeEnv
	cfg      phost.Config
	arbiters map[*netem.Host]*phost.Arbiter
}

// newPHost composes the pHost receiver-driven baseline on the FlexPass
// queue layout.
func newPHost(env *transport.SchemeEnv) transport.Scheme {
	cfg := phost.DefaultConfig()
	cfg.Stats = env.Counters(transport.SchemePHost)
	cfg.Trace = env.Trace
	return &phostScheme{
		env:      env,
		cfg:      cfg,
		arbiters: make(map[*netem.Host]*phost.Arbiter),
	}
}

func (s *phostScheme) Profile() topo.PortProfile {
	return topo.FlexPassProfile(s.env.Spec)
}

func (s *phostScheme) Start(fl *transport.Flow) {
	fl.Transport = transport.SchemePHost
	phost.Start(s.env.Eng, fl, s.arbiter(fl), s.cfg)
}

// arbiter returns (creating on first use) the destination host's grant
// arbiter. In sharded runs only the destination shard's scheme instance
// resolves arbiters, so each arbiter lives on the engine of the downlink
// it serialises grants for.
func (s *phostScheme) arbiter(fl *transport.Flow) *phost.Arbiter {
	arb := s.arbiters[fl.Dst.Host]
	if arb == nil {
		arb = phost.NewArbiter(s.env.Eng, fl.Dst.Host, s.env.LinkRate)
		s.arbiters[fl.Dst.Host] = arb
	}
	return arb
}

// StartSender begins the send side only (sharded runs).
func (s *phostScheme) StartSender(fl *transport.Flow) {
	fl.Transport = transport.SchemePHost
	phost.StartSender(s.env.Eng, fl, s.cfg)
}

// StartReceiver wires the receive side onto its destination-shard
// arbiter (sharded runs).
func (s *phostScheme) StartReceiver(fl *transport.Flow) {
	phost.StartReceiver(s.env.Eng, fl, s.arbiter(fl), s.cfg)
}
