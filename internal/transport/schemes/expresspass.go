package schemes

import (
	"flexpass/internal/netem"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/expresspass"
	"flexpass/internal/transport/layering"
)

// expressCfg builds the ExpressPass connection config at the given credit
// weight, billing to the shared "expresspass" counter set (naive and oWF
// are the same transport under different queue layouts and credit rates).
func expressCfg(env *transport.SchemeEnv, wq float64) expresspass.Config {
	cfg := expresspass.DefaultConfig(
		expresspass.DefaultPacerConfig(netem.CreditRateFor(env.LinkRate, wq)))
	st := env.Counters(transport.SchemeExpressPass)
	cfg.Stats = st
	cfg.Trace = env.Trace
	cfg.Pacer.Trace, cfg.Pacer.Issued = env.Trace, st.CreditsIssued
	return cfg
}

// newExpressPass composes plain ExpressPass — full-rate credits sharing
// the legacy queue. Registered both as "expresspass" and as the §6.2
// "naive" deployment scheme.
func newExpressPass(env *transport.SchemeEnv) transport.Scheme {
	cfg := expressCfg(env, 1.0)
	return &scheme{
		profile: func() topo.PortProfile { return topo.NaiveProfile(env.Spec) },
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeExpressPass
			expresspass.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeExpressPass
			expresspass.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			expresspass.StartReceiver(env.Eng, fl, cfg)
		},
	}
}

// newOWF composes the oracle weighted-fair scheme: ExpressPass whose
// credit rate and queue weights follow the measured upgraded-traffic
// share (env.OracleWQ).
func newOWF(env *transport.SchemeEnv) transport.Scheme {
	wq := legacyWQ(env.OracleWQ)
	cfg := expressCfg(env, wq)
	return &scheme{
		profile: func() topo.PortProfile {
			ospec := env.Spec
			ospec.WQ = wq
			return topo.OWFProfile(ospec)
		},
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeExpressPass
			expresspass.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeExpressPass
			expresspass.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			expresspass.StartReceiver(env.Eng, fl, cfg)
		},
	}
}

// newLayering composes the LY baseline: window-gated ExpressPass in the
// shared queue (see the layering package).
func newLayering(env *transport.SchemeEnv) transport.Scheme {
	cfg := layering.Config(
		expresspass.DefaultPacerConfig(netem.CreditRateFor(env.LinkRate, 1.0)))
	st := env.Counters(transport.SchemeLayering)
	cfg.Stats = st
	cfg.Trace = env.Trace
	cfg.Pacer.Trace, cfg.Pacer.Issued = env.Trace, st.CreditsIssued
	return &scheme{
		profile: func() topo.PortProfile { return topo.LayeringProfile(env.Spec) },
		start: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeLayering
			expresspass.Start(env.Eng, fl, cfg)
		},
		startSender: func(fl *transport.Flow) {
			fl.Transport = transport.SchemeLayering
			expresspass.StartSender(env.Eng, fl, cfg)
		},
		startReceiver: func(fl *transport.Flow) {
			expresspass.StartReceiver(env.Eng, fl, cfg)
		},
	}
}
