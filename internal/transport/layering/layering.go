// Package layering implements the LY baseline (§6.2, ExpressPass+ [45]):
// ExpressPass credit scheduling gated by a DCTCP-adjusted window, with
// data and legacy traffic sharing one queue. A credit may only trigger a
// transmission when the window has room; otherwise the credit is wasted.
//
// It is a thin configuration of the expresspass package, which hosts the
// layered sender logic.
package layering

import (
	"flexpass/internal/sim"
	"flexpass/internal/transport"
	"flexpass/internal/transport/expresspass"
)

// Config returns the layered configuration for the given pacer settings:
// ECN-capable data (so the shared-queue marking reaches the window) and
// the window gate enabled.
func Config(p expresspass.PacerConfig) expresspass.Config {
	cfg := expresspass.DefaultConfig(p)
	cfg.Layered = true
	cfg.DataECN = true
	return cfg
}

// Start wires a layered sender/receiver pair and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, p expresspass.PacerConfig) (*expresspass.Sender, *expresspass.Receiver) {
	return expresspass.Start(eng, flow, Config(p))
}

// StartSender wires only the layered send side (sharded runs).
func StartSender(eng *sim.Engine, flow *transport.Flow, p expresspass.PacerConfig) *expresspass.Sender {
	return expresspass.StartSender(eng, flow, Config(p))
}

// StartReceiver wires only the layered receive side (sharded runs).
func StartReceiver(eng *sim.Engine, flow *transport.Flow, p expresspass.PacerConfig) *expresspass.Receiver {
	return expresspass.StartReceiver(eng, flow, Config(p))
}
