package dctcp

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
)

// lossyLink builds a 2-host fabric with random loss toward the receiver.
func lossyLink(rate float64, seed int64) (*sim.Engine, []*transport.Agent) {
	eng := sim.NewEngine(seed)
	f := topo.SingleSwitch(eng, 2, topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.PlainProfile(100 * units.KB),
	})
	f.Net.Switches[0].Ports()[1].SetLossRate(rate)
	return eng, []*transport.Agent{
		transport.NewAgent(eng, f.Net.Host(0)),
		transport.NewAgent(eng, f.Net.Host(1)),
	}
}

func TestSACKRecoveryAvoidsRTOUnderModerateLoss(t *testing.T) {
	// With continuous traffic and 0.5% loss, SACK-style marking should
	// recover nearly everything without timeouts.
	eng, ag := lossyLink(0.005, 5)
	f := newFlow(1, ag[0], ag[1], 10_000_000, 0)
	Start(eng, f, LegacyConfig())
	eng.Run(2 * sim.Second)
	if !f.Completed {
		t.Fatal("flow did not complete")
	}
	if f.Retransmits == 0 {
		t.Fatal("no retransmissions despite loss")
	}
	if f.Timeouts > 2 {
		t.Fatalf("timeouts = %d; fast recovery should handle 0.5%% loss", f.Timeouts)
	}
}

func TestRTOBackoffUnderBlackout(t *testing.T) {
	// 100% loss: the sender must back off exponentially, not fire RTOs at
	// a fixed 4ms cadence.
	eng, ag := lossyLink(1.0, 5)
	f := newFlow(1, ag[0], ag[1], 100_000, 0)
	Start(eng, f, LegacyConfig())
	eng.Run(200 * sim.Millisecond)
	if f.Completed {
		t.Fatal("flow cannot complete over a dead link")
	}
	// Fixed 4ms RTOs would fire ~50 times in 200ms; exponential backoff
	// (4, 8, 16, 32, 64, 128...) allows at most ~6.
	if f.Timeouts > 8 {
		t.Fatalf("timeouts = %d in 200ms; backoff missing", f.Timeouts)
	}
	if f.Timeouts < 3 {
		t.Fatalf("timeouts = %d; RTO not firing at all", f.Timeouts)
	}
}

func TestTailLossRecoveredByRTO(t *testing.T) {
	// Lose everything after 10ms: the in-flight tail must be recovered by
	// RTO once the link heals.
	eng := sim.NewEngine(5)
	fb := topo.SingleSwitch(eng, 2, topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.PlainProfile(100 * units.KB),
	})
	port := fb.Net.Switches[0].Ports()[1]
	ag := []*transport.Agent{
		transport.NewAgent(eng, fb.Net.Host(0)),
		transport.NewAgent(eng, fb.Net.Host(1)),
	}
	f := newFlow(1, ag[0], ag[1], 100_000_000, 0)
	Start(eng, f, LegacyConfig())
	eng.At(10*sim.Millisecond, func() { port.SetLossRate(1.0) })
	eng.At(30*sim.Millisecond, func() { port.SetLossRate(0) })
	eng.Run(2 * sim.Second)
	if !f.Completed {
		t.Fatal("flow did not recover after the blackout healed")
	}
	if f.Timeouts == 0 {
		t.Fatal("a 20ms blackout must cause at least one RTO")
	}
}

func TestConcurrentMixedSizesAllComplete(t *testing.T) {
	eng, ag := lossyLink(0.002, 9)
	sizes := []int64{800, 14_600, 146_000, 1_460_000, 7_300_000}
	var flows []*transport.Flow
	for i, sz := range sizes {
		fl := newFlow(uint64(i+1), ag[0], ag[1], sz, 0)
		flows = append(flows, fl)
		Start(eng, fl, LegacyConfig())
	}
	eng.Run(3 * sim.Second)
	for i, fl := range flows {
		if !fl.Completed {
			t.Fatalf("flow %d (size %d) incomplete", i, sizes[i])
		}
		if fl.RxBytes != sizes[i] {
			t.Fatalf("flow %d delivered %d of %d bytes", i, fl.RxBytes, sizes[i])
		}
	}
}
