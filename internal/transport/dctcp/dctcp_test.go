package dctcp

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
)

func testFabric(t *testing.T, hosts int) (*sim.Engine, *topo.Fabric, []*transport.Agent) {
	t.Helper()
	eng := sim.NewEngine(1)
	f := topo.SingleSwitch(eng, hosts, topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.PlainProfile(100 * units.KB),
	})
	agents := make([]*transport.Agent, hosts)
	for i := range agents {
		agents[i] = transport.NewAgent(eng, f.Net.Host(i))
	}
	return eng, f, agents
}

func newFlow(id uint64, src, dst *transport.Agent, size int64, start sim.Time) *transport.Flow {
	return &transport.Flow{
		ID: id, Src: src, Dst: dst, Size: size, Start: start,
		Transport: "dctcp", Legacy: true,
	}
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, _, ag := testFabric(t, 2)
	f := newFlow(1, ag[0], ag[1], 1_000_000, 0)
	Start(eng, f, LegacyConfig())
	eng.Run(100 * sim.Millisecond)
	if !f.Completed {
		t.Fatal("flow did not complete")
	}
	// 1MB at 10Gbps is 0.8ms minimum; slow start adds a few RTTs.
	if f.FCT() < 800*sim.Microsecond {
		t.Fatalf("FCT %v impossibly fast", f.FCT())
	}
	if f.FCT() > 5*sim.Millisecond {
		t.Fatalf("FCT %v too slow (no slow-start growth?)", f.FCT())
	}
	if f.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", f.Timeouts)
	}
}

func TestTinyFlowOneSegment(t *testing.T) {
	eng, _, ag := testFabric(t, 2)
	f := newFlow(1, ag[0], ag[1], 100, 0)
	Start(eng, f, LegacyConfig())
	eng.Run(10 * sim.Millisecond)
	if !f.Completed {
		t.Fatal("1-segment flow did not complete")
	}
	if f.RxBytes != 100 {
		t.Fatalf("RxBytes = %d, want 100", f.RxBytes)
	}
}

func TestLongFlowSaturatesLink(t *testing.T) {
	eng, _, ag := testFabric(t, 2)
	f := newFlow(1, ag[0], ag[1], 50_000_000, 0)
	Start(eng, f, LegacyConfig())
	eng.Run(100 * sim.Millisecond)
	// 50MB at 10Gbps goodput limit ≈ 42.2ms wire time (with header
	// overhead ≈ 44.4ms); DCTCP should stay close to line rate.
	if !f.Completed {
		t.Fatal("flow did not complete")
	}
	rate := units.RateOf(f.RxBytes, f.FCT())
	if rate < 8*units.Gbps {
		t.Fatalf("goodput %v over FCT %v, want >8Gbps", rate, f.FCT())
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng, _, ag := testFabric(t, 3)
	f1 := newFlow(1, ag[0], ag[2], 1<<30, 0)
	f2 := newFlow(2, ag[1], ag[2], 1<<30, 0)
	Start(eng, f1, LegacyConfig())
	Start(eng, f2, LegacyConfig())
	eng.Run(50 * sim.Millisecond)
	tot := f1.RxBytes + f2.RxBytes
	if tot == 0 {
		t.Fatal("no progress")
	}
	share := float64(f1.RxBytes) / float64(tot)
	if share < 0.35 || share > 0.65 {
		t.Fatalf("flow 1 share = %.3f, want ~0.5", share)
	}
	// Aggregate should be near line rate.
	rate := units.RateOf(tot, 50*sim.Millisecond)
	if rate < 8*units.Gbps {
		t.Fatalf("aggregate %v, want >8Gbps", rate)
	}
}

func TestECNBoundsQueue(t *testing.T) {
	eng, fab, ag := testFabric(t, 3)
	f1 := newFlow(1, ag[0], ag[2], 1<<30, 0)
	f2 := newFlow(2, ag[1], ag[2], 1<<30, 0)
	Start(eng, f1, LegacyConfig())
	Start(eng, f2, LegacyConfig())
	eng.Run(50 * sim.Millisecond)
	// Egress port toward host 2 is the bottleneck; DCTCP with K=100kB
	// should keep the queue well below the 1.125MB dynamic-threshold cap.
	var bottleneck = fab.Net.Switches[0].Ports()[2]
	st := bottleneck.QueueStats(0)
	if st.Marked == 0 {
		t.Fatal("no CE marks at the bottleneck")
	}
	if st.MaxOccupancy > 400_000 {
		t.Fatalf("max queue %dB; ECN failed to bound it", st.MaxOccupancy)
	}
	if st.Dropped != 0 {
		t.Fatalf("drops = %d, want 0 with ECN control", st.Dropped)
	}
}

func TestLossRecoveryWithTinyBuffer(t *testing.T) {
	eng := sim.NewEngine(1)
	f := topo.SingleSwitch(eng, 3, topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 30 * units.KB, // tiny: forces drops
		BufAlpha:  1.0,
		Profile:   topo.PlainProfile(0), // no ECN: loss-driven
	})
	ag := []*transport.Agent{
		transport.NewAgent(eng, f.Net.Host(0)),
		transport.NewAgent(eng, f.Net.Host(1)),
		transport.NewAgent(eng, f.Net.Host(2)),
	}
	fl1 := newFlow(1, ag[0], ag[2], 3_000_000, 0)
	fl2 := newFlow(2, ag[1], ag[2], 3_000_000, 0)
	s1, _ := Start(eng, fl1, LegacyConfig())
	Start(eng, fl2, LegacyConfig())
	eng.Run(200 * sim.Millisecond)
	if !fl1.Completed || !fl2.Completed {
		t.Fatalf("flows not complete: %v %v", fl1.Completed, fl2.Completed)
	}
	if fl1.Retransmits+fl2.Retransmits == 0 {
		t.Fatal("expected retransmissions with a 30kB buffer")
	}
	_ = s1
}

func TestIncastCausesTimeoutsAtHighDegree(t *testing.T) {
	// Paper Fig 8: kernel DCTCP suffers timeouts past ~48 incast flows.
	eng, _, ag := testFabric(t, 10)
	// Reduce buffer pressure tolerance: 9 senders × many flows at once.
	var flows []*transport.Flow
	id := uint64(1)
	for round := 0; round < 8; round++ { // 72 concurrent flows
		for s := 0; s < 9; s++ {
			fl := newFlow(id, ag[s], ag[9], 64_000, 0)
			flows = append(flows, fl)
			Start(eng, fl, LegacyConfig())
			id++
		}
	}
	eng.Run(400 * sim.Millisecond)
	timeouts := 0
	for _, fl := range flows {
		if !fl.Completed {
			t.Fatal("incast flow did not complete")
		}
		timeouts += fl.Timeouts
	}
	if timeouts == 0 {
		t.Fatal("expected at least one RTO in a 72-way incast")
	}
}

func TestWindowAlphaConvergesToMarkFraction(t *testing.T) {
	w := NewWindow(10)
	// Feed 50 windows with 30% marks; alpha should approach 0.3.
	seq := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			ce := i%10 < 3
			w.OnAck(seq, seq+100, ce)
			seq++
		}
	}
	if w.Alpha < 0.2 || w.Alpha > 0.4 {
		t.Fatalf("alpha = %.3f, want ~0.3", w.Alpha)
	}
}

func TestWindowSingleReductionPerWindow(t *testing.T) {
	w := NewWindow(100)
	w.Ssthresh = 1 // force congestion avoidance
	w.Alpha = 1
	before := w.Cwnd
	// Many CE acks within one window: only one halving.
	for i := 0; i < 50; i++ {
		w.OnAck(0, 100, true)
	}
	if w.Cwnd < before/2-1 {
		t.Fatalf("cwnd = %.1f; reduced more than once per window", w.Cwnd)
	}
}

func TestWindowTimeoutCollapses(t *testing.T) {
	w := NewWindow(64)
	w.OnTimeout()
	if w.Cwnd != 1 {
		t.Fatalf("cwnd after RTO = %.1f, want 1", w.Cwnd)
	}
	if w.Ssthresh != 32 {
		t.Fatalf("ssthresh after RTO = %.1f, want 32", w.Ssthresh)
	}
}

func TestWindowSlowStartDoubles(t *testing.T) {
	w := NewWindow(2)
	seq := 0
	// One RTT: 2 acks -> cwnd 4; next RTT: 4 acks -> 8.
	for i := 0; i < 2; i++ {
		w.OnAck(seq, seq+2, false)
		seq++
	}
	if w.Cwnd != 4 {
		t.Fatalf("cwnd = %.1f after first RTT, want 4", w.Cwnd)
	}
}
