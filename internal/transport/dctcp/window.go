// Package dctcp implements the DCTCP congestion control algorithm
// (Alizadeh et al., SIGCOMM 2010) at packet granularity, with per-packet
// ACKs and selective loss marking. It provides both complete sender and
// receiver endpoints for legacy traffic, and a reusable Window type that
// FlexPass's reactive sub-flow and the layering scheme embed.
package dctcp

// Window is the DCTCP congestion window state machine, counted in
// segments. Sequence arguments are per-sub-flow segment indices.
type Window struct {
	Cwnd     float64 // congestion window, segments
	Ssthresh float64
	Alpha    float64 // EWMA of the marked fraction
	G        float64 // EWMA gain (paper: 1/16)
	MinCwnd  float64

	acks, marks int
	alphaEdge   int // alpha refresh when cumAck passes this sub-flow seq
	reduceEdge  int // at most one multiplicative decrease per window
}

// NewWindow returns a window starting at initCwnd segments, in slow start.
func NewWindow(initCwnd float64) *Window {
	return &Window{
		Cwnd:     initCwnd,
		Ssthresh: 1 << 30,
		Alpha:    1, // standard conservative initialization
		G:        1.0 / 16,
		MinCwnd:  1,
	}
}

// OnAck processes one ACK acknowledging one segment. cumAck is the
// receiver's cumulative in-order count, sndNxt the sender's next fresh
// sub-flow sequence, and ce whether the ACK echoes a CE mark.
func (w *Window) OnAck(cumAck, sndNxt int, ce bool) {
	w.acks++
	if ce {
		w.marks++
	}
	if cumAck >= w.alphaEdge {
		f := float64(w.marks) / float64(w.acks)
		w.Alpha = (1-w.G)*w.Alpha + w.G*f
		w.acks, w.marks = 0, 0
		w.alphaEdge = sndNxt
	}
	if ce {
		if cumAck >= w.reduceEdge {
			w.Cwnd *= 1 - w.Alpha/2
			if w.Cwnd < w.MinCwnd {
				w.Cwnd = w.MinCwnd
			}
			w.Ssthresh = w.Cwnd
			w.reduceEdge = sndNxt
		}
		return
	}
	if w.Cwnd < w.Ssthresh {
		w.Cwnd++
	} else {
		w.Cwnd += 1 / w.Cwnd
	}
}

// OnLoss applies the fast-retransmit window reduction (at most once per
// window).
func (w *Window) OnLoss(cumAck, sndNxt int) {
	if cumAck < w.reduceEdge {
		return
	}
	w.Ssthresh = w.Cwnd / 2
	if w.Ssthresh < w.MinCwnd {
		w.Ssthresh = w.MinCwnd
	}
	w.Cwnd = w.Ssthresh
	w.reduceEdge = sndNxt
}

// OnTimeout collapses the window after an RTO.
func (w *Window) OnTimeout() {
	w.Ssthresh = w.Cwnd / 2
	if w.Ssthresh < 2 {
		w.Ssthresh = 2
	}
	w.Cwnd = w.MinCwnd
}
