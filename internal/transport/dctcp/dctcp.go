package dctcp

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
)

// Config parameterizes a DCTCP connection. The class/kind fields let the
// same engine serve plain legacy traffic (legacy classes) and embedded
// uses.
type Config struct {
	DataClass netem.Class
	AckClass  netem.Class
	DataKind  netem.Kind
	AckKind   netem.Kind
	Color     netem.Color
	InitCwnd  float64
	MinRTO    sim.Time
	// DupThresh is the duplicate-ACK / SACK reordering threshold.
	DupThresh int

	// Trace, when non-nil, records lifecycle/retransmit/timeout events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// LegacyConfig returns the paper's legacy-traffic configuration: data and
// ACKs in the legacy queue, ECN-capable, iw=10, RTOmin=4ms.
func LegacyConfig() Config {
	return Config{
		DataClass: netem.ClassLegacy,
		AckClass:  netem.ClassLegacy,
		DataKind:  netem.KindLegacyData,
		AckKind:   netem.KindLegacyAck,
		Color:     netem.Green,
		InitCwnd:  10,
		MinRTO:    4 * sim.Millisecond,
		DupThresh: 3,
	}
}

// Sender is the DCTCP send side of one flow.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow
	win  *Window

	trk core.SegTracker
	rec *core.RecoveryTimer

	srtt, rttvar sim.Time
	recoverEdge  int
	finished     bool
}

// NewSender builds the send side; call Begin to start transmitting.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := &Sender{
		cfg:  cfg,
		eng:  eng,
		flow: flow,
		win:  NewWindow(cfg.InitCwnd),
		trk:  core.NewSegTracker(flow.Segs()),
	}
	s.rec = core.NewRecoveryTimer(eng, core.RecoveryConfig{
		BaseRTO:    s.baseRTO,
		Expire:     s.onTimeout,
		Idle:       func() bool { return s.finished || s.trk.Inflight == 0 },
		MaxShift:   6,
		ShiftOnArm: true,
	})
	return s
}

// Begin starts the flow (first window of packets).
func (s *Sender) Begin() { s.sendMore() }

// Finished reports whether every segment has been cumulatively acked.
func (s *Sender) Finished() bool { return s.finished }

// Cwnd exposes the congestion window for tests.
func (s *Sender) Cwnd() float64 { return s.win.Cwnd }

func (s *Sender) sendMore() {
	for s.trk.Inflight < int(s.win.Cwnd) {
		seq := s.trk.PopLost()
		retx := seq >= 0
		if seq < 0 {
			if seq = s.trk.PickNew(); seq < 0 {
				break
			}
		}
		s.transmit(seq, retx)
	}
	s.rec.Touch()
}

func (s *Sender) transmit(seq int, retx bool) {
	s.trk.MarkSent(seq)
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seq), "")
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:       s.cfg.DataKind,
		Class:      s.cfg.DataClass,
		Color:      s.cfg.Color,
		ECNCapable: true,
		Dst:        s.flow.Dst.Host.NodeID(),
		Flow:       s.flow.ID,
		Seq:        uint32(seq),
		SubSeq:     uint32(seq), // plain DCTCP: sub-flow seq == flow seq
		Size:       s.flow.SegWire(seq),
		SentAt:     s.eng.Now(),
	}
	host.Send(pkt)
}

// baseRTO is the un-backed-off timeout: srtt + 4·rttvar, floored at MinRTO.
func (s *Sender) baseRTO() sim.Time {
	r := s.cfg.MinRTO
	if s.srtt != 0 {
		if est := s.srtt + 4*s.rttvar; est > r {
			r = est
		}
	}
	return r
}

func (s *Sender) onTimeout() {
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.trk.CumAck), "rto")
	s.rec.Bump()
	s.win.OnTimeout()
	s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.trk.CumAck), "timeout cwnd=%.1f", s.win.Cwnd)
	s.trk.DupAcks = 0
	s.trk.LoseOutstanding()
	s.recoverEdge = s.trk.NextNew
	s.sendMore()
}

// Handle processes ACKs. ACK wire encoding (see package doc): SubSeq =
// cumulative in-order count, Seq = sub-flow seq that triggered the ACK,
// CE = ECN echo, SentAt = original data timestamp.
func (s *Sender) Handle(pkt *netem.Packet) {
	if pkt.Kind != s.cfg.AckKind || s.finished {
		return
	}
	cum := int(pkt.SubSeq)
	sack := int(pkt.Seq)

	// RTT sample.
	sample := s.eng.Now() - pkt.SentAt
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		d := sample - s.srtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}

	advanced, newLoss := s.trk.OnAck(cum, sack, s.cfg.DupThresh)
	if advanced {
		s.rec.Reset()
	}

	s.win.OnAck(cum, s.trk.NextNew, pkt.CE)

	// Fast-retransmit window reduction, at most once per recovery window.
	if newLoss && s.trk.CumAck >= s.recoverEdge {
		s.win.OnLoss(s.trk.CumAck, s.trk.NextNew)
		s.recoverEdge = s.trk.NextNew
		s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.trk.CumAck), "dupack cwnd=%.1f", s.win.Cwnd)
	}

	if s.trk.Done() {
		s.finished = true
		return
	}
	s.sendMore()
}

// Receiver is the DCTCP receive side of one flow. It acknowledges every
// data packet and completes the flow when all bytes have arrived.
type Receiver struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow
	asm  core.Reassembly
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	return &Receiver{cfg: cfg, eng: eng, flow: flow, asm: core.NewReassembly(flow.Segs())}
}

// Handle processes data packets.
func (r *Receiver) Handle(pkt *netem.Packet) {
	if pkt.Kind != r.cfg.DataKind {
		return
	}
	r.asm.Deliver(r.flow, r.cfg.Stats, int(pkt.SubSeq))
	core.SendAck(r.flow, r.cfg.AckKind, r.cfg.AckClass, pkt, uint32(r.asm.Cum), true)
	if r.asm.Full() && !r.flow.Completed {
		core.Complete(r.eng, r.flow, r.cfg.Stats, r.cfg.Trace)
	}
}

// Start wires a DCTCP sender/receiver pair onto the flow's agents and
// begins transmission immediately.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	core.StartPair(flow, s, r, cfg.Stats, cfg.Trace, transport.SchemeDCTCP)
	s.Begin()
	return s, r
}

// StartSender wires only the send side (sharded runs start the two
// endpoints on their own shard engines) and begins transmission.
func StartSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := NewSender(eng, flow, cfg)
	core.StartSenderSide(flow, s, cfg.Stats, cfg.Trace, transport.SchemeDCTCP)
	s.Begin()
	return s
}

// StartReceiver wires only the receive side.
func StartReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	r := NewReceiver(eng, flow, cfg)
	core.StartReceiverSide(flow, r)
	return r
}
