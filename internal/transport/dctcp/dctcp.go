package dctcp

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
)

// Config parameterizes a DCTCP connection. The class/kind fields let the
// same engine serve plain legacy traffic (legacy classes) and embedded
// uses.
type Config struct {
	DataClass netem.Class
	AckClass  netem.Class
	DataKind  netem.Kind
	AckKind   netem.Kind
	Color     netem.Color
	InitCwnd  float64
	MinRTO    sim.Time
	// DupThresh is the duplicate-ACK / SACK reordering threshold.
	DupThresh int

	// Trace, when non-nil, records lifecycle/retransmit/timeout events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// LegacyConfig returns the paper's legacy-traffic configuration: data and
// ACKs in the legacy queue, ECN-capable, iw=10, RTOmin=4ms.
func LegacyConfig() Config {
	return Config{
		DataClass: netem.ClassLegacy,
		AckClass:  netem.ClassLegacy,
		DataKind:  netem.KindLegacyData,
		AckKind:   netem.KindLegacyAck,
		Color:     netem.Green,
		InitCwnd:  10,
		MinRTO:    4 * sim.Millisecond,
		DupThresh: 3,
	}
}

// Segment states at the sender.
const (
	segPending uint8 = iota
	segSent
	segAcked
	segLost
)

// Sender is the DCTCP send side of one flow.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow
	win  *Window

	state    []uint8
	lostQ    []int // FIFO of segments marked lost, pending retransmit
	nextNew  int
	cumAck   int
	sackHigh int // highest sub-flow seq acknowledged
	inflight int
	dupAcks  int

	srtt, rttvar sim.Time
	lastProgress sim.Time
	rtoBackoff   uint // consecutive RTOs (exponential backoff)
	rtoPending   bool
	recoverEdge  int
	finished     bool

	checkRTOFn func() // pre-bound checkRTO: one closure per flow, not per arm
}

// NewSender builds the send side; call Begin to start transmitting.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := &Sender{
		cfg:   cfg,
		eng:   eng,
		flow:  flow,
		win:   NewWindow(cfg.InitCwnd),
		state: make([]uint8, flow.Segs()),
	}
	s.checkRTOFn = s.checkRTO
	return s
}

// Begin starts the flow (first window of packets).
func (s *Sender) Begin() { s.sendMore() }

// Finished reports whether every segment has been cumulatively acked.
func (s *Sender) Finished() bool { return s.finished }

// Cwnd exposes the congestion window for tests.
func (s *Sender) Cwnd() float64 { return s.win.Cwnd }

func (s *Sender) sendMore() {
	segs := s.flow.Segs()
	for s.inflight < int(s.win.Cwnd) {
		seq := -1
		retx := false
		for len(s.lostQ) > 0 {
			cand := s.lostQ[0]
			s.lostQ = s.lostQ[1:]
			if s.state[cand] == segLost {
				seq = cand
				retx = true
				break
			}
		}
		if seq < 0 {
			if s.nextNew >= segs {
				break
			}
			seq = s.nextNew
			s.nextNew++
		}
		s.transmit(seq, retx)
	}
	s.armRTO()
}

func (s *Sender) transmit(seq int, retx bool) {
	s.state[seq] = segSent
	s.inflight++
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seq), "")
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:       s.cfg.DataKind,
		Class:      s.cfg.DataClass,
		Color:      s.cfg.Color,
		ECNCapable: true,
		Dst:        s.flow.Dst.Host.NodeID(),
		Flow:       s.flow.ID,
		Seq:        uint32(seq),
		SubSeq:     uint32(seq), // plain DCTCP: sub-flow seq == flow seq
		Size:       s.flow.SegWire(seq),
		SentAt:     s.eng.Now(),
	}
	host.Send(pkt)
}

func (s *Sender) rto() sim.Time {
	r := s.cfg.MinRTO
	if s.srtt != 0 {
		if est := s.srtt + 4*s.rttvar; est > r {
			r = est
		}
	}
	// Exponential backoff on consecutive timeouts, capped at 64x.
	bo := s.rtoBackoff
	if bo > 6 {
		bo = 6
	}
	return r << bo
}

// armRTO uses a lazy deadline: rather than cancelling and recreating a
// timer per ACK (which floods the event heap), the pending timer fires and
// re-checks the true deadline derived from the last progress time.
func (s *Sender) armRTO() {
	s.lastProgress = s.eng.Now()
	if s.rtoPending || s.inflight == 0 || s.finished {
		return
	}
	s.rtoPending = true
	s.eng.After(s.rto(), s.checkRTOFn)
}

func (s *Sender) checkRTO() {
	s.rtoPending = false
	if s.finished || s.inflight == 0 {
		return
	}
	deadline := s.lastProgress + s.rto()
	if now := s.eng.Now(); now < deadline {
		s.rtoPending = true
		s.eng.At(deadline, s.checkRTOFn)
		return
	}
	s.onTimeout()
}

func (s *Sender) onTimeout() {
	if s.finished {
		return
	}
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.cumAck), "rto")
	s.rtoBackoff++
	s.win.OnTimeout()
	s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.cumAck), "timeout cwnd=%.1f", s.win.Cwnd)
	s.dupAcks = 0
	for seq := s.cumAck; seq < s.nextNew; seq++ {
		if s.state[seq] == segSent {
			s.state[seq] = segLost
			s.inflight--
			s.lostQ = append(s.lostQ, seq)
		}
	}
	s.recoverEdge = s.nextNew
	s.sendMore()
}

// Handle processes ACKs. ACK wire encoding (see package doc): SubSeq =
// cumulative in-order count, Seq = sub-flow seq that triggered the ACK,
// CE = ECN echo, SentAt = original data timestamp.
func (s *Sender) Handle(pkt *netem.Packet) {
	if pkt.Kind != s.cfg.AckKind || s.finished {
		return
	}
	cum := int(pkt.SubSeq)
	sack := int(pkt.Seq)

	// RTT sample.
	sample := s.eng.Now() - pkt.SentAt
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		d := sample - s.srtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}

	// Mark the sacked segment.
	if sack < len(s.state) && s.state[sack] == segSent {
		s.state[sack] = segAcked
		s.inflight--
	} else if sack < len(s.state) && s.state[sack] == segLost {
		// Arrived after being declared lost: count it acked; the
		// retransmit, if it happens, will be acked as a duplicate.
		s.state[sack] = segAcked
	}
	if sack > s.sackHigh {
		s.sackHigh = sack
	}

	advanced := cum > s.cumAck
	if advanced {
		for seq := s.cumAck; seq < cum && seq < len(s.state); seq++ {
			switch s.state[seq] {
			case segSent:
				s.inflight--
			}
			s.state[seq] = segAcked
		}
		s.cumAck = cum
		s.dupAcks = 0
		s.rtoBackoff = 0
	} else if sack >= s.cumAck {
		s.dupAcks++
	}

	s.win.OnAck(cum, s.nextNew, pkt.CE)

	// SACK-style loss inference: with DupThresh duplicate ACKs, everything
	// sent but unacked more than DupThresh below the highest SACK is lost.
	if s.dupAcks >= s.cfg.DupThresh {
		edge := s.sackHigh - s.cfg.DupThresh + 1
		newLoss := false
		for seq := s.cumAck; seq < edge && seq < len(s.state); seq++ {
			if s.state[seq] == segSent {
				s.state[seq] = segLost
				s.inflight--
				s.lostQ = append(s.lostQ, seq)
				newLoss = true
			}
		}
		if newLoss && s.cumAck >= s.recoverEdge {
			s.win.OnLoss(s.cumAck, s.nextNew)
			s.recoverEdge = s.nextNew
			s.cfg.Trace.Addf(trace.WindowCut, s.flow.ID, int64(s.cumAck), "dupack cwnd=%.1f", s.win.Cwnd)
		}
	}

	if s.cumAck >= s.flow.Segs() {
		s.finished = true
		return
	}
	s.sendMore()
}

// Receiver is the DCTCP receive side of one flow. It acknowledges every
// data packet and completes the flow when all bytes have arrived.
type Receiver struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	got      []bool
	cum      int
	received int
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	return &Receiver{cfg: cfg, eng: eng, flow: flow, got: make([]bool, flow.Segs())}
}

// Handle processes data packets.
func (r *Receiver) Handle(pkt *netem.Packet) {
	if pkt.Kind != r.cfg.DataKind {
		return
	}
	seq := int(pkt.SubSeq)
	if seq < len(r.got) && !r.got[seq] {
		r.got[seq] = true
		r.received++
		r.flow.RxBytes += int64(r.flow.SegPayload(seq))
		r.cfg.Stats.RxBytes.Add(int64(r.flow.SegPayload(seq)))
		for r.cum < len(r.got) && r.got[r.cum] {
			r.cum++
		}
	} else {
		r.flow.RedundantSegs++
	}
	host := r.flow.Dst.Host
	ack := host.NewPacket()
	*ack = netem.Packet{
		Kind:   r.cfg.AckKind,
		Class:  r.cfg.AckClass,
		Dst:    r.flow.Src.Host.NodeID(),
		Flow:   r.flow.ID,
		Seq:    pkt.SubSeq,
		SubSeq: uint32(r.cum),
		CE:     pkt.CE,
		Size:   netem.AckSize,
		SentAt: pkt.SentAt,
	}
	host.Send(ack)
	if r.received >= r.flow.Segs() && !r.flow.Completed {
		r.flow.Complete(r.eng.Now())
		r.cfg.Stats.Completed.Inc()
		r.cfg.Stats.FCT.Observe(int64(r.flow.FCT() / sim.Microsecond))
		r.cfg.Trace.Add(trace.FlowDone, r.flow.ID, int64(r.flow.FCT()/sim.Microsecond), "fct_us")
	}
}

// Start wires a DCTCP sender/receiver pair onto the flow's agents and
// begins transmission immediately.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	flow.Src.Register(flow.ID, s)
	flow.Dst.Register(flow.ID, r)
	cfg.Stats.Started.Inc()
	cfg.Trace.Add(trace.FlowStart, flow.ID, flow.Size, "dctcp")
	s.Begin()
	return s, r
}
