package transport

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/obs"
)

type sinkEndpoint struct{ handled int }

func (s *sinkEndpoint) Handle(*netem.Packet) { s.handled++ }

func TestAgentCountsStrayPackets(t *testing.T) {
	reg := obs.NewRegistry()
	strays := reg.Counter("transport/agent", "stray_packets")
	a := &Agent{flows: make(map[uint64]Endpoint)}
	a.ObserveStrays(strays)

	ep := &sinkEndpoint{}
	a.Register(7, ep)
	a.dispatch(&netem.Packet{Flow: 7})
	if ep.handled != 1 || a.Strays != 0 {
		t.Fatalf("registered flow: handled=%d strays=%d, want 1 0", ep.handled, a.Strays)
	}

	a.dispatch(&netem.Packet{Flow: 99}) // never registered
	a.Unregister(7)
	a.dispatch(&netem.Packet{Flow: 7}) // straggler after completion
	if a.Strays != 2 {
		t.Fatalf("Strays = %d, want 2", a.Strays)
	}
	if strays.Value() != 2 {
		t.Fatalf("registry counter = %d, want 2", strays.Value())
	}
	if ep.handled != 1 {
		t.Fatalf("endpoint saw %d packets after unregister, want 1", ep.handled)
	}
}

func TestAgentStraysWithoutObserver(t *testing.T) {
	a := &Agent{flows: make(map[uint64]Endpoint)}
	a.dispatch(&netem.Packet{Flow: 1}) // nil stray counter must no-op
	if a.Strays != 1 {
		t.Fatalf("Strays = %d, want 1", a.Strays)
	}
}
