package transport

import "flexpass/internal/obs"

// Counters aggregates a transport's event counts into the obs registry
// under "transport/<name>". Every field is a nil-safe *obs.Counter, so
// the zero Counters value (telemetry off) makes all increments free —
// transport configs embed it by value and call through unconditionally.
//
// The prober samples the counters as per-interval deltas, which yields
// the per-transport throughput and credit-waste time series the paper's
// transition plots (Fig. 6/7) are built from; FCT is recorded into a
// log-bucket histogram at completion.
type Counters struct {
	Started        *obs.Counter   // flows started
	Completed      *obs.Counter   // flows completed
	RxBytes        *obs.Counter   // payload bytes delivered in order
	Timeouts       *obs.Counter   // RTO / recovery-timer firings
	Retransmits    *obs.Counter   // segments retransmitted
	CreditsIssued  *obs.Counter   // credits/tokens/grants sent by receivers
	CreditsGranted *obs.Counter   // credits/tokens/grants received by senders
	CreditsWasted  *obs.Counter   // credits that arrived with nothing to send
	FCT            *obs.Histogram // flow completion times, microseconds
}

// NewCounters registers the standard counter set for transport name.
// With a nil registry it returns the zero value, whose increments no-op.
func NewCounters(reg *obs.Registry, name string) Counters {
	if reg == nil {
		return Counters{}
	}
	ent := "transport/" + name
	return Counters{
		Started:        reg.Counter(ent, "flows_started"),
		Completed:      reg.Counter(ent, "flows_completed"),
		RxBytes:        reg.Counter(ent, "rx_bytes"),
		Timeouts:       reg.Counter(ent, "timeouts"),
		Retransmits:    reg.Counter(ent, "retransmits"),
		CreditsIssued:  reg.Counter(ent, "credits_issued"),
		CreditsGranted: reg.Counter(ent, "credits_granted"),
		CreditsWasted:  reg.Counter(ent, "credits_wasted"),
		FCT:            reg.Histogram(ent, "fct_us"),
	}
}
