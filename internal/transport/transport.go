// Package transport provides the endpoint framework shared by all
// transports in the repository: per-host demultiplexing, flow descriptors,
// and completion accounting.
package transport

import (
	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
)

// Endpoint handles packets of one flow at one host.
type Endpoint interface {
	Handle(pkt *netem.Packet)
}

// Agent owns a host's receive path and demultiplexes packets to endpoints
// by flow ID.
type Agent struct {
	Host *netem.Host
	Eng  *sim.Engine

	// Strays counts packets that arrived for no registered flow and were
	// dropped (stragglers after completion, or a mis-wired experiment).
	Strays int64

	flows map[uint64]Endpoint
	stray *obs.Counter
}

// NewAgent installs an agent on h.
func NewAgent(eng *sim.Engine, h *netem.Host) *Agent {
	a := &Agent{Host: h, Eng: eng, flows: make(map[uint64]Endpoint)}
	h.SetHandler(a.dispatch)
	return a
}

// Register binds flow to ep.
func (a *Agent) Register(flow uint64, ep Endpoint) { a.flows[flow] = ep }

// Unregister removes the binding for flow.
func (a *Agent) Unregister(flow uint64) { delete(a.flows, flow) }

// ObserveStrays bills this agent's stray-packet drops to c (typically one
// run-wide counter shared across agents; nil detaches).
func (a *Agent) ObserveStrays(c *obs.Counter) { a.stray = c }

func (a *Agent) dispatch(pkt *netem.Packet) {
	if ep, ok := a.flows[pkt.Flow]; ok {
		ep.Handle(pkt)
		return
	}
	// Packets for unknown flows (e.g. stragglers after completion) are
	// dropped, as a real stack would RST/ignore — but counted, so a
	// mis-wired experiment is visible in telemetry.
	a.Strays++
	a.stray.Inc()
}

// Flow describes one application flow and accumulates its statistics.
// Transports share this struct: the sender updates the send-side counters
// and the receiver the receive side.
type Flow struct {
	ID    uint64
	Src   *Agent
	Dst   *Agent
	Size  int64 // application bytes
	Start sim.Time

	// Transport labels the transport ("dctcp", "expresspass", "flexpass",
	// ...); Legacy tells legacy traffic apart from upgraded traffic in the
	// deployment studies.
	Transport string
	Legacy    bool

	// Live receive-side counters (sampled for throughput time series).
	RxBytes    int64
	RxBytesPro int64 // bytes delivered via the proactive sub-flow
	RxBytesRe  int64 // bytes delivered via the reactive sub-flow

	// Completion.
	Completed  bool
	Done       sim.Time
	OnComplete func(*Flow)

	// Send-side counters.
	Timeouts       int   // RTO firings
	Retransmits    int   // segments retransmitted after loss detection
	RedundantSegs  int   // duplicate segments discarded at the receiver
	ProRetx        int   // FlexPass proactive retransmissions sent
	MaxReorderB    int64 // receiver reordering-buffer high-water mark, bytes
	CreditsWasted  int   // credits that arrived with nothing to send
	CreditsGranted int   // credits received
}

// Segs returns the number of MTU segments the flow occupies.
func (f *Flow) Segs() int {
	n := int((f.Size + netem.DataPayload - 1) / netem.DataPayload)
	if n == 0 {
		n = 1
	}
	return n
}

// SegPayload returns the application bytes of segment seq.
func (f *Flow) SegPayload(seq int) int {
	last := f.Segs() - 1
	if seq < last {
		return netem.DataPayload
	}
	rem := int(f.Size - int64(last)*netem.DataPayload)
	if rem <= 0 {
		rem = netem.DataPayload
	}
	return rem
}

// SegWire returns the wire size of segment seq.
func (f *Flow) SegWire(seq int) int { return netem.FrameBytes(f.SegPayload(seq)) }

// Complete marks the flow done at time t (idempotent) and fires the
// completion callback.
func (f *Flow) Complete(t sim.Time) {
	if f.Completed {
		return
	}
	f.Completed = true
	f.Done = t
	if f.OnComplete != nil {
		f.OnComplete(f)
	}
}

// FCT returns the flow completion time, or -1 if not completed.
func (f *Flow) FCT() sim.Time {
	if !f.Completed {
		return -1
	}
	return f.Done - f.Start
}
