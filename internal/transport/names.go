package transport

// Registry-owned scheme and transport-label names. Every package that
// composes transports (harness scenarios, the testbed façade, cmd tools)
// refers to these constants instead of scattering string literals.
//
// A name is both a registry key (RegisterScheme/NewScheme) and, for the
// plain transports, the Flow.Transport label the scheme stamps on the
// flows it starts. The deployment schemes naive/owf label their flows
// "expresspass" (they are ExpressPass under different queue profiles and
// credit rates), and the flexpass ablations label theirs "flexpass".
const (
	// Plain transports (registry name == flow label).
	SchemeDCTCP       = "dctcp"
	SchemeExpressPass = "expresspass"
	SchemeLayering    = "layering"
	SchemeFlexPass    = "flexpass"
	SchemeHoma        = "homa"
	SchemePHost       = "phost"

	// Deployment schemes of §6.2 (compositions of the above).
	SchemeNaive        = "naive"         // ExpressPass sharing the legacy queue, full-rate credits
	SchemeOWF          = "owf"           // oracle weighted fair queueing
	SchemeFlexPassAltQ = "flexpass-altq" // §4.3 ablation: reactive sub-flow in Q2
	SchemeFlexPassRC3  = "flexpass-rc3"  // §4.3 ablation: RC3-style flow splitting
)

// Scheme option keys understood by the built-in factories (passed as the
// SchemeEnv.Options map; harness.Scenario.SchemeOptions feeds it).
const (
	// OptDisableProRetx ("true") ablates FlexPass's proactive
	// retransmission (§4.2).
	OptDisableProRetx = "disable_proretx"
	// OptReactive selects FlexPass's reactive-sub-flow congestion control
	// ("dctcp" — the default — or "reno").
	OptReactive = "reactive"
	// OptPreCreditOnly ("true") restricts FlexPass's reactive sub-flow to
	// the first RTT (Aeolus-style, §7).
	OptPreCreditOnly = "pre_credit_only"
)
