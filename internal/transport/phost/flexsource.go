package phost

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
)

// FlexSource adapts pHost token arbitration to FlexPass's CreditSource
// interface (the paper's §4.3: "FlexPass can also apply other credit
// allocation algorithms, e.g., pHost [...] in non-blocking networks").
// The receiver-side arbiter paces tokens at the downlink rate and
// round-robins across its flows; the tokens travel in the credit queue
// (Class 0), so the fabric's w_q-scaled credit rate limiters still bound
// the proactive sub-flow exactly as with ExpressPass — which is what
// keeps legacy co-existence intact under an allocator that has no rate
// feedback of its own.
type FlexSource struct {
	cfg  Config
	eng  *sim.Engine
	arb  *Arbiter
	flow *transport.Flow

	seq         uint32
	echoCount   int
	echoHi      uint32
	lastArrival sim.Time
	active      bool
}

// NewFlexSource builds a CreditSource for flow backed by the receiver
// host's arbiter. Pass it to flexpass.Config.NewCreditSource.
func NewFlexSource(eng *sim.Engine, arb *Arbiter, flow *transport.Flow, cfg Config) *FlexSource {
	cfg.TokenClass = netem.ClassCredit // ride the rate-limited credit queue
	return &FlexSource{cfg: cfg, eng: eng, arb: arb, flow: flow}
}

// Start implements flexpass.CreditSource.
func (s *FlexSource) Start() {
	if s.active {
		return
	}
	s.active = true
	s.lastArrival = s.eng.Now()
	s.arb.register(s)
}

// Stop implements flexpass.CreditSource.
func (s *FlexSource) Stop() { s.active = false }

// OnData implements flexpass.CreditSource: echo-based delivery
// accounting, used for the outstanding-token bound.
func (s *FlexSource) OnData(echo uint32) {
	s.echoCount++
	if echo+1 > s.echoHi {
		s.echoHi = echo + 1
	}
	s.lastArrival = s.eng.Now()
	s.arb.wake()
}

// completed implements participant.
func (s *FlexSource) completed() bool { return s.flow.Completed || !s.active }

// demand implements participant: tokens flow while the transfer is
// incomplete and outstanding tokens stay under the cap; a silent period
// expires the stuck allowance (token expiry).
func (s *FlexSource) demand() bool {
	if s.completed() {
		return false
	}
	outstanding := int(s.seq) - s.echoCount
	if outstanding < s.cfg.OutstandingCap {
		return true
	}
	if s.eng.Now()-s.lastArrival > s.cfg.TokenTimeout {
		s.echoCount = int(s.seq) // expire
		return true
	}
	return false
}

// sendToken implements participant.
func (s *FlexSource) sendToken() {
	s.cfg.Stats.CreditsIssued.Inc()
	s.cfg.Trace.Add(trace.CreditIssue, s.flow.ID, int64(s.seq), "token")
	host := s.flow.Dst.Host
	tok := host.NewPacket()
	*tok = netem.Packet{
		Kind:   netem.KindCredit,
		Class:  s.cfg.TokenClass,
		Dst:    s.flow.Src.Host.NodeID(),
		Flow:   s.flow.ID,
		SubSeq: s.seq,
		Size:   netem.CreditSize,
		SentAt: s.eng.Now(),
	}
	host.Send(tok)
	s.seq++
}
