// Package phost implements a simplified pHost (Gao et al., CoNEXT 2015)
// — the alternative receiver-driven credit allocator the paper's §4.3
// names as a drop-in for FlexPass's proactive sub-flow in non-blocking
// fabrics. Unlike ExpressPass, pHost does not rate-limit credits inside
// the network: each receiver owns its downlink and emits tokens at the
// downlink rate, round-robin across its active flows (the real system
// schedules by SRPT and downgrades unresponsive sources; round-robin
// preserves the behaviour that matters here: edge-only congestion
// control with no switch support).
//
// Modeled: free first-RTT tokens (unscheduled data), per-receiver token
// arbitration, outstanding-token caps, per-packet ACKs, token-clocked
// loss recovery. Omitted: SRPT ordering, multi-priority spraying.
package phost

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
	"flexpass/internal/units"
)

// Config parameterizes a pHost connection.
type Config struct {
	DataClass  netem.Class
	AckClass   netem.Class
	TokenClass netem.Class
	// FreeSegs is the unscheduled first-RTT allowance (≈ one BDP).
	FreeSegs int
	// OutstandingCap bounds tokens-in-flight per flow (token leakage from
	// lost data stops the arbiter wasting its downlink).
	OutstandingCap int
	// TokenTimeout expires outstanding tokens when no data has arrived
	// for this long, replenishing the allowance (pHost's token expiry:
	// lost data must not permanently consume the flow's token budget).
	TokenTimeout sim.Time
	// MinRTO is the recovery timer.
	MinRTO sim.Time

	// Trace, when non-nil, records lifecycle/retransmit/timeout/waste events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// DefaultConfig returns a reasonable setup for the given fabric.
func DefaultConfig() Config {
	return Config{
		DataClass:      netem.ClassFlex,
		AckClass:       netem.ClassFlex,
		TokenClass:     netem.ClassFlex,
		FreeSegs:       8,
		OutstandingCap: 16,
		TokenTimeout:   500 * sim.Microsecond,
		MinRTO:         4 * sim.Millisecond,
	}
}

// participant is a flow taking part in a receiver's token arbitration.
type participant interface {
	demand() bool    // wants a token now
	sendToken()      // emit one token toward the sender
	completed() bool // flow finished (drop from the rotation)
}

// Arbiter is the per-receiver token scheduler: one token per segment
// time at the downlink rate, round-robin over flows with demand.
type Arbiter struct {
	eng  *sim.Engine
	host *netem.Host
	rate units.Rate

	flows   []participant
	rr      int
	ticking bool

	// poll is the idle retry interval: when every flow is at its
	// outstanding-token cap the arbiter re-checks at this period so token
	// expiry can fire even with no arrivals.
	poll sim.Time

	tickFn func() // pre-bound tick: one closure per arbiter, not per token

	// TokensSent counts all tokens emitted (stats).
	TokensSent int64
}

// NewArbiter builds the token scheduler for a receiver host.
func NewArbiter(eng *sim.Engine, host *netem.Host, downlink units.Rate) *Arbiter {
	a := &Arbiter{eng: eng, host: host, rate: downlink, poll: 200 * sim.Microsecond}
	a.tickFn = a.tick
	return a
}

// register adds a flow to the rotation (idempotent).
func (a *Arbiter) register(r participant) {
	for _, f := range a.flows {
		if f == r {
			return
		}
	}
	a.flows = append(a.flows, r)
	a.wake()
}

// wake starts the token clock if any flow has demand; if flows are alive
// but capped, it polls slowly so token expiry can replenish them.
func (a *Arbiter) wake() {
	if a.ticking {
		return
	}
	switch {
	case a.anyDemand():
		a.ticking = true
		a.eng.After(a.rate.TxTime(netem.MTUWire), a.tickFn)
	case a.anyIncomplete():
		a.ticking = true
		a.eng.After(a.poll, a.tickFn)
	}
}

func (a *Arbiter) anyDemand() bool {
	for _, f := range a.flows {
		if f.demand() {
			return true
		}
	}
	return false
}

func (a *Arbiter) anyIncomplete() bool {
	for _, f := range a.flows {
		if !f.completed() {
			return true
		}
	}
	return false
}

func (a *Arbiter) tick() {
	a.ticking = false
	n := len(a.flows)
	for i := 0; i < n; i++ {
		r := a.flows[a.rr]
		a.rr = (a.rr + 1) % n
		if r.demand() {
			r.sendToken()
			a.TokensSent++
			break
		}
	}
	// Compact completed flows occasionally.
	if n > 16 {
		alive := a.flows[:0]
		for _, f := range a.flows {
			if !f.completed() {
				alive = append(alive, f)
			}
		}
		a.flows = alive
		if a.rr >= len(a.flows) {
			a.rr = 0
		}
	}
	a.wake()
}

// Sender is the pHost send side: free first-RTT segments, then
// token-clocked transmission.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	trk core.SegTracker
	rec *core.RecoveryTimer

	finished bool
}

// NewSender builds the send side.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := &Sender{cfg: cfg, eng: eng, flow: flow, trk: core.NewSegTracker(flow.Segs())}
	s.rec = core.NewRecoveryTimer(eng, core.RecoveryConfig{
		BaseRTO:  func() sim.Time { return cfg.MinRTO },
		Expire:   s.onRecoveryTimeout,
		Idle:     func() bool { return s.finished },
		MaxShift: 4,
	})
	return s
}

// Begin fires the free first-RTT window (which doubles as the request).
func (s *Sender) Begin() {
	free := s.cfg.FreeSegs
	if free > len(s.trk.State) {
		free = len(s.trk.State)
	}
	for i := 0; i < free; i++ {
		s.transmit(s.trk.PickNew(), false)
	}
	if free == 0 {
		// Zero-length edge: still announce ourselves.
		s.transmit(0, false)
	}
	s.rec.Touch()
}

// Finished reports send-side completion.
func (s *Sender) Finished() bool { return s.finished }

func (s *Sender) transmit(seq int, retx bool) {
	s.trk.MarkSent(seq)
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seq), "")
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindProData,
		Class:  s.cfg.DataClass,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Seq:    uint32(seq),
		SubSeq: uint32(seq),
		Size:   s.flow.SegWire(seq),
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
}

// onRecoveryTimeout re-announces the flow with the oldest unacked segment
// (tokens stopped coming: either our data or the token stream was lost).
func (s *Sender) onRecoveryTimeout() {
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.trk.CumAck), "re-announce")
	s.rec.Bump()
	if seq := s.trk.OldestUnacked(); seq >= 0 {
		s.transmit(seq, true)
	}
	s.rec.Touch()
}

// Handle processes tokens and ACKs.
func (s *Sender) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCredit: // token
		if s.finished {
			return
		}
		s.flow.CreditsGranted++
		s.cfg.Stats.CreditsGranted.Inc()
		seq, retx := s.trk.Pick()
		if seq < 0 {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.trk.CumAck), "no data")
			return
		}
		s.transmit(seq, retx)
		s.cfg.Trace.Add(trace.CreditUse, s.flow.ID, int64(seq), "token")
		s.rec.Touch()
	case netem.KindAckPro:
		s.onAck(pkt)
	}
}

func (s *Sender) onAck(pkt *netem.Packet) {
	if s.finished {
		return
	}
	s.rec.Reset()
	s.trk.OnAck(int(pkt.SubSeq), int(pkt.Seq), 3)
	if s.trk.Done() {
		s.finished = true
		return
	}
	s.rec.Touch()
}

// Receiver acknowledges data and participates in its host's token
// arbitration.
type Receiver struct {
	cfg     Config
	eng     *sim.Engine
	flow    *transport.Flow
	arbiter *Arbiter
	asm     core.Reassembly

	tokensSent  int
	lastArrival sim.Time
}

// NewReceiver builds the receive side bound to the host's arbiter.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, arb *Arbiter, cfg Config) *Receiver {
	return &Receiver{cfg: cfg, eng: eng, flow: flow, arbiter: arb, asm: core.NewReassembly(flow.Segs())}
}

// completed implements participant.
func (r *Receiver) completed() bool { return r.flow.Completed }

// demand reports whether this flow should receive more tokens: data still
// missing and outstanding tokens under the cap. Tokens whose data never
// arrived expire after TokenTimeout of silence and are re-issued.
func (r *Receiver) demand() bool {
	if r.flow.Completed || r.asm.Full() {
		return false
	}
	tokened := r.asm.Received - r.cfg.FreeSegs // free segs arrive untokened
	if tokened < 0 {
		tokened = 0
	}
	outstanding := r.tokensSent - tokened
	if outstanding < r.cfg.OutstandingCap {
		return true
	}
	if r.eng.Now()-r.lastArrival > r.cfg.TokenTimeout {
		// Expire the stuck allowance: the data for those tokens is gone.
		r.tokensSent = tokened
		return true
	}
	return false
}

func (r *Receiver) sendToken() {
	r.tokensSent++
	r.cfg.Stats.CreditsIssued.Inc()
	r.cfg.Trace.Add(trace.CreditIssue, r.flow.ID, int64(r.tokensSent), "token")
	host := r.flow.Dst.Host
	tok := host.NewPacket()
	*tok = netem.Packet{
		Kind:   netem.KindCredit,
		Class:  r.cfg.TokenClass,
		Dst:    r.flow.Src.Host.NodeID(),
		Flow:   r.flow.ID,
		Size:   netem.CtrlSize,
		SentAt: r.eng.Now(),
	}
	host.Send(tok)
}

// Handle processes data packets.
func (r *Receiver) Handle(pkt *netem.Packet) {
	if pkt.Kind != netem.KindProData {
		return
	}
	r.lastArrival = r.eng.Now()
	r.arbiter.register(r)
	r.asm.Deliver(r.flow, r.cfg.Stats, int(pkt.SubSeq))
	core.SendAck(r.flow, netem.KindAckPro, r.cfg.AckClass, pkt, uint32(r.asm.Cum), false)
	if r.asm.Full() && !r.flow.Completed {
		core.Complete(r.eng, r.flow, r.cfg.Stats, r.cfg.Trace)
		return
	}
	r.arbiter.wake()
}

// Start wires a pHost pair onto the flow using the receiver host's
// arbiter and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, arb *Arbiter, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, arb, cfg)
	core.StartPair(flow, s, r, cfg.Stats, cfg.Trace, transport.SchemePHost)
	s.Begin()
	return s, r
}

// StartSender wires only the send side (sharded runs start the two
// endpoints on their own shard engines) and begins the flow with its RTS.
func StartSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := NewSender(eng, flow, cfg)
	core.StartSenderSide(flow, s, cfg.Stats, cfg.Trace, transport.SchemePHost)
	s.Begin()
	return s
}

// StartReceiver wires only the receive side onto the destination host's
// arbiter (which lives on the destination shard).
func StartReceiver(eng *sim.Engine, flow *transport.Flow, arb *Arbiter, cfg Config) *Receiver {
	r := NewReceiver(eng, flow, arb, cfg)
	core.StartReceiverSide(flow, r)
	return r
}
