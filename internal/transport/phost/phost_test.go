package phost

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
)

const gig = units.Gbps

func fabric(hosts int) (*sim.Engine, *topo.Fabric, []*transport.Agent, []*Arbiter) {
	eng := sim.NewEngine(1)
	f := topo.SingleSwitch(eng, hosts, topo.Params{
		LinkRate:  10 * gig,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.FlexPassProfile(topo.Spec{}),
	})
	ag := make([]*transport.Agent, hosts)
	arbs := make([]*Arbiter, hosts)
	for i := range ag {
		ag[i] = transport.NewAgent(eng, f.Net.Host(i))
		arbs[i] = NewArbiter(eng, f.Net.Host(i), 10*gig)
	}
	return eng, f, ag, arbs
}

func TestSingleFlowCompletes(t *testing.T) {
	eng, _, ag, arbs := fabric(2)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 5_000_000, Transport: "phost"}
	Start(eng, fl, arbs[1], DefaultConfig())
	eng.Run(100 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	rate := units.RateOf(fl.RxBytes, fl.FCT())
	if rate < 7*gig {
		t.Fatalf("goodput %v, want near line rate", rate)
	}
	if fl.Timeouts != 0 {
		t.Fatalf("timeouts = %d", fl.Timeouts)
	}
}

func TestTinyFlowRidesFreeWindow(t *testing.T) {
	eng, _, ag, arbs := fabric(2)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 4000, Transport: "phost"}
	Start(eng, fl, arbs[1], DefaultConfig())
	eng.Run(10 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	// 3 segments ≤ FreeSegs: one-way latency, no token round trip.
	if fl.FCT() > 12*sim.Microsecond {
		t.Fatalf("FCT %v, want first-RTT completion", fl.FCT())
	}
	// The whole flow fits in the free window; the arbiter may slip in a
	// couple of surplus tokens before the last free segments land, but
	// not more.
	if fl.CreditsGranted > 3 {
		t.Fatalf("tokens granted = %d, want ~0 for a free-window flow", fl.CreditsGranted)
	}
}

func TestArbiterSharesDownlinkRoundRobin(t *testing.T) {
	eng, _, ag, arbs := fabric(3)
	f1 := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[2], Size: 20_000_000, Transport: "phost"}
	f2 := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 20_000_000, Transport: "phost"}
	cfg := DefaultConfig()
	Start(eng, f1, arbs[2], cfg)
	Start(eng, f2, arbs[2], cfg)
	eng.Run(20 * sim.Millisecond)
	tot := f1.RxBytes + f2.RxBytes
	if tot == 0 {
		t.Fatal("no progress")
	}
	share := float64(f1.RxBytes) / float64(tot)
	if share < 0.45 || share > 0.55 {
		t.Fatalf("flow 1 share %.3f, want ~0.5 (round robin)", share)
	}
	if units.RateOf(tot, 20*sim.Millisecond) < 7*gig {
		t.Fatalf("downlink underutilized: %v", units.RateOf(tot, 20*sim.Millisecond))
	}
}

func TestOutstandingCapStopsTokenLeak(t *testing.T) {
	// Drop every data packet toward the receiver: tokens must stop at the
	// cap instead of flooding forever.
	eng, fab, ag, arbs := fabric(2)
	fab.Net.Switches[0].Ports()[1].SetLossRate(1.0)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 1_000_000, Transport: "phost"}
	Start(eng, fl, arbs[1], DefaultConfig())
	eng.Run(20 * sim.Millisecond)
	if fl.Completed {
		t.Fatal("flow cannot complete over a dead link")
	}
	if arbs[1].TokensSent > 0 {
		// Tokens only flow once data announces the flow; with 100% loss
		// nothing arrives, so no tokens at all.
		t.Fatalf("arbiter sent %d tokens for an unannounced flow", arbs[1].TokensSent)
	}
}

func TestRecoveryUnderPartialLoss(t *testing.T) {
	eng, fab, ag, arbs := fabric(2)
	fab.Net.Switches[0].Ports()[1].SetLossRate(0.02)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 2_000_000, Transport: "phost"}
	Start(eng, fl, arbs[1], DefaultConfig())
	eng.Run(sim.Second)
	if !fl.Completed {
		t.Fatal("flow did not recover under 2% loss")
	}
	if fl.Retransmits == 0 {
		t.Fatal("expected retransmissions")
	}
}

func TestManyFlowsAllComplete(t *testing.T) {
	eng, _, ag, arbs := fabric(9)
	var flows []*transport.Flow
	cfg := DefaultConfig()
	for i := 0; i < 40; i++ {
		fl := &transport.Flow{ID: uint64(i + 1), Src: ag[i%8], Dst: ag[8], Size: 64_000, Transport: "phost"}
		flows = append(flows, fl)
		Start(eng, fl, arbs[8], cfg)
	}
	eng.Run(500 * sim.Millisecond)
	for _, fl := range flows {
		if !fl.Completed {
			t.Fatal("incast flow incomplete")
		}
	}
}
