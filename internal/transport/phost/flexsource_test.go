package phost

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/transport/expresspass"
	"flexpass/internal/transport/flexpass"
	"flexpass/internal/units"
)

// flexOverPHost wires a FlexPass flow whose proactive sub-flow is driven
// by pHost token arbitration instead of the ExpressPass pacer.
func flexOverPHost(eng *sim.Engine, fl *transport.Flow, arb *Arbiter, rate units.Rate) {
	cfg := flexpass.DefaultConfig(expresspass.DefaultPacerConfig(netem.CreditRateFor(rate, 0.5)))
	cfg.NewCreditSource = func(e *sim.Engine, f *transport.Flow) flexpass.CreditSource {
		return NewFlexSource(e, arb, f, DefaultConfig())
	}
	flexpass.Start(eng, fl, cfg)
}

func TestFlexPassOverPHostCompletes(t *testing.T) {
	eng, _, ag, arbs := fabric(2)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 5_000_000, Transport: "flexpass+phost"}
	flexOverPHost(eng, fl, arbs[1], 10*gig)
	eng.Run(100 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	if fl.Timeouts != 0 {
		t.Fatalf("timeouts = %d", fl.Timeouts)
	}
	// Both sub-flows must contribute: tokens through the w_q-limited Q0
	// cap the proactive half, the reactive half grabs the rest.
	if fl.RxBytesPro == 0 || fl.RxBytesRe == 0 {
		t.Fatalf("sub-flow split pro=%d re=%d; both must be active", fl.RxBytesPro, fl.RxBytesRe)
	}
	rate := units.RateOf(fl.RxBytes, fl.FCT())
	if rate < 7*gig {
		t.Fatalf("goodput %v, want near line rate", rate)
	}
}

func TestFlexPassOverPHostCoexistsWithDCTCP(t *testing.T) {
	// The co-existence guarantee must survive the allocator swap: the
	// credit-queue rate limiter, not the allocator's own feedback, is
	// what bounds the proactive sub-flow.
	eng, _, ag, arbs := fabric(3)
	fp := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[2], Size: 1 << 30, Transport: "flexpass+phost"}
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 30, Transport: "dctcp", Legacy: true}
	flexOverPHost(eng, fp, arbs[2], 10*gig)
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	eng.Run(60 * sim.Millisecond)
	tot := fp.RxBytes + dc.RxBytes
	dcShare := float64(dc.RxBytes) / float64(tot)
	if dcShare < 0.35 || dcShare > 0.65 {
		t.Fatalf("DCTCP share %.3f under FlexPass-over-pHost, want ~0.5", dcShare)
	}
}

func TestFlexPassOverPHostFirstRTT(t *testing.T) {
	eng, _, ag, arbs := fabric(2)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 1460, Transport: "flexpass+phost"}
	flexOverPHost(eng, fl, arbs[1], 10*gig)
	eng.Run(10 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	if fl.FCT() > 12*sim.Microsecond {
		t.Fatalf("FCT %v; the reactive first RTT must still apply", fl.FCT())
	}
}
