package transport

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
)

func TestSegMath(t *testing.T) {
	cases := []struct {
		size     int64
		segs     int
		lastPay  int
		lastWire int
	}{
		{1, 1, 1, 84},         // minimum frame
		{1460, 1, 1460, 1538}, // exactly one MTU
		{1461, 2, 1, 84},      // one byte spills
		{2920, 2, 1460, 1538}, // two full
		{100_000, 69, 100_000 - 68*1460, (100_000 - 68*1460) + 78},
		{0, 1, 1460, 1538}, // zero-size clamps to one segment
	}
	for _, c := range cases {
		f := &Flow{Size: c.size}
		if got := f.Segs(); got != c.segs {
			t.Errorf("Segs(%d) = %d, want %d", c.size, got, c.segs)
		}
		last := f.Segs() - 1
		if got := f.SegPayload(last); got != c.lastPay {
			t.Errorf("SegPayload(last) for %d = %d, want %d", c.size, got, c.lastPay)
		}
		if got := f.SegWire(last); got != c.lastWire {
			t.Errorf("SegWire(last) for %d = %d, want %d", c.size, got, c.lastWire)
		}
	}
}

// Property: segment payloads sum exactly to the flow size.
func TestSegPayloadConservation(t *testing.T) {
	f := func(raw uint32) bool {
		size := int64(raw%10_000_000) + 1
		fl := &Flow{Size: size}
		var sum int64
		for i := 0; i < fl.Segs(); i++ {
			p := fl.SegPayload(i)
			if p <= 0 || p > netem.DataPayload {
				return false
			}
			sum += int64(p)
		}
		return sum == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleteIdempotent(t *testing.T) {
	n := 0
	f := &Flow{Start: sim.Millisecond, OnComplete: func(*Flow) { n++ }}
	f.Complete(3 * sim.Millisecond)
	f.Complete(5 * sim.Millisecond)
	if n != 1 {
		t.Fatalf("OnComplete fired %d times", n)
	}
	if f.FCT() != 2*sim.Millisecond {
		t.Fatalf("FCT = %v", f.FCT())
	}
}

func TestFCTBeforeCompletion(t *testing.T) {
	f := &Flow{}
	if f.FCT() != -1 {
		t.Fatal("incomplete flow must report FCT -1")
	}
}

func TestAgentDispatch(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := netem.NewPort(eng, "nic", 1000, 0, netem.PortConfig{Queues: []netem.QueueConfig{{}}}, nil)
	h := netem.NewHost(eng, 1, "h", nic, 0)
	a := NewAgent(eng, h)
	got := 0
	a.Register(7, handlerFunc(func(p *netem.Packet) { got++ }))
	h.Receive(&netem.Packet{Flow: 7})
	h.Receive(&netem.Packet{Flow: 8}) // unknown: dropped silently
	if got != 1 {
		t.Fatalf("dispatched %d, want 1", got)
	}
	a.Unregister(7)
	h.Receive(&netem.Packet{Flow: 7})
	if got != 1 {
		t.Fatal("dispatch after unregister")
	}
}

type handlerFunc func(*netem.Packet)

func (f handlerFunc) Handle(p *netem.Packet) { f(p) }
