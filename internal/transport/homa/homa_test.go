package homa

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/units"
)

const gig = units.Gbps

func homaFabric(nPairs int) (*sim.Engine, *topo.Fabric, []*transport.Agent) {
	eng := sim.NewEngine(1)
	f := topo.Dumbbell(eng, nPairs, nPairs, 10*gig, topo.Params{
		LinkRate:  10 * gig,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.HomaProfile(100 * units.KB),
	})
	agents := make([]*transport.Agent, len(f.Net.Hosts))
	for i := range agents {
		agents[i] = transport.NewAgent(eng, f.Net.Host(i))
	}
	return eng, f, agents
}

func TestSingleHomaFlowNearLineRate(t *testing.T) {
	eng, _, ag := homaFabric(1)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 1 << 30, Transport: "homa"}
	Start(eng, fl, DefaultConfig(10*gig))
	eng.Run(30 * sim.Millisecond)
	rate := units.RateOf(fl.RxBytes, 30*sim.Millisecond)
	if rate < 8*gig {
		t.Fatalf("goodput %v, want >8Gbps", rate)
	}
}

func TestFiniteHomaFlowCompletes(t *testing.T) {
	eng, _, ag := homaFabric(1)
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 1_000_000, Transport: "homa"}
	Start(eng, fl, DefaultConfig(10*gig))
	eng.Run(30 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("finite flow on a clean path did not complete")
	}
}

func TestManyHomaFlowsStarveDCTCP(t *testing.T) {
	// Fig 1(b): 16 HOMA + 16 DCTCP long flows over a 10Gbps bottleneck;
	// DCTCP collapses to a small share while HOMA grabs the link.
	eng, _, ag := homaFabric(32)
	// Left hosts 0..31 (after the two switches, hosts index 0..63:
	// fabric built lefts first). Pair i: left i -> right i (host 32+i).
	var homaFlows, dcFlows []*transport.Flow
	id := uint64(1)
	for i := 0; i < 16; i++ {
		fl := &transport.Flow{ID: id, Src: ag[i], Dst: ag[32+i], Size: 1 << 30, Transport: "homa"}
		homaFlows = append(homaFlows, fl)
		Start(eng, fl, DefaultConfig(10*gig))
		id++
	}
	for i := 16; i < 32; i++ {
		fl := &transport.Flow{ID: id, Src: ag[i], Dst: ag[32+i], Size: 1 << 30, Transport: "dctcp", Legacy: true}
		dcFlows = append(dcFlows, fl)
		dctcp.Start(eng, fl, dctcp.LegacyConfig())
		id++
	}
	eng.Run(60 * sim.Millisecond)
	var homaB, dcB int64
	for _, fl := range homaFlows {
		homaB += fl.RxBytes
	}
	for _, fl := range dcFlows {
		dcB += fl.RxBytes
	}
	tot := homaB + dcB
	if tot == 0 {
		t.Fatal("no progress")
	}
	dcShare := float64(dcB) / float64(tot)
	if dcShare > 0.3 {
		t.Fatalf("DCTCP share %.3f; Homa over-granting should starve it", dcShare)
	}
}

func TestMessageBoundaryUnscheduledBursts(t *testing.T) {
	// Each message boundary fires a fresh unscheduled burst into the top
	// priority queue — the collision mechanism behind Fig 1(b).
	eng, fab, ag := homaFabric(1)
	cfg := DefaultConfig(10 * gig)
	cfg.MsgSegs = 50 // small messages: frequent boundaries
	fl := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[1], Size: 1_000_000, Transport: "homa"}
	Start(eng, fl, cfg)
	eng.Run(50 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	// Unscheduled data rides class 0; with ~14 messages of 50 segs the
	// P0 queue must have carried several bursts (8 unscheduled each).
	var p0 int64
	for _, sw := range fab.Net.Switches {
		for _, port := range sw.Ports() {
			p0 += port.QueueStats(0).EnqueuedB
		}
	}
	if p0 < 13*8*1538 {
		t.Fatalf("P0 carried only %dB; message-boundary bursts missing", p0)
	}
}
