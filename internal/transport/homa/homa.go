// Package homa implements a deliberately simplified HOMA-style
// receiver-driven transport, sufficient for the paper's Fig 1(b)
// motivation: multiple receiver-driven flows whose receivers grant at the
// full (down)link capacity — with no awareness of co-existing reactive
// traffic — starve DCTCP flows sharing the bottleneck.
//
// Modeled features: unscheduled first-BDP data in the top priority queue
// (which Fig 1(b) shares with the DCTCP flows), grant-clocked scheduled
// data in lower priority queues, blind full-rate granting, 8 switch
// priorities, per-message unscheduled bursts for message streams.
// Omitted (irrelevant to the figure): SRPT priority adaptation,
// retransmission, incast overcommitment control.
package homa

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
	"flexpass/internal/units"
)

// Config parameterizes a Homa-lite connection.
type Config struct {
	// UnschedSegs is the number of unscheduled segments sent blindly at
	// the start of every message (≈ one BDP).
	UnschedSegs int
	// MsgSegs is the message size in segments for message streams; a new
	// message begins as soon as the previous one is fully transmitted.
	MsgSegs int
	// GrantRate is the rate at which the receiver grants (the full
	// downlink capacity — Homa assumes it owns it).
	GrantRate units.Rate
	// UnschedClass is the priority queue of unscheduled data (0 = top,
	// shared with DCTCP in Fig 1b).
	UnschedClass netem.Class
	// SchedClass is the priority queue of granted data.
	SchedClass netem.Class
	// GrantClass is the priority queue of grant packets.
	GrantClass netem.Class

	// Trace, when non-nil, records flow lifecycle events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// DefaultConfig returns the Fig 1(b) setup for the given bottleneck rate.
func DefaultConfig(line units.Rate) Config {
	return Config{
		UnschedSegs:  8,
		MsgSegs:      680, // ≈1MB messages
		GrantRate:    line,
		UnschedClass: 0,
		SchedClass:   2,
		GrantClass:   0,
	}
}

// Sender transmits unscheduled bursts at message starts and one scheduled
// segment per grant.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	next    int // next segment to send
	msgSent int // segments of the current message already sent
}

// NewSender builds the send side; Begin fires the first unscheduled burst.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	return &Sender{cfg: cfg, eng: eng, flow: flow}
}

// Begin sends the first message's unscheduled burst.
func (s *Sender) Begin() { s.burst() }

// burst sends the unscheduled prefix of the current message.
func (s *Sender) burst() {
	n := s.cfg.UnschedSegs
	if n > s.cfg.MsgSegs {
		n = s.cfg.MsgSegs
	}
	for i := 0; i < n && s.next < s.flow.Segs(); i++ {
		s.sendSeg(s.cfg.UnschedClass)
	}
}

func (s *Sender) sendSeg(class netem.Class) {
	seq := s.next
	s.next++
	s.msgSent++
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindHomaData,
		Class:  class,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Seq:    uint32(seq),
		SubSeq: uint32(seq),
		Size:   s.flow.SegWire(seq),
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
	if s.msgSent >= s.cfg.MsgSegs {
		// Message boundary: the next message starts with a fresh
		// unscheduled burst.
		s.msgSent = 0
		if s.next < s.flow.Segs() {
			s.burst()
		}
	}
}

// Handle processes grants: each grant clocks out one scheduled segment.
func (s *Sender) Handle(pkt *netem.Packet) {
	if pkt.Kind != netem.KindHomaGrant {
		return
	}
	s.flow.CreditsGranted++
	s.cfg.Stats.CreditsGranted.Inc()
	if s.next < s.flow.Segs() {
		s.cfg.Trace.Add(trace.CreditUse, s.flow.ID, int64(s.next), "grant")
		s.sendSeg(s.cfg.SchedClass)
	} else {
		s.flow.CreditsWasted++
		s.cfg.Stats.CreditsWasted.Inc()
	}
}

// Receiver counts arrivals and grants blindly at the configured rate.
// There is no retransmission: Homa-lite is a throughput baseline.
type Receiver struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	granting bool
	timer    sim.Timer
	grantFn  func() // pre-bound grantTick: one closure per receiver, not per grant
	received int
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	r := &Receiver{cfg: cfg, eng: eng, flow: flow}
	r.grantFn = r.grantTick
	return r
}

// Handle processes data arrivals and starts the grant clock.
func (r *Receiver) Handle(pkt *netem.Packet) {
	if pkt.Kind != netem.KindHomaData {
		return
	}
	r.received++
	r.flow.RxBytes += int64(r.flow.SegPayload(int(pkt.Seq)))
	r.cfg.Stats.RxBytes.Add(int64(r.flow.SegPayload(int(pkt.Seq))))
	if r.received >= r.flow.Segs() {
		r.stop()
		core.Complete(r.eng, r.flow, r.cfg.Stats, r.cfg.Trace)
		return
	}
	if !r.granting {
		r.granting = true
		r.scheduleGrant()
	}
}

func (r *Receiver) stop() {
	r.granting = false
	r.timer.Stop()
}

// scheduleGrant paces one grant per full-size segment at GrantRate — the
// full link capacity, with no co-existence awareness.
func (r *Receiver) scheduleGrant() {
	r.timer = r.eng.After(r.cfg.GrantRate.TxTime(netem.MTUWire), r.grantFn)
}

func (r *Receiver) grantTick() {
	if !r.granting {
		return
	}
	r.cfg.Stats.CreditsIssued.Inc()
	r.cfg.Trace.Add(trace.CreditIssue, r.flow.ID, int64(r.received), "grant")
	host := r.flow.Dst.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindHomaGrant,
		Class:  r.cfg.GrantClass,
		Dst:    r.flow.Src.Host.NodeID(),
		Flow:   r.flow.ID,
		Size:   netem.CtrlSize,
		SentAt: r.eng.Now(),
	}
	host.Send(pkt)
	r.scheduleGrant()
}

// Start wires a Homa-lite pair and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	core.StartPair(flow, s, r, cfg.Stats, cfg.Trace, transport.SchemeHoma)
	s.Begin()
	return s, r
}

// StartSender wires only the send side (sharded runs start the two
// endpoints on their own shard engines) and begins the flow.
func StartSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := NewSender(eng, flow, cfg)
	core.StartSenderSide(flow, s, cfg.Stats, cfg.Trace, transport.SchemeHoma)
	s.Begin()
	return s
}

// StartReceiver wires only the receive side; granting engages on the
// first unscheduled arrival.
func StartReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	r := NewReceiver(eng, flow, cfg)
	core.StartReceiverSide(flow, r)
	return r
}
