package expresspass

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestLayeredWindowGatesCredits(t *testing.T) {
	// A layered sender with a saturated window must waste credits rather
	// than transmit: the defining LY behaviour (and the reason LY
	// underutilizes when there is no competing traffic — §6.2).
	eng, _, ag := naiveFabric(2, 10*gig)
	fl := xpFlow(1, ag[0], ag[1], 50_000_000)
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	cfg.Layered = true
	cfg.DataECN = true
	s, _ := Start(eng, fl, cfg)
	eng.Run(20 * sim.Millisecond)
	if fl.CreditsWasted == 0 {
		t.Fatal("layered sender never gated a credit; window limit inactive")
	}
	// Gating costs throughput only when the window is the binding
	// constraint; alone on the link the window should grow and goodput
	// approach line rate eventually.
	if fl.RxBytes == 0 {
		t.Fatal("no progress")
	}
	_ = s
}

func TestLayeredBeatsNothingButStillCompletes(t *testing.T) {
	eng, _, ag := naiveFabric(2, 10*gig)
	fl := xpFlow(1, ag[0], ag[1], 3_000_000)
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	cfg.Layered = true
	cfg.DataECN = true
	Start(eng, fl, cfg)
	eng.Run(100 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("layered flow did not complete")
	}
	if fl.Timeouts != 0 {
		t.Fatalf("timeouts = %d", fl.Timeouts)
	}
	if units.RateOf(fl.RxBytes, fl.FCT()) < 1*gig {
		t.Fatalf("layered goodput pathologically low: %v", units.RateOf(fl.RxBytes, fl.FCT()))
	}
}
