package expresspass

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/transport/core"
	"flexpass/internal/units"
)

// The credit pacer implementation lives in transport/core (FlexPass's
// proactive sub-flow drives it unchanged); these aliases keep the
// ExpressPass-branded API that tests and callers use.
type (
	// PacerConfig parameterizes credit generation and feedback control.
	PacerConfig = core.PacerConfig
	// Pacer is the receiver-side credit generator of one flow.
	Pacer = core.Pacer
)

// DefaultPacerConfig returns the §6.2 parameters for a given per-flow
// credit ceiling.
func DefaultPacerConfig(maxRate units.Rate) PacerConfig {
	return core.DefaultPacerConfig(maxRate)
}

// NewPacer builds a pacer sending credits from host toward dst for flow.
func NewPacer(eng *sim.Engine, host *netem.Host, dst netem.NodeID, flow uint64, cfg PacerConfig) *Pacer {
	return core.NewPacer(eng, host, dst, flow, cfg)
}
