// Package expresspass implements the ExpressPass credit-based proactive
// transport (Cho et al., SIGCOMM 2017) as used by the paper: receiver-driven
// credit pacing (the shared core.Pacer), per-link credit-queue rate
// limiting (done by the netem profiles), and SACK-style recovery over the
// credit loop.
package expresspass

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/core"
	"flexpass/internal/transport/dctcp"
)

// Config parameterizes an ExpressPass connection.
type Config struct {
	DataClass netem.Class
	AckClass  netem.Class
	Pacer     PacerConfig

	// DataECN makes data packets ECN-capable (used by the layering
	// scheme, where ExpressPass data must carry DCTCP's congestion
	// signal).
	DataECN bool

	// Layered enables the LY scheme (§6.2): a DCTCP window on top of the
	// credit loop; a credit may only trigger a send when the window has
	// room.
	Layered bool

	// MinRTO is the credit re-request recovery timer.
	MinRTO sim.Time

	// Trace, when non-nil, records lifecycle/retransmit/timeout/waste events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// DefaultConfig returns the paper's ExpressPass setup for a flow whose
// per-flow credit ceiling is maxCredit.
func DefaultConfig(p PacerConfig) Config {
	return Config{
		DataClass: netem.ClassFlex,
		AckClass:  netem.ClassFlex,
		Pacer:     p,
		MinRTO:    4 * sim.Millisecond,
	}
}

// Sender is the ExpressPass send side: data leaves only when a credit
// arrives.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	trk core.SegTracker
	rec *core.RecoveryTimer

	// Layering state.
	win *dctcp.Window

	finished bool
}

// NewSender builds the send side; Begin issues the credit request.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := &Sender{
		cfg:  cfg,
		eng:  eng,
		flow: flow,
		trk:  core.NewSegTracker(flow.Segs()),
	}
	if cfg.Layered {
		s.win = dctcp.NewWindow(10)
	}
	s.rec = core.NewRecoveryTimer(eng, core.RecoveryConfig{
		BaseRTO:  func() sim.Time { return cfg.MinRTO },
		Expire:   s.onRecoveryTimeout,
		Idle:     func() bool { return s.finished },
		MaxShift: 4,
	})
	return s
}

// Begin sends the credit request. ExpressPass spends the first RTT on the
// request/credit exchange (the paper's motivation for FlexPass's reactive
// first RTT).
func (s *Sender) Begin() {
	s.sendRequest()
	s.rec.Touch()
}

// Finished reports send-side completion.
func (s *Sender) Finished() bool { return s.finished }

// sendRequest issues the credit request as a control packet in the data
// path (not the rate-limited credit queue), so synchronized flow starts do
// not lose their requests to the tiny credit buffer.
func (s *Sender) sendRequest() {
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindCreditReq,
		Class:  s.cfg.AckClass,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Size:   netem.CtrlSize,
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
}

// onRecoveryTimeout fires when neither credits nor ACKs arrived for an RTO:
// the credit request (or the whole credit stream) was lost. Re-request.
func (s *Sender) onRecoveryTimeout() {
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.trk.CumAck), "re-request")
	s.rec.Bump()
	s.sendRequest()
	s.rec.Touch()
}

func (s *Sender) transmit(seq int, retx bool, echo uint32) {
	s.trk.MarkSent(seq)
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seq), "")
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:       netem.KindProData,
		Class:      s.cfg.DataClass,
		Color:      netem.Green,
		ECNCapable: s.cfg.DataECN,
		Dst:        s.flow.Dst.Host.NodeID(),
		Flow:       s.flow.ID,
		Seq:        uint32(seq),
		SubSeq:     uint32(seq),
		Echo:       echo,
		Size:       s.flow.SegWire(seq),
		SentAt:     s.eng.Now(),
	}
	host.Send(pkt)
}

// Handle processes credits and ACKs.
func (s *Sender) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCredit:
		if s.finished {
			return
		}
		s.flow.CreditsGranted++
		s.cfg.Stats.CreditsGranted.Inc()
		if s.cfg.Layered && float64(s.trk.Inflight) >= s.win.Cwnd {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.trk.CumAck), "window full")
			return
		}
		seq, retx := s.trk.Pick()
		if seq < 0 {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.trk.CumAck), "no data")
			return
		}
		s.transmit(seq, retx, pkt.SubSeq)
		s.cfg.Trace.Add(trace.CreditUse, s.flow.ID, int64(seq), "")
		s.rec.Touch()
	case netem.KindAckPro:
		s.onAck(pkt)
	}
}

func (s *Sender) onAck(pkt *netem.Packet) {
	if s.finished {
		return
	}
	s.rec.Reset()
	cum := int(pkt.SubSeq)
	s.trk.OnAck(cum, int(pkt.Seq), 3)
	if s.cfg.Layered {
		// The window sees the raw cumulative ACK (not the folded edge): a
		// stale reordered ACK must not fast-forward the alpha/reduce epochs.
		s.win.OnAck(cum, s.trk.NextNew, pkt.CE)
	}
	if s.trk.Done() {
		s.finished = true
		return
	}
	s.rec.Touch()
}

// Receiver is the ExpressPass receive side: it paces credits and
// acknowledges data.
type Receiver struct {
	cfg   Config
	eng   *sim.Engine
	flow  *transport.Flow
	pacer *Pacer
	asm   core.Reassembly
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	return &Receiver{
		cfg:   cfg,
		eng:   eng,
		flow:  flow,
		pacer: NewPacer(eng, flow.Dst.Host, flow.Src.Host.NodeID(), flow.ID, cfg.Pacer),
		asm:   core.NewReassembly(flow.Segs()),
	}
}

// Pacer exposes the credit pacer (stats, tests).
func (r *Receiver) Pacer() *Pacer { return r.pacer }

// Handle processes credit requests and data.
func (r *Receiver) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCreditReq:
		if !r.flow.Completed {
			r.pacer.Start()
		}
	case netem.KindProData:
		r.pacer.OnData(pkt.Echo)
		r.asm.Deliver(r.flow, r.cfg.Stats, int(pkt.SubSeq))
		core.SendAck(r.flow, netem.KindAckPro, r.cfg.AckClass, pkt, uint32(r.asm.Cum), true)
		if r.asm.Full() && !r.flow.Completed {
			r.pacer.Stop()
			core.Complete(r.eng, r.flow, r.cfg.Stats, r.cfg.Trace)
		}
	}
}

// Start wires an ExpressPass sender/receiver pair and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	core.StartPair(flow, s, r, cfg.Stats, cfg.Trace, transport.SchemeExpressPass)
	s.Begin()
	return s, r
}

// StartSender wires only the send side (sharded runs start the two
// endpoints on their own shard engines) and begins the flow.
func StartSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := NewSender(eng, flow, cfg)
	core.StartSenderSide(flow, s, cfg.Stats, cfg.Trace, transport.SchemeExpressPass)
	s.Begin()
	return s
}

// StartReceiver wires only the receive side; its credit pacer engages on
// the first data/request arrival as usual.
func StartReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	r := NewReceiver(eng, flow, cfg)
	core.StartReceiverSide(flow, r)
	return r
}
