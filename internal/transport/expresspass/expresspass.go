package expresspass

import (
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
)

// Config parameterizes an ExpressPass connection.
type Config struct {
	DataClass netem.Class
	AckClass  netem.Class
	Pacer     PacerConfig

	// DataECN makes data packets ECN-capable (used by the layering
	// scheme, where ExpressPass data must carry DCTCP's congestion
	// signal).
	DataECN bool

	// Layered enables the LY scheme (§6.2): a DCTCP window on top of the
	// credit loop; a credit may only trigger a send when the window has
	// room.
	Layered bool

	// MinRTO is the credit re-request recovery timer.
	MinRTO sim.Time

	// Trace, when non-nil, records lifecycle/retransmit/timeout/waste events.
	Trace *trace.Ring
	// Stats aggregates transport-wide counters (zero value no-ops).
	Stats transport.Counters
}

// DefaultConfig returns the paper's ExpressPass setup for a flow whose
// per-flow credit ceiling is maxCredit.
func DefaultConfig(p PacerConfig) Config {
	return Config{
		DataClass: netem.ClassFlex,
		AckClass:  netem.ClassFlex,
		Pacer:     p,
		MinRTO:    4 * sim.Millisecond,
	}
}

// Segment states (shared shape with dctcp's sender).
const (
	segPending uint8 = iota
	segSent
	segAcked
	segLost
)

// Sender is the ExpressPass send side: data leaves only when a credit
// arrives.
type Sender struct {
	cfg  Config
	eng  *sim.Engine
	flow *transport.Flow

	state    []uint8
	lostQ    []int
	nextNew  int
	cumAck   int
	sackHigh int
	dupAcks  int
	oldest   int  // scan pointer for tail retransmission
	rescanOK bool // a fresh ACK arrived since the last full tail rescan

	// Layering state.
	win      *dctcp.Window
	inflight int

	recoverPending bool
	recoverBackoff uint
	lastProgress   sim.Time
	finished       bool

	checkRecoveryFn func() // pre-bound checkRecovery: one closure per flow
}

// NewSender builds the send side; Begin issues the credit request.
func NewSender(eng *sim.Engine, flow *transport.Flow, cfg Config) *Sender {
	s := &Sender{
		cfg:   cfg,
		eng:   eng,
		flow:  flow,
		state: make([]uint8, flow.Segs()),
	}
	if cfg.Layered {
		s.win = dctcp.NewWindow(10)
	}
	s.checkRecoveryFn = s.checkRecovery
	return s
}

// Begin sends the credit request. ExpressPass spends the first RTT on the
// request/credit exchange (the paper's motivation for FlexPass's reactive
// first RTT).
func (s *Sender) Begin() {
	s.sendRequest()
	s.armRecovery()
}

// Finished reports send-side completion.
func (s *Sender) Finished() bool { return s.finished }

// sendRequest issues the credit request as a control packet in the data
// path (not the rate-limited credit queue), so synchronized flow starts do
// not lose their requests to the tiny credit buffer.
func (s *Sender) sendRequest() {
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:   netem.KindCreditReq,
		Class:  s.cfg.AckClass,
		Dst:    s.flow.Dst.Host.NodeID(),
		Flow:   s.flow.ID,
		Size:   netem.CtrlSize,
		SentAt: s.eng.Now(),
	}
	host.Send(pkt)
}

// armRecovery refreshes the progress stamp; the pending timer re-checks
// the true deadline lazily instead of being cancelled per event.
func (s *Sender) armRecovery() {
	s.lastProgress = s.eng.Now()
	if s.recoverPending || s.finished {
		return
	}
	s.recoverPending = true
	s.eng.After(s.cfg.MinRTO, s.checkRecoveryFn)
}

func (s *Sender) checkRecovery() {
	s.recoverPending = false
	if s.finished {
		return
	}
	bo := s.recoverBackoff
	if bo > 4 {
		bo = 4
	}
	deadline := s.lastProgress + s.cfg.MinRTO<<bo
	if s.eng.Now() < deadline {
		s.recoverPending = true
		s.eng.At(deadline, s.checkRecoveryFn)
		return
	}
	s.onRecoveryTimeout()
}

// onRecoveryTimeout fires when neither credits nor ACKs arrived for an RTO:
// the credit request (or the whole credit stream) was lost. Re-request.
func (s *Sender) onRecoveryTimeout() {
	s.flow.Timeouts++
	s.cfg.Stats.Timeouts.Inc()
	s.cfg.Trace.Add(trace.Timeout, s.flow.ID, int64(s.cumAck), "re-request")
	s.recoverBackoff++
	s.sendRequest()
	s.armRecovery()
}

// pick selects the segment a fresh credit should carry: Lost first, then
// new data, then the oldest unacked (tail robustness). Returns -1 when the
// credit is wasted.
func (s *Sender) pick() (seq int, retx bool) {
	for len(s.lostQ) > 0 {
		cand := s.lostQ[0]
		s.lostQ = s.lostQ[1:]
		if s.state[cand] == segLost {
			return cand, true
		}
	}
	if s.nextNew < len(s.state) {
		seq = s.nextNew
		s.nextNew++
		return seq, false
	}
	// Tail robustness: re-send the oldest unacked segment, each at most
	// once per rescan round; a new round opens only when a fresh ACK
	// arrives, so a slow ACK path cannot trigger a duplicate storm.
	for {
		for s.oldest < len(s.state) && s.state[s.oldest] == segAcked {
			s.oldest++
		}
		if s.oldest < len(s.state) {
			seq := s.oldest
			s.oldest++
			return seq, true
		}
		if !s.rescanOK {
			return -1, false
		}
		s.rescanOK = false
		s.oldest = s.cumAck
	}
}

func (s *Sender) transmit(seq int, retx bool, echo uint32) {
	s.state[seq] = segSent
	s.inflight++
	if retx {
		s.flow.Retransmits++
		s.cfg.Stats.Retransmits.Inc()
		s.cfg.Trace.Add(trace.Retransmit, s.flow.ID, int64(seq), "")
	}
	host := s.flow.Src.Host
	pkt := host.NewPacket()
	*pkt = netem.Packet{
		Kind:       netem.KindProData,
		Class:      s.cfg.DataClass,
		Color:      netem.Green,
		ECNCapable: s.cfg.DataECN,
		Dst:        s.flow.Dst.Host.NodeID(),
		Flow:       s.flow.ID,
		Seq:        uint32(seq),
		SubSeq:     uint32(seq),
		Echo:       echo,
		Size:       s.flow.SegWire(seq),
		SentAt:     s.eng.Now(),
	}
	host.Send(pkt)
}

// Handle processes credits and ACKs.
func (s *Sender) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCredit:
		if s.finished {
			return
		}
		s.flow.CreditsGranted++
		s.cfg.Stats.CreditsGranted.Inc()
		if s.cfg.Layered && float64(s.inflight) >= s.win.Cwnd {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.cumAck), "window full")
			return
		}
		seq, retx := s.pick()
		if seq < 0 {
			s.flow.CreditsWasted++
			s.cfg.Stats.CreditsWasted.Inc()
			s.cfg.Trace.Add(trace.CreditWaste, s.flow.ID, int64(s.cumAck), "no data")
			return
		}
		s.transmit(seq, retx, pkt.SubSeq)
		s.cfg.Trace.Add(trace.CreditUse, s.flow.ID, int64(seq), "")
		s.armRecovery()
	case netem.KindAckPro:
		s.onAck(pkt)
	}
}

func (s *Sender) onAck(pkt *netem.Packet) {
	if s.finished {
		return
	}
	s.rescanOK = true
	s.recoverBackoff = 0
	cum := int(pkt.SubSeq)
	sack := int(pkt.Seq)
	if sack < len(s.state) {
		if s.state[sack] == segSent {
			s.state[sack] = segAcked
			s.inflight--
		} else if s.state[sack] == segLost {
			s.state[sack] = segAcked
		}
	}
	if sack > s.sackHigh {
		s.sackHigh = sack
	}
	if cum > s.cumAck {
		for seq := s.cumAck; seq < cum && seq < len(s.state); seq++ {
			if s.state[seq] == segSent {
				s.inflight--
			}
			s.state[seq] = segAcked
		}
		s.cumAck = cum
		s.dupAcks = 0
	} else if sack >= s.cumAck {
		s.dupAcks++
	}
	if s.cfg.Layered {
		s.win.OnAck(cum, s.nextNew, pkt.CE)
	}
	// SACK-style loss marking; recovered via the credit loop.
	if s.dupAcks >= 3 {
		edge := s.sackHigh - 2
		for seq := s.cumAck; seq < edge && seq < len(s.state); seq++ {
			if s.state[seq] == segSent {
				s.state[seq] = segLost
				s.inflight--
				s.lostQ = append(s.lostQ, seq)
			}
		}
	}
	if s.cumAck >= len(s.state) {
		s.finished = true
		return
	}
	s.armRecovery()
}

// Receiver is the ExpressPass receive side: it paces credits and
// acknowledges data.
type Receiver struct {
	cfg   Config
	eng   *sim.Engine
	flow  *transport.Flow
	pacer *Pacer

	got      []bool
	cum      int
	received int
}

// NewReceiver builds the receive side.
func NewReceiver(eng *sim.Engine, flow *transport.Flow, cfg Config) *Receiver {
	return &Receiver{
		cfg:   cfg,
		eng:   eng,
		flow:  flow,
		pacer: NewPacer(eng, flow.Dst.Host, flow.Src.Host.NodeID(), flow.ID, cfg.Pacer),
		got:   make([]bool, flow.Segs()),
	}
}

// Pacer exposes the credit pacer (stats, tests).
func (r *Receiver) Pacer() *Pacer { return r.pacer }

// Handle processes credit requests and data.
func (r *Receiver) Handle(pkt *netem.Packet) {
	switch pkt.Kind {
	case netem.KindCreditReq:
		if !r.flow.Completed {
			r.pacer.Start()
		}
	case netem.KindProData:
		r.pacer.OnData(pkt.Echo)
		seq := int(pkt.SubSeq)
		if seq < len(r.got) && !r.got[seq] {
			r.got[seq] = true
			r.received++
			r.flow.RxBytes += int64(r.flow.SegPayload(seq))
			r.cfg.Stats.RxBytes.Add(int64(r.flow.SegPayload(seq)))
			for r.cum < len(r.got) && r.got[r.cum] {
				r.cum++
			}
		} else {
			r.flow.RedundantSegs++
		}
		host := r.flow.Dst.Host
		ack := host.NewPacket()
		*ack = netem.Packet{
			Kind:   netem.KindAckPro,
			Class:  r.cfg.AckClass,
			Dst:    r.flow.Src.Host.NodeID(),
			Flow:   r.flow.ID,
			Seq:    pkt.SubSeq,
			SubSeq: uint32(r.cum),
			CE:     pkt.CE,
			Size:   netem.AckSize,
			SentAt: pkt.SentAt,
		}
		host.Send(ack)
		if r.received >= r.flow.Segs() && !r.flow.Completed {
			r.pacer.Stop()
			r.flow.Complete(r.eng.Now())
			r.cfg.Stats.Completed.Inc()
			r.cfg.Stats.FCT.Observe(int64(r.flow.FCT() / sim.Microsecond))
			r.cfg.Trace.Add(trace.FlowDone, r.flow.ID, int64(r.flow.FCT()/sim.Microsecond), "fct_us")
		}
	}
}

// Start wires an ExpressPass sender/receiver pair and begins the flow.
func Start(eng *sim.Engine, flow *transport.Flow, cfg Config) (*Sender, *Receiver) {
	s := NewSender(eng, flow, cfg)
	r := NewReceiver(eng, flow, cfg)
	flow.Src.Register(flow.ID, s)
	flow.Dst.Register(flow.ID, r)
	cfg.Stats.Started.Inc()
	cfg.Trace.Add(trace.FlowStart, flow.ID, flow.Size, "expresspass")
	s.Begin()
	return s, r
}
