package expresspass

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/units"
)

const gig = units.Gbps

func naiveFabric(hosts int, rate units.Rate) (*sim.Engine, *topo.Fabric, []*transport.Agent) {
	eng := sim.NewEngine(1)
	f := topo.SingleSwitch(eng, hosts, topo.Params{
		LinkRate:  rate,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.NaiveProfile(topo.Spec{}),
	})
	agents := make([]*transport.Agent, hosts)
	for i := range agents {
		agents[i] = transport.NewAgent(eng, f.Net.Host(i))
	}
	return eng, f, agents
}

func fullCreditRate(rate units.Rate) units.Rate {
	return rate.Scale(netem.CreditRatio)
}

func xpFlow(id uint64, src, dst *transport.Agent, size int64) *transport.Flow {
	return &transport.Flow{ID: id, Src: src, Dst: dst, Size: size, Transport: "expresspass"}
}

func TestSingleFlowNearLineRate(t *testing.T) {
	eng, _, ag := naiveFabric(2, 10*gig)
	fl := xpFlow(1, ag[0], ag[1], 10_000_000)
	Start(eng, fl, DefaultConfig(DefaultPacerConfig(fullCreditRate(10*gig))))
	eng.Run(50 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	rate := units.RateOf(fl.RxBytes, fl.FCT())
	// Goodput ceiling is 10G×1460/1538 ≈ 9.49G; credits pace close to it.
	if rate < 8*gig {
		t.Fatalf("goodput %v, want >8Gbps", rate)
	}
	if fl.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0", fl.Timeouts)
	}
}

func TestFirstRTTSpentOnCreditRequest(t *testing.T) {
	eng, _, ag := naiveFabric(2, 10*gig)
	fl := xpFlow(1, ag[0], ag[1], 1460) // one segment
	Start(eng, fl, DefaultConfig(DefaultPacerConfig(fullCreditRate(10*gig))))
	eng.Run(10 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not complete")
	}
	// Request + credit + data: at least 3 one-way latencies (~1.5 RTT).
	oneWay := 2*2*sim.Microsecond + sim.Microsecond // 2 links + host delay
	if fl.FCT() < 3*oneWay {
		t.Fatalf("FCT %v < 3 one-way delays; credit request phase missing", fl.FCT())
	}
}

func TestTwoFlowsShareViaCreditFeedback(t *testing.T) {
	eng, _, ag := naiveFabric(3, 10*gig)
	f1 := xpFlow(1, ag[0], ag[2], 1<<30)
	f2 := xpFlow(2, ag[1], ag[2], 1<<30)
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	Start(eng, f1, cfg)
	Start(eng, f2, cfg)
	eng.Run(30 * sim.Millisecond)
	tot := f1.RxBytes + f2.RxBytes
	if tot == 0 {
		t.Fatal("no progress")
	}
	share := float64(f1.RxBytes) / float64(tot)
	if share < 0.3 || share > 0.7 {
		t.Fatalf("flow 1 share %.3f, want ~0.5", share)
	}
	rate := units.RateOf(tot, 30*sim.Millisecond)
	if rate < 7*gig {
		t.Fatalf("aggregate %v, want >7Gbps", rate)
	}
}

func TestCreditDropsDriveFeedbackDown(t *testing.T) {
	// Both receivers' pacers start at full rate toward one bottleneck
	// (the shared receiver downlink): the credit queue rate limiter must
	// drop credits and feedback must reduce the rates below init.
	eng, _, ag := naiveFabric(3, 10*gig)
	f1 := xpFlow(1, ag[0], ag[2], 1<<30)
	f2 := xpFlow(2, ag[1], ag[2], 1<<30)
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	_, r1 := Start(eng, f1, cfg)
	_, r2 := Start(eng, f2, cfg)
	eng.Run(20 * sim.Millisecond)
	max := fullCreditRate(10 * gig)
	if r1.Pacer().Rate()+r2.Pacer().Rate() > max+max/4 {
		t.Fatalf("combined credit rate %v exceeds limit %v by >25%%",
			r1.Pacer().Rate()+r2.Pacer().Rate(), max)
	}
}

func TestExpressPassStarvesDCTCPInSharedQueue(t *testing.T) {
	// Fig 1(a) / Fig 9(a): naïve deployment starves the DCTCP flow.
	eng, _, ag := naiveFabric(3, 10*gig)
	xp := xpFlow(1, ag[0], ag[2], 1<<30)
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 30, Transport: "dctcp", Legacy: true}
	Start(eng, xp, DefaultConfig(DefaultPacerConfig(fullCreditRate(10*gig))))
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	eng.Run(60 * sim.Millisecond)
	tot := xp.RxBytes + dc.RxBytes
	dcShare := float64(dc.RxBytes) / float64(tot)
	if dcShare > 0.25 {
		t.Fatalf("DCTCP share %.3f; naïve ExpressPass should starve it (<0.25)", dcShare)
	}
	if units.RateOf(tot, 60*sim.Millisecond) < 7*gig {
		t.Fatalf("link underutilized: %v", units.RateOf(tot, 60*sim.Millisecond))
	}
}

func TestLayeredModeDoesNotStarveDCTCP(t *testing.T) {
	// LY gates credit sends with a DCTCP window over shared-queue ECN, so
	// the legacy flow gets a reasonable share.
	eng, _, ag := naiveFabric(3, 10*gig)
	xp := xpFlow(1, ag[0], ag[2], 1<<30)
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 30, Transport: "dctcp", Legacy: true}
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	cfg.Layered = true
	cfg.DataECN = true
	Start(eng, xp, cfg)
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	eng.Run(60 * sim.Millisecond)
	tot := xp.RxBytes + dc.RxBytes
	dcShare := float64(dc.RxBytes) / float64(tot)
	if dcShare < 0.25 {
		t.Fatalf("DCTCP share %.3f under layering, want >0.25", dcShare)
	}
}

func TestRecoveryAfterLostCreditRequest(t *testing.T) {
	// Drop the first request by pointing the flow at a host that ignores
	// it... instead simulate loss pressure: fill the credit queue so the
	// request drops, and rely on the recovery timer to re-request.
	eng, _, ag := naiveFabric(2, 10*gig)
	fl := xpFlow(1, ag[0], ag[1], 100_000)
	cfg := DefaultConfig(DefaultPacerConfig(fullCreditRate(10 * gig)))
	cfg.MinRTO = 1 * sim.Millisecond
	s := NewSender(eng, fl, cfg)
	r := NewReceiver(eng, fl, cfg)
	ag[0].Register(fl.ID, s)
	// Register the receiver only after 0.5ms: the first request hits an
	// unregistered flow and is ignored (equivalent to a loss).
	eng.After(500*sim.Microsecond, func() { ag[1].Register(fl.ID, r) })
	s.Begin()
	eng.Run(50 * sim.Millisecond)
	if !fl.Completed {
		t.Fatal("flow did not recover from lost credit request")
	}
	if fl.Timeouts == 0 {
		t.Fatal("recovery timer should have fired")
	}
}

func TestPacerFeedbackUnit(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := netem.NewPort(eng, "nic", 10*gig, 0, topo.NaiveProfile(topo.Spec{})(10*gig), nil)
	h := netem.NewHost(eng, 1, "h", nic, 0)
	cfg := DefaultPacerConfig(500 * units.Mbps)
	cfg.InitRate = 50 * units.Mbps
	p := NewPacer(eng, h, 2, 7, cfg)
	// Every credit that leaves the NIC counts as delivered data: a
	// lossless path. Rate must climb to the max.
	nic.Connect(deliverFunc(func(pkt *netem.Packet) { p.OnData(pkt.SubSeq) }))
	p.Start()
	eng.Run(100 * cfg.Period)
	if p.Rate() < 400*units.Mbps {
		t.Fatalf("rate %v after lossless periods, want near 500Mbps", p.Rate())
	}
	p.Stop()
	if p.Active() {
		t.Fatal("pacer still active after Stop")
	}
}

func TestPacerBacksOffUnderTotalLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := netem.NewPort(eng, "nic", 10*gig, 0, topo.NaiveProfile(topo.Spec{})(10*gig), nil)
	h := netem.NewHost(eng, 1, "h", nic, 0)
	cfg := DefaultPacerConfig(500 * units.Mbps)
	p := NewPacer(eng, h, 2, 7, cfg)
	nic.Connect(deliverFunc(func(*netem.Packet) {})) // nothing delivered
	p.Start()
	eng.Run(50 * cfg.Period)
	if p.Rate() > 50*units.Mbps {
		t.Fatalf("rate %v under 100%% loss, want collapsed to the floor", p.Rate())
	}
}

type deliverFunc func(*netem.Packet)

func (f deliverFunc) NodeID() netem.NodeID    { return 2 }
func (f deliverFunc) Receive(p *netem.Packet) { f(p) }
