package transport_test

import (
	"strings"
	"testing"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	_ "flexpass/internal/transport/schemes"
	"flexpass/internal/units"
)

func TestSchemeNamesIncludeBuiltins(t *testing.T) {
	names := transport.SchemeNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{
		transport.SchemeDCTCP, transport.SchemeExpressPass, transport.SchemeLayering,
		transport.SchemeFlexPass, transport.SchemeHoma, transport.SchemePHost,
		transport.SchemeNaive, transport.SchemeOWF,
		transport.SchemeFlexPassAltQ, transport.SchemeFlexPassRC3,
	} {
		if !have[want] {
			t.Errorf("built-in scheme %q not registered (have %v)", want, names)
		}
	}
}

func TestNewSchemeUnknown(t *testing.T) {
	_, err := transport.NewScheme("no-such-scheme", &transport.SchemeEnv{})
	if err == nil {
		t.Fatal("NewScheme accepted an unknown name")
	}
	if !strings.Contains(err.Error(), "no-such-scheme") ||
		!strings.Contains(err.Error(), transport.SchemeFlexPass) {
		t.Fatalf("error should name the scheme and list what is registered: %v", err)
	}
}

func TestRegisterSchemeRejectsDuplicates(t *testing.T) {
	transport.RegisterScheme("registry-test-dup", func(*transport.SchemeEnv) transport.Scheme { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	transport.RegisterScheme("registry-test-dup", func(*transport.SchemeEnv) transport.Scheme { return nil })
}

func TestSchemeEnvOptions(t *testing.T) {
	env := &transport.SchemeEnv{Options: map[string]string{
		"reactive": "reno", "on": "1", "off": "false", "no": "no",
	}}
	if env.Option("reactive") != "reno" || env.Option("missing") != "" {
		t.Fatal("Option lookup broken")
	}
	for key, want := range map[string]bool{"on": true, "off": false, "no": false, "missing": false} {
		if got := env.BoolOption(key); got != want {
			t.Errorf("BoolOption(%q) = %v, want %v", key, got, want)
		}
	}
}

func TestSchemeEnvCountersMemoized(t *testing.T) {
	env := &transport.SchemeEnv{Registry: obs.NewRegistry()}
	a := env.Counters("x")
	b := env.Counters("x")
	if a != b {
		t.Fatal("Counters not memoized per label")
	}
	if c := env.Counters("y"); c == a {
		t.Fatal("distinct labels share a counter set")
	}
	var labels []string
	env.EachCounters(func(l string, _ transport.Counters) { labels = append(labels, l) })
	if len(labels) != 2 || labels[0] != "x" || labels[1] != "y" {
		t.Fatalf("EachCounters order = %v, want [x y]", labels)
	}
}

// runScheme builds one registered scheme against a 3-host single-switch
// micro-fabric, runs a 64kB flow over it, and returns the FCT.
func runScheme(t *testing.T, name string) sim.Time {
	t.Helper()
	eng := sim.NewEngine(1)
	env := &transport.SchemeEnv{
		Eng:      eng,
		LinkRate: 10 * units.Gbps,
		WQ:       0.5,
		OracleWQ: 0.5,
		Spec:     topo.Spec{WQ: 0.5},
	}
	sch, err := transport.NewScheme(name, env)
	if err != nil {
		t.Fatalf("NewScheme(%q): %v", name, err)
	}
	fab := topo.SingleSwitch(eng, 3, topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   sch.Profile(),
	})
	fl := &transport.Flow{
		ID:   1,
		Src:  transport.NewAgent(eng, fab.Net.Host(0)),
		Dst:  transport.NewAgent(eng, fab.Net.Host(2)),
		Size: 64_000,
	}
	sch.Start(fl)
	if fl.Transport == "" {
		t.Errorf("scheme %q did not label the flow's transport", name)
	}
	eng.Run(500 * sim.Millisecond)
	if !fl.Completed {
		t.Fatalf("scheme %q: flow incomplete after 500ms", name)
	}
	if fl.RxBytes != fl.Size {
		t.Fatalf("scheme %q: RxBytes = %d, want %d", name, fl.RxBytes, fl.Size)
	}
	return fl.FCT()
}

// TestEveryRegisteredSchemeRuns is the registry's contract test: every
// scheme in the registry must compose into a working transport on a
// micro-fabric, deterministically.
func TestEveryRegisteredSchemeRuns(t *testing.T) {
	for _, name := range transport.SchemeNames() {
		if name == "registry-test-dup" { // from the duplicate-registration test
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			fct := runScheme(t, name)
			if fct <= 0 {
				t.Fatalf("FCT = %v, want > 0", fct)
			}
			if again := runScheme(t, name); again != fct {
				t.Fatalf("non-deterministic: FCT %v then %v", fct, again)
			}
		})
	}
}
