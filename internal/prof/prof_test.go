package prof

import (
	"strings"
	"testing"

	"flexpass/internal/sim"
)

// buildProfiled runs a tiny schedule with two stamped components and
// returns the attached profiler plus the engine.
func buildProfiled(t *testing.T) (*Profiler, *sim.Engine, sim.Component, sim.Component) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := New()
	p.Attach(eng)
	a := eng.Component("transport/flexpass")
	b := eng.Component("netem/tx")
	prev := eng.SetComponent(a)
	for i := 0; i < 10; i++ {
		eng.After(sim.Time(i)*sim.Microsecond, func() {})
	}
	eng.SetComponent(b)
	for i := 0; i < 5; i++ {
		eng.After(sim.Time(i)*sim.Microsecond, func() {})
	}
	eng.SetComponent(prev)
	eng.Run(sim.Second)
	return p, eng, a, b
}

func TestProfilerAttribution(t *testing.T) {
	p, _, a, b := buildProfiled(t)
	if got := p.Stats(a).Events; got != 10 {
		t.Fatalf("component a dispatched %d events, want 10", got)
	}
	if got := p.Stats(b).Events; got != 5 {
		t.Fatalf("component b dispatched %d events, want 5", got)
	}
	sa := p.Stats(a)
	if sa.Wall < 0 || sa.Max < 0 || sa.Max > sa.Wall {
		t.Fatalf("implausible accounting: wall=%v max=%v", sa.Wall, sa.Max)
	}
	var bucketed int64
	for _, n := range sa.Buckets {
		bucketed += n
	}
	if bucketed != int64(sa.Events) {
		t.Fatalf("histogram holds %d observations, want %d", bucketed, sa.Events)
	}
}

func TestProfilerExport(t *testing.T) {
	p, _, _, _ := buildProfiled(t)
	out := p.Export()
	byName := map[string]uint64{}
	for _, cp := range out {
		byName[cp.Component] = cp.Events
		if len(cp.Le) != len(cp.Counts) {
			t.Fatalf("%s: le/counts length mismatch: %d vs %d", cp.Component, len(cp.Le), len(cp.Counts))
		}
		var n int64
		for _, c := range cp.Counts {
			if c == 0 {
				t.Fatalf("%s: zero-count bucket not elided", cp.Component)
			}
			n += c
		}
		if n != int64(cp.Events) {
			t.Fatalf("%s: bucket sum %d != events %d", cp.Component, n, cp.Events)
		}
	}
	if byName["transport/flexpass"] != 10 || byName["netem/tx"] != 5 {
		t.Fatalf("export = %v", byName)
	}
}

func TestWriteFolded(t *testing.T) {
	p, _, _, _ := buildProfiled(t)
	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("folded output has %d lines, want 2:\n%s", len(lines), b.String())
	}
	seen := map[string]bool{}
	for _, l := range lines {
		fields := strings.Fields(l)
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "engine;") {
			t.Fatalf("malformed folded line %q", l)
		}
		seen[fields[0]] = true
	}
	if !seen["engine;transport/flexpass"] || !seen["engine;netem/tx"] {
		t.Fatalf("folded output missing components:\n%s", b.String())
	}
}

func TestWriteTable(t *testing.T) {
	p, _, _, _ := buildProfiled(t)
	var b strings.Builder
	if err := p.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"COMPONENT", "transport/flexpass", "netem/tx", "total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

// TestNilProfiler pins the nil-no-op contract: every method on a nil
// profiler is callable.
func TestNilProfiler(t *testing.T) {
	var p *Profiler
	p.Attach(sim.NewEngine(1))
	if s := p.Stats(0); s.Events != 0 {
		t.Fatal("nil profiler must report zero stats")
	}
	if out := p.Export(); out != nil {
		t.Fatal("nil profiler must export nil")
	}
	var b strings.Builder
	if err := p.WriteFolded(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil profiler must write nothing")
	}
	if err := p.WriteTable(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil profiler must write nothing")
	}
}
