// Package prof is the engine self-profiler: it attaches to a sim.Engine's
// dispatch hook and accumulates per-component wall time, event counts,
// worst-case dispatch latency, and power-of-two latency histograms, keyed
// by the component labels threaded through the engine's scheduling sites.
//
// Like trace.Ring, a nil *Profiler no-ops every method, so instrumented
// code keeps unconditional calls. The observe path is allocation-free:
// state lives in a fixed array indexed by the one-byte component label,
// so attaching a profiler never perturbs the engine's zero-alloc dispatch
// loop — and since component labels are pure metadata, flow results stay
// bit-identical with profiling on or off.
package prof

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
)

// buckets is the latency histogram size: bucket i counts dispatches with
// duration in [2^(i-1), 2^i) ns, matching obs.Histogram's scheme. 2^47 ns
// is ~39 hours — far past any single dispatch.
const buckets = 48

// Stats is one component's accumulated dispatch accounting.
type Stats struct {
	Events  uint64        // dispatches attributed to the component
	Wall    time.Duration // total wall time inside those dispatches
	Max     time.Duration // worst single dispatch
	Buckets [buckets]int64
}

// Profiler accumulates dispatch stats per component. Construct with New
// and install with Attach; the zero value is usable but detached.
type Profiler struct {
	eng   *sim.Engine
	stats [256]Stats
}

// New returns a detached profiler.
func New() *Profiler { return &Profiler{} }

// Attach installs the profiler on eng's dispatch hook and remembers the
// engine so exports can resolve component names. Nil-safe: a nil
// profiler leaves the engine unprofiled.
func (p *Profiler) Attach(eng *sim.Engine) {
	if p == nil {
		return
	}
	p.eng = eng
	eng.SetProfile(p.observe)
}

// observe is the dispatch hook. It must not allocate: it runs once per
// engine event.
func (p *Profiler) observe(c sim.Component, d time.Duration) {
	s := &p.stats[c]
	s.Events++
	s.Wall += d
	if d > s.Max {
		s.Max = d
	}
	b := 0
	if ns := d.Nanoseconds(); ns > 0 {
		b = bits.Len64(uint64(ns))
	}
	if b >= buckets {
		b = buckets - 1
	}
	s.Buckets[b]++
}

// Stats returns the accumulated stats for component c.
func (p *Profiler) Stats(c sim.Component) Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats[c]
}

// components lists the registered components that dispatched at least one
// event, in label order (which is registration order).
func (p *Profiler) components() []sim.Component {
	if p == nil || p.eng == nil {
		return nil
	}
	var out []sim.Component
	for i := range p.eng.ComponentNames() {
		if p.stats[i].Events > 0 {
			out = append(out, sim.Component(i))
		}
	}
	return out
}

// bucketLe is bucket i's exclusive ns upper bound.
func bucketLe(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Export renders the profile for the run manifest: one entry per
// component that dispatched events, in registration order, with
// zero-count histogram buckets elided. Nil-safe (returns nil).
func (p *Profiler) Export() []obs.ComponentProfile {
	if p == nil || p.eng == nil {
		return nil
	}
	names := p.eng.ComponentNames()
	var out []obs.ComponentProfile
	for _, c := range p.components() {
		s := &p.stats[c]
		cp := obs.ComponentProfile{
			Component: names[c],
			Events:    s.Events,
			WallNs:    s.Wall.Nanoseconds(),
			MaxNs:     s.Max.Nanoseconds(),
		}
		for i, n := range s.Buckets {
			if n == 0 {
				continue
			}
			cp.Le = append(cp.Le, bucketLe(i))
			cp.Counts = append(cp.Counts, n)
		}
		out = append(out, cp)
	}
	return out
}

// WriteFolded emits the profile in folded-stacks form — one
// "engine;<component> <wall_us>" line per component — the input format
// flamegraph.pl and speedscope accept. Components that dispatched events
// but accumulated less than a microsecond are clamped to 1 so they stay
// visible. Lines are sorted by descending wall time.
func (p *Profiler) WriteFolded(w io.Writer) error {
	if p == nil || p.eng == nil {
		return nil
	}
	return WriteFoldedProfile(w, p.Export())
}

// WriteFoldedProfile is WriteFolded over an exported (possibly merged)
// profile, for sharded runs with no single live Profiler.
func WriteFoldedProfile(w io.Writer, profile []obs.ComponentProfile) error {
	profile = sortedByWall(profile)
	for i := range profile {
		cp := &profile[i]
		us := cp.WallNs / 1e3
		if us < 1 {
			us = 1
		}
		if _, err := fmt.Fprintf(w, "engine;%s %d\n", cp.Component, us); err != nil {
			return err
		}
	}
	return nil
}

// sortedByWall orders a profile by descending wall time, ties keeping the
// export's registration order.
func sortedByWall(profile []obs.ComponentProfile) []obs.ComponentProfile {
	out := append([]obs.ComponentProfile(nil), profile...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallNs > out[j].WallNs })
	return out
}

// WriteTable renders a human-readable summary sorted by descending wall
// time: component, events, total wall, mean and max dispatch.
func (p *Profiler) WriteTable(w io.Writer) error {
	if p == nil || p.eng == nil {
		return nil
	}
	return WriteTableProfile(w, p.Export())
}

// WriteTableProfile is WriteTable over an exported (possibly merged)
// profile.
func WriteTableProfile(w io.Writer, profile []obs.ComponentProfile) error {
	profile = sortedByWall(profile)
	var totalWall time.Duration
	var totalEvents uint64
	for i := range profile {
		totalWall += time.Duration(profile[i].WallNs)
		totalEvents += profile[i].Events
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %12s %10s %10s %6s\n",
		"COMPONENT", "EVENTS", "WALL", "MEAN", "MAX", "%"); err != nil {
		return err
	}
	for i := range profile {
		cp := &profile[i]
		wall := time.Duration(cp.WallNs)
		mean := time.Duration(0)
		if cp.Events > 0 {
			mean = wall / time.Duration(cp.Events)
		}
		pct := 0.0
		if totalWall > 0 {
			pct = 100 * float64(wall) / float64(totalWall)
		}
		if _, err := fmt.Fprintf(w, "%-24s %12d %12s %10s %10s %5.1f%%\n",
			cp.Component, cp.Events, wall.Round(time.Microsecond), mean, time.Duration(cp.MaxNs), pct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-24s %12d %12s\n", "total", totalEvents, totalWall.Round(time.Microsecond))
	return err
}

// MergeExports folds several exported profiles (one per shard) into one:
// components are matched by name in first-seen order, events and wall
// time summed, worst dispatch maxed, and histogram buckets merged by
// bound. Sharded runs merge per-shard exports with this because one
// Profiler cannot observe several engines.
func MergeExports(exports ...[]obs.ComponentProfile) []obs.ComponentProfile {
	index := map[string]int{}
	var out []obs.ComponentProfile
	for _, exp := range exports {
		for i := range exp {
			cp := &exp[i]
			j, ok := index[cp.Component]
			if !ok {
				index[cp.Component] = len(out)
				out = append(out, obs.ComponentProfile{
					Component: cp.Component,
					Events:    cp.Events,
					WallNs:    cp.WallNs,
					MaxNs:     cp.MaxNs,
					Le:        append([]int64(nil), cp.Le...),
					Counts:    append([]int64(nil), cp.Counts...),
				})
				continue
			}
			dst := &out[j]
			dst.Events += cp.Events
			dst.WallNs += cp.WallNs
			if cp.MaxNs > dst.MaxNs {
				dst.MaxNs = cp.MaxNs
			}
			dst.Le, dst.Counts = mergeBuckets(dst.Le, dst.Counts, cp.Le, cp.Counts)
		}
	}
	return out
}

// mergeBuckets merges two sparse (bound, count) histogram lists, both
// sorted by ascending bound.
func mergeBuckets(le, counts, le2, counts2 []int64) ([]int64, []int64) {
	var mle, mcounts []int64
	i, j := 0, 0
	for i < len(le) || j < len(le2) {
		switch {
		case j >= len(le2) || (i < len(le) && le[i] < le2[j]):
			mle, mcounts = append(mle, le[i]), append(mcounts, counts[i])
			i++
		case i >= len(le) || le2[j] < le[i]:
			mle, mcounts = append(mle, le2[j]), append(mcounts, counts2[j])
			j++
		default:
			mle, mcounts = append(mle, le[i]), append(mcounts, counts[i]+counts2[j])
			i, j = i+1, j+1
		}
	}
	return mle, mcounts
}
