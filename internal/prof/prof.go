// Package prof is the engine self-profiler: it attaches to a sim.Engine's
// dispatch hook and accumulates per-component wall time, event counts,
// worst-case dispatch latency, and power-of-two latency histograms, keyed
// by the component labels threaded through the engine's scheduling sites.
//
// Like trace.Ring, a nil *Profiler no-ops every method, so instrumented
// code keeps unconditional calls. The observe path is allocation-free:
// state lives in a fixed array indexed by the one-byte component label,
// so attaching a profiler never perturbs the engine's zero-alloc dispatch
// loop — and since component labels are pure metadata, flow results stay
// bit-identical with profiling on or off.
package prof

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"time"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
)

// buckets is the latency histogram size: bucket i counts dispatches with
// duration in [2^(i-1), 2^i) ns, matching obs.Histogram's scheme. 2^47 ns
// is ~39 hours — far past any single dispatch.
const buckets = 48

// Stats is one component's accumulated dispatch accounting.
type Stats struct {
	Events  uint64        // dispatches attributed to the component
	Wall    time.Duration // total wall time inside those dispatches
	Max     time.Duration // worst single dispatch
	Buckets [buckets]int64
}

// Profiler accumulates dispatch stats per component. Construct with New
// and install with Attach; the zero value is usable but detached.
type Profiler struct {
	eng   *sim.Engine
	stats [256]Stats
}

// New returns a detached profiler.
func New() *Profiler { return &Profiler{} }

// Attach installs the profiler on eng's dispatch hook and remembers the
// engine so exports can resolve component names. Nil-safe: a nil
// profiler leaves the engine unprofiled.
func (p *Profiler) Attach(eng *sim.Engine) {
	if p == nil {
		return
	}
	p.eng = eng
	eng.SetProfile(p.observe)
}

// observe is the dispatch hook. It must not allocate: it runs once per
// engine event.
func (p *Profiler) observe(c sim.Component, d time.Duration) {
	s := &p.stats[c]
	s.Events++
	s.Wall += d
	if d > s.Max {
		s.Max = d
	}
	b := 0
	if ns := d.Nanoseconds(); ns > 0 {
		b = bits.Len64(uint64(ns))
	}
	if b >= buckets {
		b = buckets - 1
	}
	s.Buckets[b]++
}

// Stats returns the accumulated stats for component c.
func (p *Profiler) Stats(c sim.Component) Stats {
	if p == nil {
		return Stats{}
	}
	return p.stats[c]
}

// components lists the registered components that dispatched at least one
// event, in label order (which is registration order).
func (p *Profiler) components() []sim.Component {
	if p == nil || p.eng == nil {
		return nil
	}
	var out []sim.Component
	for i := range p.eng.ComponentNames() {
		if p.stats[i].Events > 0 {
			out = append(out, sim.Component(i))
		}
	}
	return out
}

// bucketLe is bucket i's exclusive ns upper bound.
func bucketLe(i int) int64 {
	if i >= 63 {
		return 1<<63 - 1
	}
	return 1 << uint(i)
}

// Export renders the profile for the run manifest: one entry per
// component that dispatched events, in registration order, with
// zero-count histogram buckets elided. Nil-safe (returns nil).
func (p *Profiler) Export() []obs.ComponentProfile {
	if p == nil || p.eng == nil {
		return nil
	}
	names := p.eng.ComponentNames()
	var out []obs.ComponentProfile
	for _, c := range p.components() {
		s := &p.stats[c]
		cp := obs.ComponentProfile{
			Component: names[c],
			Events:    s.Events,
			WallNs:    s.Wall.Nanoseconds(),
			MaxNs:     s.Max.Nanoseconds(),
		}
		for i, n := range s.Buckets {
			if n == 0 {
				continue
			}
			cp.Le = append(cp.Le, bucketLe(i))
			cp.Counts = append(cp.Counts, n)
		}
		out = append(out, cp)
	}
	return out
}

// WriteFolded emits the profile in folded-stacks form — one
// "engine;<component> <wall_us>" line per component — the input format
// flamegraph.pl and speedscope accept. Components that dispatched events
// but accumulated less than a microsecond are clamped to 1 so they stay
// visible. Lines are sorted by descending wall time.
func (p *Profiler) WriteFolded(w io.Writer) error {
	if p == nil || p.eng == nil {
		return nil
	}
	comps := p.components()
	sort.Slice(comps, func(i, j int) bool {
		a, b := &p.stats[comps[i]], &p.stats[comps[j]]
		if a.Wall != b.Wall {
			return a.Wall > b.Wall
		}
		return comps[i] < comps[j]
	})
	names := p.eng.ComponentNames()
	for _, c := range comps {
		s := &p.stats[c]
		us := s.Wall.Microseconds()
		if us < 1 {
			us = 1
		}
		if _, err := fmt.Fprintf(w, "engine;%s %d\n", names[c], us); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders a human-readable summary sorted by descending wall
// time: component, events, total wall, mean and max dispatch.
func (p *Profiler) WriteTable(w io.Writer) error {
	if p == nil || p.eng == nil {
		return nil
	}
	comps := p.components()
	sort.Slice(comps, func(i, j int) bool {
		a, b := &p.stats[comps[i]], &p.stats[comps[j]]
		if a.Wall != b.Wall {
			return a.Wall > b.Wall
		}
		return comps[i] < comps[j]
	})
	names := p.eng.ComponentNames()
	var totalWall time.Duration
	var totalEvents uint64
	for _, c := range comps {
		totalWall += p.stats[c].Wall
		totalEvents += p.stats[c].Events
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %12s %10s %10s %6s\n",
		"COMPONENT", "EVENTS", "WALL", "MEAN", "MAX", "%"); err != nil {
		return err
	}
	for _, c := range comps {
		s := &p.stats[c]
		mean := time.Duration(0)
		if s.Events > 0 {
			mean = s.Wall / time.Duration(s.Events)
		}
		pct := 0.0
		if totalWall > 0 {
			pct = 100 * float64(s.Wall) / float64(totalWall)
		}
		if _, err := fmt.Fprintf(w, "%-24s %12d %12s %10s %10s %5.1f%%\n",
			names[c], s.Events, s.Wall.Round(time.Microsecond), mean, s.Max, pct); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-24s %12d %12s\n", "total", totalEvents, totalWall.Round(time.Microsecond))
	return err
}
