package units

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/sim"
)

func TestTxTimeExact(t *testing.T) {
	// A 1538-byte frame at 40Gbps serializes in exactly 307.6ns.
	got := (40 * Gbps).TxTime(1538)
	if got != 307600*sim.Picosecond {
		t.Fatalf("TxTime = %v ps, want 307600", int64(got))
	}
	// 1000 bytes at 1Gbps is exactly 8us.
	if got := (1 * Gbps).TxTime(1000); got != 8*sim.Microsecond {
		t.Fatalf("TxTime = %v, want 8us", got)
	}
}

func TestTxTimeMonotoneInSize(t *testing.T) {
	f := func(a, b uint16) bool {
		r := 10 * Gbps
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return r.TxTime(x) <= r.TxTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestRateOfRoundTrip(t *testing.T) {
	// Moving N bytes in the serialization time of N bytes recovers the rate
	// to within rounding.
	for _, r := range []Rate{1 * Gbps, 10 * Gbps, 40 * Gbps, 100 * Gbps} {
		d := r.TxTime(1_000_000)
		got := RateOf(1_000_000, d)
		diff := float64(got-r) / float64(r)
		if diff < -1e-6 || diff > 1e-6 {
			t.Errorf("RateOf round trip for %v: got %v", r, got)
		}
	}
}

func TestBytesIn(t *testing.T) {
	// 10Gbps for 1ms moves 1.25MB.
	got := (10 * Gbps).BytesIn(sim.Millisecond)
	if got != 1_250_000 {
		t.Fatalf("BytesIn = %d, want 1250000", got)
	}
	if got := (10 * Gbps).BytesIn(0); got != 0 {
		t.Fatalf("BytesIn(0) = %d, want 0", got)
	}
}

func TestScale(t *testing.T) {
	if got := (40 * Gbps).Scale(0.5); got != 20*Gbps {
		t.Fatalf("Scale(0.5) = %v", got)
	}
	if got := (10 * Gbps).Scale(0.054); got != Rate(540*Mbps) {
		t.Fatalf("Scale(0.054) = %v", got)
	}
}

func TestStrings(t *testing.T) {
	if s := (40 * Gbps).String(); s != "40.00Gbps" {
		t.Errorf("rate string = %q", s)
	}
	if s := (ByteSize(64 * KB)).String(); s != "64.00KB" {
		t.Errorf("size string = %q", s)
	}
	if s := (ByteSize(100)).String(); s != "100B" {
		t.Errorf("size string = %q", s)
	}
}

func TestRateStringBranches(t *testing.T) {
	cases := map[Rate]string{
		2500 * Mbps: "2.50Gbps",
		250 * Mbps:  "250.00Mbps",
		30 * Kbps:   "30.00Kbps",
		Rate(500):   "500bps",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(r), got, want)
		}
	}
}

func TestByteSizeStringBranches(t *testing.T) {
	cases := map[ByteSize]string{
		3 * GB:  "3.00GB",
		2 * MB:  "2.00MB",
		64 * KB: "64.00KB",
		100:     "100B",
	}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(b), got, want)
		}
	}
}

func TestGbits(t *testing.T) {
	if (40 * Gbps).Gbits() != 40 {
		t.Fatal("Gbits wrong")
	}
}

func TestTxTimeZeroRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TxTime on zero rate must panic")
		}
	}()
	Rate(0).TxTime(100)
}

func TestRateOfZeroDuration(t *testing.T) {
	if RateOf(1000, 0) != 0 {
		t.Fatal("zero duration must yield zero rate")
	}
}
