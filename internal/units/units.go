// Package units provides typed helpers for link rates and byte sizes used
// throughout the simulator.
package units

import (
	"fmt"

	"flexpass/internal/sim"
)

// Rate is a link or pacing rate in bits per second.
type Rate int64

// Common rates.
const (
	BitPerSecond Rate = 1
	Kbps              = 1000 * BitPerSecond
	Mbps              = 1000 * Kbps
	Gbps              = 1000 * Mbps
)

// String formats the rate with an adaptive unit.
func (r Rate) String() string {
	switch {
	case r >= Gbps:
		return fmt.Sprintf("%.2fGbps", float64(r)/float64(Gbps))
	case r >= Mbps:
		return fmt.Sprintf("%.2fMbps", float64(r)/float64(Mbps))
	case r >= Kbps:
		return fmt.Sprintf("%.2fKbps", float64(r)/float64(Kbps))
	default:
		return fmt.Sprintf("%dbps", int64(r))
	}
}

// Gbits reports the rate as a floating-point number of gigabits per second.
func (r Rate) Gbits() float64 { return float64(r) / float64(Gbps) }

// Scale returns r scaled by f, rounding to the nearest bit per second.
func (r Rate) Scale(f float64) Rate { return Rate(float64(r)*f + 0.5) }

// TxTime returns the serialization delay of bytes at rate r.
func (r Rate) TxTime(bytes int) sim.Time {
	if r <= 0 {
		panic("units: TxTime on non-positive rate")
	}
	// bits * ps-per-second / rate, computed in int64 without overflow for
	// realistic packet sizes (bytes*8*1e12 fits int64 for bytes < ~1.1e6).
	bits := int64(bytes) * 8
	return sim.Time(bits * int64(sim.Second) / int64(r))
}

// BytesIn returns how many whole bytes rate r delivers in duration d.
func (r Rate) BytesIn(d sim.Time) int64 {
	if d <= 0 {
		return 0
	}
	// bits = r * d / 1s; guard overflow by splitting the multiply.
	whole := int64(d) / int64(sim.Second)
	frac := int64(d) % int64(sim.Second)
	bits := int64(r)*whole + int64(r)/8*frac/(int64(sim.Second)/8)
	return bits / 8
}

// RateOf returns the average rate at which bytes were moved over duration d.
func RateOf(bytes int64, d sim.Time) Rate {
	if d <= 0 {
		return 0
	}
	bits := float64(bytes) * 8
	return Rate(bits / d.Seconds())
}

// ByteSize is a data volume in bytes.
type ByteSize int64

// Common sizes.
const (
	Byte ByteSize = 1
	KB            = 1000 * Byte
	MB            = 1000 * KB
	GB            = 1000 * MB
	KiB           = 1024 * Byte
	MiB           = 1024 * KiB
)

// String formats the size with an adaptive unit.
func (b ByteSize) String() string {
	switch {
	case b >= GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}
