package farm

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flexpass/internal/harness"
	"flexpass/internal/obs"
)

// fakeResult builds a minimal successful harness result: an artifact
// whose manifest carries the point's scenario hash, so artifactValid
// accepts it on resume.
func fakeResult(sc harness.Scenario) *harness.Result {
	run := &obs.Run{}
	run.Manifest.Schema = obs.SchemaVersion
	run.Manifest.Scheme = string(sc.Scheme)
	run.Manifest.Config = map[string]string{}
	for k, v := range sc.ManifestConfig {
		run.Manifest.Config[k] = v
	}
	return &harness.Result{Scenario: sc, Telemetry: run}
}

// swapRunner replaces the harness seam for one test.
func swapRunner(t *testing.T, fn func(harness.Scenario) *harness.Result) {
	t.Helper()
	old := runScenario
	runScenario = fn
	t.Cleanup(func() { runScenario = old })
}

// twoPoints is a minimal two-point sweep.
func twoPoints(t *testing.T) []Point {
	t.Helper()
	s, err := ParseSpec([]byte(`{
		"name": "harden",
		"scheme": ["flexpass"],
		"topology": ["tiny"],
		"load": [0.3, 0.6],
		"duration_ms": 0.1,
		"drain_ms": 0.3
	}`))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("expected 2 points, got %d", len(pts))
	}
	return pts
}

// TestPointTimeoutKillsHungScenario: a scenario that never returns —
// not even to the engine watchdog — is abandoned by the backstop,
// recorded as a failure with its attempt count and elapsed time, and
// the sweep completes instead of wedging.
func TestPointTimeoutKillsHungScenario(t *testing.T) {
	hung := make(chan struct{})
	t.Cleanup(func() { close(hung) })
	var calls atomic.Int64
	swapRunner(t, func(sc harness.Scenario) *harness.Result {
		if calls.Add(1) == 1 {
			<-hung // simulate a wedge the cooperative watchdog cannot reach
			return fakeResult(sc)
		}
		return fakeResult(sc)
	})

	dir := t.TempDir()
	rep, err := Execute(twoPoints(t), dir, Options{
		Workers:      1,
		PointTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || len(rep.Failures) != 1 {
		t.Fatalf("ran=%d failures=%d, want 1/1", rep.Ran, len(rep.Failures))
	}
	f := rep.Failures[0]
	if !strings.Contains(f.Error, "wedged") {
		t.Errorf("failure error %q does not name the wedge", f.Error)
	}
	if f.Attempt != 1 {
		t.Errorf("failure attempt = %d, want 1", f.Attempt)
	}
	if f.ElapsedMS < 50 {
		t.Errorf("failure elapsed %.1fms, want >= the 50ms deadline", f.ElapsedMS)
	}
	if f.Hash == "" {
		t.Error("failure lost its point hash")
	}

	// failures.jsonl carries the same record, with the new fields.
	data, err := os.ReadFile(filepath.Join(dir, FailuresFile))
	if err != nil {
		t.Fatal(err)
	}
	var rec Failure
	if err := json.Unmarshal([]byte(strings.SplitN(strings.TrimSpace(string(data)), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Attempt != 1 || rec.ElapsedMS <= 0 || rec.Hash == "" {
		t.Errorf("failures.jsonl record incomplete: %+v", rec)
	}
}

// TestRetryRecoversTransientFailure: a point that panics on its first
// attempt and succeeds on the second lands its artifact, stamps the
// attempt count into the manifest, and reports no failure.
func TestRetryRecoversTransientFailure(t *testing.T) {
	var calls atomic.Int64
	var attemptsStamp atomic.Value
	swapRunner(t, func(sc harness.Scenario) *harness.Result {
		if calls.Add(1) == 1 {
			panic("transient fault")
		}
		attemptsStamp.Store(sc.ManifestConfig["attempts"])
		return fakeResult(sc)
	})

	dir := t.TempDir()
	rep, err := Execute(twoPoints(t)[:1], dir, Options{
		Workers: 1,
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || len(rep.Failures) != 0 {
		t.Fatalf("ran=%d failures=%d, want 1/0", rep.Ran, len(rep.Failures))
	}
	if got := attemptsStamp.Load(); got != "2" {
		t.Errorf("successful run stamped attempts=%v, want \"2\"", got)
	}
}

// TestRetriesExhausted: a persistently failing point is retried the
// configured number of times, then recorded with its final attempt
// count — and the rest of the sweep still runs.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	swapRunner(t, func(sc harness.Scenario) *harness.Result {
		if sc.Load < 0.5 { // fail only the load=0.3 point
			calls.Add(1)
			panic("permanent fault")
		}
		return fakeResult(sc)
	})

	rep, err := Execute(twoPoints(t), t.TempDir(), Options{
		Workers: 1,
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || len(rep.Failures) != 1 {
		t.Fatalf("ran=%d failures=%d, want 1/1", rep.Ran, len(rep.Failures))
	}
	if calls.Load() != 3 {
		t.Errorf("failing point executed %d times, want 3 (1 + 2 retries)", calls.Load())
	}
	if rep.Failures[0].Attempt != 3 {
		t.Errorf("failure records attempt %d, want 3", rep.Failures[0].Attempt)
	}
	if !strings.Contains(rep.Failures[0].Error, "permanent fault") {
		t.Errorf("failure error %q lost the panic message", rep.Failures[0].Error)
	}
}

// TestCancelDrainsAndStaysResumable: canceling the context mid-sweep
// stops dispatching, finishes in-flight points, still writes the index
// — and a second Execute resumes past the completed artifact.
func TestCancelDrainsAndStaysResumable(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	var once atomic.Bool
	swapRunner(t, func(sc harness.Scenario) *harness.Result {
		if once.CompareAndSwap(false, true) {
			close(started)
			<-release // hold the first point in flight until canceled
		}
		return fakeResult(sc)
	})

	dir := t.TempDir()
	done := make(chan *Report, 1)
	go func() {
		rep, err := Execute(twoPoints(t), dir, Options{Workers: 1, Ctx: ctx})
		if err != nil {
			t.Error(err)
		}
		done <- rep
	}()
	<-started
	cancel() // producer stops dispatching the second point
	close(release)
	rep := <-done
	if !rep.Canceled {
		t.Fatal("report does not record the cancellation")
	}
	if rep.Ran != 1 {
		t.Fatalf("in-flight point did not drain: ran=%d", rep.Ran)
	}
	if _, err := os.Stat(filepath.Join(dir, "index.json")); err != nil {
		t.Fatalf("canceled sweep left no index: %v", err)
	}

	// Resume: the completed artifact is skipped, the rest runs.
	rep2, err := Execute(twoPoints(t), dir, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Skipped != 1 || rep2.Ran != 1 {
		t.Fatalf("resume skipped=%d ran=%d, want 1/1", rep2.Skipped, rep2.Ran)
	}
	if rep2.Canceled {
		t.Fatal("resume spuriously reports cancellation")
	}
}
