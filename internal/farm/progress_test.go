package farm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"flexpass/internal/obs"
)

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EventStarted: "start", EventRan: "ran", EventSkipped: "skip", EventFailed: "FAIL",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if s := EventKind(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown kind stringified as %q", s)
	}
}

func TestFanout(t *testing.T) {
	var a, b int
	fn := Fanout(func(ProgressEvent) { a++ }, nil, func(ProgressEvent) { b++ })
	fn(ProgressEvent{Kind: EventRan})
	fn(ProgressEvent{Kind: EventFailed})
	if a != 2 || b != 2 {
		t.Fatalf("fanout delivered a=%d b=%d, want 2/2", a, b)
	}
}

func TestTrackerTransitions(t *testing.T) {
	tr := NewTracker("sweep-x", 4)
	st := tr.Status()
	if st.Sweep != "sweep-x" || st.Total != 4 || st.Done != 0 || len(st.Running) != 0 {
		t.Fatalf("fresh status = %+v", st)
	}

	tr.Observe(ProgressEvent{Kind: EventStarted, Worker: 1, Hash: "h1", Label: "p1"})
	tr.Observe(ProgressEvent{Kind: EventStarted, Worker: 0, Hash: "h0", Label: "p0"})
	st = tr.Status()
	if len(st.Running) != 2 {
		t.Fatalf("running = %+v, want 2 entries", st.Running)
	}
	// Snapshot is sorted by worker index.
	if st.Running[0].Worker != 0 || st.Running[1].Worker != 1 {
		t.Fatalf("running not sorted by worker: %+v", st.Running)
	}

	time.Sleep(2 * time.Millisecond) // let elapsed become nonzero for the ETA
	tr.Observe(ProgressEvent{Kind: EventRan, Worker: 0, Hash: "h0", Label: "p0"})
	tr.Observe(ProgressEvent{Kind: EventFailed, Worker: 1, Hash: "h1", Label: "p1", Err: "boom"})
	tr.Observe(ProgressEvent{Kind: EventSkipped, Worker: 0, Hash: "h2", Label: "p2"})
	st = tr.Status()
	if st.Done != 3 || st.Ran != 1 || st.Skipped != 1 || st.Failed != 1 {
		t.Fatalf("counts = %+v", st)
	}
	if len(st.Running) != 0 {
		t.Fatalf("running after completion = %+v", st.Running)
	}
	if len(st.Failures) != 1 || st.Failures[0].Error != "boom" || st.Failures[0].Hash != "h1" {
		t.Fatalf("failures = %+v", st.Failures)
	}
	if st.ETAMS <= 0 {
		t.Fatalf("mid-sweep ETA = %v, want > 0", st.ETAMS)
	}

	sum := tr.Summary()
	for _, want := range []string{"3/4 done", "1 ran", "1 resumed", "1 failed", "eta"} {
		if !strings.Contains(sum, want) {
			t.Fatalf("summary %q missing %q", sum, want)
		}
	}

	// Finishing the sweep drops the ETA.
	tr.Observe(ProgressEvent{Kind: EventRan, Worker: 1, Hash: "h3", Label: "p3"})
	st = tr.Status()
	if st.Done != 4 || st.ETAMS != 0 {
		t.Fatalf("finished status = %+v", st)
	}
}

func TestTrackerRegister(t *testing.T) {
	tr := NewTracker("s", 16)
	tr.Observe(ProgressEvent{Kind: EventStarted, Worker: 0, Hash: "h", Label: "p"})
	tr.Observe(ProgressEvent{Kind: EventRan, Worker: 0})
	tr.Observe(ProgressEvent{Kind: EventSkipped, Worker: 1})
	tr.Observe(ProgressEvent{Kind: EventStarted, Worker: 2, Hash: "h2", Label: "p2"})

	reg := obs.NewRegistry()
	tr.Register(reg)
	got := map[string]int64{}
	for _, r := range reg.Final() {
		if r.Entity == "farm" {
			got[r.Metric] = r.Value
		}
	}
	want := map[string]int64{
		"points_total": 16, "points_done": 2, "points_ran": 1,
		"points_skipped": 1, "points_failed": 0, "workers_running": 1,
	}
	for m, v := range want {
		if got[m] != v {
			t.Errorf("metric %s = %d, want %d (all: %v)", m, got[m], v, got)
		}
	}

	// Nil receivers and registries are tolerated.
	var nilTr *Tracker
	nilTr.Register(reg)
	tr.Register(nil)
}

// TestExecuteEmitsProgress runs a real 2-point sweep twice and checks the
// typed event stream: first pass start+ran per point, resumed pass one
// skip per point with no started events.
func TestExecuteEmitsProgress(t *testing.T) {
	pts, err := testSpec(t).Points()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	var mu sync.Mutex
	var events []ProgressEvent
	collect := func(ev ProgressEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}

	if _, err := Execute(pts[:2], dir, Options{Workers: 2, Progress: collect}); err != nil {
		t.Fatal(err)
	}
	counts := func() map[EventKind]int {
		mu.Lock()
		defer mu.Unlock()
		c := map[EventKind]int{}
		for _, ev := range events {
			c[ev.Kind]++
			if ev.Hash == "" || ev.Label == "" {
				t.Errorf("event missing identity: %+v", ev)
			}
			if ev.Kind == EventRan && ev.Elapsed <= 0 {
				t.Errorf("ran event without elapsed time: %+v", ev)
			}
		}
		return c
	}
	if c := counts(); c[EventStarted] != 2 || c[EventRan] != 2 || c[EventSkipped] != 0 || c[EventFailed] != 0 {
		t.Fatalf("first pass events = %v", c)
	}

	events = nil
	if _, err := Execute(pts[:2], dir, Options{Workers: 2, Progress: collect}); err != nil {
		t.Fatal(err)
	}
	if c := counts(); c[EventSkipped] != 2 || c[EventStarted] != 0 || c[EventRan] != 0 {
		t.Fatalf("resumed pass events = %v", c)
	}
}
