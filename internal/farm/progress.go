package farm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"flexpass/internal/obs"
)

// EventKind classifies one sweep progress transition.
type EventKind uint8

const (
	// EventStarted fires when a worker begins executing a point.
	EventStarted EventKind = iota
	// EventRan fires when a point's artifact landed successfully.
	EventRan
	// EventSkipped fires when a valid artifact let the point resume.
	EventSkipped
	// EventFailed fires when a point errored or panicked.
	EventFailed
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case EventStarted:
		return "start"
	case EventRan:
		return "ran"
	case EventSkipped:
		return "skip"
	case EventFailed:
		return "FAIL"
	}
	return fmt.Sprintf("EventKind(%d)", k)
}

// ProgressEvent is one typed sweep transition, emitted by Execute for
// every point a worker touches. Consumers get structure instead of a
// pre-formatted line: the CLI renders them, the Tracker aggregates them
// for the live /status endpoint, and both can subscribe at once.
type ProgressEvent struct {
	Kind    EventKind
	Worker  int    // worker pool index
	Hash    string // point content address
	Label   string // human-readable point identity
	Err     string // failure message (EventFailed only)
	Elapsed time.Duration
}

// Fanout composes progress consumers: each event goes to every fn.
func Fanout(fns ...func(ProgressEvent)) func(ProgressEvent) {
	return func(ev ProgressEvent) {
		for _, fn := range fns {
			if fn != nil {
				fn(ev)
			}
		}
	}
}

// RunningPoint is one worker's in-flight point in a status snapshot.
type RunningPoint struct {
	Worker    int     `json:"worker"`
	Hash      string  `json:"hash"`
	Label     string  `json:"label"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// FailureInfo is one failed point in a status snapshot.
type FailureInfo struct {
	Hash  string `json:"hash"`
	Label string `json:"label"`
	Error string `json:"error"`
}

// SweepStatus is the live /status payload for a sweep: progress counts,
// what every worker is doing right now, failures so far, and an ETA
// extrapolated from the completion rate.
type SweepStatus struct {
	Sweep     string         `json:"sweep,omitempty"`
	Total     int            `json:"total"`
	Done      int            `json:"done"` // ran + skipped + failed
	Ran       int            `json:"ran"`
	Skipped   int            `json:"skipped"`
	Failed    int            `json:"failed"`
	Running   []RunningPoint `json:"running"`
	ElapsedMS float64        `json:"elapsed_ms"`
	ETAMS     float64        `json:"eta_ms,omitempty"`
	Failures  []FailureInfo  `json:"failures,omitempty"`
}

// Tracker aggregates ProgressEvents into a thread-safe snapshot for the
// introspection server. It is the concurrency boundary between worker
// goroutines (Observe) and HTTP goroutines (Status / registry reads).
type Tracker struct {
	mu       sync.Mutex
	sweep    string
	total    int
	start    time.Time
	running  map[int]runningEntry
	ran      int
	skipped  int
	failed   int
	failures []FailureInfo
}

type runningEntry struct {
	hash, label string
	since       time.Time
}

// NewTracker builds a tracker for a sweep of total points.
func NewTracker(sweep string, total int) *Tracker {
	return &Tracker{sweep: sweep, total: total, start: time.Now(), running: make(map[int]runningEntry)}
}

// Observe folds one event in. Safe for concurrent use.
func (t *Tracker) Observe(ev ProgressEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch ev.Kind {
	case EventStarted:
		t.running[ev.Worker] = runningEntry{hash: ev.Hash, label: ev.Label, since: time.Now()}
	case EventRan:
		delete(t.running, ev.Worker)
		t.ran++
	case EventSkipped:
		delete(t.running, ev.Worker)
		t.skipped++
	case EventFailed:
		delete(t.running, ev.Worker)
		t.failed++
		t.failures = append(t.failures, FailureInfo{Hash: ev.Hash, Label: ev.Label, Error: ev.Err})
	}
}

// Status snapshots current progress.
func (t *Tracker) Status() SweepStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	st := SweepStatus{
		Sweep:     t.sweep,
		Total:     t.total,
		Done:      t.ran + t.skipped + t.failed,
		Ran:       t.ran,
		Skipped:   t.skipped,
		Failed:    t.failed,
		ElapsedMS: float64(now.Sub(t.start)) / float64(time.Millisecond),
		Failures:  append([]FailureInfo(nil), t.failures...),
	}
	for w, e := range t.running {
		st.Running = append(st.Running, RunningPoint{
			Worker: w, Hash: e.hash, Label: e.label,
			ElapsedMS: float64(now.Sub(e.since)) / float64(time.Millisecond),
		})
	}
	sort.Slice(st.Running, func(i, j int) bool { return st.Running[i].Worker < st.Running[j].Worker })
	if st.Done > 0 && st.Done < st.Total {
		rate := float64(st.Done) / st.ElapsedMS // points per ms
		if rate > 0 {
			st.ETAMS = float64(st.Total-st.Done) / rate
		}
	}
	return st
}

// Summary renders one compact progress line for the periodic log.
func (t *Tracker) Summary() string {
	st := t.Status()
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d done (%d ran, %d resumed, %d failed), %d running",
		st.Done, st.Total, st.Ran, st.Skipped, st.Failed, len(st.Running))
	if st.ETAMS > 0 {
		fmt.Fprintf(&b, ", eta %s", (time.Duration(st.ETAMS) * time.Millisecond).Round(time.Second))
	}
	return b.String()
}

// Register exposes the tracker in a stats registry under entity "farm",
// bridging sweep progress into the /metrics exposition. The registered
// closures lock the tracker, so reading the registry from an HTTP
// goroutine is safe as long as registration itself happened up front.
func (t *Tracker) Register(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	count := func(sel func(SweepStatus) int) func() int64 {
		return func() int64 { return int64(sel(t.Status())) }
	}
	reg.Gauge("farm", "points_total", count(func(s SweepStatus) int { return s.Total }))
	reg.CounterFunc("farm", "points_done", count(func(s SweepStatus) int { return s.Done }))
	reg.CounterFunc("farm", "points_ran", count(func(s SweepStatus) int { return s.Ran }))
	reg.CounterFunc("farm", "points_skipped", count(func(s SweepStatus) int { return s.Skipped }))
	reg.CounterFunc("farm", "points_failed", count(func(s SweepStatus) int { return s.Failed }))
	reg.Gauge("farm", "workers_running", count(func(s SweepStatus) int { return len(s.Running) }))
}
