// Package farm is the experiment orchestrator behind cmd/flexfarm: it
// expands a JSON sweep spec — lists over scheme, scheme options,
// topology, workload, load, deployment, wq, fault plan, and seed —
// into the cross-product of scenarios, executes them across a worker
// pool (one harness.Run per worker), and lands every run as a
// content-addressed obs JSONL artifact ready for lake ingestion.
//
// Three properties make sweeps safe to run at scale:
//
//   - Content addressing: an artifact is named by the hash of its
//     canonicalized scenario point, so the same point always lands in
//     the same file and two spec edits never collide.
//   - Resumability: a point whose artifact already exists, parses
//     cleanly, and carries the matching scenario hash in its manifest
//     is skipped; corrupt or mismatched artifacts are re-run in place.
//   - Failure isolation: a panicking or erroring scenario becomes a
//     failure record in failures.jsonl — it never kills the sweep.
package farm

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/harness"
	"flexpass/internal/lake"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/workload"
)

// Topologies names the fabrics a sweep spec may reference.
var Topologies = map[string]topo.ClosParams{
	// tiny: 4 hosts in 2 racks — for orchestrator tests and smoke sweeps.
	"tiny": {Pods: 2, AggPerPod: 1, TorPerPod: 1, HostsPerTor: 2, Cores: 1},
	// small: the repo's scaled 48-host Clos (tests and benchmarks).
	"small": topo.SmallClos,
	// paper: the §6.2 192-host fabric.
	"paper": topo.PaperClos,
	// big: the 768-host fabric for parallel-engine scaling runs.
	"big": topo.BigClos,
}

// Spec is a JSON sweep specification. Every list axis cross-multiplies;
// empty axes default to one neutral value, so a minimal spec is just
// {"scheme": ["flexpass"]}.
type Spec struct {
	Name string `json:"name,omitempty"`

	Schemes    []string            `json:"scheme"`
	Options    []map[string]string `json:"options,omitempty"`  // per-scheme option maps; default [{}]
	Topologies []string            `json:"topology,omitempty"` // default ["small"]
	// Workloads axis entries are either distribution names ("websearch")
	// or workload-plan files (anything ending in .json, parsed with
	// workload.ParsePlanFile). Plan entries enter the point identity by
	// content hash, so renaming a plan file does not re-run the sweep.
	Workloads   []string  `json:"workload,omitempty"`   // default ["websearch"]
	Loads       []float64 `json:"load,omitempty"`       // default [0.5]
	Deployments []float64 `json:"deployment,omitempty"` // default [0.5]
	WQs         []float64 `json:"wq,omitempty"`         // default [0.5]
	Seeds       []int64   `json:"seed,omitempty"`       // default [1]
	Shards      []int     `json:"shards,omitempty"`     // parallel-engine shard counts; default [0] = single engine

	// Faults lists fault timelines: "" (or omitted) is a clean run, a
	// path ending in .json is a plan file, anything else is the
	// faults.ParseSpec CLI shorthand.
	Faults []string `json:"fault,omitempty"`

	DurationMS     float64 `json:"duration_ms,omitempty"` // arrival window; default 2
	DrainMS        float64 `json:"drain_ms,omitempty"`    // default 5x duration
	IncastFraction float64 `json:"incast,omitempty"`
	PoolPackets    bool    `json:"pool_packets,omitempty"`

	// baseDir anchors relative plan-file entries (workload and fault
	// axes) when the spec came from a file, so checked-in specs work
	// from any working directory. ParseSpec (bytes) leaves it empty:
	// paths then resolve against the process cwd.
	baseDir string
}

// resolvePath anchors a relative plan-file path at the spec's directory.
func (s *Spec) resolvePath(p string) string {
	if s.baseDir == "" || filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(s.baseDir, p)
}

// ParseSpec decodes and validates a sweep spec. Unknown fields are
// rejected so a typo'd axis fails loudly instead of sweeping nothing.
func ParseSpec(data []byte) (*Spec, error) {
	return parseSpec(data, "")
}

func parseSpec(data []byte, baseDir string) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("farm: bad sweep spec: %w", err)
	}
	s.baseDir = baseDir
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseSpecFile reads and validates the sweep spec at path, defaulting
// the sweep name to the file stem. Relative plan-file entries in the
// workload and fault axes resolve against the spec file's directory.
func ParseSpecFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := parseSpec(data, filepath.Dir(path))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	return s, nil
}

// Validate checks every axis value against its registry: scheme names,
// topology labels, workload names, probability-like knobs, and fault
// entries (plan files are parsed here, so a broken plan fails the spec,
// not the sweep).
func (s *Spec) Validate() error {
	if len(s.Schemes) == 0 {
		return fmt.Errorf("farm: spec has no schemes")
	}
	registered := map[string]bool{}
	for _, n := range transport.SchemeNames() {
		registered[n] = true
	}
	for _, sch := range s.Schemes {
		if !registered[sch] {
			return fmt.Errorf("farm: unknown scheme %q (registered: %s)", sch, strings.Join(transport.SchemeNames(), ", "))
		}
	}
	for _, t := range s.Topologies {
		if _, ok := Topologies[t]; !ok {
			return fmt.Errorf("farm: unknown topology %q (want tiny, small, paper, big)", t)
		}
	}
	for _, w := range s.Workloads {
		if strings.HasSuffix(w, ".json") {
			if _, err := workload.ParsePlanFile(s.resolvePath(w)); err != nil {
				return fmt.Errorf("farm: workload plan %q: %w", w, err)
			}
			continue
		}
		if workload.ByName(w) == nil {
			return fmt.Errorf("farm: unknown workload %q", w)
		}
	}
	for _, l := range s.Loads {
		if l <= 0 || l > 1 {
			return fmt.Errorf("farm: load %g outside (0,1]", l)
		}
	}
	for _, d := range s.Deployments {
		if d < 0 || d > 1 {
			return fmt.Errorf("farm: deployment %g outside [0,1]", d)
		}
	}
	for _, w := range s.WQs {
		if w <= 0 || w >= 1 {
			return fmt.Errorf("farm: wq %g outside (0,1)", w)
		}
	}
	if s.DurationMS < 0 || s.DrainMS < 0 {
		return fmt.Errorf("farm: negative duration")
	}
	for _, n := range s.Shards {
		if n < 0 {
			return fmt.Errorf("farm: shards %d negative", n)
		}
	}
	for _, f := range s.Faults {
		if f == "" {
			continue
		}
		if _, err := s.resolveFault(f); err != nil {
			return fmt.Errorf("farm: fault %q: %w", f, err)
		}
	}
	return nil
}

// resolveFault turns a spec fault entry into a plan: a *.json path is
// a plan file, anything else the CLI shorthand.
func (s *Spec) resolveFault(entry string) (*faults.Plan, error) {
	if strings.HasSuffix(entry, ".json") {
		data, err := os.ReadFile(s.resolvePath(entry))
		if err != nil {
			return nil, err
		}
		p, err := faults.ParsePlan(data)
		if err != nil {
			return nil, err
		}
		if p.Name == "" {
			p.Name = strings.TrimSuffix(filepath.Base(entry), ".json")
		}
		return p, nil
	}
	return faults.ParseSpec(entry)
}

// Point is one expanded scenario of a sweep: the coordinates on every
// axis. Its canonical JSON form is the content address of the run.
type Point struct {
	Sweep   string            `json:"sweep,omitempty"`
	Scheme  string            `json:"scheme"`
	Options map[string]string `json:"options,omitempty"`
	Topo    string            `json:"topology"`
	// Workload is the spec entry: a distribution name, or a plan file
	// path kept for display; WorkloadHash is the resolved plan's content
	// hash and, when set, the part that enters the identity (so a
	// renamed plan file with the same sources is the same point).
	Workload     string  `json:"workload"`
	WorkloadHash string  `json:"workload_hash,omitempty"`
	Load         float64 `json:"load"`
	Deployment   float64 `json:"deployment"`
	WQ           float64 `json:"wq"`
	Seed         int64   `json:"seed"`
	// Shards selects the parallel engine (0 = single engine). Omitted
	// when zero so pre-sharding point hashes are unchanged.
	Shards int `json:"shards,omitempty"`
	// Fault is the spec entry for display; FaultHash is the resolved
	// plan's content hash and the part that enters the identity (so a
	// renamed plan file with the same timeline is the same point).
	Fault     string `json:"fault,omitempty"`
	FaultHash string `json:"fault_hash,omitempty"`

	DurationMS     float64 `json:"duration_ms"`
	DrainMS        float64 `json:"drain_ms"`
	IncastFraction float64 `json:"incast,omitempty"`
	PoolPackets    bool    `json:"pool_packets,omitempty"`

	plan  *faults.Plan
	wplan *workload.Plan
}

// Hash is the point's content address: sha256 over the canonical JSON
// form with the display-only fault and workload-plan entries blanked
// (their identities ride on FaultHash / WorkloadHash). Go marshals
// struct fields in declaration order and maps with sorted keys, so the
// encoding is canonical.
func (p Point) Hash() string {
	p.Fault = ""
	p.plan = nil
	p.wplan = nil
	if p.WorkloadHash != "" {
		p.Workload = ""
	}
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("farm: hashing point: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:12])
}

// Label is a compact human identity for logs and failure records.
func (p Point) Label() string {
	l := fmt.Sprintf("%s/%s/%s load=%g dep=%g wq=%g seed=%d",
		p.Scheme, p.Topo, p.Workload, p.Load, p.Deployment, p.WQ, p.Seed)
	if len(p.Options) > 0 {
		l += " " + lake.OptionsString(p.Options)
	}
	if p.Fault != "" {
		l += " fault=" + p.Fault
	}
	if p.Shards > 0 {
		l += fmt.Sprintf(" shards=%d", p.Shards)
	}
	return l
}

// Scenario builds the harness scenario for the point, stamping the
// scenario hash, topology label, and sweep name into the manifest so
// the lake can key on them.
func (p Point) Scenario() harness.Scenario {
	sc := harness.BaseScenario(false)
	sc.Clos = Topologies[p.Topo]
	sc.Scheme = harness.Scheme(p.Scheme)
	sc.SchemeOptions = p.Options
	if p.wplan != nil {
		sc.Workload = nil
		sc.WorkloadPlan = p.wplan
	} else {
		sc.Workload = workload.ByName(p.Workload)
	}
	sc.Load = p.Load
	sc.Deployment = p.Deployment
	sc.WQ = p.WQ
	sc.Seed = p.Seed
	sc.Shards = p.Shards
	sc.Duration = sim.Time(p.DurationMS * float64(sim.Millisecond))
	sc.Drain = sim.Time(p.DrainMS * float64(sim.Millisecond))
	sc.IncastFraction = p.IncastFraction
	sc.PoolPackets = p.PoolPackets
	sc.FaultPlan = p.plan
	sc.Telemetry = &obs.Options{}
	sc.ManifestConfig = map[string]string{
		"scenario_hash": p.Hash(),
		"topo":          p.Topo,
		"sweep":         p.Sweep,
	}
	return sc
}

// orDefault returns the axis or its single-value default.
func orDefault[T any](axis []T, def T) []T {
	if len(axis) == 0 {
		return []T{def}
	}
	return axis
}

// Points expands the spec's cross-product in a fixed axis order
// (scheme, options, topology, workload, load, deployment, wq, fault,
// seed, shards), resolving every fault entry once.
func (s *Spec) Points() ([]Point, error) {
	opts := s.Options
	if len(opts) == 0 {
		opts = []map[string]string{nil}
	}
	topos := orDefault(s.Topologies, "small")
	wls := orDefault(s.Workloads, "websearch")
	loads := orDefault(s.Loads, 0.5)
	deps := orDefault(s.Deployments, 0.5)
	wqs := orDefault(s.WQs, 0.5)
	seeds := orDefault(s.Seeds, 1)
	shards := orDefault(s.Shards, 0)
	fault := orDefault(s.Faults, "")

	durMS := s.DurationMS
	if durMS == 0 {
		durMS = 2
	}
	drainMS := s.DrainMS
	if drainMS == 0 {
		drainMS = 5 * durMS
	}

	plans := make([]*faults.Plan, len(fault))
	hashes := make([]string, len(fault))
	for i, f := range fault {
		if f == "" {
			continue
		}
		p, err := s.resolveFault(f)
		if err != nil {
			return nil, fmt.Errorf("farm: fault %q: %w", f, err)
		}
		plans[i], hashes[i] = p, p.Hash()
	}
	wplans := make([]*workload.Plan, len(wls))
	whashes := make([]string, len(wls))
	for i, w := range wls {
		if !strings.HasSuffix(w, ".json") {
			continue
		}
		p, err := workload.ParsePlanFile(s.resolvePath(w))
		if err != nil {
			return nil, fmt.Errorf("farm: workload plan %q: %w", w, err)
		}
		wplans[i], whashes[i] = p, p.Hash()
	}

	var pts []Point
	for _, sch := range s.Schemes {
		for _, opt := range opts {
			for _, tp := range topos {
				for wi, wl := range wls {
					for _, load := range loads {
						for _, dep := range deps {
							for _, wq := range wqs {
								for fi, f := range fault {
									for _, seed := range seeds {
										for _, nsh := range shards {
											pts = append(pts, Point{
												Sweep: s.Name, Scheme: sch, Options: opt,
												Topo: tp, Workload: wl,
												WorkloadHash: whashes[wi],
												Load:         load, Deployment: dep, WQ: wq,
												Seed: seed, Shards: nsh,
												Fault: f, FaultHash: hashes[fi],
												DurationMS: durMS, DrainMS: drainMS,
												IncastFraction: s.IncastFraction,
												PoolPackets:    s.PoolPackets,
												plan:           plans[fi],
												wplan:          wplans[wi],
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return pts, nil
}

// Failure is one isolated scenario failure, recorded in
// failures.jsonl. Attempt and ElapsedMS make retried and timed-out
// points auditable after a soak: Attempt is how many executions the
// point got before being given up on, ElapsedMS the wall-clock cost of
// the last one.
type Failure struct {
	Hash      string  `json:"hash"`
	Label     string  `json:"label"`
	Point     Point   `json:"point"`
	Error     string  `json:"error"`
	Attempt   int     `json:"attempt"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// Report summarizes one Execute call.
type Report struct {
	Total    int       // points in the sweep
	Ran      int       // executed this call
	Skipped  int       // valid artifact already present
	Canceled bool      // the context was canceled before every point was dispatched
	Failures []Failure // failed this call
}

// Options tunes Execute.
type Options struct {
	Workers int  // worker pool size; <=0 means GOMAXPROCS
	Force   bool // re-run points even when a valid artifact exists
	// Progress, when non-nil, receives one typed event per point
	// transition: started when a worker picks a point up, then exactly
	// one of ran / skipped / failed. Execute invokes it concurrently
	// from worker goroutines — it must be safe for concurrent use
	// (Tracker.Observe is; compose consumers with Fanout).
	Progress func(ProgressEvent)

	// PointTimeout, when positive, bounds each point's execution: the
	// scenario runs under a harness deadline of this much wall clock,
	// and a hard backstop at ~2x abandons even a run whose engine never
	// reaches a watchdog poll (wedged outside the dispatch loop). A
	// timed-out point becomes an ordinary failure; the sweep continues.
	PointTimeout time.Duration

	// Retries is how many additional executions a failing point gets
	// before it is recorded in failures.jsonl (0 = fail on the first
	// error). Retries target transient host-level trouble; a
	// deterministic scenario panic will simply fail Retries+1 times.
	Retries int

	// Backoff is the wait before the first retry, doubling with each
	// subsequent one. Zero defaults to 250ms.
	Backoff time.Duration

	// Ctx, when non-nil, cancels the sweep cooperatively: once done, no
	// new point is dispatched and no retry waits out its backoff, but
	// in-flight points drain, failures.jsonl is flushed, and the index
	// is rebuilt — so an interrupted sweep resumes exactly where it
	// stopped. Nil means run to completion.
	Ctx context.Context
}

// Execute runs every point against the lake directory layout
// (<dir>/runs/<hash>.jsonl), resuming past valid artifacts, isolating
// failures, and finally rebuilding <dir>/index.json. The failure log
// is rewritten each call to hold exactly the still-failing points.
func Execute(points []Point, dir string, opt Options) (*Report, error) {
	runsDir := filepath.Join(dir, lake.RunsDir)
	if err := os.MkdirAll(runsDir, 0o755); err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}
	progress := opt.Progress
	if progress == nil {
		progress = func(ProgressEvent) {}
	}

	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	rep := &Report{Total: len(points)}
	var mu sync.Mutex
	jobs := make(chan Point)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for pt := range jobs {
				hash := pt.Hash()
				label := pt.Label()
				path := filepath.Join(runsDir, hash+".jsonl")
				if !opt.Force && artifactValid(path, hash) {
					mu.Lock()
					rep.Skipped++
					mu.Unlock()
					progress(ProgressEvent{Kind: EventSkipped, Worker: worker, Hash: hash, Label: label})
					continue
				}
				progress(ProgressEvent{Kind: EventStarted, Worker: worker, Hash: hash, Label: label})
				var err error
				var elapsed time.Duration
				attempt := 0
				for {
					attempt++
					start := time.Now()
					err = runPoint(pt, path, attempt, opt.PointTimeout)
					elapsed = time.Since(start)
					if err == nil || attempt > opt.Retries || ctx.Err() != nil {
						break
					}
					// Exponential backoff between attempts; a canceled
					// context skips the wait and gives up on the point.
					wait := opt.Backoff
					if wait <= 0 {
						wait = 250 * time.Millisecond
					}
					wait <<= uint(attempt - 1)
					timer := time.NewTimer(wait)
					select {
					case <-ctx.Done():
						timer.Stop()
					case <-timer.C:
					}
					if ctx.Err() != nil {
						break
					}
				}
				mu.Lock()
				if err != nil {
					rep.Failures = append(rep.Failures, Failure{
						Hash: hash, Label: label, Point: pt, Error: err.Error(),
						Attempt:   attempt,
						ElapsedMS: float64(elapsed) / float64(time.Millisecond),
					})
					mu.Unlock()
					progress(ProgressEvent{Kind: EventFailed, Worker: worker, Hash: hash, Label: label,
						Err: err.Error(), Elapsed: elapsed})
					continue
				}
				rep.Ran++
				mu.Unlock()
				progress(ProgressEvent{Kind: EventRan, Worker: worker, Hash: hash, Label: label, Elapsed: elapsed})
			}
		}(w)
	}
dispatch:
	for _, pt := range points {
		select {
		case jobs <- pt:
		case <-ctx.Done():
			rep.Canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	sort.Slice(rep.Failures, func(i, j int) bool { return rep.Failures[i].Hash < rep.Failures[j].Hash })
	if err := writeFailures(filepath.Join(dir, FailuresFile), rep.Failures); err != nil {
		return rep, err
	}
	ix := &lake.Index{}
	if _, errs := ix.IngestDir(runsDir); len(errs) > 0 {
		return rep, fmt.Errorf("farm: indexing: %v", errs[0])
	}
	ix.Sort()
	if err := ix.WriteTo(dir); err != nil {
		return rep, err
	}
	return rep, nil
}

// FailuresFile names the per-lake failure log.
const FailuresFile = "failures.jsonl"

// artifactValid reports whether an existing artifact can be resumed
// past: it must parse cleanly end-to-end and its manifest must carry
// the expected scenario hash. Anything else — missing, torn mid-write,
// or produced by a different spec revision — is re-run.
func artifactValid(path, hash string) bool {
	run, err := obs.ReadJSONLFile(path)
	if err != nil || run == nil {
		return false
	}
	return run.Manifest.Config["scenario_hash"] == hash
}

// runScenario is the harness entry point, indirected so tests can
// substitute a hung or failing scenario without building one out of
// simulator primitives.
var runScenario = harness.Run

// runPoint executes one scenario attempt and lands its artifact
// atomically (tmp + rename). With a timeout it adds two layers of
// supervision: the harness deadline watchdog kills the engine
// cooperatively at timeout, and a hard backstop at ~2x abandons the
// worker goroutine entirely if the run wedged somewhere the watchdog
// cannot reach; an abandoned run is barred from landing its artifact,
// so a timed-out point never masquerades as a completed one.
func runPoint(pt Point, path string, attempt int, timeout time.Duration) error {
	if timeout <= 0 {
		return executePoint(pt, path, attempt, 0, nil)
	}
	backstop := 2 * timeout
	if backstop < timeout+time.Second {
		backstop = timeout + time.Second
	}
	var abandoned atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- executePoint(pt, path, attempt, timeout, &abandoned)
	}()
	timer := time.NewTimer(backstop)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		abandoned.Store(true)
		return fmt.Errorf("point wedged: no result after %v (deadline %v; engine watchdog unreachable)", backstop, timeout)
	}
}

// executePoint runs the scenario, converting panics — harness.Run
// panics on scenario contract violations, and the deadline/stall
// watchdog panics with *harness.KilledError — into ordinary errors.
func executePoint(pt Point, path string, attempt int, deadline time.Duration, abandoned *atomic.Bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ke, ok := r.(*harness.KilledError); ok {
				err = ke
			} else {
				err = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	sc := pt.Scenario()
	sc.Deadline = deadline
	if attempt > 0 {
		// The attempt count rides in the manifest config so the lake's
		// attempts column can report how many executions a point took.
		sc.ManifestConfig["attempts"] = strconv.Itoa(attempt)
	}
	res := runScenario(sc)
	if res.Telemetry == nil {
		return fmt.Errorf("run produced no telemetry artifact")
	}
	if abandoned != nil && abandoned.Load() {
		return fmt.Errorf("run finished after the backstop abandoned it; artifact discarded")
	}
	tmp := path + ".tmp"
	if err := res.Telemetry.WriteJSONLFile(tmp); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// writeFailures rewrites the failure log (one JSON object per line).
// An empty failure set removes the file, so a fully clean resume
// leaves no stale log behind.
func writeFailures(path string, failures []Failure) error {
	if len(failures) == 0 {
		err := os.Remove(path)
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, fl := range failures {
		if err := enc.Encode(fl); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
