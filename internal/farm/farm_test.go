package farm

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"flexpass/internal/lake"
)

// testSpec is a 4-point sweep on the tiny fabric, sized to keep the
// whole suite fast.
func testSpec(t *testing.T) *Spec {
	t.Helper()
	s, err := ParseSpec([]byte(`{
		"name": "t",
		"scheme": ["flexpass", "dctcp"],
		"topology": ["tiny"],
		"load": [0.3, 0.6],
		"deployment": [1.0],
		"seed": [1],
		"duration_ms": 0.3,
		"drain_ms": 1.0
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSpecDefaultsAndExpansion(t *testing.T) {
	s, err := ParseSpec([]byte(`{"scheme": ["flexpass"]}`))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 {
		t.Fatalf("minimal spec expanded to %d points", len(pts))
	}
	p := pts[0]
	if p.Topo != "small" || p.Workload != "websearch" || p.Load != 0.5 || p.Seed != 1 {
		t.Errorf("defaults wrong: %+v", p)
	}
	if p.DurationMS != 2 || p.DrainMS != 10 {
		t.Errorf("duration defaults wrong: %+v", p)
	}

	pts, err = testSpec(t).Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("2 schemes x 2 loads expanded to %d points", len(pts))
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{}`,                           // no schemes
		`{"scheme": ["nosuchscheme"]}`, // unregistered scheme
		`{"scheme": ["flexpass"], "topology": ["x"]}`, // unknown topology
		`{"scheme": ["flexpass"], "workload": ["x"]}`, // unknown workload
		`{"scheme": ["flexpass"], "load": [1.5]}`,     // load out of range
		`{"scheme": ["flexpass"], "wq": [0]}`,         // wq out of range
		`{"scheme": ["flexpass"], "typo_axis": [1]}`,  // unknown field
		`{"scheme": ["flexpass"], "fault": ["garbage spec"]}`,
	}
	for _, in := range bad {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("spec %s accepted", in)
		}
	}
}

func TestPointHashIdentity(t *testing.T) {
	pts, err := testSpec(t).Points()
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	h := p.Hash()
	if len(h) != 24 {
		t.Fatalf("hash %q not 24 hex chars", h)
	}
	if p.Hash() != h {
		t.Error("hash not deterministic")
	}
	// The display-only fault entry is excluded from identity...
	q := p
	q.Fault = "renamed-plan.json"
	if q.Hash() != h {
		t.Error("display fault name changed the hash")
	}
	// ...but the resolved fault-plan hash, and every real axis, are in.
	q = p
	q.FaultHash = "deadbeef"
	if q.Hash() == h {
		t.Error("fault plan hash not part of the identity")
	}
	q = p
	q.Seed = 99
	if q.Hash() == h {
		t.Error("seed not part of the identity")
	}
	// All points in a sweep are distinct.
	seen := map[string]bool{}
	for _, pt := range pts {
		if h := pt.Hash(); seen[h] {
			t.Fatalf("duplicate hash %s", h)
		} else {
			seen[h] = true
		}
	}
}

// TestCheckedInSpecsValid pins every sweep spec the repo ships — the
// CI micro-sweep and the examples — as parseable and expandable.
func TestCheckedInSpecsValid(t *testing.T) {
	specs, err := filepath.Glob("../../examples/sweeps/*.json")
	if err != nil {
		t.Fatal(err)
	}
	specs = append(specs, "../../ci/microsweep.json")
	if len(specs) < 3 {
		t.Fatalf("expected at least 3 checked-in specs, found %v", specs)
	}
	for _, path := range specs {
		s, err := ParseSpecFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		pts, err := s.Points()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(pts) == 0 {
			t.Errorf("%s expands to zero points", path)
		}
		if strings.Contains(path, "scaling") && len(pts) < 64 {
			t.Errorf("scaling sweep has %d points, want >= 64", len(pts))
		}
	}
}

// TestExecuteResumes is the resumability contract: running the second
// half of a half-finished sweep must (a) not rewrite the finished
// artifacts and (b) leave the lake with contents identical to a
// from-scratch full run — proven with a zero-tolerance diff, which
// gates every deterministic metric and ignores only the wall-clock
// perf self-reports.
func TestExecuteResumes(t *testing.T) {
	pts, err := testSpec(t).Points()
	if err != nil {
		t.Fatal(err)
	}
	resumed := t.TempDir()
	rep, err := Execute(pts[:2], resumed, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 2 || rep.Skipped != 0 || len(rep.Failures) != 0 {
		t.Fatalf("half sweep: %+v", rep)
	}
	// Snapshot the finished artifacts' bytes.
	before := map[string][]byte{}
	for _, p := range pts[:2] {
		path := filepath.Join(resumed, lake.RunsDir, p.Hash()+".jsonl")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		before[path] = data
	}

	// Resume with the full point set.
	rep, err = Execute(pts, resumed, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 2 || rep.Skipped != 2 || len(rep.Failures) != 0 {
		t.Fatalf("resume: %+v", rep)
	}
	for path, want := range before {
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("resume rewrote finished artifact %s", path)
		}
	}

	// From-scratch run of the same sweep in a fresh lake.
	scratch := t.TempDir()
	if _, err := Execute(pts, scratch, Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	a, err := lake.Load(resumed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lake.Load(scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 || len(b.Rows) != 4 {
		t.Fatalf("lakes hold %d/%d rows, want 4/4", len(a.Rows), len(b.Rows))
	}
	d, err := lake.Diff(a, b, lake.Tolerance{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() {
		var sb strings.Builder
		d.WriteText(&sb)
		t.Errorf("resumed lake differs from from-scratch lake:\n%s", sb.String())
	}
}

// TestExecuteCorruptArtifactReruns: a torn artifact fails validation
// and is re-executed rather than resumed past.
func TestExecuteCorruptArtifactReruns(t *testing.T) {
	pts, err := testSpec(t).Points()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := Execute(pts[:1], dir, Options{}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, lake.RunsDir, pts[0].Hash()+".jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(pts[:1], dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || rep.Skipped != 0 {
		t.Fatalf("torn artifact was resumed past: %+v", rep)
	}
}

// TestExecuteIsolatesFailures: a scenario whose fault plan panics
// inside the harness becomes a failure record; the rest of the sweep
// completes, and a later clean run removes the failure log.
func TestExecuteIsolatesFailures(t *testing.T) {
	s, err := ParseSpec([]byte(`{
		"name": "f",
		"scheme": ["flexpass"],
		"topology": ["tiny"],
		"deployment": [1.0],
		"duration_ms": 0.3, "drain_ms": 1.0,
		"fault": ["", "down@nosuchport*@0.1ms-0.2ms"]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("expanded to %d points", len(pts))
	}
	dir := t.TempDir()
	rep, err := Execute(pts, dir, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ran != 1 || len(rep.Failures) != 1 {
		t.Fatalf("failure not isolated: %+v", rep)
	}
	f := rep.Failures[0]
	if !strings.Contains(f.Error, "panic") || !strings.Contains(f.Error, "nosuchport") {
		t.Errorf("failure error: %q", f.Error)
	}
	// The failure log holds the record as one JSON line.
	data, err := os.ReadFile(filepath.Join(dir, FailuresFile))
	if err != nil {
		t.Fatal(err)
	}
	var rec Failure
	if err := json.Unmarshal([]byte(strings.SplitN(string(data), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Hash != f.Hash || rec.Point.Fault != "down@nosuchport*@0.1ms-0.2ms" {
		t.Errorf("failure record: %+v", rec)
	}
	// The lake still indexed the clean half.
	ix, err := lake.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.Rows) != 1 {
		t.Fatalf("lake rows after partial failure: %d", len(ix.Rows))
	}
	// Re-running only the good point leaves no stale failure log.
	if _, err := Execute(pts[:1], dir, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, FailuresFile)); !os.IsNotExist(err) {
		t.Error("stale failure log survived a clean run")
	}
}

// A workload axis entry ending in .json is a workload-plan file: the
// point carries the plan (Scenario gets WorkloadPlan) and its identity
// is the plan's content hash, so renaming the file changes neither the
// point hash nor the artifact it resumes from.
func TestWorkloadPlanAxis(t *testing.T) {
	dir := t.TempDir()
	planJSON := `{"sources":[
		{"kind":"poisson","tenant":"bg","cdf":"websearch","load":0.3},
		{"kind":"incast","fraction":0.1,"flow_size":8000,"coflow":true}
	]}`
	specFor := func(name string) *Spec {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(planJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := ParseSpec([]byte(`{
			"name": "wp",
			"scheme": ["flexpass"],
			"topology": ["tiny"],
			"workload": ["websearch", ` + strconv.Quote(path) + `],
			"duration_ms": 0.3
		}`))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	pts, err := specFor("first.json").Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("expanded to %d points", len(pts))
	}
	named, planned := pts[0], pts[1]
	if named.WorkloadHash != "" {
		t.Fatalf("distribution-name point grew a plan hash: %+v", named)
	}
	if planned.WorkloadHash == "" || !strings.HasSuffix(planned.Workload, "first.json") {
		t.Fatalf("plan point wrong: %+v", planned)
	}
	sc := planned.Scenario()
	if sc.WorkloadPlan == nil || sc.Workload != nil {
		t.Fatal("plan point's scenario should route through WorkloadPlan")
	}
	if sc.WorkloadPlan.Hash() != planned.WorkloadHash {
		t.Fatal("point hash does not match the resolved plan")
	}

	// Renaming the plan file must not change the point identity.
	pts2, err := specFor("renamed.json").Points()
	if err != nil {
		t.Fatal(err)
	}
	if pts2[1].Hash() != planned.Hash() {
		t.Fatalf("renaming the plan file changed the point hash: %s vs %s",
			pts2[1].Hash(), planned.Hash())
	}
	if pts2[0].Hash() != named.Hash() {
		t.Fatal("plain workload point hash drifted")
	}

	// A broken plan file fails spec validation up front.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"sources":[{"kind":"warp"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSpec([]byte(`{"scheme":["flexpass"],"workload":[` + strconv.Quote(bad) + `]}`)); err == nil {
		t.Fatal("spec with an invalid plan file should fail validation")
	}
}
