// Package planspec holds the small wire vocabulary shared by the
// repo's data-driven plan formats (fault plans, workload plans): a
// sim.Time JSON codec with forgiving input and canonical output. Both
// plan families hash their canonical JSON as the scenario identity, so
// the codec lives in one place and marshals deterministically.
package planspec

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"flexpass/internal/sim"
)

// TimeSpec is a sim.Time with a forgiving JSON form: a bare number is
// picoseconds (the artifact convention), a string accepts a unit suffix
// ("250us", "2ms", "1.5s"). It always marshals as exact picoseconds so
// a plan round-trips losslessly and hashes canonically.
type TimeSpec sim.Time

// Time converts to the engine clock.
func (t TimeSpec) Time() sim.Time { return sim.Time(t) }

// MarshalJSON emits exact picoseconds.
func (t TimeSpec) MarshalJSON() ([]byte, error) {
	return []byte(strconv.FormatInt(int64(t), 10)), nil
}

// UnmarshalJSON accepts a picosecond number or a unit-suffixed string.
func (t *TimeSpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		d, err := ParseTime(s)
		if err != nil {
			return err
		}
		*t = TimeSpec(d)
		return nil
	}
	var ps int64
	if err := json.Unmarshal(b, &ps); err != nil {
		return fmt.Errorf("time must be a picosecond number or a unit-suffixed string: %w", err)
	}
	*t = TimeSpec(ps)
	return nil
}

// ParseTime parses "2ms", "250us", "1.5s", "40ns", "7ps". A bare number
// string is picoseconds.
func ParseTime(s string) (sim.Time, error) {
	s = strings.TrimSpace(s)
	unit := sim.Picosecond
	switch {
	case strings.HasSuffix(s, "ps"):
		s = s[:len(s)-2]
	case strings.HasSuffix(s, "ns"):
		s, unit = s[:len(s)-2], sim.Nanosecond
	case strings.HasSuffix(s, "us"):
		s, unit = s[:len(s)-2], sim.Microsecond
	case strings.HasSuffix(s, "ms"):
		s, unit = s[:len(s)-2], sim.Millisecond
	case strings.HasSuffix(s, "s"):
		s, unit = s[:len(s)-1], sim.Second
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q: %w", s, err)
	}
	return sim.Time(v * float64(unit)), nil
}

// ParseWindow parses "START-END" or "START" (end 0 = open).
func ParseWindow(w string) (at, end sim.Time, err error) {
	lo, hi, ok := strings.Cut(w, "-")
	if at, err = ParseTime(lo); err != nil {
		return 0, 0, err
	}
	if !ok {
		return at, 0, nil
	}
	if end, err = ParseTime(hi); err != nil {
		return 0, 0, err
	}
	return at, end, nil
}
