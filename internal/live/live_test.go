package live

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"flexpass/internal/obs"
)

func testReadings() []obs.Reading {
	// Entity-then-metric order, as Registry.Final produces.
	return []obs.Reading{
		{Entity: "farm", Metric: "points_done", Kind: obs.Cumulative, Value: 7},
		{Entity: "farm", Metric: "points_total", Kind: obs.Instant, Value: 16},
		{Entity: "port/tor0:up0", Metric: "tx_bytes", Kind: obs.Cumulative, Value: 12345},
		{Entity: "port/tor1:up0", Metric: "tx_bytes", Kind: obs.Cumulative, Value: 999},
	}
}

// expositionLine matches one Prometheus text-exposition sample line.
var expositionLine = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*\{entity="[^"\n]*"\} -?\d+$`)

func TestWriteMetricsFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteMetrics(&b, testReadings()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	// One TYPE line per metric family, one sample per reading.
	var types, samples int
	lastType := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			types++
			lastType = l
			fields := strings.Fields(l)
			if len(fields) != 4 || (fields[3] != "counter" && fields[3] != "gauge") {
				t.Fatalf("malformed TYPE line %q", l)
			}
			continue
		}
		samples++
		if !expositionLine.MatchString(l) {
			t.Fatalf("malformed sample line %q", l)
		}
		if !strings.HasPrefix(l, strings.Fields(lastType)[2]) {
			t.Fatalf("sample %q not grouped under its TYPE line %q", l, lastType)
		}
	}
	if types != 3 {
		t.Fatalf("got %d TYPE lines, want 3 (points_done, points_total, tx_bytes)", types)
	}
	if samples != 4 {
		t.Fatalf("got %d samples, want 4", samples)
	}
	for _, want := range []string{
		"# TYPE flexpass_points_done counter",
		"# TYPE flexpass_points_total gauge",
		`flexpass_tx_bytes{entity="port/tor0:up0"} 12345`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMetricsSanitizesAndEscapes(t *testing.T) {
	var b strings.Builder
	err := WriteMetrics(&b, []obs.Reading{
		{Entity: `we"ird\entity`, Metric: "fct p99-us", Kind: obs.Instant, Value: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "flexpass_fct_p99_us{") {
		t.Fatalf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `entity="we\"ird\\entity"`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestServerEndpoints(t *testing.T) {
	board := &RunBoard{}
	board.Publish(RunStatus{SimNowPs: 5, SimEndPs: 10, Events: 42, FlowsTotal: 3}, testReadings())
	srv := NewServer(func() any { return board.Status() }, board.Readings)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/status")
	if code != 200 {
		t.Fatalf("/status -> %d", code)
	}
	var st RunStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if st.SimNowPs != 5 || st.Events != 42 || st.FlowsTotal != 3 {
		t.Fatalf("/status = %+v", st)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics -> %d", code)
	}
	if !strings.Contains(body, "flexpass_points_done") {
		t.Fatalf("/metrics missing bridged reading:\n%s", body)
	}

	code, body = get("/debug/pprof/cmdline")
	if code != 200 {
		t.Fatalf("/debug/pprof/cmdline -> %d", code)
	}
	_ = body

	code, _ = get("/nope")
	if code != 404 {
		t.Fatalf("/nope -> %d, want 404", code)
	}
}

func TestServerStartClose(t *testing.T) {
	srv := NewServer(nil, nil)
	bound, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + bound + "/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/status -> %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunBoardNil(t *testing.T) {
	var b *RunBoard
	b.Publish(RunStatus{}, nil) // must not panic
	if st := b.Status(); st != (RunStatus{}) {
		t.Fatalf("nil board status = %+v", st)
	}
	if r := b.Readings(); r != nil {
		t.Fatal("nil board readings must be nil")
	}
}
