// Package live is the runtime introspection server: an HTTP endpoint a
// running flexsim scenario or flexfarm sweep exposes so operators can
// watch progress, scrape metrics, and profile without stopping the run.
//
//   - /status   — a JSON snapshot of progress (whatever the host binary
//     publishes: sweep done/total + per-worker points, or a scenario's
//     sim-clock position and flow counts)
//   - /metrics  — Prometheus text exposition bridging the obs registry
//   - /debug/pprof/* — the standard Go runtime profiler
//
// The simulation engine is single-threaded and none of its state is safe
// to read from an HTTP goroutine, so the server never touches engine or
// registry state directly: the host publishes snapshots into a
// mutex-protected board (RunBoard here, farm.Tracker for sweeps) and the
// handlers read only those.
package live

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"flexpass/internal/obs"
)

// Server serves the introspection endpoints over a snapshot pair: status
// returns any JSON-marshalable progress object, readings returns the
// metric readings to bridge into Prometheus form. Both callbacks are
// invoked from HTTP goroutines and must be safe for concurrent use.
type Server struct {
	status   func() any
	readings func() []obs.Reading

	mux *http.ServeMux
	ln  net.Listener
	srv *http.Server
}

// NewServer builds a server over the two snapshot callbacks. Either may
// be nil: a nil status serves an empty object, a nil readings serves an
// empty exposition.
func NewServer(status func() any, readings func() []obs.Reading) *Server {
	s := &Server{status: status, readings: readings, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/status", s.handleStatus)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the mux (mainly for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr (e.g. ":8080", "127.0.0.1:0") and serves in a
// background goroutine. It returns the bound address, which differs from
// addr when port 0 asked the kernel to pick one.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the listener. In-flight requests are abandoned — the
// server exists for the lifetime of a run, not a deployment.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><body><h1>flexpass introspection</h1><ul>
<li><a href="/status">/status</a> — run progress (JSON)</li>
<li><a href="/metrics">/metrics</a> — Prometheus exposition</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — runtime profiles</li>
</ul></body></html>`)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var v any = struct{}{}
	if s.status != nil {
		v = s.status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var rs []obs.Reading
	if s.readings != nil {
		rs = s.readings()
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, rs)
}

// WriteMetrics renders readings in Prometheus text exposition format
// (version 0.0.4): readings sharing a metric become one family named
// flexpass_<metric> with the entity as a label, preceded by a single
// # TYPE line (counter for cumulative readings, gauge for instant ones).
func WriteMetrics(w io.Writer, readings []obs.Reading) error {
	rs := make([]obs.Reading, len(readings))
	copy(rs, readings)
	// Registry.Final sorts entity-then-metric; exposition groups families
	// by metric, so re-sort.
	sort.SliceStable(rs, func(i, j int) bool {
		if rs[i].Metric != rs[j].Metric {
			return rs[i].Metric < rs[j].Metric
		}
		return rs[i].Entity < rs[j].Entity
	})
	prev := ""
	for _, r := range rs {
		name := "flexpass_" + sanitizeMetricName(r.Metric)
		if r.Metric != prev {
			typ := "gauge"
			if r.Kind == obs.Cumulative {
				typ = "counter"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
				return err
			}
			prev = r.Metric
		}
		if _, err := fmt.Fprintf(w, "%s{entity=%q} %d\n", name, escapeLabelValue(r.Entity), r.Value); err != nil {
			return err
		}
	}
	return nil
}

// sanitizeMetricName maps a registry metric name onto the Prometheus
// metric charset [a-zA-Z0-9_].
func sanitizeMetricName(s string) string {
	var b strings.Builder
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "unnamed"
	}
	return b.String()
}

// escapeLabelValue handles the exposition format's label escapes. %q
// already escapes quote and backslash the same way Prometheus expects;
// this pre-pass only needs to keep newlines out of the raw value.
func escapeLabelValue(s string) string {
	return strings.ReplaceAll(s, "\n", "\\n")
}

// RunStatus is the /status payload a single running scenario publishes:
// where the sim clock is, how fast it is moving, and flow progress.
type RunStatus struct {
	SimNowPs     int64   `json:"sim_now_ps"`
	SimEndPs     int64   `json:"sim_end_ps"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	FlowsTotal   int     `json:"flows_total"`
	FlowsStarted int     `json:"flows_started"`
	FlowsDone    int     `json:"flows_done"`
	WallMS       float64 `json:"wall_ms"`
	Done         bool    `json:"done"`
}

// RunBoard is the snapshot mailbox between a running scenario (publisher,
// the sim goroutine) and the server (reader, HTTP goroutines).
type RunBoard struct {
	mu       sync.Mutex
	st       RunStatus
	readings []obs.Reading
}

// Publish replaces the board's snapshot. Called from inside the sim loop.
func (b *RunBoard) Publish(st RunStatus, readings []obs.Reading) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.st = st
	b.readings = readings
	b.mu.Unlock()
}

// Status returns the latest published status.
func (b *RunBoard) Status() RunStatus {
	if b == nil {
		return RunStatus{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}

// Readings returns the latest published metric readings.
func (b *RunBoard) Readings() []obs.Reading {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.readings
}

// Serve starts a Server over the board.
func (b *RunBoard) Serve(addr string) (*Server, string, error) {
	s := NewServer(func() any { return b.Status() }, b.Readings)
	bound, err := s.Start(addr)
	if err != nil {
		return nil, "", err
	}
	return s, bound, nil
}
