package plot

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeries(t *testing.T) {
	c := &Chart{
		Title: "throughput",
		Series: []Series{
			{Name: "a", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
			{Name: "b", X: []float64{0, 1, 2, 3}, Y: []float64{4, 3, 2, 1}},
		},
		Width: 40, Height: 10,
	}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "throughput") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("data glyphs missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("only %d lines rendered", len(lines))
	}
}

func TestChartEmpty(t *testing.T) {
	var b strings.Builder
	c := &Chart{}
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no data") {
		t.Fatal("empty chart must say so")
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges (all same x or y) must not divide by zero.
	c := &Chart{Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}}
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "*") {
		t.Fatal("flat series not plotted")
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	err := Bars(&b, "starvation", []string{"expresspass", "flexpass"}, []float64{96.9, 0.1}, "%")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "expresspass") || !strings.Contains(out, "flexpass") {
		t.Fatal("labels missing")
	}
	// The big bar must be much longer than the small one.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	big := strings.Count(lines[1], "#")
	small := strings.Count(lines[2], "#")
	if big < 40 || small > 2 {
		t.Fatalf("bar lengths wrong: %d vs %d", big, small)
	}
}

func TestBarsAllZero(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, "", []string{"x"}, []float64{0}, ""); err != nil {
		t.Fatal(err)
	}
}
