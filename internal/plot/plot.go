// Package plot renders simple ASCII line charts and bar charts in the
// terminal — enough to eyeball the CSV series cmd/experiments writes
// without leaving the shell (cmd/flexplot is the CLI).
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a set of series sharing axes.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot columns (default 72)
	Height int // plot rows (default 20)
	Series []Series
}

var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if minY > 0 && minY < maxY/2 {
		minY = 0 // anchor at zero unless the range is narrow
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := int((s.Y[i] - minY) / (maxY - minY) * float64(height-1))
			r := height - 1 - row
			if r >= 0 && r < height && col >= 0 && col < width {
				grid[r][col] = g
			}
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	yHi := formatTick(maxY)
	yLo := formatTick(minY)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = pad(yHi, labelW)
		case height - 1:
			label = pad(yLo, labelW)
		case height / 2:
			label = pad(formatTick((maxY+minY)/2), labelW)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*s%s\n", strings.Repeat(" ", labelW),
		width-len(formatTick(maxX)), formatTick(minX), formatTick(maxX)); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  %s", strings.Join(legend, "   ")); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "   [x: %s, y: %s]", c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Bars renders a horizontal bar chart of labeled values.
func Bars(w io.Writer, title string, labels []string, values []float64, unit string) error {
	if title != "" {
		if _, err := fmt.Fprintln(w, title); err != nil {
			return err
		}
	}
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	const barW = 50
	for i, v := range values {
		n := int(v / maxV * barW)
		if _, err := fmt.Fprintf(w, "%-*s |%s %.3g%s\n",
			maxL, labels[i], strings.Repeat("#", n), v, unit); err != nil {
			return err
		}
	}
	return nil
}
