// Package harness runs the paper's experiments: it builds a fabric with a
// scheme's queue profile, generates workloads, assigns flows to legacy or
// upgraded transports by per-rack deployment, runs the simulation, and
// collects metrics. One driver per paper figure lives in figures.go and
// micro.go.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/forensics"
	"flexpass/internal/live"
	"flexpass/internal/metrics"
	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/prof"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	_ "flexpass/internal/transport/schemes" // link the built-in schemes in
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// Scheme is a deployment strategy from §6.2.
type Scheme string

// The compared schemes. Any name registered with transport.RegisterScheme
// is accepted; these are the ones the paper's figures sweep.
const (
	SchemeNaive        Scheme = transport.SchemeNaive        // ExpressPass sharing the legacy queue, full-rate credits
	SchemeOWF          Scheme = transport.SchemeOWF          // oracle weighted fair queueing
	SchemeLayering     Scheme = transport.SchemeLayering     // LY: window-gated ExpressPass in the shared queue
	SchemeFlexPass     Scheme = transport.SchemeFlexPass     // the paper's design
	SchemeFlexPassAltQ Scheme = transport.SchemeFlexPassAltQ // §4.3 ablation: reactive sub-flow in Q2
	SchemeFlexPassRC3  Scheme = transport.SchemeFlexPassRC3  // §4.3 ablation: RC3-style flow splitting
)

// Schemes lists the four §6.2 deployment schemes in paper order.
var Schemes = []Scheme{SchemeNaive, SchemeOWF, SchemeLayering, SchemeFlexPass}

// Scenario fully describes one simulation run.
type Scenario struct {
	Seed int64

	// Fabric.
	Clos      topo.ClosParams
	LinkRate  units.Rate
	LinkDelay sim.Time
	HostDelay sim.Time
	SwitchBuf units.ByteSize
	BufAlpha  float64

	// Scheme and its knobs.
	Scheme Scheme
	WQ     float64   // FlexPass queue weight (w_q); FlexPass is insensitive to it
	Spec   topo.Spec // threshold overrides (selective drop / ECN)

	// Workload. The legacy parameter knobs (Workload CDF, IncastFraction,
	// IncastFlowSize) and the composable plan below both route through
	// the same generator: when WorkloadPlan is nil, planWorkload builds
	// the equivalent builtin plan, which consumes the workload RNG stream
	// bit-identically to the historical direct-parameter path.
	Workload       *workload.CDF
	Load           float64
	Deployment     float64 // fraction of FlexPass/ExpressPass-enabled racks
	IncastFraction float64 // foreground incast volume fraction (0 = none)
	IncastFlowSize int64
	Duration       sim.Time // arrival window
	Drain          sim.Time // extra time for in-flight flows to finish

	// WorkloadPlan, when non-nil, replaces the parameter workload with a
	// composable source plan (see workload.Plan): Poisson/ON-OFF/
	// lognormal backgrounds, incast, RPC coflows, and trace replay, each
	// optionally rate-modulated, generated against this scenario's
	// topology, load, and duration. TraceFlows still wins over both.
	WorkloadPlan *workload.Plan

	// SampleQueues enables Q1 occupancy sampling at ToR uplinks.
	SampleQueues bool

	// Shards requests the parallel engine: the Clos is partitioned into
	// per-pod-block subtrees (cores with pod 0), each driven by its own
	// engine goroutine, synchronized conservatively on the agg↔core
	// propagation delay (see internal/sim/shard). 0 or 1 — or a fabric
	// with nothing to cut — runs the exact single-engine path. The
	// effective count (min(Shards, Clos.Pods)) lands in the manifest.
	// Results are deterministic per shard count but not bit-identical
	// across counts (per-shard RNG streams); Forensics requires the
	// single-engine path and panics when combined with Shards > 1.
	Shards int

	// Telemetry, when non-nil, enables the obs instrumentation plane:
	// the fabric and every transport register into a central registry, a
	// periodic prober samples them into time series, and Result.Telemetry
	// carries the exportable run artifact. Probing is observation-only —
	// enabling it never changes simulation results, only adds observer
	// events to the heap.
	Telemetry *obs.Options

	// Forensics, when non-nil, enables the forensic plane on top of
	// telemetry (which it switches on implicitly): hop-by-hop packet
	// recording at every port, invariant auditors on the engine clock,
	// and worst-slowdown flow timelines in Result.Forensics and the
	// exported artifact. Like telemetry it is observation-only: flow
	// results stay byte-identical to a plain run with the same seed.
	Forensics *forensics.Options

	// FaultPlan, when non-nil, injects the scripted fault timeline into
	// the run (see internal/faults): link flaps, rate degradation, burst
	// loss, and credit-targeted loss on named ports. The plan is applied
	// at a fixed point — after fabric construction, before flow-arrival
	// scheduling — so a (seed, plan) pair replays bit-identically. Run
	// panics if a link pattern matches no port in the built fabric; plans
	// from user input should come through faults.ParsePlan / ParseSpec,
	// which validate structure up front.
	FaultPlan *faults.Plan

	// Profile enables the engine self-profiler: every dispatched event is
	// timed and attributed to the component that scheduled it (transport
	// scheme, port serialization/pacing, prober, auditor, faults, ...).
	// Attribution labels are pure metadata and the accumulator is a fixed
	// array, so profiling never changes flow results or allocates on the
	// dispatch path; it only adds two clock reads per event. Results land
	// in Result.Profile and, with telemetry on, the manifest.
	Profile bool

	// Live, when non-nil, receives periodic progress snapshots (sim-clock
	// position, flow counts, registry readings) every LiveEvery of sim
	// time (default 1ms) so an introspection server can report /status
	// and /metrics while the run executes. Implies telemetry. The board
	// is the thread-safety boundary: the engine publishes into it, HTTP
	// goroutines read from it.
	Live      *live.RunBoard
	LiveEvery sim.Time

	// DisableProRetx ablates FlexPass's proactive retransmission (§4.2).
	DisableProRetx bool

	// Reactive selects FlexPass's reactive-sub-flow algorithm ("" = the
	// paper's DCTCP; "reno" = the §4.3 loss-based extension).
	Reactive string

	// SchemeOptions carries additional per-scheme parameters by option
	// key (see the transport.Opt* constants). The typed knobs above are
	// folded in on top and win on conflict.
	SchemeOptions map[string]string

	// ManifestConfig adds caller-owned entries to the exported
	// manifest's Config map (the sweep orchestrator stamps its scenario
	// hash and topology label here). Keys collide with the harness's own
	// Config entries only if the caller chooses harness key names; the
	// caller's values win.
	ManifestConfig map[string]string

	// TraceFlows, when non-nil, replaces the generated workload entirely
	// (replay of an exported or external trace). Host indices must be
	// valid for the configured fabric.
	TraceFlows []workload.FlowSpec

	// PoolSeeds, when non-empty, makes Sweep/RunPoint pool flow records
	// across one run per seed before computing statistics (tail
	// percentiles over the union of flows).
	PoolSeeds []int64

	// PoolPackets recycles consumed frames through a per-network free
	// list (netem.Network.EnablePacketPool). Observation-only for
	// results: flow statistics are byte-identical with pooling on or
	// off; it trims steady-state allocation in long runs.
	PoolPackets bool

	// Deadline, when positive, caps the run's wall-clock time: a
	// wall-clock watchdog aborts the engine(s) when it elapses and Run
	// panics with a *KilledError (Reason "deadline"). Zero disables.
	// Supervision is observation-only until it trips — the watchdog
	// never perturbs event order, so a run that finishes in time is
	// bit-identical to an unsupervised one.
	Deadline time.Duration

	// StallTimeout, when positive, kills the run when the engine horizon
	// (fleet-minimum on the sharded path) stops advancing for this much
	// wall-clock time — catching both livelocks (events churning at one
	// instant) and wedged engines. Run panics with a *KilledError
	// (Reason "stall"). Zero disables.
	StallTimeout time.Duration
}

// BaseScenario returns the §6.2 configuration at the given scale. Scale 1
// is the paper's fabric (192 hosts); smaller scales shrink the fabric and
// default duration so the full suite runs quickly.
func BaseScenario(full bool) Scenario {
	sc := Scenario{
		Seed:           1,
		Clos:           topo.SmallClos,
		LinkRate:       40 * units.Gbps,
		LinkDelay:      2 * sim.Microsecond,
		HostDelay:      1 * sim.Microsecond,
		SwitchBuf:      4500 * units.KB,
		BufAlpha:       0.25,
		Scheme:         SchemeFlexPass,
		WQ:             0.5,
		Workload:       workload.WebSearch,
		Load:           0.5,
		Deployment:     0.5,
		IncastFlowSize: 8000,
		Duration:       15 * sim.Millisecond,
		Drain:          60 * sim.Millisecond,
	}
	if full {
		sc.Clos = topo.PaperClos
		sc.Duration = 50 * sim.Millisecond
		sc.Drain = 100 * sim.Millisecond
	}
	return sc
}

// Result carries a run's outputs.
type Result struct {
	Scenario    Scenario
	Flows       metrics.Collector
	OracleWQ    float64 // the weight the oWF scheme used
	QueueAvg    int64   // Q1 occupancy stats (when sampled)
	QueueP90    int64
	QueueRedAvg int64
	QueueRedP90 int64
	DropsRed    int64  // selective drops across the fabric
	DropsCredit int64  // credits dropped by rate limiters (the ExpressPass feedback signal)
	DropsOther  int64  // data drops from buffer exhaustion
	Events      uint64 // engine events processed (perf visibility)

	// WallClock is the host time spent inside the event loop.
	WallClock time.Duration
	// Telemetry is the exportable run artifact (when Scenario.Telemetry
	// is set); Trace is the shared transport trace ring (when TraceCap>0).
	Telemetry *obs.Run
	Trace     *trace.Ring
	// Forensics carries auditor findings and worst-flow timelines (when
	// Scenario.Forensics is set). The same data rides in Telemetry's
	// artifact as "forensics" lines.
	Forensics *forensics.Report
	// Faults is the fired fault-action log (when Scenario.FaultPlan is
	// set); FaultDrops totals packets the plan's faults destroyed. The
	// action log also rides in Telemetry's artifact as "fault" lines.
	Faults     *faults.Applied
	FaultDrops netem.FaultStats
	// Profile is the engine self-profiler's per-component attribution
	// (when Scenario.Profile is set); Profiler is the live accumulator
	// for folded-stacks or table rendering.
	Profile  []obs.ComponentProfile
	Profiler *prof.Profiler
}

// WorkloadRand returns the deterministic random stream Run uses for
// workload generation at the given seed, so traces exported out-of-band
// (cmd/flexsim -dump-trace) replay identically.
func WorkloadRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed*7919 + 17))
}

// schemeOptions folds the typed scenario knobs into the option map handed
// to the scheme factory, on top of any caller-provided SchemeOptions.
func (sc *Scenario) schemeOptions() map[string]string {
	opts := make(map[string]string, len(sc.SchemeOptions)+2)
	for k, v := range sc.SchemeOptions {
		opts[k] = v
	}
	if sc.DisableProRetx {
		opts[transport.OptDisableProRetx] = "1"
	}
	if sc.Reactive != "" {
		opts[transport.OptReactive] = sc.Reactive
	}
	return opts
}

// mustScheme builds a registered scheme or panics: by the time Run is
// invoked the scheme name is part of the scenario contract.
func mustScheme(name string, env *transport.SchemeEnv) transport.Scheme {
	s, err := transport.NewScheme(name, env)
	if err != nil {
		panic(fmt.Sprintf("harness: %v", err))
	}
	return s
}

// rackAssignment computes host→rack without building the fabric.
func rackAssignment(c topo.ClosParams) []int {
	rackOf := make([]int, c.Hosts())
	for i := range rackOf {
		rackOf[i] = i / c.HostsPerTor
	}
	return rackOf
}

// runPlan is the engine-independent half of a run: the generated flow
// list and the deployment assignment. The single-engine and sharded
// paths share it verbatim, so both see the same specs in the same order.
type runPlan struct {
	hosts    int
	rackOf   []int
	enabled  map[int]bool
	flows    []workload.FlowSpec
	oracleWQ float64
}

// upgraded reports whether a flow runs the active (non-legacy) scheme:
// both endpoints' racks must be deployment-enabled.
func (p *runPlan) upgraded(f workload.FlowSpec) bool {
	return p.enabled[p.rackOf[f.Src]] && p.enabled[p.rackOf[f.Dst]]
}

// planWorkload generates the scenario's flow list, rack deployment, and
// the oWF oracle weight (which needs the true upgraded-traffic
// fraction, hence workload first).
func planWorkload(sc Scenario) *runPlan {
	p := &runPlan{
		hosts:  sc.Clos.Hosts(),
		rackOf: rackAssignment(sc.Clos),
	}
	racks := p.hosts / sc.Clos.HostsPerTor
	p.enabled = workload.DeployRacks(racks, sc.Deployment)
	uplinks := racks * sc.Clos.AggPerPod // ToR uplink count
	env := workload.Env{
		Hosts:          p.hosts,
		RackOf:         p.rackOf,
		UplinkCapacity: units.Rate(int64(sc.LinkRate) * int64(uplinks)),
		Load:           sc.Load,
		Duration:       sc.Duration,
	}
	switch {
	case sc.TraceFlows != nil:
		p.flows = sc.TraceFlows
	case sc.WorkloadPlan != nil:
		flows, err := sc.WorkloadPlan.Generate(env, WorkloadRand(sc.Seed))
		if err != nil {
			panic(fmt.Sprintf("harness: workload plan %q: %v", sc.WorkloadPlan.Name, err))
		}
		p.flows = flows
	default:
		// The parameter workload is the builtin plan: a Poisson
		// background at the scenario load plus the optional legacy
		// incast mix. LegacyPlan consumes the seeded stream exactly as
		// the historical direct-parameter path did, so golden flow
		// digests are unchanged (see scheme_digest_test.go).
		legacy := workload.LegacyPlan(sc.Workload, sc.IncastFraction, sc.IncastFlowSize)
		flows, err := legacy.Generate(env, WorkloadRand(sc.Seed))
		if err != nil {
			panic(fmt.Sprintf("harness: builtin workload: %v", err))
		}
		p.flows = flows
	}
	var upBytes, totBytes float64
	for _, f := range p.flows {
		totBytes += float64(f.Size)
		if p.upgraded(f) {
			upBytes += float64(f.Size)
		}
	}
	p.oracleWQ = 0.5
	if totBytes > 0 {
		p.oracleWQ = upBytes / totBytes
	}
	if p.oracleWQ < 0.02 {
		p.oracleWQ = 0.02
	}
	if p.oracleWQ > 0.98 {
		p.oracleWQ = 0.98
	}
	return p
}

// Flows returns the exact flow list the scenario would run — generated
// from the workload plan (or legacy parameters) on the scenario's own
// seeded stream, or the trace replay verbatim. Callers that need to
// re-run a scenario with a reduced flow set (the chaos shrinker) pin the
// original list through TraceFlows; because the workload RNG is a stream
// separate from the engine's, the replay is bit-identical to the
// generating run.
func Flows(sc Scenario) []workload.FlowSpec {
	return planWorkload(sc).flows
}

// Run executes the scenario and returns collected metrics.
func Run(sc Scenario) *Result {
	if sc.Shards > 1 {
		if podShard := topo.ClosPodShards(sc.Clos, sc.Shards); topo.Shards(podShard) > 1 {
			return runSharded(sc, podShard)
		}
	}
	eng := sim.NewEngine(sc.Seed)
	// Forensics implies telemetry: timelines need the registry and a
	// lifecycle trace ring. Copy the options so the caller's struct is
	// never mutated.
	tel := sc.Telemetry
	if sc.Forensics != nil {
		if tel == nil {
			tel = &obs.Options{}
		} else {
			cp := *tel
			tel = &cp
		}
		if tel.TraceCap == 0 {
			tel.TraceCap = 65536
		}
	}
	// Live introspection implies telemetry too: /metrics bridges the
	// registry, so there must be one.
	if sc.Live != nil && tel == nil {
		tel = &obs.Options{}
	}
	var profiler *prof.Profiler
	if sc.Profile {
		profiler = prof.New()
		profiler.Attach(eng)
	}
	var reg *obs.Registry
	var ring *trace.Ring
	if tel != nil {
		reg = obs.NewRegistry()
		if tel.TraceCap > 0 {
			ring = trace.NewRing(eng, tel.TraceCap)
		}
	}
	plan := planWorkload(sc)
	flows, hosts, oracleWQ := plan.flows, plan.hosts, plan.oracleWQ
	upgraded := plan.upgraded

	// Compose the transports from the scheme registry. The legacy side is
	// always DCTCP; the upgraded side is whatever sc.Scheme names. Both
	// share one env, so counter sets are memoized per transport label and
	// the fabric is built with the active scheme's queue profile.
	spec := sc.Spec
	spec.WQ = sc.WQ
	env := &transport.SchemeEnv{
		Eng:      eng,
		LinkRate: sc.LinkRate,
		WQ:       sc.WQ,
		OracleWQ: oracleWQ,
		Spec:     spec,
		Registry: reg,
		Trace:    ring,
		Options:  sc.schemeOptions(),
	}
	legacy := mustScheme(transport.SchemeDCTCP, env)
	active := mustScheme(string(sc.Scheme), env)
	fab := topo.Clos(eng, sc.Clos, topo.Params{
		LinkRate:  sc.LinkRate,
		LinkDelay: sc.LinkDelay,
		HostDelay: sc.HostDelay,
		SwitchBuf: sc.SwitchBuf,
		BufAlpha:  sc.BufAlpha,
		Profile:   active.Profile(),
	})
	if sc.PoolPackets {
		fab.Net.EnablePacketPool()
	}
	agents := make([]*transport.Agent, hosts)
	var strays *obs.Counter
	if reg != nil {
		strays = reg.Counter("transport/agent", "stray_packets")
	}
	for i := range agents {
		agents[i] = transport.NewAgent(eng, fab.Net.Host(i))
		agents[i].ObserveStrays(strays)
	}
	fab.Net.Register(reg)

	var rec *forensics.Recorder
	if sc.Forensics != nil {
		rec = forensics.NewRecorder(sc.Forensics)
		fab.Net.SetHopObserver(rec)
	}

	res := &Result{Scenario: sc, OracleWQ: oracleWQ}

	// Apply the fault plan at a fixed point in setup — after the fabric
	// and observers exist, before any flow arrival is scheduled — so the
	// engine's event tie-break order is a pure function of the scenario.
	if sc.FaultPlan != nil {
		applied, err := faults.Apply(sc.FaultPlan, eng, fab.Net)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		applied.Register(reg)
		res.Faults = applied
	}

	// Profiling attribution: arrival timers carry their own label, and the
	// two transports get per-scheme labels stamped around Start so every
	// timer a transport schedules — pacer ticks, RTO checks, host sends —
	// inherits its scheme's component transitively.
	compLegacy := eng.Component("transport/" + transport.SchemeDCTCP)
	compActive := compLegacy
	if string(sc.Scheme) != transport.SchemeDCTCP {
		compActive = eng.Component("transport/" + string(sc.Scheme))
	}

	var all []*transport.Flow
	incastOf := make(map[uint64]bool)
	nextID := uint64(1)
	prevComp := eng.SetComponent(eng.Component("harness/arrival"))
	for _, spec := range flows {
		spec := spec
		id := nextID
		nextID++
		eng.At(spec.At, func() {
			fl := &transport.Flow{
				ID:    id,
				Src:   agents[spec.Src],
				Dst:   agents[spec.Dst],
				Size:  spec.Size,
				Start: eng.Now(),
			}
			all = append(all, fl)
			if spec.Incast {
				incastOf[id] = true
			}
			if !upgraded(spec) {
				prev := eng.SetComponent(compLegacy)
				legacy.Start(fl)
				eng.SetComponent(prev)
				return
			}
			prev := eng.SetComponent(compActive)
			active.Start(fl)
			eng.SetComponent(prev)
		})
	}
	eng.SetComponent(prevComp)

	prober := obs.NewProber(eng, reg, tel)
	prober.Start()

	// Invariant auditors: credit conservation samples the live pacer /
	// sender counters and the fabric's rate-limited credit-queue drops.
	var aud *forensics.Auditor
	if sc.Forensics != nil {
		issued := func() int64 {
			var n int64
			env.EachCounters(func(_ string, c transport.Counters) {
				n += c.CreditsIssued.Value()
			})
			return n
		}
		consumed := func() int64 {
			var n int64
			env.EachCounters(func(_ string, c transport.Counters) {
				n += c.CreditsGranted.Value()
			})
			return n
		}
		creditDrops := func() int64 {
			var n int64
			count := func(p *netem.Port) {
				for q := 0; q < p.NumQueues(); q++ {
					if p.QueueConfig(q).RateLimit > 0 {
						n += p.QueueStats(q).DroppedOver
					}
				}
			}
			for _, sw := range fab.Net.Switches {
				for _, p := range sw.Ports() {
					count(p)
				}
			}
			for _, h := range fab.Net.Hosts {
				count(h.NIC())
			}
			return n
		}
		aud = forensics.WireAudit(eng, sc.Forensics, fab.Net,
			func() []*transport.Flow { return all }, issued, consumed, creditDrops)
		aud.Start()
	}

	// Without telemetry the ad-hoc queue sampler provides Q1 occupancy;
	// with it, the prober's per-queue gauge series are consumed instead of
	// re-deriving the same samples with a second scheduler.
	var qs *metrics.QueueSampler
	if sc.SampleQueues && prober == nil {
		qs = metrics.NewQueueSampler(eng, 100*sim.Microsecond)
		idx := fab.FlexQueueIndex
		for _, up := range fab.TorUplinks {
			up := up
			qs.Track(func() (int64, int64) { return up.QueueBytes(idx) })
		}
		qs.Start()
	}

	wallStart := time.Now()
	var publishLive func(done bool)
	if sc.Live != nil {
		every := sc.LiveEvery
		if every <= 0 {
			every = sim.Millisecond
		}
		board := sc.Live
		end := sc.Duration + sc.Drain
		publishLive = func(done bool) {
			st := live.RunStatus{
				SimNowPs:     int64(eng.Now()),
				SimEndPs:     int64(end),
				Events:       eng.Processed,
				FlowsTotal:   len(flows),
				FlowsStarted: len(all),
				WallMS:       float64(time.Since(wallStart)) / float64(time.Millisecond),
				Done:         done,
			}
			for _, fl := range all {
				if fl.Completed {
					st.FlowsDone++
				}
			}
			if secs := time.Since(wallStart).Seconds(); secs > 0 {
				st.EventsPerSec = float64(eng.Processed) / secs
			}
			board.Publish(st, reg.Final())
		}
		// The publisher runs on the engine clock like any observer; the
		// board is the only state it shares with HTTP readers.
		prev := eng.SetComponent(eng.Component("live/status"))
		eng.Every(every, func() { publishLive(false) })
		eng.SetComponent(prev)
	}
	var wd *watchdog
	if sc.Deadline > 0 || sc.StallTimeout > 0 {
		w := &sim.Watch{}
		eng.SetWatch(w)
		wd = startWatchdog(sc.Deadline, sc.StallTimeout, w.NowPs, w.Events, w.Abort)
	}
	eng.Run(sc.Duration + sc.Drain)
	res.WallClock = time.Since(wallStart)
	if ke := wd.stop(); ke != nil {
		panic(ke)
	}
	if publishLive != nil {
		publishLive(true)
	}

	for _, fl := range all {
		res.Flows.Add(metrics.Snapshot(fl, incastOf[fl.ID]))
	}
	if qs != nil {
		res.QueueAvg, res.QueueP90 = metrics.Stats(qs.Totals, 0.9)
		res.QueueRedAvg, res.QueueRedP90 = metrics.Stats(qs.Reds, 0.9)
	} else if sc.SampleQueues {
		var totals, reds []int64
		idx := fab.FlexQueueIndex
		for _, up := range fab.TorUplinks {
			ent := fmt.Sprintf("port/%s/q%d", up.Name(), idx)
			if s := prober.Find(ent, "bytes"); s != nil {
				totals = append(totals, s.Values()...)
			}
			if s := prober.Find(ent, "red_bytes"); s != nil {
				reds = append(reds, s.Values()...)
			}
		}
		res.QueueAvg, res.QueueP90 = metrics.Stats(totals, 0.9)
		res.QueueRedAvg, res.QueueRedP90 = metrics.Stats(reds, 0.9)
	}
	countFabricDrops(fab, res)
	res.Events = eng.Processed
	res.Trace = ring
	if profiler != nil {
		res.Profiler = profiler
		res.Profile = profiler.Export()
	}

	if sc.Forensics != nil {
		// Ideal-FCT estimate for ranking only: wire bytes at line rate
		// plus a fixed propagation allowance. Crude, but monotone in the
		// real ideal, which is all slowdown ordering needs.
		base := 4*sc.LinkDelay + 2*sc.HostDelay
		slowdown := func(fl *transport.Flow) float64 {
			wire := fl.Size
			if segs := fl.Segs(); segs > 0 {
				wire += int64(segs * (fl.SegWire(0) - fl.SegPayload(0)))
			}
			ideal := sc.LinkRate.TxTime(int(wire)) + base
			if fct := fl.FCT(); fct > 0 && ideal > 0 {
				return float64(fct) / float64(ideal)
			}
			return 0
		}
		res.Forensics = &forensics.Report{
			Violations:        aud.Violations(),
			ViolationsDropped: aud.Dropped(),
			Timelines:         forensics.WorstTimelines(rec, ring, all, slowdown, sc.Forensics),
		}
	}

	if reg != nil {
		recordWorkloadObs(reg, flows, all)
		res.Telemetry = obs.Collect(reg, prober, buildManifest(sc, hosts, prober.Interval(), res, 0))
		res.Telemetry.AttachTrace(ring)
		if res.Forensics != nil {
			res.Telemetry.Forensics = res.Forensics.Export()
		}
		res.Telemetry.Faults = res.Faults.Export()
	}
	return res
}

// countFabricDrops folds every port's drop and fault-loss counters into
// the result. Runs after the engine(s) stop, from one goroutine.
func countFabricDrops(fab *topo.Fabric, res *Result) {
	countPort := func(p *netem.Port) {
		fs := p.FaultStats()
		res.FaultDrops.Injected += fs.Injected
		res.FaultDrops.LinkDown += fs.LinkDown
		res.FaultDrops.BurstLoss += fs.BurstLoss
		res.FaultDrops.CreditLoss += fs.CreditLoss
		for q := 0; q < p.NumQueues(); q++ {
			st := p.QueueStats(q)
			res.DropsRed += st.DroppedRed
			if p.QueueConfig(q).RateLimit > 0 {
				res.DropsCredit += st.DroppedOver
			} else {
				res.DropsOther += st.DroppedOver
			}
		}
	}
	for _, sw := range fab.Net.Switches {
		for _, p := range sw.Ports() {
			countPort(p)
		}
	}
	for _, h := range fab.Net.Hosts {
		countPort(h.NIC())
	}
}

// buildManifest assembles the exported run manifest. shards is the
// effective parallel-engine count (0 on the single-engine path, so the
// field is omitted from the artifact exactly as before sharding).
func buildManifest(sc Scenario, hosts int, probe sim.Time, res *Result, shards int) obs.Manifest {
	// Workload identity mirrors planWorkload's routing: trace replays get
	// a content-addressed "trace:<digest>" (a trace run used to record an
	// empty workload), plans their name, the parameter path its CDF name.
	wl := ""
	switch {
	case sc.TraceFlows != nil:
		wl = workload.TraceID(sc.TraceFlows)
	case sc.WorkloadPlan != nil:
		wl = sc.WorkloadPlan.Name
	case sc.Workload != nil:
		wl = sc.Workload.Name
	}
	wallMS := float64(res.WallClock) / float64(time.Millisecond)
	eps := 0.0
	if secs := res.WallClock.Seconds(); secs > 0 {
		eps = float64(res.Events) / secs
	}
	config := map[string]string{
		"link_rate":      sc.LinkRate.String(),
		"link_delay":     sc.LinkDelay.String(),
		"host_delay":     sc.HostDelay.String(),
		"switch_buf":     sc.SwitchBuf.String(),
		"buf_alpha":      fmt.Sprintf("%g", sc.BufAlpha),
		"probe_interval": probe.String(),
	}
	for k, v := range sc.ManifestConfig {
		config[k] = v
	}
	planName, planHash := "", ""
	if sc.FaultPlan != nil {
		planName, planHash = sc.FaultPlan.Name, sc.FaultPlan.Hash()
	}
	wplanName, wplanHash := "", ""
	if sc.WorkloadPlan != nil {
		wplanName, wplanHash = sc.WorkloadPlan.Name, sc.WorkloadPlan.Hash()
	}
	// Forensic retention accounting rides in the manifest so readers can
	// tell a clean run from one whose violation list was truncated at the
	// auditor cap (res.Forensics is assembled before the manifest).
	vioDropped := int64(0)
	if res.Forensics != nil {
		vioDropped = res.Forensics.ViolationsDropped
	}
	return obs.Manifest{
		Seed: sc.Seed,
		Topology: fmt.Sprintf("clos pods=%d agg/pod=%d tor/pod=%d hosts/tor=%d cores=%d hosts=%d",
			sc.Clos.Pods, sc.Clos.AggPerPod, sc.Clos.TorPerPod, sc.Clos.HostsPerTor, sc.Clos.Cores, hosts),
		Scheme:            string(sc.Scheme),
		Workload:          wl,
		Load:              sc.Load,
		Deployment:        sc.Deployment,
		WQ:                sc.WQ,
		DurationPs:        int64(sc.Duration + sc.Drain),
		Shards:            shards,
		SchemeOptions:     sc.schemeOptions(),
		FaultPlan:         planName,
		FaultPlanHash:     planHash,
		WorkloadPlan:      wplanName,
		WorkloadPlanHash:  wplanHash,
		Revision:          obs.RepoRevision(),
		Config:            config,
		WallMS:            wallMS,
		Events:            res.Events,
		EventsPerSec:      eps,
		Profile:           res.Profile,
		ViolationsDropped: vioDropped,
	}
}
