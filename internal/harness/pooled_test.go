package harness

import (
	"testing"

	"flexpass/internal/sim"
)

func TestRunPooledMergesSeeds(t *testing.T) {
	sc := miniBase()
	sc.Duration = 3 * sim.Millisecond
	single := RunPoint(sc)
	pooled := RunPooled(sc, []int64{1, 2, 3})
	if pooled.Incomplete > 0 {
		t.Fatalf("%d incomplete flows pooled", pooled.Incomplete)
	}
	// The pooled tail comes from ~3x the flows; it must be a plausible
	// FCT, and with seed 1 included it cannot be below every single-seed
	// statistic's reach.
	if pooled.P99Small == 0 || pooled.AvgAll == 0 {
		t.Fatal("pooled statistics missing")
	}
	if pooled.P99Small > 10*single.P99Small && single.P99Small > 0 {
		t.Fatalf("pooled p99 %v wildly off single-seed %v", pooled.P99Small, single.P99Small)
	}
}

func TestRunPooledSingleSeedMatchesRunPoint(t *testing.T) {
	sc := miniBase()
	sc.Duration = 3 * sim.Millisecond
	a := RunPoint(sc)
	b := RunPooled(sc, []int64{sc.Seed})
	if a.P99Small != b.P99Small || a.AvgAll != b.AvgAll {
		t.Fatalf("single-seed pooled (%v, %v) != RunPoint (%v, %v)",
			b.P99Small, b.AvgAll, a.P99Small, a.AvgAll)
	}
}

func TestSweepPooledShapes(t *testing.T) {
	sc := miniBase()
	sc.Duration = 2 * sim.Millisecond
	pts := SweepPooled(sc, []Scheme{SchemeFlexPass}, []float64{0, 1}, []int64{1, 2})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Deployment != 0 || pts[1].Deployment != 1 {
		t.Fatal("deployment ordering wrong")
	}
}
