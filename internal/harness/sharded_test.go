package harness

import (
	"testing"

	"flexpass/internal/faults"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// allSchemeNames is every registered built-in scheme, paper order.
var allSchemeNames = []Scheme{
	Scheme(transport.SchemeDCTCP),
	Scheme(transport.SchemeExpressPass),
	SchemeNaive,
	SchemeOWF,
	SchemeLayering,
	SchemeFlexPass,
	SchemeFlexPassAltQ,
	SchemeFlexPassRC3,
	Scheme(transport.SchemeHoma),
	Scheme(transport.SchemePHost),
}

// shardScenario is a small 4-pod Clos (8 hosts, 2 cores) that actually
// partitions at 2 and 4 shards, with mixed deployment so both the active
// and legacy transports cross the shard cut.
func shardScenario(scheme Scheme, shards int) Scenario {
	return Scenario{
		Seed:       11,
		Clos:       topo.ClosParams{Pods: 4, AggPerPod: 2, TorPerPod: 1, HostsPerTor: 2, Cores: 2},
		LinkRate:   10 * units.Gbps,
		LinkDelay:  2 * sim.Microsecond,
		HostDelay:  sim.Microsecond,
		SwitchBuf:  1000 * units.KB,
		BufAlpha:   0.25,
		Scheme:     scheme,
		WQ:         0.5,
		Workload:   workload.WebSearch,
		Load:       0.5,
		Deployment: 0.5,
		Duration:   3 * sim.Millisecond,
		Drain:      60 * sim.Millisecond,
		Shards:     shards,
	}
}

// TestShardedMatchesSingleEngine cross-checks the parallel engine
// against the reference single-engine path on the schemes that never
// draw engine randomness on a clean run (dctcp, homa, phost): their
// flow digests must be bit-identical at any shard count. Credit-paced
// schemes cannot take this test — the pacer's jitter draw comes from
// the engine RNG, which is per-shard by design — so they are covered by
// the run-twice and completion-parity tests below.
func TestShardedMatchesSingleEngine(t *testing.T) {
	// Per-scheme seeds: equality additionally requires that no two
	// packets from different shards arrive at a merge port in the same
	// picosecond (the documented tie caveat — see DESIGN.md §8). Homa's
	// grant bursts produce such a collision at seed 11, so it runs at a
	// collision-free seed; the property under test (no RNG divergence,
	// identical packet-level behaviour) is the same.
	for scheme, seed := range map[Scheme]int64{
		Scheme(transport.SchemeDCTCP): 11,
		Scheme(transport.SchemeHoma):  12,
		Scheme(transport.SchemePHost): 11,
	} {
		scheme, seed := scheme, seed
		t.Run(string(scheme), func(t *testing.T) {
			sc1, sc2 := shardScenario(scheme, 1), shardScenario(scheme, 2)
			sc1.Seed, sc2.Seed = seed, seed
			single := Run(sc1)
			sharded := Run(sc2)
			ds, dp := recordsDigest(single), recordsDigest(sharded)
			t.Logf("%s: single %s sharded %s (events %d vs %d)",
				scheme, ds, dp, single.Events, sharded.Events)
			if ds != dp {
				t.Fatalf("sharded digest %s != single-engine %s", dp, ds)
			}
		})
	}
}

// TestShardedRunTwice asserts reproducibility of the parallel engine
// for every built-in scheme: two runs at the same shard count must be
// bit-identical, whatever the goroutine interleaving did.
func TestShardedRunTwice(t *testing.T) {
	for _, scheme := range allSchemeNames {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			d1 := recordsDigest(Run(shardScenario(scheme, 2)))
			d2 := recordsDigest(Run(shardScenario(scheme, 2)))
			if d1 != d2 {
				t.Fatalf("sharded run not reproducible: %s vs %s", d1, d2)
			}
		})
	}
}

// TestShardedCompletionParity: even where bit-identity across shard
// counts is out of reach (credit pacers draw per-shard jitter), the
// outcome must agree. Two halves:
//
//   - On the random workload, the flow population must be structurally
//     identical (same IDs, sizes, start times) — the sharded path must
//     not perturb workload generation or flow bring-up.
//   - On a pinned modest-load cross-pod trace with a generous drain,
//     every flow must complete on both paths: jitter may move FCTs, but
//     no flow may stall only on one engine layout.
func TestShardedCompletionParity(t *testing.T) {
	for _, scheme := range allSchemeNames {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			single := Run(shardScenario(scheme, 1))
			sharded := Run(shardScenario(scheme, 2))
			if len(single.Flows.Records) != len(sharded.Flows.Records) {
				t.Fatalf("flow counts diverged: %d vs %d",
					len(single.Flows.Records), len(sharded.Flows.Records))
			}
			for i := range single.Flows.Records {
				a, b := single.Flows.Records[i], sharded.Flows.Records[i]
				if a.ID != b.ID || a.Size != b.Size || a.Start != b.Start || a.Legacy != b.Legacy {
					t.Fatalf("flow %d structurally diverged: %+v vs %+v", i, a, b)
				}
			}

			sc1, sc2 := shardFaultScenario(scheme), shardFaultScenario(scheme)
			sc1.Shards = 1
			r1, r2 := Run(sc1), Run(sc2)
			if s, p := r1.Flows.Incomplete(), r2.Flows.Incomplete(); s != 0 || p != 0 {
				t.Fatalf("pinned-trace incomplete flows: single %d, sharded %d", s, p)
			}
		})
	}
}

// shardFaultScenario pins a cross-pod trace through a 4-shard run under
// a flap-and-burst plan: a blackhole on a pod-0 ToR downlink and burst
// loss on a pod-2 agg↔core uplink — the latter a cross-shard wire, so
// fault state flips on the engine that owns the port.
func shardFaultScenario(scheme Scheme) Scenario {
	sc := shardScenario(scheme, 4)
	sc.Duration = 8 * sim.Millisecond
	sc.Drain = 300 * sim.Millisecond
	sc.TraceFlows = []workload.FlowSpec{
		{Src: 4, Dst: 0, Size: 2_000_000, At: 500 * sim.Microsecond}, // pod2→pod0, spans the blackhole
		{Src: 6, Dst: 2, Size: 500_000, At: sim.Millisecond},         // pod3→pod1
		{Src: 5, Dst: 0, Size: 500_000, At: 1500 * sim.Microsecond},  // starts inside the blackhole
		{Src: 0, Dst: 4, Size: 800_000, At: 2200 * sim.Microsecond},  // pod0→pod2, spans the burst
		{Src: 1, Dst: 5, Size: 1_000_000, At: 2500 * sim.Microsecond},
		{Src: 2, Dst: 7, Size: 400_000, At: 3 * sim.Millisecond},
		{Src: 3, Dst: 6, Size: 500_000, At: 5 * sim.Millisecond},
		{Src: 7, Dst: 1, Size: 600_000, At: 7 * sim.Millisecond}, // recovery phase
	}
	return sc
}

func shardFaultPlan(t *testing.T) *faults.Plan {
	t.Helper()
	p, err := faults.ParseSpec(
		"down@tor0.0->h0.0.0@1ms-2ms,burst@agg2.0<->core0:fwd@2ms-4ms@1.0@8@200")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "shard-flap-burst"
	return p
}

// TestShardedFaultPlanRunTwice: a 4-shard run under link flap plus
// burst loss — faults firing on several engines, loss drawn from
// per-shard RNG streams — must still replay bit-identically, fault log
// included.
func TestShardedFaultPlanRunTwice(t *testing.T) {
	for _, scheme := range []Scheme{Scheme(transport.SchemeDCTCP), SchemeFlexPass} {
		scheme := scheme
		t.Run(string(scheme), func(t *testing.T) {
			run := func() *Result {
				sc := shardFaultScenario(scheme)
				sc.FaultPlan = shardFaultPlan(t)
				return Run(sc)
			}
			r1, r2 := run(), run()
			if d1, d2 := recordsDigest(r1), recordsDigest(r2); d1 != d2 {
				t.Fatalf("faulted sharded run not reproducible: %s vs %s", d1, d2)
			}
			f1, f2 := r1.Faults.Export(), r2.Faults.Export()
			if len(f1) != len(f2) {
				t.Fatalf("fault logs diverged: %d vs %d actions", len(f1), len(f2))
			}
			for i := range f1 {
				if f1[i] != f2[i] {
					t.Fatalf("fault action %d diverged: %+v vs %+v", i, f1[i], f2[i])
				}
			}
			if r1.FaultDrops.Injected == 0 {
				t.Fatal("fault plan injected no losses; scenario does not exercise the faults")
			}
		})
	}
}
