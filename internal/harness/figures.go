package harness

import (
	"runtime"
	"sync"

	"flexpass/internal/sim"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// DeploymentPoint is one (scheme, deployment%) measurement with every
// statistic the deployment figures plot.
type DeploymentPoint struct {
	Scheme     Scheme
	Deployment float64
	Load       float64
	WQ         float64
	Workload   string

	// Fig 10/11/14/15/16.
	P99Small sim.Time // 99%-ile FCT of flows <100kB
	AvgAll   sim.Time // overall average FCT

	// Fig 12/13: split by traffic type.
	P99SmallLegacy, P99SmallNew sim.Time
	StdSmallLegacy, StdSmallNew sim.Time

	// Fig 5 ablations and §4.2 notes.
	AvgReorderKB  float64 // average per-flow max reordering buffer (upgraded flows)
	RedundantFrac float64 // duplicate volume / delivered volume

	// Bounded-queue measurements (when sampled).
	QueueAvg, QueueP90       int64
	QueueRedAvg, QueueRedP90 int64

	Timeouts   int
	Incomplete int
	OracleWQ   float64
	DropsRed   int64
	DropsCred  int64
	DropsOther int64
}

// RunPoint executes a scenario and reduces it to a DeploymentPoint,
// pooling across sc.PoolSeeds when set.
func RunPoint(sc Scenario) DeploymentPoint {
	if len(sc.PoolSeeds) > 1 {
		return RunPooled(sc, sc.PoolSeeds)
	}
	return reducePoint(sc, Run(sc))
}

// Sweep runs every (scheme, deployment) combination in parallel and
// returns points in deterministic order.
func Sweep(base Scenario, schemes []Scheme, deployments []float64) []DeploymentPoint {
	type job struct {
		idx int
		sc  Scenario
	}
	var jobs []job
	for _, s := range schemes {
		for _, d := range deployments {
			sc := base
			sc.Scheme = s
			sc.Deployment = d
			jobs = append(jobs, job{len(jobs), sc})
		}
	}
	out := make([]DeploymentPoint, len(jobs))
	par := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[j.idx] = RunPoint(j.sc)
		}(j)
	}
	wg.Wait()
	return out
}

// StandardDeployments are the paper's x-axis points.
var StandardDeployments = []float64{0, 0.25, 0.5, 0.75, 1.0}

// Fig10 runs the background-only deployment sweep (web search, 50% load)
// across the four schemes. Also yields Fig 12 and Fig 13 columns.
func Fig10(base Scenario) []DeploymentPoint {
	base.IncastFraction = 0
	base.SampleQueues = true
	return Sweep(base, Schemes, StandardDeployments)
}

// Fig11 repeats Fig 10 with 10% foreground incast traffic.
func Fig11(base Scenario) []DeploymentPoint {
	base.IncastFraction = 0.1
	return Sweep(base, Schemes, StandardDeployments)
}

// Fig5a compares FlexPass with RC3-style splitting: tail FCT of small
// flows vs average per-flow reordering buffer.
func Fig5a(base Scenario) []DeploymentPoint {
	return Sweep(base, []Scheme{SchemeFlexPass, SchemeFlexPassRC3}, []float64{0.25, 0.5, 0.75, 1.0})
}

// Fig5b compares FlexPass with the alternative queueing ablation across
// deployment ratios.
func Fig5b(base Scenario) []DeploymentPoint {
	return Sweep(base, []Scheme{SchemeFlexPass, SchemeFlexPassAltQ}, StandardDeployments)
}

// Fig14 sweeps network load (10/40/70%) for naïve ExpressPass and
// FlexPass.
func Fig14(base Scenario, loads []float64) []DeploymentPoint {
	var out []DeploymentPoint
	for _, load := range loads {
		b := base
		b.Load = load
		out = append(out, Sweep(b, []Scheme{SchemeNaive, SchemeFlexPass}, StandardDeployments)...)
	}
	return out
}

// Fig15and16 sweeps the four realistic workloads across all schemes
// (99%-ile small-flow FCT and overall average FCT).
func Fig15and16(base Scenario, workloads []string) []DeploymentPoint {
	var out []DeploymentPoint
	for _, name := range workloads {
		b := base
		b.Workload = workload.ByName(name)
		if b.Workload == nil {
			panic("harness: unknown workload " + name)
		}
		out = append(out, Sweep(b, Schemes, StandardDeployments)...)
	}
	return out
}

// Fig17 sweeps the selective-dropping threshold at full deployment:
// trade-off between small-flow tail FCT and overall average FCT.
func Fig17(base Scenario, thresholds []units.ByteSize) []DeploymentPoint {
	var out []DeploymentPoint
	for _, thr := range thresholds {
		b := base
		b.Scheme = SchemeFlexPass
		b.Deployment = 1.0
		b.Spec.FlexRed = thr
		b.SampleQueues = true
		out = append(out, RunPoint(b))
	}
	return out
}

// Fig18Row summarizes one w_q setting (Fig 18): worst legacy small-flow
// tail degradation during deployment, and the tail FCT at full
// deployment.
type Fig18Row struct {
	WQ                   float64
	MaxLegacyDegradation float64 // vs the 0%-deployment legacy tail
	P99SmallFull         sim.Time
	Points               []DeploymentPoint
}

// AblationRow is one design-choice ablation measurement.
type AblationRow struct {
	Name  string
	Point DeploymentPoint
}

// Ablations runs the design-choice ablations DESIGN.md calls out, all at
// 50% deployment under the base workload: the paper's FlexPass, FlexPass
// without proactive retransmission, FlexPass with the loss-based (Reno)
// reactive sub-flow, the RC3 splitting variant, and the alternative
// queueing variant.
func Ablations(base Scenario) []AblationRow {
	base.Deployment = 0.5
	mk := func(name string, mod func(*Scenario)) AblationRow {
		sc := base
		sc.Scheme = SchemeFlexPass
		mod(&sc)
		return AblationRow{Name: name, Point: RunPoint(sc)}
	}
	return []AblationRow{
		mk("flexpass", func(*Scenario) {}),
		mk("no-proactive-retx", func(sc *Scenario) { sc.DisableProRetx = true }),
		mk("reno-reactive", func(sc *Scenario) { sc.Reactive = "reno" }),
		mk("rc3-split", func(sc *Scenario) { sc.Scheme = SchemeFlexPassRC3 }),
		mk("alt-queueing", func(sc *Scenario) { sc.Scheme = SchemeFlexPassAltQ }),
	}
}

// Fig18 sweeps the queue weight w_q.
func Fig18(base Scenario, wqs []float64) []Fig18Row {
	var rows []Fig18Row
	for _, wq := range wqs {
		b := base
		b.Scheme = SchemeFlexPass
		b.WQ = wq
		pts := Sweep(b, []Scheme{SchemeFlexPass}, StandardDeployments)
		row := Fig18Row{WQ: wq, Points: pts}
		var base0 sim.Time
		for _, p := range pts {
			if p.Deployment == 0 {
				base0 = p.P99SmallLegacy
			}
		}
		for _, p := range pts {
			if p.Deployment == 0 || base0 == 0 {
				continue
			}
			deg := float64(p.P99SmallLegacy-base0) / float64(base0)
			if p.Deployment < 1 && deg > row.MaxLegacyDegradation {
				row.MaxLegacyDegradation = deg
			}
			if p.Deployment == 1 {
				row.P99SmallFull = p.P99Small
			}
		}
		rows = append(rows, row)
	}
	return rows
}
