package harness

import (
	"fmt"
	"sync"
	"time"
)

// KilledError is the panic value Run raises when a scenario watchdog
// trips: the wall-clock Deadline elapsed, or the engine horizon stopped
// advancing for StallTimeout (a wedged or livelocked run). Callers that
// supervise runs — the farm's point executor, the chaos soak runner —
// recover it and classify the failure by Reason instead of string
// matching.
type KilledError struct {
	Reason    string        // "deadline" or "stall"
	Elapsed   time.Duration // wall clock from run start to the kill
	HorizonPs int64         // last observed engine horizon, picoseconds
	Events    uint64        // events dispatched when killed
}

func (e *KilledError) Error() string {
	return fmt.Sprintf("harness: run killed by %s watchdog after %v (horizon %v ps, %d events)",
		e.Reason, e.Elapsed.Round(time.Millisecond), e.HorizonPs, e.Events)
}

// watchdog supervises a running engine (or shard fleet) from a wall-clock
// goroutine. It polls the horizon/events observers; when the deadline
// elapses or the horizon freezes for the stall window it records a
// KilledError and fires abort, which the engine's Watch poll honors
// within 256 dispatched events. The kill is cooperative: a goroutine
// that is not dispatching at all (blocked outside the engine) cannot be
// aborted here — that is what the farm's hard per-point backstop covers.
type watchdog struct {
	deadline time.Duration
	stall    time.Duration
	horizon  func() int64
	events   func() uint64
	abort    func()

	start time.Time
	done  chan struct{}
	wg    sync.WaitGroup

	mu   sync.Mutex
	kill *KilledError
}

// startWatchdog launches the monitor; both limits zero (or negative)
// means no supervision and returns nil (stop on a nil watchdog is a
// no-op).
func startWatchdog(deadline, stall time.Duration, horizon func() int64, events func() uint64, abort func()) *watchdog {
	if deadline <= 0 && stall <= 0 {
		return nil
	}
	wd := &watchdog{
		deadline: deadline,
		stall:    stall,
		horizon:  horizon,
		events:   events,
		abort:    abort,
		start:    time.Now(),
		done:     make(chan struct{}),
	}
	// Poll at ~1/8 of the tightest limit so a trip is detected promptly
	// without busy-waiting, clamped to keep very tight or very loose
	// limits sane.
	tightest := deadline
	if tightest <= 0 || (stall > 0 && stall < tightest) {
		tightest = stall
	}
	interval := tightest / 8
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 250*time.Millisecond {
		interval = 250 * time.Millisecond
	}
	wd.wg.Add(1)
	go wd.monitor(interval)
	return wd
}

func (wd *watchdog) monitor(interval time.Duration) {
	defer wd.wg.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	lastHorizon := wd.horizon()
	lastAdvance := wd.start
	for {
		select {
		case <-wd.done:
			return
		case <-tick.C:
		}
		now := time.Now()
		h := wd.horizon()
		if h != lastHorizon {
			lastHorizon = h
			lastAdvance = now
		}
		var reason string
		switch {
		case wd.deadline > 0 && now.Sub(wd.start) >= wd.deadline:
			reason = "deadline"
		case wd.stall > 0 && now.Sub(lastAdvance) >= wd.stall:
			// Keyed on the horizon alone: a livelocked run dispatches
			// events forever at one instant, and a wedged one dispatches
			// nothing — both freeze the horizon.
			reason = "stall"
		default:
			continue
		}
		wd.mu.Lock()
		wd.kill = &KilledError{
			Reason:    reason,
			Elapsed:   now.Sub(wd.start),
			HorizonPs: h,
			Events:    wd.events(),
		}
		wd.mu.Unlock()
		wd.abort()
		return
	}
}

// stop shuts the monitor down and returns the kill record, if any. Safe
// on a nil watchdog.
func (wd *watchdog) stop() *KilledError {
	if wd == nil {
		return nil
	}
	close(wd.done)
	wd.wg.Wait()
	wd.mu.Lock()
	defer wd.mu.Unlock()
	return wd.kill
}
