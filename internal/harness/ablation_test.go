package harness

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/workload"
)

func TestAblationsRun(t *testing.T) {
	base := miniBase()
	base.Duration = 4 * sim.Millisecond
	rows := Ablations(base)
	if len(rows) != 5 {
		t.Fatalf("%d ablation rows", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Name] = true
		if r.Point.Incomplete > 0 {
			t.Errorf("%s: %d incomplete flows", r.Name, r.Point.Incomplete)
		}
		if r.Point.P99Small == 0 {
			t.Errorf("%s: missing tail measurement", r.Name)
		}
	}
	for _, want := range []string{"flexpass", "no-proactive-retx", "reno-reactive", "rc3-split", "alt-queueing"} {
		if !names[want] {
			t.Errorf("ablation %q missing", want)
		}
	}
}

func TestRenoReactiveScenarioRuns(t *testing.T) {
	sc := miniBase()
	sc.Duration = 4 * sim.Millisecond
	sc.Reactive = "reno"
	sc.Deployment = 1.0
	res := Run(sc)
	if res.Flows.Incomplete() > 0 {
		t.Fatalf("%d incomplete with Reno reactive", res.Flows.Incomplete())
	}
}

func TestTraceReplayMatchesGenerated(t *testing.T) {
	// Running a scenario from its own exported trace must reproduce the
	// same flow population (sizes, pairs, count).
	sc := miniBase()
	sc.Duration = 3 * sim.Millisecond
	direct := Run(sc)

	// Regenerate the same workload out-of-band and replay it.
	rackOf := rackAssignment(sc.Clos)
	uplinks := sc.Clos.Hosts() / sc.Clos.HostsPerTor * sc.Clos.AggPerPod
	bg := workload.BackgroundParams{
		CDF:            sc.Workload,
		Hosts:          sc.Clos.Hosts(),
		RackOf:         rackOf,
		UplinkCapacity: sc.LinkRate.Scale(float64(uplinks)),
		Load:           sc.Load,
		Duration:       sc.Duration,
	}
	flows := bg.Generate(WorkloadRand(sc.Seed))
	replay := sc
	replay.TraceFlows = flows
	replayed := Run(replay)

	if len(direct.Flows.Records) != len(replayed.Flows.Records) {
		t.Fatalf("flow counts differ: %d direct vs %d replayed",
			len(direct.Flows.Records), len(replayed.Flows.Records))
	}
	for i := range direct.Flows.Records {
		if direct.Flows.Records[i].Size != replayed.Flows.Records[i].Size {
			t.Fatalf("flow %d size differs", i)
		}
		if direct.Flows.Records[i].FCT != replayed.Flows.Records[i].FCT {
			t.Fatalf("flow %d FCT differs: %v vs %v", i,
				direct.Flows.Records[i].FCT, replayed.Flows.Records[i].FCT)
		}
	}
}
