package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"flexpass/internal/faults"
	"flexpass/internal/metrics"
	"flexpass/internal/sim"
)

// Graceful-degradation harness: run the same scenario clean and under a
// fault plan, per scheme, and report how much each scheme loses — the
// robustness experiment behind the paper's §4.3 failure discussion.
// Both runs of a pair share the scenario seed, so the workloads are
// identical flow-for-flow and every delta is attributable to the plan.

// RunSummary condenses one run for degradation comparison.
type RunSummary struct {
	GoodputGbps float64 `json:"goodput_gbps"` // delivered bytes over the full run window
	FCTAvgUs    float64 `json:"fct_avg_us"`
	FCTP99Us    float64 `json:"fct_p99_us"`
	Completed   int     `json:"completed"`
	Flows       int     `json:"flows"`
	Timeouts    int     `json:"timeouts"`
	Retransmits int     `json:"retransmits"`
	// InjectedDrops counts packets destroyed by fault injection (always 0
	// for the clean run).
	InjectedDrops int64 `json:"injected_drops,omitempty"`
	// LastFinishPs is the latest flow-completion instant.
	LastFinishPs int64 `json:"last_finish_ps"`
}

// Summarize condenses a run result.
func Summarize(res *Result) RunSummary {
	all := metrics.Filter{}
	done := metrics.Filter{OnlyDone: true}
	fcts := res.Flows.FCTs(done)
	var rx int64
	var last sim.Time
	for _, r := range res.Flows.Records {
		rx += r.RxBytes
		if r.Completed && r.Start+r.FCT > last {
			last = r.Start + r.FCT
		}
	}
	window := res.Scenario.Duration + res.Scenario.Drain
	goodput := 0.0
	if window > 0 {
		goodput = float64(rx) * 8 / (float64(window) / float64(sim.Second)) / 1e9
	}
	return RunSummary{
		GoodputGbps:   goodput,
		FCTAvgUs:      metrics.Mean(fcts).Micros(),
		FCTP99Us:      metrics.Percentile(fcts, 0.99).Micros(),
		Completed:     res.Flows.Count(done),
		Flows:         res.Flows.Count(all),
		Timeouts:      res.Flows.SumInt(all, func(r metrics.FlowRecord) int { return r.Timeouts }),
		Retransmits:   res.Flows.SumInt(all, func(r metrics.FlowRecord) int { return r.Retransmits }),
		InjectedDrops: res.FaultDrops.Injected,
		LastFinishPs:  int64(last),
	}
}

// SchemeDegradation is one scheme's clean-vs-faulted pair.
type SchemeDegradation struct {
	Scheme  string     `json:"scheme"`
	Clean   RunSummary `json:"clean"`
	Faulted RunSummary `json:"faulted"`
	// GoodputDeltaPct and FCTP99DeltaPct are the faulted run relative to
	// clean (negative goodput delta = throughput lost to the faults).
	GoodputDeltaPct float64 `json:"goodput_delta_pct"`
	FCTP99DeltaPct  float64 `json:"fct_p99_delta_pct"`
	// RecoveryPs measures how long after the last scripted fault cleared
	// the faulted run still had flows finishing: latest completion minus
	// Plan.End(), clamped at zero. Small values mean the scheme absorbed
	// the faults inside the fault window.
	RecoveryPs int64 `json:"recovery_ps"`
}

// Degradation is a full graceful-degradation report.
type Degradation struct {
	PlanName string              `json:"plan"`
	PlanEnd  int64               `json:"plan_end_ps"`
	Events   int                 `json:"events"`
	Schemes  []SchemeDegradation `json:"schemes"`
}

// RunDegradation executes every scheme twice — clean, then with the
// plan — on otherwise identical copies of base (same seed, so the same
// workload flow-for-flow) and reports the deltas. A nil or empty scheme
// list runs the paper's four deployment schemes.
func RunDegradation(base Scenario, plan *faults.Plan, schemes []Scheme) *Degradation {
	if len(schemes) == 0 {
		schemes = Schemes
	}
	d := &Degradation{PlanName: plan.Name, PlanEnd: int64(plan.End()), Events: len(plan.Events)}
	for _, s := range schemes {
		clean := base
		clean.Scheme = s
		clean.FaultPlan = nil
		faulted := base
		faulted.Scheme = s
		faulted.FaultPlan = plan
		sd := SchemeDegradation{
			Scheme:  string(s),
			Clean:   Summarize(Run(clean)),
			Faulted: Summarize(Run(faulted)),
		}
		sd.GoodputDeltaPct = deltaPct(sd.Clean.GoodputGbps, sd.Faulted.GoodputGbps)
		sd.FCTP99DeltaPct = deltaPct(sd.Clean.FCTP99Us, sd.Faulted.FCTP99Us)
		if rec := sd.Faulted.LastFinishPs - d.PlanEnd; rec > 0 {
			sd.RecoveryPs = rec
		}
		d.Schemes = append(d.Schemes, sd)
	}
	return d
}

// deltaPct is the percent change from clean to faulted (0 when the
// clean value is 0, so empty runs don't divide by zero).
func deltaPct(clean, faulted float64) float64 {
	if clean == 0 {
		return 0
	}
	return (faulted - clean) / clean * 100
}

// WriteJSONL streams the report: one "degradation-plan" header line,
// then one "degradation" line per scheme — the same envelope-per-line
// convention as the obs run artifact.
func (d *Degradation) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	head := struct {
		Type    string `json:"type"`
		Plan    string `json:"plan"`
		Events  int    `json:"events"`
		EndPs   int64  `json:"plan_end_ps"`
		Schemes int    `json:"schemes"`
	}{"degradation-plan", d.PlanName, d.Events, d.PlanEnd, len(d.Schemes)}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for i := range d.Schemes {
		line := struct {
			Type string `json:"type"`
			SchemeDegradation
		}{"degradation", d.Schemes[i]}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSV emits one row per scheme with the headline deltas.
func (d *Degradation) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "scheme,goodput_clean_gbps,goodput_faulted_gbps,goodput_delta_pct,"+
		"fct_p99_clean_us,fct_p99_faulted_us,fct_p99_delta_pct,"+
		"completed_clean,completed_faulted,flows,timeouts_faulted,injected_drops,recovery_us"); err != nil {
		return err
	}
	for _, s := range d.Schemes {
		if _, err := fmt.Fprintf(bw, "%s,%.3f,%.3f,%.2f,%.1f,%.1f,%.2f,%d,%d,%d,%d,%d,%.1f\n",
			s.Scheme, s.Clean.GoodputGbps, s.Faulted.GoodputGbps, s.GoodputDeltaPct,
			s.Clean.FCTP99Us, s.Faulted.FCTP99Us, s.FCTP99DeltaPct,
			s.Clean.Completed, s.Faulted.Completed, s.Faulted.Flows,
			s.Faulted.Timeouts, s.Faulted.InjectedDrops,
			sim.Time(s.RecoveryPs).Micros()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFiles writes the report next to each other as <stem>.jsonl and
// <stem>.csv.
func (d *Degradation) WriteFiles(stem string) error {
	for ext, write := range map[string]func(io.Writer) error{
		".jsonl": d.WriteJSONL, ".csv": d.WriteCSV,
	} {
		f, err := os.Create(stem + ext)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// String renders a console table.
func (d *Degradation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "degradation under plan %q (%d events, clears at %v)\n",
		d.PlanName, d.Events, sim.Time(d.PlanEnd))
	fmt.Fprintf(&b, "%-16s %12s %12s %9s %12s %9s %10s %10s\n",
		"scheme", "goodput", "faulted", "Δ%", "p99 FCT", "Δ%", "drops", "recovery")
	for _, s := range d.Schemes {
		fmt.Fprintf(&b, "%-16s %9.3fGb %9.3fGb %8.2f%% %10.1fus %8.2f%% %10d %10v\n",
			s.Scheme, s.Clean.GoodputGbps, s.Faulted.GoodputGbps, s.GoodputDeltaPct,
			s.Clean.FCTP99Us, s.FCTP99DeltaPct, s.Faulted.InjectedDrops,
			sim.Time(s.RecoveryPs))
	}
	return b.String()
}
