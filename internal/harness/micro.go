package harness

import (
	"flexpass/internal/metrics"
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/transport/dctcp"
	"flexpass/internal/transport/expresspass"
	"flexpass/internal/transport/flexpass"
	"flexpass/internal/transport/homa"
	"flexpass/internal/units"
)

// ThroughputSeries is a set of named throughput time series (Figs 1/7/9).
type ThroughputSeries struct {
	Interval sim.Time
	Names    []string
	Series   map[string][]units.Rate
}

// testbedParams mirrors the §6.1 testbed: 10GbE, one switch, w_q = 0.5,
// ECN 60kB and selective dropping 100kB at Q1.
func testbedParams(profile topo.PortProfile) topo.Params {
	return topo.Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   profile,
	}
}

// TestbedSpec is the §6.1 switch configuration.
func TestbedSpec() topo.Spec {
	return topo.Spec{WQ: 0.5, FlexECN: 60 * units.KB, FlexRed: 100 * units.KB, LegacyECN: 60 * units.KB}
}

func agentsFor(f *topo.Fabric) []*transport.Agent {
	ag := make([]*transport.Agent, len(f.Net.Hosts))
	for i := range ag {
		ag[i] = transport.NewAgent(f.Net.Eng, f.Net.Host(i))
	}
	return ag
}

func sampleSeries(eng *sim.Engine, interval sim.Time, groups map[string]func() int64, order []string) *metrics.Sampler {
	s := metrics.NewSampler(eng, interval)
	for _, name := range order {
		s.Track(name, groups[name])
	}
	s.Start()
	return s
}

func toSeries(s *metrics.Sampler, order []string) *ThroughputSeries {
	out := &ThroughputSeries{Interval: s.Interval(), Names: order, Series: map[string][]units.Rate{}}
	for _, n := range order {
		out.Series[n] = s.Rates(n)
	}
	return out
}

// Fig1a reproduces Fig 1(a)/9(a): one ExpressPass flow (naïve deployment)
// and one DCTCP flow competing for a 10Gbps bottleneck; ExpressPass
// starves DCTCP.
func Fig1a(seed int64, dur sim.Time) *ThroughputSeries {
	eng := sim.NewEngine(seed)
	fab := topo.Dumbbell(eng, 2, 2, 10*units.Gbps, testbedParams(topo.NaiveProfile(TestbedSpec())))
	ag := agentsFor(fab)
	xp := &transport.Flow{ID: 1, Src: ag[0], Dst: ag[2], Size: 1 << 31, Transport: transport.SchemeExpressPass}
	dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[3], Size: 1 << 31, Transport: transport.SchemeDCTCP, Legacy: true}
	expresspass.Start(eng, xp, expresspass.DefaultConfig(
		expresspass.DefaultPacerConfig(netem.CreditRateFor(10*units.Gbps, 1.0))))
	dctcp.Start(eng, dc, dctcp.LegacyConfig())
	order := []string{"ExpressPass", "DCTCP"}
	s := sampleSeries(eng, sim.Millisecond, map[string]func() int64{
		"ExpressPass": func() int64 { return xp.RxBytes },
		"DCTCP":       func() int64 { return dc.RxBytes },
	}, order)
	eng.Run(dur)
	return toSeries(s, order)
}

// Fig1b reproduces Fig 1(b): 16 HOMA and 16 DCTCP flows competing for a
// 10Gbps bottleneck; HOMA's blind full-rate granting starves DCTCP.
func Fig1b(seed int64, dur sim.Time) *ThroughputSeries {
	eng := sim.NewEngine(seed)
	fab := topo.Dumbbell(eng, 32, 32, 10*units.Gbps, testbedParams(topo.HomaProfile(100*units.KB)))
	ag := agentsFor(fab)
	var homaFlows, dcFlows []*transport.Flow
	id := uint64(1)
	for i := 0; i < 16; i++ {
		fl := &transport.Flow{ID: id, Src: ag[i], Dst: ag[32+i], Size: 1 << 31, Transport: transport.SchemeHoma}
		homaFlows = append(homaFlows, fl)
		homa.Start(eng, fl, homa.DefaultConfig(10*units.Gbps))
		id++
	}
	for i := 16; i < 32; i++ {
		fl := &transport.Flow{ID: id, Src: ag[i], Dst: ag[32+i], Size: 1 << 31, Transport: transport.SchemeDCTCP, Legacy: true}
		dcFlows = append(dcFlows, fl)
		dctcp.Start(eng, fl, dctcp.LegacyConfig())
		id++
	}
	sum := func(fs []*transport.Flow) func() int64 {
		return func() int64 {
			var t int64
			for _, f := range fs {
				t += f.RxBytes
			}
			return t
		}
	}
	order := []string{"HOMA", "DCTCP"}
	s := sampleSeries(eng, sim.Millisecond, map[string]func() int64{
		"HOMA":  sum(homaFlows),
		"DCTCP": sum(dcFlows),
	}, order)
	eng.Run(dur)
	return toSeries(s, order)
}

// Fig7 reproduces Fig 7's three sub-flow throughput scenarios on the
// 2-to-1 testbed. variant: "a" one FlexPass flow, "b" two FlexPass flows,
// "c" one DCTCP + one FlexPass flow.
func Fig7(variant string, seed int64, dur sim.Time) *ThroughputSeries {
	eng := sim.NewEngine(seed)
	fab := topo.SingleSwitch(eng, 3, testbedParams(topo.FlexPassProfile(TestbedSpec())))
	ag := agentsFor(fab)
	fpCfg := flexpass.DefaultConfig(expresspass.DefaultPacerConfig(netem.CreditRateFor(10*units.Gbps, 0.5)))

	groups := map[string]func() int64{}
	var order []string
	newFP := func(id uint64, src int) *transport.Flow {
		fl := &transport.Flow{ID: id, Src: ag[src], Dst: ag[2], Size: 1 << 31, Transport: transport.SchemeFlexPass}
		flexpass.Start(eng, fl, fpCfg)
		return fl
	}
	switch variant {
	case "a":
		fl := newFP(1, 0)
		order = []string{"Proactive", "Reactive"}
		groups["Proactive"] = func() int64 { return fl.RxBytesPro }
		groups["Reactive"] = func() int64 { return fl.RxBytesRe }
	case "b":
		f1, f2 := newFP(1, 0), newFP(2, 1)
		order = []string{"Proactive", "Reactive", "Flow1", "Flow2"}
		groups["Proactive"] = func() int64 { return f1.RxBytesPro + f2.RxBytesPro }
		groups["Reactive"] = func() int64 { return f1.RxBytesRe + f2.RxBytesRe }
		groups["Flow1"] = func() int64 { return f1.RxBytes }
		groups["Flow2"] = func() int64 { return f2.RxBytes }
	case "c":
		fp := newFP(1, 0)
		dc := &transport.Flow{ID: 2, Src: ag[1], Dst: ag[2], Size: 1 << 31, Transport: transport.SchemeDCTCP, Legacy: true}
		dctcp.Start(eng, dc, dctcp.LegacyConfig())
		order = []string{"DCTCP", "Proactive", "Reactive"}
		groups["DCTCP"] = func() int64 { return dc.RxBytes }
		groups["Proactive"] = func() int64 { return fp.RxBytesPro }
		groups["Reactive"] = func() int64 { return fp.RxBytesRe }
	default:
		panic("harness: Fig7 variant must be a, b, or c")
	}
	s := sampleSeries(eng, sim.Millisecond, groups, order)
	eng.Run(dur)
	return toSeries(s, order)
}

// Fig9Result carries the starvation comparison (Fig 9c).
type Fig9Result struct {
	ExpressPass *ThroughputSeries // naïve ExpressPass vs DCTCP (Fig 9a)
	FlexPass    *ThroughputSeries // FlexPass vs DCTCP (Fig 9b)
	// Starvation fractions: share of 1ms windows below 20% of capacity.
	StarvedExpressPassSide float64 // the DCTCP flow under naïve ExpressPass
	StarvedFlexPassSide    float64 // the DCTCP flow under FlexPass
}

// Fig9 reproduces Fig 9: starvation time of the legacy flow under naïve
// ExpressPass vs under FlexPass, on the 2-to-1 testbed.
func Fig9(seed int64, dur sim.Time) *Fig9Result {
	threshold := (10 * units.Gbps).Scale(0.2)

	// (a) naïve ExpressPass vs DCTCP.
	engA := sim.NewEngine(seed)
	fabA := topo.SingleSwitch(engA, 3, testbedParams(topo.NaiveProfile(TestbedSpec())))
	agA := agentsFor(fabA)
	xp := &transport.Flow{ID: 1, Src: agA[0], Dst: agA[2], Size: 1 << 31, Transport: transport.SchemeExpressPass}
	dcA := &transport.Flow{ID: 2, Src: agA[1], Dst: agA[2], Size: 1 << 31, Transport: transport.SchemeDCTCP, Legacy: true}
	expresspass.Start(engA, xp, expresspass.DefaultConfig(
		expresspass.DefaultPacerConfig(netem.CreditRateFor(10*units.Gbps, 1.0))))
	dctcp.Start(engA, dcA, dctcp.LegacyConfig())
	orderA := []string{"ExpressPass", "DCTCP"}
	sA := sampleSeries(engA, sim.Millisecond, map[string]func() int64{
		"ExpressPass": func() int64 { return xp.RxBytes },
		"DCTCP":       func() int64 { return dcA.RxBytes },
	}, orderA)
	engA.Run(dur)

	// (b) FlexPass vs DCTCP.
	engB := sim.NewEngine(seed)
	fabB := topo.SingleSwitch(engB, 3, testbedParams(topo.FlexPassProfile(TestbedSpec())))
	agB := agentsFor(fabB)
	fp := &transport.Flow{ID: 1, Src: agB[0], Dst: agB[2], Size: 1 << 31, Transport: transport.SchemeFlexPass}
	dcB := &transport.Flow{ID: 2, Src: agB[1], Dst: agB[2], Size: 1 << 31, Transport: transport.SchemeDCTCP, Legacy: true}
	flexpass.Start(engB, fp, flexpass.DefaultConfig(
		expresspass.DefaultPacerConfig(netem.CreditRateFor(10*units.Gbps, 0.5))))
	dctcp.Start(engB, dcB, dctcp.LegacyConfig())
	orderB := []string{"FlexPass", "DCTCP"}
	sB := sampleSeries(engB, sim.Millisecond, map[string]func() int64{
		"FlexPass": func() int64 { return fp.RxBytes },
		"DCTCP":    func() int64 { return dcB.RxBytes },
	}, orderB)
	engB.Run(dur)

	res := &Fig9Result{
		ExpressPass: toSeries(sA, orderA),
		FlexPass:    toSeries(sB, orderB),
	}
	_, res.StarvedExpressPassSide = metrics.StarvationFraction(
		res.ExpressPass.Series["ExpressPass"], res.ExpressPass.Series["DCTCP"], threshold, true)
	_, res.StarvedFlexPassSide = metrics.StarvationFraction(
		res.FlexPass.Series["FlexPass"], res.FlexPass.Series["DCTCP"], threshold, true)
	return res
}

// Fig8Row is one incast measurement.
type Fig8Row struct {
	Flows     int
	Transport string
	MaxFCT    sim.Time
	Timeouts  int
}

// Fig8 reproduces Fig 8: an 8-to-1 incast of 64kB responses on the
// testbed; tail FCT while increasing the number of flows. DCTCP suffers
// RTOs at high degree; ExpressPass and FlexPass never do.
func Fig8(flowCounts []int, seeds []int64) []Fig8Row {
	var rows []Fig8Row
	for _, n := range flowCounts {
		for _, tp := range []string{transport.SchemeDCTCP, transport.SchemeExpressPass, transport.SchemeFlexPass} {
			var worst sim.Time
			timeouts := 0
			for _, seed := range seeds {
				fct, to := runIncastOnce(tp, n, seed)
				if fct > worst {
					worst = fct
				}
				timeouts += to
			}
			rows = append(rows, Fig8Row{Flows: n, Transport: tp, MaxFCT: worst, Timeouts: timeouts})
		}
	}
	return rows
}

func runIncastOnce(tp string, n int, seed int64) (maxFCT sim.Time, timeouts int) {
	eng := sim.NewEngine(seed)
	env := &transport.SchemeEnv{
		Eng:      eng,
		LinkRate: 10 * units.Gbps,
		WQ:       0.5,
		Spec:     TestbedSpec(),
	}
	sch := mustScheme(tp, env)
	fab := topo.SingleSwitch(eng, 9, testbedParams(sch.Profile()))
	ag := agentsFor(fab)
	var flows []*transport.Flow
	for i := 0; i < n; i++ {
		fl := &transport.Flow{
			ID:   uint64(i + 1),
			Src:  ag[i%8],
			Dst:  ag[8],
			Size: 64_000,
			// The receiver's synchronized requests arrive together; the
			// responses start within a tiny jitter.
			Start: sim.Time(i) * 100 * sim.Nanosecond,
		}
		fl.Transport = tp
		flows = append(flows, fl)
		start := fl.Start
		fl2 := fl
		eng.At(start, func() { sch.Start(fl2) })
	}
	eng.Run(2 * sim.Second)
	for _, fl := range flows {
		if !fl.Completed {
			// Treat as a 2s FCT: a huge visible spike.
			return 2 * sim.Second, timeouts + fl.Timeouts
		}
		if fl.FCT() > maxFCT {
			maxFCT = fl.FCT()
		}
		timeouts += fl.Timeouts
	}
	return maxFCT, timeouts
}
