package harness

import (
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/transport"
	"flexpass/internal/workload"
)

// recordWorkloadObs folds per-tenant and per-coflow workload accounting
// into the run's registry after the engine stops: flow/byte counters per
// load class ("workload/tenant/<name>"), coflow counts, and a coflow
// completion-time histogram ("workload/coflow" cct_us). Counters are
// registered only when the workload actually carries tenant or coflow
// tags, so artifacts of untagged runs are unchanged.
//
// Both runner paths assign flow ID = spec index + 1 in spec order (the
// single-engine loop increments nextID per spec; the sharded path
// prebuilds IDs), which is the mapping this accounting relies on. A
// spec whose arrival never fired (past the window) simply has no
// started flow and counts as incomplete.
func recordWorkloadObs(reg *obs.Registry, specs []workload.FlowSpec, started []*transport.Flow) {
	if reg == nil {
		return
	}
	byID := make([]*transport.Flow, len(specs)+1)
	for _, fl := range started {
		if fl.ID > 0 && fl.ID < uint64(len(byID)) {
			byID[fl.ID] = fl
		}
	}
	type coflowState struct {
		total, done int
		arrive      sim.Time
		lastDone    sim.Time
	}
	coflows := map[uint64]*coflowState{}
	var order []uint64
	for i, fs := range specs {
		fl := byID[i+1]
		completed := fl != nil && fl.Completed
		if fs.Tenant != "" {
			ent := "workload/tenant/" + fs.Tenant
			reg.Counter(ent, "flows").Inc()
			reg.Counter(ent, "bytes").Add(fs.Size)
			if completed {
				reg.Counter(ent, "flows_done").Inc()
			}
		}
		if fs.Coflow == 0 {
			continue
		}
		cs := coflows[fs.Coflow]
		if cs == nil {
			cs = &coflowState{arrive: fs.At}
			coflows[fs.Coflow] = cs
			order = append(order, fs.Coflow)
		}
		cs.total++
		if completed {
			cs.done++
			if fl.Done > cs.lastDone {
				cs.lastDone = fl.Done
			}
		}
	}
	if len(coflows) == 0 {
		return
	}
	ent := "workload/coflow"
	total := reg.Counter(ent, "coflows")
	doneC := reg.Counter(ent, "coflows_done")
	cct := reg.Histogram(ent, "cct_us")
	for _, id := range order {
		cs := coflows[id]
		total.Inc()
		if cs.done == cs.total {
			// The coflow completes when its slowest member finishes;
			// its clock starts at the shared arrival instant.
			doneC.Inc()
			cct.Observe(int64((cs.lastDone - cs.arrive) / sim.Microsecond))
		}
	}
}
