package harness

import (
	"path/filepath"
	"testing"

	"flexpass/internal/forensics"
	"flexpass/internal/obs"
)

func forensicsScenario() Scenario {
	sc := telemetryScenario()
	sc.Forensics = &forensics.Options{}
	return sc
}

// TestForensicsRunArtifact is the tentpole's acceptance test: a forensic
// run yields worst-flow timelines with hop-by-hop records and per-hop
// delay breakdowns, the healthy invariants all hold, and the whole
// report round-trips through the JSONL artifact.
func TestForensicsRunArtifact(t *testing.T) {
	res := Run(forensicsScenario())
	rep := res.Forensics
	if rep == nil {
		t.Fatal("forensics enabled but Result.Forensics is nil")
	}

	// A healthy run violates no invariants.
	if len(rep.Violations) != 0 {
		t.Fatalf("healthy run produced violations: %v", rep.Violations)
	}

	if len(rep.Timelines) == 0 {
		t.Fatal("no timelines exported")
	}
	for _, tl := range rep.Timelines {
		if len(tl.Hops) == 0 {
			t.Fatalf("flow %d timeline has no hop records", tl.Flow)
		}
		if len(tl.PerHop) == 0 {
			t.Fatalf("flow %d timeline has no per-hop delay breakdown", tl.Flow)
		}
		if len(tl.Events) == 0 {
			t.Fatalf("flow %d timeline has no lifecycle events", tl.Flow)
		}
		if tl.Transport == "" || tl.Size == 0 {
			t.Fatalf("flow %d timeline missing identity: %+v", tl.Flow, tl)
		}
	}

	// Forensics implies telemetry even though Scenario.Telemetry was set:
	// the artifact carries the report as forensics lines.
	run := res.Telemetry
	if run == nil {
		t.Fatal("forensics did not produce a telemetry artifact")
	}
	if len(run.Forensics) != len(rep.Timelines) {
		t.Fatalf("artifact carries %d forensics lines, want %d timelines",
			len(run.Forensics), len(rep.Timelines))
	}

	// Round-trip through a file.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run.WriteJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tls := got.Timelines()
	if len(tls) != len(rep.Timelines) {
		t.Fatalf("timelines did not round-trip: %d vs %d", len(tls), len(rep.Timelines))
	}
	want := rep.Timelines[0]
	rt := got.FindTimeline(want.Flow)
	if rt == nil {
		t.Fatalf("flow %d timeline missing after round trip", want.Flow)
	}
	if len(rt.Hops) != len(want.Hops) || len(rt.Delays) != len(want.PerHop) ||
		len(rt.Events) != len(want.Events) || rt.Transport != want.Transport {
		t.Fatalf("timeline shape changed across round trip: %+v", rt)
	}
}

// TestForensicsImpliesTelemetry: enabling forensics without telemetry
// still produces the artifact (with a trace ring for lifecycle events),
// and the caller's nil Telemetry field stays nil.
func TestForensicsImpliesTelemetry(t *testing.T) {
	sc := forensicsScenario()
	sc.Telemetry = nil
	res := Run(sc)
	if res.Telemetry == nil {
		t.Fatal("forensics alone did not enable telemetry")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("forensics alone did not enable the trace ring")
	}
	if res.Scenario.Telemetry != nil {
		t.Fatal("Run mutated the scenario's Telemetry field")
	}
	if len(res.Forensics.Timelines) == 0 {
		t.Fatal("no timelines without explicit telemetry")
	}
}

// TestForensicsDoesNotPerturb verifies the observation-only claim: hop
// recording and auditors enabled vs a completely plain run produce
// byte-identical flow results with the same seed.
func TestForensicsDoesNotPerturb(t *testing.T) {
	sc := forensicsScenario()
	sc.Telemetry = nil
	with := Run(sc)
	sc.Forensics = nil
	without := Run(sc)

	a, b := with.Flows.Records, without.Flows.Records
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].FCT != b[i].FCT || a[i].Size != b[i].Size {
			t.Fatalf("flow %d diverged: forensics %+v vs plain %+v", i, a[i], b[i])
		}
	}
	if with.DropsRed != without.DropsRed || with.DropsCredit != without.DropsCredit ||
		with.DropsOther != without.DropsOther {
		t.Fatal("drop counts diverged under forensics")
	}
}

// TestBrokenAccountantTriggersViolation proves auditor findings reach
// the exported artifact: a deliberately broken credit accountant (the
// WrapCreditAccountant test seam under-reports issued credits by half)
// must produce credit-conservation violations in Result.Forensics and
// as forensics lines in the JSONL file.
func TestBrokenAccountantTriggersViolation(t *testing.T) {
	sc := forensicsScenario()
	sc.Forensics = &forensics.Options{
		WrapCreditAccountant: func(issued, consumed, dropped func() int64) (func() int64, func() int64, func() int64) {
			return func() int64 { return issued() / 2 }, consumed, dropped
		},
	}
	res := Run(sc)
	if res.Forensics == nil || len(res.Forensics.Violations) == 0 {
		t.Fatal("broken credit accountant produced no violations")
	}
	v := res.Forensics.Violations[0]
	if v.Auditor != "credit-conservation" || v.Detail == "" {
		t.Fatalf("unexpected violation: %+v", v)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := res.Telemetry.WriteJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	vs := got.Violations()
	if len(vs) != len(res.Forensics.Violations) {
		t.Fatalf("violations did not round-trip: file has %d, run had %d",
			len(vs), len(res.Forensics.Violations))
	}
	if vs[0].Auditor != "credit-conservation" || vs[0].AtPs <= 0 {
		t.Fatalf("exported violation malformed: %+v", vs[0])
	}
}
