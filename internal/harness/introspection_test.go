package harness

import (
	"testing"

	"flexpass/internal/live"
)

// TestProfileDigestIdentical pins the profiler's behaviour-neutrality
// contract: enabling self-profiling (and the live status board) must
// leave the flow digest bit-identical to an unprofiled run of the same
// scenario, while still attributing events to the expected components.
func TestProfileDigestIdentical(t *testing.T) {
	plain := recordsDigest(Run(schemeDigestScenario(SchemeFlexPass)))

	sc := schemeDigestScenario(SchemeFlexPass)
	sc.Profile = true
	board := &live.RunBoard{}
	sc.Live = board
	res := Run(sc)

	if got := recordsDigest(res); got != plain {
		t.Fatalf("profiled digest %s != plain digest %s — profiling changed behaviour", got, plain)
	}

	if res.Profiler == nil || len(res.Profile) == 0 {
		t.Fatal("profiled run exported no component profile")
	}
	byName := map[string]uint64{}
	var total uint64
	for _, cp := range res.Profile {
		byName[cp.Component] = cp.Events
		total += cp.Events
	}
	for _, want := range []string{"transport/flexpass", "transport/dctcp", "netem/tx", "harness/arrival"} {
		if byName[want] == 0 {
			t.Errorf("no events attributed to %q (profile: %v)", want, byName)
		}
	}
	if total == 0 {
		t.Fatal("profiler observed zero events")
	}

	// The live board saw the run finish with consistent flow counts.
	st := board.Status()
	if !st.Done {
		t.Fatalf("final board status not done: %+v", st)
	}
	if st.FlowsTotal == 0 || st.FlowsDone == 0 || st.FlowsDone > st.FlowsTotal {
		t.Fatalf("implausible board flow counts: %+v", st)
	}
	if st.Events == 0 || st.SimNowPs == 0 {
		t.Fatalf("board missing engine progress: %+v", st)
	}
	if len(board.Readings()) == 0 {
		t.Fatal("board published no metric readings")
	}
}
