package harness

import (
	"path/filepath"
	"testing"

	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

func telemetryScenario() Scenario {
	return Scenario{
		Seed:         7,
		Clos:         topo.ClosParams{Pods: 2, AggPerPod: 1, TorPerPod: 1, HostsPerTor: 3, Cores: 1},
		LinkRate:     10 * units.Gbps,
		LinkDelay:    2 * sim.Microsecond,
		HostDelay:    sim.Microsecond,
		SwitchBuf:    1000 * units.KB,
		BufAlpha:     0.25,
		Scheme:       SchemeFlexPass,
		WQ:           0.5,
		Workload:     workload.WebSearch,
		Load:         0.4,
		Deployment:   1.0,
		Duration:     2 * sim.Millisecond,
		Drain:        10 * sim.Millisecond,
		SampleQueues: true,
		Telemetry:    &obs.Options{TraceCap: 1024},
	}
}

// TestTelemetryRunArtifact is the tentpole's acceptance test: a telemetry
// run yields a manifest, queue-occupancy and throughput series, final
// counters, trace events — and the artifact round-trips through JSONL.
func TestTelemetryRunArtifact(t *testing.T) {
	res := Run(telemetryScenario())
	run := res.Telemetry
	if run == nil {
		t.Fatal("telemetry enabled but Result.Telemetry is nil")
	}

	m := run.Manifest
	if m.Schema != obs.SchemaVersion || m.Seed != 7 || m.Scheme != "flexpass" ||
		m.Workload != "websearch" || m.DurationPs != int64(12*sim.Millisecond) {
		t.Fatalf("manifest wrong: %+v", m)
	}
	if m.Events == 0 || m.EventsPerSec <= 0 || m.WallMS <= 0 {
		t.Fatalf("manifest perf self-report missing: %+v", m)
	}
	if m.Config["link_rate"] == "" || m.Config["probe_interval"] == "" {
		t.Fatalf("manifest config missing: %+v", m.Config)
	}

	// Queue-occupancy series (instant) and port throughput series (delta)
	// — the ingredients of the paper's Fig. 6-style timeline.
	var sawQueue, sawTx bool
	for _, s := range run.Series {
		if s.Metric == "bytes" && s.Kind == "instant" && len(s.Values) > 0 {
			sawQueue = true
		}
		if s.Metric == "tx_bytes" && s.Kind == "delta" && len(s.Values) > 0 {
			sawTx = true
		}
	}
	if !sawQueue || !sawTx {
		t.Fatalf("missing series: queue=%v tx=%v (have %d series)", sawQueue, sawTx, len(run.Series))
	}

	// Per-transport counters: flexpass flows ran, so its counters moved.
	started := false
	for _, c := range run.Counters {
		if c.Entity == "transport/flexpass" && c.Metric == "flows_started" && c.Value > 0 {
			started = true
		}
	}
	if !started {
		t.Fatal("transport/flexpass flows_started counter did not move")
	}
	if len(run.Trace) == 0 {
		t.Fatal("trace ring attached but no events exported")
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("Result.Trace missing")
	}

	// Queue stats were derived from the probe series, not a second sampler.
	if res.QueueAvg < 0 || res.QueueP90 < res.QueueAvg {
		t.Fatalf("queue stats from series look wrong: avg=%d p90=%d", res.QueueAvg, res.QueueP90)
	}

	// Round-trip through a file.
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := run.WriteJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONLFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Manifest.Seed != run.Manifest.Seed || got.Manifest.Events != run.Manifest.Events ||
		got.Manifest.Config["link_rate"] != run.Manifest.Config["link_rate"] {
		t.Fatalf("manifest did not round-trip: %+v", got.Manifest)
	}
	if len(got.Series) != len(run.Series) || len(got.Counters) != len(run.Counters) ||
		len(got.Hists) != len(run.Hists) || len(got.Trace) != len(run.Trace) {
		t.Fatal("artifact shape changed across round trip")
	}
}

// TestTelemetryDoesNotPerturb verifies the observation-only claim: the
// same scenario with and without telemetry produces identical flow
// results (probe events only read state).
func TestTelemetryDoesNotPerturb(t *testing.T) {
	sc := telemetryScenario()
	withTel := Run(sc)
	sc.Telemetry = nil
	without := Run(sc)

	a, b := withTel.Flows.Records, without.Flows.Records
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].FCT != b[i].FCT || a[i].Size != b[i].Size {
			t.Fatalf("flow %d diverged: telemetry %+v vs plain %+v", i, a[i], b[i])
		}
	}
	if withTel.DropsRed != without.DropsRed || withTel.DropsOther != without.DropsOther {
		t.Fatal("drop counts diverged under telemetry")
	}
}
