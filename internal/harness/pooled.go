package harness

import (
	"runtime"
	"sync"

	"flexpass/internal/metrics"
)

// RunPooled executes the scenario once per seed and pools every flow
// record before computing statistics, so tail percentiles are taken over
// the union of flows rather than averaged across runs — the statistically
// honest way to tighten single-seed noise in the deployment figures.
func RunPooled(sc Scenario, seeds []int64) DeploymentPoint {
	if len(seeds) == 0 {
		seeds = []int64{sc.Seed}
	}
	results := make([]*Result, len(seeds))
	par := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := sc
			s.Seed = seed
			results[i] = Run(s)
		}(i, seed)
	}
	wg.Wait()

	// Merge every run into one synthetic result and reduce it.
	merged := results[0]
	for _, r := range results[1:] {
		merged.Flows.Records = append(merged.Flows.Records, r.Flows.Records...)
		merged.DropsRed += r.DropsRed
		merged.DropsCredit += r.DropsCredit
		merged.DropsOther += r.DropsOther
		merged.Events += r.Events
		// Queue stats: keep the worst observed percentile.
		if r.QueueP90 > merged.QueueP90 {
			merged.QueueP90 = r.QueueP90
		}
		if r.QueueAvg > merged.QueueAvg {
			merged.QueueAvg = r.QueueAvg
		}
	}
	return reducePoint(sc, merged)
}

// SweepPooled is Sweep with per-point seed pooling.
func SweepPooled(base Scenario, schemes []Scheme, deployments []float64, seeds []int64) []DeploymentPoint {
	var out []DeploymentPoint
	for _, s := range schemes {
		for _, d := range deployments {
			sc := base
			sc.Scheme = s
			sc.Deployment = d
			out = append(out, RunPooled(sc, seeds))
		}
	}
	return out
}

// reducePoint converts a (possibly merged) result into a DeploymentPoint.
func reducePoint(sc Scenario, res *Result) DeploymentPoint {
	c := &res.Flows
	small := metrics.Small()
	smallLegacy, smallNew := small, small
	smallLegacy.Legacy = metrics.Bool(true)
	smallNew.Legacy = metrics.Bool(false)

	pt := DeploymentPoint{
		Scheme:     sc.Scheme,
		Deployment: sc.Deployment,
		Load:       sc.Load,
		WQ:         sc.WQ,
		Workload:   sc.Workload.Name,

		P99Small:       metrics.Percentile(c.FCTs(small), 0.99),
		AvgAll:         metrics.Mean(c.FCTs(metrics.Filter{})),
		P99SmallLegacy: metrics.Percentile(c.FCTs(smallLegacy), 0.99),
		P99SmallNew:    metrics.Percentile(c.FCTs(smallNew), 0.99),
		StdSmallLegacy: metrics.StdDev(c.FCTs(smallLegacy)),
		StdSmallNew:    metrics.StdDev(c.FCTs(smallNew)),

		QueueAvg:    res.QueueAvg,
		QueueP90:    res.QueueP90,
		QueueRedAvg: res.QueueRedAvg,
		QueueRedP90: res.QueueRedP90,

		Timeouts:   c.SumInt(metrics.Filter{}, func(r metrics.FlowRecord) int { return r.Timeouts }),
		Incomplete: c.Incomplete(),
		OracleWQ:   res.OracleWQ,
		DropsRed:   res.DropsRed,
		DropsCred:  res.DropsCredit,
		DropsOther: res.DropsOther,
	}

	var reorderSum, reorderN float64
	var dupSegs, rxBytes int64
	for _, r := range c.Records {
		if !r.Legacy {
			reorderSum += float64(r.MaxReorderB)
			reorderN++
		}
		dupSegs += int64(r.Redundant)
		rxBytes += r.RxBytes
	}
	if reorderN > 0 {
		pt.AvgReorderKB = reorderSum / reorderN / 1000
	}
	if rxBytes > 0 {
		pt.RedundantFrac = float64(dupSegs*1460) / float64(rxBytes)
	}
	return pt
}
