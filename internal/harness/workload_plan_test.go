package harness

import (
	"path/filepath"
	"testing"

	"flexpass/internal/lake"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

func planScenario() Scenario {
	return Scenario{
		Seed:       7,
		Clos:       topo.ClosParams{Pods: 2, AggPerPod: 1, TorPerPod: 1, HostsPerTor: 3, Cores: 1},
		LinkRate:   10 * units.Gbps,
		LinkDelay:  2 * sim.Microsecond,
		HostDelay:  sim.Microsecond,
		SwitchBuf:  1000 * units.KB,
		BufAlpha:   0.25,
		Scheme:     SchemeFlexPass,
		WQ:         0.5,
		Workload:   workload.WebSearch,
		Load:       0.4,
		Deployment: 1.0,
		Duration:   2 * sim.Millisecond,
		Drain:      20 * sim.Millisecond,
	}
}

func parsePlanOrDie(t *testing.T, js string) *workload.Plan {
	t.Helper()
	p, err := workload.ParsePlan([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// An explicit plan spelling out the legacy parameter workload must
// reproduce the legacy run bit for bit — the JSON-level version of the
// golden-digest gate, including the incast mix.
func TestWorkloadPlanLegacyEquivalence(t *testing.T) {
	legacy := planScenario()
	legacy.IncastFraction = 0.1
	legacy.IncastFlowSize = 8000
	want := recordsDigest(Run(legacy))

	planned := planScenario()
	planned.Workload = nil
	planned.WorkloadPlan = parsePlanOrDie(t, `{"name":"legacy-spelled-out","sources":[
		{"kind":"poisson","cdf":"websearch"},
		{"kind":"incast","fraction":0.1,"flow_size":8000}
	]}`)
	if got := recordsDigest(Run(planned)); got != want {
		t.Fatalf("plan-driven run diverged from the legacy path: %s vs %s", got, want)
	}
}

// A plan-driven telemetry run lands the plan identity in the manifest,
// per-tenant and coflow counters in the artifact, and — after ingest —
// the new workload columns in a lake row.
func TestWorkloadPlanArtifactAndLakeRow(t *testing.T) {
	sc := planScenario()
	sc.Workload = nil
	sc.WorkloadPlan = parsePlanOrDie(t, `{"name":"mix","sources":[
		{"kind":"poisson","tenant":"bg","cdf":"websearch","load":0.3},
		{"kind":"rpc","tenant":"rpc","fanout":3,"request_size":2000,"response_size":20000,"load":0.05}
	]}`)
	sc.Telemetry = &obs.Options{}
	res := Run(sc)
	run := res.Telemetry
	if run == nil {
		t.Fatal("telemetry enabled but Result.Telemetry is nil")
	}

	m := run.Manifest
	if m.Workload != "mix" || m.WorkloadPlan != "mix" {
		t.Fatalf("manifest workload identity wrong: %+v", m)
	}
	if m.WorkloadPlanHash != sc.WorkloadPlan.Hash() || m.WorkloadPlanHash == "" {
		t.Fatalf("manifest plan hash %q, want %q", m.WorkloadPlanHash, sc.WorkloadPlan.Hash())
	}

	counters := map[string]int64{}
	for _, c := range run.Counters {
		counters[c.Entity+"/"+c.Metric] = c.Value
	}
	if counters["workload/tenant/bg/flows"] == 0 || counters["workload/tenant/rpc/flows"] == 0 {
		t.Fatalf("per-tenant flow counters missing: %v", counters)
	}
	if counters["workload/tenant/bg/bytes"] == 0 {
		t.Fatal("per-tenant byte counter missing")
	}
	if counters["workload/coflow/coflows"] == 0 {
		t.Fatal("coflow counter missing")
	}
	if done := counters["workload/coflow/coflows_done"]; done == 0 || done > counters["workload/coflow/coflows"] {
		t.Fatalf("coflows_done = %d of %d", done, counters["workload/coflow/coflows"])
	}

	// Through the lake: the run's row carries the plan identity and the
	// tenant/coflow metrics.
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	if err := run.WriteJSONLFile(path); err != nil {
		t.Fatal(err)
	}
	ix := &lake.Index{}
	if err := ix.IngestFile(path); err != nil {
		t.Fatal(err)
	}
	if len(ix.Rows) != 1 {
		t.Fatalf("got %d lake rows", len(ix.Rows))
	}
	row := ix.Rows[0]
	if row.WlPlan != "mix" || row.WlPlanSig != sc.WorkloadPlan.Hash() {
		t.Fatalf("lake plan identity wrong: %+v", row)
	}
	if row.Tenants != 2 {
		t.Fatalf("lake counted %d tenants, want 2", row.Tenants)
	}
	if row.Coflows == 0 || row.CoflowsDone == 0 {
		t.Fatalf("lake coflow metrics missing: %+v", row)
	}
	if row.CCTP99Us <= 0 {
		t.Fatalf("lake cct_p99_us = %g, want > 0", row.CCTP99Us)
	}
}

// Trace-driven runs used to record an empty workload identity; they now
// get a content-addressed "trace:<digest>".
func TestTraceRunManifestIdentity(t *testing.T) {
	sc := planScenario()
	flows, err := workload.LegacyPlan(workload.WebSearch, 0, 0).Generate(workload.Env{
		Hosts:          6,
		UplinkCapacity: 320 * units.Gbps,
		Load:           0.4,
		Duration:       sc.Duration,
	}, WorkloadRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 {
		t.Fatal("trace generation produced no flows")
	}
	sc.TraceFlows = flows
	sc.Telemetry = &obs.Options{}
	res := Run(sc)
	wl := res.Telemetry.Manifest.Workload
	if wl != workload.TraceID(flows) {
		t.Fatalf("trace run workload identity %q, want %q", wl, workload.TraceID(flows))
	}
}

// The sharded runner must fold the same global workload accounting into
// its merged artifact as the single-engine path.
func TestShardedRecordsWorkloadObs(t *testing.T) {
	sc := planScenario()
	sc.Scheme = Scheme(transport.SchemeDCTCP) // digest-stable under sharding
	sc.Workload = nil
	sc.WorkloadPlan = parsePlanOrDie(t, `{"name":"mix","sources":[
		{"kind":"poisson","tenant":"bg","cdf":"websearch","load":0.3},
		{"kind":"rpc","tenant":"rpc","fanout":3,"request_size":2000,"response_size":20000,"load":0.05}
	]}`)
	sc.Telemetry = &obs.Options{}

	single := Run(sc)
	sc.Shards = 2
	sharded := Run(sc)
	if sharded.Telemetry == nil {
		t.Fatal("sharded run produced no telemetry")
	}
	if got := sharded.Telemetry.Manifest.WorkloadPlanHash; got != sc.WorkloadPlan.Hash() {
		t.Fatalf("sharded manifest plan hash %q", got)
	}
	pick := func(run *obs.Run, ent, metric string) int64 {
		for _, c := range run.Counters {
			if c.Entity == ent && c.Metric == metric {
				return c.Value
			}
		}
		return -1
	}
	for _, key := range [][2]string{
		{"workload/tenant/bg", "flows"},
		{"workload/tenant/bg", "bytes"},
		{"workload/tenant/rpc", "flows"},
		{"workload/coflow", "coflows"},
	} {
		s, p := pick(single.Telemetry, key[0], key[1]), pick(sharded.Telemetry, key[0], key[1])
		if p <= 0 {
			t.Fatalf("sharded artifact missing %s/%s", key[0], key[1])
		}
		// Offered load is identical across runner paths; completion-
		// dependent metrics may differ, these offered ones may not.
		if s != p {
			t.Fatalf("%s/%s: single %d vs sharded %d", key[0], key[1], s, p)
		}
	}
}
