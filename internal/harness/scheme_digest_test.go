package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// recordsDigest hashes every flow record of a run into one hex digest —
// the harness-level counterpart of the testbed FlowsDigest in the root
// package. Two runs match iff their flow-visible results are identical.
func recordsDigest(res *Result) string {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wb := func(b bool) {
		if b {
			w(1)
		} else {
			w(0)
		}
	}
	for _, r := range res.Flows.Records {
		w(int64(r.ID))
		w(r.Size)
		w(int64(r.Start))
		w(int64(r.FCT))
		wb(r.Completed)
		wb(r.Legacy)
		w(int64(len(r.Transport)))
		h.Write([]byte(r.Transport))
		w(int64(r.Timeouts))
		w(int64(r.Retransmits))
		w(int64(r.ProRetx))
		w(int64(r.Redundant))
		w(r.MaxReorderB)
		w(r.RxBytes)
	}
	w(res.DropsRed)
	w(res.DropsCredit)
	w(res.DropsOther)
	return fmt.Sprintf("%016x", h.Sum64())
}

// schemeDigestScenario is a small mixed-deployment run: 6 hosts across
// two racks at 50% deployment, so every scheme exercises both its
// upgraded path and the legacy DCTCP path side by side.
func schemeDigestScenario(scheme Scheme) Scenario {
	return Scenario{
		Seed:       7,
		Clos:       topo.ClosParams{Pods: 2, AggPerPod: 1, TorPerPod: 1, HostsPerTor: 4, Cores: 1},
		LinkRate:   10 * units.Gbps,
		LinkDelay:  2 * sim.Microsecond,
		HostDelay:  sim.Microsecond,
		SwitchBuf:  1000 * units.KB,
		BufAlpha:   0.25,
		Scheme:     scheme,
		WQ:         0.5,
		Workload:   workload.WebSearch,
		Load:       0.7,
		Deployment: 0.5,
		Duration:   20 * sim.Millisecond,
		Drain:      60 * sim.Millisecond,
	}
}

// schemeGoldenDigests are the per-scheme digests of schemeDigestScenario,
// recorded BEFORE the transport layer was restructured around the scheme
// registry and the shared sender core. The refactor is required to be
// bit-for-bit behaviour-preserving, so these values must never change
// unless the simulated model itself intentionally changes.
//
// Recorded on linux/amd64, go1.24. Re-record with:
//
//	go test -run TestSchemeGoldenDigest -v ./internal/harness/
var schemeGoldenDigests = map[Scheme]string{
	SchemeNaive:        "bef5c564f874fa7d",
	SchemeOWF:          "cfa2e564b32701ff",
	SchemeLayering:     "a340cfd4db360945",
	SchemeFlexPass:     "42bc614abcaee72a",
	SchemeFlexPassAltQ: "8e5b9d50f60697e9",
	SchemeFlexPassRC3:  "ad7796a15937eaab",
}

// TestSchemeGoldenDigest builds every deployment scheme through the full
// harness (fabric profile + per-flow transport composition) and asserts
// the run's flow digest matches the pre-refactor golden value, run-twice
// deterministic.
func TestSchemeGoldenDigest(t *testing.T) {
	for scheme, want := range schemeGoldenDigests {
		scheme, want := scheme, want
		t.Run(string(scheme), func(t *testing.T) {
			d1 := recordsDigest(Run(schemeDigestScenario(scheme)))
			d2 := recordsDigest(Run(schemeDigestScenario(scheme)))
			if d1 != d2 {
				t.Fatalf("non-deterministic: %s vs %s", d1, d2)
			}
			t.Logf("%s digest: %s", scheme, d1)
			if runtime.GOARCH != "amd64" {
				t.Skipf("golden constants recorded on amd64; got %s", runtime.GOARCH)
			}
			if d1 != want {
				t.Fatalf("digest %s != recorded %s — scheme composition changed behaviour", d1, want)
			}
		})
	}
}
