package harness

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"flexpass/internal/sim"
)

// waitKilled polls until the watchdog has tripped (abort called), then
// stops it and returns the kill.
func waitKilled(t *testing.T, wd *watchdog, aborted *atomic.Bool) *KilledError {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !aborted.Load() {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never tripped")
		}
		time.Sleep(time.Millisecond)
	}
	ke := wd.stop()
	if ke == nil {
		t.Fatal("watchdog tripped but stop() returned nil")
	}
	return ke
}

// TestWatchdogDeadline: a run exceeding the wall-clock deadline is
// killed with Reason "deadline" even while the horizon advances.
func TestWatchdogDeadline(t *testing.T) {
	var horizon atomic.Int64
	var aborted atomic.Bool
	wd := startWatchdog(30*time.Millisecond, 0,
		func() int64 { return horizon.Add(1) }, // always advancing
		func() uint64 { return 0 },
		func() { aborted.Store(true) })
	ke := waitKilled(t, wd, &aborted)
	if ke.Reason != "deadline" {
		t.Fatalf("kill reason %q, want deadline", ke.Reason)
	}
	if ke.Elapsed < 30*time.Millisecond {
		t.Errorf("killed after %v, before the %v deadline", ke.Elapsed, 30*time.Millisecond)
	}
}

// TestWatchdogStall: a frozen horizon trips the stall kill even while
// events churn (livelock, not just wedge).
func TestWatchdogStall(t *testing.T) {
	var events atomic.Uint64
	var aborted atomic.Bool
	wd := startWatchdog(0, 40*time.Millisecond,
		func() int64 { return 12345 }, // horizon frozen
		func() uint64 { return events.Add(1000) },
		func() { aborted.Store(true) })
	ke := waitKilled(t, wd, &aborted)
	if ke.Reason != "stall" {
		t.Fatalf("kill reason %q, want stall", ke.Reason)
	}
	if ke.HorizonPs != 12345 {
		t.Errorf("kill recorded horizon %d, want 12345", ke.HorizonPs)
	}
}

// TestWatchdogAdvancingHorizonSurvives: a horizon that keeps moving
// never trips the stall watchdog.
func TestWatchdogAdvancingHorizonSurvives(t *testing.T) {
	var horizon atomic.Int64
	var aborted atomic.Bool
	wd := startWatchdog(0, 50*time.Millisecond,
		func() int64 { return horizon.Add(1) },
		func() uint64 { return 0 },
		func() { aborted.Store(true) })
	time.Sleep(200 * time.Millisecond)
	if ke := wd.stop(); ke != nil {
		t.Fatalf("advancing run was killed: %v", ke)
	}
	if aborted.Load() {
		t.Fatal("abort fired without a kill")
	}
}

// TestWatchdogDisabled: both limits zero means no watchdog at all.
func TestWatchdogDisabled(t *testing.T) {
	if wd := startWatchdog(0, 0, nil, nil, nil); wd != nil {
		t.Fatal("watchdog started with no limits")
	}
	var wd *watchdog
	if ke := wd.stop(); ke != nil { // nil-safe stop
		t.Fatalf("nil watchdog returned a kill: %v", ke)
	}
}

// runExpectKilled runs the scenario expecting the watchdog to panic
// with a *KilledError, and returns it.
func runExpectKilled(t *testing.T, sc Scenario) (ke *KilledError) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("run finished; expected a watchdog kill")
		}
		var ok bool
		if ke, ok = r.(*KilledError); !ok {
			panic(r)
		}
	}()
	Run(sc)
	return nil
}

// TestScenarioDeadlineKillsRun: end to end on the single-engine path —
// a scenario with a tiny wall-clock deadline dies with a typed
// *KilledError carrying the sim-clock position it died at.
func TestScenarioDeadlineKillsRun(t *testing.T) {
	sc := BaseScenario(false)
	sc.Duration = 20 * sim.Millisecond
	sc.Drain = 50 * sim.Millisecond
	sc.Deadline = time.Millisecond
	ke := runExpectKilled(t, sc)
	if ke.Reason != "deadline" {
		t.Fatalf("kill reason %q, want deadline", ke.Reason)
	}
	if ke.HorizonPs <= 0 || ke.Events == 0 {
		t.Errorf("kill carries no progress snapshot: %+v", ke)
	}
	var asErr *KilledError
	if !errors.As(error(ke), &asErr) {
		t.Error("KilledError does not satisfy errors.As")
	}
}

// TestScenarioDeadlineKillsShardedRun: the same contract on the
// parallel-engine path — all shard engines abort and Run panics with
// the fleet-minimum horizon in the kill.
func TestScenarioDeadlineKillsShardedRun(t *testing.T) {
	sc := BaseScenario(false)
	sc.Duration = 20 * sim.Millisecond
	sc.Drain = 50 * sim.Millisecond
	sc.Shards = 2
	sc.Deadline = time.Millisecond
	ke := runExpectKilled(t, sc)
	if ke.Reason != "deadline" {
		t.Fatalf("kill reason %q, want deadline", ke.Reason)
	}
}

// TestScenarioNoWatchdogByDefault: zero limits add no watchdog and
// change nothing about a normal run.
func TestScenarioNoWatchdogByDefault(t *testing.T) {
	sc := schemeDigestScenario(SchemeFlexPass)
	res := Run(sc)
	if len(res.Flows.Records) == 0 {
		t.Fatal("scenario ran no flows")
	}
}
