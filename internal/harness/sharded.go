package harness

import (
	"fmt"
	"sync/atomic"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/live"
	"flexpass/internal/metrics"
	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/prof"
	"flexpass/internal/sim"
	"flexpass/internal/sim/shard"
	"flexpass/internal/topo"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
)

// runSharded executes the scenario on the parallel engine: the Clos is
// partitioned by pod blocks (podShard, from topo.ClosPodShards), each
// partition runs its own engine on its own goroutine, and the shards
// synchronize conservatively on the agg↔core propagation delay (see
// internal/sim/shard). Everything a shard touches during the run —
// engine, RNG stream, scheme instances, stats registry, trace ring,
// profiler, packet pool — is per-shard state merged after the fabric
// drains, so the hot path takes no locks.
//
// Results are deterministic for a fixed (scenario, shard count) but not
// bit-identical across shard counts: each shard draws from its own PCG
// stream, so anything randomized (pacer jitter, fault loss) diverges
// from the single-engine run. Schemes that never draw randomness on a
// clean run (dctcp, homa, phost) produce identical flow results at any
// shard count; see TestShardedMatchesSingleEngine.
func runSharded(sc Scenario, podShard []int) *Result {
	if sc.Forensics != nil {
		panic("harness: forensics requires the single-engine path (Shards must be 0 or 1)")
	}
	nShards := topo.Shards(podShard)

	tel := sc.Telemetry
	if sc.Live != nil && tel == nil {
		tel = &obs.Options{}
	}

	// Per-shard planes. Engine i's RNG is an independent PCG stream
	// derived from (seed, i), so shard RNG use never depends on what
	// other shards consumed.
	engs := make([]*sim.Engine, nShards)
	profilers := make([]*prof.Profiler, nShards)
	regs := make([]*obs.Registry, nShards)
	rings := make([]*trace.Ring, nShards)
	for i := range engs {
		engs[i] = sim.NewShardEngine(sc.Seed, i)
		if sc.Profile {
			profilers[i] = prof.New()
			profilers[i].Attach(engs[i])
		}
		if tel != nil {
			regs[i] = obs.NewRegistry()
			if tel.TraceCap > 0 {
				rings[i] = trace.NewRing(engs[i], tel.TraceCap)
			}
		}
	}

	plan := planWorkload(sc)

	// One scheme env — and therefore one set of scheme instances and
	// counter sets — per shard. Every env sees the same oracle weight and
	// options; only the engine/registry/ring differ.
	spec := sc.Spec
	spec.WQ = sc.WQ
	legacySch := make([]transport.SplitScheme, nShards)
	activeSch := make([]transport.SplitScheme, nShards)
	for s := range engs {
		env := &transport.SchemeEnv{
			Eng:      engs[s],
			LinkRate: sc.LinkRate,
			WQ:       sc.WQ,
			OracleWQ: plan.oracleWQ,
			Spec:     spec,
			Registry: regs[s],
			Trace:    rings[s],
			Options:  sc.schemeOptions(),
		}
		legacySch[s] = asSplit(transport.SchemeDCTCP, mustScheme(transport.SchemeDCTCP, env))
		activeSch[s] = asSplit(string(sc.Scheme), mustScheme(string(sc.Scheme), env))
	}

	fab := topo.ClosSharded(engs, podShard, sc.Clos, topo.Params{
		LinkRate:  sc.LinkRate,
		LinkDelay: sc.LinkDelay,
		HostDelay: sc.HostDelay,
		SwitchBuf: sc.SwitchBuf,
		BufAlpha:  sc.BufAlpha,
		Profile:   activeSch[0].Profile(),
	})
	if sc.PoolPackets {
		// Free lists are single-goroutine state: one pool per shard,
		// nodes assigned by partition. Packets migrate between pools at
		// shard cuts (put always runs on the receiving shard).
		pools := make([]*netem.PacketPool, nShards)
		for i := range pools {
			pools[i] = &netem.PacketPool{}
		}
		for i, sw := range fab.Net.Switches {
			sw.SetPool(pools[fab.SwitchShard[i]])
		}
		for i, h := range fab.Net.Hosts {
			h.SetPool(pools[fab.HostShard[i]])
		}
	}

	// The conservative lookahead is the minimum propagation delay across
	// the cut: a packet serialized on one shard cannot arrive on another
	// sooner than that, so each shard may run that far past its
	// neighbors' horizons.
	lookahead := sim.Time(0)
	for _, cl := range fab.Cross {
		if lookahead == 0 || cl.Port.Prop() < lookahead {
			lookahead = cl.Port.Prop()
		}
	}
	rt := shard.New(engs, lookahead)
	for _, cl := range fab.Cross {
		edge := rt.Connect(cl.From, cl.To)
		dst := cl.Port.Peer()
		cl.Port.SetRemote(func(at sim.Time, pkt *netem.Packet) {
			edge.Deliver(at, pkt, dst)
		})
	}

	// Agents and per-node telemetry live with their shard.
	agents := make([]*transport.Agent, plan.hosts)
	strays := make([]*obs.Counter, nShards)
	for s := range strays {
		if regs[s] != nil {
			strays[s] = regs[s].Counter("transport/agent", "stray_packets")
		}
	}
	for i := range agents {
		s := fab.HostShard[i]
		agents[i] = transport.NewAgent(engs[s], fab.Net.Host(i))
		agents[i].ObserveStrays(strays[s])
	}
	if tel != nil {
		for i, sw := range fab.Net.Switches {
			sw.Register(regs[fab.SwitchShard[i]])
		}
		for i, h := range fab.Net.Hosts {
			h.Register(regs[fab.HostShard[i]])
		}
	}

	res := &Result{Scenario: sc, OracleWQ: plan.oracleWQ}

	// Fault plans schedule on each matched port's own engine (see
	// faults.Apply); the action-count bridge registers on shard 0.
	if sc.FaultPlan != nil {
		applied, err := faults.Apply(sc.FaultPlan, engs[0], fab.Net)
		if err != nil {
			panic(fmt.Sprintf("harness: %v", err))
		}
		applied.Register(regs[0])
		res.Faults = applied
	}

	// Flows are prebuilt in spec order — the same order the
	// single-engine path appends them in (arrival events dispatch in
	// (time, seq) order, and workload.Merge sorts specs by time) — so
	// Result.Flows rows line up across paths. A flow whose endpoints
	// share a shard starts exactly like the single-engine path; a
	// cross-shard flow starts its two halves at the same instant on the
	// two engines that own them.
	var flowsStarted, flowsDone atomic.Int64
	onDone := func(*transport.Flow) { flowsDone.Add(1) }
	all := make([]*transport.Flow, 0, len(plan.flows))
	incastOf := make(map[uint64]bool)
	compLegacy := make([]sim.Component, nShards)
	compActive := make([]sim.Component, nShards)
	prevComp := make([]sim.Component, nShards)
	for s := range engs {
		compLegacy[s] = engs[s].Component("transport/" + transport.SchemeDCTCP)
		compActive[s] = compLegacy[s]
		if string(sc.Scheme) != transport.SchemeDCTCP {
			compActive[s] = engs[s].Component("transport/" + string(sc.Scheme))
		}
		prevComp[s] = engs[s].SetComponent(engs[s].Component("harness/arrival"))
	}
	for i, fs := range plan.flows {
		fl := &transport.Flow{
			ID:    uint64(i + 1),
			Src:   agents[fs.Src],
			Dst:   agents[fs.Dst],
			Size:  fs.Size,
			Start: fs.At,
		}
		if sc.Live != nil {
			fl.OnComplete = onDone
		}
		all = append(all, fl)
		if fs.Incast {
			incastOf[fl.ID] = true
		}
		schemes, comp := activeSch, compActive
		if !plan.upgraded(fs) {
			schemes, comp = legacySch, compLegacy
		}
		srcS, dstS := fab.HostShard[fs.Src], fab.HostShard[fs.Dst]
		if srcS == dstS {
			sch := schemes[srcS]
			engs[srcS].At(fs.At, func() {
				prev := engs[srcS].SetComponent(comp[srcS])
				sch.Start(fl)
				engs[srcS].SetComponent(prev)
				flowsStarted.Add(1)
			})
			continue
		}
		snd, rcv := schemes[srcS], schemes[dstS]
		engs[srcS].At(fs.At, func() {
			prev := engs[srcS].SetComponent(comp[srcS])
			snd.StartSender(fl)
			engs[srcS].SetComponent(prev)
			flowsStarted.Add(1)
		})
		engs[dstS].At(fs.At, func() {
			prev := engs[dstS].SetComponent(comp[dstS])
			rcv.StartReceiver(fl)
			engs[dstS].SetComponent(prev)
		})
	}
	for s := range engs {
		engs[s].SetComponent(prevComp[s])
	}

	probers := make([]*obs.Prober, nShards)
	for s := range engs {
		probers[s] = obs.NewProber(engs[s], regs[s], tel)
		probers[s].Start()
	}

	// Q1 occupancy without telemetry: one ad-hoc sampler per shard, each
	// tracking the ToR uplinks its engine owns.
	var qss []*metrics.QueueSampler
	if sc.SampleQueues && probers[0] == nil {
		shardOfEng := make(map[*sim.Engine]int, nShards)
		for s, e := range engs {
			shardOfEng[e] = s
		}
		qss = make([]*metrics.QueueSampler, nShards)
		for s := range engs {
			qss[s] = metrics.NewQueueSampler(engs[s], 100*sim.Microsecond)
		}
		idx := fab.FlexQueueIndex
		for _, up := range fab.TorUplinks {
			up := up
			qss[shardOfEng[up.Engine()]].Track(func() (int64, int64) { return up.QueueBytes(idx) })
		}
		for _, qs := range qss {
			qs.Start()
		}
	}

	// Live introspection publishes from a wall-clock goroutine — there
	// is no single engine clock to hook — reporting the fleet-minimum
	// sim time (the conservative horizon every shard has reached) and
	// the summed event count. Registry readings ride only on the final
	// publish: the per-shard registries are plain ints owned by their
	// goroutines while the run executes.
	wallStart := time.Now()
	var stopLive chan struct{}
	var publishLive func(done bool, readings []obs.Reading)
	if sc.Live != nil {
		board := sc.Live
		end := sc.Duration + sc.Drain
		total := len(plan.flows)
		publishLive = func(done bool, readings []obs.Reading) {
			st := live.RunStatus{
				SimNowPs:     rt.HorizonPs(),
				SimEndPs:     int64(end),
				Events:       rt.EventsProcessed(),
				FlowsTotal:   total,
				FlowsStarted: int(flowsStarted.Load()),
				FlowsDone:    int(flowsDone.Load()),
				WallMS:       float64(time.Since(wallStart)) / float64(time.Millisecond),
				Done:         done,
			}
			if secs := time.Since(wallStart).Seconds(); secs > 0 {
				st.EventsPerSec = float64(st.Events) / secs
			}
			board.Publish(st, readings)
		}
		stopLive = make(chan struct{})
		go func() {
			tick := time.NewTicker(50 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopLive:
					return
				case <-tick.C:
					publishLive(false, nil)
				}
			}
		}()
	}

	// Watchdog supervision: one Watch per shard engine so a kill aborts
	// the whole fleet; progress is judged on the runtime's fleet-minimum
	// horizon. An aborted engine still advances its clock through each
	// round window, so the shard protocol drains normally after a kill.
	var wd *watchdog
	if sc.Deadline > 0 || sc.StallTimeout > 0 {
		watches := make([]*sim.Watch, nShards)
		for i := range engs {
			watches[i] = &sim.Watch{}
			engs[i].SetWatch(watches[i])
		}
		wd = startWatchdog(sc.Deadline, sc.StallTimeout, rt.HorizonPs, rt.EventsProcessed, func() {
			for _, w := range watches {
				w.Abort()
			}
		})
	}
	rt.Run(sc.Duration + sc.Drain)
	res.WallClock = time.Since(wallStart)
	if stopLive != nil {
		close(stopLive)
	}
	if ke := wd.stop(); ke != nil {
		panic(ke)
	}
	if publishLive != nil {
		publishLive(true, mergeReadings(regs))
	}

	for _, fl := range all {
		res.Flows.Add(metrics.Snapshot(fl, incastOf[fl.ID]))
	}
	if qss != nil {
		var totals, reds []int64
		for _, qs := range qss {
			totals = append(totals, qs.Totals...)
			reds = append(reds, qs.Reds...)
		}
		res.QueueAvg, res.QueueP90 = metrics.Stats(totals, 0.9)
		res.QueueRedAvg, res.QueueRedP90 = metrics.Stats(reds, 0.9)
	} else if sc.SampleQueues {
		var totals, reds []int64
		idx := fab.FlexQueueIndex
		for _, up := range fab.TorUplinks {
			ent := fmt.Sprintf("port/%s/q%d", up.Name(), idx)
			for _, p := range probers {
				if s := p.Find(ent, "bytes"); s != nil {
					totals = append(totals, s.Values()...)
				}
				if s := p.Find(ent, "red_bytes"); s != nil {
					reds = append(reds, s.Values()...)
				}
			}
		}
		res.QueueAvg, res.QueueP90 = metrics.Stats(totals, 0.9)
		res.QueueRedAvg, res.QueueRedP90 = metrics.Stats(reds, 0.9)
	}
	countFabricDrops(fab, res)
	res.Events = rt.EventsProcessed()
	if rings[0] != nil {
		res.Trace = trace.Merge(rings...)
	}
	if sc.Profile {
		exports := make([][]obs.ComponentProfile, nShards)
		for s, p := range profilers {
			exports[s] = p.Export()
		}
		res.Profile = prof.MergeExports(exports...)
	}

	if regs[0] != nil {
		// Workload accounting is global, not per-shard: fold it into
		// shard 0's registry before the merge.
		recordWorkloadObs(regs[0], plan.flows, all)
		perShard := make([]*obs.Run, nShards)
		for s := range regs {
			perShard[s] = obs.Collect(regs[s], probers[s], obs.Manifest{})
		}
		m := buildManifest(sc, plan.hosts, probers[0].Interval(), res, nShards)
		res.Telemetry = obs.MergeRuns(m, perShard...)
		res.Telemetry.AttachTrace(res.Trace)
		res.Telemetry.Faults = res.Faults.Export()
	}
	return res
}

// asSplit asserts that a built scheme supports split starts — every
// built-in does; a registered third-party scheme that doesn't cannot run
// sharded.
func asSplit(name string, s transport.Scheme) transport.SplitScheme {
	sp, ok := s.(transport.SplitScheme)
	if !ok {
		panic(fmt.Sprintf("harness: scheme %q does not implement transport.SplitScheme; run with Shards <= 1", name))
	}
	return sp
}

// mergeReadings folds per-shard registry finals into one reading set,
// summing values that share (entity, metric, kind). Finals are sorted,
// so the merged order is deterministic. Only called after the shard
// goroutines have stopped.
func mergeReadings(regs []*obs.Registry) []obs.Reading {
	type key struct {
		entity, metric string
		kind           obs.SampleKind
	}
	idx := map[key]int{}
	var out []obs.Reading
	for _, reg := range regs {
		for _, r := range reg.Final() {
			k := key{r.Entity, r.Metric, r.Kind}
			if j, ok := idx[k]; ok {
				out[j].Value += r.Value
				continue
			}
			idx[k] = len(out)
			out = append(out, r)
		}
	}
	return out
}
