package harness

import (
	"testing"

	"flexpass/internal/metrics"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// miniBase is a fast small-scale scenario for shape assertions.
func miniBase() Scenario {
	sc := BaseScenario(false)
	sc.Duration = 10 * sim.Millisecond
	sc.Drain = 50 * sim.Millisecond
	return sc
}

func meanRate(rs []units.Rate, skip int) units.Rate {
	if len(rs) <= skip {
		return 0
	}
	var sum int64
	for _, r := range rs[skip:] {
		sum += int64(r)
	}
	return units.Rate(sum / int64(len(rs)-skip))
}

func TestRunProducesCompleteFlows(t *testing.T) {
	sc := miniBase()
	sc.Duration = 5 * sim.Millisecond
	res := Run(sc)
	if len(res.Flows.Records) == 0 {
		t.Fatal("no flows generated")
	}
	if res.Flows.Incomplete() > 0 {
		t.Fatalf("%d flows incomplete after drain", res.Flows.Incomplete())
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := miniBase()
	sc.Duration = 3 * sim.Millisecond
	a := Run(sc)
	b := Run(sc)
	if len(a.Flows.Records) != len(b.Flows.Records) {
		t.Fatal("flow counts differ between identical runs")
	}
	for i := range a.Flows.Records {
		if a.Flows.Records[i].FCT != b.Flows.Records[i].FCT {
			t.Fatalf("flow %d FCT differs: %v vs %v", i,
				a.Flows.Records[i].FCT, b.Flows.Records[i].FCT)
		}
	}
}

func TestFlexPassDeploymentShape(t *testing.T) {
	// The paper's central claims at small scale: during deployment
	// FlexPass barely harms legacy traffic and upgraded traffic gets a
	// much better tail; naïve ExpressPass wrecks the legacy tail.
	base := miniBase()
	pts := Sweep(base, []Scheme{SchemeNaive, SchemeFlexPass}, []float64{0, 0.5, 1.0})
	byKey := map[string]DeploymentPoint{}
	for _, p := range pts {
		byKey[string(p.Scheme)+"/"+fstr(p.Deployment)] = p
	}
	base0 := byKey["naive/0.00"].P99Small // all-legacy baseline

	fp50 := byKey["flexpass/0.50"]
	if fp50.P99SmallLegacy > base0*3/2 {
		t.Errorf("FlexPass at 50%%: legacy p99 %v vs baseline %v — too much harm",
			fp50.P99SmallLegacy, base0)
	}
	if fp50.P99SmallNew >= fp50.P99SmallLegacy {
		t.Errorf("FlexPass at 50%%: upgraded p99 %v not better than legacy %v",
			fp50.P99SmallNew, fp50.P99SmallLegacy)
	}

	nv50 := byKey["naive/0.50"]
	if nv50.P99SmallLegacy < base0*3/2 {
		t.Errorf("naïve at 50%%: legacy p99 %v vs baseline %v — expected strong degradation",
			nv50.P99SmallLegacy, base0)
	}

	fp100 := byKey["flexpass/1.00"]
	if fp100.P99Small >= base0 {
		t.Errorf("FlexPass fully deployed p99 %v not better than DCTCP baseline %v",
			fp100.P99Small, base0)
	}
	fp0 := byKey["flexpass/0.00"]
	if fp100.AvgAll > fp0.AvgAll*5/4 {
		t.Errorf("FlexPass fully deployed avg FCT %v vs baseline %v — utilization lost",
			fp100.AvgAll, fp0.AvgAll)
	}
}

func fstr(f float64) string {
	switch f {
	case 0:
		return "0.00"
	case 0.5:
		return "0.50"
	case 1:
		return "1.00"
	}
	return "?"
}

func TestFig1aStarvationShape(t *testing.T) {
	s := Fig1a(1, 60*sim.Millisecond)
	xp := meanRate(s.Series["ExpressPass"], 5)
	dc := meanRate(s.Series["DCTCP"], 5)
	tot := xp + dc
	if tot < 7*units.Gbps {
		t.Fatalf("bottleneck underutilized: %v", tot)
	}
	if float64(dc)/float64(tot) > 0.25 {
		t.Fatalf("DCTCP share %.2f; expected starvation", float64(dc)/float64(tot))
	}
}

func TestFig1bHomaStarvationShape(t *testing.T) {
	s := Fig1b(1, 40*sim.Millisecond)
	ho := meanRate(s.Series["HOMA"], 5)
	dc := meanRate(s.Series["DCTCP"], 5)
	if ho+dc == 0 {
		t.Fatal("no progress")
	}
	if float64(dc)/float64(ho+dc) > 0.3 {
		t.Fatalf("DCTCP share %.2f under 16 HOMA flows; expected starvation",
			float64(dc)/float64(ho+dc))
	}
}

func TestFig7SubflowShares(t *testing.T) {
	// (a) alone: proactive ≈ w_q, reactive grabs the rest; link ~full.
	a := Fig7("a", 1, 40*sim.Millisecond)
	pro := meanRate(a.Series["Proactive"], 5)
	re := meanRate(a.Series["Reactive"], 5)
	if pro+re < 8*units.Gbps {
		t.Fatalf("Fig7a total %v, want ~9.5Gbps", pro+re)
	}
	proShare := float64(pro) / float64(pro+re)
	if proShare < 0.35 || proShare > 0.65 {
		t.Fatalf("Fig7a proactive share %.2f, want ~0.5", proShare)
	}
	// (c) vs DCTCP: both take ~half; reactive nearly silent.
	c := Fig7("c", 1, 60*sim.Millisecond)
	dc := meanRate(c.Series["DCTCP"], 5)
	proC := meanRate(c.Series["Proactive"], 5)
	reC := meanRate(c.Series["Reactive"], 5)
	dcShare := float64(dc) / float64(dc+proC+reC)
	if dcShare < 0.35 || dcShare > 0.65 {
		t.Fatalf("Fig7c DCTCP share %.2f, want ~0.5", dcShare)
	}
	if float64(reC)/float64(proC+reC) > 0.35 {
		t.Fatalf("Fig7c reactive share among sub-flows %.2f; should be small under competition",
			float64(reC)/float64(proC+reC))
	}
}

func TestFig9StarvationMetric(t *testing.T) {
	r := Fig9(1, 80*sim.Millisecond)
	if r.StarvedExpressPassSide < 0.5 {
		t.Fatalf("DCTCP starved %.0f%% of windows under naïve ExpressPass, want most",
			r.StarvedExpressPassSide*100)
	}
	if r.StarvedFlexPassSide > 0.1 {
		t.Fatalf("DCTCP starved %.0f%% of windows under FlexPass, want ~0",
			r.StarvedFlexPassSide*100)
	}
}

func TestFig8IncastShape(t *testing.T) {
	rows := Fig8([]int{64}, []int64{1})
	byTP := map[string]Fig8Row{}
	for _, r := range rows {
		byTP[r.Transport] = r
	}
	if byTP["dctcp"].Timeouts == 0 {
		t.Error("DCTCP should hit RTOs in a 64-way incast")
	}
	if byTP["flexpass"].Timeouts != 0 {
		t.Errorf("FlexPass hit %d timeouts, want 0", byTP["flexpass"].Timeouts)
	}
	if byTP["expresspass"].Timeouts != 0 {
		t.Errorf("ExpressPass hit %d timeouts, want 0", byTP["expresspass"].Timeouts)
	}
	if byTP["flexpass"].MaxFCT >= byTP["dctcp"].MaxFCT {
		t.Errorf("FlexPass tail %v not better than DCTCP %v",
			byTP["flexpass"].MaxFCT, byTP["dctcp"].MaxFCT)
	}
}

func TestFig17ThresholdTradeoff(t *testing.T) {
	base := miniBase()
	base.Duration = 5 * sim.Millisecond
	pts := Fig17(base, []units.ByteSize{50 * units.KB, 150 * units.KB})
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.Incomplete > 0 {
			t.Fatalf("threshold %v left %d flows incomplete", p.WQ, p.Incomplete)
		}
	}
}

func TestFig18WQSweepRuns(t *testing.T) {
	base := miniBase()
	base.Duration = 4 * sim.Millisecond
	rows := Fig18(base, []float64{0.4, 0.6})
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.P99SmallFull == 0 {
			t.Fatalf("wq=%.2f: missing full-deployment point", r.WQ)
		}
	}
}

func TestOracleWQTracksDeployment(t *testing.T) {
	sc := miniBase()
	sc.Duration = 4 * sim.Millisecond
	sc.Scheme = SchemeOWF
	sc.Deployment = 1.0
	res := Run(sc)
	if res.OracleWQ < 0.9 {
		t.Fatalf("oracle weight %.2f at full deployment, want ~1", res.OracleWQ)
	}
	sc.Deployment = 0
	res = Run(sc)
	if res.OracleWQ > 0.1 {
		t.Fatalf("oracle weight %.2f at zero deployment, want ~0", res.OracleWQ)
	}
}

func TestMixedTrafficIncastRuns(t *testing.T) {
	sc := miniBase()
	sc.Duration = 5 * sim.Millisecond
	sc.IncastFraction = 0.1
	res := Run(sc)
	inc := metrics.Filter{Incast: metrics.Bool(true), OnlyDone: true}
	if res.Flows.Count(inc) == 0 {
		t.Fatal("no foreground incast flows completed")
	}
	if res.Flows.Incomplete() > 0 {
		t.Fatalf("%d incomplete flows", res.Flows.Incomplete())
	}
}

func TestQueueOccupancySampled(t *testing.T) {
	sc := miniBase()
	sc.Duration = 5 * sim.Millisecond
	sc.SampleQueues = true
	sc.Deployment = 1.0
	res := Run(sc)
	if res.QueueP90 == 0 && res.QueueAvg == 0 {
		t.Fatal("queue sampling produced nothing")
	}
	// Bounded queue: Q1 occupancy must stay at the selective-dropping
	// scale, far below the 1.125MB dynamic buffer bound.
	if res.QueueP90 > 300_000 {
		t.Fatalf("Q1 p90 occupancy %dB; not bounded", res.QueueP90)
	}
}
