package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"flexpass/internal/faults"
	"flexpass/internal/metrics"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/transport"
	"flexpass/internal/units"
	"flexpass/internal/workload"
)

// flapPlan is the canonical flap-and-recover micro-plan for the
// schemeDigestScenario fabric: a 1ms blackhole on one ToR downlink,
// then 2ms of Gilbert–Elliott burst loss on the pod-0 ToR uplink.
func flapPlan(t *testing.T) *faults.Plan {
	t.Helper()
	p, err := faults.ParseSpec(
		"down@tor0.0->h0.0.0@2ms-3ms,burst@tor0.0<->agg0.0:fwd@4ms-6ms@1.0@8@200")
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "flap-and-recover"
	return p
}

// faultScenario is schemeDigestScenario with a pinned trace instead of
// the random workload, so traffic is guaranteed to cross both faulted
// links inside their windows regardless of scheme: hosts 0–3 hang off
// tor0.0 (so flows to host 0 ride "tor0.0->h0.0.0" through the 2–3ms
// blackhole) and hosts 4–7 off tor1.0 (so pod-0-sourced inter-pod flows
// ride "tor0.0<->agg0.0:fwd" through the 4–6ms burst window). The drain
// is long enough for RTO-backoff chains (MinRTO 4ms, doubling) to
// finish.
func faultScenario(scheme Scheme) Scenario {
	sc := schemeDigestScenario(scheme)
	sc.Duration = 8 * sim.Millisecond
	sc.Drain = 300 * sim.Millisecond
	sc.TraceFlows = []workload.FlowSpec{
		{Src: 4, Dst: 0, Size: 3_000_000, At: 500 * sim.Microsecond}, // spans the blackhole
		{Src: 7, Dst: 3, Size: 500_000, At: 500 * sim.Microsecond},
		{Src: 6, Dst: 2, Size: 1_000_000, At: sim.Millisecond},        // reverse uplink, untouched
		{Src: 5, Dst: 0, Size: 500_000, At: 2200 * sim.Microsecond},   // starts inside the blackhole
		{Src: 0, Dst: 4, Size: 800_000, At: 2500 * sim.Microsecond},   // returning acks/credits blackholed
		{Src: 1, Dst: 2, Size: 300_000, At: 2500 * sim.Microsecond},   // intra-rack control
		{Src: 1, Dst: 5, Size: 3_000_000, At: 3500 * sim.Microsecond}, // spans the burst window
		{Src: 2, Dst: 6, Size: 400_000, At: 4500 * sim.Microsecond},   // starts inside the burst
		{Src: 5, Dst: 1, Size: 600_000, At: 5 * sim.Millisecond},
		{Src: 3, Dst: 7, Size: 500_000, At: 7 * sim.Millisecond}, // recovery phase
	}
	return sc
}

// TestFlapAndRecoverAllSchemes runs the flap-and-recover plan under
// every registered scheme and asserts graceful degradation: faults were
// actually injected, every flow still completes inside the generous
// drain, and the stray-packet / RTO counters stay bounded.
func TestFlapAndRecoverAllSchemes(t *testing.T) {
	for _, name := range transport.SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc := faultScenario(Scheme(name))
			sc.FaultPlan = flapPlan(t)
			sc.Telemetry = &obs.Options{}
			res := Run(sc)

			if res.FaultDrops.Injected == 0 {
				t.Fatal("plan injected no drops; fault window missed all traffic")
			}
			if res.FaultDrops.LinkDown == 0 {
				t.Error("no link-down drops despite a 1ms blackhole")
			}
			if n := res.Flows.Count(metrics.Filter{}); n == 0 {
				t.Fatal("scenario generated no flows")
			}
			for _, r := range res.Flows.Records {
				if !r.Completed {
					t.Errorf("flow %d (%s, %dB, start %v) never completed", r.ID, r.Transport, r.Size, r.Start)
				}
				if r.Timeouts > 10 {
					t.Errorf("flow %d took %d RTOs; backoff not converging", r.ID, r.Timeouts)
				}
			}
			// Strays (deliveries for flows the agent no longer tracks) can
			// happen when a blackholed-then-retransmitted segment races the
			// original, but must stay marginal.
			for _, c := range res.Telemetry.Counters {
				if c.Entity == "transport/agent" && c.Metric == "stray_packets" && c.Value > 200 {
					t.Errorf("stray_packets = %d; fault recovery is leaking packets", c.Value)
				}
			}
			// The per-cause port counters ride in the artifact and must
			// agree with the run totals.
			var linkDown int64
			for _, c := range res.Telemetry.Counters {
				if c.Metric == "faults_link_down" {
					linkDown += c.Value
				}
			}
			if linkDown != res.FaultDrops.LinkDown {
				t.Errorf("registry faults_link_down sums to %d, run counted %d", linkDown, res.FaultDrops.LinkDown)
			}
		})
	}
}

// TestFlapAndRecoverShardedSchemes re-runs the flap-and-recover table
// on the two-shard parallel engine: faults still inject, every flow
// still completes, and the fired fault-action log is identical to the
// single-engine run — fault application is partitioned across shard
// engines but the plan's schedule is position-independent. (The name
// carries "Sharded" so the race-detector shard suite picks it up.)
func TestFlapAndRecoverShardedSchemes(t *testing.T) {
	for _, name := range transport.SchemeNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			run := func(shards int) *Result {
				sc := faultScenario(Scheme(name))
				sc.FaultPlan = flapPlan(t)
				sc.Shards = shards
				return Run(sc)
			}
			single, sharded := run(1), run(2)

			if sharded.FaultDrops.Injected == 0 {
				t.Fatal("sharded run injected no drops; fault window missed all traffic")
			}
			for _, r := range sharded.Flows.Records {
				if !r.Completed {
					t.Errorf("flow %d (%s, %dB, start %v) never completed under shards=2",
						r.ID, r.Transport, r.Size, r.Start)
				}
			}
			if len(single.Flows.Records) != len(sharded.Flows.Records) {
				t.Errorf("flow counts diverged: %d single vs %d sharded",
					len(single.Flows.Records), len(sharded.Flows.Records))
			}
			a1, a2 := single.Faults.Export(), sharded.Faults.Export()
			if len(a1) != len(a2) {
				t.Fatalf("fault logs diverged: %d actions single vs %d sharded", len(a1), len(a2))
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("fault action %d diverged: single %+v vs sharded %+v", i, a1[i], a2[i])
				}
			}
		})
	}
}

// TestFaultedDigestDeterminism: same seed + same plan ⇒ bit-identical
// flow digests, with at least one LinkDown/LinkUp flap and one
// BurstLoss interval in effect (the determinism contract of the fault
// subsystem).
func TestFaultedDigestDeterminism(t *testing.T) {
	run := func() (*Result, string) {
		sc := faultScenario(SchemeFlexPass)
		sc.FaultPlan = flapPlan(t)
		res := Run(sc)
		return res, recordsDigest(res)
	}
	res1, d1 := run()
	res2, d2 := run()
	if d1 != d2 {
		t.Fatalf("faulted run not deterministic: %s vs %s", d1, d2)
	}
	if res1.FaultDrops.LinkDown == 0 || res1.FaultDrops.BurstLoss == 0 {
		t.Fatalf("plan must exercise both mechanisms: %+v", res1.FaultDrops)
	}
	if res1.FaultDrops != res2.FaultDrops {
		t.Fatalf("fault accounting diverged: %+v vs %+v", res1.FaultDrops, res2.FaultDrops)
	}
	// The action logs replay identically too.
	acts1, acts2 := res1.Faults.Snapshot(), res2.Faults.Snapshot()
	if len(acts1) != len(acts2) {
		t.Fatalf("action logs diverged: %d vs %d", len(acts1), len(acts2))
	}
	for i := range acts1 {
		if acts1[i] != acts2[i] {
			t.Fatalf("action %d diverged: %+v vs %+v", i, acts1[i], acts2[i])
		}
	}
	// And the clean run differs — the faults are actually in the digest.
	clean := faultScenario(SchemeFlexPass)
	if dc := recordsDigest(Run(clean)); dc == d1 {
		t.Fatal("faulted digest equals clean digest; plan had no effect")
	}
}

// TestFaultArtifactLines: applied fault actions ride the JSONL artifact
// as "fault" lines and survive a write/read round trip alongside the
// forensics plane (which records the fault drops hop-by-hop).
func TestFaultArtifactLines(t *testing.T) {
	sc := faultScenario(SchemeFlexPass)
	sc.FaultPlan = flapPlan(t)
	sc.Telemetry = &obs.Options{}
	res := Run(sc)

	if len(res.Telemetry.Faults) != res.Faults.Len() {
		t.Fatalf("artifact carries %d fault lines, run fired %d actions",
			len(res.Telemetry.Faults), res.Faults.Len())
	}
	var buf bytes.Buffer
	if err := res.Telemetry.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Faults) != len(res.Telemetry.Faults) {
		t.Fatalf("round trip kept %d/%d fault lines", len(back.Faults), len(res.Telemetry.Faults))
	}
	kinds := map[string]bool{}
	for _, f := range back.Faults {
		kinds[f.Kind] = true
		if f.Link == "" || f.AtPs < 0 {
			t.Fatalf("malformed fault line %+v", f)
		}
	}
	for _, want := range []string{"link-down", "link-up", "burst-loss"} {
		if !kinds[want] {
			t.Fatalf("artifact lacks a %q fault line: %v", want, kinds)
		}
	}
}

// TestRunDegradationReport: the clean-vs-faulted pair runner produces a
// coherent report — clean runs inject nothing, faulted runs inject
// something, and both exports are well-formed.
func TestRunDegradationReport(t *testing.T) {
	base := faultScenario(SchemeFlexPass)
	plan := flapPlan(t)
	d := RunDegradation(base, plan, []Scheme{SchemeFlexPass, Scheme(transport.SchemeDCTCP)})

	if len(d.Schemes) != 2 {
		t.Fatalf("report covers %d schemes, want 2", len(d.Schemes))
	}
	if d.PlanEnd != int64(plan.End()) || d.Events != 2 {
		t.Fatalf("plan header wrong: %+v", d)
	}
	for _, s := range d.Schemes {
		if s.Clean.InjectedDrops != 0 {
			t.Fatalf("%s: clean run injected %d drops", s.Scheme, s.Clean.InjectedDrops)
		}
		if s.Faulted.InjectedDrops == 0 {
			t.Fatalf("%s: faulted run injected nothing", s.Scheme)
		}
		if s.Clean.GoodputGbps <= 0 || s.Faulted.GoodputGbps <= 0 {
			t.Fatalf("%s: degenerate goodput: %+v", s.Scheme, s)
		}
		if s.Clean.Flows != s.Faulted.Flows {
			t.Fatalf("%s: clean and faulted saw different workloads (%d vs %d flows)",
				s.Scheme, s.Clean.Flows, s.Faulted.Flows)
		}
		if s.RecoveryPs < 0 {
			t.Fatalf("%s: negative recovery time", s.Scheme)
		}
	}

	var jsonl, csv bytes.Buffer
	if err := d.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(jsonl.String(), "\n"); lines != 3 {
		t.Fatalf("JSONL has %d lines, want header + 2 schemes", lines)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", lines)
	}
	if !strings.Contains(csv.String(), "flexpass") || !strings.Contains(jsonl.String(), `"degradation-plan"`) {
		t.Fatalf("exports missing expected content:\n%s\n%s", csv.String(), jsonl.String())
	}
}

// TestScenarioFaultPlanJSONRoundTrip: a Scenario carrying a fault plan
// still encodes to JSON (the harness scenario is part of exported run
// manifests and test fixtures).
func TestScenarioFaultPlanJSONRoundTrip(t *testing.T) {
	plan, err := faults.ParsePlan([]byte(
		`{"name":"rt","events":[{"kind":"credit-loss","link":"*","at":"1ms","end":"2ms","rate":0.25}]}`))
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Seed:      3,
		Clos:      topo.ClosParams{Pods: 2, AggPerPod: 1, TorPerPod: 1, HostsPerTor: 2, Cores: 1},
		LinkRate:  10 * units.Gbps,
		Workload:  workload.WebSearch,
		FaultPlan: plan,
	}
	blob, err := json.Marshal(sc.FaultPlan)
	if err != nil {
		t.Fatal(err)
	}
	out, err := faults.ParsePlan(blob)
	if err != nil {
		t.Fatalf("plan did not survive the round trip: %v", err)
	}
	if out.Events[0].Rate != 0.25 || out.Name != "rt" {
		t.Fatalf("round trip lost data: %+v", out)
	}
}
