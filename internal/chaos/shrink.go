package chaos

import (
	"fmt"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/harness"
)

// ShrinkResult reports a minimization: the shrunk repro plus how much
// was removed and how many replays it cost.
type ShrinkResult struct {
	Repro        *Repro
	Probes       int
	EventsBefore int
	EventsAfter  int
	FlowsBefore  int
	FlowsAfter   int
}

// ShrinkOptions configures the shrinker.
type ShrinkOptions struct {
	// Deadline/Stall guard every probe replay (0 = off). Probes that
	// hang would otherwise stall the whole minimization.
	Deadline time.Duration
	Stall    time.Duration
	// Progress, when non-nil, observes each probe's verdict.
	Progress func(probe int, events, flows int, v Verdict)
	// Mutate mirrors SoakOptions.Mutate for test-seam failures.
	Mutate func(*harness.Scenario)
}

// Shrink delta-debugs a failing repro to a minimal one: it first pins
// the flow list (if the repro predates pinning), verifies the failure
// reproduces, then ddmin-minimizes the fault-plan event list and the
// flow set — in that order, since fewer fault events usually strand
// fewer flows. "Still failing" means the same Outcome class as the
// original; a shrink that morphs a credit-conservation violation into
// a generic incompletion is rejected.
func Shrink(r *Repro, opt ShrinkOptions) (*ShrinkResult, error) {
	work := *r
	if work.Flows == nil {
		work.Flows = toReproFlows(harness.Flows(work.Coords.Scenario(work.Oracles)))
	}
	res := &ShrinkResult{
		EventsBefore: planLen(work.Plan),
		FlowsBefore:  len(work.Flows),
	}
	probe := func(cand Repro) Verdict {
		res.Probes++
		v := replayWith(&cand, opt)
		if opt.Progress != nil {
			opt.Progress(res.Probes, planLen(cand.Plan), len(cand.Flows), v)
		}
		return v
	}

	base := probe(work)
	if !base.Failed() {
		return nil, fmt.Errorf("chaos: repro does not fail under replay (outcome %s); nothing to shrink", base.Outcome)
	}
	target := r.Outcome
	if target == "" || target == OutcomePass {
		target = base.Outcome
	}
	if base.Outcome != target {
		return nil, fmt.Errorf("chaos: replay fails as %q but the repro records %q; refusing to shrink a different failure", base.Outcome, target)
	}

	// Minimize the fault timeline first. Probe the empty plan before
	// ddmin: failures seeded by the workload or a test seam need no
	// fault events at all.
	if work.Plan != nil && len(work.Plan.Events) > 0 {
		empty := work
		empty.Plan = &faults.Plan{Name: work.Plan.Name}
		if probe(empty).Outcome == target {
			work.Plan = empty.Plan
		} else if len(work.Plan.Events) > 1 {
			events := ddmin(work.Plan.Events, func(evs []faults.Event) bool {
				cand := work
				cand.Plan = &faults.Plan{Name: work.Plan.Name, Events: evs}
				return probe(cand).Outcome == target
			})
			work.Plan = &faults.Plan{Name: work.Plan.Name, Events: events}
		}
	}
	// Then the flow set. The floor is one flow: an empty pinned list
	// would fall back to the generated workload, changing the scenario.
	if len(work.Flows) > 1 {
		work.Flows = ddmin(work.Flows, func(fs []ReproFlow) bool {
			cand := work
			cand.Flows = fs
			return probe(cand).Outcome == target
		})
	}

	work.Shrunk = true
	work.Probes = res.Probes
	work.Outcome = target
	res.Repro = &work
	res.EventsAfter = planLen(work.Plan)
	res.FlowsAfter = len(work.Flows)
	return res, nil
}

func replayWith(r *Repro, opt ShrinkOptions) (v Verdict) {
	defer func() {
		if rec := recover(); rec != nil {
			v = verdictFromPanic(rec)
		}
	}()
	sc := r.Scenario()
	sc.Deadline = opt.Deadline
	sc.StallTimeout = opt.Stall
	if opt.Mutate != nil {
		opt.Mutate(&sc)
	}
	res := harness.Run(sc)
	return Evaluate(res, r.Oracles)
}

func planLen(p *faults.Plan) int {
	if p == nil {
		return 0
	}
	return len(p.Events)
}

// ddmin is Zeller's delta-debugging minimization over a slice: it
// returns a 1-minimal subsequence for which fails still holds, given
// that fails(items) holds. It probes complements of progressively
// finer partitions; when no complement fails at single-item
// granularity, no one remaining element can be removed.
func ddmin[T any](items []T, fails func([]T) bool) []T {
	cur := items
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur); start += chunk {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			complement := make([]T, 0, len(cur)-(end-start))
			complement = append(complement, cur[:start]...)
			complement = append(complement, cur[end:]...)
			if len(complement) > 0 && fails(complement) {
				cur = complement
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}
