package chaos

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flexpass/internal/faults"
	"flexpass/internal/harness"
	"flexpass/internal/sim"
)

func testSpec() *Spec {
	s, err := ParseSpec([]byte(`{
		"name": "unit",
		"trials": 6,
		"seed": 42,
		"topologies": ["tiny"],
		"shards": [0, 2],
		"load_min": 0.2,
		"load_max": 0.6,
		"duration_ms": 0.3,
		"drain_ms": 1.5,
		"faults": {"max_events": 3}
	}`))
	if err != nil {
		panic(err)
	}
	return s
}

// pinnedTrialDigest freezes the generator. Any change to the sampling
// order, the axis defaults, or the port-pool enumeration shows up here
// as a digest diff — deliberate changes update the constant, the same
// way the engine's golden digests pin the event loop.
const pinnedTrialDigest = "014339859bba6878"

func TestGenerateDeterministicAndPinned(t *testing.T) {
	a, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (spec, seed) generated different trials")
	}
	if got := Digest(a); got != pinnedTrialDigest {
		t.Errorf("trial digest = %s, want pinned %s (update the constant only for deliberate generator changes)",
			got, pinnedTrialDigest)
	}
	// A different seed must actually change the sample.
	s2 := testSpec()
	s2.Seed = 43
	c, err := Generate(s2)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(c) == pinnedTrialDigest {
		t.Error("seed 43 produced the seed-42 trial list")
	}
}

// TestGeneratedPlansAreValid: every sampled event names a real port of
// the trial's topology, sits inside the spec's fault window, and never
// overlaps another event of the same (link, kind).
func TestGeneratedPlansAreValid(t *testing.T) {
	s := testSpec()
	s.Trials = 20
	trials, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	winLo, winHi := s.windowPS()
	for _, tr := range trials {
		pool, err := portPool(tr.Topo)
		if err != nil {
			t.Fatal(err)
		}
		known := map[string]bool{}
		for _, p := range pool {
			known[p] = true
		}
		if tr.Plan == nil || len(tr.Plan.Events) == 0 {
			t.Fatalf("trial %d sampled an empty plan", tr.Index)
		}
		if err := tr.Plan.Validate(); err != nil {
			t.Fatalf("trial %d plan invalid: %v", tr.Index, err)
		}
		type slot struct{ at, end int64 }
		seen := map[string][]slot{}
		for _, ev := range tr.Plan.Events {
			if !known[ev.Link] {
				t.Fatalf("trial %d targets unknown port %q", tr.Index, ev.Link)
			}
			at, end := int64(ev.At), int64(ev.End)
			if at < winLo || end > winHi || end <= at {
				t.Fatalf("trial %d event window [%d, %d] outside spec window [%d, %d]",
					tr.Index, at, end, winLo, winHi)
			}
			key := ev.Link + "|" + string(ev.Kind)
			for _, sl := range seen[key] {
				if at < sl.end && sl.at < end {
					t.Fatalf("trial %d: overlapping %s events on %s", tr.Index, ev.Kind, ev.Link)
				}
			}
			seen[key] = append(seen[key], slot{at, end})
		}
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"trials": 1}`, // no name
		`{"name": "x"}`, // no trials
		`{"name": "x", "trials": 1, "schemes": ["no-such-scheme"]}`, // unknown scheme
		`{"name": "x", "trials": 1, "topologies": ["mega"]}`,        // unknown topology
		`{"name": "x", "trials": 1, "workloads": ["nope"]}`,         // unknown workload
		`{"name": "x", "trials": 1, "shards": [-1]}`,                // negative shards
		`{"name": "x", "trials": 1, "load_min": 0.9, "load_max": 0.1}`,
		`{"name": "x", "trials": 1, "faults": {"kinds": ["link-up"]}}`, // recovery kinds are not samplable
		`{"name": "x", "trials": 1, "faults": {"links": ["[bad"]}}`,    // malformed glob
		`{"name": "x", "trials": 1, "typo_knob": 3}`,                   // unknown field
	}
	for _, in := range bad {
		if _, err := ParseSpec([]byte(in)); err == nil {
			t.Errorf("spec %s parsed; want error", in)
		}
	}
	if _, err := ParseSpec([]byte(`{"name": "ok", "trials": 2}`)); err != nil {
		t.Errorf("minimal valid spec rejected: %v", err)
	}
}

// TestLinksGlobFiltersPool: a links glob restricts sampling to matching
// ports, and a glob matching nothing is an error, not an empty soak.
func TestLinksGlobFiltersPool(t *testing.T) {
	s := testSpec()
	s.Faults.Links = []string{"tor*"}
	trials, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range trials {
		for _, ev := range tr.Plan.Events {
			if !strings.HasPrefix(ev.Link, "tor") {
				t.Fatalf("glob tor* sampled port %q", ev.Link)
			}
		}
	}
	s.Faults.Links = []string{"nonexistent*"}
	if _, err := Generate(s); err == nil {
		t.Fatal("glob matching no port generated trials; want error")
	}
}

func TestIsReproAndParseRepro(t *testing.T) {
	plan := []byte(`{"name": "bare", "events": [{"kind": "link-down", "link": "x", "at": "1ms", "end": "2ms"}]}`)
	if IsRepro(plan) {
		t.Error("bare fault plan detected as a repro")
	}
	r := &Repro{
		Chaos: ReproSchema,
		Coords: Coords{
			Scheme: "flexpass", Topo: "tiny", Workload: "websearch",
			Load: 0.5, Seed: 7, DurationMS: 0.5, DrainMS: 2,
		},
		Outcome: OutcomeIncomplete,
	}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !IsRepro(data) {
		t.Error("marshaled repro not detected by IsRepro")
	}
	back, err := ParseRepro(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Errorf("repro round trip changed the document:\n got %+v\nwant %+v", back, r)
	}
	if _, err := ParseRepro(plan); err == nil {
		t.Error("ParseRepro accepted a bare fault plan")
	}
	if _, err := ParseRepro([]byte(`{"chaos": 99}`)); err == nil {
		t.Error("ParseRepro accepted a future schema version")
	}
	if _, err := ParseRepro([]byte(`{"chaos": 1, "mystery": true}`)); err == nil {
		t.Error("ParseRepro accepted an unknown field")
	}

	// WriteFile/ParseReproFile round trip.
	p := filepath.Join(t.TempDir(), "repro.json")
	if err := r.WriteFile(p); err != nil {
		t.Fatal(err)
	}
	onDisk, err := ParseReproFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(onDisk, r) {
		t.Error("on-disk repro round trip changed the document")
	}
}

// TestSoakDeterministic: the same (spec, seed) soaks to the same
// verdict on every trial — the property that makes a chaos CI job as
// reproducible as a unit test.
func TestSoakDeterministic(t *testing.T) {
	s := testSpec()
	trials, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep1, err := Soak(s, trials, SoakOptions{Workers: 2, OutDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Soak(s, trials, SoakOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Passed+rep1.Failed != len(trials) {
		t.Fatalf("soak lost trials: passed=%d failed=%d of %d", rep1.Passed, rep1.Failed, len(trials))
	}
	for i := range rep1.Results {
		v1, v2 := rep1.Results[i].Verdict, rep2.Results[i].Verdict
		if !reflect.DeepEqual(v1, v2) {
			t.Errorf("trial %d verdicts diverge across soaks:\n  %+v\n  %+v", i, v1, v2)
		}
	}
	// The trial log carries one record per trial, in order.
	data, err := os.ReadFile(filepath.Join(dir, "trials.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(trials) {
		t.Fatalf("trials.jsonl has %d records, want %d", len(lines), len(trials))
	}
	var first TrialResult
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Trial.Index != 0 || first.Verdict.Outcome == "" {
		t.Errorf("trial log record 0 malformed: %+v", first)
	}
}

// brokenLinkRepro hand-builds a deterministic failure: the downlink to
// host 0 is dead for the entire run, so the pinned flow into host 0
// can never complete while the flow into host 1 finishes normally.
func brokenLinkRepro(t *testing.T) *Repro {
	t.Helper()
	const fullPS = int64(2.5 * float64(sim.Millisecond)) // duration + drain
	pool, err := portPool("tiny")
	if err != nil {
		t.Fatal(err)
	}
	const downlink = "tor0.0->h0.0.0"
	found := false
	for _, p := range pool {
		if p == downlink {
			found = true
		}
	}
	if !found {
		t.Fatalf("port %q not in the tiny pool %v (naming scheme changed?)", downlink, pool)
	}
	return &Repro{
		Chaos:   ReproSchema,
		Spec:    "unit",
		Outcome: OutcomeIncomplete,
		Coords: Coords{
			Scheme: "flexpass", Topo: "tiny", Workload: "websearch",
			Load: 0.3, Deployment: 0.5, Seed: 7,
			DurationMS: 0.5, DrainMS: 2,
		},
		Plan: &faults.Plan{
			Name: "broken-downlink",
			Events: []faults.Event{{
				Kind: faults.LinkDown, Link: downlink,
				At: faults.TimeSpec(0), End: faults.TimeSpec(fullPS),
			}},
		},
		Flows: []ReproFlow{
			{Src: 3, Dst: 0, Size: 40000, AtPs: 0},                      // into the dead link: never completes
			{Src: 2, Dst: 1, Size: 40000, AtPs: int64(sim.Microsecond)}, // healthy path: completes
		},
	}
}

// TestReplayReproducesFailure: the hand-built repro replays to its
// recorded failure class, and the healthy variant (no plan) passes —
// the oracles, not the scenario, are what fail it.
func TestReplayReproducesFailure(t *testing.T) {
	r := brokenLinkRepro(t)
	v := r.Replay(0, 0)
	if v.Outcome != OutcomeIncomplete {
		t.Fatalf("replay outcome %s (%s), want incomplete", v.Outcome, v.Detail)
	}
	if v.Incomplete != 1 {
		t.Errorf("replay counts %d incomplete flows, want exactly the dead-link flow", v.Incomplete)
	}
	healthy := *r
	healthy.Plan = nil
	if hv := healthy.Replay(0, 0); hv.Failed() {
		t.Fatalf("repro without its fault plan still fails (%s: %s) — the failure is not fault-seeded", hv.Outcome, hv.Detail)
	}
}

// TestShrinkMinimizesRepro: the shrinker takes the two-flow, one-event
// repro down to its 1-minimal core — one event, one flow — and the
// shrunk document still replays to the same failure class.
func TestShrinkMinimizesRepro(t *testing.T) {
	r := brokenLinkRepro(t)
	res, err := Shrink(r, ShrinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsAfter != 1 || res.FlowsAfter != 1 {
		t.Fatalf("shrunk to %d events / %d flows, want 1/1", res.EventsAfter, res.FlowsAfter)
	}
	if res.FlowsBefore != 2 {
		t.Errorf("shrinker saw %d flows before, want 2", res.FlowsBefore)
	}
	min := res.Repro
	if !min.Shrunk || min.Probes != res.Probes || res.Probes < 2 {
		t.Errorf("shrunk repro metadata wrong: shrunk=%v probes=%d/%d", min.Shrunk, min.Probes, res.Probes)
	}
	if min.Flows[0].Dst != 0 {
		t.Errorf("shrinker kept the wrong flow: %+v", min.Flows[0])
	}
	if v := min.Replay(0, 0); v.Outcome != OutcomeIncomplete {
		t.Fatalf("shrunk repro replays as %s, want incomplete", v.Outcome)
	}
	// Replays are deterministic: two replays of the shrunk repro agree.
	if v1, v2 := min.Replay(0, 0), min.Replay(0, 0); !reflect.DeepEqual(v1, v2) {
		t.Errorf("shrunk repro replays diverge: %+v vs %+v", v1, v2)
	}
}

// TestShrinkRefusesPassingRepro: shrinking needs a reproducing failure.
func TestShrinkRefusesPassingRepro(t *testing.T) {
	r := brokenLinkRepro(t)
	r.Plan = nil // passes without the plan
	if _, err := Shrink(r, ShrinkOptions{}); err == nil {
		t.Fatal("Shrink accepted a repro that passes under replay")
	}
}

// TestShrinkRefusesMorphedFailure: a repro recording one failure class
// must not be shrunk against a different one.
func TestShrinkRefusesMorphedFailure(t *testing.T) {
	r := brokenLinkRepro(t)
	r.Outcome = OutcomeViolation // recorded class disagrees with what replays
	if _, err := Shrink(r, ShrinkOptions{}); err == nil {
		t.Fatal("Shrink accepted a repro whose replay morphs the failure class")
	}
}

// TestSoakWritesReproForFailure: a failing trial lands a parseable
// repro document whose coordinates match the trial.
func TestSoakWritesReproForFailure(t *testing.T) {
	s := testSpec()
	s.Trials = 1
	s.Shards = []int{0}
	trials, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	src := brokenLinkRepro(t)
	dir := t.TempDir()
	rep, err := Soak(s, trials, SoakOptions{
		Workers: 1,
		OutDir:  dir,
		// Force a deterministic failure through the seam: replace the
		// sampled plan and flows with the known dead-downlink scenario.
		Mutate: func(sc *harness.Scenario) {
			sc.FaultPlan = src.Plan
			sc.TraceFlows = fromReproFlows(src.Flows)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 {
		t.Fatalf("failed=%d, want 1 (by outcome: %v)", rep.Failed, rep.ByOutcome)
	}
	tr := rep.Results[0]
	if tr.Verdict.Outcome != OutcomeIncomplete {
		t.Fatalf("trial outcome %s, want incomplete", tr.Verdict.Outcome)
	}
	if tr.ReproPath == "" {
		t.Fatal("failing trial recorded no repro path")
	}
	got, err := ParseReproFile(tr.ReproPath)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coords != trials[0].Coords || got.Outcome != OutcomeIncomplete {
		t.Errorf("repro document does not match the failing trial: %+v", got)
	}
	if len(got.Flows) == 0 {
		t.Error("repro did not pin the flow list")
	}
}
