package chaos

import (
	"fmt"

	"flexpass/internal/farm"
	"flexpass/internal/forensics"
	"flexpass/internal/harness"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/workload"
)

// Outcome classifies one trial. Precedence when several oracles fire:
// killed/error (the run did not finish cleanly) over violation (an
// auditor invariant broke) over incomplete (flows never finished) over
// strays (recovery leaked packets).
type Outcome string

const (
	OutcomePass       Outcome = "pass"
	OutcomeViolation  Outcome = "violation"  // forensics auditor invariant broke
	OutcomeIncomplete Outcome = "incomplete" // flows unfinished after the drain
	OutcomeStrays     Outcome = "strays"     // stray-packet count over the oracle bound
	OutcomeKilled     Outcome = "killed"     // watchdog deadline/stall kill
	OutcomeError      Outcome = "error"      // run panicked
)

// Verdict is one trial's oracle evaluation.
type Verdict struct {
	Outcome Outcome `json:"outcome"`
	Detail  string  `json:"detail,omitempty"`

	Violations        int   `json:"violations,omitempty"`
	ViolationsDropped int64 `json:"violations_dropped,omitempty"`
	Incomplete        int   `json:"incomplete,omitempty"`
	Strays            int64 `json:"strays,omitempty"`
}

// Failed reports whether the verdict is anything but a pass.
func (v Verdict) Failed() bool { return v.Outcome != OutcomePass }

// Evaluate applies the oracle thresholds to a finished run. The
// forensics auditors are hard oracles: any recorded violation — or any
// violation dropped over the retention cap — fails the trial.
func Evaluate(res *harness.Result, o OracleSpec) Verdict {
	v := Verdict{Outcome: OutcomePass}
	if res.Forensics != nil {
		v.Violations = len(res.Forensics.Violations)
		v.ViolationsDropped = res.Forensics.ViolationsDropped
	}
	v.Incomplete = res.Flows.Incomplete()
	v.Strays = strayCount(res.Telemetry)
	switch {
	case v.Violations > 0:
		v.Outcome = OutcomeViolation
		v.Detail = res.Forensics.Violations[0].String()
	case v.ViolationsDropped > 0:
		v.Outcome = OutcomeViolation
		v.Detail = fmt.Sprintf("%d violations dropped over the auditor retention cap", v.ViolationsDropped)
	case o.requireCompletion() && v.Incomplete > 0:
		v.Outcome = OutcomeIncomplete
		v.Detail = fmt.Sprintf("%d of %d flows incomplete after drain", v.Incomplete, len(res.Flows.Records))
	case o.maxStrays() >= 0 && v.Strays > o.maxStrays():
		v.Outcome = OutcomeStrays
		v.Detail = fmt.Sprintf("stray_packets = %d > %d", v.Strays, o.maxStrays())
	}
	return v
}

// strayCount sums the transport agents' stray-packet counters out of
// the run artifact.
func strayCount(run *obs.Run) int64 {
	if run == nil {
		return 0
	}
	var n int64
	for _, c := range run.Counters {
		if c.Entity == "transport/agent" && c.Metric == "stray_packets" {
			n += c.Value
		}
	}
	return n
}

// Scenario builds the harness scenario for these coordinates. The
// forensics plane — the auditor oracles — rides along on single-engine
// trials; sharded trials run completion and stray oracles only
// (forensics requires the single-engine path).
func (c Coords) Scenario(o OracleSpec) harness.Scenario {
	sc := harness.BaseScenario(false)
	clos, ok := farm.Topologies[c.Topo]
	if !ok {
		panic(fmt.Sprintf("chaos: unknown topology %q", c.Topo))
	}
	sc.Clos = clos
	sc.Scheme = harness.Scheme(c.Scheme)
	sc.Workload = workload.ByName(c.Workload)
	if sc.Workload == nil {
		panic(fmt.Sprintf("chaos: unknown workload %q", c.Workload))
	}
	sc.Load = c.Load
	sc.Deployment = c.Deployment
	sc.Seed = c.Seed
	sc.Shards = c.Shards
	sc.Duration = sim.Time(c.DurationMS * float64(sim.Millisecond))
	sc.Drain = sim.Time(c.DrainMS * float64(sim.Millisecond))
	sc.Telemetry = &obs.Options{}
	sc.ManifestConfig = map[string]string{"topo": c.Topo}
	if c.Shards <= 1 {
		fo := &forensics.Options{}
		if o.StarveAfterMS > 0 {
			fo.StarveAfter = sim.Time(o.StarveAfterMS * float64(sim.Millisecond))
		}
		sc.Forensics = fo
	}
	return sc
}
