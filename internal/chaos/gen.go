package chaos

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"sync"

	"flexpass/internal/farm"
	"flexpass/internal/faults"
	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/topo"
	"flexpass/internal/units"
)

// Coords pins one trial's scenario coordinates. They are everything a
// replay needs besides the fault plan and (for shrinking) the flow
// list: the workload RNG is a pure function of Seed, so the same
// coordinates regenerate the same arrival trace.
type Coords struct {
	Scheme     string  `json:"scheme"`
	Topo       string  `json:"topology"`
	Shards     int     `json:"shards,omitempty"`
	Workload   string  `json:"workload"`
	Load       float64 `json:"load"`
	Deployment float64 `json:"deployment"`
	Seed       int64   `json:"seed"`
	DurationMS float64 `json:"duration_ms"`
	DrainMS    float64 `json:"drain_ms"`
}

// Trial is one sampled chaos point: scenario coordinates plus the
// fault plan to inject.
type Trial struct {
	Index int `json:"trial"`
	Coords
	Plan *faults.Plan `json:"fault_plan,omitempty"`
}

// trialSeed derives the per-trial RNG seed from the spec seed with a
// splitmix64-style mix, so adjacent trials draw unrelated streams and
// the mapping is stable across runs and platforms.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed)*0x9E3779B97F4A7C15 + uint64(trial+1)*0xBF58476D1CE4E5B9
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// portPools caches the resolved port-name pool per topology label: the
// sampler builds each fabric once to enumerate concrete port names, so
// every sampled event names a port that exists and plan application
// can never hit UnknownLinkError.
var portPools sync.Map // string -> []string

func portPool(label string) ([]string, error) {
	if v, ok := portPools.Load(label); ok {
		return v.([]string), nil
	}
	clos, ok := farm.Topologies[label]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown topology %q", label)
	}
	// Port names depend only on the Clos shape, not on rates or
	// buffers, so a throwaway fabric with nominal parameters is enough.
	eng := sim.NewEngine(1)
	fab := topo.Clos(eng, clos, topo.Params{
		LinkRate:  40 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 1000 * units.KB,
		BufAlpha:  0.25,
		Profile:   topo.PlainProfile(80 * units.KB),
	})
	var names []string
	fab.Net.EachPort(func(p *netem.Port) { names = append(names, p.Name()) })
	sort.Strings(names)
	portPools.Store(label, names)
	return names, nil
}

// filterPool keeps the pool entries matching any of the globs.
func filterPool(pool, globs []string) []string {
	var out []string
	for _, name := range pool {
		for _, g := range globs {
			if ok, _ := path.Match(g, name); ok {
				out = append(out, name)
				break
			}
		}
	}
	return out
}

func (s *Spec) windowPS() (int64, int64) {
	start := int64(s.Faults.WindowStartMS * float64(sim.Millisecond))
	end := int64(s.Faults.WindowEndMS * float64(sim.Millisecond))
	if end == 0 {
		end = int64(s.durationMS() * float64(sim.Millisecond))
	}
	return start, end
}

// Generate samples the spec's trials. The same (spec, seed) always
// yields the same trial list — every draw comes from a per-trial
// deterministic stream and the port pools are sorted.
func Generate(s *Spec) ([]Trial, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	trials := make([]Trial, 0, s.Trials)
	for i := 0; i < s.Trials; i++ {
		t, err := genTrial(s, i)
		if err != nil {
			return nil, err
		}
		trials = append(trials, t)
	}
	return trials, nil
}

func genTrial(s *Spec, i int) (Trial, error) {
	rng := rand.New(rand.NewSource(trialSeed(s.Seed, i)))
	pick := func(axis []string) string { return axis[rng.Intn(len(axis))] }
	span := func(lo, hi float64) float64 {
		if hi <= lo {
			return lo
		}
		return lo + (hi-lo)*rng.Float64()
	}
	shardAxis := s.shards()
	lo, hi := s.loadRange()
	dlo, dhi := s.deployRange()
	t := Trial{
		Index: i,
		Coords: Coords{
			Scheme:     pick(s.schemes()),
			Topo:       pick(s.topos()),
			Shards:     shardAxis[rng.Intn(len(shardAxis))],
			Workload:   pick(s.workloads()),
			Load:       span(lo, hi),
			Deployment: span(dlo, dhi),
			Seed:       1 + rng.Int63n(1<<31),
			DurationMS: s.durationMS(),
			DrainMS:    s.drainMS(),
		},
	}
	pool, err := portPool(t.Topo)
	if err != nil {
		return Trial{}, err
	}
	pool = filterPool(pool, s.Faults.links())
	if len(pool) == 0 {
		return Trial{}, fmt.Errorf("chaos: faults.links %v match no port of topology %q", s.Faults.links(), t.Topo)
	}
	plan, err := samplePlan(s, rng, pool, i)
	if err != nil {
		return Trial{}, err
	}
	t.Plan = plan
	return t, nil
}

// samplePlan draws a valid fault timeline: up to max_events interval
// faults with concrete port names, non-overlapping per (link, kind),
// every window closing inside the spec's fault window so the fabric
// heals before the drain. Rejected draws (overlaps) are resampled a
// bounded number of times; an unlucky draw simply yields fewer events.
func samplePlan(s *Spec, rng *rand.Rand, pool []string, trial int) (*faults.Plan, error) {
	kinds := s.Faults.kinds()
	winLo, winHi := s.windowPS()
	n := 1 + rng.Intn(s.Faults.maxEvents())
	type slot struct{ at, end int64 }
	taken := map[string][]slot{} // "link|kind" -> reserved windows
	var events []faults.Event
	for i := 0; i < n; i++ {
		for try := 0; try < 16; try++ {
			kind := kinds[rng.Intn(len(kinds))]
			link := pool[rng.Intn(len(pool))]
			at := winLo + rng.Int63n(winHi-winLo)
			maxDur := winHi - at
			if maxDur < 1 {
				continue
			}
			end := at + 1 + rng.Int63n(maxDur)
			key := link + "|" + string(kind)
			conflict := false
			for _, sl := range taken[key] {
				if at < sl.end && sl.at < end {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			ev := faults.Event{
				Kind: kind,
				Link: link,
				At:   faults.TimeSpec(at),
				End:  faults.TimeSpec(end),
			}
			switch kind {
			case faults.RateDegrade:
				ev.Fraction = 0.05 + 0.9*rng.Float64()
			case faults.BurstLoss:
				ev.LossBad = 0.5 + 0.5*rng.Float64()
				ev.LossGood = 0.001 * rng.Float64()
				ev.BadLen = 1 + 31*rng.Float64()
				ev.GoodLen = 10 + 490*rng.Float64()
			case faults.CreditLoss:
				ev.Rate = 0.01 + 0.99*rng.Float64()
			}
			taken[key] = append(taken[key], slot{at, end})
			events = append(events, ev)
			break
		}
	}
	// Stable order: by onset, then link, then kind — cosmetic (the
	// applier sorts its own schedule) but keeps plan digests canonical.
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].At != events[b].At {
			return events[a].At < events[b].At
		}
		if events[a].Link != events[b].Link {
			return events[a].Link < events[b].Link
		}
		return events[a].Kind < events[b].Kind
	})
	p := &faults.Plan{Name: fmt.Sprintf("chaos-%s-t%d", s.Name, trial), Events: events}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("chaos: sampled plan invalid (sampler bug): %w", err)
	}
	return p, nil
}

// Digest hashes a trial list to a short hex string. Pinning it in a
// test freezes the generator: any change to sampling order or defaults
// shows up as a digest diff, the same way the engine's golden digests
// pin the event loop.
func Digest(trials []Trial) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for i := range trials {
		if err := enc.Encode(&trials[i]); err != nil {
			panic(fmt.Sprintf("chaos: digest encode: %v", err))
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}
