// Package chaos is the randomized robustness-search plane: it samples
// valid random fault plans and scenario coordinates from a declarative
// spec, soaks them through the harness with the forensics auditors
// promoted to hard oracles, and delta-debugs any failing trial down to
// a minimal, replay-exact repro document.
//
// Everything is seeded: the same (spec, seed) pair generates the same
// trials, runs them to the same verdicts, and shrinks failures to the
// same repro — so a CI chaos job is as deterministic as a unit test,
// and a repro.json attached to a bug report replays bit-identically.
package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path"
	"strings"
	"time"

	"flexpass/internal/farm"
	"flexpass/internal/faults"
	"flexpass/internal/transport"
	"flexpass/internal/workload"
)

// Spec declares a chaos search: how many trials to run, which scenario
// axes to sample from, how aggressive the sampled fault plans may be,
// and which oracle thresholds turn an observation into a failure.
// Parsing is strict (unknown fields are errors) for the same reason the
// farm and fault-plan specs are: a typoed knob silently reverting to
// its default is worse than a parse error.
type Spec struct {
	Name   string `json:"name"`
	Trials int    `json:"trials"`
	Seed   int64  `json:"seed"`

	// Scenario axes. Each trial picks one value per axis uniformly at
	// random; empty axes fall back to a single default.
	Schemes   []string `json:"schemes,omitempty"`    // default [flexpass]
	Topos     []string `json:"topologies,omitempty"` // farm labels; default [tiny]
	Shards    []int    `json:"shards,omitempty"`     // default [0] (single engine)
	Workloads []string `json:"workloads,omitempty"`  // CDF names; default [websearch]

	// Continuous axes, sampled uniformly from [min, max].
	LoadMin   float64 `json:"load_min,omitempty"`   // default 0.3
	LoadMax   float64 `json:"load_max,omitempty"`   // default 0.7
	DeployMin float64 `json:"deploy_min,omitempty"` // default 0.5
	DeployMax float64 `json:"deploy_max,omitempty"` // default 0.5

	DurationMS float64 `json:"duration_ms,omitempty"` // arrival window; default 2
	DrainMS    float64 `json:"drain_ms,omitempty"`    // default 5x duration

	// Per-trial watchdog limits (0 = off). These ride on the harness
	// deadline/stall watchdog, so a runaway trial is killed, recorded
	// as OutcomeKilled, and the soak moves on.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	StallMS    float64 `json:"stall_ms,omitempty"`

	Faults  FaultSpec  `json:"faults"`
	Oracles OracleSpec `json:"oracles"`
}

// FaultSpec bounds the sampled fault plans.
type FaultSpec struct {
	MaxEvents int      `json:"max_events,omitempty"` // default 4
	Kinds     []string `json:"kinds,omitempty"`      // subset of the faults.Kind names; default all four
	Links     []string `json:"links,omitempty"`      // port-name globs the sampler may target; default ["*"]

	// Fault windows are sampled inside [window_start_ms, window_end_ms].
	// The default end is the arrival window (duration_ms), so every
	// sampled fault clears before the drain — a plan that leaves a link
	// down forever would make "all flows complete" unsatisfiable.
	WindowStartMS float64 `json:"window_start_ms,omitempty"`
	WindowEndMS   float64 `json:"window_end_ms,omitempty"`
}

// OracleSpec sets the failure thresholds. The forensics auditors
// (credit conservation, shared-buffer bounds, starvation) are always
// hard oracles on single-engine trials; these knobs tune the
// supplementary checks.
type OracleSpec struct {
	// StarveAfterMS overrides the starvation auditor's patience.
	StarveAfterMS float64 `json:"starve_after_ms,omitempty"`
	// MaxStrays fails a trial whose post-fault stray-packet count
	// exceeds the bound (a recovery leak). 0 = default 5000; -1
	// disables the check.
	MaxStrays int64 `json:"max_strays,omitempty"`
	// RequireCompletion fails a trial with incomplete flows (default
	// true: every sampled fault clears, so every flow must finish).
	RequireCompletion *bool `json:"require_completion,omitempty"`
}

// Defaults, exposed so the CLI can print them.
const (
	DefaultMaxEvents = 4
	DefaultMaxStrays = 5000
)

func (s *Spec) schemes() []string   { return orDefault(s.Schemes, "flexpass") }
func (s *Spec) topos() []string     { return orDefault(s.Topos, "tiny") }
func (s *Spec) workloads() []string { return orDefault(s.Workloads, "websearch") }
func (s *Spec) shards() []int {
	if len(s.Shards) == 0 {
		return []int{0}
	}
	return s.Shards
}
func (s *Spec) loadRange() (float64, float64) {
	lo, hi := s.LoadMin, s.LoadMax
	if lo == 0 && hi == 0 {
		return 0.3, 0.7
	}
	return lo, hi
}
func (s *Spec) deployRange() (float64, float64) {
	if s.DeployMin == 0 && s.DeployMax == 0 {
		return 0.5, 0.5
	}
	return s.DeployMin, s.DeployMax
}
func (s *Spec) durationMS() float64 {
	if s.DurationMS == 0 {
		return 2
	}
	return s.DurationMS
}
func (s *Spec) drainMS() float64 {
	if s.DrainMS == 0 {
		return 5 * s.durationMS()
	}
	return s.DrainMS
}
func (s *Spec) deadline() time.Duration {
	return time.Duration(s.DeadlineMS * float64(time.Millisecond))
}
func (s *Spec) stall() time.Duration {
	return time.Duration(s.StallMS * float64(time.Millisecond))
}

func (f *FaultSpec) maxEvents() int {
	if f.MaxEvents == 0 {
		return DefaultMaxEvents
	}
	return f.MaxEvents
}
func (f *FaultSpec) kinds() []faults.Kind {
	if len(f.Kinds) == 0 {
		return []faults.Kind{faults.LinkDown, faults.RateDegrade, faults.BurstLoss, faults.CreditLoss}
	}
	out := make([]faults.Kind, len(f.Kinds))
	for i, k := range f.Kinds {
		out[i] = faults.Kind(k)
	}
	return out
}
func (f *FaultSpec) links() []string { return orDefault(f.Links, "*") }

func (o *OracleSpec) maxStrays() int64 {
	switch {
	case o.MaxStrays < 0:
		return -1
	case o.MaxStrays == 0:
		return DefaultMaxStrays
	default:
		return o.MaxStrays
	}
}
func (o *OracleSpec) requireCompletion() bool {
	if o.RequireCompletion == nil {
		return true
	}
	return *o.RequireCompletion
}

func orDefault(axis []string, def string) []string {
	if len(axis) == 0 {
		return []string{def}
	}
	return axis
}

// ParseSpec decodes and validates a strict-JSON chaos spec.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("chaos: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseSpecFile reads a chaos spec from disk.
func ParseSpecFile(p string) (*Spec, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	return s, nil
}

// Validate checks every axis value against the registries it samples
// from, so a bad spec fails before the first trial rather than as a
// panic mid-soak.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("chaos: spec needs a name")
	}
	if s.Trials <= 0 {
		return fmt.Errorf("chaos: trials must be > 0 (got %d)", s.Trials)
	}
	registered := map[string]bool{}
	for _, n := range transport.SchemeNames() {
		registered[n] = true
	}
	for _, sch := range s.schemes() {
		if !registered[sch] {
			return fmt.Errorf("chaos: unknown scheme %q (registered: %s)",
				sch, strings.Join(transport.SchemeNames(), ", "))
		}
	}
	for _, t := range s.topos() {
		if _, ok := farm.Topologies[t]; !ok {
			return fmt.Errorf("chaos: unknown topology %q (want tiny, small, paper, big)", t)
		}
	}
	for _, w := range s.workloads() {
		if workload.ByName(w) == nil {
			return fmt.Errorf("chaos: unknown workload %q", w)
		}
	}
	for _, n := range s.shards() {
		if n < 0 {
			return fmt.Errorf("chaos: shards must be >= 0 (got %d)", n)
		}
	}
	lo, hi := s.loadRange()
	if lo < 0 || hi < lo || hi > 2 {
		return fmt.Errorf("chaos: load range [%g, %g] invalid", lo, hi)
	}
	dlo, dhi := s.deployRange()
	if dlo < 0 || dhi < dlo || dhi > 1 {
		return fmt.Errorf("chaos: deployment range [%g, %g] invalid", dlo, dhi)
	}
	if s.Faults.MaxEvents < 0 {
		return fmt.Errorf("chaos: faults.max_events must be >= 0")
	}
	valid := map[faults.Kind]bool{
		faults.LinkDown: true, faults.RateDegrade: true,
		faults.BurstLoss: true, faults.CreditLoss: true,
	}
	for _, k := range s.Faults.kinds() {
		if !valid[k] {
			return fmt.Errorf("chaos: faults.kinds entry %q is not a samplable fault kind", k)
		}
	}
	for _, g := range s.Faults.links() {
		if _, err := path.Match(g, "probe"); err != nil {
			return fmt.Errorf("chaos: faults.links glob %q: %w", g, err)
		}
	}
	ws, we := s.windowPS()
	if ws < 0 || we <= ws {
		return fmt.Errorf("chaos: fault window [%gms, %gms] is empty",
			s.Faults.WindowStartMS, s.Faults.WindowEndMS)
	}
	return nil
}
