package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"flexpass/internal/faults"
	"flexpass/internal/harness"
	"flexpass/internal/sim"
	"flexpass/internal/workload"
)

// ReproSchema versions the repro document layout. The "chaos" key
// doubles as the marker that distinguishes a repro document from a
// bare fault plan, so `flexsim -fault-plan repro.json` can detect and
// replay the full scenario rather than just its fault timeline.
const ReproSchema = 1

// ReproFlow is one pinned flow in a repro document: workload.FlowSpec
// with stable JSON names. Pinning the flow list (instead of just the
// workload seed) is what makes the flow set shrinkable — the ddmin
// pass deletes entries and replays via the trace path.
type ReproFlow struct {
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Size   int64  `json:"size"`
	AtPs   int64  `json:"at_ps"`
	Incast bool   `json:"incast,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Coflow uint64 `json:"coflow,omitempty"`
}

func toReproFlows(fs []workload.FlowSpec) []ReproFlow {
	out := make([]ReproFlow, len(fs))
	for i, f := range fs {
		out[i] = ReproFlow{
			Src: f.Src, Dst: f.Dst, Size: f.Size, AtPs: int64(f.At),
			Incast: f.Incast, Tenant: f.Tenant, Coflow: f.Coflow,
		}
	}
	return out
}

func fromReproFlows(fs []ReproFlow) []workload.FlowSpec {
	out := make([]workload.FlowSpec, len(fs))
	for i, f := range fs {
		out[i] = workload.FlowSpec{
			Src: f.Src, Dst: f.Dst, Size: f.Size, At: sim.Time(f.AtPs),
			Incast: f.Incast, Tenant: f.Tenant, Coflow: f.Coflow,
		}
	}
	return out
}

// Repro is a self-contained failure reproduction: scenario
// coordinates, oracle thresholds, the fault plan, and the pinned flow
// list. Replay() rebuilds the exact scenario — the flow list rides the
// trace path, so the replay is bit-identical to the failing trial
// regardless of workload-generator evolution.
type Repro struct {
	Chaos   int     `json:"chaos"` // ReproSchema; also the format marker
	Spec    string  `json:"spec,omitempty"`
	Trial   int     `json:"trial"`
	Outcome Outcome `json:"outcome,omitempty"` // the failure class being reproduced
	Detail  string  `json:"detail,omitempty"`
	Coords
	Oracles OracleSpec   `json:"oracles"`
	Plan    *faults.Plan `json:"fault_plan,omitempty"`
	Flows   []ReproFlow  `json:"flows,omitempty"`
	Shrunk  bool         `json:"shrunk,omitempty"`
	Probes  int          `json:"probes,omitempty"` // replays the shrinker spent
}

// IsRepro cheaply tests whether a JSON document is a chaos repro (as
// opposed to a bare fault plan): it has a nonzero "chaos" key.
func IsRepro(data []byte) bool {
	var probe struct {
		Chaos int `json:"chaos"`
	}
	return json.Unmarshal(data, &probe) == nil && probe.Chaos != 0
}

// ParseRepro decodes a strict-JSON repro document.
func ParseRepro(data []byte) (*Repro, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var r Repro
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("chaos: parsing repro: %w", err)
	}
	if r.Chaos == 0 {
		return nil, fmt.Errorf("chaos: document has no \"chaos\" marker; is this a bare fault plan?")
	}
	if r.Chaos > ReproSchema {
		return nil, fmt.Errorf("chaos: repro schema %d, this build reads <= %d", r.Chaos, ReproSchema)
	}
	if r.Plan != nil {
		if err := r.Plan.Validate(); err != nil {
			return nil, err
		}
	}
	return &r, nil
}

// ParseReproFile reads a repro document from disk.
func ParseReproFile(p string) (*Repro, error) {
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, err
	}
	r, err := ParseRepro(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p, err)
	}
	return r, nil
}

// WriteFile persists the repro as indented JSON (tmp + rename).
func (r *Repro) WriteFile(p string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, p)
}

// Scenario rebuilds the harness scenario the repro describes.
func (r *Repro) Scenario() harness.Scenario {
	sc := r.Coords.Scenario(r.Oracles)
	sc.FaultPlan = r.Plan
	if r.Flows != nil {
		sc.TraceFlows = fromReproFlows(r.Flows)
	}
	return sc
}

// Replay runs the repro and evaluates the oracles, converting watchdog
// kills and panics into verdicts the same way the soak runner does.
// deadline/stall (0 = off) guard the replay itself.
func (r *Repro) Replay(deadline, stall time.Duration) (v Verdict) {
	defer func() {
		if rec := recover(); rec != nil {
			v = verdictFromPanic(rec)
		}
	}()
	sc := r.Scenario()
	sc.Deadline = deadline
	sc.StallTimeout = stall
	res := harness.Run(sc)
	return Evaluate(res, r.Oracles)
}

// verdictFromPanic maps a recovered panic to a verdict: watchdog kills
// are OutcomeKilled, everything else OutcomeError.
func verdictFromPanic(rec any) Verdict {
	if ke, ok := rec.(*harness.KilledError); ok {
		return Verdict{Outcome: OutcomeKilled, Detail: ke.Error()}
	}
	return Verdict{Outcome: OutcomeError, Detail: fmt.Sprint(rec)}
}

// reproFor builds the (unshrunk) repro document for a failing trial,
// pinning the flow list the coordinates generate.
func reproFor(t Trial, specName string, o OracleSpec, v Verdict) *Repro {
	sc := t.Coords.Scenario(o)
	return &Repro{
		Chaos:   ReproSchema,
		Spec:    specName,
		Trial:   t.Index,
		Outcome: v.Outcome,
		Detail:  v.Detail,
		Coords:  t.Coords,
		Oracles: o,
		Plan:    t.Plan,
		Flows:   toReproFlows(harness.Flows(sc)),
	}
}
