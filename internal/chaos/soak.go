package chaos

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"flexpass/internal/harness"
)

// TrialResult is one soaked trial's record: the full trial (it is
// self-contained — coordinates plus plan), its verdict, and where the
// repro document landed if it failed.
type TrialResult struct {
	Trial     Trial   `json:"trial"`
	Verdict   Verdict `json:"verdict"`
	ElapsedMS float64 `json:"elapsed_ms"`
	ReproPath string  `json:"repro,omitempty"`
}

// SoakReport aggregates a soak.
type SoakReport struct {
	Spec      string          `json:"spec"`
	Trials    int             `json:"trials"`
	Passed    int             `json:"passed"`
	Failed    int             `json:"failed"`
	ByOutcome map[Outcome]int `json:"by_outcome"`
	Canceled  bool            `json:"canceled,omitempty"`
	Results   []TrialResult   `json:"-"` // trial order; persisted as trials.jsonl, not in the summary
}

// SoakOptions configures a soak run.
type SoakOptions struct {
	// Workers caps concurrent trials (default: GOMAXPROCS).
	Workers int
	// Ctx cancels the soak between trials; in-flight trials finish.
	Ctx context.Context
	// OutDir, when set, receives trials.jsonl plus a repro-<trial>.json
	// per failing trial.
	OutDir string
	// Progress, when non-nil, observes each result as it lands
	// (called from worker goroutines, completion order).
	Progress func(TrialResult)
	// Mutate, when non-nil, edits each trial's scenario before the run
	// — the test seam for forcing failures (e.g. wrapping the credit
	// accountant) without a fault plan that really breaks invariants.
	Mutate func(*harness.Scenario)
}

// Soak runs every trial through the harness and the oracles. Trials
// that panic — including watchdog kills — are caught and classified,
// never aborting the soak. Results come back in trial order.
func Soak(spec *Spec, trials []Trial, opt SoakOptions) (*SoakReport, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(trials) {
		workers = len(trials)
	}
	rep := &SoakReport{
		Spec:      spec.Name,
		Trials:    len(trials),
		ByOutcome: map[Outcome]int{},
		Results:   make([]TrialResult, len(trials)),
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				rep.Results[i] = soakOne(trials[i], spec, opt)
				if opt.Progress != nil {
					opt.Progress(rep.Results[i])
				}
			}
		}()
	}
dispatch:
	for i := range trials {
		select {
		case jobs <- i:
		case <-ctx.Done():
			rep.Canceled = true
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for i := range rep.Results {
		r := &rep.Results[i]
		if rep.Canceled && r.Verdict.Outcome == "" {
			continue // never dispatched
		}
		rep.ByOutcome[r.Verdict.Outcome]++
		if r.Verdict.Failed() {
			rep.Failed++
		} else {
			rep.Passed++
		}
	}
	if opt.OutDir != "" {
		if err := writeTrialLog(opt.OutDir, rep); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// soakOne runs a single trial end to end: scenario build, harness run
// under the spec's watchdog limits, oracle evaluation, and — on
// failure — the repro document with its pinned flow list.
func soakOne(t Trial, spec *Spec, opt SoakOptions) TrialResult {
	start := time.Now()
	v := runTrial(t, spec, opt.Mutate)
	tr := TrialResult{
		Trial:     t,
		Verdict:   v,
		ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond),
	}
	if v.Failed() && opt.OutDir != "" {
		r := reproFor(t, spec.Name, spec.Oracles, v)
		p := filepath.Join(opt.OutDir, fmt.Sprintf("repro-%d.json", t.Index))
		if err := r.WriteFile(p); err == nil {
			tr.ReproPath = p
		}
	}
	return tr
}

func runTrial(t Trial, spec *Spec, mutate func(*harness.Scenario)) (v Verdict) {
	defer func() {
		if rec := recover(); rec != nil {
			v = verdictFromPanic(rec)
		}
	}()
	sc := t.Coords.Scenario(spec.Oracles)
	sc.FaultPlan = t.Plan
	sc.Deadline = spec.deadline()
	sc.StallTimeout = spec.stall()
	if mutate != nil {
		mutate(&sc)
	}
	res := harness.Run(sc)
	return Evaluate(res, spec.Oracles)
}

// writeTrialLog persists every result as one JSONL record per trial.
func writeTrialLog(dir string, rep *SoakReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	p := filepath.Join(dir, "trials.jsonl")
	f, err := os.Create(p)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for i := range rep.Results {
		if rep.Results[i].Verdict.Outcome == "" {
			continue // canceled before dispatch
		}
		if err := enc.Encode(&rep.Results[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
