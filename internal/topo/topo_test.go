package topo

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func testParams() Params {
	return Params{
		LinkRate:  40 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   FlexPassProfile(Spec{}),
	}
}

// deliver sends one packet from host src to host dst and returns the
// arrival time, or -1 if it never arrived.
func deliver(t *testing.T, f *Fabric, src, dst int) sim.Time {
	t.Helper()
	eng := f.Net.Eng
	arrived := sim.Time(-1)
	f.Net.Host(dst).SetHandler(func(p *netem.Packet) { arrived = eng.Now() })
	pkt := &netem.Packet{
		Kind:  netem.KindLegacyData,
		Class: netem.ClassLegacy,
		Dst:   f.Net.Host(dst).NodeID(),
		Flow:  uint64(src*1000 + dst),
		Size:  netem.MTUWire,
	}
	start := eng.Now()
	f.Net.Host(src).Send(pkt)
	eng.Run(eng.Now() + 10*sim.Millisecond)
	if arrived < 0 {
		return -1
	}
	return arrived - start
}

func TestSingleSwitchConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	f := SingleSwitch(eng, 4, testParams())
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			if got := deliver(t, f, s, d); got < 0 {
				t.Fatalf("no delivery %d->%d", s, d)
			}
		}
	}
}

func TestDumbbellConnectivityAndBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Dumbbell(eng, 2, 2, 10*units.Gbps, testParams())
	if f.Bottleneck == nil {
		t.Fatal("no bottleneck port")
	}
	if got := deliver(t, f, 0, 2); got < 0 {
		t.Fatal("left->right delivery failed")
	}
	if f.Bottleneck.Stats().TxPackets == 0 {
		t.Fatal("bottleneck did not carry the packet")
	}
}

func TestPaperClosShape(t *testing.T) {
	c := PaperClos
	if c.Hosts() != 192 {
		t.Fatalf("paper Clos has %d hosts, want 192", c.Hosts())
	}
	eng := sim.NewEngine(1)
	f := Clos(eng, c, testParams())
	if len(f.Net.Hosts) != 192 {
		t.Fatalf("built %d hosts", len(f.Net.Hosts))
	}
	// 8 core + 16 agg + 32 ToR = 56 switches.
	if len(f.Net.Switches) != 56 {
		t.Fatalf("built %d switches, want 56", len(f.Net.Switches))
	}
	// 32 ToR × 2 uplinks.
	if len(f.TorUplinks) != 64 {
		t.Fatalf("%d ToR uplinks, want 64", len(f.TorUplinks))
	}
	// Racks: 6 hosts per rack, 32 racks.
	if f.RackOf[0] != 0 || f.RackOf[5] != 0 || f.RackOf[6] != 1 || f.RackOf[191] != 31 {
		t.Fatalf("rack assignment wrong: %v...", f.RackOf[:8])
	}
}

func TestClosAllPairsConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, SmallClos, testParams())
	n := len(f.Net.Hosts)
	// Spot-check a spread of pairs including intra-rack, intra-pod, and
	// cross-pod.
	pairs := [][2]int{{0, 1}, {0, 7}, {0, n - 1}, {n - 1, 0}, {13, 25}, {25, 13}}
	for _, pr := range pairs {
		if got := deliver(t, f, pr[0], pr[1]); got < 0 {
			t.Fatalf("no delivery %d->%d", pr[0], pr[1])
		}
	}
}

func TestClosBaseRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, PaperClos, testParams())
	// Cross-pod one-way: 6 links × 2us prop + 1us host delay + 6×serialization.
	// Host 0 (pod 0) to host 191 (pod 7).
	oneWay := deliver(t, f, 0, 191)
	if oneWay < 0 {
		t.Fatal("no delivery")
	}
	ser := (40 * units.Gbps).TxTime(netem.MTUWire) // per hop store-and-forward
	want := 6*2*sim.Microsecond + 1*sim.Microsecond + 6*ser
	if oneWay != want {
		t.Fatalf("one-way latency %v, want %v", oneWay, want)
	}
	// Base RTT for a minimum-size probe both ways ≈ 28us as §6.2 states
	// (12 propagation traversals + 4 host delays, serialization excluded).
	base := 12*2*sim.Microsecond + 4*1*sim.Microsecond
	if base != 28*sim.Microsecond {
		t.Fatalf("base RTT parameterization drifted: %v", base)
	}
}

func TestClosECMPUsesAllUplinks(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, PaperClos, testParams())
	// Blast flows from pod 0 to pod 1 and check multiple ToR uplinks carry
	// traffic.
	dst := f.Net.Host(30).NodeID() // some host in pod 1 (hosts 24..47)
	src := f.Net.Host(0)
	for fl := uint64(0); fl < 64; fl++ {
		src.Send(&netem.Packet{
			Kind: netem.KindLegacyData, Class: netem.ClassLegacy,
			Dst: dst, Flow: fl, Size: netem.MTUWire,
		})
	}
	eng.Run(5 * sim.Millisecond)
	used := 0
	for _, up := range f.TorUplinks[:2] { // ToR 0's two uplinks
		if up.Stats().TxPackets > 0 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("ECMP used %d of 2 uplinks of ToR0", used)
	}
}

func TestProfilesBuild(t *testing.T) {
	specs := []PortProfile{
		FlexPassProfile(Spec{}),
		OWFProfile(Spec{WQ: 0.3}),
		NaiveProfile(Spec{}),
		LayeringProfile(Spec{}),
		AltQueueProfile(Spec{}),
		HomaProfile(100 * units.KB),
		PlainProfile(100 * units.KB),
	}
	for i, prof := range specs {
		cfg := prof(40 * units.Gbps)
		if len(cfg.Queues) == 0 {
			t.Fatalf("profile %d built no queues", i)
		}
	}
	// FlexPass credit limit: wq=0.5 at 40G → 0.5×40G×84/1538 ≈ 1.09Gbps.
	cfg := FlexPassProfile(Spec{})(40 * units.Gbps)
	rl := cfg.Queues[0].RateLimit
	if rl < 1000*units.Mbps || rl > 1200*units.Mbps {
		t.Fatalf("credit rate limit = %v, want ~1.09Gbps", rl)
	}
}

func TestNaiveProfileClassifier(t *testing.T) {
	cfg := NaiveProfile(Spec{})(10 * units.Gbps)
	if cfg.Classify == nil {
		t.Fatal("naive profile needs a classifier")
	}
	if got := cfg.Classify(&netem.Packet{Class: netem.ClassCredit}); got != 0 {
		t.Fatalf("credit class -> queue %d, want 0", got)
	}
	for _, cl := range []netem.Class{netem.ClassFlex, netem.ClassLegacy} {
		if got := cfg.Classify(&netem.Packet{Class: cl}); got != 1 {
			t.Fatalf("class %d -> queue %d, want shared queue 1", cl, got)
		}
	}
	// Full-rate credits: limit ≈ C × 84/1538.
	want := netem.CreditRateFor(10*units.Gbps, 1.0)
	if cfg.Queues[0].RateLimit != want {
		t.Fatalf("naive credit limit %v, want %v", cfg.Queues[0].RateLimit, want)
	}
}

func TestOWFProfileNoSelectiveDropping(t *testing.T) {
	cfg := OWFProfile(Spec{WQ: 0.3})(40 * units.Gbps)
	if cfg.Queues[1].RedDropThreshold != 0 {
		t.Fatal("oWF Q1 must not selectively drop (pure ExpressPass)")
	}
	if cfg.Queues[1].ECNThreshold != 0 {
		t.Fatal("oWF Q1 must not mark (ExpressPass data is not ECT anyway)")
	}
	if cfg.Queues[1].Weight != 0.3 || cfg.Queues[2].Weight != 0.7 {
		t.Fatalf("oWF weights %v/%v, want 0.3/0.7", cfg.Queues[1].Weight, cfg.Queues[2].Weight)
	}
}

func TestAltQueueProfileShape(t *testing.T) {
	cfg := AltQueueProfile(Spec{})(40 * units.Gbps)
	if len(cfg.Queues) != 3 {
		t.Fatalf("%d queues", len(cfg.Queues))
	}
	// Reactive lives in Q2 with legacy: Q1 carries only paced proactive
	// data, so no red threshold there.
	if cfg.Queues[1].RedDropThreshold != 0 {
		t.Fatal("AltQ Q1 should not need selective dropping")
	}
	if cfg.Queues[2].ECNThreshold == 0 {
		t.Fatal("AltQ Q2 needs ECN for DCTCP and the reactive sub-flow")
	}
}

func TestHomaProfileEightPriorities(t *testing.T) {
	cfg := HomaProfile(100 * units.KB)(10 * units.Gbps)
	if len(cfg.Queues) != 8 {
		t.Fatalf("%d queues, want 8", len(cfg.Queues))
	}
	for i, q := range cfg.Queues {
		if q.Band != i {
			t.Fatalf("queue %d band %d; want strict priority ladder", i, q.Band)
		}
	}
	if cfg.Queues[0].ECNThreshold == 0 {
		t.Fatal("P0 needs the DCTCP marking threshold")
	}
}

func TestClosPodShards(t *testing.T) {
	c := ClosParams{Pods: 4, AggPerPod: 2, TorPerPod: 1, HostsPerTor: 2, Cores: 2}
	for _, tc := range []struct {
		want   int
		shards int
	}{{0, 1}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {9, 4}} {
		plan := ClosPodShards(c, tc.want)
		if len(plan) != c.Pods {
			t.Fatalf("want=%d: plan length %d", tc.want, len(plan))
		}
		if got := Shards(plan); got != tc.shards {
			t.Fatalf("want=%d: %d shards, expected %d (plan %v)", tc.want, got, tc.shards, plan)
		}
		for pod := 1; pod < len(plan); pod++ {
			if plan[pod] < plan[pod-1] {
				t.Fatalf("want=%d: plan not monotone: %v", tc.want, plan)
			}
		}
	}
}

func TestClosShardedPartition(t *testing.T) {
	c := ClosParams{Pods: 4, AggPerPod: 2, TorPerPod: 1, HostsPerTor: 2, Cores: 2}
	p := Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: sim.Microsecond,
		SwitchBuf: 1000 * units.KB,
		BufAlpha:  0.25,
		Profile:   FlexPassProfile(Spec{}),
	}
	engs := []*sim.Engine{sim.NewShardEngine(1, 0), sim.NewShardEngine(1, 1)}
	plan := ClosPodShards(c, 2)
	fab := ClosSharded(engs, plan, c, p)

	if fab.Shards != 2 {
		t.Fatalf("Shards = %d", fab.Shards)
	}
	if len(fab.HostShard) != c.Hosts() || len(fab.SwitchShard) != len(fab.Net.Switches) {
		t.Fatalf("partition metadata sizes: hosts %d/%d switches %d/%d",
			len(fab.HostShard), c.Hosts(), len(fab.SwitchShard), len(fab.Net.Switches))
	}
	// Hosts follow their pod's shard; pods 0-1 on shard 0, pods 2-3 on 1.
	for i, s := range fab.HostShard {
		pod := i / (c.TorPerPod * c.HostsPerTor)
		if s != plan[pod] {
			t.Fatalf("host %d (pod %d) on shard %d, want %d", i, pod, s, plan[pod])
		}
	}
	// Every node's ports schedule on its shard's engine.
	for i, sw := range fab.Net.Switches {
		for _, port := range sw.Ports() {
			if port.Engine() != engs[fab.SwitchShard[i]] {
				t.Fatalf("switch %s port %s on wrong engine", sw.Name(), port.Name())
			}
		}
	}
	for i, h := range fab.Net.Hosts {
		if h.NIC().Engine() != engs[fab.HostShard[i]] {
			t.Fatalf("host %d NIC on wrong engine", i)
		}
	}
	// Cross links: only agg<->core wires whose pod shard differs from the
	// cores' shard 0, recorded with the owning side first.
	if len(fab.Cross) == 0 {
		t.Fatal("no cross links recorded")
	}
	for _, cl := range fab.Cross {
		if cl.From == cl.To {
			t.Fatalf("self cross link %+v", cl)
		}
		if cl.From != 0 && cl.To != 0 {
			t.Fatalf("cross link avoids the core shard: %+v", cl)
		}
		if cl.Port.Engine() != engs[cl.From] {
			t.Fatalf("cross port %s not owned by its From shard %d", cl.Port.Name(), cl.From)
		}
	}
	// Expected count: core wiring is striped (each agg reaches
	// Cores/AggPerPod cores), so a pod off the core shard contributes
	// Cores wires each way.
	wantCross := 0
	for _, s := range plan {
		if s != 0 {
			wantCross += 2 * c.Cores
		}
	}
	if len(fab.Cross) != wantCross {
		t.Fatalf("%d cross links, want %d", len(fab.Cross), wantCross)
	}
}

func TestDumbbellShardedPartition(t *testing.T) {
	p := Params{
		LinkRate:  10 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: sim.Microsecond,
		SwitchBuf: 1000 * units.KB,
		BufAlpha:  0.25,
		Profile:   FlexPassProfile(Spec{}),
	}
	engL, engR := sim.NewShardEngine(1, 0), sim.NewShardEngine(1, 1)
	fab := DumbbellSharded(engL, engR, 3, 3, 10*units.Gbps, p)
	if fab.Shards != 2 || len(fab.Cross) != 2 {
		t.Fatalf("Shards=%d cross=%d", fab.Shards, len(fab.Cross))
	}
	for _, cl := range fab.Cross {
		if cl.Port.Engine() != []*sim.Engine{engL, engR}[cl.From] {
			t.Fatalf("bottleneck cross port %s owned by wrong engine", cl.Port.Name())
		}
	}
	for i, s := range fab.HostShard {
		want := 0
		if i >= 3 {
			want = 1
		}
		if s != want {
			t.Fatalf("host %d on shard %d, want %d", i, s, want)
		}
	}
}
