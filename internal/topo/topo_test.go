package topo

import (
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func testParams() Params {
	return Params{
		LinkRate:  40 * units.Gbps,
		LinkDelay: 2 * sim.Microsecond,
		HostDelay: 1 * sim.Microsecond,
		SwitchBuf: 4500 * units.KB,
		BufAlpha:  0.25,
		Profile:   FlexPassProfile(Spec{}),
	}
}

// deliver sends one packet from host src to host dst and returns the
// arrival time, or -1 if it never arrived.
func deliver(t *testing.T, f *Fabric, src, dst int) sim.Time {
	t.Helper()
	eng := f.Net.Eng
	arrived := sim.Time(-1)
	f.Net.Host(dst).SetHandler(func(p *netem.Packet) { arrived = eng.Now() })
	pkt := &netem.Packet{
		Kind:  netem.KindLegacyData,
		Class: netem.ClassLegacy,
		Dst:   f.Net.Host(dst).NodeID(),
		Flow:  uint64(src*1000 + dst),
		Size:  netem.MTUWire,
	}
	start := eng.Now()
	f.Net.Host(src).Send(pkt)
	eng.Run(eng.Now() + 10*sim.Millisecond)
	if arrived < 0 {
		return -1
	}
	return arrived - start
}

func TestSingleSwitchConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	f := SingleSwitch(eng, 4, testParams())
	for s := 0; s < 4; s++ {
		for d := 0; d < 4; d++ {
			if s == d {
				continue
			}
			if got := deliver(t, f, s, d); got < 0 {
				t.Fatalf("no delivery %d->%d", s, d)
			}
		}
	}
}

func TestDumbbellConnectivityAndBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Dumbbell(eng, 2, 2, 10*units.Gbps, testParams())
	if f.Bottleneck == nil {
		t.Fatal("no bottleneck port")
	}
	if got := deliver(t, f, 0, 2); got < 0 {
		t.Fatal("left->right delivery failed")
	}
	if f.Bottleneck.Stats().TxPackets == 0 {
		t.Fatal("bottleneck did not carry the packet")
	}
}

func TestPaperClosShape(t *testing.T) {
	c := PaperClos
	if c.Hosts() != 192 {
		t.Fatalf("paper Clos has %d hosts, want 192", c.Hosts())
	}
	eng := sim.NewEngine(1)
	f := Clos(eng, c, testParams())
	if len(f.Net.Hosts) != 192 {
		t.Fatalf("built %d hosts", len(f.Net.Hosts))
	}
	// 8 core + 16 agg + 32 ToR = 56 switches.
	if len(f.Net.Switches) != 56 {
		t.Fatalf("built %d switches, want 56", len(f.Net.Switches))
	}
	// 32 ToR × 2 uplinks.
	if len(f.TorUplinks) != 64 {
		t.Fatalf("%d ToR uplinks, want 64", len(f.TorUplinks))
	}
	// Racks: 6 hosts per rack, 32 racks.
	if f.RackOf[0] != 0 || f.RackOf[5] != 0 || f.RackOf[6] != 1 || f.RackOf[191] != 31 {
		t.Fatalf("rack assignment wrong: %v...", f.RackOf[:8])
	}
}

func TestClosAllPairsConnectivity(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, SmallClos, testParams())
	n := len(f.Net.Hosts)
	// Spot-check a spread of pairs including intra-rack, intra-pod, and
	// cross-pod.
	pairs := [][2]int{{0, 1}, {0, 7}, {0, n - 1}, {n - 1, 0}, {13, 25}, {25, 13}}
	for _, pr := range pairs {
		if got := deliver(t, f, pr[0], pr[1]); got < 0 {
			t.Fatalf("no delivery %d->%d", pr[0], pr[1])
		}
	}
}

func TestClosBaseRTT(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, PaperClos, testParams())
	// Cross-pod one-way: 6 links × 2us prop + 1us host delay + 6×serialization.
	// Host 0 (pod 0) to host 191 (pod 7).
	oneWay := deliver(t, f, 0, 191)
	if oneWay < 0 {
		t.Fatal("no delivery")
	}
	ser := (40 * units.Gbps).TxTime(netem.MTUWire) // per hop store-and-forward
	want := 6*2*sim.Microsecond + 1*sim.Microsecond + 6*ser
	if oneWay != want {
		t.Fatalf("one-way latency %v, want %v", oneWay, want)
	}
	// Base RTT for a minimum-size probe both ways ≈ 28us as §6.2 states
	// (12 propagation traversals + 4 host delays, serialization excluded).
	base := 12*2*sim.Microsecond + 4*1*sim.Microsecond
	if base != 28*sim.Microsecond {
		t.Fatalf("base RTT parameterization drifted: %v", base)
	}
}

func TestClosECMPUsesAllUplinks(t *testing.T) {
	eng := sim.NewEngine(1)
	f := Clos(eng, PaperClos, testParams())
	// Blast flows from pod 0 to pod 1 and check multiple ToR uplinks carry
	// traffic.
	dst := f.Net.Host(30).NodeID() // some host in pod 1 (hosts 24..47)
	src := f.Net.Host(0)
	for fl := uint64(0); fl < 64; fl++ {
		src.Send(&netem.Packet{
			Kind: netem.KindLegacyData, Class: netem.ClassLegacy,
			Dst: dst, Flow: fl, Size: netem.MTUWire,
		})
	}
	eng.Run(5 * sim.Millisecond)
	used := 0
	for _, up := range f.TorUplinks[:2] { // ToR 0's two uplinks
		if up.Stats().TxPackets > 0 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("ECMP used %d of 2 uplinks of ToR0", used)
	}
}

func TestProfilesBuild(t *testing.T) {
	specs := []PortProfile{
		FlexPassProfile(Spec{}),
		OWFProfile(Spec{WQ: 0.3}),
		NaiveProfile(Spec{}),
		LayeringProfile(Spec{}),
		AltQueueProfile(Spec{}),
		HomaProfile(100 * units.KB),
		PlainProfile(100 * units.KB),
	}
	for i, prof := range specs {
		cfg := prof(40 * units.Gbps)
		if len(cfg.Queues) == 0 {
			t.Fatalf("profile %d built no queues", i)
		}
	}
	// FlexPass credit limit: wq=0.5 at 40G → 0.5×40G×84/1538 ≈ 1.09Gbps.
	cfg := FlexPassProfile(Spec{})(40 * units.Gbps)
	rl := cfg.Queues[0].RateLimit
	if rl < 1000*units.Mbps || rl > 1200*units.Mbps {
		t.Fatalf("credit rate limit = %v, want ~1.09Gbps", rl)
	}
}

func TestNaiveProfileClassifier(t *testing.T) {
	cfg := NaiveProfile(Spec{})(10 * units.Gbps)
	if cfg.Classify == nil {
		t.Fatal("naive profile needs a classifier")
	}
	if got := cfg.Classify(&netem.Packet{Class: netem.ClassCredit}); got != 0 {
		t.Fatalf("credit class -> queue %d, want 0", got)
	}
	for _, cl := range []netem.Class{netem.ClassFlex, netem.ClassLegacy} {
		if got := cfg.Classify(&netem.Packet{Class: cl}); got != 1 {
			t.Fatalf("class %d -> queue %d, want shared queue 1", cl, got)
		}
	}
	// Full-rate credits: limit ≈ C × 84/1538.
	want := netem.CreditRateFor(10*units.Gbps, 1.0)
	if cfg.Queues[0].RateLimit != want {
		t.Fatalf("naive credit limit %v, want %v", cfg.Queues[0].RateLimit, want)
	}
}

func TestOWFProfileNoSelectiveDropping(t *testing.T) {
	cfg := OWFProfile(Spec{WQ: 0.3})(40 * units.Gbps)
	if cfg.Queues[1].RedDropThreshold != 0 {
		t.Fatal("oWF Q1 must not selectively drop (pure ExpressPass)")
	}
	if cfg.Queues[1].ECNThreshold != 0 {
		t.Fatal("oWF Q1 must not mark (ExpressPass data is not ECT anyway)")
	}
	if cfg.Queues[1].Weight != 0.3 || cfg.Queues[2].Weight != 0.7 {
		t.Fatalf("oWF weights %v/%v, want 0.3/0.7", cfg.Queues[1].Weight, cfg.Queues[2].Weight)
	}
}

func TestAltQueueProfileShape(t *testing.T) {
	cfg := AltQueueProfile(Spec{})(40 * units.Gbps)
	if len(cfg.Queues) != 3 {
		t.Fatalf("%d queues", len(cfg.Queues))
	}
	// Reactive lives in Q2 with legacy: Q1 carries only paced proactive
	// data, so no red threshold there.
	if cfg.Queues[1].RedDropThreshold != 0 {
		t.Fatal("AltQ Q1 should not need selective dropping")
	}
	if cfg.Queues[2].ECNThreshold == 0 {
		t.Fatal("AltQ Q2 needs ECN for DCTCP and the reactive sub-flow")
	}
}

func TestHomaProfileEightPriorities(t *testing.T) {
	cfg := HomaProfile(100 * units.KB)(10 * units.Gbps)
	if len(cfg.Queues) != 8 {
		t.Fatalf("%d queues, want 8", len(cfg.Queues))
	}
	for i, q := range cfg.Queues {
		if q.Band != i {
			t.Fatalf("queue %d band %d; want strict priority ladder", i, q.Band)
		}
	}
	if cfg.Queues[0].ECNThreshold == 0 {
		t.Fatal("P0 needs the DCTCP marking threshold")
	}
}
