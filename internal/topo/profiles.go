package topo

import (
	"flexpass/internal/netem"
	"flexpass/internal/units"
)

// Spec parameterizes the queue layouts of §4.1/§6. Zero values get the
// paper's simulation defaults from Defaults.
type Spec struct {
	// WQ is w_q, the fraction of bandwidth reserved for the FlexPass (or
	// ExpressPass-under-oWF) queue. The credit queue's rate limit is
	// scaled to WQ so proactive data takes at most WQ of the line rate.
	WQ float64

	// FlexECN is the Q1 ECN marking threshold (65kB in §6.2).
	FlexECN units.ByteSize
	// FlexRed is the Q1 selective-dropping threshold for red (reactive)
	// packets (150kB in §6.2). Zero disables selective dropping.
	FlexRed units.ByteSize
	// LegacyECN is the legacy queue's DCTCP marking threshold (100kB).
	LegacyECN units.ByteSize
	// CreditCap is the credit queue's private buffer (<1KB in the paper).
	CreditCap units.ByteSize
}

// Defaults fills zero fields with the paper's §6.2 values.
func (s Spec) Defaults() Spec {
	if s.WQ == 0 {
		s.WQ = 0.5
	}
	if s.FlexECN == 0 {
		s.FlexECN = 65 * units.KB
	}
	if s.FlexRed == 0 {
		s.FlexRed = 150 * units.KB
	}
	if s.LegacyECN == 0 {
		s.LegacyECN = 100 * units.KB
	}
	if s.CreditCap == 0 {
		s.CreditCap = 1 * units.KB
	}
	return s
}

// creditLimit computes the credit-queue rate limit so that triggered data
// fills frac of the line rate.
func creditLimit(rate units.Rate, frac float64) units.Rate {
	return netem.CreditRateFor(rate, frac)
}

// FlexPassProfile is the paper's deployment layout: Q0 credits (strict
// priority, rate-limited to WQ), Q1 FlexPass data+control (DWRR weight WQ,
// ECN marking, red selective dropping), Q2 legacy (DWRR weight 1-WQ, ECN
// for DCTCP).
func FlexPassProfile(s Spec) PortProfile {
	s = s.Defaults()
	return func(rate units.Rate) netem.PortConfig {
		return netem.PortConfig{Queues: []netem.QueueConfig{
			{Name: "Q0-credit", Band: 0, CapBytes: s.CreditCap, RateLimit: creditLimit(rate, s.WQ)},
			{Name: "Q1-flex", Band: 1, Weight: s.WQ, ECNThreshold: s.FlexECN, RedDropThreshold: s.FlexRed},
			{Name: "Q2-legacy", Band: 1, Weight: 1 - s.WQ, ECNThreshold: s.LegacyECN},
		}}
	}
}

// OWFProfile is the oracle weighted-fair-queueing baseline: ExpressPass
// data in its own queue with the oracle weight (the true fraction of
// ExpressPass traffic), no ECN/selective dropping on Q1 (pure
// ExpressPass), legacy in Q2.
func OWFProfile(s Spec) PortProfile {
	s = s.Defaults()
	return func(rate units.Rate) netem.PortConfig {
		return netem.PortConfig{Queues: []netem.QueueConfig{
			{Name: "Q0-credit", Band: 0, CapBytes: s.CreditCap, RateLimit: creditLimit(rate, s.WQ)},
			{Name: "Q1-xpass", Band: 1, Weight: s.WQ},
			{Name: "Q2-legacy", Band: 1, Weight: 1 - s.WQ, ECNThreshold: s.LegacyECN},
		}}
	}
}

// NaiveProfile is the naïve ExpressPass deployment: credits at the full
// line-rate allocation, data and legacy traffic sharing one queue with the
// DCTCP marking threshold.
func NaiveProfile(s Spec) PortProfile {
	s = s.Defaults()
	return func(rate units.Rate) netem.PortConfig {
		return netem.PortConfig{
			Queues: []netem.QueueConfig{
				{Name: "Q0-credit", Band: 0, CapBytes: s.CreditCap, RateLimit: creditLimit(rate, 1.0)},
				{Name: "Q1-shared", Band: 1, ECNThreshold: s.LegacyECN},
			},
			Classify: func(p *netem.Packet) int {
				if p.Class == netem.ClassCredit {
					return 0
				}
				return 1
			},
		}
	}
}

// LayeringProfile is the LY scheme's network side, identical to the naïve
// layout (the layering happens at the host: a DCTCP window gates
// credit-triggered sends, and ExpressPass data is ECN-capable).
func LayeringProfile(s Spec) PortProfile { return NaiveProfile(s) }

// AltQueueProfile is the §4.3 "alternative queueing" ablation: proactive
// sub-flow data alone in Q1 (no selective dropping needed), reactive
// sub-flow data in Q2 together with legacy traffic.
func AltQueueProfile(s Spec) PortProfile {
	s = s.Defaults()
	return func(rate units.Rate) netem.PortConfig {
		return netem.PortConfig{Queues: []netem.QueueConfig{
			{Name: "Q0-credit", Band: 0, CapBytes: s.CreditCap, RateLimit: creditLimit(rate, s.WQ)},
			{Name: "Q1-pro", Band: 1, Weight: s.WQ},
			{Name: "Q2-mixed", Band: 1, Weight: 1 - s.WQ, ECNThreshold: s.LegacyECN},
		}}
	}
}

// HomaProfile builds 8 strict-priority queues (class = priority, 0 highest)
// with an ECN threshold on queue 0, where Fig 1(b) maps the DCTCP flows.
func HomaProfile(legacyECN units.ByteSize) PortProfile {
	return func(rate units.Rate) netem.PortConfig {
		qs := make([]netem.QueueConfig, 8)
		for i := range qs {
			qs[i] = netem.QueueConfig{Name: "P" + string(rune('0'+i)), Band: i}
		}
		qs[0].ECNThreshold = legacyECN
		return netem.PortConfig{Queues: qs}
	}
}

// PlainProfile is a single FIFO queue with a DCTCP ECN threshold — the
// 0%-deployment (all legacy) configuration.
func PlainProfile(legacyECN units.ByteSize) PortProfile {
	return func(rate units.Rate) netem.PortConfig {
		return netem.PortConfig{
			Queues:   []netem.QueueConfig{{Name: "Q0", ECNThreshold: legacyECN}},
			Classify: func(*netem.Packet) int { return 0 },
		}
	}
}
