// Package topo builds the simulated fabrics the paper evaluates on: a
// single-switch testbed (2-to-1 and 8-to-1 incast), a dumbbell, and the
// 3-tier Clos (§6.2: 8 core, 16 agg, 32 ToR, 192 hosts, 8×40G ports per
// switch, 3:1 ToR oversubscription).
package topo

import (
	"fmt"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// PortProfile builds the queue configuration for an egress port of the
// given line rate. Schemes provide profiles implementing the paper's queue
// layouts (Q0 credits / Q1 FlexPass / Q2 legacy, oracle WFQ, naïve single
// queue, Homa's 8 priorities).
type PortProfile func(rate units.Rate) netem.PortConfig

// Params carries fabric-wide constants.
type Params struct {
	LinkRate   units.Rate     // line rate of every link
	LinkDelay  sim.Time       // one-way propagation per link
	HostDelay  sim.Time       // per-packet host processing delay at send
	SwitchBuf  units.ByteSize // shared buffer per switch
	BufAlpha   float64        // dynamic threshold factor
	Profile    PortProfile    // queue layout applied to every port (switch and NIC)
	HostBufCap bool           // if true, host NICs also use a shared buffer of SwitchBuf
}

// CrossLink is one egress port whose propagation crosses a shard cut in
// a sharded build: the owning (From) shard serializes, the peer lives on
// the To shard. The harness installs the cross-shard hand-off on these.
type CrossLink struct {
	Port     *netem.Port
	From, To int
}

// Fabric is a built topology.
type Fabric struct {
	Net    *netem.Network
	RackOf []int // rack (ToR) index per host; -1 when rack-less (dumbbell sides)

	// TorUplinks lists ToR→Agg egress ports; their aggregate capacity
	// defines "network load" in §6.2. Empty for non-Clos fabrics.
	TorUplinks []*netem.Port

	// Bottleneck is the contended port in dumbbell/single-switch setups
	// (nil for Clos).
	Bottleneck *netem.Port

	// FlexQueueIndex is the queue index carrying FlexPass data in the
	// active profile (for occupancy sampling); -1 when not applicable.
	FlexQueueIndex int

	// Partition metadata for sharded builds (Shards == 1 on single-engine
	// fabrics; the slices are then nil). HostShard and SwitchShard follow
	// the network's host/switch registration order; Cross lists every
	// egress port whose wire crosses a shard cut.
	Shards      int
	HostShard   []int
	SwitchShard []int
	Cross       []CrossLink
}

// link creates the two directed ports of a full-duplex link between nodes a
// and b and wires routing-free delivery (the caller adds routes). Each
// directed port schedules on its owning node's engine: engA drives a→b,
// engB drives b→a — identical when the link stays inside one shard.
func link(engA, engB *sim.Engine, name string, a, b netem.Node, rate units.Rate, delay sim.Time, prof PortProfile, sharedA, sharedB *netem.SharedBuffer) (ab, ba *netem.Port) {
	ab = netem.NewPort(engA, name+":fwd", rate, delay, prof(rate), sharedA)
	ab.Connect(b)
	ba = netem.NewPort(engB, name+":rev", rate, delay, prof(rate), sharedB)
	ba.Connect(a)
	return ab, ba
}

// SingleSwitch builds n hosts hanging off one switch — the testbed shape
// (§6.1: 9 servers and one Tomahawk switch).
func SingleSwitch(eng *sim.Engine, n int, p Params) *Fabric {
	net := netem.NewNetwork(eng)
	shared := netem.NewSharedBuffer(p.SwitchBuf, p.BufAlpha)
	sw := netem.NewSwitch(eng, net.AllocID(), "sw0", shared)
	net.AddSwitch(sw)
	f := &Fabric{Net: net, FlexQueueIndex: 1}
	for i := 0; i < n; i++ {
		id := net.AllocID()
		nic := netem.NewPort(eng, fmt.Sprintf("h%d:nic", i), p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), nil)
		h := netem.NewHost(eng, id, fmt.Sprintf("h%d", i), nic, p.HostDelay)
		nic.Connect(sw)
		net.AddHost(h)
		// Switch egress toward the host.
		down := netem.NewPort(eng, fmt.Sprintf("sw0->h%d", i), p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), shared)
		down.Connect(h)
		sw.AddPort(down)
		sw.AddRoute(id, down)
		f.RackOf = append(f.RackOf, 0)
	}
	if len(sw.Ports()) > 0 {
		f.Bottleneck = sw.Ports()[0]
	}
	return f
}

// Dumbbell builds nL senders and nR receivers joined by two switches with a
// single bottleneck link of rate bottleneck (Fig 1: 10Gbps).
func Dumbbell(eng *sim.Engine, nL, nR int, bottleneck units.Rate, p Params) *Fabric {
	return dumbbellFabric(eng, eng, nL, nR, bottleneck, p)
}

// DumbbellSharded builds the dumbbell split at its natural cut — the
// bottleneck wire: swL and the left hosts on engL (shard 0), swR and the
// right hosts on engR (shard 1). The single-switch / N-to-1 testbed has
// no internal wire to cut and always stays one shard.
func DumbbellSharded(engL, engR *sim.Engine, nL, nR int, bottleneck units.Rate, p Params) *Fabric {
	return dumbbellFabric(engL, engR, nL, nR, bottleneck, p)
}

func dumbbellFabric(engL, engR *sim.Engine, nL, nR int, bottleneck units.Rate, p Params) *Fabric {
	sharded := engL != engR
	net := netem.NewNetwork(engL)
	sharedL := netem.NewSharedBuffer(p.SwitchBuf, p.BufAlpha)
	sharedR := netem.NewSharedBuffer(p.SwitchBuf, p.BufAlpha)
	swL := netem.NewSwitch(engL, net.AllocID(), "swL", sharedL)
	swR := netem.NewSwitch(engR, net.AllocID(), "swR", sharedR)
	net.AddSwitch(swL)
	net.AddSwitch(swR)

	lr, rl := link(engL, engR, "core", swL, swR, bottleneck, p.LinkDelay, p.Profile, sharedL, sharedR)
	swL.AddPort(lr)
	swR.AddPort(rl)

	f := &Fabric{Net: net, Bottleneck: lr, FlexQueueIndex: 1, Shards: 1}
	if sharded {
		f.Shards = 2
		f.SwitchShard = []int{0, 1}
		f.Cross = []CrossLink{{Port: lr, From: 0, To: 1}, {Port: rl, From: 1, To: 0}}
	}

	addHost := func(eng *sim.Engine, sw *netem.Switch, shared *netem.SharedBuffer, name string, shard int) netem.NodeID {
		id := net.AllocID()
		nic := netem.NewPort(eng, name+":nic", p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), nil)
		h := netem.NewHost(eng, id, name, nic, p.HostDelay)
		nic.Connect(sw)
		net.AddHost(h)
		down := netem.NewPort(eng, "sw->"+name, p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), shared)
		down.Connect(h)
		sw.AddPort(down)
		sw.AddRoute(id, down)
		f.RackOf = append(f.RackOf, -1)
		if sharded {
			f.HostShard = append(f.HostShard, shard)
		}
		return id
	}
	var left, right []netem.NodeID
	for i := 0; i < nL; i++ {
		left = append(left, addHost(engL, swL, sharedL, fmt.Sprintf("l%d", i), 0))
	}
	for i := 0; i < nR; i++ {
		right = append(right, addHost(engR, swR, sharedR, fmt.Sprintf("r%d", i), 1))
	}
	for _, id := range right {
		swL.AddRoute(id, lr)
	}
	for _, id := range left {
		swR.AddRoute(id, rl)
	}
	return f
}

// ClosParams sizes a 3-tier Clos. Cores must be divisible by AggPerPod;
// each agg in a pod uplinks to Cores/AggPerPod distinct cores.
type ClosParams struct {
	Pods        int
	AggPerPod   int
	TorPerPod   int
	HostsPerTor int
	Cores       int
}

// PaperClos is the §6.2 fabric: 8 core, 16 agg (2/pod × 8 pods), 32 ToR,
// 192 hosts, 3:1 oversubscription at the ToR (6 down / 2 up).
var PaperClos = ClosParams{Pods: 8, AggPerPod: 2, TorPerPod: 4, HostsPerTor: 6, Cores: 8}

// SmallClos is a scaled-down fabric with the same 3:1 ToR oversubscription
// for tests and benchmarks: 2 core, 4 agg, 8 ToR, 48 hosts.
var SmallClos = ClosParams{Pods: 4, AggPerPod: 1, TorPerPod: 2, HostsPerTor: 6, Cores: 2}

// BigClos is the sharded-scaling fabric: 8 core, 32 agg, 96 ToR, 768
// hosts with 4:1 ToR oversubscription (8 down / 2 up) — the ≥768-host
// Clos the parallel-engine benchmarks run web-search at load 0.8 on.
var BigClos = ClosParams{Pods: 16, AggPerPod: 2, TorPerPod: 6, HostsPerTor: 8, Cores: 8}

// Hosts returns the host count of the fabric.
func (c ClosParams) Hosts() int { return c.Pods * c.TorPerPod * c.HostsPerTor }

// ClosPodShards maps each pod to a shard for a sharded Clos build:
// contiguous, balanced pod blocks, at most one shard per pod (the finest
// cut keeps every ToR/agg subtree — and its hosts — on one engine; the
// core switches always ride shard 0). The effective shard count is
// min(want, Pods); want ≤ 1 yields the all-zeros single-shard plan.
func ClosPodShards(c ClosParams, want int) []int {
	if want > c.Pods {
		want = c.Pods
	}
	if want < 1 {
		want = 1
	}
	podShard := make([]int, c.Pods)
	for pod := range podShard {
		podShard[pod] = pod * want / c.Pods
	}
	return podShard
}

// Shards returns the shard count a pod→shard plan uses.
func Shards(podShard []int) int {
	max := 0
	for _, s := range podShard {
		if s > max {
			max = s
		}
	}
	return max + 1
}

// Clos builds the 3-tier fabric with ECMP routing and symmetric hashing.
func Clos(eng *sim.Engine, c ClosParams, p Params) *Fabric {
	return closFabric([]*sim.Engine{eng}, nil, c, p)
}

// ClosSharded builds the same fabric as Clos partitioned across the
// given engines: pod pod's switches, hosts, and ports schedule on
// engs[podShard[pod]]; the core switches on engs[0]. Construction order,
// node IDs, port names, and routing are identical to Clos — only the
// engine each node schedules on differs — and every wire whose endpoints
// land on different engines is reported in Fabric.Cross for the caller
// to bridge (netem.Port.SetRemote).
func ClosSharded(engs []*sim.Engine, podShard []int, c ClosParams, p Params) *Fabric {
	if len(podShard) != c.Pods {
		panic("topo: podShard length != Pods")
	}
	for _, s := range podShard {
		if s < 0 || s >= len(engs) {
			panic("topo: podShard entry out of engine range")
		}
	}
	return closFabric(engs, podShard, c, p)
}

// closFabric is the shared Clos builder. podShard == nil means the
// single-engine build (everything on engs[0]).
func closFabric(engs []*sim.Engine, podShard []int, c ClosParams, p Params) *Fabric {
	if c.Cores%c.AggPerPod != 0 {
		panic("topo: Cores must be divisible by AggPerPod")
	}
	upPerAgg := c.Cores / c.AggPerPod
	shardOfPod := func(pod int) int {
		if podShard == nil {
			return 0
		}
		return podShard[pod]
	}
	eng := engs[0] // core tier and the network container
	net := netem.NewNetwork(eng)
	f := &Fabric{Net: net, FlexQueueIndex: 1, Shards: 1}
	if podShard != nil {
		f.Shards = len(engs)
	}

	newSwitch := func(e *sim.Engine, name string, shard int) *netem.Switch {
		sh := netem.NewSharedBuffer(p.SwitchBuf, p.BufAlpha)
		sw := netem.NewSwitch(e, net.AllocID(), name, sh)
		net.AddSwitch(sw)
		if podShard != nil {
			f.SwitchShard = append(f.SwitchShard, shard)
		}
		return sw
	}

	cores := make([]*netem.Switch, c.Cores)
	for i := range cores {
		cores[i] = newSwitch(eng, fmt.Sprintf("core%d", i), 0)
	}
	aggs := make([][]*netem.Switch, c.Pods) // [pod][a]
	tors := make([][]*netem.Switch, c.Pods) // [pod][t]
	hostIDs := make([][][]netem.NodeID, c.Pods)
	for pod := 0; pod < c.Pods; pod++ {
		podEng := engs[shardOfPod(pod)]
		aggs[pod] = make([]*netem.Switch, c.AggPerPod)
		for a := range aggs[pod] {
			aggs[pod][a] = newSwitch(podEng, fmt.Sprintf("agg%d.%d", pod, a), shardOfPod(pod))
		}
		tors[pod] = make([]*netem.Switch, c.TorPerPod)
		hostIDs[pod] = make([][]netem.NodeID, c.TorPerPod)
		for t := range tors[pod] {
			tors[pod][t] = newSwitch(podEng, fmt.Sprintf("tor%d.%d", pod, t), shardOfPod(pod))
		}
	}

	// Hosts and host<->ToR links.
	rack := 0
	for pod := 0; pod < c.Pods; pod++ {
		podEng := engs[shardOfPod(pod)]
		for t := 0; t < c.TorPerPod; t++ {
			tor := tors[pod][t]
			for hidx := 0; hidx < c.HostsPerTor; hidx++ {
				id := net.AllocID()
				name := fmt.Sprintf("h%d.%d.%d", pod, t, hidx)
				nic := netem.NewPort(podEng, name+":nic", p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), nil)
				h := netem.NewHost(podEng, id, name, nic, p.HostDelay)
				nic.Connect(tor)
				net.AddHost(h)
				if podShard != nil {
					f.HostShard = append(f.HostShard, shardOfPod(pod))
				}
				down := netem.NewPort(podEng, tor.Name()+"->"+name, p.LinkRate, p.LinkDelay, p.Profile(p.LinkRate), tor.Shared())
				down.Connect(h)
				tor.AddPort(down)
				tor.AddRoute(id, down)
				hostIDs[pod][t] = append(hostIDs[pod][t], id)
				f.RackOf = append(f.RackOf, rack)
			}
			rack++
		}
	}

	// ToR <-> Agg links: every ToR connects to every agg of its pod.
	torUp := make([][][]*netem.Port, c.Pods) // [pod][t][a] ToR→agg
	aggDown := make([][][]*netem.Port, c.Pods)
	for pod := 0; pod < c.Pods; pod++ {
		torUp[pod] = make([][]*netem.Port, c.TorPerPod)
		aggDown[pod] = make([][]*netem.Port, c.AggPerPod)
		for a := 0; a < c.AggPerPod; a++ {
			aggDown[pod][a] = make([]*netem.Port, c.TorPerPod)
		}
		for t := 0; t < c.TorPerPod; t++ {
			tor := tors[pod][t]
			podEng := engs[shardOfPod(pod)]
			torUp[pod][t] = make([]*netem.Port, c.AggPerPod)
			for a := 0; a < c.AggPerPod; a++ {
				agg := aggs[pod][a]
				up, down := link(podEng, podEng, fmt.Sprintf("%s<->%s", tor.Name(), agg.Name()),
					tor, agg, p.LinkRate, p.LinkDelay, p.Profile, tor.Shared(), agg.Shared())
				tor.AddPort(up)
				agg.AddPort(down)
				torUp[pod][t][a] = up
				aggDown[pod][a][t] = down
				f.TorUplinks = append(f.TorUplinks, up)
			}
		}
	}

	// Agg <-> Core links: agg a uplinks to cores [a*upPerAgg, (a+1)*upPerAgg).
	aggUp := make([][][]*netem.Port, c.Pods)   // [pod][a][u]
	coreDown := make([][]*netem.Port, c.Cores) // [core][pod]
	for i := range coreDown {
		coreDown[i] = make([]*netem.Port, c.Pods)
	}
	for pod := 0; pod < c.Pods; pod++ {
		sp := shardOfPod(pod)
		podEng := engs[sp]
		aggUp[pod] = make([][]*netem.Port, c.AggPerPod)
		for a := 0; a < c.AggPerPod; a++ {
			agg := aggs[pod][a]
			for u := 0; u < upPerAgg; u++ {
				coreIdx := a*upPerAgg + u
				core := cores[coreIdx]
				up, down := link(podEng, eng, fmt.Sprintf("%s<->%s", agg.Name(), core.Name()),
					agg, core, p.LinkRate, p.LinkDelay, p.Profile, agg.Shared(), core.Shared())
				agg.AddPort(up)
				core.AddPort(down)
				aggUp[pod][a] = append(aggUp[pod][a], up)
				coreDown[coreIdx][pod] = down
				if sp != 0 {
					f.Cross = append(f.Cross,
						CrossLink{Port: up, From: sp, To: 0},
						CrossLink{Port: down, From: 0, To: sp})
				}
			}
		}
	}

	// Routing.
	for pod := 0; pod < c.Pods; pod++ {
		// ToR routes: other hosts via agg uplinks (ECMP across aggs).
		for t := 0; t < c.TorPerPod; t++ {
			tor := tors[pod][t]
			for p2 := 0; p2 < c.Pods; p2++ {
				for t2 := 0; t2 < c.TorPerPod; t2++ {
					if p2 == pod && t2 == t {
						continue
					}
					for _, dst := range hostIDs[p2][t2] {
						tor.AddRoute(dst, torUp[pod][t]...)
					}
				}
			}
		}
		// Agg routes: intra-pod hosts down to their ToR, inter-pod up to
		// cores (ECMP across this agg's uplinks).
		for a := 0; a < c.AggPerPod; a++ {
			agg := aggs[pod][a]
			for t := 0; t < c.TorPerPod; t++ {
				for _, dst := range hostIDs[pod][t] {
					agg.AddRoute(dst, aggDown[pod][a][t])
				}
			}
			for p2 := 0; p2 < c.Pods; p2++ {
				if p2 == pod {
					continue
				}
				for t2 := 0; t2 < c.TorPerPod; t2++ {
					for _, dst := range hostIDs[p2][t2] {
						agg.AddRoute(dst, aggUp[pod][a]...)
					}
				}
			}
		}
	}
	// Core routes: each pod's hosts via the core's link to that pod's agg.
	for coreIdx := 0; coreIdx < c.Cores; coreIdx++ {
		for pod := 0; pod < c.Pods; pod++ {
			down := coreDown[coreIdx][pod]
			if down == nil {
				continue
			}
			for t := 0; t < c.TorPerPod; t++ {
				for _, dst := range hostIDs[pod][t] {
					cores[coreIdx].AddRoute(dst, down)
				}
			}
		}
	}
	return f
}
