// Package forensics answers "where did this packet spend its time and
// which invariant broke first" for a simulation run: it records
// hop-by-hop packet events from the netem data plane, assembles them —
// together with transport lifecycle trace events — into per-flow
// timelines with a queueing-delay breakdown, and runs observation-only
// invariant auditors on the engine clock.
//
// Everything here is strictly read-only with respect to the simulation:
// the recorder and auditors never send packets, mutate flows, or draw
// from the engine's random stream, so enabling forensics leaves flow
// results byte-identical to a plain run with the same seed (the harness
// tests assert exactly this). In a deterministic simulator that makes
// hop records exact INT-style path metadata with zero measurement noise.
package forensics

import (
	"fmt"
	"io"
	"sort"

	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
)

// Options configures forensic collection (harness Scenario.Forensics).
// The zero value enables hop recording on every flow with sane caps and
// the full auditor set.
type Options struct {
	// Flows restricts hop recording to these flow IDs (nil records all).
	// Flows listed here always get an exported timeline, in addition to
	// the worst-slowdown ones.
	Flows []uint64

	// HopCap bounds the hop records kept per flow; the newest records
	// win (a ring, like trace.Ring). Default 2048.
	HopCap int

	// MaxFlows bounds how many distinct flows are recorded. Default 4096.
	MaxFlows int

	// Timelines is how many worst-slowdown flow timelines the harness
	// exports on completion. Default 4.
	Timelines int

	// AuditEvery is the auditor tick period. Default 100µs; negative
	// disables the auditors entirely.
	AuditEvery sim.Time

	// StarveAfter is how long a started, incomplete flow may go without
	// receiving a byte before the starvation watchdog flags it.
	// Default 10ms.
	StarveAfter sim.Time

	// MaxViolations bounds retained auditor findings. Default 1024.
	MaxViolations int

	// WrapCreditAccountant is a test seam: when set, the harness passes
	// its credit accounting closures (issued, consumed, dropped) through
	// it before handing them to the credit-conservation auditor. Tests
	// install deliberately broken accountants to prove violations reach
	// the exported artifact. Production runs leave it nil.
	WrapCreditAccountant func(issued, consumed, dropped func() int64) (func() int64, func() int64, func() int64)
}

func (o *Options) hopCap() int {
	if o == nil || o.HopCap <= 0 {
		return 2048
	}
	return o.HopCap
}

func (o *Options) maxFlows() int {
	if o == nil || o.MaxFlows <= 0 {
		return 4096
	}
	return o.MaxFlows
}

func (o *Options) timelines() int {
	if o == nil || o.Timelines <= 0 {
		return 4
	}
	return o.Timelines
}

func (o *Options) auditEvery() sim.Time {
	if o == nil || o.AuditEvery == 0 {
		return 100 * sim.Microsecond
	}
	return o.AuditEvery
}

func (o *Options) starveAfter() sim.Time {
	if o == nil || o.StarveAfter <= 0 {
		return 10 * sim.Millisecond
	}
	return o.StarveAfter
}

func (o *Options) maxViolations() int {
	if o == nil || o.MaxViolations <= 0 {
		return 1024
	}
	return o.MaxViolations
}

// HopEvent says what happened to a packet at a port.
type HopEvent uint8

// Hop events.
const (
	HopEnq HopEvent = iota
	HopDeq
	HopDrop
)

var hopEventNames = [...]string{"enq", "deq", "drop"}

// String names the event.
func (e HopEvent) String() string {
	if int(e) < len(hopEventNames) {
		return hopEventNames[e]
	}
	return "unknown"
}

// HopRecord is one packet event at one port.
type HopRecord struct {
	At    sim.Time
	Port  string
	Queue int // -1 for fault drops (pre-classification)
	Ev    HopEvent
	Kind  netem.Kind
	Seq   uint32
	Color netem.Color

	Wait   sim.Time         // HopDeq: time spent queued at this port
	Tx     sim.Time         // HopDeq: serialization time
	QBytes int64            // HopEnq: queue occupancy including this packet
	Reason netem.DropReason // HopDrop only
}

// flowLog is a per-flow ring of hop records; the newest HopCap win.
type flowLog struct {
	recs    []HopRecord
	next    int
	wrapped bool
	dropped int64
}

func (l *flowLog) add(cap int, rec HopRecord) {
	if len(l.recs) < cap {
		l.recs = append(l.recs, rec)
		return
	}
	l.recs[l.next] = rec
	l.next = (l.next + 1) % len(l.recs)
	l.wrapped = true
	l.dropped++
}

func (l *flowLog) events() []HopRecord {
	if !l.wrapped {
		out := make([]HopRecord, len(l.recs))
		copy(out, l.recs)
		return out
	}
	out := make([]HopRecord, 0, len(l.recs))
	out = append(out, l.recs[l.next:]...)
	out = append(out, l.recs[:l.next]...)
	return out
}

// Recorder implements netem.HopObserver, bucketing hop records per flow.
// A nil *Recorder is a valid no-op observer component, but note that
// installing a nil Recorder via netem.SetHopObserver still costs an
// interface dispatch per packet event — leave the observer unset to pay
// nothing.
type Recorder struct {
	hopCap   int
	maxFlows int
	only     map[uint64]struct{}
	flows    map[uint64]*flowLog
	order    []uint64 // first-seen order: deterministic iteration
	skipped  int64    // records not kept (flow cap / filter overflow)
}

// NewRecorder builds a hop recorder from opts (nil means defaults).
func NewRecorder(opts *Options) *Recorder {
	r := &Recorder{
		hopCap:   opts.hopCap(),
		maxFlows: opts.maxFlows(),
		flows:    make(map[uint64]*flowLog),
	}
	if opts != nil && len(opts.Flows) > 0 {
		r.only = make(map[uint64]struct{}, len(opts.Flows))
		for _, f := range opts.Flows {
			r.only[f] = struct{}{}
		}
	}
	return r
}

func (r *Recorder) log(flow uint64) *flowLog {
	if r.only != nil {
		if _, ok := r.only[flow]; !ok {
			return nil
		}
	}
	l := r.flows[flow]
	if l == nil {
		if len(r.flows) >= r.maxFlows {
			r.skipped++
			return nil
		}
		l = &flowLog{}
		r.flows[flow] = l
		r.order = append(r.order, flow)
	}
	return l
}

// HopEnqueue implements netem.HopObserver.
func (r *Recorder) HopEnqueue(now sim.Time, p *netem.Port, queue int, pkt *netem.Packet, qBytes int64) {
	if r == nil {
		return
	}
	if l := r.log(pkt.Flow); l != nil {
		l.add(r.hopCap, HopRecord{
			At: now, Port: p.Name(), Queue: queue, Ev: HopEnq,
			Kind: pkt.Kind, Seq: pkt.Seq, Color: pkt.Color, QBytes: qBytes,
		})
	}
}

// HopDequeue implements netem.HopObserver.
func (r *Recorder) HopDequeue(now sim.Time, p *netem.Port, queue int, pkt *netem.Packet, waited, tx sim.Time) {
	if r == nil {
		return
	}
	if l := r.log(pkt.Flow); l != nil {
		l.add(r.hopCap, HopRecord{
			At: now, Port: p.Name(), Queue: queue, Ev: HopDeq,
			Kind: pkt.Kind, Seq: pkt.Seq, Color: pkt.Color, Wait: waited, Tx: tx,
		})
	}
}

// HopDrop implements netem.HopObserver.
func (r *Recorder) HopDrop(now sim.Time, p *netem.Port, queue int, pkt *netem.Packet, reason netem.DropReason) {
	if r == nil {
		return
	}
	if l := r.log(pkt.Flow); l != nil {
		l.add(r.hopCap, HopRecord{
			At: now, Port: p.Name(), Queue: queue, Ev: HopDrop,
			Kind: pkt.Kind, Seq: pkt.Seq, Color: pkt.Color, Reason: reason,
		})
	}
}

// Flows returns the recorded flow IDs in first-seen order.
func (r *Recorder) Flows() []uint64 {
	if r == nil {
		return nil
	}
	out := make([]uint64, len(r.order))
	copy(out, r.order)
	return out
}

// Hops returns flow's retained hop records in chronological order.
func (r *Recorder) Hops(flow uint64) []HopRecord {
	if r == nil {
		return nil
	}
	l := r.flows[flow]
	if l == nil {
		return nil
	}
	return l.events()
}

// HopsDropped reports how many of flow's records the per-flow cap displaced.
func (r *Recorder) HopsDropped(flow uint64) int64 {
	if r == nil || r.flows[flow] == nil {
		return 0
	}
	return r.flows[flow].dropped
}

// Skipped reports records not kept because of the flow-count cap.
func (r *Recorder) Skipped() int64 {
	if r == nil {
		return 0
	}
	return r.skipped
}

// HopDelay aggregates a flow's queueing behaviour at one port.
type HopDelay struct {
	Port      string
	Dequeues  int64
	Drops     int64
	TotalWait sim.Time
	MaxWait   sim.Time
}

// Timeline is one flow's assembled forensic record.
type Timeline struct {
	Flow      uint64
	Transport string
	Size      int64
	Start     sim.Time
	FCT       sim.Time // -1 when incomplete
	Slowdown  float64  // FCT / ideal FCT estimate (0 if unknown)

	Hops        []HopRecord
	HopsDropped int64
	PerHop      []HopDelay    // per-port aggregation, first-traversed order
	Events      []trace.Event // transport lifecycle events for this flow
}

// Timeline assembles flow fl's timeline from the recorder's hop records
// and the transport trace ring (either may be empty/nil).
func (r *Recorder) Timeline(fl *transport.Flow, ring *trace.Ring) *Timeline {
	t := &Timeline{
		Flow:      fl.ID,
		Transport: fl.Transport,
		Size:      fl.Size,
		Start:     fl.Start,
		FCT:       fl.FCT(),
	}
	t.Hops = r.Hops(fl.ID)
	t.HopsDropped = r.HopsDropped(fl.ID)
	t.PerHop = aggregate(t.Hops)
	if ring != nil {
		t.Events = ring.Filter(func(ev trace.Event) bool { return ev.Flow == fl.ID })
	}
	return t
}

// aggregate folds hop records into per-port delay summaries, keeping
// ports in first-traversed order.
func aggregate(hops []HopRecord) []HopDelay {
	idx := map[string]int{}
	var out []HopDelay
	at := func(port string) *HopDelay {
		i, ok := idx[port]
		if !ok {
			i = len(out)
			idx[port] = i
			out = append(out, HopDelay{Port: port})
		}
		return &out[i]
	}
	for _, h := range hops {
		switch h.Ev {
		case HopDeq:
			d := at(h.Port)
			d.Dequeues++
			d.TotalWait += h.Wait
			if h.Wait > d.MaxWait {
				d.MaxWait = h.Wait
			}
		case HopDrop:
			at(h.Port).Drops++
		}
	}
	return out
}

// Export converts the timeline to its artifact form.
func (t *Timeline) Export() obs.TimelineData {
	td := obs.TimelineData{
		Flow:        t.Flow,
		Transport:   t.Transport,
		Size:        t.Size,
		StartPs:     int64(t.Start),
		FctPs:       int64(t.FCT),
		Slowdown:    t.Slowdown,
		HopsDropped: t.HopsDropped,
	}
	for _, h := range t.Hops {
		hd := obs.HopData{
			AtPs: int64(h.At), Port: h.Port, Queue: h.Queue,
			Event: h.Ev.String(), Kind: h.Kind.String(), Seq: h.Seq,
		}
		if h.Color != 0 {
			hd.Color = h.Color.String()
		}
		switch h.Ev {
		case HopDeq:
			hd.WaitPs = int64(h.Wait)
			hd.TxPs = int64(h.Tx)
		case HopEnq:
			hd.QueueBytes = h.QBytes
		case HopDrop:
			hd.Reason = h.Reason.String()
		}
		td.Hops = append(td.Hops, hd)
	}
	for _, d := range t.PerHop {
		td.Delays = append(td.Delays, obs.HopDelayData{
			Port: d.Port, Dequeues: d.Dequeues, Drops: d.Drops,
			TotalWaitPs: int64(d.TotalWait), MaxWaitPs: int64(d.MaxWait),
		})
	}
	for _, ev := range t.Events {
		td.Events = append(td.Events, obs.TraceData{
			AtPs: int64(ev.At), Kind: ev.Kind.String(),
			Flow: ev.Flow, Seq: ev.Seq, Note: ev.Note,
		})
	}
	return td
}

// Dump writes a human-readable rendering of the timeline.
func (t *Timeline) Dump(w io.Writer) error {
	fct := "incomplete"
	if t.FCT >= 0 {
		fct = t.FCT.String()
	}
	if _, err := fmt.Fprintf(w, "flow %d %s size=%dB start=%v fct=%s slowdown=%.2f\n",
		t.Flow, t.Transport, t.Size, t.Start, fct, t.Slowdown); err != nil {
		return err
	}
	if len(t.PerHop) > 0 {
		fmt.Fprintf(w, "  per-hop queueing delay:\n")
		for _, d := range t.PerHop {
			avg := sim.Time(0)
			if d.Dequeues > 0 {
				avg = d.TotalWait / sim.Time(d.Dequeues)
			}
			fmt.Fprintf(w, "    %-28s %5d pkts  avg %-10v max %-10v drops %d\n",
				d.Port, d.Dequeues, avg, d.MaxWait, d.Drops)
		}
	}
	for _, ev := range t.Events {
		fmt.Fprintf(w, "  %12v %-12s seq=%d %s\n", ev.At, ev.Kind, ev.Seq, ev.Note)
	}
	return nil
}

// Report is the harness-facing result of a forensic run: auditor
// findings plus exported timelines.
type Report struct {
	Violations        []Violation
	ViolationsDropped int64
	Timelines         []*Timeline
}

// Export converts the report to artifact lines (violations first).
func (r *Report) Export() []obs.ForensicsData {
	if r == nil {
		return nil
	}
	out := make([]obs.ForensicsData, 0, len(r.Violations)+len(r.Timelines))
	for _, v := range r.Violations {
		vd := v.Export()
		out = append(out, obs.ForensicsData{Violation: &vd})
	}
	for _, t := range r.Timelines {
		td := t.Export()
		out = append(out, obs.ForensicsData{Timeline: &td})
	}
	return out
}

// WorstTimelines builds timelines for the opts.Timelines worst-slowdown
// flows (plus every flow in opts.Flows, regardless of rank). slowdown
// estimates a flow's ideal-relative completion cost; incomplete flows
// rank worst of all.
func WorstTimelines(rec *Recorder, ring *trace.Ring, flows []*transport.Flow,
	slowdown func(*transport.Flow) float64, opts *Options) []*Timeline {
	if rec == nil || len(flows) == 0 {
		return nil
	}
	n := opts.timelines()
	var must []uint64
	if opts != nil {
		must = opts.Flows
	}
	type ranked struct {
		fl    *transport.Flow
		score float64
	}
	var rs []ranked
	for _, fl := range flows {
		s := slowdown(fl)
		if !fl.Completed {
			// Incomplete flows are the prime forensic suspects.
			s = 1e18 + float64(fl.Size-fl.RxBytes)
		}
		rs = append(rs, ranked{fl, s})
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].score > rs[j].score })
	want := map[uint64]bool{}
	for _, id := range must {
		want[id] = true
	}
	var out []*Timeline
	taken := map[uint64]bool{}
	add := func(fl *transport.Flow, score float64) {
		if taken[fl.ID] {
			return
		}
		taken[fl.ID] = true
		t := rec.Timeline(fl, ring)
		if fl.Completed {
			t.Slowdown = score
		}
		out = append(out, t)
	}
	for _, r := range rs {
		if len(out) >= n {
			break
		}
		add(r.fl, r.score)
	}
	for _, r := range rs {
		if want[r.fl.ID] {
			add(r.fl, r.score)
		}
	}
	return out
}
