package forensics

import (
	"fmt"

	"flexpass/internal/netem"
	"flexpass/internal/obs"
	"flexpass/internal/sim"
	"flexpass/internal/transport"
)

// Invariant auditors: observation-only checks scheduled on the engine
// clock (sim.Engine.Every). A check reads simulation state and emits
// violations; it must never mutate anything, so a run with auditors
// enabled is byte-identical to one without.

// Violation is one auditor finding.
type Violation struct {
	At      sim.Time
	Auditor string
	Entity  string
	Flow    uint64
	Detail  string
}

// Export converts the violation to its artifact form.
func (v Violation) Export() obs.ViolationData {
	return obs.ViolationData{
		AtPs: int64(v.At), Auditor: v.Auditor,
		Entity: v.Entity, Flow: v.Flow, Detail: v.Detail,
	}
}

func (v Violation) String() string {
	s := fmt.Sprintf("%v [%s]", v.At, v.Auditor)
	if v.Entity != "" {
		s += " " + v.Entity
	}
	if v.Flow != 0 {
		s += fmt.Sprintf(" flow=%d", v.Flow)
	}
	return s + ": " + v.Detail
}

// Check is one named invariant. Fn runs on every auditor tick; it
// reports findings through emit and must be strictly read-only.
type Check struct {
	Name string
	Fn   func(now sim.Time, emit func(entity string, flow uint64, detail string))
}

// Auditor periodically runs a set of checks.
type Auditor struct {
	eng        *sim.Engine
	every      sim.Time
	max        int
	checks     []Check
	violations []Violation
	dropped    int64
	started    bool
}

// NewAuditor builds an auditor ticking at the given period, retaining at
// most max violations (excess findings are counted, not kept).
func NewAuditor(eng *sim.Engine, every sim.Time, max int) *Auditor {
	if every <= 0 {
		every = 100 * sim.Microsecond
	}
	if max <= 0 {
		max = 1024
	}
	return &Auditor{eng: eng, every: every, max: max}
}

// Add registers a check.
func (a *Auditor) Add(c Check) {
	if a == nil || c.Fn == nil {
		return
	}
	a.checks = append(a.checks, c)
}

// Start schedules the periodic tick. Call once, before Engine.Run.
func (a *Auditor) Start() {
	if a == nil || a.started || len(a.checks) == 0 {
		return
	}
	a.started = true
	prev := a.eng.SetComponent(a.eng.Component("forensics/audit"))
	a.eng.Every(a.every, a.tick)
	a.eng.SetComponent(prev)
}

// tick runs every check once.
func (a *Auditor) tick() {
	now := a.eng.Now()
	for i := range a.checks {
		c := &a.checks[i]
		c.Fn(now, func(entity string, flow uint64, detail string) {
			if len(a.violations) >= a.max {
				a.dropped++
				return
			}
			a.violations = append(a.violations, Violation{
				At: now, Auditor: c.Name, Entity: entity, Flow: flow, Detail: detail,
			})
		})
	}
}

// Violations returns the retained findings in emission order.
func (a *Auditor) Violations() []Violation {
	if a == nil {
		return nil
	}
	out := make([]Violation, len(a.violations))
	copy(out, a.violations)
	return out
}

// Dropped reports findings discarded over the retention cap.
func (a *Auditor) Dropped() int64 {
	if a == nil {
		return 0
	}
	return a.dropped
}

// WireAudit builds the standard auditor set for a run: credit
// conservation over the given accounting closures (routed through
// opts.WrapCreditAccountant when set — the test seam), per-switch
// shared-buffer accounting, and the flow-progress starvation watchdog.
// Returns nil when opts disables auditing (AuditEvery < 0). The caller
// must Start the result before Engine.Run.
func WireAudit(eng *sim.Engine, opts *Options, net *netem.Network,
	flows func() []*transport.Flow, issued, consumed, dropped func() int64) *Auditor {
	if opts != nil && opts.AuditEvery < 0 {
		return nil
	}
	a := NewAuditor(eng, opts.auditEvery(), opts.maxViolations())
	if opts != nil && opts.WrapCreditAccountant != nil {
		issued, consumed, dropped = opts.WrapCreditAccountant(issued, consumed, dropped)
	}
	a.Add(CreditConservation(issued, consumed, dropped))
	for _, sw := range net.Switches {
		a.Add(BufferAccounting(sw))
	}
	a.Add(ProgressWatchdog(flows, opts.starveAfter()))
	return a
}

// CreditConservation checks that credits issued ≥ consumed + dropped:
// the in-flight credit population (issued minus consumed minus dropped)
// can never be negative. The closures sample the live accounting —
// issued at receivers' pacers, consumed at senders on credit-clocked
// transmissions, dropped at the fabric's rate-limited credit queues.
// A violation means the credit accounting itself is broken (the test
// suite provokes one through Options.WrapCreditAccountant).
func CreditConservation(issued, consumed, dropped func() int64) Check {
	return Check{
		Name: "credit-conservation",
		Fn: func(now sim.Time, emit func(string, uint64, string)) {
			i, c, d := issued(), consumed(), dropped()
			if c+d > i {
				emit("", 0, fmt.Sprintf(
					"credits consumed (%d) + dropped (%d) exceed issued (%d) by %d",
					c, d, i, c+d-i))
			}
		},
	}
}

// BufferAccounting checks a switch's Choudhury–Hahne pool: the bytes the
// shared buffer reports in use must equal the summed occupancy of the
// queues drawing from it (those without a private cap). The data plane
// charges the pool at enqueue and releases at dequeue within a single
// event, so the books must balance at every tick boundary.
func BufferAccounting(sw *netem.Switch) Check {
	entity := "switch/" + sw.Name()
	return Check{
		Name: "buffer-accounting",
		Fn: func(now sim.Time, emit func(string, uint64, string)) {
			sh := sw.Shared()
			if sh == nil {
				return
			}
			var sum int64
			for _, p := range sw.Ports() {
				for qi := 0; qi < p.NumQueues(); qi++ {
					if p.QueueConfig(qi).CapBytes == 0 {
						total, _ := p.QueueBytes(qi)
						sum += total
					}
				}
			}
			if sum != sh.Used() {
				emit(entity, 0, fmt.Sprintf(
					"shared-buffer skew: queues hold %dB, pool reports %dB", sum, sh.Used()))
			}
		},
	}
}

// ProgressWatchdog checks for starvation: a started, incomplete flow
// whose receive counter has not moved for starveAfter gets flagged
// (once per stall — progress rearms the watchdog). flows is sampled
// each tick so late-arriving flows are covered.
func ProgressWatchdog(flows func() []*transport.Flow, starveAfter sim.Time) Check {
	type watch struct {
		rx      int64
		since   sim.Time
		flagged bool
	}
	seen := make(map[uint64]*watch)
	return Check{
		Name: "starvation-watchdog",
		Fn: func(now sim.Time, emit func(string, uint64, string)) {
			for _, f := range flows() {
				if f.Completed {
					delete(seen, f.ID)
					continue
				}
				if now < f.Start {
					continue
				}
				w := seen[f.ID]
				if w == nil {
					seen[f.ID] = &watch{rx: f.RxBytes, since: now}
					continue
				}
				if f.RxBytes != w.rx {
					w.rx = f.RxBytes
					w.since = now
					w.flagged = false
					continue
				}
				if !w.flagged && now-w.since >= starveAfter {
					w.flagged = true
					emit("", f.ID, fmt.Sprintf(
						"no progress for %v (%s flow, %d of %d bytes received)",
						now-w.since, f.Transport, f.RxBytes, f.Size))
				}
			}
		},
	}
}
