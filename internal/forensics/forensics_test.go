package forensics

import (
	"bytes"
	"strings"
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
	"flexpass/internal/trace"
	"flexpass/internal/transport"
	"flexpass/internal/units"
)

// sink swallows delivered packets.
type sink struct{ id netem.NodeID }

func (s *sink) NodeID() netem.NodeID  { return s.id }
func (s *sink) Receive(*netem.Packet) {}

func testPort(eng *sim.Engine, cap units.ByteSize) *netem.Port {
	cfg := netem.PortConfig{Queues: []netem.QueueConfig{{Name: "Q0", CapBytes: cap}}}
	p := netem.NewPort(eng, "tor0-up", 10*units.Gbps, 0, cfg, nil)
	p.Connect(&sink{id: 9})
	return p
}

func TestRecorderCapturesHops(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil)
	p := testPort(eng, 0)
	p.SetHopObserver(rec)
	for i := 0; i < 3; i++ {
		p.Send(&netem.Packet{Flow: 7, Seq: uint32(i), Size: 1250})
	}
	eng.Run(sim.Second)

	hops := rec.Hops(7)
	if len(hops) != 6 { // enq+deq per packet
		t.Fatalf("got %d hop records, want 6: %+v", len(hops), hops)
	}
	var enq, deq int
	for _, h := range hops {
		switch h.Ev {
		case HopEnq:
			enq++
			if h.QBytes == 0 {
				t.Fatalf("enqueue record missing queue occupancy: %+v", h)
			}
		case HopDeq:
			deq++
			if h.Tx != sim.Microsecond { // 1250B at 10Gbps
				t.Fatalf("tx time = %v, want 1us", h.Tx)
			}
		}
		if h.Port != "tor0-up" || h.Queue != 0 {
			t.Fatalf("wrong hop identity: %+v", h)
		}
	}
	if enq != 3 || deq != 3 {
		t.Fatalf("enq=%d deq=%d, want 3/3", enq, deq)
	}
	// Packets 2 and 3 queued behind serialization: their waits are 1us, 2us.
	var waits []sim.Time
	for _, h := range hops {
		if h.Ev == HopDeq {
			waits = append(waits, h.Wait)
		}
	}
	if waits[0] != 0 || waits[1] != sim.Microsecond || waits[2] != 2*sim.Microsecond {
		t.Fatalf("queueing waits = %v, want [0 1us 2us]", waits)
	}
	if got := rec.Flows(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("Flows() = %v", got)
	}
}

func TestRecorderDropRecords(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil)
	p := testPort(eng, 2500) // room for two packets
	p.SetHopObserver(rec)
	for i := 0; i < 5; i++ {
		p.Send(&netem.Packet{Flow: 1, Seq: uint32(i), Size: 1250})
	}
	eng.Run(sim.Second)

	var drops int
	for _, h := range rec.Hops(1) {
		if h.Ev == HopDrop {
			drops++
			if h.Reason != netem.DropPrivateCap {
				t.Fatalf("drop reason = %v, want private-cap", h.Reason)
			}
		}
	}
	// One packet serializes immediately, two fit in the 2500B queue.
	if drops != 2 {
		t.Fatalf("recorded %d drops, want 2", drops)
	}
}

func TestRecorderCapsAndFilter(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(&Options{HopCap: 4, MaxFlows: 1, Flows: []uint64{1, 2}})
	p := testPort(eng, 0)
	p.SetHopObserver(rec)
	for i := 0; i < 8; i++ {
		p.Send(&netem.Packet{Flow: 1, Seq: uint32(i), Size: 125})
	}
	p.Send(&netem.Packet{Flow: 2, Size: 125}) // filtered in, but over MaxFlows
	p.Send(&netem.Packet{Flow: 3, Size: 125}) // filtered out
	eng.Run(sim.Second)

	hops := rec.Hops(1)
	if len(hops) != 4 {
		t.Fatalf("ring kept %d records, want 4", len(hops))
	}
	// The ring keeps the newest records in chronological order.
	for i := 1; i < len(hops); i++ {
		if hops[i].At < hops[i-1].At {
			t.Fatalf("records out of order: %+v", hops)
		}
	}
	if hops[len(hops)-1].Seq != 7 {
		t.Fatalf("newest record is seq %d, want 7", hops[len(hops)-1].Seq)
	}
	if rec.HopsDropped(1) != 12 { // 16 events, 4 kept
		t.Fatalf("HopsDropped = %d, want 12", rec.HopsDropped(1))
	}
	if rec.Hops(2) != nil || rec.Hops(3) != nil {
		t.Fatal("flow cap / filter leaked records")
	}
	if rec.Skipped() == 0 {
		t.Fatal("flow-cap skips not counted")
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	r.HopEnqueue(0, nil, 0, &netem.Packet{}, 0)
	r.HopDequeue(0, nil, 0, &netem.Packet{}, 0, 0)
	r.HopDrop(0, nil, 0, &netem.Packet{}, netem.DropFault)
	if r.Flows() != nil || r.Hops(1) != nil || r.HopsDropped(1) != 0 || r.Skipped() != 0 {
		t.Fatal("nil recorder accessors not empty")
	}
}

func TestAuditorEmissionAndCap(t *testing.T) {
	eng := sim.NewEngine(1)
	a := NewAuditor(eng, sim.Millisecond, 2)
	a.Add(Check{Name: "always", Fn: func(now sim.Time, emit func(string, uint64, string)) {
		emit("e", 5, "boom")
	}})
	a.Start()
	eng.Run(10 * sim.Millisecond)

	vs := a.Violations()
	if len(vs) != 2 {
		t.Fatalf("retained %d violations, want cap 2", len(vs))
	}
	if a.Dropped() == 0 {
		t.Fatal("over-cap findings not counted")
	}
	v := vs[0]
	if v.Auditor != "always" || v.Entity != "e" || v.Flow != 5 || v.At == 0 {
		t.Fatalf("violation fields wrong: %+v", v)
	}
	if s := v.String(); !strings.Contains(s, "always") || !strings.Contains(s, "boom") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCreditConservationCheck(t *testing.T) {
	issued, consumed, dropped := int64(10), int64(6), int64(4)
	c := CreditConservation(
		func() int64 { return issued },
		func() int64 { return consumed },
		func() int64 { return dropped })
	var got []string
	emit := func(_ string, _ uint64, d string) { got = append(got, d) }
	c.Fn(0, emit)
	if len(got) != 0 {
		t.Fatalf("balanced books flagged: %v", got)
	}
	issued = 9 // one credit unaccounted for
	c.Fn(0, emit)
	if len(got) != 1 || !strings.Contains(got[0], "exceed issued (9) by 1") {
		t.Fatalf("imbalance not flagged: %v", got)
	}
}

func TestWorstTimelines(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil)
	p := testPort(eng, 0)
	p.SetHopObserver(rec)
	for fl := uint64(1); fl <= 3; fl++ {
		p.Send(&netem.Packet{Flow: fl, Size: 1250})
	}
	ring := trace.NewRing(eng, 16)
	ring.Add(trace.FlowStart, 2, 5000, "test")
	eng.Run(sim.Second)

	mk := func(id uint64, done bool) *transport.Flow {
		f := &transport.Flow{ID: id, Size: 5000, Transport: "test"}
		if done {
			f.Complete(sim.Millisecond)
		}
		return f
	}
	flows := []*transport.Flow{mk(1, true), mk(2, true), mk(3, false)}
	score := map[uint64]float64{1: 2, 2: 10, 3: 1}
	slowdown := func(f *transport.Flow) float64 { return score[f.ID] }

	tls := WorstTimelines(rec, ring, flows, slowdown, &Options{Timelines: 2, Flows: []uint64{1}})
	if len(tls) != 3 {
		t.Fatalf("got %d timelines, want 2 worst + 1 must", len(tls))
	}
	// Incomplete flow 3 ranks worst, then flow 2; flow 1 rides along via must.
	if tls[0].Flow != 3 || tls[1].Flow != 2 || tls[2].Flow != 1 {
		t.Fatalf("timeline order = [%d %d %d], want [3 2 1]", tls[0].Flow, tls[1].Flow, tls[2].Flow)
	}
	if tls[0].FCT != -1 || tls[0].Slowdown != 0 {
		t.Fatalf("incomplete flow mis-rendered: %+v", tls[0])
	}
	if tls[1].Slowdown != 10 {
		t.Fatalf("flow 2 slowdown = %v, want 10", tls[1].Slowdown)
	}
	if len(tls[1].Events) != 1 || tls[1].Events[0].Kind != trace.FlowStart {
		t.Fatalf("flow 2 lifecycle events = %+v", tls[1].Events)
	}
	if len(tls[1].Hops) == 0 || len(tls[1].PerHop) != 1 || tls[1].PerHop[0].Dequeues != 1 {
		t.Fatalf("flow 2 hop data wrong: hops=%d perhop=%+v", len(tls[1].Hops), tls[1].PerHop)
	}
}

func TestTimelineExportAndDump(t *testing.T) {
	eng := sim.NewEngine(1)
	rec := NewRecorder(nil)
	p := testPort(eng, 2500)
	p.SetHopObserver(rec)
	for i := 0; i < 5; i++ {
		p.Send(&netem.Packet{Flow: 1, Seq: uint32(i), Size: 1250, Color: netem.Red})
	}
	ring := trace.NewRing(eng, 16)
	ring.Add(trace.Retransmit, 1, 3, "")
	eng.Run(sim.Second)

	fl := &transport.Flow{ID: 1, Size: 6250, Transport: "flexpass"}
	fl.Complete(10 * sim.Microsecond)
	tl := rec.Timeline(fl, ring)
	tl.Slowdown = 1.5

	td := tl.Export()
	if td.Flow != 1 || td.Transport != "flexpass" || td.FctPs != int64(10*sim.Microsecond) {
		t.Fatalf("export identity wrong: %+v", td)
	}
	var sawDeq, sawDrop bool
	for _, h := range td.Hops {
		if h.Color != "red" {
			t.Fatalf("color not exported: %+v", h)
		}
		switch h.Event {
		case "deq":
			sawDeq = true
			if h.TxPs == 0 {
				t.Fatalf("deq without tx time: %+v", h)
			}
		case "drop":
			sawDrop = true
			if h.Reason != "private-cap" {
				t.Fatalf("drop reason = %q", h.Reason)
			}
		}
	}
	if !sawDeq || !sawDrop {
		t.Fatalf("missing hop events: deq=%v drop=%v", sawDeq, sawDrop)
	}
	if len(td.Delays) != 1 || td.Delays[0].Drops != 2 || td.Delays[0].Dequeues != 3 {
		t.Fatalf("per-hop delays wrong: %+v", td.Delays)
	}
	if len(td.Events) != 1 || td.Events[0].Kind != "retx" {
		t.Fatalf("events wrong: %+v", td.Events)
	}

	var buf bytes.Buffer
	if err := tl.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"flow 1 flexpass", "per-hop queueing delay", "tor0-up", "retx"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}
