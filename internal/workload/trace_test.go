package workload

import (
	"math/rand"
	"strings"
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestTraceRoundTrip(t *testing.T) {
	p := BackgroundParams{
		CDF:            WebSearch,
		Hosts:          48,
		UplinkCapacity: 320 * units.Gbps,
		Load:           0.5,
		Duration:       5 * sim.Millisecond,
	}
	orig := p.Generate(rand.New(rand.NewSource(4)))
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip lost flows: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Src != orig[i].Src || got[i].Dst != orig[i].Dst || got[i].Size != orig[i].Size {
			t.Fatalf("flow %d differs: %+v vs %+v", i, got[i], orig[i])
		}
		// Arrival times round to the exported microsecond precision.
		d := got[i].At - orig[i].At
		if d < -sim.Microsecond || d > sim.Microsecond {
			t.Fatalf("flow %d arrival drifted by %v", i, d)
		}
	}
}

func TestReadTraceValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"wrong fields", "at_us,src,dst,size_bytes,incast\n1.0,2,3,100\n"},
		{"negative time", "at_us,src,dst,size_bytes,incast\n-1.0,2,3,100,0\n"},
		{"self flow", "at_us,src,dst,size_bytes,incast\n1.0,2,2,100,0\n"},
		{"zero size", "at_us,src,dst,size_bytes,incast\n1.0,2,3,0,0\n"},
		{"bad incast", "at_us,src,dst,size_bytes,incast\n1.0,2,3,100,7\n"},
		{"garbage src", "at_us,src,dst,size_bytes,incast\n1.0,x,3,100,0\n"},
	}
	for _, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestReadTraceSortsAndSkipsComments(t *testing.T) {
	in := "at_us,src,dst,size_bytes,incast\n# comment\n5.0,1,2,100,0\n\n1.0,3,4,200,1\n"
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 {
		t.Fatalf("parsed %d flows", len(flows))
	}
	if flows[0].Size != 200 || !flows[0].Incast {
		t.Fatalf("not sorted by arrival: %+v", flows[0])
	}
}

// Regression: a header preceded by comment or blank lines must still be
// recognized (the skip used to be pinned to line 1).
func TestReadTraceHeaderAfterComments(t *testing.T) {
	in := "# exported by flexsim -dump-trace\n\n# schema v1\nat_us,src,dst,size_bytes,incast\n1.0,2,3,100,0\n"
	flows, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 1 || flows[0].Src != 2 || flows[0].Dst != 3 {
		t.Fatalf("parsed %+v", flows)
	}
	// A header-looking line after data is data (and malformed), not a
	// header to skip silently.
	in = "1.0,2,3,100,0\nat_us,src,dst,size_bytes,incast\n"
	if _, err := ReadTrace(strings.NewReader(in)); err == nil {
		t.Fatal("header after data should be rejected, not skipped")
	}
}

func TestTraceIDStable(t *testing.T) {
	flows := []FlowSpec{
		{At: sim.Microsecond, Src: 0, Dst: 1, Size: 1000},
		{At: 2 * sim.Microsecond, Src: 1, Dst: 2, Size: 2000, Incast: true},
	}
	id := TraceID(flows)
	if !strings.HasPrefix(id, "trace:") || len(id) != len("trace:")+12 {
		t.Fatalf("bad trace ID %q", id)
	}
	if TraceID(flows) != id {
		t.Fatal("TraceID not deterministic")
	}
	// The identity follows content: reparsing the canonical CSV form
	// (e.g. after a dump/replay round trip) keeps the ID.
	var b strings.Builder
	if err := WriteTrace(&b, flows); err != nil {
		t.Fatal(err)
	}
	reread, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if TraceID(reread) != id {
		t.Fatalf("round trip changed the ID: %q vs %q", TraceID(reread), id)
	}
	if TraceID(flows[:1]) == id {
		t.Fatal("different flow lists share an ID")
	}
}
