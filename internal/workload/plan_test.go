package workload

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"flexpass/internal/planspec"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// testEnv is a mid-size scenario context: enough hosts and horizon for
// calibration statistics, small enough to keep the tests fast.
func testEnv() Env {
	return Env{
		Hosts:          48,
		UplinkCapacity: 320 * units.Gbps,
		Load:           0.5,
		Duration:       50 * sim.Millisecond,
	}
}

func mustGenerate(t *testing.T, p *Plan, env Env, seed int64) []FlowSpec {
	t.Helper()
	flows, err := p.Generate(env, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return flows
}

func TestParsePlanRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"unknown top-level field", `{"sources":[],"extra":1}`},
		{"unknown source field", `{"sources":[{"kind":"poisson","cdf":"websearch","typo":1}]}`},
		{"trailing data", `{"sources":[{"kind":"poisson","cdf":"websearch"}]} {}`},
		{"not json", `sources: poisson`},
		{"empty sources", `{"sources":[]}`},
		{"bad duration string", `{"sources":[{"kind":"onoff","cdf":"hadoop","on":"200 parsecs","off":"1ms"}]}`},
	}
	for _, c := range cases {
		if _, err := ParsePlan([]byte(c.in)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestValidateReportsSourceAndField(t *testing.T) {
	cases := []struct {
		name  string
		plan  Plan
		field string
	}{
		{"unknown kind", Plan{Sources: []Source{{Kind: "fractal"}}}, "kind"},
		{"missing cdf", Plan{Sources: []Source{{Kind: SrcPoisson}}}, "cdf"},
		{"unknown cdf", Plan{Sources: []Source{{Kind: SrcPoisson, CDF: "nope"}}}, "cdf"},
		{"background rate", Plan{Sources: []Source{{Kind: SrcPoisson, CDF: "websearch", Rate: 100}}}, "rate"},
		{"onoff no periods", Plan{Sources: []Source{{Kind: SrcOnOff, CDF: "hadoop"}}}, "on"},
		{"negative sigma", Plan{Sources: []Source{{Kind: SrcLognormal, CDF: "websearch", Sigma: -1}}}, "sigma"},
		{"incast no size", Plan{Sources: []Source{{Kind: SrcIncast, Fraction: 0.1}}}, "flow_size"},
		{"incast no rate", Plan{Sources: []Source{{Kind: SrcIncast, FlowSize: 8000}}}, "fraction"},
		{"rpc no fanout", Plan{Sources: []Source{{Kind: SrcRPC, RequestSize: 100, ResponseSize: 100, Rate: 1}}}, "fanout"},
		{"rpc no response", Plan{Sources: []Source{{Kind: SrcRPC, Fanout: 2, RequestSize: 100, Rate: 1}}}, "response_size"},
		{"rpc no rate", Plan{Sources: []Source{{Kind: SrcRPC, Fanout: 2, RequestSize: 100, ResponseSize: 100}}}, "rate"},
		{"trace no path", Plan{Sources: []Source{{Kind: SrcTrace}}}, "path"},
		{"trace modulated", Plan{Sources: []Source{{Kind: SrcTrace, Path: "x.csv",
			Modulate: []Modulator{{Kind: ModDiurnal, Period: planspec.TimeSpec(sim.Millisecond)}}}}}, "modulate"},
		{"bad modulator", Plan{Sources: []Source{{Kind: SrcPoisson, CDF: "websearch",
			Modulate: []Modulator{{Kind: "square"}}}}}, "modulate[0]"},
		{"flash window", Plan{Sources: []Source{{Kind: SrcPoisson, CDF: "websearch",
			Modulate: []Modulator{{Kind: ModFlash, Peak: 2, At: planspec.TimeSpec(2 * sim.Millisecond),
				End: planspec.TimeSpec(sim.Millisecond)}}}}}, "modulate[0]"},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		var pe *PlanError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a *PlanError", c.name, err)
			continue
		}
		if pe.Field != c.field {
			t.Errorf("%s: error on field %q, want %q (%v)", c.name, pe.Field, c.field, err)
		}
	}
}

func TestPlanHashIgnoresName(t *testing.T) {
	a := &Plan{Name: "alpha", Sources: []Source{{Kind: SrcPoisson, CDF: "websearch", Load: 0.3}}}
	b := &Plan{Name: "omega", Sources: []Source{{Kind: SrcPoisson, CDF: "websearch", Load: 0.3}}}
	if a.Hash() == "" || a.Hash() != b.Hash() {
		t.Fatalf("renaming changed the hash: %q vs %q", a.Hash(), b.Hash())
	}
	c := &Plan{Name: "alpha", Sources: []Source{{Kind: SrcPoisson, CDF: "websearch", Load: 0.31}}}
	if a.Hash() == c.Hash() {
		t.Fatalf("changing a source did not change the hash (%q)", a.Hash())
	}
	var nilPlan *Plan
	if nilPlan.Hash() != "" || (&Plan{}).Hash() != "" {
		t.Fatal("nil/empty plan should hash to empty string")
	}
}

func TestPlanHashSurvivesTraceRename(t *testing.T) {
	dir := t.TempDir()
	trace := "at_us,src,dst,size_bytes,incast\n1.0,0,1,1000,0\n2.0,1,2,2000,0\n"
	for _, name := range []string{"first.csv", "second.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(trace), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	hashes := make([]string, 0, 2)
	for _, name := range []string{"first.csv", "second.csv"} {
		planPath := filepath.Join(dir, name+".plan.json")
		planJSON := `{"sources":[{"kind":"trace","path":"` + name + `"}]}`
		if err := os.WriteFile(planPath, []byte(planJSON), 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := ParsePlanFile(planPath)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, p.Hash())
	}
	if hashes[0] == "" || hashes[0] != hashes[1] {
		t.Fatalf("trace identity should follow content, not path: %q vs %q", hashes[0], hashes[1])
	}
}

func TestTraceSourceReplaysVerbatim(t *testing.T) {
	dir := t.TempDir()
	orig := BackgroundParams{
		CDF: WebSearch, Hosts: 16, UplinkCapacity: 80 * units.Gbps,
		Load: 0.4, Duration: 2 * sim.Millisecond,
	}.Generate(rand.New(rand.NewSource(3)))
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "t.csv"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	planPath := filepath.Join(dir, "replay.json")
	if err := os.WriteFile(planPath, []byte(`{"sources":[{"kind":"trace","path":"t.csv","tenant":"replayed"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParsePlanFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "replay" {
		t.Fatalf("plan name should default to the file stem, got %q", p.Name)
	}
	flows := mustGenerate(t, p, testEnv(), 1)
	if len(flows) != len(orig) {
		t.Fatalf("replay produced %d flows, trace has %d", len(flows), len(orig))
	}
	for i := range flows {
		if flows[i].Src != orig[i].Src || flows[i].Dst != orig[i].Dst || flows[i].Size != orig[i].Size {
			t.Fatalf("flow %d differs from trace: %+v vs %+v", i, flows[i], orig[i])
		}
		if flows[i].Tenant != "replayed" {
			t.Fatalf("flow %d missing tenant tag", i)
		}
	}
}

// Unresolved trace sources must fail generation, not silently produce
// nothing: ParsePlan alone never reads the trace file.
func TestUnresolvedTraceFailsGeneration(t *testing.T) {
	p, err := ParsePlan([]byte(`{"sources":[{"kind":"trace","path":"missing.csv"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Generate(testEnv(), rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("expected an unresolved-trace error")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	plans := []string{
		`{"sources":[
			{"kind":"poisson","tenant":"bg","cdf":"websearch","load":0.3},
			{"kind":"onoff","cdf":"hadoop","load":0.1,"on":"200us","off":"400us"},
			{"kind":"lognormal","cdf":"cachefollower","load":0.1,"sigma":1.2},
			{"kind":"incast","fraction":0.1,"flow_size":8000,"coflow":true},
			{"kind":"rpc","tenant":"rpc","fanout":4,"request_size":2000,"response_size":20000,"load":0.05}
		]}`,
		`{"sources":[
			{"kind":"poisson","cdf":"websearch","load":0.4,
			 "modulate":[{"kind":"flash","at":"10ms","end":"30ms","peak":2.5,"ramp":"2ms"}]},
			{"kind":"poisson","cdf":"datamining","load":0.2,
			 "modulate":[{"kind":"diurnal","period":"20ms","min":0.2},{"kind":"ramp","from":0.5,"to":1.5}]}
		]}`,
	}
	env := testEnv()
	for i, js := range plans {
		p, err := ParsePlan([]byte(js))
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		a := mustGenerate(t, p, env, 42)
		b := mustGenerate(t, p, env, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("plan %d: same (plan, seed, env) produced different flows", i)
		}
		c := mustGenerate(t, p, env, 43)
		if reflect.DeepEqual(a, c) {
			t.Fatalf("plan %d: different seeds produced identical flows (%d flows)", i, len(a))
		}
		if len(a) == 0 {
			t.Fatalf("plan %d generated no flows", i)
		}
		for j := 1; j < len(a); j++ {
			if a[j].At < a[j-1].At {
				t.Fatalf("plan %d: flows not time-sorted at %d", i, j)
			}
		}
	}
}

// LegacyPlan must consume the RNG stream exactly like the pre-plan
// direct-parameter path: background first, then incast, then Merge.
// This is the unit-level version of the harness golden-digest gate.
func TestLegacyPlanMatchesDirectParams(t *testing.T) {
	env := testEnv()
	r := rand.New(rand.NewSource(9))
	want := BackgroundParams{
		CDF: WebSearch, Hosts: env.Hosts, RackOf: env.RackOf,
		UplinkCapacity: env.UplinkCapacity, Load: env.Load, Duration: env.Duration,
	}.Generate(r)
	inc := IncastParams{
		Hosts: env.Hosts, FlowsPerSender: 4, FlowSize: 8000,
		EventRate: EventRateFor(0.1, env.Load*float64(env.UplinkCapacity)/8, env.Hosts, 4, 8000),
		Duration:  env.Duration,
	}.Generate(r)
	want = Merge(want, inc)

	got := mustGenerate(t, LegacyPlan(WebSearch, 0.1, 8000), env, 9)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LegacyPlan diverged from the direct-parameter path: %d vs %d flows", len(got), len(want))
	}
}

// A neutral modulator (ramp 1→1) must not change what is generated:
// max(envelope)=1 leaves the base rate alone and every acceptance draw
// keeps its flow, so the output matches the unmodulated source.
func TestNeutralModulatorIsIdentity(t *testing.T) {
	plain, err := ParsePlan([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch","load":0.3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	neutral, err := ParsePlan([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch","load":0.3,
		"modulate":[{"kind":"ramp","from":1,"to":1}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv()
	a := mustGenerate(t, plain, env, 7)
	b := mustGenerate(t, neutral, env, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("neutral modulator changed the output: %d vs %d flows", len(a), len(b))
	}
}

// Calibration: each background kind's realized arrival count should be
// near its analytic rate × horizon. Seeds are fixed, so these are
// deterministic checks of calibration, not flaky statistical tests.
func TestBackgroundCalibration(t *testing.T) {
	env := testEnv()
	cases := []struct {
		name string
		js   string
		tol  float64
	}{
		{"poisson", `{"sources":[{"kind":"poisson","cdf":"websearch","load":0.5}]}`, 0.10},
		{"onoff", `{"sources":[{"kind":"onoff","cdf":"websearch","load":0.5,"on":"200us","off":"400us"}]}`, 0.25},
		{"lognormal", `{"sources":[{"kind":"lognormal","cdf":"websearch","load":0.5,"sigma":1.0}]}`, 0.25},
	}
	wantRate := arrivalRateFor(WebSearch.Mean(), env.Hosts, env.RackOf, env.UplinkCapacity, env.Load)
	want := wantRate * env.Duration.Seconds()
	for _, c := range cases {
		p, err := ParsePlan([]byte(c.js))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := float64(len(mustGenerate(t, p, env, 11)))
		if got < want*(1-c.tol) || got > want*(1+c.tol) {
			t.Errorf("%s: %0.f flows, want %.0f ± %.0f%%", c.name, got, want, c.tol*100)
		}
	}
}

// The incast source with a volume fraction must reproduce the legacy
// event-rate calibration regardless of what else the plan composes.
func TestIncastFractionCalibration(t *testing.T) {
	env := testEnv()
	p, err := ParsePlan([]byte(`{"sources":[{"kind":"incast","fraction":0.1,"flow_size":8000}]}`))
	if err != nil {
		t.Fatal(err)
	}
	flows := mustGenerate(t, p, env, 5)
	// Events arrive at distinct Poisson instants; flows of one event share one.
	events := 0
	for i := range flows {
		if i == 0 || flows[i].At != flows[i-1].At {
			events++
		}
	}
	wantRate := EventRateFor(0.1, env.Load*float64(env.UplinkCapacity)/8, env.Hosts, 4, 8000)
	want := wantRate * env.Duration.Seconds()
	if got := float64(events); got < want*0.75 || got > want*1.25 {
		t.Errorf("%d incast events, want %.0f ± 25%%", events, want)
	}
	for _, f := range flows {
		if !f.Incast {
			t.Fatal("incast source emitted a non-incast flow")
		}
	}
}

func TestRPCCoflowStructure(t *testing.T) {
	const fanout = 4
	p, err := ParsePlan([]byte(`{"sources":[
		{"kind":"incast","fraction":0.05,"flow_size":8000,"coflow":true},
		{"kind":"rpc","fanout":4,"request_size":2000,"response_size":20000,"rate":2000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv()
	flows := mustGenerate(t, p, env, 21)
	rpc := map[uint64][]FlowSpec{}
	incastCoflows := map[uint64]bool{}
	for _, f := range flows {
		if f.Coflow == 0 {
			t.Fatal("coflow-tagged plan emitted an untagged flow")
		}
		if f.Size == 8000 {
			incastCoflows[f.Coflow] = true
		} else {
			rpc[f.Coflow] = append(rpc[f.Coflow], f)
		}
	}
	if len(rpc) == 0 || len(incastCoflows) == 0 {
		t.Fatalf("expected both rpc and incast coflows (got %d, %d)", len(rpc), len(incastCoflows))
	}
	for id := range rpc {
		if incastCoflows[id] {
			t.Fatalf("coflow ID %d shared between sources", id)
		}
	}
	for id, fs := range rpc {
		if len(fs) != 2*fanout {
			t.Fatalf("rpc coflow %d has %d flows, want %d", id, len(fs), 2*fanout)
		}
		root := -1
		workers := map[int]bool{}
		for _, f := range fs {
			if f.At != fs[0].At {
				t.Fatalf("rpc coflow %d spans multiple arrival instants", id)
			}
			if f.Incast { // response: worker -> root
				if root == -1 {
					root = f.Dst
				} else if f.Dst != root {
					t.Fatalf("rpc coflow %d has responses to multiple roots", id)
				}
				workers[f.Src] = true
			}
		}
		if len(workers) != fanout {
			t.Fatalf("rpc coflow %d has %d distinct workers, want %d", id, len(workers), fanout)
		}
		if workers[root] {
			t.Fatalf("rpc coflow %d root %d is also a worker", id, root)
		}
	}
}

// Thinning a modulated coflow source must keep or drop whole coflows —
// a job that loses half its flows would report a bogus completion time.
func TestGroupedThinningKeepsCoflowsWhole(t *testing.T) {
	p, err := ParsePlan([]byte(`{"sources":[
		{"kind":"rpc","fanout":3,"request_size":2000,"response_size":20000,"rate":3000,
		 "modulate":[{"kind":"diurnal","period":"20ms","min":0.1}]}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	flows := mustGenerate(t, p, testEnv(), 13)
	byCoflow := map[uint64]int{}
	for _, f := range flows {
		byCoflow[f.Coflow]++
	}
	if len(byCoflow) == 0 {
		t.Fatal("thinning dropped every coflow")
	}
	for id, n := range byCoflow {
		if n != 6 {
			t.Fatalf("coflow %d survived thinning with %d of 6 flows", id, n)
		}
	}
}

// A flash crowd should visibly raise the arrival density inside its
// window relative to the baseline outside it.
func TestFlashModulatorShapesDensity(t *testing.T) {
	env := testEnv()
	p, err := ParsePlan([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch","load":0.4,
		"modulate":[{"kind":"flash","at":"15ms","end":"35ms","peak":3,"ramp":"1ms"}]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	flows := mustGenerate(t, p, env, 17)
	var inside, outside int
	at, end := 16*sim.Millisecond, 34*sim.Millisecond // the plateau
	for _, f := range flows {
		if f.At >= at && f.At < end {
			inside++
		} else {
			outside++
		}
	}
	inDur := (end - at).Seconds()
	outDur := env.Duration.Seconds() - (20 * sim.Millisecond).Seconds()
	inRate, outRate := float64(inside)/inDur, float64(outside)/outDur
	if inRate < 2*outRate {
		t.Fatalf("flash plateau rate %.0f/s not clearly above baseline %.0f/s", inRate, outRate)
	}
}

// The shipped example plans must stay parseable — they are documentation
// that executes.
func TestExamplePlansParse(t *testing.T) {
	paths, err := filepath.Glob("../../examples/workloads/*.json")
	if err != nil || len(paths) == 0 {
		t.Skipf("no example plans found: %v", err)
	}
	env := testEnv()
	for _, path := range paths {
		p, err := ParsePlanFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if p.Hash() == "" {
			t.Errorf("%s: empty hash", path)
		}
		if flows := mustGenerate(t, p, env, 1); len(flows) == 0 {
			t.Errorf("%s: generated no flows", path)
		}
	}
}
