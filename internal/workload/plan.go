package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"flexpass/internal/planspec"
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// This file is the composable workload plan layer: a Plan is an ordered
// list of traffic Sources — each a calibrated generator component with
// optional rate Modulators — composed into one deterministic flow list.
// Plans are data in the mold of fault plans (internal/faults): strict
// JSON, validated up front, content-hashed for scenario identity, and
// replay-exact — same (plan, seed, env) ⇒ byte-identical flows, because
// every source draws from one shared seeded stream in declaration
// order.

// SourceKind names a traffic source component.
type SourceKind string

// Source kinds.
const (
	// SrcPoisson is the paper's §6.2 background: Poisson flow arrivals
	// between random host pairs, sizes from a named CDF, arrival rate
	// calibrated to a core-load target.
	SrcPoisson SourceKind = "poisson"
	// SrcOnOff is bursty background: exponential ON/OFF envelope with
	// Poisson arrivals during ON periods only, same long-run load.
	SrcOnOff SourceKind = "onoff"
	// SrcLognormal is background with heavy-tailed lognormal
	// inter-arrivals (burstier than Poisson at equal average rate).
	SrcLognormal SourceKind = "lognormal"
	// SrcIncast is the §6.2 foreground: Poisson events where every host
	// sends FlowsPerSender fixed-size flows to one random receiver.
	SrcIncast SourceKind = "incast"
	// SrcRPC is fan-out/fan-in coflows: Poisson jobs, each fanning
	// requests from a random root to Fanout workers and collecting
	// responses, all flows sharing a coflow ID.
	SrcRPC SourceKind = "rpc"
	// SrcTrace replays a CSV flow trace file verbatim.
	SrcTrace SourceKind = "trace"
)

var knownSourceKinds = map[SourceKind]bool{
	SrcPoisson: true, SrcOnOff: true, SrcLognormal: true,
	SrcIncast: true, SrcRPC: true, SrcTrace: true,
}

// Source is one traffic component of a plan. Kind-specific fields:
//
//   - poisson / onoff / lognormal: CDF (size distribution name) and
//     Load (core-load target; 0 inherits the scenario load). onoff adds
//     On/Off mean period durations; lognormal adds Sigma (shape of the
//     log inter-arrival, 0 degenerates to fixed spacing).
//   - incast: FlowSize, plus either Fraction (volume fraction of total
//     traffic, referenced to the scenario's nominal background load —
//     the legacy -incast semantics) or an explicit event Rate.
//     FlowsPerSender defaults to 4. Coflow tags each event as a coflow
//     so completion is tracked as a unit.
//   - rpc: Fanout, RequestSize, ResponseSize or ResponseCDF, and either
//     an explicit job Rate or Load (capacity fraction the RPC traffic
//     should occupy).
//   - trace: Path to a CSV flow trace (relative paths resolve against
//     the plan file's directory).
type Source struct {
	Kind SourceKind `json:"kind"`
	// Tenant labels the load class; it is stamped on every generated
	// flow and drives per-tenant accounting in the harness and lake.
	Tenant string `json:"tenant,omitempty"`

	CDF  string  `json:"cdf,omitempty"`
	Load float64 `json:"load,omitempty"`
	// Rate is kind-dependent: flow arrivals/sec (backgrounds), incast
	// events/sec, or RPC jobs/sec. Overrides Load / Fraction.
	Rate float64 `json:"rate,omitempty"`

	// Incast fields.
	Fraction       float64 `json:"fraction,omitempty"`
	FlowSize       int64   `json:"flow_size,omitempty"`
	FlowsPerSender int     `json:"flows_per_sender,omitempty"`
	Coflow         bool    `json:"coflow,omitempty"`

	// ON/OFF fields.
	On  planspec.TimeSpec `json:"on,omitempty"`
	Off planspec.TimeSpec `json:"off,omitempty"`

	// Lognormal shape.
	Sigma float64 `json:"sigma,omitempty"`

	// RPC fields.
	Fanout       int    `json:"fanout,omitempty"`
	RequestSize  int64  `json:"request_size,omitempty"`
	ResponseSize int64  `json:"response_size,omitempty"`
	ResponseCDF  string `json:"response_cdf,omitempty"`

	// Trace replay.
	Path string `json:"path,omitempty"`

	// Modulate shapes the source's rate over time; the effective rate is
	// the base rate times the product of the modulator envelopes.
	Modulate []Modulator `json:"modulate,omitempty"`

	// Resolved state (Validate / Resolve), not part of the wire form.
	cdf        *CDF       // resolved size distribution
	respCDF    *CDF       // resolved RPC response distribution
	traceFlows []FlowSpec // resolved trace replay flows
	traceSum   string     // sha256 hex of the trace file content
}

// Plan is an ordered list of traffic sources. The zero value is an
// empty plan (no flows).
type Plan struct {
	// Name labels the plan in reports and artifacts; it is excluded
	// from the content hash.
	Name    string   `json:"name,omitempty"`
	Sources []Source `json:"sources"`
}

// PlanError reports an invalid source in a plan: which source, which
// field, and why. Mirrors faults.PlanError so callers can errors.As
// against one class per plan family.
type PlanError struct {
	Index int    // position in Plan.Sources
	Field string // offending field name ("kind", "load", ...)
	Msg   string
}

func (e *PlanError) Error() string {
	return fmt.Sprintf("workload: source %d: field %s: %s", e.Index, e.Field, e.Msg)
}

// Env is the scenario context a plan is generated against: the topology
// shape, the aggregate uplink capacity load targets calibrate to, the
// nominal scenario load (inherited by sources that do not set their
// own), and the arrival horizon.
type Env struct {
	Hosts          int
	RackOf         []int
	UplinkCapacity units.Rate
	Load           float64
	Duration       sim.Time
}

// Validate checks every source for structural soundness — known kind,
// resolvable distribution names, sane rates, sizes and envelopes — and
// resolves the named CDFs. It does not touch the filesystem: trace
// paths are checked for presence only, and resolve later (Resolve /
// ParsePlanFile). Returns a *PlanError describing the first problem,
// or nil.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if len(p.Sources) == 0 {
		return &PlanError{Index: -1, Field: "sources", Msg: "plan has no sources"}
	}
	for i := range p.Sources {
		s := &p.Sources[i]
		if !knownSourceKinds[s.Kind] {
			return &PlanError{Index: i, Field: "kind", Msg: fmt.Sprintf("unknown kind %q", s.Kind)}
		}
		if s.Load < 0 || s.Rate < 0 {
			return &PlanError{Index: i, Field: "load", Msg: "load and rate must be >= 0"}
		}
		switch s.Kind {
		case SrcPoisson, SrcOnOff, SrcLognormal:
			if s.cdf == nil {
				if s.CDF == "" {
					return &PlanError{Index: i, Field: "cdf", Msg: "background source needs a size distribution"}
				}
				if s.cdf = ByName(s.CDF); s.cdf == nil {
					return &PlanError{Index: i, Field: "cdf", Msg: fmt.Sprintf("unknown distribution %q", s.CDF)}
				}
			}
			if s.Rate > 0 {
				return &PlanError{Index: i, Field: "rate", Msg: "background sources calibrate by load, not rate"}
			}
			if s.Kind == SrcOnOff && (s.On <= 0 || s.Off <= 0) {
				return &PlanError{Index: i, Field: "on", Msg: "onoff needs positive mean on/off periods"}
			}
			if s.Kind == SrcLognormal && s.Sigma < 0 {
				return &PlanError{Index: i, Field: "sigma", Msg: "sigma must be >= 0"}
			}
		case SrcIncast:
			if s.FlowSize <= 0 {
				return &PlanError{Index: i, Field: "flow_size", Msg: "incast needs a positive flow size"}
			}
			if s.FlowsPerSender < 0 {
				return &PlanError{Index: i, Field: "flows_per_sender", Msg: "must be >= 0"}
			}
			if s.Rate == 0 && (s.Fraction <= 0 || s.Fraction >= 1) {
				return &PlanError{Index: i, Field: "fraction", Msg: "incast needs a rate or a volume fraction in (0,1)"}
			}
		case SrcRPC:
			if s.Fanout < 1 {
				return &PlanError{Index: i, Field: "fanout", Msg: "rpc needs fanout >= 1"}
			}
			if s.RequestSize <= 0 {
				return &PlanError{Index: i, Field: "request_size", Msg: "rpc needs a positive request size"}
			}
			if s.ResponseCDF != "" {
				if s.respCDF = ByName(s.ResponseCDF); s.respCDF == nil {
					return &PlanError{Index: i, Field: "response_cdf", Msg: fmt.Sprintf("unknown distribution %q", s.ResponseCDF)}
				}
			} else if s.ResponseSize <= 0 {
				return &PlanError{Index: i, Field: "response_size", Msg: "rpc needs a response size or distribution"}
			}
			if s.Rate == 0 && s.Load == 0 {
				return &PlanError{Index: i, Field: "rate", Msg: "rpc needs a job rate or a load target"}
			}
		case SrcTrace:
			if s.Path == "" {
				return &PlanError{Index: i, Field: "path", Msg: "trace source needs a path"}
			}
			if len(s.Modulate) > 0 {
				return &PlanError{Index: i, Field: "modulate", Msg: "trace sources replay verbatim and cannot be modulated"}
			}
		}
		for j, m := range s.Modulate {
			if err := validateModulator(m); err != "" {
				return &PlanError{Index: i, Field: fmt.Sprintf("modulate[%d]", j), Msg: err}
			}
		}
	}
	return nil
}

func validateModulator(m Modulator) string {
	switch m.Kind {
	case ModRamp:
		if m.From < 0 || m.To < 0 || (m.From == 0 && m.To == 0) {
			return "ramp needs nonnegative from/to, not both zero"
		}
	case ModFlash:
		if m.Peak < 1 {
			return "flash needs peak >= 1"
		}
		if m.End <= m.At {
			return "flash needs end after at"
		}
		if m.Ramp < 0 || 2*m.Ramp.Time() > m.End.Time()-m.At.Time() {
			return "flash ramp must fit inside the [at,end) window"
		}
	case ModDiurnal:
		if m.Period <= 0 {
			return "diurnal needs a positive period"
		}
		if m.Min < 0 || m.Min > 1 {
			return "diurnal min must be in [0,1]"
		}
	default:
		return fmt.Sprintf("unknown modulator kind %q", m.Kind)
	}
	return ""
}

// hashSource is the canonical hash payload of one source: the wire
// fields, with a trace's path replaced by its content digest so the
// identity survives file moves and renames.
type hashSource struct {
	Source
	Path string `json:"path,omitempty"`
}

// Hash returns a short, stable content hash of the plan's sources —
// the identity the result lake keys plan-driven runs on. The plan Name
// is deliberately excluded (renaming a plan must not change the
// scenario identity), and trace sources hash by file content once
// resolved, so moving a trace file does not change the hash either. A
// nil or empty plan hashes to "".
func (p *Plan) Hash() string {
	if p == nil || len(p.Sources) == 0 {
		return ""
	}
	hs := make([]hashSource, len(p.Sources))
	for i, s := range p.Sources {
		hs[i] = hashSource{Source: s, Path: s.Path}
		if s.traceSum != "" {
			hs[i].Path = "sha256:" + s.traceSum
		}
	}
	b, err := json.Marshal(hs)
	if err != nil {
		// Sources hold only plain values; marshal cannot fail in practice.
		panic(fmt.Sprintf("workload: hashing plan: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ParsePlan decodes and validates a JSON plan. Unknown fields are
// rejected so typos in plan files fail loudly instead of silently
// generating the wrong traffic. ParsePlan never touches the
// filesystem; trace sources resolve in Resolve or ParsePlanFile.
func ParsePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("workload: bad plan JSON: %w", err)
	}
	if dec.More() {
		return nil, errors.New("workload: trailing data after plan JSON")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Resolve loads every trace source's file (relative paths against
// baseDir) and records its flows and content digest. Idempotent.
func (p *Plan) Resolve(baseDir string) error {
	for i := range p.Sources {
		s := &p.Sources[i]
		if s.Kind != SrcTrace || s.traceSum != "" {
			continue
		}
		path := s.Path
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("workload: trace source %d: %w", i, err)
		}
		flows, err := ReadTrace(strings.NewReader(string(data)))
		if err != nil {
			return fmt.Errorf("workload: trace source %d (%s): %w", i, s.Path, err)
		}
		sum := sha256.Sum256(data)
		s.traceFlows = flows
		s.traceSum = hex.EncodeToString(sum[:])
	}
	return nil
}

// ParsePlanFile reads, parses, validates, and resolves a plan file.
// Trace paths inside the plan resolve relative to the plan file's
// directory.
func ParsePlanFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if p.Name == "" {
		p.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if err := p.Resolve(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return p, nil
}

// LegacyPlan is the builtin plan equivalent of the pre-plan parameter
// workload (Scenario.Workload + IncastFraction): one Poisson background
// source at the scenario load plus, when fraction > 0, one incast
// source at the legacy volume fraction. Generating it against the same
// seed consumes the RNG stream identically to the old direct-parameter
// path, so golden flow digests are preserved bit for bit.
func LegacyPlan(cdf *CDF, incastFraction float64, incastFlowSize int64) *Plan {
	p := &Plan{
		Name:    "builtin:" + cdf.Name,
		Sources: []Source{{Kind: SrcPoisson, CDF: cdf.Name, cdf: cdf}},
	}
	if incastFraction > 0 {
		p.Sources = append(p.Sources, Source{
			Kind:     SrcIncast,
			Fraction: incastFraction,
			FlowSize: incastFlowSize,
		})
	}
	return p
}

// Generate produces the plan's merged, time-sorted flow list for the
// given environment. Sources generate sequentially against the one
// shared stream r, in declaration order, so the output is a pure
// function of (plan, env, seed). Modulated sources generate at base ×
// max(envelope) and then thin — every acceptance draw happens after
// that source's generation draws, keeping unmodulated prefixes of the
// stream stable. Coflow IDs are assigned from one counter across all
// sources.
func (p *Plan) Generate(env Env, r *rand.Rand) ([]FlowSpec, error) {
	if p == nil || len(p.Sources) == 0 {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nextCoflow := uint64(1)
	lists := make([][]FlowSpec, 0, len(p.Sources))
	for i := range p.Sources {
		s := &p.Sources[i]
		flows, err := s.generate(env, r, &nextCoflow)
		if err != nil {
			return nil, fmt.Errorf("workload: source %d (%s): %w", i, s.Kind, err)
		}
		if s.Tenant != "" {
			for j := range flows {
				flows[j].Tenant = s.Tenant
			}
		}
		lists = append(lists, flows)
	}
	return Merge(lists...), nil
}

// generate produces one source's flow list (already thinned).
func (s *Source) generate(env Env, r *rand.Rand, nextCoflow *uint64) ([]FlowSpec, error) {
	ev := envelope{mods: s.Modulate, horizon: env.Duration}
	boost := ev.max()
	load := s.Load
	if load == 0 {
		load = env.Load
	}
	var flows []FlowSpec
	grouped := false
	switch s.Kind {
	case SrcPoisson:
		flows = BackgroundParams{
			CDF: s.cdf, Hosts: env.Hosts, RackOf: env.RackOf,
			UplinkCapacity: env.UplinkCapacity,
			Load:           load * boost,
			Duration:       env.Duration,
		}.Generate(r)
	case SrcOnOff:
		flows = OnOffParams{
			CDF: s.cdf, Hosts: env.Hosts, RackOf: env.RackOf,
			UplinkCapacity: env.UplinkCapacity,
			Load:           load * boost,
			MeanOn:         s.On.Time(), MeanOff: s.Off.Time(),
			Duration: env.Duration,
		}.Generate(r)
	case SrcLognormal:
		flows = LognormalParams{
			CDF: s.cdf, Hosts: env.Hosts, RackOf: env.RackOf,
			UplinkCapacity: env.UplinkCapacity,
			Load:           load * boost,
			Sigma:          s.Sigma,
			Duration:       env.Duration,
		}.Generate(r)
	case SrcIncast:
		fps := s.FlowsPerSender
		if fps == 0 {
			fps = 4
		}
		rate := s.Rate
		if rate == 0 {
			// Legacy semantics: the fraction references the scenario's
			// nominal background volume (env.Load of the capacity), not
			// whatever other sources this plan happens to compose.
			bgBytesPerSec := env.Load * float64(env.UplinkCapacity) / 8
			rate = EventRateFor(s.Fraction, bgBytesPerSec, env.Hosts, fps, s.FlowSize)
		}
		flows = IncastParams{
			Hosts: env.Hosts, FlowsPerSender: fps, FlowSize: s.FlowSize,
			EventRate: rate * boost, Duration: env.Duration,
		}.Generate(r)
		if s.Coflow {
			tagIncastCoflows(flows, nextCoflow)
		}
		grouped = true
	case SrcRPC:
		if s.Fanout > env.Hosts-1 {
			return nil, fmt.Errorf("fanout %d exceeds hosts-1 (%d)", s.Fanout, env.Hosts-1)
		}
		rp := RPCParams{
			Hosts: env.Hosts, Fanout: s.Fanout,
			RequestSize: s.RequestSize, ResponseSize: s.ResponseSize,
			ResponseCDF: s.respCDF, Duration: env.Duration,
		}
		rp.Rate = s.Rate
		if rp.Rate == 0 {
			rp.Rate = rp.RateForLoad(load, env.UplinkCapacity)
		}
		rp.Rate *= boost
		flows = rp.Generate(r, nextCoflow)
		grouped = true
	case SrcTrace:
		if s.traceFlows == nil {
			return nil, errors.New("unresolved trace source (plan not loaded via ParsePlanFile/Resolve)")
		}
		// Replayed verbatim: no RNG draws, no thinning.
		return append([]FlowSpec(nil), s.traceFlows...), nil
	}
	return thin(flows, ev, r, grouped), nil
}

// tagIncastCoflows groups an incast source's flows into coflows: all
// flows of one event share an arrival instant (distinct events land at
// distinct Poisson times), so runs of equal At form the groups.
func tagIncastCoflows(flows []FlowSpec, nextCoflow *uint64) {
	var cur uint64
	for i := range flows {
		if i == 0 || flows[i].At != flows[i-1].At {
			cur = *nextCoflow
			*nextCoflow++
		}
		flows[i].Coflow = cur
	}
}

// thin applies the modulation envelope by rejection: each arrival unit
// survives with probability scale(t)/max(envelope). With grouped set,
// flows sharing (At, Coflow) — one incast event or one RPC job — are
// kept or dropped as a unit so coflows never lose members. Acceptance
// draws consume r strictly after the source's generation draws.
func thin(flows []FlowSpec, ev envelope, r *rand.Rand, grouped bool) []FlowSpec {
	if len(ev.mods) == 0 || len(flows) == 0 {
		return flows
	}
	max := ev.max()
	out := make([]FlowSpec, 0, len(flows))
	keep := false
	for i, f := range flows {
		if !grouped || i == 0 || f.At != flows[i-1].At || f.Coflow != flows[i-1].Coflow {
			keep = r.Float64()*max < ev.scale(f.At)
		}
		if keep {
			out = append(out, f)
		}
	}
	return out
}
