package workload

import (
	"math"
	"math/rand"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// This file holds the plan-driven source generators beyond the paper's
// Poisson+CDF background and incast mix (arrivals.go): ON/OFF bursts,
// lognormal inter-arrivals, and RPC fan-out/fan-in coflows. Each mirrors
// the BackgroundParams shape — a calibrated params struct with a
// Generate(r) method producing a time-sorted flow list — so the plan
// layer (plan.go) composes them uniformly.

// arrivalRateFor returns the flow arrival rate (flows/second) that hits
// a core-load target for flows of the given mean size between uniformly
// random host pairs, with the rack-crossing correction (intra-rack flows
// do not cross ToR uplinks).
func arrivalRateFor(meanSize float64, hosts int, rackOf []int, capacity units.Rate, load float64) float64 {
	cross := crossProb(hosts, rackOf)
	if cross <= 0 {
		cross = 1
	}
	bytesPerSec := load * float64(capacity) / 8
	return bytesPerSec / (meanSize * cross)
}

// randomPair draws a uniformly random src/dst host pair (src != dst),
// consuming exactly two Intn draws — the same stream shape as
// BackgroundParams.Generate.
func randomPair(r *rand.Rand, hosts int) (src, dst int) {
	src = r.Intn(hosts)
	dst = r.Intn(hosts - 1)
	if dst >= src {
		dst++
	}
	return src, dst
}

// OnOffParams generates bursty traffic from a global ON/OFF envelope:
// the source alternates exponentially distributed ON periods (mean
// MeanOn), during which flows arrive Poisson between random host pairs
// sized by the CDF, and OFF periods (mean MeanOff) with no arrivals.
// The peak (ON) arrival rate is set so the long-run average core load is
// Load: peak = avg / duty cycle.
type OnOffParams struct {
	CDF            *CDF
	Hosts          int
	RackOf         []int
	UplinkCapacity units.Rate
	Load           float64 // long-run average core load
	MeanOn         sim.Time
	MeanOff        sim.Time
	Duration       sim.Time
}

// PeakRate returns the ON-period Poisson arrival rate (flows/second).
func (p OnOffParams) PeakRate() float64 {
	duty := p.MeanOn.Seconds() / (p.MeanOn.Seconds() + p.MeanOff.Seconds())
	return arrivalRateFor(p.CDF.Mean(), p.Hosts, p.RackOf, p.UplinkCapacity, p.Load) / duty
}

// Generate produces the ON/OFF flow list, sorted by arrival time.
func (p OnOffParams) Generate(r *rand.Rand) []FlowSpec {
	peak := p.PeakRate()
	horizon := p.Duration.Seconds()
	var flows []FlowSpec
	t := 0.0
	on := true
	edge := r.ExpFloat64() * p.MeanOn.Seconds()
	for t < horizon {
		if !on {
			// Fast-forward through the OFF period.
			t = edge
			on = true
			edge = t + r.ExpFloat64()*p.MeanOn.Seconds()
			continue
		}
		dt := r.ExpFloat64() / peak
		if t+dt >= edge {
			// The next arrival would fall past the ON window: discard it
			// and switch off (memorylessness makes the discard exact).
			t = edge
			on = false
			edge = t + r.ExpFloat64()*p.MeanOff.Seconds()
			continue
		}
		t += dt
		if t >= horizon {
			break
		}
		src, dst := randomPair(r, p.Hosts)
		flows = append(flows, FlowSpec{
			Src: src, Dst: dst,
			Size: p.CDF.Sample(r),
			At:   sim.Time(t * float64(sim.Second)),
		})
	}
	return flows
}

// LognormalParams generates background traffic with heavy-tailed
// lognormal inter-arrival times instead of exponential ones: burstier
// than Poisson at the same average rate (the "trains" production traces
// exhibit). Sigma is the shape parameter of the log inter-arrival; the
// scale is set so the mean inter-arrival hits the Load target exactly
// (mu = ln(1/rate) - sigma^2/2).
type LognormalParams struct {
	CDF            *CDF
	Hosts          int
	RackOf         []int
	UplinkCapacity units.Rate
	Load           float64
	Sigma          float64
	Duration       sim.Time
}

// Rate returns the mean flow arrival rate (flows/second).
func (p LognormalParams) Rate() float64 {
	return arrivalRateFor(p.CDF.Mean(), p.Hosts, p.RackOf, p.UplinkCapacity, p.Load)
}

// Generate produces the flow list, sorted by arrival time.
func (p LognormalParams) Generate(r *rand.Rand) []FlowSpec {
	rate := p.Rate()
	mu := math.Log(1/rate) - p.Sigma*p.Sigma/2
	horizon := p.Duration.Seconds()
	var flows []FlowSpec
	t := 0.0
	for {
		t += math.Exp(mu + p.Sigma*r.NormFloat64())
		if t >= horizon {
			break
		}
		src, dst := randomPair(r, p.Hosts)
		flows = append(flows, FlowSpec{
			Src: src, Dst: dst,
			Size: p.CDF.Sample(r),
			At:   sim.Time(t * float64(sim.Second)),
		})
	}
	return flows
}

// RPCParams generates fan-out/fan-in coflows: jobs arrive Poisson; each
// job picks a random root host, fans RequestSize-byte requests out to
// Fanout distinct random workers, and every worker sends a response
// back to the root (fan-in). All 2×Fanout flows of a job share one
// coflow ID, so the harness can report coflow completion times — the
// job is done when its slowest flow finishes. Response sizes come from
// ResponseCDF when set, else they are fixed ResponseSize bytes.
//
// Responses are scheduled at the job arrival instant alongside the
// requests: trace-style generation cannot know when a request will be
// delivered, so the fan-in contends with its own fan-out — a documented
// approximation (DESIGN.md §9).
type RPCParams struct {
	Hosts        int
	Rate         float64 // jobs per second
	Fanout       int
	RequestSize  int64
	ResponseSize int64
	ResponseCDF  *CDF
	Duration     sim.Time
}

// JobBytes returns the expected bytes one job moves.
func (p RPCParams) JobBytes() float64 {
	resp := float64(p.ResponseSize)
	if p.ResponseCDF != nil {
		resp = p.ResponseCDF.Mean()
	}
	return float64(p.Fanout) * (float64(p.RequestSize) + resp)
}

// RateForLoad returns the job arrival rate that makes RPC traffic
// occupy the given fraction of the uplink capacity.
func (p RPCParams) RateForLoad(load float64, capacity units.Rate) float64 {
	return load * float64(capacity) / 8 / p.JobBytes()
}

// Generate produces the coflow flow list, sorted by arrival time.
// Coflow IDs are assigned sequentially starting at *nextCoflow, which
// is advanced past the last used ID (the plan layer threads one counter
// through every source so IDs stay unique per workload).
func (p RPCParams) Generate(r *rand.Rand, nextCoflow *uint64) []FlowSpec {
	var flows []FlowSpec
	horizon := p.Duration.Seconds()
	if p.Rate <= 0 {
		return nil
	}
	t := 0.0
	for {
		t += r.ExpFloat64() / p.Rate
		if t >= horizon {
			break
		}
		at := sim.Time(t * float64(sim.Second))
		root := r.Intn(p.Hosts)
		cf := *nextCoflow
		*nextCoflow++
		seen := map[int]bool{}
		for k := 0; k < p.Fanout; k++ {
			w := r.Intn(p.Hosts - 1)
			if w >= root {
				w++
			}
			for seen[w] {
				w = r.Intn(p.Hosts - 1)
				if w >= root {
					w++
				}
			}
			seen[w] = true
			resp := p.ResponseSize
			if p.ResponseCDF != nil {
				resp = p.ResponseCDF.Sample(r)
			}
			flows = append(flows,
				FlowSpec{Src: root, Dst: w, Size: p.RequestSize, At: at, Coflow: cf},
				FlowSpec{Src: w, Dst: root, Size: resp, At: at, Coflow: cf, Incast: true},
			)
		}
	}
	return flows
}
