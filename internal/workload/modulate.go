package workload

import (
	"math"

	"flexpass/internal/planspec"
	"flexpass/internal/sim"
)

// A Modulator shapes a source's arrival rate over time: the effective
// rate at instant t is the base rate times the product of every
// modulator's scale(t). Generation uses thinning — the classic
// nonhomogeneous-Poisson construction: the source generates arrivals at
// its base rate times the envelope's maximum, then each arrival unit
// (a flow, or a whole coflow/incast event) survives with probability
// scale(t)/maxScale. Thinning keeps the per-source generators simple
// and works for the non-Poisson sources too (there it modulates
// intensity approximately rather than exactly).
type Modulator struct {
	// Kind selects the envelope: "ramp" (linear load change across the
	// run), "flash" (a flash crowd: multiply by Peak inside [At,End],
	// with linear rise and fall over Ramp), or "diurnal" (a sinusoid
	// between Min and 1 with the given Period, starting at the trough).
	Kind string `json:"kind"`

	// Flash fields.
	At   planspec.TimeSpec `json:"at,omitempty"`
	End  planspec.TimeSpec `json:"end,omitempty"`
	Peak float64           `json:"peak,omitempty"`
	Ramp planspec.TimeSpec `json:"ramp,omitempty"`

	// Ramp fields: scale moves linearly From -> To over the arrival
	// window.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`

	// Diurnal fields.
	Period planspec.TimeSpec `json:"period,omitempty"`
	Min    float64           `json:"min,omitempty"`
}

// Modulator kinds.
const (
	ModRamp    = "ramp"
	ModFlash   = "flash"
	ModDiurnal = "diurnal"
)

// maxScale returns the envelope's maximum over the run — the factor
// the base generation rate is inflated by before thinning.
func (m Modulator) maxScale() float64 {
	switch m.Kind {
	case ModRamp:
		return math.Max(m.From, m.To)
	case ModFlash:
		return math.Max(1, m.Peak)
	case ModDiurnal:
		return 1
	}
	return 1
}

// scale evaluates the envelope at t, with horizon the arrival window
// (the ramp's domain).
func (m Modulator) scale(t, horizon sim.Time) float64 {
	switch m.Kind {
	case ModRamp:
		if horizon <= 0 {
			return m.From
		}
		frac := float64(t) / float64(horizon)
		if frac > 1 {
			frac = 1
		}
		return m.From + (m.To-m.From)*frac
	case ModFlash:
		at, end, ramp := m.At.Time(), m.End.Time(), m.Ramp.Time()
		if t < at || t >= end {
			return 1
		}
		peak := math.Max(1, m.Peak)
		if ramp > 0 {
			if rise := t - at; rise < ramp {
				return 1 + (peak-1)*float64(rise)/float64(ramp)
			}
			if fall := end - t; fall < ramp {
				return 1 + (peak-1)*float64(fall)/float64(ramp)
			}
		}
		return peak
	case ModDiurnal:
		if m.Period <= 0 {
			return 1
		}
		min := m.Min
		phase := 2 * math.Pi * float64(t) / float64(m.Period.Time())
		// Starts at the trough (scale = Min at t = 0).
		return min + (1-min)*(0.5-0.5*math.Cos(phase))
	}
	return 1
}

// envelope is the composed modulation of one source.
type envelope struct {
	mods    []Modulator
	horizon sim.Time
}

// max is the product of the component maxima.
func (e envelope) max() float64 {
	s := 1.0
	for _, m := range e.mods {
		s *= m.maxScale()
	}
	return s
}

// scale is the product of the component envelopes at t.
func (e envelope) scale(t sim.Time) float64 {
	s := 1.0
	for _, m := range e.mods {
		s *= m.scale(t, e.horizon)
	}
	return s
}
