package workload

import (
	"math"
	"math/rand"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// FlowSpec is one generated flow.
type FlowSpec struct {
	Src, Dst int // host indices
	Size     int64
	At       sim.Time
	Incast   bool // foreground incast flow

	// Tenant labels the load class the flow belongs to ("" = untagged);
	// plan sources stamp their tenant name here so per-tenant accounting
	// and lake columns can tell classes apart.
	Tenant string
	// Coflow groups flows that complete together (an RPC fan-out/fan-in
	// or a tagged incast event). 0 = not part of a coflow. IDs are
	// unique within one generated workload.
	Coflow uint64
}

// BackgroundParams calibrates the §6.2 background traffic: Poisson flow
// arrivals between random host pairs, sized by a CDF, with the arrival
// rate set so the ToR-uplink (core) utilization hits Load.
type BackgroundParams struct {
	CDF   *CDF
	Hosts int
	// RackOf maps host index to rack, for the rack-crossing correction
	// (intra-rack flows do not cross ToR uplinks). Nil disables the
	// correction.
	RackOf []int
	// UplinkCapacity is the aggregate one-direction ToR uplink capacity.
	UplinkCapacity units.Rate
	Load           float64
	Duration       sim.Time
}

// crossProb returns the probability a uniformly random src/dst pair spans
// two racks.
func crossProb(hosts int, rackOf []int) float64 {
	if rackOf == nil || hosts < 2 {
		return 1
	}
	perRack := make(map[int]int)
	for _, r := range rackOf[:hosts] {
		perRack[r]++
	}
	same := 0.0
	for _, n := range perRack {
		same += float64(n) * float64(n-1)
	}
	return 1 - same/(float64(hosts)*float64(hosts-1))
}

// ArrivalRate returns the Poisson flow arrival rate (flows/second) hitting
// the load target.
func (p BackgroundParams) ArrivalRate() float64 {
	mean := p.CDF.Mean()
	cross := crossProb(p.Hosts, p.RackOf)
	if cross <= 0 {
		cross = 1
	}
	bytesPerSec := p.Load * float64(p.UplinkCapacity) / 8
	return bytesPerSec / (mean * cross)
}

// Generate produces the background flow list, sorted by arrival time.
func (p BackgroundParams) Generate(r *rand.Rand) []FlowSpec {
	lambda := p.ArrivalRate()
	var flows []FlowSpec
	t := 0.0
	horizon := p.Duration.Seconds()
	for {
		t += r.ExpFloat64() / lambda
		if t >= horizon {
			break
		}
		src := r.Intn(p.Hosts)
		dst := r.Intn(p.Hosts - 1)
		if dst >= src {
			dst++
		}
		flows = append(flows, FlowSpec{
			Src:  src,
			Dst:  dst,
			Size: p.CDF.Sample(r),
			At:   sim.Time(t * float64(sim.Second)),
		})
	}
	return flows
}

// IncastParams generates the §6.2 foreground traffic: at each event a
// random receiver is chosen and every other host sends FlowsPerSender
// flows of FlowSize bytes to it. Events are Poisson with rate set so
// foreground volume is VolumeFraction of the background volume's
// grand total (the paper uses 10% of total traffic).
type IncastParams struct {
	Hosts          int
	FlowsPerSender int
	FlowSize       int64
	// EventRate is events per second. Use EventRateFor to derive it from
	// a volume fraction.
	EventRate float64
	Duration  sim.Time
}

// EventRateFor computes the incast event rate making foreground traffic
// the given fraction of total traffic, where background occupies bg
// bytes/sec.
func EventRateFor(fraction float64, bgBytesPerSec float64, hosts, flowsPerSender int, flowSize int64) float64 {
	perEvent := float64(hosts-1) * float64(flowsPerSender) * float64(flowSize)
	// fg = fraction * (fg + bg)  =>  fg = bg * fraction/(1-fraction)
	fgBytesPerSec := bgBytesPerSec * fraction / (1 - fraction)
	return fgBytesPerSec / perEvent
}

// Generate produces the incast flow list, sorted by arrival time.
func (p IncastParams) Generate(r *rand.Rand) []FlowSpec {
	var flows []FlowSpec
	t := 0.0
	horizon := p.Duration.Seconds()
	if p.EventRate <= 0 {
		return nil
	}
	for {
		t += r.ExpFloat64() / p.EventRate
		if t >= horizon {
			break
		}
		dst := r.Intn(p.Hosts)
		at := sim.Time(t * float64(sim.Second))
		for src := 0; src < p.Hosts; src++ {
			if src == dst {
				continue
			}
			for k := 0; k < p.FlowsPerSender; k++ {
				flows = append(flows, FlowSpec{
					Src: src, Dst: dst, Size: p.FlowSize, At: at, Incast: true,
				})
			}
		}
	}
	return flows
}

// Merge combines flow lists into one sorted-by-time slice (stable for
// equal times).
func Merge(lists ...[]FlowSpec) []FlowSpec {
	var all []FlowSpec
	for _, l := range lists {
		all = append(all, l...)
	}
	// Stable sort by arrival time.
	sortStable(all)
	return all
}

func sortStable(fs []FlowSpec) {
	// Insertion-friendly: use sort.SliceStable equivalent without
	// importing sort twice... plain stable sort.
	stableSortByAt(fs)
}

// DeployRacks returns the set of FlexPass-enabled racks for a deployment
// ratio: the first ceil(ratio × racks) racks, matching the paper's
// per-rack rollout. Both endpoints must be in enabled racks for a flow to
// use the new transport.
func DeployRacks(racks int, ratio float64) map[int]bool {
	n := int(math.Ceil(ratio * float64(racks)))
	if n > racks {
		n = racks
	}
	enabled := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		enabled[i] = true
	}
	return enabled
}
