package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestCDFMeansReasonable(t *testing.T) {
	cases := []struct {
		c        *CDF
		min, max float64
	}{
		{WebSearch, 500_000, 5_000_000},     // ~1.6MB
		{DataMining, 1_000_000, 30_000_000}, // heavy tail
		{CacheFollower, 50_000, 2_000_000},
		{Hadoop, 10_000, 300_000},
	}
	for _, c := range cases {
		m := c.c.Mean()
		if m < c.min || m > c.max {
			t.Errorf("%s mean = %.0f, want in [%.0f, %.0f]", c.c.Name, m, c.min, c.max)
		}
	}
}

func TestCDFSampleMatchesMean(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, c := range []*CDF{WebSearch, DataMining, CacheFollower, Hadoop} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(c.Sample(r))
		}
		emp := sum / n
		want := c.Mean()
		if emp < want*0.9 || emp > want*1.1 {
			t.Errorf("%s empirical mean %.0f vs analytic %.0f", c.Name, emp, want)
		}
	}
}

func TestCDFSampleWithinSupport(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			s := WebSearch.Sample(r)
			if s < 1 || s > 30_000_000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFSampleMonotoneInQuantile(t *testing.T) {
	// Larger u must produce larger (or equal) sizes: verified indirectly
	// via sorted percentile checks.
	r := rand.New(rand.NewSource(1))
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := WebSearch.Sample(r)
		if s <= 100_000 {
			small++
		}
		if s >= 1_000_000 {
			large++
		}
	}
	// CDF says 55-ish% of flows are <=100kB and 30% >= 1MB.
	if small < 4500 || small > 6500 {
		t.Errorf("small fraction %d/10000, want ~5500", small)
	}
	if large < 2400 || large > 3600 {
		t.Errorf("large fraction %d/10000, want ~3000", large)
	}
}

func TestBackgroundLoadCalibration(t *testing.T) {
	p := BackgroundParams{
		CDF:            WebSearch,
		Hosts:          192,
		UplinkCapacity: 64 * 40 * units.Gbps,
		Load:           0.5,
		Duration:       100 * sim.Millisecond,
	}
	r := rand.New(rand.NewSource(3))
	flows := p.Generate(r)
	if len(flows) == 0 {
		t.Fatal("no flows generated")
	}
	var vol float64
	for _, f := range flows {
		vol += float64(f.Size)
		if f.Src == f.Dst || f.Src < 0 || f.Src >= 192 || f.Dst < 0 || f.Dst >= 192 {
			t.Fatalf("bad pair %d->%d", f.Src, f.Dst)
		}
	}
	// Offered bytes over duration ≈ load × capacity (no rack correction
	// here since RackOf is nil).
	want := 0.5 * float64(64*40*units.Gbps) / 8 * 0.1
	if vol < want*0.8 || vol > want*1.2 {
		t.Fatalf("offered volume %.3g, want ≈%.3g", vol, want)
	}
	for i := 1; i < len(flows); i++ {
		if flows[i].At < flows[i-1].At {
			t.Fatal("arrivals not sorted")
		}
	}
}

func TestCrossProbCorrection(t *testing.T) {
	rackOf := make([]int, 12) // 2 racks of 6
	for i := range rackOf {
		rackOf[i] = i / 6
	}
	got := crossProb(12, rackOf)
	// P(same rack) = (5/11) → cross ≈ 0.545.
	if got < 0.52 || got > 0.57 {
		t.Fatalf("crossProb = %.3f, want ~0.545", got)
	}
	// Correction raises the arrival rate.
	base := BackgroundParams{CDF: WebSearch, Hosts: 12, UplinkCapacity: 80 * units.Gbps, Load: 0.5, Duration: sim.Millisecond}
	withRacks := base
	withRacks.RackOf = rackOf
	if withRacks.ArrivalRate() <= base.ArrivalRate() {
		t.Fatal("rack correction should increase the arrival rate")
	}
}

func TestIncastGeneration(t *testing.T) {
	p := IncastParams{
		Hosts:          10,
		FlowsPerSender: 4,
		FlowSize:       8000,
		EventRate:      1000,
		Duration:       10 * sim.Millisecond,
	}
	r := rand.New(rand.NewSource(5))
	flows := p.Generate(r)
	if len(flows) == 0 {
		t.Fatal("no incast flows")
	}
	if len(flows)%(9*4) != 0 {
		t.Fatalf("%d flows, want a multiple of 36 per event", len(flows))
	}
	// All flows of one event target the same receiver.
	first := flows[:36]
	for _, f := range first {
		if f.Dst != first[0].Dst {
			t.Fatal("incast event has mixed receivers")
		}
		if f.Size != 8000 || !f.Incast {
			t.Fatal("incast flow misconfigured")
		}
	}
}

func TestEventRateFor(t *testing.T) {
	// 10% foreground of total: fg = bg/9.
	rate := EventRateFor(0.1, 9e9, 10, 4, 8000)
	perEvent := 9.0 * 4 * 8000
	wantFg := 1e9
	if got := rate * perEvent; got < wantFg*0.99 || got > wantFg*1.01 {
		t.Fatalf("fg volume %.3g, want 1e9", got)
	}
}

func TestDeployRacks(t *testing.T) {
	if len(DeployRacks(32, 0)) != 0 {
		t.Fatal("0% deployment must enable no racks")
	}
	if len(DeployRacks(32, 1)) != 32 {
		t.Fatal("100% deployment must enable all racks")
	}
	if len(DeployRacks(32, 0.5)) != 16 {
		t.Fatal("50% deployment must enable 16 racks")
	}
	if len(DeployRacks(32, 0.25)) != 8 {
		t.Fatal("25% deployment must enable 8 racks")
	}
}

func TestMergeSorts(t *testing.T) {
	a := []FlowSpec{{At: 3}, {At: 5}}
	b := []FlowSpec{{At: 1}, {At: 4}}
	m := Merge(a, b)
	for i := 1; i < len(m); i++ {
		if m[i].At < m[i-1].At {
			t.Fatal("merge not sorted")
		}
	}
	if len(m) != 4 {
		t.Fatalf("merged %d, want 4", len(m))
	}
}
