package workload

import "testing"

// Workload plans are user input (plan files on the flexsim/flexfarm
// command line). The contract under fuzzing: ParsePlan never panics and
// never touches the filesystem; every rejection is a typed *PlanError
// or a wrapped JSON decode error; and an accepted plan must re-validate
// and hash cleanly. Generation is deliberately not fuzzed — its cost
// scales with rate × horizon, so adversarial rates would turn the
// harness into an allocation stress test; plan_test.go covers it.

func FuzzParseWorkloadPlan(f *testing.F) {
	f.Add([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch"},` +
		`{"kind":"incast","fraction":0.1,"flow_size":8000,"coflow":true}]}`))
	f.Add([]byte(`{"name":"t","sources":[` +
		`{"kind":"poisson","tenant":"search","cdf":"websearch","load":0.3},` +
		`{"kind":"lognormal","tenant":"cache","cdf":"cachefollower","load":0.15,"sigma":1.5},` +
		`{"kind":"rpc","tenant":"rpc","fanout":4,"request_size":2000,"response_size":20000,"load":0.05}]}`))
	f.Add([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch","load":0.4,` +
		`"modulate":[{"kind":"flash","at":"1ms","end":"3ms","peak":2.5,"ramp":"250us"}]},` +
		`{"kind":"onoff","cdf":"hadoop","load":0.1,"on":"200us","off":"400us"}]}`))
	f.Add([]byte(`{"sources":[{"kind":"trace","path":"flows.csv"}]}`))
	f.Add([]byte(`{"sources":[{"kind":"rpc","fanout":0,"request_size":-1,"rate":1e309}]}`))
	f.Add([]byte(`{"sources":[{"kind":"onoff","cdf":"hadoop","on":"2 fortnights","off":"1ms"}]}`))
	f.Add([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch",` +
		`"modulate":[{"kind":"diurnal","period":"-5ms","min":2}]}]}`))
	f.Add([]byte(`{"sources":[{"kind":"poisson","cdf":"websearch"}]} {}`))
	f.Add([]byte(`{"sources":`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParsePlan(data)
		if err != nil {
			if p != nil {
				t.Fatalf("error %v returned alongside a plan", err)
			}
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePlan accepted a plan Validate rejects: %v", err)
		}
		if p.Hash() == "" {
			t.Fatal("accepted plan hashes to empty string")
		}
	})
}
