package workload

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"flexpass/internal/sim"
)

// Flow traces can be exported to and replayed from a simple CSV format,
// so generated workloads are inspectable and custom traces (e.g. from a
// production sniffer) can drive the harness:
//
//	at_us,src,dst,size_bytes,incast
//	12.500,3,17,20480,0

// WriteTrace serializes flows as CSV.
func WriteTrace(w io.Writer, flows []FlowSpec) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("at_us,src,dst,size_bytes,incast\n"); err != nil {
		return err
	}
	for _, f := range flows {
		inc := 0
		if f.Incast {
			inc = 1
		}
		if _, err := fmt.Fprintf(bw, "%.3f,%d,%d,%d,%d\n",
			f.At.Micros(), f.Src, f.Dst, f.Size, inc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TraceID returns a stable identity for a trace-driven workload:
// "trace:" plus a short digest of the flows' canonical CSV form. Runs
// fed the same flow list get the same ID regardless of the trace
// file's name, comment lines, or field formatting quirks.
func TraceID(flows []FlowSpec) string {
	h := sha256.New()
	// WriteTrace to a hash never fails: the hash sink cannot error.
	_ = WriteTrace(h, flows)
	return "trace:" + hex.EncodeToString(h.Sum(nil))[:12]
}

// ReadTrace parses a CSV trace. Lines are validated strictly: a malformed
// line aborts with its line number.
func ReadTrace(r io.Reader) ([]FlowSpec, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var flows []FlowSpec
	lineNo := 0
	seenData := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The header is skipped wherever it first appears: comment and
		// blank lines may legitimately precede it, so this must not be
		// pinned to line 1.
		if !seenData && strings.HasPrefix(line, "at_us") {
			continue
		}
		seenData = true
		fields := strings.Split(line, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("workload: trace line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		atUS, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || atUS < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad arrival time %q", lineNo, fields[0])
		}
		src, err := strconv.Atoi(fields[1])
		if err != nil || src < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad src %q", lineNo, fields[1])
		}
		dst, err := strconv.Atoi(fields[2])
		if err != nil || dst < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad dst %q", lineNo, fields[2])
		}
		if src == dst {
			return nil, fmt.Errorf("workload: trace line %d: src == dst == %d", lineNo, src)
		}
		size, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad size %q", lineNo, fields[3])
		}
		inc, err := strconv.Atoi(fields[4])
		if err != nil || (inc != 0 && inc != 1) {
			return nil, fmt.Errorf("workload: trace line %d: bad incast flag %q", lineNo, fields[4])
		}
		flows = append(flows, FlowSpec{
			At:     sim.Time(atUS * float64(sim.Microsecond)),
			Src:    src,
			Dst:    dst,
			Size:   size,
			Incast: inc == 1,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	stableSortByAt(flows)
	return flows, nil
}
