package workload

import "sort"

// stableSortByAt orders flows by arrival time, preserving generation order
// for equal instants (determinism).
func stableSortByAt(fs []FlowSpec) {
	sort.SliceStable(fs, func(i, j int) bool { return fs[i].At < fs[j].At })
}
