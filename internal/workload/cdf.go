// Package workload provides the paper's benchmark workloads: realistic
// flow-size distributions (web search [2], cache follower [41], data
// mining [14], Hadoop [41]), Poisson background arrivals calibrated to a
// target core load, the §6.2 foreground incast generator, and the
// per-rack deployment assignment.
package workload

import (
	"math/rand"
	"sort"
)

// CDF is a piecewise-linear flow-size distribution: P(size <= Sizes[i]) =
// Probs[i]. Sampling interpolates linearly between points.
type CDF struct {
	Name  string
	Sizes []float64 // bytes, strictly increasing
	Probs []float64 // nondecreasing, ending at 1
}

// NewCDF validates and builds a CDF.
func NewCDF(name string, pts [][2]float64) *CDF {
	c := &CDF{Name: name}
	for i, p := range pts {
		if i > 0 {
			if p[0] <= c.Sizes[i-1] {
				panic("workload: CDF sizes must increase")
			}
			if p[1] < c.Probs[i-1] {
				panic("workload: CDF probs must be nondecreasing")
			}
		}
		c.Sizes = append(c.Sizes, p[0])
		c.Probs = append(c.Probs, p[1])
	}
	if c.Probs[len(c.Probs)-1] != 1 {
		panic("workload: CDF must end at probability 1")
	}
	return c
}

// Sample draws a flow size in bytes.
func (c *CDF) Sample(r *rand.Rand) int64 {
	u := r.Float64()
	i := sort.SearchFloat64s(c.Probs, u)
	if i == 0 {
		// Below the first point: scale within [~0, Sizes[0]].
		frac := 0.0
		if c.Probs[0] > 0 {
			frac = u / c.Probs[0]
		}
		s := c.Sizes[0] * frac
		if s < 1 {
			s = 1
		}
		return int64(s)
	}
	if i >= len(c.Probs) {
		return int64(c.Sizes[len(c.Sizes)-1])
	}
	p0, p1 := c.Probs[i-1], c.Probs[i]
	s0, s1 := c.Sizes[i-1], c.Sizes[i]
	if p1 == p0 {
		return int64(s1)
	}
	return int64(s0 + (s1-s0)*(u-p0)/(p1-p0))
}

// Mean returns the expected flow size in bytes (closed form for the
// piecewise-linear CDF).
func (c *CDF) Mean() float64 {
	mean := c.Sizes[0] / 2 * c.Probs[0] // ramp from ~0 to the first point
	for i := 1; i < len(c.Sizes); i++ {
		dp := c.Probs[i] - c.Probs[i-1]
		mean += dp * (c.Sizes[i] + c.Sizes[i-1]) / 2
	}
	return mean
}

// The benchmark distributions. Web search and data mining are the widely
// used tables from the DCTCP [2] and VL2 [14] papers; cache follower and
// Hadoop approximate the Facebook production distributions of Roy et
// al. [41] (many sub-KB/KB-scale flows with a heavy tail, and small
// analytics flows, respectively).
var (
	WebSearch = NewCDF("websearch", [][2]float64{
		{10_000, 0.15}, {20_000, 0.20}, {30_000, 0.30}, {50_000, 0.40},
		{80_000, 0.53}, {200_000, 0.60}, {1_000_000, 0.70}, {2_000_000, 0.80},
		{5_000_000, 0.90}, {10_000_000, 0.97}, {30_000_000, 1.0},
	})
	DataMining = NewCDF("datamining", [][2]float64{
		{100, 0.015}, {180, 0.10}, {250, 0.20}, {560, 0.30}, {900, 0.40},
		{1_100, 0.50}, {1_870, 0.60}, {3_160, 0.70}, {10_000, 0.80},
		{400_000, 0.90}, {3_160_000, 0.95}, {100_000_000, 0.98},
		{1_000_000_000, 1.0},
	})
	CacheFollower = NewCDF("cachefollower", [][2]float64{
		{70, 0.15}, {300, 0.30}, {575, 0.45}, {1_150, 0.55}, {2_300, 0.65},
		{7_000, 0.72}, {30_000, 0.80}, {100_000, 0.87}, {400_000, 0.92},
		{1_500_000, 0.96}, {10_000_000, 1.0},
	})
	Hadoop = NewCDF("hadoop", [][2]float64{
		{130, 0.20}, {250, 0.40}, {560, 0.55}, {1_100, 0.65}, {4_000, 0.75},
		{16_000, 0.85}, {65_000, 0.92}, {260_000, 0.97}, {1_000_000, 0.99},
		{10_000_000, 1.0},
	})
)

// ByName looks up a distribution.
func ByName(name string) *CDF {
	switch name {
	case "websearch":
		return WebSearch
	case "datamining":
		return DataMining
	case "cachefollower":
		return CacheFollower
	case "hadoop":
		return Hadoop
	}
	return nil
}
