// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is an integer number of picoseconds. Events scheduled for the same
// instant fire in the order they were scheduled, which makes every run with
// the same inputs bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a simulated instant, in picoseconds since the start of the run.
type Time int64

// Common durations expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

// event is one scheduled callback. Events are owned by the engine and
// recycled through a free list; gen distinguishes incarnations so a stale
// Timer for a recycled event cannot cancel its successor.
type event struct {
	at   Time
	seq  uint64 // insertion order, breaks ties deterministically
	fn   func()
	gen  uint64
	idx  int32 // heap index; -1 when not in the heap
	comp uint8 // Component that scheduled the event (attribution only)
}

// Timer is a handle to a scheduled event that can be cancelled. The zero
// Timer is valid and Stop on it reports false.
type Timer struct {
	eng *Engine
	ev  *event
	gen uint64
}

// Stop cancels the timer, removing the event from the schedule
// immediately (it no longer counts toward Engine.Pending). It reports
// whether the event had not yet fired and had not already been stopped.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen {
		return false
	}
	ev := t.ev
	t.ev = nil
	t.eng.remove(ev)
	t.eng.recycle(ev)
	return true
}

// Pending reports whether the event is still scheduled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.gen == t.gen
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  []*event // 4-ary min-heap ordered by (at, seq)
	free    []*event // recycled events
	rng     *rand.Rand
	stopped bool

	// Component attribution. curComp labels whoever is currently
	// scheduling: events stamped in At inherit it, and Run restores it
	// from the dispatched event, so a callback's own scheduling is
	// attributed to the component that scheduled the callback. This is
	// pure metadata — (at, seq) ordering, and therefore simulation
	// behaviour, never depends on it.
	curComp   Component
	compNames []string

	// profile, when set, observes every dispatched event's component and
	// wall-clock duration. Nil keeps the dispatch loop on the unprofiled
	// fast path (no clock reads).
	profile func(Component, time.Duration)

	// watch, when set, receives periodic progress publications and is
	// polled for aborts (see Watch). Nil keeps the dispatch loop on the
	// unobserved fast path.
	watch *Watch

	// Processed counts events dispatched so far (for perf reporting).
	Processed uint64
}

// Component identifies who scheduled an event, for profiling attribution.
// Component 0 is the generic "engine" label every engine starts with.
type Component uint8

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed)), compNames: []string{"engine"}}
}

// Component interns name and returns its label. Repeated calls with the
// same name return the same Component; registering more than 255 distinct
// names panics (labels are deliberately one byte so they ride in event
// struct padding). Interning is a setup-time operation — the linear scan
// never runs on the dispatch path.
func (e *Engine) Component(name string) Component {
	for i, n := range e.compNames {
		if n == name {
			return Component(i)
		}
	}
	if len(e.compNames) > 255 {
		panic("sim: more than 256 components registered")
	}
	e.compNames = append(e.compNames, name)
	return Component(len(e.compNames) - 1)
}

// ComponentNames returns the interned component names indexed by
// Component value. The returned slice is the engine's own; don't mutate.
func (e *Engine) ComponentNames() []string { return e.compNames }

// SetComponent switches the current scheduling attribution and returns
// the previous label, so boundaries stamp with
//
//	prev := eng.SetComponent(c)
//	... schedule ...
//	eng.SetComponent(prev)
//
// Events scheduled while a component is current inherit it, as do events
// scheduled from inside their callbacks, transitively.
func (e *Engine) SetComponent(c Component) (prev Component) {
	prev = e.curComp
	e.curComp = c
	return prev
}

// SetProfile installs fn to observe every dispatched event's component
// label and wall-clock dispatch duration. Passing nil removes the hook
// and restores the unprofiled fast path. The hook must not allocate if
// the caller wants to preserve the engine's zero-alloc dispatch.
func (e *Engine) SetProfile(fn func(Component, time.Duration)) { e.profile = fn }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// alloc takes an event from the free list, or heap-allocates when empty.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{idx: -1}
}

// recycle returns a detached event to the free list. Bumping gen
// invalidates every outstanding Timer for this incarnation.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	e.free = append(e.free, ev)
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := e.alloc()
	ev.at = t
	ev.seq = e.seq
	ev.fn = fn
	ev.comp = uint8(e.curComp)
	e.seq++
	e.push(ev)
	return Timer{eng: e, ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// Ticker is a handle to a periodic event created with Every.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	tickFn  func() // pre-bound t.tick, one closure for the ticker's lifetime
	timer   Timer
	stopped bool
}

// Every schedules fn to run repeatedly, every period, starting one period
// from now. It is the engine's hook for periodic observers (telemetry
// probes, samplers): the callback runs between same-instant events without
// perturbing their relative order, so a read-only fn never changes
// simulation results. Period must be positive.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every period must be positive, got %v", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.tickFn = t.tick
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.timer = t.eng.After(t.period, t.tickFn)
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	t.schedule()
}

// Stop cancels the ticker; the callback will not fire again and the
// pending event is removed from the schedule immediately.
func (t *Ticker) Stop() {
	if t == nil {
		return
	}
	t.stopped = true
	t.timer.Stop()
}

// Run dispatches events in timestamp order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still run.
func (e *Engine) Run(until Time) {
	e.stopped = false
	w := e.watch
	if w != nil {
		// A sticky abort makes every later Run a no-op dispatch-wise;
		// the clock still advances to until below, so sharded windows
		// keep their causality guarantees after a kill.
		if w.abort.Load() {
			e.stopped = true
		}
		w.publish(e.now, e.Processed)
	}
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		if w != nil && e.Processed&255 == 0 {
			w.publish(next.at, e.Processed)
			if w.abort.Load() {
				break
			}
		}
		e.popMin()
		e.now = next.at
		fn := next.fn
		comp := Component(next.comp)
		// Recycle before dispatch: a callback that schedules reuses this
		// event immediately, keeping the working set hot.
		e.recycle(next)
		e.Processed++
		// The dispatching component becomes current so events the callback
		// schedules inherit its attribution.
		e.curComp = comp
		if e.profile == nil {
			fn()
		} else {
			start := time.Now()
			fn()
			e.profile(comp, time.Since(start))
		}
	}
	if e.now < until {
		e.now = until
	}
	if w != nil {
		w.publish(e.now, e.Processed)
	}
}

// Pending reports the number of events still scheduled. Stopped timers are
// removed from the schedule immediately, so — unlike earlier revisions,
// which counted cancelled placeholders until they were popped — this is an
// exact live-event count.
func (e *Engine) Pending() int { return len(e.events) }

// The schedule is a hand-rolled 4-ary min-heap over (at, seq). Compared to
// container/heap this is monomorphic (no interface dispatch, no
// Push(any)/Pop() boxing) and shallower (log4 vs log2 levels), which is
// where the engine spends its time at fabric scale. Pop order — and
// therefore simulation behaviour — depends only on the (at, seq) total
// order, never on the internal array layout.

func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *event) {
	ev.idx = int32(len(e.events))
	e.events = append(e.events, ev)
	e.siftUp(int(ev.idx))
}

// popMin removes and returns the heap root; caller guarantees non-empty.
func (e *Engine) popMin() *event {
	h := e.events
	ev := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
		h[0].idx = 0
	}
	h[n] = nil
	e.events = h[:n]
	if n > 1 {
		e.siftDown(0)
	}
	ev.idx = -1
	return ev
}

// remove detaches an interior event (Timer.Stop) in O(log n).
func (e *Engine) remove(ev *event) {
	i := int(ev.idx)
	h := e.events
	n := len(h) - 1
	if i != n {
		h[i] = h[n]
		h[i].idx = int32(i)
	}
	h[n] = nil
	e.events = h[:n]
	if i != n {
		e.siftDown(i)
		e.siftUp(i)
	}
	ev.idx = -1
}

func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(ev, h[p]) {
			break
		}
		h[i] = h[p]
		h[i].idx = int32(i)
		i = p
	}
	h[i] = ev
	ev.idx = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], ev) {
			break
		}
		h[i] = h[best]
		h[i].idx = int32(i)
		i = best
	}
	h[i] = ev
	ev.idx = int32(i)
}
