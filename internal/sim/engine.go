// Package sim provides a deterministic discrete-event simulation engine.
//
// Time is an integer number of picoseconds. Events scheduled for the same
// instant fire in the order they were scheduled, which makes every run with
// the same inputs bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a simulated instant, in picoseconds since the start of the run.
type Time int64

// Common durations expressed in picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", t.Millis())
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t)/int64(Nanosecond))
	}
}

type event struct {
	at  Time
	seq uint64 // insertion order, breaks ties deterministically
	fn  func()
	idx int // heap index; -1 when cancelled or popped
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet fired
// (and had not already been stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil // engine skips events with nil fn
	return true
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event scheduler.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	stopped bool

	// Processed counts events dispatched so far (for perf reporting).
	Processed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose random
// stream is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// Ticker is a handle to a periodic event created with Every.
type Ticker struct {
	eng     *Engine
	period  Time
	fn      func()
	stopped bool
}

// Every schedules fn to run repeatedly, every period, starting one period
// from now. It is the engine's hook for periodic observers (telemetry
// probes, samplers): the callback runs between same-instant events without
// perturbing their relative order, so a read-only fn never changes
// simulation results. Period must be positive.
func (e *Engine) Every(period Time, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every period must be positive, got %v", period))
	}
	t := &Ticker{eng: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.eng.After(t.period, t.tick)
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	t.schedule()
}

// Stop cancels the ticker; the callback will not fire again.
func (t *Ticker) Stop() {
	if t != nil {
		t.stopped = true
	}
}

// Run dispatches events in timestamp order until the queue empties, the
// clock passes until, or Stop is called. Events scheduled exactly at until
// still run.
func (e *Engine) Run(until Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		if next.fn != nil {
			fn := next.fn
			next.fn = nil
			e.Processed++
			fn()
		}
	}
	if e.now < until {
		e.now = until
	}
}

// Pending reports the number of events still queued (including cancelled
// placeholders that have not yet been popped).
func (e *Engine) Pending() int { return len(e.events) }
