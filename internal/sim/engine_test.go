package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run(Second)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != Second {
		t.Fatalf("Now = %v, want %v", e.Now(), Second)
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Microsecond, func() { got = append(got, i) })
	}
	e.Run(Second)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO: got[%d] = %d", i, got[i])
		}
	}
}

func TestEngineAfterAccumulates(t *testing.T) {
	e := NewEngine(1)
	var hits []Time
	var step func()
	step = func() {
		hits = append(hits, e.Now())
		if len(hits) < 4 {
			e.After(100*Nanosecond, step)
		}
	}
	e.After(100*Nanosecond, step)
	e.Run(Second)
	for i, h := range hits {
		want := Time(i+1) * 100 * Nanosecond
		if h != want {
			t.Fatalf("hit %d at %v, want %v", i, h, want)
		}
	}
}

func TestEngineRunUntilStopsEarly(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(2*Millisecond, func() { fired = true })
	e.Run(Millisecond)
	if fired {
		t.Fatal("event beyond until fired")
	}
	if e.Now() != Millisecond {
		t.Fatalf("Now = %v, want 1ms", e.Now())
	}
	e.Run(3 * Millisecond)
	if !fired {
		t.Fatal("event not fired after extending run")
	}
}

func TestEngineEventAtBoundaryFires(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.At(Millisecond, func() { fired = true })
	e.Run(Millisecond)
	if !fired {
		t.Fatal("event exactly at until must fire")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(Microsecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	e.Run(Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Microsecond, func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run(Second)
	if n != 3 {
		t.Fatalf("processed %d events after Stop, want 3", n)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(Microsecond, func() {})
	})
	e.Run(Second)
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var tick func()
		tick = func() {
			trace = append(trace, int64(e.Now()))
			if len(trace) < 200 {
				d := Time(e.Rand().Intn(1000)+1) * Nanosecond
				e.After(d, tick)
			}
		}
		e.After(0, tick)
		e.Run(Second)
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: regardless of insertion order, events fire in nondecreasing
// time order and every scheduled event fires.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine(7)
		var fired []Time
		for _, d := range delays {
			at := Time(d) * Nanosecond
			e.At(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run(Time(1<<16) * Nanosecond)
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000000s"},
		{3 * Millisecond, "3.000ms"},
		{4 * Microsecond, "4.000us"},
		{5 * Nanosecond, "5ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(Microsecond, func() {})
	e.Run(Second)
	if tm.Stop() {
		t.Fatal("Stop after fire must report false")
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.After(Microsecond, func() {})
	e.After(Millisecond, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d", e.Pending())
	}
	e.Run(Second)
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d", e.Pending())
	}
}

func TestNilTimerStop(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil timer Stop must be false")
	}
}

func TestEveryTicks(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.Every(10*Microsecond, func() { fired = append(fired, e.Now()) })
	e.Run(35 * Microsecond)
	if len(fired) != 3 {
		t.Fatalf("ticks = %d, want 3", len(fired))
	}
	for i, at := range fired {
		if want := Time(i+1) * 10 * Microsecond; at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = e.Every(10*Microsecond, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	e.Run(Second)
	if n != 2 {
		t.Fatalf("ticks after Stop = %d, want 2", n)
	}
	if e.Pending() != 0 {
		t.Fatalf("stopped ticker left %d events queued", e.Pending())
	}
	var nilTk *Ticker
	nilTk.Stop() // must not panic
}

func TestEveryBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) must panic")
		}
	}()
	NewEngine(1).Every(0, func() {})
}
