package sim

import (
	"testing"
	"time"
)

// TestComponentInterning covers the registry: component 0 is "engine",
// repeated names intern to the same label, and names resolve back.
func TestComponentInterning(t *testing.T) {
	e := NewEngine(1)
	if got := e.ComponentNames(); len(got) != 1 || got[0] != "engine" {
		t.Fatalf("fresh engine components = %v, want [engine]", got)
	}
	a := e.Component("netem/tx")
	b := e.Component("transport/flexpass")
	if a2 := e.Component("netem/tx"); a2 != a {
		t.Fatalf("re-interning returned %d, want %d", a2, a)
	}
	if a == b || a == 0 || b == 0 {
		t.Fatalf("distinct names must get distinct nonzero labels: %d %d", a, b)
	}
	names := e.ComponentNames()
	if names[a] != "netem/tx" || names[b] != "transport/flexpass" {
		t.Fatalf("names = %v", names)
	}
}

// TestComponentInheritance verifies the attribution model: an event
// scheduled while a component is current carries that label, and events
// its callback schedules inherit it transitively — while an explicitly
// re-stamped boundary switches attribution mid-dispatch.
func TestComponentInheritance(t *testing.T) {
	e := NewEngine(1)
	compA := e.Component("a")
	compB := e.Component("b")

	got := map[string][]Component{}
	observe := func(c Component, _ time.Duration) {
		got["dispatch"] = append(got["dispatch"], c)
	}
	e.SetProfile(observe)

	prev := e.SetComponent(compA)
	e.After(Microsecond, func() {
		// Inherit: this dispatch runs as compA, so this inner event
		// must also be attributed to compA.
		e.After(Microsecond, func() {})
		// Explicit boundary: the next event runs as compB.
		p := e.SetComponent(compB)
		e.After(2*Microsecond, func() {})
		e.SetComponent(p)
	})
	e.SetComponent(prev)
	if cur := e.SetComponent(prev); cur != prev {
		t.Fatalf("SetComponent returned %d, want restored %d", cur, prev)
	}

	e.Run(Second)
	want := []Component{compA, compA, compB}
	if len(got["dispatch"]) != len(want) {
		t.Fatalf("dispatched %d events, want %d", len(got["dispatch"]), len(want))
	}
	for i, c := range want {
		if got["dispatch"][i] != c {
			t.Fatalf("dispatch %d attributed to %d, want %d", i, got["dispatch"][i], c)
		}
	}
}

// TestComponentDoesNotAffectOrder schedules an interleaved set of events
// with and without component stamping and checks identical dispatch
// order — attribution is pure metadata.
func TestComponentDoesNotAffectOrder(t *testing.T) {
	run := func(stamp bool) []int {
		e := NewEngine(7)
		c := e.Component("x")
		var got []int
		for i := 0; i < 100; i++ {
			i := i
			if stamp && i%3 == 0 {
				prev := e.SetComponent(c)
				e.At(Time(i%11)*Microsecond, func() { got = append(got, i) })
				e.SetComponent(prev)
			} else {
				e.At(Time(i%11)*Microsecond, func() { got = append(got, i) })
			}
		}
		e.Run(Second)
		return got
	}
	plain, stamped := run(false), run(true)
	if len(plain) != len(stamped) {
		t.Fatalf("event counts differ: %d vs %d", len(plain), len(stamped))
	}
	for i := range plain {
		if plain[i] != stamped[i] {
			t.Fatalf("order diverged at %d: %d vs %d", i, plain[i], stamped[i])
		}
	}
}

// TestZeroAllocProfiledDispatch extends the steady-state allocation pin
// to the profiled path: with a SetProfile hook installed (accumulating
// into a fixed array, as internal/prof does) a schedule+dispatch cycle
// must still perform zero heap allocations.
func TestZeroAllocProfiledDispatch(t *testing.T) {
	e := NewEngine(1)
	var stats [256]struct {
		n    uint64
		wall time.Duration
	}
	e.SetProfile(func(c Component, d time.Duration) {
		stats[c].n++
		stats[c].wall += d
	})
	fn := func() {}
	comp := e.Component("hot")
	prev := e.SetComponent(comp)
	for i := 0; i < 64; i++ {
		e.After(Time(i)*Microsecond, fn)
	}
	e.Run(e.Now() + Millisecond)
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(Microsecond, fn)
		e.Run(e.Now() + Millisecond)
	})
	e.SetComponent(prev)
	if allocs != 0 {
		t.Fatalf("profiled After+dispatch allocates %.1f objects/op, want 0", allocs)
	}
	if stats[comp].n == 0 {
		t.Fatal("profile hook never observed the component")
	}
}
