package sim

import "testing"

// TestZeroAllocSteadyState pins the engine's allocation budget: once the
// event free list is warm, a schedule+dispatch cycle performs zero heap
// allocations. A regression here (a new closure, a boxed interface, a
// Timer escaping) fails the build, not just a benchmark dashboard.
func TestZeroAllocSteadyState(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i)*Microsecond, fn)
	}
	e.Run(e.Now() + Millisecond) // warm the heap and free list
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(Microsecond, fn)
		e.Run(e.Now() + Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("After+dispatch allocates %.1f objects/op, want 0", allocs)
	}
}

// TestZeroAllocTimerChurn pins schedule+cancel: Timers are values and
// cancelled events return straight to the free list.
func TestZeroAllocTimerChurn(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		tm := e.After(Second, fn)
		tm.Stop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := e.After(Second, fn)
		tm.Stop()
	})
	if allocs != 0 {
		t.Fatalf("After+Stop allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTimerStopRemovesImmediately verifies the new Stop semantics: the
// cancelled event leaves the schedule at once instead of lingering as a
// nil-fn placeholder until popped.
func TestTimerStopRemovesImmediately(t *testing.T) {
	e := NewEngine(1)
	var tms []Timer
	for i := 1; i <= 100; i++ {
		tms = append(tms, e.After(Time(i)*Microsecond, func() {}))
	}
	if got := e.Pending(); got != 100 {
		t.Fatalf("pending = %d, want 100", got)
	}
	for i, tm := range tms {
		if i%2 == 0 {
			tm.Stop()
		}
	}
	if got := e.Pending(); got != 50 {
		t.Fatalf("pending after stopping half = %d, want 50", got)
	}
	e.Run(Second)
	if got := e.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

// TestStaleTimerAfterRecycle proves the generation guard: once an event
// fires and its struct is recycled into a new schedule, the old Timer
// must be inert — Stop returns false and leaves the new event alone.
func TestStaleTimerAfterRecycle(t *testing.T) {
	e := NewEngine(1)
	old := e.After(Microsecond, func() {})
	e.Run(Second) // fires; its event returns to the free list

	fired := false
	fresh := e.After(Microsecond, func() { fired = true }) // reuses the struct
	if old.Stop() {
		t.Fatal("stale Stop must report false")
	}
	if !fresh.Pending() {
		t.Fatal("stale Stop must not cancel the recycled event's new incarnation")
	}
	e.Run(e.Now() + Second)
	if !fired {
		t.Fatal("recycled event must still fire")
	}
}

// TestInteriorRemovalKeepsOrder stops events scattered through a large
// heap and checks the survivors still fire in exact (at, seq) order —
// interior removal must never corrupt the heap invariant.
func TestInteriorRemovalKeepsOrder(t *testing.T) {
	e := NewEngine(1)
	const n = 500
	var got []int
	var tms []Timer
	for i := 0; i < n; i++ {
		i := i
		// Deliberately colliding timestamps so seq tie-breaking is exercised.
		tms = append(tms, e.At(Time(i%37)*Microsecond, func() { got = append(got, i) }))
	}
	for i, tm := range tms {
		if i%3 == 0 {
			tm.Stop()
		}
	}
	e.Run(Second)
	var want []int
	for at := 0; at < 37; at++ {
		for i := 0; i < n; i++ {
			if i%3 != 0 && i%37 == at {
				want = append(want, i)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverged at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

// TestTimerPending covers the Timer.Pending accessor through the
// schedule → fire and schedule → stop lifecycles.
func TestTimerPending(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(Microsecond, func() {})
	if !tm.Pending() {
		t.Fatal("scheduled timer must be pending")
	}
	e.Run(Second)
	if tm.Pending() {
		t.Fatal("fired timer must not be pending")
	}
	tm2 := e.After(Microsecond, func() {})
	tm2.Stop()
	if tm2.Pending() {
		t.Fatal("stopped timer must not be pending")
	}
}
