package sim

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// pcgSource adapts math/rand/v2's PCG generator to the math/rand
// Source64 interface, so a shard engine's Rand keeps the *rand.Rand type
// every consumer in the repo already holds. rand.Rand detects Source64
// and draws through Uint64 directly.
type pcgSource struct{ pcg *randv2.PCG }

func (s pcgSource) Uint64() uint64 { return s.pcg.Uint64() }
func (s pcgSource) Int63() int64   { return int64(s.pcg.Uint64() >> 1) }
func (s pcgSource) Seed(seed int64) {
	s.pcg.Seed(uint64(seed), uint64(seed))
}

// shardStream derives the two 64-bit PCG seed words for one shard of a
// sharded run. The mixing constants are SplitMix64's, so nearby
// (rootSeed, shard) pairs land in unrelated streams.
func shardStream(rootSeed int64, shard int) (uint64, uint64) {
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	base := uint64(rootSeed) * 0x9e3779b97f4a7c15
	return mix(base + uint64(shard)*0x9e3779b97f4a7c15), mix(base ^ (uint64(shard)+1)*0xd1b54a32d192ed03)
}

// NewShardEngine builds the engine for shard `shard` of a sharded run
// seeded with rootSeed. Each shard gets its own PCG random stream
// derived from (rootSeed, shard id), so RNG draws are a pure function of
// that pair and never depend on cross-shard event interleaving. Shard
// counts don't nest streams: the same (rootSeed, shard) always yields
// the same stream regardless of how many shards the run uses.
//
// Single-threaded runs keep NewEngine's math/rand source untouched — a
// sharded run is a different RNG regime by construction (one global
// stream cannot be consumed in a reproducible order by concurrent
// shards), which is why schemes that draw from Engine.Rand during a run
// are reproducible per (seed, shards) pair rather than across shard
// counts. See internal/sim/shard.
func NewShardEngine(rootSeed int64, shard int) *Engine {
	s1, s2 := shardStream(rootSeed, shard)
	return &Engine{
		rng:       rand.New(pcgSource{pcg: randv2.NewPCG(s1, s2)}),
		compNames: []string{"engine"},
	}
}
