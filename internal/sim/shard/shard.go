// Package shard runs several sim.Engines in parallel under a
// conservative-lookahead synchronization protocol (the SimBricks/null
// message family), so one fabric can be partitioned across cores without
// giving up determinism.
//
// The fabric is cut only at wires with a fixed propagation delay. With
// L = min propagation delay over all cross-shard wires (the lookahead),
// a packet handed to a cross-shard wire at local time t arrives at the
// peer strictly after t+L (serialization time is always positive). Time
// is therefore divided into windows of length L and every shard runs the
// same round schedule: in round r it first receives exactly one batch
// per incoming edge (the batches its neighbors produced in round r-1 —
// an empty batch is the null message that lets the receiver advance),
// then executes its engine up to W_r = min((r+1)·L, until), then flushes
// one batch per outgoing edge. Any item generated in round r-1 has
// arrival time > r·L, so it can only be needed by round r or later:
// every shard always holds all remote input for the window it is about
// to run, and no shard ever waits on speculation or rollback.
//
// Determinism contract: for a fixed (seed, shard count) pair the run is
// bit-for-bit reproducible. Incoming items are merged in the total order
// (arrival time, source shard, per-edge sequence) and injected into the
// engine ahead of the window in that order, so same-instant arrivals
// from different shards always tie-break identically; per-shard RNG
// streams (sim.NewShardEngine) keep random draws independent of the
// goroutine interleaving. Cross-shard tie-breaking necessarily differs
// from the single-engine global (time, seq) order, so digests are
// comparable per shard count, not across shard counts — except for
// runs whose event timestamps never collide at a boundary, where the
// sharded schedule is exactly the sequential one.
package shard

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
)

// Item is one timestamped cross-shard delivery: pkt arrives at dst (a
// node owned by the destination shard) at time At.
type Item struct {
	At  sim.Time
	Pkt *netem.Packet
	Dst netem.Node

	from int    // source shard (merge tie-break)
	seq  uint64 // per-edge send order (merge tie-break)
}

// Edge is the SPSC hand-off for one directed shard pair: the source
// shard's goroutine appends items during its window and flushes them as
// one batch per round; the destination shard's goroutine receives them
// at its next round boundary.
type Edge struct {
	from, to int
	ch       chan []Item
	buf      []Item
	seq      uint64
}

// Deliver queues a cross-shard arrival on this edge. It must be called
// from the source shard's goroutine (netem ports do, via Port.SetRemote,
// while their engine runs a window).
func (e *Edge) Deliver(at sim.Time, pkt *netem.Packet, dst netem.Node) {
	e.buf = append(e.buf, Item{At: at, Pkt: pkt, Dst: dst, from: e.from, seq: e.seq})
	e.seq++
}

// Shard is one partition: an engine plus its incoming and outgoing
// edges. All scheduling into the engine before Run and all reads after
// Run happen from the coordinating goroutine; during Run only the
// shard's own goroutine touches it.
type Shard struct {
	id  int
	eng *sim.Engine
	rt  *Runtime
	in  []*Edge // sorted by source shard id
	out []*Edge // sorted by destination shard id

	pending []Item // received items beyond the current horizon
	injQ    []Item // FIFO of items scheduled into the engine
	injHead int
	injFn   func()
	comp    sim.Component
}

// Engine returns the shard's engine.
func (s *Shard) Engine() *sim.Engine { return s.eng }

// counters is one shard's progress cell, padded to its own cache line so
// the wall-clock status reader never bounces the workers' lines.
type counters struct {
	horizon atomic.Int64
	events  atomic.Uint64
	_       [48]byte
}

// Runtime coordinates one sharded run.
type Runtime struct {
	shards    []*Shard
	lookahead sim.Time
	edges     map[[2]int]*Edge
	cells     []counters

	failed   chan struct{}
	failOnce sync.Once
	panicMsg string
}

// New builds a runtime over the given per-shard engines. lookahead must
// be positive and no larger than the minimum propagation delay of any
// edge later connected — the causality guard in inject panics if that is
// violated at run time.
func New(engs []*sim.Engine, lookahead sim.Time) *Runtime {
	if len(engs) == 0 {
		panic("shard: no engines")
	}
	if lookahead <= 0 {
		panic("shard: non-positive lookahead")
	}
	rt := &Runtime{
		lookahead: lookahead,
		edges:     make(map[[2]int]*Edge),
		cells:     make([]counters, len(engs)),
		failed:    make(chan struct{}),
	}
	for i, eng := range engs {
		s := &Shard{id: i, eng: eng, rt: rt, comp: eng.Component("shard/inject")}
		s.injFn = s.injectNext
		rt.shards = append(rt.shards, s)
	}
	return rt
}

// Shards returns the shard count.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// Shard returns shard i.
func (rt *Runtime) Shard(i int) *Shard { return rt.shards[i] }

// Lookahead returns the synchronization window length.
func (rt *Runtime) Lookahead() sim.Time { return rt.lookahead }

// Connect returns the directed edge from shard `from` to shard `to`,
// creating it on first use. All wires between the same shard pair share
// one edge (their deliveries are already ordered by the source engine).
func (rt *Runtime) Connect(from, to int) *Edge {
	if from == to {
		panic("shard: self edge")
	}
	key := [2]int{from, to}
	if e := rt.edges[key]; e != nil {
		return e
	}
	// Capacity 2: one batch in flight plus one being produced, so a
	// fast sender runs a full window ahead before blocking.
	e := &Edge{from: from, to: to, ch: make(chan []Item, 2)}
	rt.edges[key] = e
	src, dst := rt.shards[from], rt.shards[to]
	src.out = append(src.out, e)
	sort.Slice(src.out, func(i, j int) bool { return src.out[i].to < src.out[j].to })
	dst.in = append(dst.in, e)
	sort.Slice(dst.in, func(i, j int) bool { return dst.in[i].from < dst.in[j].from })
	return e
}

// HorizonPs returns the fleet-minimum committed simulated time in
// picoseconds — the conservative horizon every shard has fully executed.
// Safe to call from any goroutine while Run executes (live /status).
func (rt *Runtime) HorizonPs() int64 {
	min := rt.cells[0].horizon.Load()
	for i := range rt.cells[1:] {
		if h := rt.cells[i+1].horizon.Load(); h < min {
			min = h
		}
	}
	return min
}

// EventsProcessed sums events dispatched across all shards as of each
// shard's last committed window. Safe concurrently with Run.
func (rt *Runtime) EventsProcessed() uint64 {
	var n uint64
	for i := range rt.cells {
		n += rt.cells[i].events.Load()
	}
	return n
}

// fail records the first shard panic and releases every blocked peer.
func (rt *Runtime) fail(v any) {
	rt.failOnce.Do(func() {
		rt.panicMsg = fmt.Sprintf("shard: worker panic: %v\n%s", v, debug.Stack())
		close(rt.failed)
	})
}

// Run executes every shard concurrently up to and including `until`,
// then leaves each engine at now == until. A panic in any shard tears
// the round protocol down and is re-raised here with the worker stack.
func (rt *Runtime) Run(until sim.Time) {
	rounds := 0
	if until > 0 {
		rounds = int((until + rt.lookahead - 1) / rt.lookahead)
	}
	var wg sync.WaitGroup
	for _, s := range rt.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					rt.fail(r)
				}
			}()
			s.run(until, rounds)
		}(s)
	}
	wg.Wait()
	if rt.panicMsg != "" {
		panic(rt.panicMsg)
	}
}

// run is one shard's round loop. See the package comment for why
// receiving the round r-1 batches suffices to execute window r.
func (s *Shard) run(until sim.Time, rounds int) {
	for r := 0; r < rounds; r++ {
		if r > 0 {
			grew := false
			for _, e := range s.in {
				var batch []Item
				select {
				case batch = <-e.ch:
				case <-s.rt.failed:
					return
				}
				if len(batch) > 0 {
					s.pending = append(s.pending, batch...)
					grew = true
				}
			}
			if grew {
				// Total deterministic merge order: arrival time, then
				// source shard, then per-edge send sequence.
				sort.Slice(s.pending, func(i, j int) bool {
					a, b := &s.pending[i], &s.pending[j]
					if a.At != b.At {
						return a.At < b.At
					}
					if a.from != b.from {
						return a.from < b.from
					}
					return a.seq < b.seq
				})
			}
		}
		w := sim.Time(r+1) * s.rt.lookahead
		if w > until {
			w = until
		}
		s.inject(w)
		s.eng.Run(w)
		cell := &s.rt.cells[s.id]
		cell.horizon.Store(int64(w))
		cell.events.Store(s.eng.Processed)
		for _, e := range s.out {
			batch := e.buf
			e.buf = nil
			select {
			case e.ch <- batch:
			case <-s.rt.failed:
				return
			}
		}
	}
	// Zero-round runs (until == 0) still publish a horizon.
	if rounds == 0 {
		s.eng.Run(until)
		cell := &s.rt.cells[s.id]
		cell.horizon.Store(int64(until))
		cell.events.Store(s.eng.Processed)
	}
}

// inject schedules every pending item with arrival ≤ w into the engine,
// in merge order. The engine dispatches same-instant events in schedule
// order, so a FIFO queue drained by one pre-bound callback reproduces
// the merge order exactly with no per-item closure.
func (s *Shard) inject(w sim.Time) {
	n := 0
	for n < len(s.pending) && s.pending[n].At <= w {
		n++
	}
	if n == 0 {
		return
	}
	prev := s.eng.SetComponent(s.comp)
	for i := 0; i < n; i++ {
		it := s.pending[i]
		if it.At <= s.eng.Now() {
			panic(fmt.Sprintf("shard %d: causality violation: item for t=%v at now=%v (lookahead %v exceeds a cross-shard propagation delay)",
				s.id, it.At, s.eng.Now(), s.rt.lookahead))
		}
		s.injQ = append(s.injQ, it)
		s.eng.At(it.At, s.injFn)
	}
	s.eng.SetComponent(prev)
	rem := copy(s.pending, s.pending[n:])
	for i := rem; i < len(s.pending); i++ {
		s.pending[i] = Item{}
	}
	s.pending = s.pending[:rem]
}

// injectNext delivers the FIFO head into the destination node.
func (s *Shard) injectNext() {
	it := s.injQ[s.injHead]
	s.injQ[s.injHead] = Item{}
	s.injHead++
	if s.injHead == len(s.injQ) {
		s.injQ = s.injQ[:0]
		s.injHead = 0
	}
	it.Dst.Receive(it.Pkt)
}
