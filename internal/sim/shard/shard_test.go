package shard

import (
	"strings"
	"sync"
	"testing"

	"flexpass/internal/netem"
	"flexpass/internal/sim"
)

// sink records every delivery with its arrival instant. It belongs to
// one shard's engine, so appends are single-goroutine during the run.
type sink struct {
	eng *sim.Engine
	log []delivery
}

type delivery struct {
	at   sim.Time
	flow uint64
	seq  uint32
}

func (s *sink) NodeID() netem.NodeID { return 0 }
func (s *sink) Receive(pkt *netem.Packet) {
	s.log = append(s.log, delivery{at: s.eng.Now(), flow: pkt.Flow, seq: pkt.Seq})
}

const la = 10 * sim.Microsecond // test lookahead

func newRuntime(t *testing.T, n int) (*Runtime, []*sim.Engine) {
	t.Helper()
	engs := make([]*sim.Engine, n)
	for i := range engs {
		engs[i] = sim.NewShardEngine(42, i)
	}
	return New(engs, la), engs
}

// TestHandoffDeterministicMerge drives two source shards into one sink
// shard with colliding timestamps: the injection order must follow the
// documented (time, source shard, edge sequence) merge order, and two
// identical runs must observe the identical delivery log.
func TestHandoffDeterministicMerge(t *testing.T) {
	run := func() []delivery {
		rt, engs := newRuntime(t, 3)
		sk := &sink{eng: engs[0]}
		e1 := rt.Connect(1, 0)
		e2 := rt.Connect(2, 0)
		// Both senders emit at the same instants; every arrival lands
		// exactly one lookahead later, including exact ties between the
		// two source shards.
		for src, edge := range map[int]*Edge{1: e1, 2: e2} {
			src, edge := src, edge
			eng := engs[src]
			for i := 0; i < 40; i++ {
				i := i
				at := sim.Time(i) * sim.Microsecond
				eng.At(at, func() {
					edge.Deliver(eng.Now()+la+sim.Nanosecond, &netem.Packet{
						Flow: uint64(src), Seq: uint32(i),
					}, sk)
				})
			}
		}
		rt.Run(100 * sim.Microsecond)
		return sk.log
	}
	got := run()
	if len(got) != 80 {
		t.Fatalf("delivered %d of 80", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.at < a.at {
			t.Fatalf("deliveries out of time order at %d: %+v then %+v", i, a, b)
		}
		// Exact ties must resolve by source shard id (flow carries it).
		if b.at == a.at && b.flow < a.flow {
			t.Fatalf("tie at %v resolved against shard order: %+v then %+v", b.at, a, b)
		}
	}
	again := run()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("run-twice divergence at %d: %+v vs %+v", i, got[i], again[i])
		}
	}
}

// TestHorizonMonotonic polls the published horizon from a second
// goroutine while the fabric runs (the live-status access pattern, so
// this doubles as the -race check on the progress cells) and asserts it
// only moves forward, ending at `until`.
func TestHorizonMonotonic(t *testing.T) {
	rt, engs := newRuntime(t, 2)
	sk := &sink{eng: engs[1]}
	e := rt.Connect(0, 1)
	for i := 0; i < 2000; i++ {
		i := i
		engs[0].At(sim.Time(i)*100*sim.Nanosecond, func() {
			e.Deliver(engs[0].Now()+la+1, &netem.Packet{Seq: uint32(i)}, sk)
		})
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := int64(-1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := rt.HorizonPs()
			if h < last {
				t.Errorf("horizon moved backwards: %d after %d", h, last)
				return
			}
			last = h
			_ = rt.EventsProcessed()
		}
	}()
	until := 400 * sim.Microsecond
	rt.Run(until)
	close(stop)
	wg.Wait()
	if got := rt.HorizonPs(); got != int64(until) {
		t.Fatalf("final horizon %d != until %d", got, int64(until))
	}
	if rt.EventsProcessed() == 0 {
		t.Fatal("no events processed")
	}
	if len(sk.log) != 2000 {
		t.Fatalf("delivered %d of 2000", len(sk.log))
	}
}

// TestPanicPropagation: a panic inside one shard's window must tear the
// round protocol down on every shard (no deadlock on the hand-off
// channels) and re-raise from Run with the worker's message.
func TestPanicPropagation(t *testing.T) {
	rt, engs := newRuntime(t, 3)
	sk := &sink{eng: engs[1]}
	e := rt.Connect(0, 1)
	rt.Connect(1, 2)
	rt.Connect(2, 0)
	// Keep traffic flowing so the healthy shards are mid-protocol when
	// shard 2 dies.
	for i := 0; i < 100; i++ {
		i := i
		engs[0].At(sim.Time(i)*sim.Microsecond, func() {
			e.Deliver(engs[0].Now()+la+1, &netem.Packet{Seq: uint32(i)}, sk)
		})
	}
	engs[2].At(35*sim.Microsecond, func() { panic("boom in shard 2") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Run did not re-panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "boom in shard 2") {
			t.Fatalf("panic lost the worker message: %v", r)
		}
	}()
	rt.Run(200 * sim.Microsecond)
}

// TestCausalityPanic: delivering an item inside the lookahead window —
// an arrival the destination shard may already have simulated past —
// must be caught by the injection guard, not silently reordered.
func TestCausalityPanic(t *testing.T) {
	rt, engs := newRuntime(t, 2)
	sk := &sink{eng: engs[1]}
	e := rt.Connect(0, 1)
	engs[0].At(sim.Microsecond, func() {
		// Claimed arrival barely after send: violates at > send + la.
		e.Deliver(engs[0].Now()+sim.Nanosecond, &netem.Packet{}, sk)
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no causality panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "causality") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	rt.Run(100 * sim.Microsecond)
}

// TestDegenerateRuns: a zero-length run and an edgeless single shard
// must both terminate and publish their horizons.
func TestDegenerateRuns(t *testing.T) {
	rt, _ := newRuntime(t, 2)
	rt.Connect(0, 1)
	rt.Run(0)
	if got := rt.HorizonPs(); got != 0 {
		t.Fatalf("zero-run horizon %d", got)
	}

	solo, engs := newRuntime(t, 1)
	fired := false
	engs[0].At(sim.Microsecond, func() { fired = true })
	solo.Run(5 * sim.Microsecond)
	if !fired || solo.HorizonPs() != int64(5*sim.Microsecond) {
		t.Fatalf("single-shard run: fired=%v horizon=%d", fired, solo.HorizonPs())
	}
}

// TestUnsentFinalBatch: deliveries whose arrival falls past `until`
// stay pending or unsent — exactly like events left in a single
// engine's heap at cutoff — without wedging the final rounds.
func TestUnsentFinalBatch(t *testing.T) {
	rt, engs := newRuntime(t, 2)
	sk := &sink{eng: engs[1]}
	e := rt.Connect(0, 1)
	until := 50 * sim.Microsecond
	engs[0].At(until-sim.Nanosecond, func() {
		e.Deliver(engs[0].Now()+la+1, &netem.Packet{Flow: 7}, sk)
	})
	rt.Run(until)
	if len(sk.log) != 0 {
		t.Fatalf("arrival past until was delivered: %+v", sk.log)
	}
}
