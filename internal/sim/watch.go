package sim

import "sync/atomic"

// Watch is an externally observable window onto a running engine: the
// dispatch loop periodically publishes its clock and event count into
// atomic cells, and polls an abort flag, so a monitor goroutine can both
// see whether the engine is making progress and kill a wedged or
// livelocked run without any channel handshake on the hot path.
//
// A Watch is installed with Engine.SetWatch before Run. The engine only
// touches it every 256 dispatched events (plus once at Run entry and
// exit), so the cost with a watch installed is a masked counter test per
// event; with no watch installed the dispatch loop is unchanged.
//
// Abort is honored even when the simulated clock is not advancing (a
// same-instant event storm): the poll is keyed on events dispatched, not
// time. After an abort, Run still advances the clock to its `until`
// argument on exit, which keeps the sharded round protocol's causality
// guarantees intact — an aborted shard engine simply dispatches nothing
// in later windows.
type Watch struct {
	now    atomic.Int64
	events atomic.Uint64
	abort  atomic.Bool
}

// NowPs returns the most recently published engine clock, in picoseconds.
func (w *Watch) NowPs() int64 { return w.now.Load() }

// Events returns the most recently published dispatched-event count.
func (w *Watch) Events() uint64 { return w.events.Load() }

// Abort asks the engine to stop dispatching. The engine notices at its
// next poll point (within 256 events). Abort is sticky: once set, every
// subsequent Run call returns without dispatching, which is what lets a
// single flag kill a sharded run that executes as many short windows.
func (w *Watch) Abort() { w.abort.Store(true) }

// Aborted reports whether Abort has been called.
func (w *Watch) Aborted() bool { return w.abort.Load() }

func (w *Watch) publish(now Time, events uint64) {
	w.now.Store(int64(now))
	w.events.Store(events)
}

// SetWatch installs w as the engine's progress/abort cell; nil removes it
// and restores the unobserved fast path. The watch pointer is captured at
// Run entry, so install it before starting the run.
func (e *Engine) SetWatch(w *Watch) { e.watch = w }
