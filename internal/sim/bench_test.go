package sim

import (
	"testing"
	"time"
)

// BenchmarkEventChurn measures raw scheduler throughput with a working
// set typical of a busy fabric (a few thousand pending events).
func BenchmarkEventChurn(b *testing.B) {
	e := NewEngine(1)
	const pending = 4096
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(Time(1+n%97)*Microsecond, tick)
	}
	for i := 0; i < pending; i++ {
		e.After(Time(i)*Nanosecond, tick)
	}
	b.ResetTimer()
	wall := time.Now()
	target := uint64(b.N)
	for e.Processed < target {
		e.Run(e.Now() + Millisecond)
	}
	elapsed := time.Since(wall).Seconds()
	b.ReportMetric(float64(e.Processed), "events")
	if elapsed > 0 {
		b.ReportMetric(float64(e.Processed)/elapsed, "events/sec")
	}
}

func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		t := e.After(Second, func() {})
		t.Stop()
		if i%4096 == 0 {
			e.Run(e.Now()) // drain cancelled placeholders
		}
	}
}

// BenchmarkEngineDispatch is the headline scheduler cost number: one
// iteration is one schedule (After) plus one dispatch, measured at a
// steady working set, so ns/op and allocs/op read directly as ns/event
// and allocs/event.
func BenchmarkEngineDispatch(b *testing.B) {
	e := NewEngine(1)
	const pending = 256
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(Time(1+n%127)*Microsecond, tick)
	}
	for i := 0; i < pending; i++ {
		e.After(Time(i)*Nanosecond, tick)
	}
	e.Run(e.Now() + Millisecond) // warm the heap and any free lists
	b.ReportAllocs()
	b.ResetTimer()
	target := e.Processed + uint64(b.N)
	for e.Processed < target {
		e.Run(e.Now() + Millisecond)
	}
}

// BenchmarkTimerStopPending measures cancellation with a busy heap: every
// iteration schedules a far-out timer and stops it while thousands of
// live events churn. Pre-fix, cancelled placeholders linger until popped
// and inflate every subsequent heap operation.
func BenchmarkTimerStopPending(b *testing.B) {
	e := NewEngine(1)
	const pending = 4096
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(Time(1+n%97)*Microsecond, tick)
	}
	for i := 0; i < pending; i++ {
		e.After(Time(i)*Nanosecond, tick)
	}
	e.Run(e.Now() + Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := e.After(Second, func() {})
		t.Stop()
		if i%1024 == 0 {
			e.Run(e.Now() + Microsecond)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(e.Pending()), "pending-final")
}
