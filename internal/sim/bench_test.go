package sim

import (
	"testing"
	"time"
)

// BenchmarkEventChurn measures raw scheduler throughput with a working
// set typical of a busy fabric (a few thousand pending events).
func BenchmarkEventChurn(b *testing.B) {
	e := NewEngine(1)
	const pending = 4096
	var tick func()
	n := 0
	tick = func() {
		n++
		e.After(Time(1+n%97)*Microsecond, tick)
	}
	for i := 0; i < pending; i++ {
		e.After(Time(i)*Nanosecond, tick)
	}
	b.ResetTimer()
	wall := time.Now()
	target := uint64(b.N)
	for e.Processed < target {
		e.Run(e.Now() + Millisecond)
	}
	elapsed := time.Since(wall).Seconds()
	b.ReportMetric(float64(e.Processed), "events")
	if elapsed > 0 {
		b.ReportMetric(float64(e.Processed)/elapsed, "events/sec")
	}
}

func BenchmarkTimerStop(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < b.N; i++ {
		t := e.After(Second, func() {})
		t.Stop()
		if i%4096 == 0 {
			e.Run(e.Now()) // drain cancelled placeholders
		}
	}
}
