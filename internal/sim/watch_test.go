package sim

import (
	"testing"
	"time"
)

// TestWatchPublishes: the engine publishes clock and event counts into
// the watch at Run boundaries, so an external monitor sees progress
// without touching engine internals.
func TestWatchPublishes(t *testing.T) {
	e := NewEngine(1)
	w := &Watch{}
	e.SetWatch(w)
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.Run(100)
	if fired != 2 {
		t.Fatalf("dispatched %d events, want 2", fired)
	}
	if got := w.NowPs(); got != 100 {
		t.Errorf("watch clock = %d, want 100 (Run exit publishes `until`)", got)
	}
	if got := w.Events(); got != 2 {
		t.Errorf("watch events = %d, want 2", got)
	}
}

// TestWatchAbortStopsLivelock: a handler that perpetually reschedules
// itself at the same instant never lets Run(until) return on its own.
// The watch's abort must break the loop from another goroutine — this
// is exactly the harness stall-watchdog's kill path.
func TestWatchAbortStopsLivelock(t *testing.T) {
	e := NewEngine(1)
	w := &Watch{}
	e.SetWatch(w)
	var loop func()
	loop = func() { e.At(5, loop) } // same-instant self-reschedule
	e.At(5, loop)

	done := make(chan struct{})
	go func() {
		e.Run(1000)
		close(done)
	}()
	// Wait until the livelock is demonstrably spinning, then abort.
	deadline := time.After(5 * time.Second)
	for w.Events() < 10_000 {
		select {
		case <-deadline:
			t.Fatal("livelock never spun up")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	w.Abort()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("abort did not stop the livelocked engine")
	}
	if !w.Aborted() {
		t.Error("watch lost its abort flag")
	}
	if e.Now() != 1000 {
		t.Errorf("aborted Run left clock at %v, want 1000 (shard causality requires the clock to advance)", e.Now())
	}
}

// TestWatchAbortSticky: once aborted, every later Run dispatches
// nothing but still advances the clock to `until` — an aborted shard
// engine must keep satisfying the round protocol's time guarantees.
func TestWatchAbortSticky(t *testing.T) {
	e := NewEngine(1)
	w := &Watch{}
	e.SetWatch(w)
	w.Abort()
	fired := false
	e.At(10, func() { fired = true })
	e.Run(50)
	if fired {
		t.Error("aborted engine dispatched an event")
	}
	if e.Now() != 50 {
		t.Errorf("aborted Run left clock at %v, want 50", e.Now())
	}
	e.Run(80)
	if e.Now() != 80 {
		t.Errorf("second aborted Run left clock at %v, want 80", e.Now())
	}
}
