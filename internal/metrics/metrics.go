// Package metrics collects and summarizes experiment results: flow
// completion times with the paper's breakdowns (small flows, legacy vs
// upgraded traffic), throughput time series and starvation time, and
// switch queue occupancy.
package metrics

import (
	"math"
	"sort"

	"flexpass/internal/sim"
	"flexpass/internal/transport"
)

// FlowRecord is an immutable snapshot of a finished (or abandoned) flow.
type FlowRecord struct {
	ID          uint64
	Size        int64
	Start       sim.Time
	FCT         sim.Time // -1 if not completed
	Completed   bool
	Legacy      bool
	Incast      bool
	Transport   string
	Timeouts    int
	Retransmits int
	ProRetx     int
	Redundant   int
	MaxReorderB int64
	RxBytes     int64
}

// Snapshot captures a flow's stats.
func Snapshot(f *transport.Flow, incast bool) FlowRecord {
	return FlowRecord{
		ID:          f.ID,
		Size:        f.Size,
		Start:       f.Start,
		FCT:         f.FCT(),
		Completed:   f.Completed,
		Legacy:      f.Legacy,
		Incast:      incast,
		Transport:   f.Transport,
		Timeouts:    f.Timeouts,
		Retransmits: f.Retransmits,
		ProRetx:     f.ProRetx,
		Redundant:   f.RedundantSegs,
		MaxReorderB: f.MaxReorderB,
		RxBytes:     f.RxBytes,
	}
}

// Collector accumulates flow records.
type Collector struct {
	Records []FlowRecord
}

// Add appends a record.
func (c *Collector) Add(r FlowRecord) { c.Records = append(c.Records, r) }

// Filter selects flow records.
type Filter struct {
	MaxSize   int64 // 0 = no bound; the paper's "small flows" are <100kB
	MinSize   int64
	Legacy    *bool // nil = both
	Incast    *bool
	Transport string
	OnlyDone  bool
}

// Small is the paper's small-flow filter (<100kB).
func Small() Filter { return Filter{MaxSize: 100_000, OnlyDone: true} }

// Bool is a convenience for taking a *bool literal.
func Bool(v bool) *bool { return &v }

func (f Filter) match(r FlowRecord) bool {
	if f.OnlyDone && !r.Completed {
		return false
	}
	if f.MaxSize > 0 && r.Size >= f.MaxSize {
		return false
	}
	if r.Size < f.MinSize {
		return false
	}
	if f.Legacy != nil && r.Legacy != *f.Legacy {
		return false
	}
	if f.Incast != nil && r.Incast != *f.Incast {
		return false
	}
	if f.Transport != "" && r.Transport != f.Transport {
		return false
	}
	return true
}

// FCTs returns completion times of matching completed flows.
func (c *Collector) FCTs(f Filter) []sim.Time {
	f.OnlyDone = true
	var out []sim.Time
	for _, r := range c.Records {
		if f.match(r) {
			out = append(out, r.FCT)
		}
	}
	return out
}

// Count returns how many records match.
func (c *Collector) Count(f Filter) int {
	n := 0
	for _, r := range c.Records {
		if f.match(r) {
			n++
		}
	}
	return n
}

// SumInt sums an integer field over matching records.
func (c *Collector) SumInt(f Filter, field func(FlowRecord) int) int {
	n := 0
	for _, r := range c.Records {
		if f.match(r) {
			n += field(r)
		}
	}
	return n
}

// Incomplete counts flows that never finished (excluded from FCT stats but
// a red flag if large).
func (c *Collector) Incomplete() int {
	n := 0
	for _, r := range c.Records {
		if !r.Completed {
			n++
		}
	}
	return n
}

// Mean averages the durations; 0 for empty input.
func Mean(ts []sim.Time) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	var sum int64
	for _, t := range ts {
		sum += int64(t)
	}
	return sim.Time(sum / int64(len(ts)))
}

// Percentile returns the p-quantile (0<p<=1) using nearest-rank on a
// sorted copy; 0 for empty input.
func Percentile(ts []sim.Time, p float64) sim.Time {
	if len(ts) == 0 {
		return 0
	}
	sorted := make([]sim.Time, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// percentileSorted is nearest-rank indexing into an already-sorted slice.
func percentileSorted(sorted []sim.Time, p float64) sim.Time {
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// StdDev returns the standard deviation of the durations.
func StdDev(ts []sim.Time) sim.Time {
	if len(ts) < 2 {
		return 0
	}
	m := float64(Mean(ts))
	var ss float64
	for _, t := range ts {
		d := float64(t) - m
		ss += d * d
	}
	return sim.Time(math.Sqrt(ss / float64(len(ts))))
}

// Max returns the maximum duration; 0 for empty input.
func Max(ts []sim.Time) sim.Time {
	var m sim.Time
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// Quantiles returns the q-quantile curve of the durations at n evenly
// spaced probabilities ((i+1)/n for i in [0,n)) — an FCT CDF ready for
// plotting. The input is sorted once and indexed per quantile, so the
// cost is O(m log m + n) rather than one full sort per point.
func Quantiles(ts []sim.Time, n int) []sim.Time {
	if n <= 0 || len(ts) == 0 {
		return nil
	}
	sorted := make([]sim.Time, len(ts))
	copy(sorted, ts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]sim.Time, n)
	for i := 0; i < n; i++ {
		out[i] = percentileSorted(sorted, float64(i+1)/float64(n))
	}
	return out
}
