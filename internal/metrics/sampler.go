package metrics

import (
	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// Sampler periodically samples monotone counters (e.g. cumulative received
// bytes per traffic group) and turns the deltas into throughput time
// series — the basis of the paper's Fig 1/7/9 plots and of the starvation
// metric.
type Sampler struct {
	eng      *sim.Engine
	interval sim.Time
	names    []string
	sources  map[string]func() int64
	last     map[string]int64
	series   map[string][]int64 // bytes moved per interval
	running  bool
}

// NewSampler builds a sampler with the given sampling interval.
func NewSampler(eng *sim.Engine, interval sim.Time) *Sampler {
	return &Sampler{
		eng:      eng,
		interval: interval,
		sources:  make(map[string]func() int64),
		last:     make(map[string]int64),
		series:   make(map[string][]int64),
	}
}

// Track registers a named cumulative-bytes source.
func (s *Sampler) Track(name string, fn func() int64) {
	if _, dup := s.sources[name]; !dup {
		s.names = append(s.names, name)
	}
	s.sources[name] = fn
}

// Start begins periodic sampling (runs until the engine stops scheduling).
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	prev := s.eng.SetComponent(s.eng.Component("obs/sampler"))
	defer s.eng.SetComponent(prev)
	s.eng.Every(s.interval, func() {
		for _, name := range s.names {
			cur := s.sources[name]()
			s.series[name] = append(s.series[name], cur-s.last[name])
			s.last[name] = cur
		}
	})
}

// Interval returns the sampling interval.
func (s *Sampler) Interval() sim.Time { return s.interval }

// Rates converts a series to per-interval throughputs.
func (s *Sampler) Rates(name string) []units.Rate {
	deltas := s.series[name]
	out := make([]units.Rate, len(deltas))
	for i, d := range deltas {
		out[i] = units.RateOf(d, s.interval)
	}
	return out
}

// Series returns the raw per-interval byte deltas.
func (s *Sampler) Series(name string) []int64 { return s.series[name] }

// StarvationFraction returns the fraction of sampling windows in which the
// named group's throughput was below the threshold — the paper's
// starvation time ("duration of each transport's bandwidth being less
// than 20%", Fig 9c). Windows where both groups are idle (no offered
// load) are still counted, as in a testbed wall-clock measurement over an
// active experiment; pass skipIdle to exclude windows with zero total.
func StarvationFraction(a, b []units.Rate, threshold units.Rate, skipIdle bool) (fracA, fracB float64) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0, 0
	}
	windows, belowA, belowB := 0, 0, 0
	for i := 0; i < n; i++ {
		if skipIdle && a[i] == 0 && b[i] == 0 {
			continue
		}
		windows++
		if a[i] < threshold {
			belowA++
		}
		if b[i] < threshold {
			belowB++
		}
	}
	if windows == 0 {
		return 0, 0
	}
	return float64(belowA) / float64(windows), float64(belowB) / float64(windows)
}

// QueueSampler periodically samples queue occupancies (bytes) of selected
// port/queue pairs, for the §6.2 bounded-queue measurements.
type QueueSampler struct {
	eng      *sim.Engine
	interval sim.Time
	sources  []func() (total, red int64)
	Totals   []int64 // all samples of total occupancy across sources
	Reds     []int64
	running  bool
}

// NewQueueSampler builds a queue sampler.
func NewQueueSampler(eng *sim.Engine, interval sim.Time) *QueueSampler {
	return &QueueSampler{eng: eng, interval: interval}
}

// Track adds a queue to sample.
func (q *QueueSampler) Track(fn func() (total, red int64)) { q.sources = append(q.sources, fn) }

// Start begins sampling.
func (q *QueueSampler) Start() {
	if q.running {
		return
	}
	q.running = true
	prev := q.eng.SetComponent(q.eng.Component("obs/sampler"))
	defer q.eng.SetComponent(prev)
	q.eng.Every(q.interval, func() {
		for _, fn := range q.sources {
			t, r := fn()
			q.Totals = append(q.Totals, t)
			q.Reds = append(q.Reds, r)
		}
	})
}

// Stats summarizes samples: mean and p-quantile.
func Stats(samples []int64, p float64) (mean int64, pctl int64) {
	if len(samples) == 0 {
		return 0, 0
	}
	ts := make([]sim.Time, len(samples))
	var sum int64
	for i, s := range samples {
		ts[i] = sim.Time(s)
		sum += s
	}
	return sum / int64(len(samples)), int64(Percentile(ts, p))
}
