package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func rec(size int64, fct sim.Time, legacy bool) FlowRecord {
	return FlowRecord{Size: size, FCT: fct, Completed: true, Legacy: legacy}
}

func TestFilterSmallFlows(t *testing.T) {
	var c Collector
	c.Add(rec(50_000, sim.Millisecond, true))
	c.Add(rec(200_000, 2*sim.Millisecond, true))
	c.Add(rec(99_999, 3*sim.Millisecond, false))
	c.Add(FlowRecord{Size: 10, Completed: false})
	fcts := c.FCTs(Small())
	if len(fcts) != 2 {
		t.Fatalf("small flows = %d, want 2", len(fcts))
	}
	legacyOnly := Small()
	legacyOnly.Legacy = Bool(true)
	if n := c.Count(legacyOnly); n != 1 {
		t.Fatalf("legacy small = %d, want 1", n)
	}
	if c.Incomplete() != 1 {
		t.Fatalf("incomplete = %d, want 1", c.Incomplete())
	}
}

func TestStatsBasics(t *testing.T) {
	ts := []sim.Time{1, 2, 3, 4, 5}
	if Mean(ts) != 3 {
		t.Fatalf("mean = %v", Mean(ts))
	}
	if Max(ts) != 5 {
		t.Fatalf("max = %v", Max(ts))
	}
	if p := Percentile(ts, 0.5); p != 3 {
		t.Fatalf("median = %v", p)
	}
	if p := Percentile(ts, 0.99); p != 5 {
		t.Fatalf("p99 = %v", p)
	}
	if p := Percentile(ts, 1.0); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
	if Mean(nil) != 0 || Percentile(nil, 0.5) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
}

func TestStdDev(t *testing.T) {
	ts := []sim.Time{2, 4, 4, 4, 5, 5, 7, 9}
	if got := StdDev(ts); got != 2 {
		t.Fatalf("stddev = %v, want 2", got)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint32, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ts := make([]sim.Time, len(raw))
		for i, r := range raw {
			ts[i] = sim.Time(r)
		}
		pa := float64(a%100+1) / 100
		pb := float64(b%100+1) / 100
		if pa > pb {
			pa, pb = pb, pa
		}
		qa, qb := Percentile(ts, pa), Percentile(ts, pb)
		return qa <= qb && qb <= Max(ts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerSeries(t *testing.T) {
	eng := sim.NewEngine(1)
	var bytesA int64
	s := NewSampler(eng, sim.Millisecond)
	s.Track("a", func() int64 { return bytesA })
	s.Start()
	// 1MB/ms for 5ms then idle.
	for i := 1; i <= 5; i++ {
		eng.At(sim.Time(i)*sim.Millisecond-sim.Microsecond, func() { bytesA += 1_000_000 })
	}
	eng.Run(8 * sim.Millisecond)
	rates := s.Rates("a")
	if len(rates) != 8 {
		t.Fatalf("%d samples, want 8", len(rates))
	}
	if rates[0] != 8*units.Gbps {
		t.Fatalf("rate[0] = %v, want 8Gbps", rates[0])
	}
	if rates[7] != 0 {
		t.Fatalf("idle rate = %v, want 0", rates[7])
	}
}

func TestStarvationFraction(t *testing.T) {
	g := 1 * units.Gbps
	a := []units.Rate{10 * g, 10 * g, 1 * g, 1 * g}
	b := []units.Rate{1 * g, 1 * g, 10 * g, 10 * g}
	fa, fb := StarvationFraction(a, b, 2*g, false)
	if fa != 0.5 || fb != 0.5 {
		t.Fatalf("fractions = %v %v, want 0.5 0.5", fa, fb)
	}
	// skipIdle drops all-zero windows.
	a2 := []units.Rate{0, 10 * g}
	b2 := []units.Rate{0, 1 * g}
	fa2, fb2 := StarvationFraction(a2, b2, 2*g, true)
	if fa2 != 0 || fb2 != 1 {
		t.Fatalf("skipIdle fractions = %v %v, want 0 1", fa2, fb2)
	}
}

func TestQueueSampler(t *testing.T) {
	eng := sim.NewEngine(1)
	occ := int64(0)
	q := NewQueueSampler(eng, sim.Millisecond)
	q.Track(func() (int64, int64) { return occ, occ / 2 })
	q.Start()
	eng.At(1500*sim.Microsecond, func() { occ = 100_000 })
	eng.Run(4 * sim.Millisecond)
	if len(q.Totals) != 4 {
		t.Fatalf("%d samples, want 4", len(q.Totals))
	}
	mean, p90 := Stats(q.Totals, 0.9)
	if mean != 75_000 {
		t.Fatalf("mean = %d, want 75000", mean)
	}
	if p90 != 100_000 {
		t.Fatalf("p90 = %d, want 100000", p90)
	}
}

func TestQuantiles(t *testing.T) {
	ts := []sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	q := Quantiles(ts, 5)
	want := []sim.Time{2, 4, 6, 8, 10}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("quantiles = %v, want %v", q, want)
		}
	}
	if Quantiles(nil, 5) != nil || Quantiles(ts, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
	// Monotone.
	for i := 1; i < len(q); i++ {
		if q[i] < q[i-1] {
			t.Fatal("quantile curve not monotone")
		}
	}
}

func TestQuantilesEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []sim.Time
		n    int
		want []sim.Time
	}{
		{"empty input", nil, 5, nil},
		{"empty slice", []sim.Time{}, 3, nil},
		{"zero quantiles", []sim.Time{1, 2}, 0, nil},
		{"negative quantiles", []sim.Time{1, 2}, -3, nil},
		{"single sample", []sim.Time{42}, 4, []sim.Time{42, 42, 42, 42}},
		{"more quantiles than samples", []sim.Time{10, 20}, 4, []sim.Time{10, 10, 20, 20}},
		{"n equals len", []sim.Time{3, 1, 2}, 3, []sim.Time{1, 2, 3}},
		{"one quantile is the max", []sim.Time{5, 1, 9}, 1, []sim.Time{9}},
		{"duplicates", []sim.Time{7, 7, 7, 7}, 2, []sim.Time{7, 7}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := make([]sim.Time, len(tc.in))
			copy(in, tc.in)
			got := Quantiles(in, tc.n)
			if len(got) != len(tc.want) {
				t.Fatalf("Quantiles(%v, %d) = %v, want %v", tc.in, tc.n, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("Quantiles(%v, %d) = %v, want %v", tc.in, tc.n, got, tc.want)
				}
			}
			for i, v := range tc.in {
				if in[i] != v {
					t.Fatal("Quantiles mutated its input")
				}
			}
		})
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if Percentile(nil, 0.99) != 0 {
		t.Fatal("empty input must yield 0")
	}
	ts := []sim.Time{30, 10, 20}
	if got := Percentile(ts, 0); got != 10 { // clamps to the minimum
		t.Fatalf("p0 = %v, want 10", got)
	}
	if got := Percentile(ts, 1); got != 30 {
		t.Fatalf("p100 = %v, want 30", got)
	}
	if got := Percentile([]sim.Time{5}, 0.5); got != 5 {
		t.Fatalf("single-sample p50 = %v, want 5", got)
	}
}
