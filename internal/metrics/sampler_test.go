package metrics

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestSamplerDeltasAndRates(t *testing.T) {
	eng := sim.NewEngine(1)
	s := NewSampler(eng, 10*sim.Microsecond)

	var bytes int64
	s.Track("grp", func() int64 { return bytes })
	// Track must dedup names: re-registering replaces the source without
	// doubling the per-tick appends.
	s.Track("grp", func() int64 { return bytes })

	// Add 100 bytes at 5µs offsets so each 10µs window sees exactly one
	// addition regardless of same-instant tie-breaking.
	for i := 0; i < 8; i++ {
		eng.At(sim.Time(5+10*i)*sim.Microsecond, func() { bytes += 100 })
	}
	s.Start()
	s.Start() // idempotent
	eng.Run(45 * sim.Microsecond)

	deltas := s.Series("grp")
	if len(deltas) != 4 {
		t.Fatalf("series len = %d, want 4 (duplicate Track doubled samples?)", len(deltas))
	}
	for i, d := range deltas {
		if d != 100 {
			t.Fatalf("delta[%d] = %d, want 100", i, d)
		}
	}

	rates := s.Rates("grp")
	if len(rates) != 4 {
		t.Fatalf("rates len = %d", len(rates))
	}
	want := units.RateOf(100, 10*sim.Microsecond)
	for i, r := range rates {
		if r != want {
			t.Fatalf("rate[%d] = %v, want %v", i, r, want)
		}
	}
	if s.Interval() != 10*sim.Microsecond {
		t.Fatalf("interval = %v", s.Interval())
	}
}

func TestStarvationFractionEdgeCases(t *testing.T) {
	mk := func(vals ...int64) []units.Rate {
		out := make([]units.Rate, len(vals))
		for i, v := range vals {
			out[i] = units.Rate(v)
		}
		return out
	}
	// Length mismatch truncates to the shorter series.
	fa, fb := StarvationFraction(mk(0), mk(0, 100, 100), 10, false)
	if fa != 1 || fb != 1 {
		t.Fatalf("truncation: fa=%v fb=%v", fa, fb)
	}
	if fa, fb := StarvationFraction(nil, nil, 10, false); fa != 0 || fb != 0 {
		t.Fatal("empty input must be 0/0")
	}
	if fa, fb := StarvationFraction(mk(0), mk(0), 10, true); fa != 0 || fb != 0 {
		t.Fatal("all-idle with skipIdle must be 0/0")
	}
}

func TestQueueSamplerCollects(t *testing.T) {
	eng := sim.NewEngine(1)
	q := NewQueueSampler(eng, 10*sim.Microsecond)

	var total, red int64
	q.Track(func() (int64, int64) { return total, red })
	q.Track(func() (int64, int64) { return 2 * total, red })

	eng.At(5*sim.Microsecond, func() { total, red = 100, 30 })
	q.Start()
	q.Start() // idempotent
	eng.Run(25 * sim.Microsecond)

	// Two ticks × two sources.
	if len(q.Totals) != 4 || len(q.Reds) != 4 {
		t.Fatalf("samples = %d/%d, want 4/4", len(q.Totals), len(q.Reds))
	}
	wantTotals := []int64{100, 200, 100, 200}
	for i, v := range q.Totals {
		if v != wantTotals[i] {
			t.Fatalf("Totals[%d] = %d, want %d", i, v, wantTotals[i])
		}
		if q.Reds[i] != 30 {
			t.Fatalf("Reds[%d] = %d, want 30", i, q.Reds[i])
		}
	}
}

func TestStatsMeanAndQuantile(t *testing.T) {
	mean, p90 := Stats([]int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}, 0.9)
	if mean != 55 {
		t.Fatalf("mean = %d, want 55", mean)
	}
	if p90 != 90 {
		t.Fatalf("p90 = %d, want 90", p90)
	}
	if mean, pctl := Stats(nil, 0.9); mean != 0 || pctl != 0 {
		t.Fatal("empty Stats must be 0/0")
	}
}
