// Package perfetto converts an obs run artifact into Chrome trace-event
// JSON, the format ui.perfetto.dev (and chrome://tracing) open directly.
//
// The mapping builds three synthetic "processes":
//
//   - flows  (pid 1): one thread per flow. A complete span covers
//     flow-start → flow-done; every other trace-ring event (drops, marks,
//     retransmits, credit events) is an instant on the flow's track.
//   - ports  (pid 2): one thread per port seen in forensic timelines.
//     Each dequeue hop becomes a span covering the packet's time at the
//     port — enqueue (at − wait) through serialization end (at + tx) —
//     and each drop an instant.
//   - faults (pid 3): one thread; applied fault-plan actions as instants.
//
// Timestamps are the trace-event format's microseconds, converted from
// the simulator's picoseconds; sub-microsecond precision survives because
// ts/dur are JSON numbers, not integers.
package perfetto

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flexpass/internal/obs"
)

// Event is one trace-event object. Fields follow the Chrome trace-event
// schema: ph is the phase ("M" metadata, "X" complete, "i" instant), ts
// and dur are microseconds, pid/tid place the event on a track.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope: "t" thread
	Args map[string]any `json:"args,omitempty"`
}

// Trace is the top-level JSON object.
type Trace struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Synthetic process IDs.
const (
	pidFlows  = 1
	pidPorts  = 2
	pidFaults = 3
)

func us(ps int64) float64 { return float64(ps) / 1e6 }

// Convert maps the artifact onto trace events. The output is
// deterministic for a given run: tracks are ordered by flow ID and by
// sorted port name, and events by artifact order within each source.
func Convert(run *obs.Run) *Trace {
	t := &Trace{DisplayTimeUnit: "ns"}

	meta := func(pid int, tid int64, name, value string) {
		t.TraceEvents = append(t.TraceEvents, Event{
			Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value},
		})
	}
	meta(pidFlows, 0, "process_name", "flows")
	meta(pidPorts, 0, "process_name", "ports")
	meta(pidFaults, 0, "process_name", "faults")

	// Flow tracks from the transport trace ring.
	type flowSpan struct {
		start, done int64
		hasStart    bool
		hasDone     bool
	}
	spans := map[uint64]*flowSpan{}
	var flowIDs []uint64
	for _, ev := range run.Trace {
		fs := spans[ev.Flow]
		if fs == nil {
			fs = &flowSpan{}
			spans[ev.Flow] = fs
			flowIDs = append(flowIDs, ev.Flow)
		}
		switch ev.Kind {
		case "flow-start":
			fs.start, fs.hasStart = ev.AtPs, true
		case "flow-done":
			fs.done, fs.hasDone = ev.AtPs, true
		}
	}
	sort.Slice(flowIDs, func(i, j int) bool { return flowIDs[i] < flowIDs[j] })
	for _, id := range flowIDs {
		meta(pidFlows, int64(id), "thread_name", fmt.Sprintf("flow %d", id))
		fs := spans[id]
		if fs.hasStart && fs.hasDone && fs.done >= fs.start {
			t.TraceEvents = append(t.TraceEvents, Event{
				Name: fmt.Sprintf("flow %d", id), Cat: "flow", Ph: "X",
				Ts: us(fs.start), Dur: us(fs.done - fs.start),
				Pid: pidFlows, Tid: int64(id),
			})
		}
	}
	for _, ev := range run.Trace {
		if ev.Kind == "flow-start" || ev.Kind == "flow-done" {
			continue
		}
		args := map[string]any{"seq": ev.Seq}
		if ev.Note != "" {
			args["note"] = ev.Note
		}
		t.TraceEvents = append(t.TraceEvents, Event{
			Name: ev.Kind, Cat: "trace", Ph: "i", S: "t",
			Ts: us(ev.AtPs), Pid: pidFlows, Tid: int64(ev.Flow), Args: args,
		})
	}

	// Port tracks from forensic hop records. Hops live inside per-flow
	// timelines; regroup them by port so each port becomes one thread.
	portTid := map[string]int64{}
	var portNames []string
	for _, f := range run.Forensics {
		if f.Timeline == nil {
			continue
		}
		for _, h := range f.Timeline.Hops {
			if _, ok := portTid[h.Port]; !ok {
				portTid[h.Port] = 0
				portNames = append(portNames, h.Port)
			}
		}
	}
	sort.Strings(portNames)
	for i, name := range portNames {
		portTid[name] = int64(i + 1)
		meta(pidPorts, int64(i+1), "thread_name", name)
	}
	for _, f := range run.Forensics {
		if f.Timeline == nil {
			continue
		}
		tl := f.Timeline
		for _, h := range tl.Hops {
			tid := portTid[h.Port]
			switch h.Event {
			case "deq":
				t.TraceEvents = append(t.TraceEvents, Event{
					Name: fmt.Sprintf("%s flow %d seq %d", h.Kind, tl.Flow, h.Seq),
					Cat:  "hop", Ph: "X",
					Ts: us(h.AtPs - h.WaitPs), Dur: us(h.WaitPs + h.TxPs),
					Pid: pidPorts, Tid: tid,
					Args: map[string]any{
						"flow": tl.Flow, "queue": h.Queue,
						"wait_ps": h.WaitPs, "tx_ps": h.TxPs,
					},
				})
			case "drop":
				args := map[string]any{"flow": tl.Flow, "queue": h.Queue}
				if h.Reason != "" {
					args["reason"] = h.Reason
				}
				t.TraceEvents = append(t.TraceEvents, Event{
					Name: fmt.Sprintf("drop %s flow %d seq %d", h.Kind, tl.Flow, h.Seq),
					Cat:  "hop", Ph: "i", S: "t",
					Ts: us(h.AtPs), Pid: pidPorts, Tid: tid, Args: args,
				})
			}
		}
	}

	// Fault actions as instants on one shared track.
	if len(run.Faults) > 0 {
		meta(pidFaults, 1, "thread_name", "fault plan")
	}
	for _, fa := range run.Faults {
		args := map[string]any{"link": fa.Link}
		if fa.Value != 0 {
			args["value"] = fa.Value
		}
		t.TraceEvents = append(t.TraceEvents, Event{
			Name: fmt.Sprintf("%s %s", fa.Kind, fa.Link), Cat: "fault", Ph: "i", S: "t",
			Ts: us(fa.AtPs), Pid: pidFaults, Tid: 1, Args: args,
		})
	}

	// Stable render order: metadata first (viewers expect names before
	// data), then by timestamp; ties keep source order.
	sort.SliceStable(t.TraceEvents, func(i, j int) bool {
		a, b := t.TraceEvents[i], t.TraceEvents[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Ph == "M" {
			return false // keep metadata in emission order
		}
		return a.Ts < b.Ts
	})
	return t
}

// Write renders the trace as indented JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}
