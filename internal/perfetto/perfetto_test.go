package perfetto

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flexpass/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the golden trace file")

// fixtureRun builds a small deterministic artifact exercising every
// mapping: flow lifecycle spans, instant trace events, port dequeue
// spans, a drop, and fault actions.
func fixtureRun() *obs.Run {
	return &obs.Run{
		Trace: []obs.TraceData{
			{AtPs: 1_000_000, Kind: "flow-start", Flow: 2},
			{AtPs: 2_000_000, Kind: "flow-start", Flow: 1},
			{AtPs: 3_500_000, Kind: "retx", Flow: 1, Seq: 4, Note: "gap"},
			{AtPs: 4_000_000, Kind: "flow-done", Flow: 1},
			{AtPs: 6_000_000, Kind: "flow-done", Flow: 2},
			{AtPs: 7_000_000, Kind: "drop", Flow: 3, Seq: 9}, // no lifecycle: instants only
		},
		Forensics: []obs.ForensicsData{
			{Timeline: &obs.TimelineData{
				Flow: 1, Transport: "flexpass", Size: 1500, StartPs: 2_000_000, FctPs: 2_000_000,
				Hops: []obs.HopData{
					{AtPs: 2_500_000, Port: "tor0:up0", Queue: 1, Event: "deq", Kind: "pro-data", Seq: 1, WaitPs: 200_000, TxPs: 120_000},
					{AtPs: 3_000_000, Port: "agg0:down1", Queue: 0, Event: "deq", Kind: "sched-data", Seq: 2, WaitPs: 50_000, TxPs: 120_000},
					{AtPs: 3_200_000, Port: "tor0:up0", Queue: 1, Event: "drop", Kind: "pro-data", Seq: 3, Reason: "red"},
					{AtPs: 3_300_000, Port: "tor0:up0", Queue: 1, Event: "enq", Kind: "pro-data", Seq: 4}, // enq hops are not rendered
				},
			}},
			{Violation: &obs.ViolationData{AtPs: 1, Auditor: "x", Detail: "ignored by converter"}},
		},
		Faults: []obs.FaultData{
			{AtPs: 2_800_000, Kind: "link-down", Link: "agg0:down1"},
			{AtPs: 5_000_000, Kind: "rate-degrade", Link: "tor0:up0", Value: 0.5},
		},
	}
}

func TestConvertGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Convert(fixtureRun()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to record)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output diverged from golden file; run with -update if the change is intentional\ngot:\n%s", buf.String())
	}
}

// TestConvertSchema validates the output against the trace-event format:
// every event has a known phase, a name, non-negative microsecond
// timestamps and durations, and a track (pid). The top level must be the
// {traceEvents: [...]} object form.
func TestConvertSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := Convert(fixtureRun()).Write(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if top.Unit != "ns" && top.Unit != "ms" {
		t.Fatalf("displayTimeUnit %q not allowed by the schema", top.Unit)
	}
	if len(top.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	sawMeta := false
	for i, ev := range top.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		if _, ok := ev["pid"]; !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		switch ph {
		case "M":
			sawMeta = true
			if i > 0 && top.TraceEvents[i-1]["ph"] != "M" {
				t.Fatalf("metadata event %d appears after data events", i)
			}
			args, _ := ev["args"].(map[string]any)
			if s, _ := args["name"].(string); s == "" {
				t.Fatalf("metadata event %d lacks args.name: %v", i, ev)
			}
		case "X":
			ts, tsOK := ev["ts"].(float64)
			dur, _ := ev["dur"].(float64)
			if !tsOK || ts < 0 || dur < 0 {
				t.Fatalf("complete event %d has bad ts/dur: %v", i, ev)
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Fatalf("instant event %d has invalid scope %q", i, s)
			}
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("instant event %d has bad ts: %v", i, ev)
			}
		default:
			t.Fatalf("event %d has unknown phase %q", i, ph)
		}
	}
	if !sawMeta {
		t.Fatal("no metadata (track name) events emitted")
	}
}

// TestConvertMapping checks a handful of semantic expectations on the
// fixture rather than raw bytes: span boundaries, track regrouping, and
// what gets skipped.
func TestConvertMapping(t *testing.T) {
	tr := Convert(fixtureRun())
	find := func(name string, ph string) *Event {
		for i := range tr.TraceEvents {
			if tr.TraceEvents[i].Name == name && tr.TraceEvents[i].Ph == ph {
				return &tr.TraceEvents[i]
			}
		}
		return nil
	}

	f1 := find("flow 1", "X")
	if f1 == nil {
		t.Fatal("no span for flow 1")
	}
	if f1.Ts != 2.0 || f1.Dur != 2.0 || f1.Pid != pidFlows {
		t.Fatalf("flow 1 span = %+v, want ts=2 dur=2", f1)
	}
	if find("flow 3", "X") != nil {
		t.Fatal("flow 3 has no lifecycle pair and must not get a span")
	}

	// The tor0:up0 dequeue: enqueue at 2.5−0.2=2.3 µs, dur 0.32 µs.
	hop := find("pro-data flow 1 seq 1", "X")
	if hop == nil {
		t.Fatal("no dequeue span on the port track")
	}
	if hop.Pid != pidPorts || hop.Ts != 2.3 || hop.Dur != 0.32 {
		t.Fatalf("dequeue span = %+v", hop)
	}
	drop := find("drop pro-data flow 1 seq 3", "i")
	if drop == nil || drop.Args["reason"] != "red" {
		t.Fatalf("port drop instant = %+v", drop)
	}
	for i := range tr.TraceEvents {
		if tr.TraceEvents[i].Name == "pro-data flow 1 seq 4" {
			t.Fatal("enq hop must not be rendered")
		}
	}

	// Two ports, sorted: agg0:down1 gets tid 1, tor0:up0 tid 2.
	if hop.Tid != 2 {
		t.Fatalf("tor0:up0 on tid %d, want 2 (sorted after agg0:down1)", hop.Tid)
	}

	fault := find("rate-degrade tor0:up0", "i")
	if fault == nil || fault.Pid != pidFaults || fault.Args["value"] != 0.5 {
		t.Fatalf("fault instant = %+v", fault)
	}
}
