package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// TestLinkDownResume: taking a port down blackholes arrivals and pauses
// the serializer, but keeps already-queued frames; bringing it back up
// drains the backlog. Frames sent while the link is down are charged to
// LinkDown fault drops; everything queued before the failure survives.
func TestLinkDownResume(t *testing.T) {
	eng := sim.NewEngine(1)
	net, hosts, bottleneck := faultFabric(eng)
	w := &dropWatcher{}
	net.SetHopObserver(w)
	dst := hosts[2].NodeID()

	// Both senders push 5 frames at t=0 — a 2-to-1 overload, so a backlog
	// forms at the bottleneck. All 10 frames have reached the bottleneck
	// (queued, in flight, or delivered) by ~7us: 5×1.2us NIC serialization
	// plus 1us propagation.
	for i := 0; i < 10; i++ {
		hosts[i%2].Send(&Packet{Dst: dst, Flow: uint64(1 + i%2), Seq: uint32(i), Size: 1500})
	}
	var duringDown int64 = -1
	eng.At(8500*sim.Nanosecond, func() { bottleneck.SetDown(true) })
	// By 12us the frame that was on the wire at failure time has landed;
	// from here until the link returns the count must not move.
	eng.At(12*sim.Microsecond, func() { duringDown = hosts[2].RxPackets })
	eng.At(50*sim.Microsecond, func() {
		for i := 10; i < 15; i++ {
			hosts[1].Send(&Packet{Dst: dst, Flow: 2, Seq: uint32(i), Size: 1500})
		}
	})
	eng.At(99*sim.Microsecond, func() {
		if hosts[2].RxPackets != duringDown {
			t.Errorf("down link delivered %d more packets", hosts[2].RxPackets-duringDown)
		}
		if !bottleneck.Down() {
			t.Error("port should report Down")
		}
	})
	eng.At(100*sim.Microsecond, func() { bottleneck.SetDown(false) })
	eng.Run(sim.Second)

	if duringDown <= 0 || duringDown >= 10 {
		t.Fatalf("snapshot during downtime = %d, want partial delivery (test timing broken)", duringDown)
	}
	if hosts[2].RxPackets != 10 {
		t.Fatalf("delivered %d packets, want all 10 pre-failure frames after resume", hosts[2].RxPackets)
	}
	st := bottleneck.FaultStats()
	if st.LinkDown != 5 || st.Injected != 5 {
		t.Fatalf("FaultStats = %+v, want 5 link-down drops", st)
	}
	if w.reasons[DropLinkDown] != 5 || w.queues[-1] != 5 {
		t.Fatalf("observer saw %v / queues %v, want 5 DropLinkDown at queue -1", w.reasons, w.queues)
	}
}

// txWatcher records the serialization time of every dequeue.
type txWatcher struct {
	txs []sim.Time
}

func (w *txWatcher) HopEnqueue(sim.Time, *Port, int, *Packet, int64) {}
func (w *txWatcher) HopDrop(sim.Time, *Port, int, *Packet, DropReason) {
}
func (w *txWatcher) HopDequeue(_ sim.Time, _ *Port, _ int, _ *Packet, _, tx sim.Time) {
	w.txs = append(w.txs, tx)
}

// TestRateDegrade: a degraded port serializes at the scaled rate; the
// frame already on the wire when the degrade lands was committed at the
// old rate; restoring snaps back to line rate.
func TestRateDegrade(t *testing.T) {
	eng := sim.NewEngine(1)
	_, hosts, bottleneck := faultFabric(eng)
	w := &txWatcher{}
	bottleneck.SetHopObserver(w)
	dst := hosts[2].NodeID()

	full := (10 * units.Gbps).TxTime(1500)
	half := (5 * units.Gbps).TxTime(1500)

	for i := 0; i < 4; i++ {
		hosts[0].Send(&Packet{Dst: dst, Flow: 1, Seq: uint32(i), Size: 1500})
	}
	// Frame 0 is serialized on the bottleneck 2.2us–3.4us (NIC tx 1.2us +
	// 1us propagation, then 1.2us on the wire). Degrading at 3us lands
	// mid-frame: frame 0 keeps its committed full-rate tx, frames 1–3 go
	// out at half rate.
	eng.At(3*sim.Microsecond, func() { bottleneck.SetRateFraction(0.5) })
	eng.At(40*sim.Microsecond, func() {
		bottleneck.SetRateFraction(1)
		for i := 4; i < 6; i++ {
			hosts[0].Send(&Packet{Dst: dst, Flow: 1, Seq: uint32(i), Size: 1500})
		}
	})
	eng.Run(sim.Second)

	if hosts[2].RxPackets != 6 {
		t.Fatalf("delivered %d packets, want 6", hosts[2].RxPackets)
	}
	want := []sim.Time{full, half, half, half, full, full}
	if len(w.txs) != len(want) {
		t.Fatalf("bottleneck recorded %d dequeues, want %d (txs: %v)", len(w.txs), len(want), w.txs)
	}
	for i, tx := range w.txs {
		if tx != want[i] {
			t.Fatalf("dequeue %d serialized in %v, want %v (txs: %v)", i, tx, want[i], w.txs)
		}
	}
	if bottleneck.EffectiveRate() != 10*units.Gbps {
		t.Fatalf("EffectiveRate = %v after restore, want 10Gbps", bottleneck.EffectiveRate())
	}
}

// seqDropWatcher marks which sequence numbers were fault-dropped.
type seqDropWatcher struct {
	fates []bool
}

func (w *seqDropWatcher) HopEnqueue(sim.Time, *Port, int, *Packet, int64)              {}
func (w *seqDropWatcher) HopDequeue(sim.Time, *Port, int, *Packet, sim.Time, sim.Time) {}
func (w *seqDropWatcher) HopDrop(_ sim.Time, _ *Port, _ int, pkt *Packet, _ DropReason) {
	if int(pkt.Seq) < len(w.fates) {
		w.fates[pkt.Seq] = true
	}
}

// TestGilbertElliottBurstLengths: with LossBad=1 and mean burst length
// 1/PBadGood = 4, drops arrive in consecutive runs whose average is
// near 4 — the defining difference from Bernoulli loss — and the whole
// pattern replays identically under the same seed.
func TestGilbertElliottBurstLengths(t *testing.T) {
	const n = 20000
	run := func() (bursts []int, injected int64) {
		eng := sim.NewEngine(42)
		_, hosts, bottleneck := faultFabric(eng)
		bottleneck.SetGilbertElliott(GilbertElliott{
			PGoodBad: 1.0 / 50,
			PBadGood: 1.0 / 4,
			LossBad:  1,
		})
		dropped := make([]bool, n)
		bottleneck.SetHopObserver(&seqDropWatcher{fates: dropped})
		dst := hosts[2].NodeID()
		for i := 0; i < n; i++ {
			hosts[0].Send(&Packet{Dst: dst, Flow: 1, Seq: uint32(i), Size: 1500})
		}
		eng.Run(sim.Second)
		// A single FIFO sender means bottleneck arrival order is sequence
		// order, so consecutive-seq runs are the model's loss bursts.
		runLen := 0
		for i := 0; i < n; i++ {
			if dropped[i] {
				runLen++
			} else if runLen > 0 {
				bursts = append(bursts, runLen)
				runLen = 0
			}
		}
		if runLen > 0 {
			bursts = append(bursts, runLen)
		}
		return bursts, bottleneck.FaultStats().BurstLoss
	}

	bursts, injected := run()
	if len(bursts) < 50 {
		t.Fatalf("only %d loss bursts in %d packets; model not engaging", len(bursts), n)
	}
	var sum int
	for _, b := range bursts {
		sum += b
	}
	mean := float64(sum) / float64(len(bursts))
	if mean < 3 || mean > 5.5 {
		t.Fatalf("mean burst length %.2f, want ≈4 (1/PBadGood)", mean)
	}
	if int64(sum) != injected {
		t.Fatalf("burst-run total %d != injected counter %d", sum, injected)
	}

	b2, i2 := run()
	if len(b2) != len(bursts) || i2 != injected {
		t.Fatalf("GE model not deterministic: %d/%d bursts, %d/%d injected",
			len(bursts), len(b2), injected, i2)
	}
}

// TestBernoulliDrawCompat: SetLossRate must consume exactly one random
// draw per packet — the historical sequence — so runs recorded before
// the Gilbert–Elliott model existed replay bit-identically.
func TestBernoulliDrawCompat(t *testing.T) {
	// Reference decision sequence from a fresh engine stream.
	ref := sim.NewEngine(99)
	var want []bool
	for i := 0; i < 500; i++ {
		want = append(want, ref.Rand().Float64() < 0.3)
	}

	eng := sim.NewEngine(99)
	_, hosts, bottleneck := faultFabric(eng)
	bottleneck.SetLossRate(0.3)
	dropped := make([]bool, len(want))
	bottleneck.SetHopObserver(&seqDropWatcher{fates: dropped})
	dst := hosts[2].NodeID()
	for i := range want {
		hosts[0].Send(&Packet{Dst: dst, Flow: 1, Seq: uint32(i), Size: 1500})
	}
	eng.Run(sim.Second)

	for i := range want {
		if dropped[i] != want[i] {
			t.Fatalf("packet %d fate %v, want %v — Bernoulli path consumed extra draws", i, dropped[i], want[i])
		}
	}
}

// TestCreditOnlyLoss: SetCreditLossRate hits KindCredit exclusively —
// data on the same port passes untouched.
func TestCreditOnlyLoss(t *testing.T) {
	eng := sim.NewEngine(3)
	net, hosts, bottleneck := faultFabric(eng)
	w := &dropWatcher{}
	net.SetHopObserver(w)
	bottleneck.SetCreditLossRate(1.0)
	dst := hosts[2].NodeID()

	const n = 30
	credits := int64(0)
	for i := 0; i < n; i++ {
		kind := KindProData
		if i%3 == 0 {
			kind = KindCredit
			credits++
		}
		hosts[0].Send(&Packet{Dst: dst, Flow: 1, Seq: uint32(i), Size: 84, Kind: kind})
	}
	eng.Run(sim.Second)

	if st := bottleneck.FaultStats(); st.CreditLoss != credits || st.Injected != credits {
		t.Fatalf("FaultStats = %+v, want %d credit drops", st, credits)
	}
	if hosts[2].RxPackets != int64(n)-credits {
		t.Fatalf("delivered %d, want all %d non-credit packets", hosts[2].RxPackets, int64(n)-credits)
	}
	if w.reasons[DropCreditLoss] != int(credits) {
		t.Fatalf("observer reasons %v, want %d DropCreditLoss", w.reasons, credits)
	}
}
