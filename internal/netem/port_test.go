package netem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// sink records every packet it receives with the arrival time.
type sink struct {
	id      NodeID
	arrived []*Packet
	at      []sim.Time
	eng     *sim.Engine
}

func (s *sink) NodeID() NodeID { return s.id }
func (s *sink) Receive(p *Packet) {
	s.arrived = append(s.arrived, p)
	if s.eng != nil {
		s.at = append(s.at, s.eng.Now())
	}
}

func mkPkt(class Class, size int) *Packet {
	return &Packet{Class: class, Size: size}
}

func singleQueuePort(eng *sim.Engine, rate units.Rate, prop sim.Time) (*Port, *sink) {
	cfg := PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}
	p := NewPort(eng, "test", rate, prop, cfg, nil)
	sk := &sink{id: 99, eng: eng}
	p.Connect(sk)
	return p, sk
}

func TestPortSerializationAndPropagation(t *testing.T) {
	eng := sim.NewEngine(1)
	p, sk := singleQueuePort(eng, 10*units.Gbps, 2*sim.Microsecond)
	p.Send(mkPkt(0, 1250)) // 1250B at 10Gbps = 1us tx
	eng.Run(sim.Second)
	if len(sk.arrived) != 1 {
		t.Fatalf("arrived %d packets, want 1", len(sk.arrived))
	}
	want := 1*sim.Microsecond + 2*sim.Microsecond
	if sk.at[0] != want {
		t.Fatalf("arrival at %v, want %v", sk.at[0], want)
	}
}

func TestPortBackToBackSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	p, sk := singleQueuePort(eng, 10*units.Gbps, 0)
	for i := 0; i < 5; i++ {
		p.Send(mkPkt(0, 1250))
	}
	eng.Run(sim.Second)
	if len(sk.arrived) != 5 {
		t.Fatalf("arrived %d, want 5", len(sk.arrived))
	}
	for i, at := range sk.at {
		want := sim.Time(i+1) * sim.Microsecond
		if at != want {
			t.Fatalf("packet %d at %v, want %v", i, at, want)
		}
	}
}

func TestStrictPriorityPreemptsLowerBandQueueing(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "hi", Band: 0},
		{Name: "lo", Band: 1},
	}}
	p := NewPort(eng, "sp", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Fill low priority first, then add high priority while port busy.
	for i := 0; i < 3; i++ {
		p.Send(&Packet{Class: 1, Size: 1250, Seq: uint32(i)})
	}
	eng.After(100*sim.Nanosecond, func() {
		p.Send(&Packet{Class: 0, Size: 1250, Seq: 100})
	})
	eng.Run(sim.Second)
	if len(sk.arrived) != 4 {
		t.Fatalf("arrived %d, want 4", len(sk.arrived))
	}
	// First low-priority packet was already serializing; the high-priority
	// one must come second.
	if sk.arrived[0].Seq != 0 || sk.arrived[1].Seq != 100 {
		t.Fatalf("order = [%d %d ...], want [0 100 ...]", sk.arrived[0].Seq, sk.arrived[1].Seq)
	}
}

func TestDWRRWeightedShares(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "a", Band: 0, Weight: 3},
		{Name: "b", Band: 0, Weight: 1},
	}}
	p := NewPort(eng, "dwrr", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	const n = 400
	for i := 0; i < n; i++ {
		p.Send(&Packet{Class: 0, Size: 1500})
		p.Send(&Packet{Class: 1, Size: 1500})
	}
	// Run long enough to drain half the total backlog.
	eng.Run((10 * units.Gbps).TxTime(1500) * n) // time to send n packets
	var fromA, fromB int
	for _, pk := range sk.arrived {
		if pk.Class == 0 {
			fromA++
		} else {
			fromB++
		}
	}
	total := fromA + fromB
	if total == 0 {
		t.Fatal("nothing transmitted")
	}
	shareA := float64(fromA) / float64(total)
	if shareA < 0.70 || shareA > 0.80 {
		t.Fatalf("queue a share = %.3f, want ~0.75", shareA)
	}
}

func TestDWRREqualWeightsFair(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "a", Band: 0, Weight: 1},
		{Name: "b", Band: 0, Weight: 1},
	}}
	p := NewPort(eng, "dwrr", 40*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Unequal packet sizes: fairness must hold in bytes, not packets.
	for i := 0; i < 900; i++ {
		p.Send(&Packet{Class: 0, Size: 1500})
	}
	for i := 0; i < 2700; i++ {
		p.Send(&Packet{Class: 1, Size: 500})
	}
	eng.Run((40 * units.Gbps).TxTime(1500) * 600)
	var bytesA, bytesB int64
	for _, pk := range sk.arrived {
		if pk.Class == 0 {
			bytesA += int64(pk.Size)
		} else {
			bytesB += int64(pk.Size)
		}
	}
	ratio := float64(bytesA) / float64(bytesA+bytesB)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("byte share of a = %.3f, want ~0.5", ratio)
	}
}

func TestRateLimitedQueuePacing(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "credit", Band: 0, RateLimit: 1 * units.Gbps, CapBytes: 100 * units.KB},
		{Name: "data", Band: 1},
	}}
	p := NewPort(eng, "rl", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// 100 credits of 125B each: at 1Gbps that's 1us per credit.
	for i := 0; i < 100; i++ {
		p.Send(&Packet{Class: 0, Size: 125})
	}
	eng.Run(200 * sim.Microsecond)
	var credits int
	for _, pk := range sk.arrived {
		if pk.Class == 0 {
			credits++
		}
	}
	// In 200us at 1Gbps we can send 200*125B = 200 credits worth of time,
	// but only 100 were queued; all should arrive, paced 1us apart.
	if credits != 100 {
		t.Fatalf("credits delivered = %d, want 100", credits)
	}
	for i := 1; i < len(sk.at); i++ {
		gap := sk.at[i] - sk.at[i-1]
		if gap < sim.Microsecond {
			t.Fatalf("credit gap %v < 1us pacing", gap)
		}
	}
}

func TestRateLimitedQueueDoesNotBlockLowerBand(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "credit", Band: 0, RateLimit: 100 * units.Mbps, CapBytes: 10 * units.KB},
		{Name: "data", Band: 1},
	}}
	p := NewPort(eng, "rl2", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	p.Send(&Packet{Class: 0, Size: 125})
	p.Send(&Packet{Class: 0, Size: 125})
	for i := 0; i < 10; i++ {
		p.Send(&Packet{Class: 1, Size: 1250})
	}
	eng.Run(30 * sim.Microsecond)
	// The second credit is not eligible until 10us (125B at 100Mbps); data
	// must flow in the meantime.
	var dataBefore10us int
	for i, pk := range sk.arrived {
		if pk.Class == 1 && sk.at[i] < 10*sim.Microsecond {
			dataBefore10us++
		}
	}
	if dataBefore10us < 5 {
		t.Fatalf("only %d data packets before the paced credit; rate limiter blocked the port", dataBefore10us)
	}
}

func TestECNMarkingThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "q", ECNThreshold: 5000},
	}}
	p := NewPort(eng, "ecn", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 10; i++ {
		p.Send(&Packet{Class: 0, Size: 1500, ECNCapable: true})
	}
	eng.Run(sim.Second)
	var marked int
	for _, pk := range sk.arrived {
		if pk.CE {
			marked++
		}
	}
	// First packet dequeues immediately; occupancy crosses 5000B around the
	// 4th enqueue. Expect several marked but not all, and none unmarked
	// after the first marked... at minimum: some marked, first not marked.
	if marked == 0 {
		t.Fatal("no packets marked despite queue over threshold")
	}
	if sk.arrived[0].CE {
		t.Fatal("first packet marked although queue was empty")
	}
}

func TestECNNotMarkedWhenNotCapable(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{{Name: "q", ECNThreshold: 1000}}}
	p := NewPort(eng, "ecn2", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 10; i++ {
		p.Send(&Packet{Class: 0, Size: 1500, ECNCapable: false})
	}
	eng.Run(sim.Second)
	for _, pk := range sk.arrived {
		if pk.CE {
			t.Fatal("non-ECT packet got CE mark")
		}
	}
}

func TestSelectiveDroppingRedThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "q1", RedDropThreshold: 6000},
	}}
	p := NewPort(eng, "red", 1*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	// Interleave green and red; red beyond 6000B queued must drop, green never.
	for i := 0; i < 20; i++ {
		p.Send(&Packet{Class: 0, Size: 1500, Color: Red})
		p.Send(&Packet{Class: 0, Size: 1500, Color: Green})
	}
	eng.Run(sim.Second)
	st := p.QueueStats(0)
	if st.DroppedRed == 0 {
		t.Fatal("no red drops despite threshold")
	}
	if st.DroppedOver != 0 {
		t.Fatalf("green drops = %d, want 0", st.DroppedOver)
	}
	var green, red int
	for _, pk := range sk.arrived {
		if pk.Color == Red {
			red++
		} else {
			green++
		}
	}
	if green != 20 {
		t.Fatalf("green delivered = %d, want all 20", green)
	}
	if red >= 20 {
		t.Fatalf("red delivered = %d, want < 20", red)
	}
}

func TestSharedBufferDynamicThreshold(t *testing.T) {
	eng := sim.NewEngine(1)
	shared := NewSharedBuffer(100*units.KB, 0.25)
	cfg := PortConfig{Queues: []QueueConfig{{Name: "q"}}}
	// Very slow port so everything queues.
	p := NewPort(eng, "dyn", 1*units.Mbps, 0, cfg, shared)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	accepted := 0
	for i := 0; i < 100; i++ {
		p.Send(&Packet{Class: 0, Size: 1500})
	}
	st := p.QueueStats(0)
	accepted = int(st.Enqueued)
	// Dynamic threshold: q <= 0.25*(100KB - q) => q <= 20KB => ~13 packets
	// (the first departs immediately, giving a little slack).
	if accepted < 10 || accepted > 20 {
		t.Fatalf("accepted %d packets, want ~13 under dynamic threshold", accepted)
	}
	if st.DroppedOver == 0 {
		t.Fatal("expected overflow drops")
	}
	_ = sk
}

func TestSharedBufferReleasesOnDequeue(t *testing.T) {
	eng := sim.NewEngine(1)
	shared := NewSharedBuffer(100*units.KB, 0.25)
	cfg := PortConfig{Queues: []QueueConfig{{Name: "q"}}}
	p := NewPort(eng, "rel", 10*units.Gbps, 0, cfg, shared)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 10; i++ {
		p.Send(&Packet{Class: 0, Size: 1500})
	}
	eng.Run(sim.Second)
	if shared.Used() != 0 {
		t.Fatalf("shared buffer used = %d after drain, want 0", shared.Used())
	}
	if len(sk.arrived) != 10 {
		t.Fatalf("delivered %d, want 10", len(sk.arrived))
	}
}

func TestPrivateCapCreditQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := PortConfig{Queues: []QueueConfig{
		{Name: "credit", CapBytes: 1000, RateLimit: 100 * units.Mbps},
	}}
	p := NewPort(eng, "cap", 10*units.Gbps, 0, cfg, nil)
	sk := &sink{id: 1, eng: eng}
	p.Connect(sk)
	for i := 0; i < 50; i++ {
		p.Send(&Packet{Class: 0, Size: 125})
	}
	st := p.QueueStats(0)
	if st.DroppedOver == 0 {
		t.Fatal("credit queue over tiny cap should drop")
	}
	if st.Enqueued > 9 {
		t.Fatalf("enqueued %d credits into 1000B cap", st.Enqueued)
	}
}

// Property: conservation — every packet sent to an uncongested port is
// either delivered exactly once or counted as dropped.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		eng := sim.NewEngine(5)
		shared := NewSharedBuffer(20*units.KB, 0.5)
		cfg := PortConfig{Queues: []QueueConfig{
			{Name: "a", Band: 0, Weight: 1, RedDropThreshold: 4000},
			{Name: "b", Band: 0, Weight: 1},
		}}
		p := NewPort(eng, "cons", 1*units.Gbps, sim.Microsecond, cfg, shared)
		sk := &sink{id: 1, eng: eng}
		p.Connect(sk)
		sent := 0
		for i, s := range sizes {
			size := 64 + int(s)*8
			pk := &Packet{Class: Class(i % 2), Size: size}
			if i%3 == 0 {
				pk.Color = Red
			}
			p.Send(pk)
			sent++
		}
		eng.Run(sim.Second)
		dropped := int(p.QueueStats(0).Dropped + p.QueueStats(1).Dropped)
		return len(sk.arrived)+dropped == sent && shared.Used() == 0
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPortUtilizationNearLineRate(t *testing.T) {
	eng := sim.NewEngine(1)
	p, sk := singleQueuePort(eng, 40*units.Gbps, 0)
	// Keep the queue backlogged for 1ms.
	total := 0
	for i := 0; i < 4000; i++ {
		p.Send(mkPkt(0, 1538))
		total += 1538
	}
	eng.Run(sim.Millisecond)
	var rx int64
	for _, pk := range sk.arrived {
		rx += int64(pk.Size)
	}
	rate := units.RateOf(rx, sim.Millisecond)
	if rate < 39*units.Gbps {
		t.Fatalf("throughput %v, want ~40Gbps", rate)
	}
}

func TestPortKindAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	p, _ := singleQueuePort(eng, 10*units.Gbps, 0)
	p.Send(&Packet{Kind: KindLegacyData, Size: 1000})
	p.Send(&Packet{Kind: KindProData, Size: 500})
	p.Send(&Packet{Kind: KindProData, Size: 500})
	eng.Run(sim.Second)
	st := p.Stats()
	if st.TxBytesKind[KindLegacyData] != 1000 {
		t.Fatalf("legacy bytes = %d", st.TxBytesKind[KindLegacyData])
	}
	if st.TxBytesKind[KindProData] != 1000 {
		t.Fatalf("pro bytes = %d", st.TxBytesKind[KindProData])
	}
	if st.TxBytes != 2000 {
		t.Fatalf("total = %d", st.TxBytes)
	}
}
