package netem

import (
	"fmt"

	"flexpass/internal/sim"
)

// Switch forwards packets to egress ports using destination-based routes
// with ECMP. All egress ports of a switch share its buffer pool.
type Switch struct {
	id     NodeID
	name   string
	eng    *sim.Engine
	ports  []*Port
	routes map[NodeID][]*Port
	shared *SharedBuffer

	// RxPackets counts packets entering the switch.
	RxPackets int64
}

// NewSwitch creates a switch with the given shared buffer (may be nil for
// an output-queued switch with per-queue caps only).
func NewSwitch(eng *sim.Engine, id NodeID, name string, shared *SharedBuffer) *Switch {
	return &Switch{
		id:     id,
		name:   name,
		eng:    eng,
		routes: make(map[NodeID][]*Port),
		shared: shared,
	}
}

// NodeID implements Node.
func (s *Switch) NodeID() NodeID { return s.id }

// Name returns the switch's label.
func (s *Switch) Name() string { return s.name }

// Shared returns the switch's buffer pool.
func (s *Switch) Shared() *SharedBuffer { return s.shared }

// AddPort registers an egress port with the switch.
func (s *Switch) AddPort(p *Port) {
	p.SetOwner(s.id)
	s.ports = append(s.ports, p)
}

// Ports returns the switch's egress ports in registration order.
func (s *Switch) Ports() []*Port { return s.ports }

// AddRoute appends egress choices for dst. Calling it repeatedly grows the
// ECMP set; the order of additions is part of the deterministic config.
func (s *Switch) AddRoute(dst NodeID, ports ...*Port) {
	s.routes[dst] = append(s.routes[dst], ports...)
}

// Receive implements Node: route and enqueue.
func (s *Switch) Receive(pkt *Packet) {
	s.RxPackets++
	choices := s.routes[pkt.Dst]
	switch len(choices) {
	case 0:
		panic(fmt.Sprintf("netem: switch %s has no route to node %d", s.name, pkt.Dst))
	case 1:
		choices[0].Send(pkt)
	default:
		idx := ecmpHash(pkt.Src, pkt.Dst, pkt.Flow) % uint64(len(choices))
		choices[idx].Send(pkt)
	}
}

// ecmpHash is a symmetric flow hash: it maps a flow and its reverse
// direction (ACKs, credits) to the same value, which the paper's ECMP
// configuration ("symmetric hash") requires so that ExpressPass credits and
// data traverse the same links in opposite directions.
func ecmpHash(src, dst NodeID, flow uint64) uint64 {
	lo, hi := src, dst
	if lo > hi {
		lo, hi = hi, lo
	}
	// FNV-1a over the three values.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(uint32(lo)))
	mix(uint64(uint32(hi)))
	mix(flow)
	return h
}
