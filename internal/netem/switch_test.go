package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

func TestSwitchRoutesToDestination(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 10, "sw", nil)
	dstA := &sink{id: 1, eng: eng}
	dstB := &sink{id: 2, eng: eng}
	mk := func(peer Node) *Port {
		p := NewPort(eng, "p", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
		p.Connect(peer)
		sw.AddPort(p)
		return p
	}
	pa, pb := mk(dstA), mk(dstB)
	sw.AddRoute(1, pa)
	sw.AddRoute(2, pb)
	sw.Receive(&Packet{Src: 5, Dst: 1, Size: 100})
	sw.Receive(&Packet{Src: 5, Dst: 2, Size: 100})
	sw.Receive(&Packet{Src: 5, Dst: 2, Size: 100})
	eng.Run(sim.Second)
	if len(dstA.arrived) != 1 || len(dstB.arrived) != 2 {
		t.Fatalf("arrivals = %d,%d want 1,2", len(dstA.arrived), len(dstB.arrived))
	}
}

func TestSwitchECMPSpreadsFlows(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 10, "sw", nil)
	dst := &sink{id: 1, eng: eng}
	var ports []*Port
	counts := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		p := NewPort(eng, "p", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
		// Count at egress via a per-port sink that forwards to dst.
		p.Connect(nodeFunc(func(pkt *Packet) {
			counts[i]++
			dst.Receive(pkt)
		}))
		sw.AddPort(p)
		ports = append(ports, p)
	}
	sw.AddRoute(1, ports...)
	for f := uint64(0); f < 400; f++ {
		sw.Receive(&Packet{Src: 5, Dst: 1, Flow: f, Size: 100})
	}
	eng.Run(sim.Second)
	for i, c := range counts {
		if c < 50 || c > 150 {
			t.Fatalf("ECMP imbalance: port %d got %d of 400", i, c)
		}
	}
}

func TestSwitchECMPSamePathPerFlow(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 10, "sw", nil)
	chosen := make(map[uint64]map[int]bool)
	var ports []*Port
	for i := 0; i < 4; i++ {
		i := i
		p := NewPort(eng, "p", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
		p.Connect(nodeFunc(func(pkt *Packet) {
			m := chosen[pkt.Flow]
			if m == nil {
				m = make(map[int]bool)
				chosen[pkt.Flow] = m
			}
			m[i] = true
		}))
		sw.AddPort(p)
		ports = append(ports, p)
	}
	sw.AddRoute(1, ports...)
	for f := uint64(0); f < 50; f++ {
		for k := 0; k < 5; k++ {
			sw.Receive(&Packet{Src: 5, Dst: 1, Flow: f, Size: 100})
		}
	}
	eng.Run(sim.Second)
	for f, m := range chosen {
		if len(m) != 1 {
			t.Fatalf("flow %d used %d ports, want 1", f, len(m))
		}
	}
}

func TestECMPHashSymmetric(t *testing.T) {
	for f := uint64(0); f < 100; f++ {
		a := ecmpHash(3, 7, f)
		b := ecmpHash(7, 3, f)
		if a != b {
			t.Fatalf("hash not symmetric for flow %d", f)
		}
	}
}

func TestHostSendAppliesDelayAndSrc(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := NewPort(eng, "nic", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	sk := &sink{id: 50, eng: eng}
	nic.Connect(sk)
	h := NewHost(eng, 7, "h7", nic, sim.Microsecond)
	h.Send(&Packet{Dst: 50, Size: 1250}) // 1us host delay + 1us tx
	eng.Run(sim.Second)
	if len(sk.arrived) != 1 {
		t.Fatal("packet not delivered")
	}
	if sk.arrived[0].Src != 7 {
		t.Fatalf("Src = %d, want 7", sk.arrived[0].Src)
	}
	if sk.at[0] != 2*sim.Microsecond {
		t.Fatalf("arrival at %v, want 2us", sk.at[0])
	}
}

func TestHostHandlerReceives(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := NewPort(eng, "nic", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	h := NewHost(eng, 7, "h7", nic, 0)
	var got *Packet
	h.SetHandler(func(p *Packet) { got = p })
	h.Receive(&Packet{Flow: 42})
	if got == nil || got.Flow != 42 {
		t.Fatal("handler not invoked")
	}
	if h.RxPackets != 1 {
		t.Fatalf("RxPackets = %d", h.RxPackets)
	}
}

// nodeFunc adapts a function to the Node interface for tests.
type nodeFunc func(*Packet)

func (f nodeFunc) NodeID() NodeID    { return -1 }
func (f nodeFunc) Receive(p *Packet) { f(p) }

func TestSwitchPanicsOnMissingRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 10, "sw", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("missing route must panic (config error, not runtime condition)")
		}
	}()
	sw.Receive(&Packet{Dst: 42, Size: 100})
}

func TestHostWithoutHandlerDropsSilently(t *testing.T) {
	eng := sim.NewEngine(1)
	nic := NewPort(eng, "nic", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	h := NewHost(eng, 7, "h7", nic, 0)
	h.Receive(&Packet{Flow: 1}) // must not panic
	if h.RxPackets != 1 {
		t.Fatalf("RxPackets = %d", h.RxPackets)
	}
}

func TestECMPRouteGrowsByAddRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, 10, "sw", nil)
	sk := &sink{id: 1, eng: eng}
	p1 := NewPort(eng, "p1", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	p2 := NewPort(eng, "p2", 10*units.Gbps, 0, PortConfig{Queues: []QueueConfig{{}}}, nil)
	p1.Connect(sk)
	p2.Connect(sk)
	sw.AddRoute(1, p1)
	sw.AddRoute(1, p2) // appends to the ECMP set
	seen := map[string]bool{}
	for f := uint64(0); f < 64; f++ {
		sw.Receive(&Packet{Dst: 1, Flow: f, Size: 100})
	}
	eng.Run(sim.Second)
	if p1.Stats().TxPackets == 0 || p2.Stats().TxPackets == 0 {
		t.Fatal("appended ECMP member unused")
	}
	_ = seen
}
