// Package netem models the network data plane: packets, queues, egress
// ports with configurable scheduling (strict priority, DWRR, token-bucket
// rate limiting), ECN marking, color-aware selective dropping, shared
// dynamic buffers, switches with ECMP forwarding, and hosts.
//
// The model is egress-queued store-and-forward: every directed link is an
// egress Port (queues + scheduler + serializer) followed by a fixed
// propagation delay to the peer node, which mirrors both ns-2 and real
// switch ASIC behaviour.
package netem

import (
	"flexpass/internal/sim"
)

// NodeID identifies a node (host or switch) in the network.
type NodeID int32

// Kind enumerates transport-level packet kinds across all transports in the
// repository. The data plane only cares about Class and Color; Kind is for
// the endpoints (and for readable traces).
type Kind uint8

// Packet kinds.
const (
	KindLegacyData Kind = iota // DCTCP / legacy data segment
	KindLegacyAck              // DCTCP ACK
	KindProData                // credit-scheduled (proactive) data
	KindReData                 // unscheduled (reactive) data
	KindCredit                 // ExpressPass credit
	KindCreditReq              // ExpressPass credit request (flow start)
	KindCreditStop             // receiver tells sender-side it stopped credits
	KindAckPro                 // ACK for credit-scheduled (proactive) data
	KindAckRe                  // ACK for reactive sub-flow data
	KindHomaData               // Homa data segment
	KindHomaGrant              // Homa grant
)

var kindNames = [...]string{
	"legacy-data", "legacy-ack", "pro-data", "re-data", "credit",
	"credit-req", "credit-stop", "ack-pro", "ack-re", "homa-data", "homa-grant",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Color is the per-packet drop-precedence metadata used by color-aware
// selective dropping (paper §4.1/§5): reactive data packets are marked red
// and dropped once the per-queue red-byte threshold is exceeded.
type Color uint8

// Packet colors.
const (
	Green Color = iota
	Red
)

// String names the color.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Red:
		return "red"
	}
	return "unknown"
}

// Class selects the egress queue a packet is mapped to (the DSCP analog).
// The default classifier maps Class i to queue i of every port; schemes and
// transports pick classes to implement the paper's Q0/Q1/Q2 layout or
// Homa's 8 priority queues.
type Class uint8

// The paper's three-queue layout.
const (
	ClassCredit Class = 0 // Q0: credit packets (strict priority, rate limited)
	ClassFlex   Class = 1 // Q1: FlexPass data + control
	ClassLegacy Class = 2 // Q2: legacy reactive traffic
)

// Packet is a simulated frame. Size is the wire size in bytes including all
// headers. Packets are passed by pointer but never mutated after enqueue
// except for the CE bit set by the marking queue.
type Packet struct {
	Kind  Kind
	Class Class
	Color Color

	ECNCapable bool // ECT: eligible for CE marking
	CE         bool // congestion experienced

	Src, Dst NodeID
	Flow     uint64 // global flow identifier (shared by ACKs/credits of the flow)
	Seq      uint32 // per-flow sequence number (FlexPass reassembly)
	SubSeq   uint32 // per-sub-flow sequence number (congestion control / loss)
	Echo     uint32 // credit sequence echoed by credit-scheduled data

	Size int // wire bytes

	Meta any // transport-specific payload (ACK blocks, grant info, ...)

	SentAt sim.Time // stamped by the sending endpoint (for RTT estimates)

	// enqAt is restamped by each port at enqueue so the dequeue hook can
	// report per-hop queueing delay. It is data-plane bookkeeping, not
	// visible to endpoints.
	enqAt sim.Time
}

// Node consumes packets delivered by the network.
type Node interface {
	// NodeID returns the node's network identifier.
	NodeID() NodeID
	// Receive is called when a packet arrives at the node.
	Receive(pkt *Packet)
}
