package netem

import (
	"testing"

	"flexpass/internal/sim"
	"flexpass/internal/units"
)

// benchNode is a minimal peer that hands every arrival to a callback.
type benchNode struct {
	id     NodeID
	onRecv func(*Packet)
}

func (n *benchNode) NodeID() NodeID      { return n.id }
func (n *benchNode) Receive(pkt *Packet) { n.onRecv(pkt) }

func benchPort(eng *sim.Engine) *Port {
	return NewPort(eng, "bench", 40*units.Gbps, sim.Microsecond,
		PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}, nil)
}

// BenchmarkPortForward measures one forwarded packet hop: enqueue,
// schedule, serialize, deliver. The sink re-injects a fresh frame per
// arrival so the port stays in self-clocked steady state; ns/op and
// allocs/op read as per-hop costs.
func BenchmarkPortForward(b *testing.B) {
	eng := sim.NewEngine(1)
	p := benchPort(eng)
	delivered := 0
	sink := &benchNode{id: 1}
	sink.onRecv = func(pkt *Packet) {
		delivered++
		p.Send(&Packet{Dst: 1, Size: MTUWire})
	}
	p.Connect(sink)
	for i := 0; i < 8; i++ {
		p.Send(&Packet{Dst: 1, Size: MTUWire})
	}
	eng.Run(eng.Now() + sim.Millisecond) // warm slices and free lists
	b.ReportAllocs()
	b.ResetTimer()
	target := delivered + b.N
	for delivered < target {
		eng.Run(eng.Now() + sim.Millisecond)
	}
}

// BenchmarkHostHop measures the end-host injection path: Host.Send with a
// host processing delay, NIC serialization, propagation, and handler
// dispatch at the peer. Two hosts ping-pong full frames.
func BenchmarkHostHop(b *testing.B) {
	eng := sim.NewEngine(1)
	mk := func(id NodeID, name string) *Host {
		nic := NewPort(eng, name+"-nic", 40*units.Gbps, sim.Microsecond,
			PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}, nil)
		return NewHost(eng, id, name, nic, sim.Microsecond)
	}
	ha, hb := mk(0, "a"), mk(1, "b")
	ha.NIC().Connect(hb)
	hb.NIC().Connect(ha)
	ha.SetHandler(func(pkt *Packet) { ha.Send(&Packet{Dst: 1, Size: MTUWire}) })
	hb.SetHandler(func(pkt *Packet) { hb.Send(&Packet{Dst: 0, Size: MTUWire}) })
	for i := 0; i < 4; i++ {
		ha.Send(&Packet{Dst: 1, Size: MTUWire})
	}
	eng.Run(eng.Now() + sim.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	target := ha.RxPackets + hb.RxPackets + int64(b.N)
	for ha.RxPackets+hb.RxPackets < target {
		eng.Run(eng.Now() + sim.Millisecond)
	}
}

// BenchmarkHostHopPooled is BenchmarkHostHop with the packet pool on:
// endpoints allocate with NewPacket and consumed frames recycle through
// the network free list. The delta against BenchmarkHostHop is the win
// the -pool-packets flag buys.
func BenchmarkHostHopPooled(b *testing.B) {
	eng := sim.NewEngine(1)
	net := NewNetwork(eng)
	mk := func(name string) *Host {
		nic := NewPort(eng, name+"-nic", 40*units.Gbps, sim.Microsecond,
			PortConfig{Queues: []QueueConfig{{Name: "Q0"}}}, nil)
		h := NewHost(eng, net.AllocID(), name, nic, sim.Microsecond)
		net.AddHost(h)
		return h
	}
	ha, hb := mk("a"), mk("b")
	ha.NIC().Connect(hb)
	hb.NIC().Connect(ha)
	net.EnablePacketPool()
	bounce := func(from *Host, to NodeID) {
		pkt := from.NewPacket()
		*pkt = Packet{Dst: to, Size: MTUWire}
		from.Send(pkt)
	}
	ha.SetHandler(func(pkt *Packet) { bounce(ha, hb.NodeID()) })
	hb.SetHandler(func(pkt *Packet) { bounce(hb, ha.NodeID()) })
	for i := 0; i < 4; i++ {
		bounce(ha, hb.NodeID())
	}
	eng.Run(eng.Now() + sim.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	target := ha.RxPackets + hb.RxPackets + int64(b.N)
	for ha.RxPackets+hb.RxPackets < target {
		eng.Run(eng.Now() + sim.Millisecond)
	}
}
