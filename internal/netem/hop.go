package netem

import (
	"flexpass/internal/sim"
)

// Hop observation: an optional per-packet path log fed at every enqueue,
// dequeue, and drop on every egress port (switch ports and host NICs
// alike). Like the trace.Ring convention elsewhere in the repository, the
// hooks are nil-no-ops — a port without an observer pays a single nil
// check per event — so forensic instrumentation can stay wired in
// permanently and disabled runs behave identically.
//
// Observers must be strictly read-only: they may inspect the port, queue
// state, and packet, but must not mutate them, send packets, or schedule
// events, or they would perturb the simulation they are watching.

// DropReason says why a port discarded a packet.
type DropReason uint8

// Drop reasons.
const (
	// DropRedThreshold: color-aware selective dropping of a Red packet
	// (queue red-byte occupancy would exceed RedDropThreshold).
	DropRedThreshold DropReason = iota
	// DropPrivateCap: the queue's private CapBytes was exhausted.
	DropPrivateCap
	// DropSharedBuffer: the Choudhury–Hahne dynamic threshold refused
	// admission to the shared buffer.
	DropSharedBuffer
	// DropFault: injected non-congestion loss (SetLossRate /
	// SetGilbertElliott burst loss).
	DropFault
	// DropLinkDown: the port was administratively down (SetDown).
	DropLinkDown
	// DropCreditLoss: credit-targeted injected loss (SetCreditLossRate).
	DropCreditLoss
)

var dropReasonNames = [...]string{
	"red-threshold", "private-cap", "shared-buffer", "fault",
	"link-down", "credit-loss",
}

// String names the reason.
func (r DropReason) String() string {
	if int(r) < len(dropReasonNames) {
		return dropReasonNames[r]
	}
	return "unknown"
}

// HopObserver watches packet events on a port. queue is the queue index
// the packet mapped to (-1 for fault drops, which happen before
// classification). All callbacks run inside the port's own event, with
// now == eng.Now().
type HopObserver interface {
	// HopEnqueue fires after a packet is accepted into queue q.
	// qBytes is the queue's byte occupancy including pkt.
	HopEnqueue(now sim.Time, p *Port, queue int, pkt *Packet, qBytes int64)
	// HopDequeue fires when the scheduler starts serializing pkt.
	// waited is the time spent queued at this port; tx is the
	// serialization time about to be spent on the wire.
	HopDequeue(now sim.Time, p *Port, queue int, pkt *Packet, waited, tx sim.Time)
	// HopDrop fires when the port discards pkt.
	HopDrop(now sim.Time, p *Port, queue int, pkt *Packet, reason DropReason)
}

// SetHopObserver installs (or, with nil, removes) the port's observer.
func (p *Port) SetHopObserver(o HopObserver) { p.hop = o }

// SetHopObserver installs the observer on every egress port of the switch.
func (s *Switch) SetHopObserver(o HopObserver) {
	for _, p := range s.ports {
		p.SetHopObserver(o)
	}
}

// SetHopObserver installs the observer on the host's NIC.
func (h *Host) SetHopObserver(o HopObserver) { h.nic.SetHopObserver(o) }

// SetHopObserver installs the observer on every port in the network
// (switch egresses and host NICs).
func (n *Network) SetHopObserver(o HopObserver) {
	for _, s := range n.Switches {
		s.SetHopObserver(o)
	}
	for _, h := range n.Hosts {
		h.SetHopObserver(o)
	}
}
